#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "exec/executor.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prom.h"
#include "obs/quality.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "obs/trace_event.h"
#include "plan/physical.h"
#include "storage/database.h"

namespace zerodb::obs {
namespace {

using catalog::ColumnSchema;
using catalog::DataType;
using catalog::TableSchema;

// ---------------------------------------------------------------------------
// JSON

TEST(JsonTest, DumpPrimitives) {
  EXPECT_EQ(JsonValue().Dump(), "null");
  EXPECT_EQ(JsonValue(true).Dump(), "true");
  EXPECT_EQ(JsonValue(false).Dump(), "false");
  EXPECT_EQ(JsonValue(int64_t{42}).Dump(), "42");
  EXPECT_EQ(JsonValue(-7).Dump(), "-7");
  EXPECT_EQ(JsonValue(1.5).Dump(), "1.5");
  EXPECT_EQ(JsonValue("hi \"there\"\n").Dump(), "\"hi \\\"there\\\"\\n\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrderAndSetOverwrites) {
  JsonValue object = JsonValue::Object();
  object.Set("zebra", 1);
  object.Set("apple", 2);
  object.Set("zebra", 3);
  EXPECT_EQ(object.Dump(), "{\"zebra\":3,\"apple\":2}");
  ASSERT_NE(object.Find("apple"), nullptr);
  EXPECT_EQ(object.Find("apple")->AsInt(), 2);
  EXPECT_EQ(object.Find("missing"), nullptr);
}

TEST(JsonTest, ParseRoundTrip) {
  JsonValue object = JsonValue::Object();
  object.Set("name", "q\u00e9ry");
  object.Set("count", int64_t{123});
  object.Set("ratio", 0.25);
  object.Set("flag", true);
  object.Set("nothing", JsonValue());
  JsonValue array = JsonValue::Array();
  array.Append(1);
  array.Append("two");
  array.Append(3.5);
  object.Set("list", std::move(array));

  for (int indent : {0, 2}) {
    auto parsed = JsonValue::Parse(object.Dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->Dump(), object.Dump());
  }
}

TEST(JsonTest, ParseDistinguishesIntAndDouble) {
  auto parsed = JsonValue::Parse("[3, 3.0, 1e2]");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->at(0).kind(), JsonValue::Kind::kInt);
  EXPECT_EQ(parsed->at(1).kind(), JsonValue::Kind::kDouble);
  EXPECT_EQ(parsed->at(2).kind(), JsonValue::Kind::kDouble);
  EXPECT_EQ(parsed->at(0).AsInt(), 3);
  EXPECT_DOUBLE_EQ(parsed->at(2).AsDouble(), 100.0);
}

TEST(JsonTest, ParseUnicodeEscapes) {
  auto parsed = JsonValue::Parse("\"a\\u00e9b\\ud83d\\ude00c\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(),
            "a\xc3\xa9"
            "b\xf0\x9f\x98\x80"
            "c");
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("'single'").ok());
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(MetricsTest, DisabledRegistryRecordsNothing) {
  MetricsRegistry registry;  // disabled by default
  Counter* counter = registry.GetCounter("c");
  Histogram* histogram = registry.GetHistogram("h");
  Gauge* gauge = registry.GetGauge("g");
  counter->Add(5);
  histogram->Observe(1.0);
  gauge->Set(9.0);
  EXPECT_EQ(counter->value(), 0);
  EXPECT_EQ(histogram->count(), 0);
  EXPECT_EQ(gauge->value(), 0.0);

  registry.set_enabled(true);
  counter->Add(5);
  histogram->Observe(1.0);
  gauge->Set(9.0);
  EXPECT_EQ(counter->value(), 5);
  EXPECT_EQ(histogram->count(), 1);
  EXPECT_EQ(gauge->value(), 9.0);
}

TEST(MetricsTest, SameNameReturnsSameMetric) {
  MetricsRegistry registry(/*enabled=*/true);
  EXPECT_EQ(registry.GetCounter("x"), registry.GetCounter("x"));
  EXPECT_NE(registry.GetCounter("x"), registry.GetCounter("y"));
  EXPECT_EQ(registry.GetHistogram("h"), registry.GetHistogram("h"));
}

TEST(MetricsTest, ConcurrentWriters) {
  MetricsRegistry registry(/*enabled=*/true);
  constexpr int kThreads = 8;
  constexpr int kIterations = 10000;
  // zerodb-lint: allow(raw-thread): raw threads race the registry directly
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Metric lookup races with other threads' lookups and writes.
      Counter* counter = registry.GetCounter("shared.counter");
      Counter* own = registry.GetCounter("own." + std::to_string(t));
      Histogram* histogram = registry.GetHistogram("shared.histogram");
      for (int i = 0; i < kIterations; ++i) {
        counter->Add(1);
        own->Add(1);
        histogram->Observe(static_cast<double>(i % 100));
      }
    });
  }
  // zerodb-lint: allow(raw-thread): raw threads race the registry directly
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(registry.GetCounter("shared.counter")->value(),
            kThreads * kIterations);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.GetCounter("own." + std::to_string(t))->value(),
              kIterations);
  }
  Histogram* histogram = registry.GetHistogram("shared.histogram");
  EXPECT_EQ(histogram->count(), kThreads * kIterations);
  EXPECT_EQ(histogram->min(), 0.0);
  EXPECT_EQ(histogram->max(), 99.0);
}

TEST(MetricsTest, HistogramQuantiles) {
  MetricsRegistry registry(/*enabled=*/true);
  Histogram* histogram =
      registry.GetHistogram("h", {10.0, 20.0, 30.0, 40.0, 50.0});
  for (int i = 1; i <= 100; ++i) histogram->Observe(static_cast<double>(i) / 2);
  EXPECT_EQ(histogram->count(), 100);
  EXPECT_DOUBLE_EQ(histogram->min(), 0.5);
  EXPECT_DOUBLE_EQ(histogram->max(), 50.0);
  // Values are uniform on (0, 50]; interpolated quantiles should be close.
  EXPECT_NEAR(histogram->Quantile(0.5), 25.0, 5.0);
  EXPECT_NEAR(histogram->Quantile(0.95), 47.5, 5.0);
  EXPECT_LE(histogram->Quantile(1.0), histogram->max());
  EXPECT_GE(histogram->Quantile(0.0), histogram->min() - 1e-9);
}

TEST(MetricsTest, HistogramQuantileEdgeCases) {
  MetricsRegistry registry(/*enabled=*/true);

  // Empty histogram: every quantile is 0.
  Histogram* empty = registry.GetHistogram("empty", {1.0, 2.0});
  EXPECT_EQ(empty->Quantile(0.0), 0.0);
  EXPECT_EQ(empty->Quantile(0.5), 0.0);
  EXPECT_EQ(empty->Quantile(1.0), 0.0);

  // q = 0 / q = 1 clamp to the observed extremes, and out-of-range q is
  // clamped into [0, 1] rather than extrapolated.
  Histogram* small = registry.GetHistogram("small", {10.0, 20.0});
  small->Observe(4.0);
  small->Observe(15.0);
  EXPECT_DOUBLE_EQ(small->Quantile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(small->Quantile(1.0), 15.0);
  EXPECT_DOUBLE_EQ(small->Quantile(-3.0), small->Quantile(0.0));
  EXPECT_DOUBLE_EQ(small->Quantile(7.0), small->Quantile(1.0));

  // All mass in the +inf overflow bucket: quantiles must come back as the
  // observed max, never as infinity or a bound nothing reached.
  Histogram* overflow = registry.GetHistogram("overflow", {1.0, 2.0});
  overflow->Observe(100.0);
  overflow->Observe(200.0);
  EXPECT_GE(overflow->Quantile(0.5), 100.0);
  EXPECT_LE(overflow->Quantile(0.5), 200.0);
  EXPECT_DOUBLE_EQ(overflow->Quantile(1.0), 200.0);
  EXPECT_GE(overflow->Quantile(0.01), 100.0);
}

TEST(MetricsTest, SnapshotCopiesStateAndSortsNames) {
  MetricsRegistry registry(/*enabled=*/true);
  registry.GetCounter("z.counter")->Add(2);
  registry.GetCounter("a.counter")->Add(1);
  registry.GetGauge("g")->Set(1.5);
  Histogram* histogram = registry.GetHistogram("h", {10.0, 20.0});
  histogram->Observe(5.0);
  histogram->Observe(25.0);

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "a.counter");
  EXPECT_EQ(snapshot.counters[1].first, "z.counter");
  EXPECT_EQ(snapshot.counters[1].second, 2);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].second, 1.5);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const HistogramSnapshot& h = snapshot.histograms[0];
  EXPECT_EQ(h.name, "h");
  ASSERT_EQ(h.bounds.size(), 2u);
  ASSERT_EQ(h.buckets.size(), 3u);  // 2 bounds + overflow
  EXPECT_EQ(h.buckets[0], 1);      // 5.0 <= 10
  EXPECT_EQ(h.buckets[1], 0);
  EXPECT_EQ(h.buckets[2], 1);      // 25.0 > 20 (overflow)
  EXPECT_EQ(h.count, 2);
  EXPECT_DOUBLE_EQ(h.sum, 30.0);
  // The snapshot is a copy: later writes do not retroactively change it.
  histogram->Observe(1.0);
  EXPECT_EQ(h.count, 2);
}

TEST(MetricsTest, RegistryToJson) {
  MetricsRegistry registry(/*enabled=*/true);
  registry.GetCounter("b.counter")->Add(3);
  registry.GetCounter("a.counter")->Add(1);
  registry.GetGauge("gauge")->Set(2.5);
  registry.GetHistogram("hist")->Observe(7.0);
  JsonValue json = registry.ToJson();
  // Names are sorted for stable artifacts.
  const JsonValue* counters = json.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->members().size(), 2u);
  EXPECT_EQ(counters->members()[0].first, "a.counter");
  EXPECT_EQ(counters->members()[1].first, "b.counter");
  EXPECT_EQ(counters->Find("b.counter")->AsInt(), 3);
  EXPECT_DOUBLE_EQ(json.Find("gauges")->Find("gauge")->AsDouble(), 2.5);
  const JsonValue* hist = json.Find("histograms")->Find("hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->AsInt(), 1);
  EXPECT_DOUBLE_EQ(hist->Find("sum")->AsDouble(), 7.0);
}

TEST(MetricsTest, ScopedTimerRecords) {
  MetricsRegistry registry(/*enabled=*/true);
  Histogram* histogram = registry.GetHistogram("timer_us");
  Counter* total = registry.GetCounter("timer_total_us");
  { ScopedTimer timer(histogram, total); }
  EXPECT_EQ(histogram->count(), 1);
  EXPECT_GE(histogram->sum(), 0.0);
  { ScopedTimer noop(nullptr, nullptr); }
  EXPECT_EQ(histogram->count(), 1);
}

// ---------------------------------------------------------------------------
// Tracing

// users(id, age) x orders(id, user_id, amt) — small, deterministic.
storage::Database MakeDb() {
  storage::Database db("obs_test");
  storage::Table users(
      TableSchema("users", {ColumnSchema{"id", DataType::kInt64, 8},
                            ColumnSchema{"age", DataType::kInt64, 8}}));
  for (int i = 0; i < 5; ++i) {
    users.column(0).AppendInt64(i);
    users.column(1).AppendInt64(20 + i);
  }
  storage::Table orders(
      TableSchema("orders", {ColumnSchema{"id", DataType::kInt64, 8},
                             ColumnSchema{"user_id", DataType::kInt64, 8},
                             ColumnSchema{"amt", DataType::kDouble, 8}}));
  for (int i = 0; i < 8; ++i) {
    orders.column(0).AppendInt64(i);
    orders.column(1).AppendInt64(i % 5);
    orders.column(2).AppendDouble(10.0 * i);
  }
  EXPECT_TRUE(db.AddTable(std::move(users)).ok());
  EXPECT_TRUE(db.AddTable(std::move(orders)).ok());
  return db;
}

TEST(TraceTest, NestedSpans) {
  QueryTracer tracer;
  {
    SpanScope root(&tracer, "root");
    root.AddAttribute("k", 1.0);
    { SpanScope child_a(&tracer, "a"); }
    {
      SpanScope child_b(&tracer, "b");
      { SpanScope grandchild(&tracer, "b1"); }
    }
  }
  EXPECT_FALSE(tracer.has_open_span());
  ASSERT_EQ(tracer.roots().size(), 1u);
  const Span& root = tracer.roots()[0];
  EXPECT_EQ(root.name, "root");
  EXPECT_EQ(root.Attribute("k"), 1.0);
  EXPECT_EQ(root.Attribute("missing", -1.0), -1.0);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].name, "a");
  EXPECT_EQ(root.children[1].name, "b");
  ASSERT_EQ(root.children[1].children.size(), 1u);
  EXPECT_EQ(root.children[1].children[0].name, "b1");
  EXPECT_EQ(root.TreeSize(), 4u);
  EXPECT_GE(root.duration_ms, root.children[1].duration_ms);

  tracer.Clear();
  EXPECT_TRUE(tracer.roots().empty());
}

TEST(TraceTest, NullTracerIsSafe) {
  SpanScope scope(nullptr, "ignored");
  EXPECT_FALSE(scope.active());
  scope.SetDetail("d");
  scope.AddAttribute("k", 1.0);
}

// The executor must produce a span tree whose shape mirrors the physical
// plan: SimpleAggregate -> HashJoin -> {SeqScan(users), SeqScan(orders)}.
TEST(TraceTest, ExecutorSpanTreeMirrorsPlan) {
  storage::Database db = MakeDb();
  QueryTracer tracer;
  exec::ExecutorOptions options;
  options.tracer = &tracer;
  exec::Executor executor(&db, options);

  plan::PhysicalPlan plan(plan::MakeSimpleAggregate(
      plan::MakeHashJoin(plan::MakeSeqScan("users", std::nullopt),
                         plan::MakeSeqScan("orders", std::nullopt),
                         /*left_key_slot=*/0, /*right_key_slot=*/1),
      {plan::AggregateExpr{plan::AggFunc::kCount, std::nullopt}}));
  auto result = executor.Execute(&plan);
  ASSERT_TRUE(result.ok());

  ASSERT_EQ(tracer.roots().size(), 1u);
  const Span& root = tracer.roots()[0];
  EXPECT_EQ(root.name, "SimpleAggregate");
  EXPECT_EQ(root.TreeSize(), 4u);
  ASSERT_EQ(root.children.size(), 1u);
  const Span& join = root.children[0];
  EXPECT_EQ(join.name, "HashJoin");
  ASSERT_EQ(join.children.size(), 2u);
  EXPECT_EQ(join.children[0].name, "SeqScan");
  EXPECT_EQ(join.children[0].detail, "users");
  EXPECT_EQ(join.children[1].name, "SeqScan");
  EXPECT_EQ(join.children[1].detail, "orders");

  // Attributes mirror the recorded OperatorStats.
  EXPECT_EQ(join.children[0].Attribute("output_rows"), 5.0);
  EXPECT_EQ(join.children[1].Attribute("output_rows"), 8.0);
  EXPECT_EQ(join.Attribute("output_rows"), 8.0);
  EXPECT_EQ(join.Attribute("hash_build_rows"), 5.0);
  EXPECT_EQ(root.Attribute("output_rows"), 1.0);
  // A parent's wall time covers its children.
  EXPECT_GE(root.duration_ms, join.duration_ms);
}

TEST(TraceTest, ExecutorCountersAndSpanJsonRoundTrip) {
  storage::Database db = MakeDb();
  MetricsRegistry registry(/*enabled=*/true);
  QueryTracer tracer;
  exec::ExecutorOptions options;
  options.tracer = &tracer;
  options.metrics = &registry;
  exec::Executor executor(&db, options);

  plan::PhysicalPlan plan(plan::MakeSeqScan("users", std::nullopt));
  ASSERT_TRUE(executor.Execute(&plan).ok());
  EXPECT_EQ(registry.GetCounter("exec.queries")->value(), 1);
  EXPECT_EQ(registry.GetCounter("exec.operators")->value(), 1);
  EXPECT_EQ(registry.GetCounter("exec.rows_produced")->value(), 5);

  // Span JSON round-trip through Dump + Parse + FromJson.
  ASSERT_EQ(tracer.roots().size(), 1u);
  const Span& original = tracer.roots()[0];
  auto parsed = JsonValue::Parse(original.ToJson().Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto restored = Span::FromJson(*parsed);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->name, original.name);
  EXPECT_EQ(restored->detail, original.detail);
  EXPECT_DOUBLE_EQ(restored->duration_ms, original.duration_ms);
  EXPECT_EQ(restored->attributes, original.attributes);
  EXPECT_EQ(restored->children.size(), original.children.size());
  EXPECT_EQ(restored->ToJson().Dump(), original.ToJson().Dump());
}

// ---------------------------------------------------------------------------
// Training telemetry + artifact

TEST(TelemetryTest, RecordsEpochsAndSerializes) {
  TrainTelemetry telemetry("run");
  telemetry.RecordEpoch({1, 2.0, 2.5, 1e-3, 0.7});
  telemetry.RecordEpoch({2, 1.5, 2.0, 1e-3, 0.6});
  ASSERT_EQ(telemetry.epochs().size(), 2u);
  EXPECT_EQ(telemetry.epochs()[1].epoch, 2u);

  JsonValue json = telemetry.ToJson();
  const JsonValue* epochs = json.Find("epochs");
  ASSERT_NE(epochs, nullptr);
  ASSERT_EQ(epochs->size(), 2u);
  EXPECT_DOUBLE_EQ(epochs->at(0).Find("train_loss")->AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(epochs->at(1).Find("val_loss")->AsDouble(), 2.0);
}

TEST(ArtifactTest, WriteToProducesParseableJson) {
  MetricsRegistry registry(/*enabled=*/true);
  registry.GetCounter("events")->Add(4);

  QueryTracer tracer;
  { SpanScope scope(&tracer, "SeqScan"); }

  MetricsArtifact artifact("unit_test");
  artifact.AddLabel("scale", "tiny");
  artifact.SetRegistry(&registry);
  artifact.AddTrace("query", tracer.roots()[0]);
  artifact.AddTrainingRun("model", {{1, 2.0, 2.5, 1e-3, 0.7}});

  std::string path = ::testing::TempDir() + "/obs_artifact.json";
  ASSERT_TRUE(artifact.WriteTo(path).ok());

  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(file);
  std::remove(path.c_str());

  auto parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("name")->AsString(), "unit_test");
  EXPECT_EQ(parsed->Find("labels")->Find("scale")->AsString(), "tiny");
  EXPECT_EQ(
      parsed->Find("metrics")->Find("counters")->Find("events")->AsInt(), 4);
  ASSERT_NE(parsed->Find("traces")->Find("query"), nullptr);
  const JsonValue* run = parsed->Find("training")->Find("model");
  ASSERT_NE(run, nullptr);
  ASSERT_EQ(run->size(), 1u);
  EXPECT_EQ(run->at(0).Find("epoch")->AsInt(), 1);
}

// ---------------------------------------------------------------------------
// Span::FromJson malformed input

TEST(TraceTest, SpanFromJsonRejectsMalformedInput) {
  // Not an object.
  EXPECT_FALSE(Span::FromJson(JsonValue(3.0)).ok());
  EXPECT_FALSE(Span::FromJson(JsonValue::Array()).ok());

  // Missing / non-string name.
  EXPECT_FALSE(Span::FromJson(JsonValue::Object()).ok());
  {
    JsonValue span = JsonValue::Object();
    span.Set("name", 7);
    EXPECT_FALSE(Span::FromJson(span).ok());
  }
  // Wrong-typed optional fields.
  {
    JsonValue span = JsonValue::Object();
    span.Set("name", "scan");
    span.Set("detail", 1.0);
    EXPECT_FALSE(Span::FromJson(span).ok());
  }
  {
    JsonValue span = JsonValue::Object();
    span.Set("name", "scan");
    span.Set("duration_ms", "fast");
    EXPECT_FALSE(Span::FromJson(span).ok());
  }
  {
    JsonValue span = JsonValue::Object();
    span.Set("name", "scan");
    JsonValue attrs = JsonValue::Object();
    attrs.Set("rows", "many");
    span.Set("attributes", std::move(attrs));
    EXPECT_FALSE(Span::FromJson(span).ok());
  }
  {
    JsonValue span = JsonValue::Object();
    span.Set("name", "scan");
    span.Set("children", JsonValue::Object());
    EXPECT_FALSE(Span::FromJson(span).ok());
  }
  // A malformed child poisons the whole tree.
  {
    JsonValue bad_child = JsonValue::Object();  // no name
    JsonValue children = JsonValue::Array();
    children.Append(std::move(bad_child));
    JsonValue span = JsonValue::Object();
    span.Set("name", "root");
    span.Set("children", std::move(children));
    EXPECT_FALSE(Span::FromJson(span).ok());
  }
}

TEST(TraceTest, SpanFromJsonRoundTripWithChildren) {
  Span root;
  root.name = "HashJoin";
  root.detail = "t1 x t2";
  root.duration_ms = 3.25;
  root.AddAttribute("output_rows", 42.0);
  Span child;
  child.name = "SeqScan";
  child.duration_ms = 1.5;
  root.children.push_back(child);

  auto restored = Span::FromJson(root.ToJson());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->ToJson().Dump(), root.ToJson().Dump());
}

// ---------------------------------------------------------------------------
// Cross-thread timeline recorder

/// Pulls the traceEvents array out of a recorder's JSON.
const JsonValue* EventsOf(const JsonValue& trace) {
  const JsonValue* events = trace.Find("traceEvents");
  EXPECT_NE(events, nullptr);
  return events;
}

TEST(TraceEventTest, RecordsCompleteAndCounterEvents) {
  TraceEventRecorder recorder;
  {
    TimelineScope scope("work", "test", &recorder);
    scope.AddArg("items", 3.0);
  }
  recorder.AddCounter("queue_depth", 7.0);

  JsonValue trace = recorder.ToJson();
  EXPECT_EQ(trace.Find("displayTimeUnit")->AsString(), "ms");
  const JsonValue* events = EventsOf(trace);
  ASSERT_NE(events, nullptr);

  bool saw_process_name = false, saw_thread_name = false;
  bool saw_work = false, saw_counter = false;
  for (size_t i = 0; i < events->size(); ++i) {
    const JsonValue& event = events->at(i);
    const std::string ph = event.Find("ph")->AsString();
    const std::string name = event.Find("name")->AsString();
    if (ph == "M" && name == "process_name") saw_process_name = true;
    if (ph == "M" && name == "thread_name") saw_thread_name = true;
    if (ph == "X" && name == "work") {
      saw_work = true;
      EXPECT_GE(event.Find("dur")->AsDouble(), 0.0);
      EXPECT_GE(event.Find("ts")->AsDouble(), 0.0);
      ASSERT_NE(event.Find("args"), nullptr);
      EXPECT_DOUBLE_EQ(event.Find("args")->Find("items")->AsDouble(), 3.0);
    }
    if (ph == "C" && name == "queue_depth") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(event.Find("args")->Find("value")->AsDouble(), 7.0);
    }
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_thread_name);
  EXPECT_TRUE(saw_work);
  EXPECT_TRUE(saw_counter);
}

TEST(TraceEventTest, DisabledOrNullRecorderIsFreeAndSafe) {
  {
    TimelineScope scope("noop", "test", nullptr);
    EXPECT_FALSE(scope.active());
    scope.AddArg("ignored", 1.0);
  }
  TraceEventRecorder recorder;
  recorder.set_enabled(false);
  {
    TimelineScope scope("noop", "test", &recorder);
    EXPECT_FALSE(scope.active());
  }
  recorder.AddCompleteEvent("direct", "test", 0.0, 1.0);
  recorder.AddCounter("direct", 1.0);
  // Only metadata (process name) in the output — no tracks were opened.
  JsonValue trace = recorder.ToJson();
  EXPECT_EQ(EventsOf(trace)->size(), 1u);
}

TEST(TraceEventTest, EightThreadsRecordConcurrentlyWithNamedTracks) {
  TraceEventRecorder recorder;
  constexpr int kThreads = 8;
  constexpr int kEventsPerThread = 200;
  // zerodb-lint: allow(raw-thread): racing the recorder is the test
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      SetCurrentThreadTraceName("stress-" + std::to_string(t));
      for (int i = 0; i < kEventsPerThread; ++i) {
        TimelineScope scope("tick", "stress", &recorder);
        scope.AddArg("i", static_cast<double>(i));
      }
    });
  }
  // Exports race the writers: ToJson must see consistent (never torn) state.
  for (int i = 0; i < 4; ++i) recorder.ToJson();
  // zerodb-lint: allow(raw-thread): racing the recorder is the test
  for (std::thread& thread : threads) thread.join();

  JsonValue trace = recorder.ToJson();
  const JsonValue* events = EventsOf(trace);
  int ticks = 0;
  std::vector<std::string> track_names;
  for (size_t i = 0; i < events->size(); ++i) {
    const JsonValue& event = events->at(i);
    if (event.Find("ph")->AsString() == "X") ++ticks;
    if (event.Find("ph")->AsString() == "M" &&
        event.Find("name")->AsString() == "thread_name") {
      track_names.push_back(event.Find("args")->Find("name")->AsString());
    }
  }
  EXPECT_EQ(ticks, kThreads * kEventsPerThread);
  EXPECT_EQ(recorder.dropped_events(), 0);
  // Every stress thread got its own named track.
  int stress_tracks = 0;
  for (const std::string& name : track_names) {
    if (name.rfind("stress-", 0) == 0) ++stress_tracks;
  }
  EXPECT_EQ(stress_tracks, kThreads);
}

TEST(TraceEventTest, BoundedBuffersCountDroppedEvents) {
  TraceEventRecorder::Options options;
  options.max_events_per_thread = 4;
  TraceEventRecorder recorder(options);
  for (int i = 0; i < 10; ++i) {
    recorder.AddCompleteEvent("e", "test", static_cast<double>(i), 1.0);
  }
  EXPECT_EQ(recorder.dropped_events(), 6);
  JsonValue trace = recorder.ToJson();
  const JsonValue* events = EventsOf(trace);
  bool saw_dropped_counter = false;
  int complete = 0;
  for (size_t i = 0; i < events->size(); ++i) {
    const JsonValue& event = events->at(i);
    if (event.Find("ph")->AsString() == "X") ++complete;
    if (event.Find("name")->AsString() == "zerodb_dropped_events") {
      saw_dropped_counter = true;
      EXPECT_EQ(event.Find("args")->Find("value")->AsInt(), 6);
    }
  }
  EXPECT_EQ(complete, 4);
  EXPECT_TRUE(saw_dropped_counter);
}

TEST(TraceEventTest, ProjectSpanTreeLaysOutVirtualTrack) {
  Span root;
  root.name = "HashJoin";
  root.duration_ms = 10.0;
  root.AddAttribute("output_rows", 3.0);
  Span left, right;
  left.name = "SeqScan";
  left.detail = "title";
  left.duration_ms = 4.0;
  right.name = "SeqScan";
  right.detail = "cast_info";
  right.duration_ms = 5.0;
  root.children.push_back(left);
  root.children.push_back(right);

  TraceEventRecorder recorder;
  ProjectSpanTree(&recorder, root, "query-7", /*end_ts_us=*/20000.0);

  JsonValue trace = recorder.ToJson();
  const JsonValue* events = EventsOf(trace);
  double root_ts = -1.0, left_ts = -1.0, right_ts = -1.0;
  bool saw_track_name = false;
  for (size_t i = 0; i < events->size(); ++i) {
    const JsonValue& event = events->at(i);
    const std::string name = event.Find("name")->AsString();
    if (event.Find("ph")->AsString() == "M" &&
        event.Find("args")->Find("name")->AsString() == "query-7") {
      saw_track_name = true;
    }
    if (event.Find("ph")->AsString() != "X") continue;
    if (name == "HashJoin") {
      root_ts = event.Find("ts")->AsDouble();
      EXPECT_DOUBLE_EQ(event.Find("dur")->AsDouble(), 10000.0);
      EXPECT_DOUBLE_EQ(event.Find("args")->Find("output_rows")->AsDouble(),
                       3.0);
    }
    if (name == "SeqScan title") left_ts = event.Find("ts")->AsDouble();
    if (name == "SeqScan cast_info") right_ts = event.Find("ts")->AsDouble();
  }
  EXPECT_TRUE(saw_track_name);
  // Root ends at 20000us and spans 10000us; children lie inside it, laid
  // out consecutively from the root's start.
  EXPECT_DOUBLE_EQ(root_ts, 10000.0);
  EXPECT_DOUBLE_EQ(left_ts, 10000.0);
  EXPECT_DOUBLE_EQ(right_ts, 14000.0);

  // Projecting a second tree onto the same name reuses the track.
  ProjectSpanTree(&recorder, root, "query-7", /*end_ts_us=*/40000.0);
  ProjectSpanTree(nullptr, root, "ignored");  // no-op, must not crash
}

TEST(TraceEventTest, WriteToProducesLoadableJsonAndNoTempFile) {
  TraceEventRecorder recorder;
  { TimelineScope scope("work", "test", &recorder); }
  std::string path = ::testing::TempDir() + "/trace_event_test.json";
  ASSERT_TRUE(recorder.WriteTo(path).ok());

  // The crash-safe write must not leave its temp file behind.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);

  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(file);
  std::remove(path.c_str());

  auto parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NE(parsed->Find("traceEvents"), nullptr);
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(PromTest, SanitizesNames) {
  EXPECT_EQ(PrometheusName("pool.tasks_run"), "pool_tasks_run");
  EXPECT_EQ(PrometheusName("a-b c:d"), "a_b_c:d");
  EXPECT_EQ(PrometheusName("9lives"), "_9lives");
  EXPECT_EQ(PrometheusName(""), "_");
}

TEST(PromTest, RendersCountersGaugesAndCumulativeHistograms) {
  MetricsRegistry registry(/*enabled=*/true);
  registry.GetCounter("exec.queries")->Add(3);
  registry.GetGauge("pool.global_threads")->Set(4.0);
  Histogram* histogram = registry.GetHistogram("lat.us", {1.0, 10.0});
  histogram->Observe(0.5);   // bucket le=1
  histogram->Observe(5.0);   // bucket le=10
  histogram->Observe(5.5);   // bucket le=10
  histogram->Observe(100.0); // +inf

  std::string text = RenderPrometheus(registry);
  EXPECT_NE(text.find("# TYPE exec_queries counter\nexec_queries 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE pool_global_threads gauge\n"
                      "pool_global_threads 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_us histogram\n"), std::string::npos);
  // Buckets are cumulative, ending in an +Inf bucket equal to _count.
  EXPECT_NE(text.find("lat_us_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"10\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 111\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 4\n"), std::string::npos);
}

TEST(PromTest, WritePrometheusToIsCrashSafe) {
  MetricsRegistry registry(/*enabled=*/true);
  registry.GetCounter("c")->Add(1);
  std::string path = ::testing::TempDir() + "/prom_test.prom";
  ASSERT_TRUE(WritePrometheusTo(registry, path).ok());
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::fclose(file);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Prediction-quality monitor

PredictionQualityMonitor::Options QualityOptions(MetricsRegistry* registry,
                                                 const char* prefix) {
  PredictionQualityMonitor::Options options;
  options.registry = registry;
  options.metric_prefix = prefix;
  options.min_samples = 16;
  options.warn_every = 1 << 20;  // keep test logs quiet
  return options;
}

TEST(QualityTest, HealthyStreamNeverDrifts) {
  MetricsRegistry registry(/*enabled=*/true);
  PredictionQualityMonitor monitor(QualityOptions(&registry, "q1"));
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    double actual = rng.UniformDouble(1.0, 100.0);
    double predicted = actual * rng.UniformDouble(0.8, 1.25);
    monitor.Record(predicted, actual);
    EXPECT_FALSE(monitor.drifting()) << "at sample " << i;
  }
  EXPECT_EQ(monitor.samples(), 500);
  EXPECT_EQ(monitor.drift_events(), 0);
  EXPECT_LT(monitor.EwmaQError(), 1.5);
  EXPECT_EQ(registry.GetGauge("q1.drift")->value(), 0.0);
  EXPECT_EQ(registry.GetCounter("q1.samples")->value(), 500);
}

TEST(QualityTest, DegradedStreamFiresDriftAndRecovers) {
  MetricsRegistry registry(/*enabled=*/true);
  PredictionQualityMonitor monitor(QualityOptions(&registry, "q2"));
  // Warm-up: accurate predictions freeze a reference q-error near 1.
  for (int i = 0; i < 100; ++i) {
    monitor.Record(10.0 * 1.1, 10.0);
  }
  ASSERT_FALSE(monitor.drifting());
  EXPECT_NEAR(monitor.ReferenceQError(), 1.1, 0.01);

  // Degradation: the model is suddenly 10x off; the EWMA crosses the 2x
  // threshold within a few dozen samples.
  int fired_at = -1;
  for (int i = 0; i < 200; ++i) {
    monitor.Record(100.0, 10.0);
    if (monitor.drifting()) {
      fired_at = i;
      break;
    }
  }
  ASSERT_GE(fired_at, 0) << "drift never fired on a 10x-degraded stream";
  EXPECT_EQ(monitor.drift_events(), 1);
  EXPECT_EQ(registry.GetGauge("q2.drift")->value(), 1.0);
  EXPECT_GT(monitor.EwmaQError(), 2.0);

  // Recovery: accurate predictions pull the EWMA back under the threshold.
  for (int i = 0; i < 500 && monitor.drifting(); ++i) {
    monitor.Record(10.0, 10.0);
  }
  EXPECT_FALSE(monitor.drifting());
  EXPECT_EQ(monitor.drift_events(), 1);  // events count transitions only
  EXPECT_EQ(registry.GetGauge("q2.drift")->value(), 0.0);
}

TEST(QualityTest, IgnoresSamplesWithoutGroundTruth) {
  MetricsRegistry registry(/*enabled=*/true);
  PredictionQualityMonitor monitor(QualityOptions(&registry, "q3"));
  monitor.Record(5.0, 0.0);
  monitor.Record(5.0, -1.0);
  EXPECT_EQ(monitor.samples(), 0);
}

TEST(QualityTest, ToJsonAndArtifactQualitySection) {
  MetricsRegistry registry(/*enabled=*/true);
  PredictionQualityMonitor monitor(QualityOptions(&registry, "q4"));
  for (int i = 0; i < 64; ++i) monitor.Record(12.0, 10.0);

  JsonValue json = monitor.ToJson();
  EXPECT_EQ(json.Find("samples")->AsInt(), 64);
  EXPECT_NEAR(json.Find("qerror")->Find("max")->AsDouble(), 1.2, 1e-9);
  const JsonValue* drift = json.Find("drift");
  ASSERT_NE(drift, nullptr);
  EXPECT_FALSE(drift->Find("drifting")->AsBool());
  EXPECT_TRUE(drift->Find("armed")->AsBool());
  EXPECT_NEAR(drift->Find("reference_qerror")->AsDouble(), 1.2, 0.01);

  MetricsArtifact artifact("quality_unit_test");
  artifact.SetQualityMonitor(&monitor);
  JsonValue artifact_json = artifact.ToJson();
  ASSERT_NE(artifact_json.Find("quality"), nullptr);
  EXPECT_EQ(artifact_json.Find("quality")->Find("samples")->AsInt(), 64);
}

TEST(QualityTest, QuantilesComeFromHistogram) {
  MetricsRegistry registry(/*enabled=*/true);
  PredictionQualityMonitor monitor(QualityOptions(&registry, "q5"));
  for (int i = 0; i < 100; ++i) monitor.Record(20.0, 10.0);  // q-error 2
  EXPECT_NEAR(monitor.QErrorQuantile(0.5), 2.0, 0.5);
  EXPECT_EQ(registry.GetHistogram("q5.qerror")->count(), 100);
}

}  // namespace
}  // namespace zerodb::obs
