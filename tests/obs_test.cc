#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "exec/executor.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "plan/physical.h"
#include "storage/database.h"

namespace zerodb::obs {
namespace {

using catalog::ColumnSchema;
using catalog::DataType;
using catalog::TableSchema;

// ---------------------------------------------------------------------------
// JSON

TEST(JsonTest, DumpPrimitives) {
  EXPECT_EQ(JsonValue().Dump(), "null");
  EXPECT_EQ(JsonValue(true).Dump(), "true");
  EXPECT_EQ(JsonValue(false).Dump(), "false");
  EXPECT_EQ(JsonValue(int64_t{42}).Dump(), "42");
  EXPECT_EQ(JsonValue(-7).Dump(), "-7");
  EXPECT_EQ(JsonValue(1.5).Dump(), "1.5");
  EXPECT_EQ(JsonValue("hi \"there\"\n").Dump(), "\"hi \\\"there\\\"\\n\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrderAndSetOverwrites) {
  JsonValue object = JsonValue::Object();
  object.Set("zebra", 1);
  object.Set("apple", 2);
  object.Set("zebra", 3);
  EXPECT_EQ(object.Dump(), "{\"zebra\":3,\"apple\":2}");
  ASSERT_NE(object.Find("apple"), nullptr);
  EXPECT_EQ(object.Find("apple")->AsInt(), 2);
  EXPECT_EQ(object.Find("missing"), nullptr);
}

TEST(JsonTest, ParseRoundTrip) {
  JsonValue object = JsonValue::Object();
  object.Set("name", "q\u00e9ry");
  object.Set("count", int64_t{123});
  object.Set("ratio", 0.25);
  object.Set("flag", true);
  object.Set("nothing", JsonValue());
  JsonValue array = JsonValue::Array();
  array.Append(1);
  array.Append("two");
  array.Append(3.5);
  object.Set("list", std::move(array));

  for (int indent : {0, 2}) {
    auto parsed = JsonValue::Parse(object.Dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->Dump(), object.Dump());
  }
}

TEST(JsonTest, ParseDistinguishesIntAndDouble) {
  auto parsed = JsonValue::Parse("[3, 3.0, 1e2]");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->at(0).kind(), JsonValue::Kind::kInt);
  EXPECT_EQ(parsed->at(1).kind(), JsonValue::Kind::kDouble);
  EXPECT_EQ(parsed->at(2).kind(), JsonValue::Kind::kDouble);
  EXPECT_EQ(parsed->at(0).AsInt(), 3);
  EXPECT_DOUBLE_EQ(parsed->at(2).AsDouble(), 100.0);
}

TEST(JsonTest, ParseUnicodeEscapes) {
  auto parsed = JsonValue::Parse("\"a\\u00e9b\\ud83d\\ude00c\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(),
            "a\xc3\xa9"
            "b\xf0\x9f\x98\x80"
            "c");
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("'single'").ok());
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(MetricsTest, DisabledRegistryRecordsNothing) {
  MetricsRegistry registry;  // disabled by default
  Counter* counter = registry.GetCounter("c");
  Histogram* histogram = registry.GetHistogram("h");
  Gauge* gauge = registry.GetGauge("g");
  counter->Add(5);
  histogram->Observe(1.0);
  gauge->Set(9.0);
  EXPECT_EQ(counter->value(), 0);
  EXPECT_EQ(histogram->count(), 0);
  EXPECT_EQ(gauge->value(), 0.0);

  registry.set_enabled(true);
  counter->Add(5);
  histogram->Observe(1.0);
  gauge->Set(9.0);
  EXPECT_EQ(counter->value(), 5);
  EXPECT_EQ(histogram->count(), 1);
  EXPECT_EQ(gauge->value(), 9.0);
}

TEST(MetricsTest, SameNameReturnsSameMetric) {
  MetricsRegistry registry(/*enabled=*/true);
  EXPECT_EQ(registry.GetCounter("x"), registry.GetCounter("x"));
  EXPECT_NE(registry.GetCounter("x"), registry.GetCounter("y"));
  EXPECT_EQ(registry.GetHistogram("h"), registry.GetHistogram("h"));
}

TEST(MetricsTest, ConcurrentWriters) {
  MetricsRegistry registry(/*enabled=*/true);
  constexpr int kThreads = 8;
  constexpr int kIterations = 10000;
  // zerodb-lint: allow(raw-thread): raw threads race the registry directly
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Metric lookup races with other threads' lookups and writes.
      Counter* counter = registry.GetCounter("shared.counter");
      Counter* own = registry.GetCounter("own." + std::to_string(t));
      Histogram* histogram = registry.GetHistogram("shared.histogram");
      for (int i = 0; i < kIterations; ++i) {
        counter->Add(1);
        own->Add(1);
        histogram->Observe(static_cast<double>(i % 100));
      }
    });
  }
  // zerodb-lint: allow(raw-thread): raw threads race the registry directly
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(registry.GetCounter("shared.counter")->value(),
            kThreads * kIterations);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.GetCounter("own." + std::to_string(t))->value(),
              kIterations);
  }
  Histogram* histogram = registry.GetHistogram("shared.histogram");
  EXPECT_EQ(histogram->count(), kThreads * kIterations);
  EXPECT_EQ(histogram->min(), 0.0);
  EXPECT_EQ(histogram->max(), 99.0);
}

TEST(MetricsTest, HistogramQuantiles) {
  MetricsRegistry registry(/*enabled=*/true);
  Histogram* histogram =
      registry.GetHistogram("h", {10.0, 20.0, 30.0, 40.0, 50.0});
  for (int i = 1; i <= 100; ++i) histogram->Observe(static_cast<double>(i) / 2);
  EXPECT_EQ(histogram->count(), 100);
  EXPECT_DOUBLE_EQ(histogram->min(), 0.5);
  EXPECT_DOUBLE_EQ(histogram->max(), 50.0);
  // Values are uniform on (0, 50]; interpolated quantiles should be close.
  EXPECT_NEAR(histogram->Quantile(0.5), 25.0, 5.0);
  EXPECT_NEAR(histogram->Quantile(0.95), 47.5, 5.0);
  EXPECT_LE(histogram->Quantile(1.0), histogram->max());
  EXPECT_GE(histogram->Quantile(0.0), histogram->min() - 1e-9);
}

TEST(MetricsTest, RegistryToJson) {
  MetricsRegistry registry(/*enabled=*/true);
  registry.GetCounter("b.counter")->Add(3);
  registry.GetCounter("a.counter")->Add(1);
  registry.GetGauge("gauge")->Set(2.5);
  registry.GetHistogram("hist")->Observe(7.0);
  JsonValue json = registry.ToJson();
  // Names are sorted for stable artifacts.
  const JsonValue* counters = json.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->members().size(), 2u);
  EXPECT_EQ(counters->members()[0].first, "a.counter");
  EXPECT_EQ(counters->members()[1].first, "b.counter");
  EXPECT_EQ(counters->Find("b.counter")->AsInt(), 3);
  EXPECT_DOUBLE_EQ(json.Find("gauges")->Find("gauge")->AsDouble(), 2.5);
  const JsonValue* hist = json.Find("histograms")->Find("hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->AsInt(), 1);
  EXPECT_DOUBLE_EQ(hist->Find("sum")->AsDouble(), 7.0);
}

TEST(MetricsTest, ScopedTimerRecords) {
  MetricsRegistry registry(/*enabled=*/true);
  Histogram* histogram = registry.GetHistogram("timer_us");
  Counter* total = registry.GetCounter("timer_total_us");
  { ScopedTimer timer(histogram, total); }
  EXPECT_EQ(histogram->count(), 1);
  EXPECT_GE(histogram->sum(), 0.0);
  { ScopedTimer noop(nullptr, nullptr); }
  EXPECT_EQ(histogram->count(), 1);
}

// ---------------------------------------------------------------------------
// Tracing

// users(id, age) x orders(id, user_id, amt) — small, deterministic.
storage::Database MakeDb() {
  storage::Database db("obs_test");
  storage::Table users(
      TableSchema("users", {ColumnSchema{"id", DataType::kInt64, 8},
                            ColumnSchema{"age", DataType::kInt64, 8}}));
  for (int i = 0; i < 5; ++i) {
    users.column(0).AppendInt64(i);
    users.column(1).AppendInt64(20 + i);
  }
  storage::Table orders(
      TableSchema("orders", {ColumnSchema{"id", DataType::kInt64, 8},
                             ColumnSchema{"user_id", DataType::kInt64, 8},
                             ColumnSchema{"amt", DataType::kDouble, 8}}));
  for (int i = 0; i < 8; ++i) {
    orders.column(0).AppendInt64(i);
    orders.column(1).AppendInt64(i % 5);
    orders.column(2).AppendDouble(10.0 * i);
  }
  EXPECT_TRUE(db.AddTable(std::move(users)).ok());
  EXPECT_TRUE(db.AddTable(std::move(orders)).ok());
  return db;
}

TEST(TraceTest, NestedSpans) {
  QueryTracer tracer;
  {
    SpanScope root(&tracer, "root");
    root.AddAttribute("k", 1.0);
    { SpanScope child_a(&tracer, "a"); }
    {
      SpanScope child_b(&tracer, "b");
      { SpanScope grandchild(&tracer, "b1"); }
    }
  }
  EXPECT_FALSE(tracer.has_open_span());
  ASSERT_EQ(tracer.roots().size(), 1u);
  const Span& root = tracer.roots()[0];
  EXPECT_EQ(root.name, "root");
  EXPECT_EQ(root.Attribute("k"), 1.0);
  EXPECT_EQ(root.Attribute("missing", -1.0), -1.0);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].name, "a");
  EXPECT_EQ(root.children[1].name, "b");
  ASSERT_EQ(root.children[1].children.size(), 1u);
  EXPECT_EQ(root.children[1].children[0].name, "b1");
  EXPECT_EQ(root.TreeSize(), 4u);
  EXPECT_GE(root.duration_ms, root.children[1].duration_ms);

  tracer.Clear();
  EXPECT_TRUE(tracer.roots().empty());
}

TEST(TraceTest, NullTracerIsSafe) {
  SpanScope scope(nullptr, "ignored");
  EXPECT_FALSE(scope.active());
  scope.SetDetail("d");
  scope.AddAttribute("k", 1.0);
}

// The executor must produce a span tree whose shape mirrors the physical
// plan: SimpleAggregate -> HashJoin -> {SeqScan(users), SeqScan(orders)}.
TEST(TraceTest, ExecutorSpanTreeMirrorsPlan) {
  storage::Database db = MakeDb();
  QueryTracer tracer;
  exec::ExecutorOptions options;
  options.tracer = &tracer;
  exec::Executor executor(&db, options);

  plan::PhysicalPlan plan(plan::MakeSimpleAggregate(
      plan::MakeHashJoin(plan::MakeSeqScan("users", std::nullopt),
                         plan::MakeSeqScan("orders", std::nullopt),
                         /*left_key_slot=*/0, /*right_key_slot=*/1),
      {plan::AggregateExpr{plan::AggFunc::kCount, std::nullopt}}));
  auto result = executor.Execute(&plan);
  ASSERT_TRUE(result.ok());

  ASSERT_EQ(tracer.roots().size(), 1u);
  const Span& root = tracer.roots()[0];
  EXPECT_EQ(root.name, "SimpleAggregate");
  EXPECT_EQ(root.TreeSize(), 4u);
  ASSERT_EQ(root.children.size(), 1u);
  const Span& join = root.children[0];
  EXPECT_EQ(join.name, "HashJoin");
  ASSERT_EQ(join.children.size(), 2u);
  EXPECT_EQ(join.children[0].name, "SeqScan");
  EXPECT_EQ(join.children[0].detail, "users");
  EXPECT_EQ(join.children[1].name, "SeqScan");
  EXPECT_EQ(join.children[1].detail, "orders");

  // Attributes mirror the recorded OperatorStats.
  EXPECT_EQ(join.children[0].Attribute("output_rows"), 5.0);
  EXPECT_EQ(join.children[1].Attribute("output_rows"), 8.0);
  EXPECT_EQ(join.Attribute("output_rows"), 8.0);
  EXPECT_EQ(join.Attribute("hash_build_rows"), 5.0);
  EXPECT_EQ(root.Attribute("output_rows"), 1.0);
  // A parent's wall time covers its children.
  EXPECT_GE(root.duration_ms, join.duration_ms);
}

TEST(TraceTest, ExecutorCountersAndSpanJsonRoundTrip) {
  storage::Database db = MakeDb();
  MetricsRegistry registry(/*enabled=*/true);
  QueryTracer tracer;
  exec::ExecutorOptions options;
  options.tracer = &tracer;
  options.metrics = &registry;
  exec::Executor executor(&db, options);

  plan::PhysicalPlan plan(plan::MakeSeqScan("users", std::nullopt));
  ASSERT_TRUE(executor.Execute(&plan).ok());
  EXPECT_EQ(registry.GetCounter("exec.queries")->value(), 1);
  EXPECT_EQ(registry.GetCounter("exec.operators")->value(), 1);
  EXPECT_EQ(registry.GetCounter("exec.rows_produced")->value(), 5);

  // Span JSON round-trip through Dump + Parse + FromJson.
  ASSERT_EQ(tracer.roots().size(), 1u);
  const Span& original = tracer.roots()[0];
  auto parsed = JsonValue::Parse(original.ToJson().Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto restored = Span::FromJson(*parsed);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->name, original.name);
  EXPECT_EQ(restored->detail, original.detail);
  EXPECT_DOUBLE_EQ(restored->duration_ms, original.duration_ms);
  EXPECT_EQ(restored->attributes, original.attributes);
  EXPECT_EQ(restored->children.size(), original.children.size());
  EXPECT_EQ(restored->ToJson().Dump(), original.ToJson().Dump());
}

// ---------------------------------------------------------------------------
// Training telemetry + artifact

TEST(TelemetryTest, RecordsEpochsAndSerializes) {
  TrainTelemetry telemetry("run");
  telemetry.RecordEpoch({1, 2.0, 2.5, 1e-3, 0.7});
  telemetry.RecordEpoch({2, 1.5, 2.0, 1e-3, 0.6});
  ASSERT_EQ(telemetry.epochs().size(), 2u);
  EXPECT_EQ(telemetry.epochs()[1].epoch, 2u);

  JsonValue json = telemetry.ToJson();
  const JsonValue* epochs = json.Find("epochs");
  ASSERT_NE(epochs, nullptr);
  ASSERT_EQ(epochs->size(), 2u);
  EXPECT_DOUBLE_EQ(epochs->at(0).Find("train_loss")->AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(epochs->at(1).Find("val_loss")->AsDouble(), 2.0);
}

TEST(ArtifactTest, WriteToProducesParseableJson) {
  MetricsRegistry registry(/*enabled=*/true);
  registry.GetCounter("events")->Add(4);

  QueryTracer tracer;
  { SpanScope scope(&tracer, "SeqScan"); }

  MetricsArtifact artifact("unit_test");
  artifact.AddLabel("scale", "tiny");
  artifact.SetRegistry(&registry);
  artifact.AddTrace("query", tracer.roots()[0]);
  artifact.AddTrainingRun("model", {{1, 2.0, 2.5, 1e-3, 0.7}});

  std::string path = ::testing::TempDir() + "/obs_artifact.json";
  ASSERT_TRUE(artifact.WriteTo(path).ok());

  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(file);
  std::remove(path.c_str());

  auto parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("name")->AsString(), "unit_test");
  EXPECT_EQ(parsed->Find("labels")->Find("scale")->AsString(), "tiny");
  EXPECT_EQ(
      parsed->Find("metrics")->Find("counters")->Find("events")->AsInt(), 4);
  ASSERT_NE(parsed->Find("traces")->Find("query"), nullptr);
  const JsonValue* run = parsed->Find("training")->Find("model");
  ASSERT_NE(run, nullptr);
  ASSERT_EQ(run->size(), 1u);
  EXPECT_EQ(run->at(0).Find("epoch")->AsInt(), 1);
}

}  // namespace
}  // namespace zerodb::obs
