#include <gtest/gtest.h>

#include <set>

#include "common/thread_pool.h"
#include "datagen/corpus.h"
#include "datagen/distributions.h"
#include "datagen/generator.h"

namespace zerodb::datagen {
namespace {

TEST(ZipfTest, UniformWhenSkewZero) {
  Rng rng(1);
  ZipfDistribution dist(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[dist.Draw(&rng)]++;
  for (int count : counts) EXPECT_NEAR(count, 1000, 150);
}

TEST(ZipfTest, SkewConcentratesMass) {
  Rng rng(2);
  ZipfDistribution dist(1000, 1.0);
  int rank0 = 0;
  for (int i = 0; i < 10000; ++i) {
    if (dist.Draw(&rng) == 0) ++rank0;
  }
  // With s=1, n=1000: P(rank 0) = 1/H_1000 ~= 1/7.49 ~= 13%.
  EXPECT_NEAR(rank0 / 10000.0, 0.133, 0.02);
}

TEST(ZipfTest, DrawsStayInDomain) {
  Rng rng(3);
  ZipfDistribution dist(7, 1.5);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = dist.Draw(&rng);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
  }
}

TEST(GeneratorTest, DeterministicInSeed) {
  GeneratorConfig config;
  config.min_rows = 100;
  config.max_rows = 500;
  storage::Database a = GenerateRandomDatabase("x", 42, config);
  storage::Database b = GenerateRandomDatabase("x", 42, config);
  ASSERT_EQ(a.tables().size(), b.tables().size());
  for (size_t t = 0; t < a.tables().size(); ++t) {
    EXPECT_EQ(a.tables()[t].name(), b.tables()[t].name());
    EXPECT_EQ(a.tables()[t].num_rows(), b.tables()[t].num_rows());
  }
  storage::Database c = GenerateRandomDatabase("x", 43, config);
  // Different seed should give a structurally different database (rows or
  // table count differ with overwhelming probability).
  bool differs = a.tables().size() != c.tables().size();
  if (!differs) {
    for (size_t t = 0; t < a.tables().size(); ++t) {
      if (a.tables()[t].num_rows() != c.tables()[t].num_rows()) differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(GeneratorTest, SchemaInvariants) {
  GeneratorConfig config;
  config.min_rows = 50;
  config.max_rows = 200;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    storage::Database db = GenerateRandomDatabase("inv", seed, config);
    EXPECT_GE(db.tables().size(), config.min_tables);
    EXPECT_LE(db.tables().size(), config.max_tables);
    for (const storage::Table& table : db.tables()) {
      EXPECT_TRUE(table.Validate().ok());
      EXPECT_GE(table.num_rows(), 10u);
      // First column is always the id primary key, sequential.
      EXPECT_EQ(table.schema().column(0).name, "id");
      EXPECT_EQ(table.column(0).GetValue(0).AsInt64(), 0);
    }
    // Every FK edge references valid endpoints and values within range.
    for (const catalog::ForeignKey& fk : db.catalog().foreign_keys()) {
      const storage::Table* child = db.FindTable(fk.table);
      const storage::Table* parent = db.FindTable(fk.ref_table);
      ASSERT_NE(child, nullptr);
      ASSERT_NE(parent, nullptr);
      auto column = child->ColumnIndex(fk.column);
      ASSERT_TRUE(column.ok());
      const storage::Column& fk_column = child->column(*column);
      int64_t parent_rows = static_cast<int64_t>(parent->num_rows());
      for (size_t row = 0; row < std::min<size_t>(fk_column.size(), 100);
           ++row) {
        int64_t v = fk_column.GetValue(row).AsInt64();
        EXPECT_GE(v, 0);
        EXPECT_LT(v, parent_rows);
      }
    }
    // Every non-root table has at least one foreign key.
    if (db.tables().size() > 1) {
      EXPECT_GE(db.catalog().foreign_keys().size(), db.tables().size() - 1);
    }
  }
}

TEST(GeneratorTest, ScaleMultipliesRows) {
  GeneratorConfig small;
  small.min_rows = 1000;
  small.max_rows = 1000;
  small.scale = 0.1;
  storage::Database db = GenerateRandomDatabase("s", 7, small);
  for (const storage::Table& table : db.tables()) {
    EXPECT_EQ(table.num_rows(), 100u);
  }
}

TEST(ImdbTest, SchemaMatchesJobLight) {
  storage::Database db = MakeImdbDatabase(11, 0.05);
  EXPECT_EQ(db.name(), "imdb");
  const char* expected[] = {"title",          "cast_info",
                            "movie_info",     "movie_info_idx",
                            "movie_companies", "movie_keyword"};
  for (const char* name : expected) {
    EXPECT_NE(db.FindTable(name), nullptr) << name;
  }
  // All satellites reference title.id via movie_id.
  EXPECT_EQ(db.catalog().foreign_keys().size(), 5u);
  for (const catalog::ForeignKey& fk : db.catalog().foreign_keys()) {
    EXPECT_EQ(fk.ref_table, "title");
    EXPECT_EQ(fk.column, "movie_id");
  }
  // Satellites are larger than the hub.
  size_t title_rows = db.FindTable("title")->num_rows();
  EXPECT_GT(db.FindTable("cast_info")->num_rows(), title_rows);
}

TEST(CorpusTest, NamesAndSizes) {
  EXPECT_EQ(TrainingDatabaseNames().size(), 19u);
  auto corpus = MakeTrainingCorpus(5, 3, /*scale=*/0.05);
  ASSERT_EQ(corpus.size(), 3u);
  EXPECT_EQ(corpus[0].db->name(), "airline");
  EXPECT_EQ(corpus[1].db->name(), "ssb");
  for (const DatabaseEnv& env : corpus) {
    EXPECT_GT(env.db->tables().size(), 0u);
    // Stats were built for every table.
    for (const storage::Table& table : env.db->tables()) {
      EXPECT_NE(env.stats.FindTable(table.name()), nullptr);
    }
  }
}

TEST(CorpusTest, ParallelGenerationBitIdentical) {
  // The determinism contract: per-database seeds are pre-drawn in serial
  // order, so a 4-thread corpus equals the serial corpus cell for cell.
  std::vector<DatabaseEnv> serial =
      MakeTrainingCorpus(5, 6, /*scale=*/0.05, /*pool=*/nullptr);
  ThreadPool pool(4);
  std::vector<DatabaseEnv> parallel =
      MakeTrainingCorpus(5, 6, /*scale=*/0.05, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t d = 0; d < serial.size(); ++d) {
    const storage::Database& a = *serial[d].db;
    const storage::Database& b = *parallel[d].db;
    EXPECT_EQ(a.name(), b.name());
    ASSERT_EQ(a.tables().size(), b.tables().size());
    for (size_t t = 0; t < a.tables().size(); ++t) {
      const storage::Table& ta = a.tables()[t];
      const storage::Table& tb = b.tables()[t];
      EXPECT_EQ(ta.name(), tb.name());
      ASSERT_EQ(ta.num_columns(), tb.num_columns());
      ASSERT_EQ(ta.num_rows(), tb.num_rows());
      for (size_t c = 0; c < ta.num_columns(); ++c) {
        for (size_t r = 0; r < ta.num_rows(); ++r) {
          ASSERT_EQ(ta.column(c).GetValue(r), tb.column(c).GetValue(r))
              << a.name() << "." << ta.name() << " col " << c << " row " << r;
        }
      }
    }
    ASSERT_EQ(a.indexes().size(), b.indexes().size());
    for (size_t i = 0; i < a.indexes().size(); ++i) {
      EXPECT_EQ(a.indexes()[i].table_name(), b.indexes()[i].table_name());
      EXPECT_EQ(a.indexes()[i].column_index(), b.indexes()[i].column_index());
    }
  }
}

TEST(CorpusTest, EnvRefreshStats) {
  auto env = MakeImdbEnv(3, 0.02);
  int64_t rows_before = env.stats.GetTable("title").num_rows;
  env.RefreshStats();
  EXPECT_EQ(env.stats.GetTable("title").num_rows, rows_before);
}

}  // namespace
}  // namespace zerodb::datagen
