#include <gtest/gtest.h>

#include <cmath>
#include <regex>
#include <set>
#include <thread>

#include "common/logging.h"
#include "common/sync.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace zerodb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseParsed(int x, int* out) {
  ZDB_ASSIGN_OR_RETURN(int parsed, ParsePositive(x));
  *out = parsed * 2;
  return Status::OK();
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = ParsePositive(21);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 21);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = ParsePositive(-1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseParsed(4, &out).ok());
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(UseParsed(-4, &out).ok());
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NormalMeanAndStdDev) {
  Rng rng(13);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.Normal(3.0, 2.0));
  EXPECT_NEAR(Mean(samples), 3.0, 0.1);
  EXPECT_NEAR(StdDev(samples), 2.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 3.0};
  int count1 = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Categorical(weights) == 1) ++count1;
  }
  EXPECT_NEAR(count1 / 10000.0, 0.75, 0.03);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleAllElements) {
  Rng rng(29);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(31);
  std::vector<int> items = {1, 2, 3, 4, 5, 6};
  auto original = items;
  rng.Shuffle(&items);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkIndependentStream) {
  Rng parent(37);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextUint64(), child.NextUint64());
}

TEST(MathTest, QErrorSymmetric) {
  EXPECT_DOUBLE_EQ(QError(10.0, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(QError(5.0, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(QError(7.0, 7.0), 1.0);
}

TEST(MathTest, QErrorHandlesZero) {
  double q = QError(0.0, 1.0);
  EXPECT_GT(q, 1e6);
  EXPECT_TRUE(std::isfinite(q));
}

TEST(MathTest, QuantileInterpolates) {
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 2.5);
}

TEST(MathTest, QuantileSingleValue) {
  EXPECT_DOUBLE_EQ(Quantile({42.0}, 0.9), 42.0);
}

TEST(MathTest, MeanAndStdDev) {
  std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(values), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(values), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
}

TEST(MathTest, LinearFitRecoversLine) {
  std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
  std::vector<double> y = {1.0, 3.0, 5.0, 7.0};
  LinearFit fit = FitLeastSquares(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
}

TEST(MathTest, LinearFitDegenerateConstantX) {
  LinearFit fit = FitLeastSquares({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
  EXPECT_EQ(CeilDiv(1, 8), 1);
}

TEST(MathTest, Log1pSafeClampsNegative) {
  EXPECT_DOUBLE_EQ(Log1pSafe(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(Log1pSafe(0.0), 0.0);
  EXPECT_NEAR(Log1pSafe(std::exp(1.0) - 1.0), 1.0, 1e-12);
}

TEST(StringTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringTest, Split) {
  auto pieces = Split("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(pieces[3], "c");
}

TEST(StringTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
}

TEST(StringTest, Padding) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");
}

// Captures log lines via SetLogSink, restoring defaults on destruction.
class LogCapture {
 public:
  LogCapture() {
    previous_level_ = GetLogLevel();
    SetLogLevel(LogLevel::kDebug);
    SetLogSink([this](const std::string& line) {
      MutexLock lock(&mu_);
      lines_.push_back(line);
    });
  }
  ~LogCapture() {
    SetLogSink(nullptr);
    SetLogLevel(previous_level_);
  }

  std::vector<std::string> lines() {
    MutexLock lock(&mu_);
    return lines_;
  }

 private:
  LogLevel previous_level_;
  Mutex mu_;
  std::vector<std::string> lines_ ZDB_GUARDED_BY(mu_);
};

TEST(LoggingTest, PrefixFormat) {
  LogCapture capture;
  ZDB_LOG(Info) << "hello " << 42;
  auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  // [I 2026-08-06T12:34:56.789Z t1 common_test.cc:NNN] hello 42
  std::regex prefix(
      R"(^\[I \d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z t\d+ )"
      R"(common_test\.cc:\d+\] hello 42$)");
  EXPECT_TRUE(std::regex_match(lines[0], prefix)) << lines[0];
}

TEST(LoggingTest, LevelFiltering) {
  LogCapture capture;
  SetLogLevel(LogLevel::kWarning);
  ZDB_LOG(Info) << "dropped";
  ZDB_LOG(Warning) << "kept";
  auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("kept"), std::string::npos);
}

TEST(LoggingTest, ConcurrentWritersProduceWholeLines) {
  LogCapture capture;
  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  // zerodb-lint: allow(raw-thread): raw threads race the log sink directly
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        ZDB_LOG(Info) << "writer=" << t << " line=" << i << " payload="
                      << std::string(64, 'x');
      }
    });
  }
  // zerodb-lint: allow(raw-thread): raw threads race the log sink directly
  for (std::thread& thread : threads) thread.join();

  auto lines = capture.lines();
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads * kLines));
  // Every captured line is exactly one writer's message — interleaved
  // fragments would break the trailing payload or duplicate prefixes.
  std::regex body(R"(^\[I .*\] writer=\d+ line=\d+ payload=x{64}$)");
  std::set<std::string> distinct;
  for (const std::string& line : lines) {
    EXPECT_TRUE(std::regex_match(line, body)) << line;
    distinct.insert(line.substr(line.find(']')));
  }
  EXPECT_EQ(distinct.size(), static_cast<size_t>(kThreads * kLines));
}

}  // namespace
}  // namespace zerodb
