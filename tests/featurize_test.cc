#include <gtest/gtest.h>

#include "datagen/corpus.h"
#include "featurize/e2e_featurizer.h"
#include "featurize/mscn_featurizer.h"
#include "featurize/normalization.h"
#include "featurize/zeroshot_featurizer.h"
#include "optimizer/optimizer.h"
#include "train/dataset.h"
#include "workload/benchmarks.h"

namespace zerodb::featurize {
namespace {

// Two structurally identical databases that differ only in names — the
// zero-shot encoding must match between them; the one-hot encodings differ.
datagen::DatabaseEnv MakeNamedEnv(const std::string& db_name,
                                  const std::string& table_a,
                                  const std::string& table_b) {
  using catalog::ColumnSchema;
  using catalog::DataType;
  using catalog::TableSchema;
  storage::Database db(db_name);
  storage::Table a(TableSchema(table_a, {ColumnSchema{"id", DataType::kInt64, 8},
                                         ColumnSchema{"x", DataType::kInt64, 8}}));
  for (int i = 0; i < 500; ++i) {
    a.column(0).AppendInt64(i);
    // Skewed: value 3 dominates, so the uniform-over-distinct estimator is
    // wrong for most literals (estimated vs exact cardinalities diverge).
    a.column(1).AppendInt64(i < 400 ? 3 : i % 50);
  }
  storage::Table b(TableSchema(table_b, {ColumnSchema{"id", DataType::kInt64, 8},
                                         ColumnSchema{"a_ref", DataType::kInt64, 8},
                                         ColumnSchema{"y", DataType::kDouble, 8}}));
  for (int i = 0; i < 1500; ++i) {
    b.column(0).AppendInt64(i);
    b.column(1).AppendInt64(i % 500);
    b.column(2).AppendDouble(i * 0.25);
  }
  EXPECT_TRUE(db.AddTable(std::move(a)).ok());
  EXPECT_TRUE(db.AddTable(std::move(b)).ok());
  EXPECT_TRUE(db.mutable_catalog()
                  .AddForeignKey(catalog::ForeignKey{table_b, "a_ref", table_a,
                                                     "id"})
                  .ok());
  return datagen::MakeEnv(std::move(db));
}

plan::QuerySpec TwoWayJoinQuery(const std::string& table_a,
                                const std::string& table_b) {
  plan::QuerySpec query;
  query.tables = {table_a, table_b};
  query.joins = {plan::JoinSpec{table_b, "a_ref", table_a, "id"}};
  query.filters = {plan::FilterSpec{
      table_a, plan::Predicate::Compare(1, plan::CompareOp::kEq, 7)}};
  query.aggregates = {plan::AggregateSpec{plan::AggFunc::kCount, "", ""}};
  return query;
}

train::QueryRecord MakeRecord(const datagen::DatabaseEnv& env,
                              const plan::QuerySpec& query) {
  auto records = train::CollectRecords(env, {query}, train::CollectOptions());
  EXPECT_EQ(records.size(), 1u);
  return std::move(records[0]);
}

TEST(ZeroShotFeaturizerTest, DatabaseIndependence) {
  // Same structure, different names/identities: identical features.
  auto env1 = MakeNamedEnv("db1", "alpha", "beta");
  auto env2 = MakeNamedEnv("db2", "gamma", "delta");
  auto record1 = MakeRecord(env1, TwoWayJoinQuery("alpha", "beta"));
  auto record2 = MakeRecord(env2, TwoWayJoinQuery("gamma", "delta"));

  ZeroShotFeaturizer featurizer(CardinalityMode::kEstimated);
  PlanGraph graph1 = featurizer.Featurize(*record1.plan.root, env1);
  PlanGraph graph2 = featurizer.Featurize(*record2.plan.root, env2);
  ASSERT_EQ(graph1.nodes.size(), graph2.nodes.size());
  for (size_t n = 0; n < graph1.nodes.size(); ++n) {
    EXPECT_EQ(graph1.nodes[n].op_type, graph2.nodes[n].op_type);
    ASSERT_EQ(graph1.nodes[n].features.size(), graph2.nodes[n].features.size());
    for (size_t d = 0; d < graph1.nodes[n].features.size(); ++d) {
      EXPECT_FLOAT_EQ(graph1.nodes[n].features[d], graph2.nodes[n].features[d])
          << "node " << n << " dim " << d;
    }
  }
}

TEST(ZeroShotFeaturizerTest, GraphMirrorsPlanStructure) {
  auto env = MakeNamedEnv("db", "alpha", "beta");
  auto record = MakeRecord(env, TwoWayJoinQuery("alpha", "beta"));
  ZeroShotFeaturizer featurizer(CardinalityMode::kEstimated);
  PlanGraph graph = featurizer.Featurize(*record.plan.root, env);
  EXPECT_EQ(graph.nodes.size(), record.plan.root->SubtreeSize());
  // Root is an aggregate with one child.
  EXPECT_EQ(graph.nodes[graph.root()].children.size(), 1u);
  EXPECT_EQ(graph.nodes[graph.root()].level, graph.max_level());
  for (const PlanGraphNode& node : graph.nodes) {
    EXPECT_EQ(node.features.size(), ZeroShotFeaturizer::kFeatureDim);
  }
}

TEST(ZeroShotFeaturizerTest, ExactVsEstimatedDiffer) {
  auto env = MakeNamedEnv("db", "alpha", "beta");
  auto record = MakeRecord(env, TwoWayJoinQuery("alpha", "beta"));
  ZeroShotFeaturizer estimated(CardinalityMode::kEstimated);
  ZeroShotFeaturizer exact(CardinalityMode::kExact);
  PlanGraph g_est = estimated.Featurize(*record.plan.root, env);
  PlanGraph g_exact = exact.Featurize(*record.plan.root, env);
  // Cardinality features (dim 0) generally differ between modes.
  bool any_difference = false;
  for (size_t n = 0; n < g_est.nodes.size(); ++n) {
    if (g_est.nodes[n].features[0] != g_exact.nodes[n].features[0]) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(ZeroShotFeaturizerTest, NoLiteralValuesInFeatures) {
  // Shifting every literal must not change zero-shot features when the
  // resulting cardinality estimates are forced equal (structure-only).
  auto env = MakeNamedEnv("db", "alpha", "beta");
  plan::QuerySpec q1 = TwoWayJoinQuery("alpha", "beta");
  auto r1 = MakeRecord(env, q1);
  // Same predicate structure, different literal with same est selectivity
  // (eq on x has uniform 1/nd for any in-domain literal).
  plan::QuerySpec q2 = q1;
  q2.filters[0].predicate = plan::Predicate::Compare(1, plan::CompareOp::kEq, 13);
  auto r2 = MakeRecord(env, q2);
  ZeroShotFeaturizer featurizer(CardinalityMode::kEstimated);
  PlanGraph g1 = featurizer.Featurize(*r1.plan.root, env);
  PlanGraph g2 = featurizer.Featurize(*r2.plan.root, env);
  ASSERT_EQ(g1.nodes.size(), g2.nodes.size());
  for (size_t n = 0; n < g1.nodes.size(); ++n) {
    for (size_t d = 0; d < g1.nodes[n].features.size(); ++d) {
      EXPECT_FLOAT_EQ(g1.nodes[n].features[d], g2.nodes[n].features[d]);
    }
  }
}

TEST(E2EFeaturizerTest, DatabaseDependence) {
  // The whole point of the contrast: E2E features DO depend on identity.
  auto env = MakeNamedEnv("db", "alpha", "beta");
  plan::QuerySpec on_alpha;
  on_alpha.tables = {"alpha"};
  on_alpha.filters = {plan::FilterSpec{
      "alpha", plan::Predicate::Compare(1, plan::CompareOp::kEq, 7)}};
  plan::QuerySpec on_beta;
  on_beta.tables = {"beta"};
  on_beta.filters = {plan::FilterSpec{
      "beta", plan::Predicate::Compare(2, plan::CompareOp::kGe, 10.0)}};
  auto r_alpha = MakeRecord(env, on_alpha);
  auto r_beta = MakeRecord(env, on_beta);

  E2EFeaturizer featurizer(CardinalityMode::kEstimated);
  PlanGraph g_alpha = featurizer.Featurize(*r_alpha.plan.root, env);
  PlanGraph g_beta = featurizer.Featurize(*r_beta.plan.root, env);
  // Table one-hot region (offset 9): alpha sets slot 9+0, beta slot 9+1.
  EXPECT_FLOAT_EQ(g_alpha.nodes[0].features[9 + 0], 1.0f);
  EXPECT_FLOAT_EQ(g_alpha.nodes[0].features[9 + 1], 0.0f);
  EXPECT_FLOAT_EQ(g_beta.nodes[0].features[9 + 0], 0.0f);
  EXPECT_FLOAT_EQ(g_beta.nodes[0].features[9 + 1], 1.0f);
}

TEST(E2EFeaturizerTest, LiteralValuesPresent) {
  auto env = MakeNamedEnv("db", "alpha", "beta");
  plan::QuerySpec q1 = TwoWayJoinQuery("alpha", "beta");
  plan::QuerySpec q2 = q1;
  q2.filters[0].predicate =
      plan::Predicate::Compare(1, plan::CompareOp::kEq, 45);
  auto r1 = MakeRecord(env, q1);
  auto r2 = MakeRecord(env, q2);
  E2EFeaturizer featurizer(CardinalityMode::kEstimated);
  PlanGraph g1 = featurizer.Featurize(*r1.plan.root, env);
  PlanGraph g2 = featurizer.Featurize(*r2.plan.root, env);
  bool any_difference = false;
  for (size_t n = 0; n < g1.nodes.size(); ++n) {
    for (size_t d = 0; d < g1.nodes[n].features.size(); ++d) {
      if (g1.nodes[n].features[d] != g2.nodes[n].features[d]) {
        any_difference = true;
      }
    }
  }
  EXPECT_TRUE(any_difference);  // literal 7 vs 45 visible to E2E
}

TEST(E2EFeaturizerTest, FeatureDimensionsConsistent) {
  auto env = datagen::MakeImdbEnv(5, 0.02);
  workload::QueryGenerator generator(&env,
                                     workload::TrainingWorkloadConfig(), 3);
  E2EFeaturizer featurizer(CardinalityMode::kEstimated);
  for (int i = 0; i < 10; ++i) {
    auto record = MakeRecord(env, generator.Next());
    PlanGraph graph = featurizer.Featurize(*record.plan.root, env);
    for (const PlanGraphNode& node : graph.nodes) {
      EXPECT_EQ(node.features.size(), E2EFeaturizer::kFeatureDim);
    }
  }
}

TEST(MscnFeaturizerTest, SetSizesMatchQuery) {
  auto env = MakeNamedEnv("db", "alpha", "beta");
  plan::QuerySpec query = TwoWayJoinQuery("alpha", "beta");
  MscnFeaturizer featurizer;
  MscnSets sets = featurizer.Featurize(query, env);
  EXPECT_EQ(sets.tables.size(), 2u);
  EXPECT_EQ(sets.joins.size(), 1u);
  EXPECT_EQ(sets.predicates.size(), 1u);
  EXPECT_EQ(sets.tables[0].size(), MscnFeaturizer::kTableDim);
  EXPECT_EQ(sets.joins[0].size(), MscnFeaturizer::kJoinDim);
  EXPECT_EQ(sets.predicates[0].size(), MscnFeaturizer::kPredicateDim);
}

TEST(MscnFeaturizerTest, EmptySetsForSingleTableNoFilter) {
  auto env = MakeNamedEnv("db", "alpha", "beta");
  plan::QuerySpec query;
  query.tables = {"alpha"};
  query.aggregates = {plan::AggregateSpec{plan::AggFunc::kCount, "", ""}};
  MscnFeaturizer featurizer;
  MscnSets sets = featurizer.Featurize(query, env);
  EXPECT_EQ(sets.tables.size(), 1u);
  EXPECT_TRUE(sets.joins.empty());
  EXPECT_TRUE(sets.predicates.empty());
}

TEST(MscnFeaturizerTest, OrPredicatesExpandToLeaves) {
  auto env = MakeNamedEnv("db", "alpha", "beta");
  plan::QuerySpec query;
  query.tables = {"alpha"};
  query.filters = {plan::FilterSpec{
      "alpha",
      plan::Predicate::Or({plan::Predicate::Compare(1, plan::CompareOp::kEq, 1),
                           plan::Predicate::Compare(1, plan::CompareOp::kEq, 2)})}};
  MscnFeaturizer featurizer;
  MscnSets sets = featurizer.Featurize(query, env);
  EXPECT_EQ(sets.predicates.size(), 2u);
}

TEST(NormalizationTest, FeatureNormStandardizes) {
  std::vector<float> a = {1.0f, 10.0f};
  std::vector<float> b = {3.0f, 10.0f};
  FeatureNorm norm;
  norm.Fit({&a, &b});
  std::vector<float> row = {1.0f, 10.0f};
  norm.Apply(&row);
  EXPECT_FLOAT_EQ(row[0], -1.0f);  // (1-2)/1
  EXPECT_FLOAT_EQ(row[1], 0.0f);   // constant dim: centered, unscaled
}

TEST(NormalizationTest, TargetNormRoundTrip) {
  TargetNorm norm;
  norm.Fit({LogMillis(1.0), LogMillis(2.0), LogMillis(3.0), LogMillis(4.0)});
  for (double v : {0.5, 2.5, 9.0}) {
    EXPECT_NEAR(norm.Denormalize(norm.Normalize(LogMillis(v))).value(), v,
                1e-12);
  }
}

TEST(NormalizationTest, UnfittedApplyIsNoop) {
  FeatureNorm norm;
  std::vector<float> row = {5.0f};
  norm.Apply(&row);
  EXPECT_FLOAT_EQ(row[0], 5.0f);
}

TEST(PlanGraphTest, ComputeLevels) {
  PlanGraph graph;
  graph.nodes.resize(4);
  graph.nodes[0].children = {1, 2};
  graph.nodes[2].children = {3};
  graph.ComputeLevels();
  EXPECT_EQ(graph.nodes[1].level, 0u);
  EXPECT_EQ(graph.nodes[3].level, 0u);
  EXPECT_EQ(graph.nodes[2].level, 1u);
  EXPECT_EQ(graph.nodes[0].level, 2u);
  EXPECT_EQ(graph.max_level(), 2u);
}

}  // namespace
}  // namespace zerodb::featurize
