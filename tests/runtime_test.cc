#include <gtest/gtest.h>

#include "common/math_util.h"
#include "datagen/corpus.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "runtime/simulator.h"
#include "workload/benchmarks.h"
#include "workload/generator.h"

namespace zerodb::runtime {
namespace {

TEST(SimulatorTest, OperatorTimesPositiveAndMonotone) {
  RuntimeSimulator simulator;
  exec::OperatorStats small;
  small.rows_scanned = 100;
  small.pages_read = 2;
  small.output_rows = 50;
  small.output_bytes = 800;
  exec::OperatorStats big = small;
  big.rows_scanned = 100000;
  big.pages_read = 2000;
  big.output_rows = 50000;
  big.output_bytes = 800000;
  double t_small =
      simulator.OperatorMs(plan::PhysicalOpType::kSeqScan, small, 0);
  double t_big = simulator.OperatorMs(plan::PhysicalOpType::kSeqScan, big, 0);
  EXPECT_GT(t_small, 0.0);
  EXPECT_GT(t_big, 10 * t_small);
}

TEST(SimulatorTest, HashJoinCachePenaltyIsNonlinear) {
  RuntimeSimulator simulator;
  exec::OperatorStats small;
  small.hash_build_rows = 1000;
  small.hash_probe_rows = 1000;
  exec::OperatorStats big;
  big.hash_build_rows = 1000000;
  big.hash_probe_rows = 1000000;
  double t_small =
      simulator.OperatorMs(plan::PhysicalOpType::kHashJoin, small, 0);
  double t_big = simulator.OperatorMs(plan::PhysicalOpType::kHashJoin, big, 0);
  // 1000x the rows must cost MORE than 1000x the time (cache penalty),
  // after subtracting the constant startup.
  double startup = simulator.profile().operator_startup_ms;
  EXPECT_GT(t_big - startup, 1000.0 * (t_small - startup));
}

TEST(SimulatorTest, EndToEndPipeline) {
  auto env = datagen::MakeImdbEnv(3, 0.05);
  optimizer::Planner planner(env.db.get(), &env.stats);
  exec::Executor executor(env.db.get());
  RuntimeSimulator simulator;
  workload::QueryGenerator generator(&env,
                                     workload::TrainingWorkloadConfig(), 11);
  Rng noise_rng(5);
  int measured = 0;
  for (int i = 0; i < 30; ++i) {
    auto plan = planner.Plan(generator.Next());
    ASSERT_TRUE(plan.ok());
    auto result = executor.Execute(&*plan);
    if (!result.ok()) continue;
    double ms = simulator.PlanMs(*plan, *result);
    EXPECT_GT(ms, simulator.profile().startup_ms);
    EXPECT_LT(ms, 60 * 60 * 1000.0);  // sanity: under an hour
    double noisy = simulator.NoisyPlanMs(*plan, *result, &noise_rng);
    EXPECT_GT(noisy, 0.0);
    ++measured;
  }
  EXPECT_GT(measured, 20);
}

TEST(SimulatorTest, NoiseIsMeanOneMultiplicative) {
  auto env = datagen::MakeImdbEnv(3, 0.02);
  optimizer::Planner planner(env.db.get(), &env.stats);
  exec::Executor executor(env.db.get());
  RuntimeSimulator simulator;
  workload::QueryGenerator generator(&env,
                                     workload::TrainingWorkloadConfig(), 11);
  auto plan = planner.Plan(generator.Next());
  ASSERT_TRUE(plan.ok());
  auto result = executor.Execute(&*plan);
  ASSERT_TRUE(result.ok());
  double base = simulator.PlanMs(*plan, *result);
  Rng rng(7);
  std::vector<double> ratios;
  for (int i = 0; i < 5000; ++i) {
    ratios.push_back(simulator.NoisyPlanMs(*plan, *result, &rng) / base);
  }
  EXPECT_NEAR(Mean(ratios), 1.0, 0.02);
  EXPECT_NEAR(StdDev(ratios), simulator.profile().noise_sigma, 0.02);
}

TEST(SimulatorTest, IndexPlanFasterThanSeqForSelectiveQuery) {
  // The whole premise of the index experiments: with a selective predicate,
  // the index plan's simulated runtime beats the sequential plan's.
  auto env = datagen::MakeImdbEnv(9, 0.2);
  size_t year_col = *env.db->FindTable("title")->schema().FindColumn(
      "production_year");
  plan::QuerySpec query;
  query.tables = {"title"};
  query.filters = {plan::FilterSpec{
      "title", plan::Predicate::Compare(year_col, plan::CompareOp::kEq, 2018)}};
  query.aggregates = {plan::AggregateSpec{plan::AggFunc::kCount, "", ""}};

  exec::Executor executor(env.db.get());
  RuntimeSimulator simulator;

  optimizer::PlannerOptions seq_only;
  seq_only.enable_index_scan = false;
  optimizer::Planner seq_planner(env.db.get(), &env.stats,
                                 optimizer::CostParams(), seq_only);
  auto seq_plan = seq_planner.Plan(query);
  ASSERT_TRUE(seq_plan.ok());
  auto seq_result = executor.Execute(&*seq_plan);
  ASSERT_TRUE(seq_result.ok());
  double seq_ms = simulator.PlanMs(*seq_plan, *seq_result);

  ASSERT_TRUE(env.db->CreateIndex("title", "production_year").ok());
  env.RefreshStats();
  optimizer::Planner idx_planner(env.db.get(), &env.stats);
  auto idx_plan = idx_planner.Plan(query);
  ASSERT_TRUE(idx_plan.ok());
  ASSERT_EQ(idx_plan->root->children[0]->type,
            plan::PhysicalOpType::kIndexScan);
  auto idx_result = executor.Execute(&*idx_plan);
  ASSERT_TRUE(idx_result.ok());
  double idx_ms = simulator.PlanMs(*idx_plan, *idx_result);

  EXPECT_LT(idx_ms, seq_ms);
}

}  // namespace
}  // namespace zerodb::runtime
