#include <gtest/gtest.h>

#include <unordered_map>

#include "catalog/schema.h"
#include "plan/expr.h"
#include "plan/fingerprint.h"
#include "plan/physical.h"
#include "plan/query.h"
#include "storage/database.h"

namespace zerodb::plan {
namespace {

using catalog::ColumnSchema;
using catalog::DataType;
using catalog::TableSchema;

storage::Database MakeDb() {
  storage::Database db("test");
  storage::Table a(TableSchema("a", {ColumnSchema{"id", DataType::kInt64, 8},
                                     ColumnSchema{"x", DataType::kInt64, 8}}));
  storage::Table b(TableSchema("b", {ColumnSchema{"id", DataType::kInt64, 8},
                                     ColumnSchema{"a_id", DataType::kInt64, 8},
                                     ColumnSchema{"y", DataType::kDouble, 8}}));
  for (int i = 0; i < 4; ++i) {
    a.column(0).AppendInt64(i);
    a.column(1).AppendInt64(i * 10);
  }
  for (int i = 0; i < 6; ++i) {
    b.column(0).AppendInt64(i);
    b.column(1).AppendInt64(i % 4);
    b.column(2).AppendDouble(i * 0.5);
  }
  EXPECT_TRUE(db.AddTable(std::move(a)).ok());
  EXPECT_TRUE(db.AddTable(std::move(b)).ok());
  EXPECT_TRUE(db.mutable_catalog()
                  .AddForeignKey(catalog::ForeignKey{"b", "a_id", "a", "id"})
                  .ok());
  return db;
}

TEST(PredicateTest, EvaluateLeaves) {
  EXPECT_TRUE(EvaluateCompare(5, CompareOp::kEq, 5));
  EXPECT_TRUE(EvaluateCompare(4, CompareOp::kNe, 5));
  EXPECT_TRUE(EvaluateCompare(4, CompareOp::kLt, 5));
  EXPECT_TRUE(EvaluateCompare(5, CompareOp::kLe, 5));
  EXPECT_TRUE(EvaluateCompare(6, CompareOp::kGt, 5));
  EXPECT_TRUE(EvaluateCompare(5, CompareOp::kGe, 5));
  EXPECT_FALSE(EvaluateCompare(5, CompareOp::kLt, 5));
}

TEST(PredicateTest, AndOrEvaluate) {
  // (x >= 10 AND x <= 20) OR y = 1
  Predicate p = Predicate::Or(
      {Predicate::And({Predicate::Compare(0, CompareOp::kGe, 10),
                       Predicate::Compare(0, CompareOp::kLe, 20)}),
       Predicate::Compare(1, CompareOp::kEq, 1)});
  EXPECT_TRUE(p.Evaluate({15, 0}));
  EXPECT_TRUE(p.Evaluate({99, 1}));
  EXPECT_FALSE(p.Evaluate({99, 0}));
  EXPECT_EQ(p.NumComparisons(), 3u);
  EXPECT_EQ(p.Depth(), 3u);
}

TEST(PredicateTest, SingleChildCollapses) {
  Predicate p = Predicate::And({Predicate::Compare(2, CompareOp::kEq, 7)});
  EXPECT_EQ(p.kind(), Predicate::Kind::kCompare);
  EXPECT_EQ(p.slot(), 2u);
}

TEST(PredicateTest, ReferencedSlotsDeduplicated) {
  Predicate p = Predicate::And({Predicate::Compare(3, CompareOp::kGe, 1),
                                Predicate::Compare(3, CompareOp::kLe, 9),
                                Predicate::Compare(1, CompareOp::kEq, 0)});
  auto slots = p.ReferencedSlots();
  EXPECT_EQ(slots.size(), 2u);
}

TEST(PredicateTest, RemapSlots) {
  Predicate p = Predicate::And({Predicate::Compare(0, CompareOp::kGe, 1),
                                Predicate::Compare(1, CompareOp::kLe, 9)});
  Predicate remapped = p.RemapSlots({5, 7});
  auto slots = remapped.ReferencedSlots();
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_EQ(slots[0], 5u);
  EXPECT_EQ(slots[1], 7u);
}

TEST(PredicateTest, ToStringReadable) {
  Predicate p = Predicate::And({Predicate::Compare(0, CompareOp::kGe, 30),
                                Predicate::Compare(1, CompareOp::kEq, 2)});
  EXPECT_EQ(p.ToString({"age", "kind"}), "(age >= 30 AND kind = 2)");
}

TEST(QuerySpecTest, ToSqlRendering) {
  storage::Database db = MakeDb();
  QuerySpec query;
  query.tables = {"a", "b"};
  query.joins = {JoinSpec{"b", "a_id", "a", "id"}};
  query.filters = {FilterSpec{"a", Predicate::Compare(1, CompareOp::kGt, 5)}};
  query.aggregates = {AggregateSpec{AggFunc::kCount, "", ""}};
  std::string sql = query.ToSql(db);
  EXPECT_NE(sql.find("SELECT COUNT(*)"), std::string::npos);
  EXPECT_NE(sql.find("FROM a, b"), std::string::npos);
  EXPECT_NE(sql.find("b.a_id = a.id"), std::string::npos);
  EXPECT_NE(sql.find("a.x > 5"), std::string::npos);
}

TEST(QuerySpecTest, ValidateCatchesErrors) {
  storage::Database db = MakeDb();
  QuerySpec query;
  EXPECT_FALSE(query.Validate(db).ok());  // no tables

  query.tables = {"ghost"};
  EXPECT_FALSE(query.Validate(db).ok());  // unknown table

  query.tables = {"a", "b"};
  EXPECT_FALSE(query.Validate(db).ok());  // disconnected (no join)

  query.joins = {JoinSpec{"b", "a_id", "a", "id"}};
  EXPECT_TRUE(query.Validate(db).ok());

  query.filters = {FilterSpec{"a", Predicate::Compare(9, CompareOp::kEq, 1)}};
  EXPECT_FALSE(query.Validate(db).ok());  // slot out of range
  query.filters.clear();

  query.aggregates = {AggregateSpec{AggFunc::kSum, "a", "nope"}};
  EXPECT_FALSE(query.Validate(db).ok());  // unknown aggregate column
}

TEST(PhysicalPlanTest, OutputSchemas) {
  storage::Database db = MakeDb();
  auto scan_a = MakeSeqScan("a", std::nullopt);
  EXPECT_EQ(scan_a->OutputSchema(db).size(), 2u);

  auto scan_b = MakeSeqScan("b", std::nullopt);
  auto join = MakeHashJoin(std::move(scan_a), std::move(scan_b), 0, 1);
  auto schema = join->OutputSchema(db);
  ASSERT_EQ(schema.size(), 5u);
  EXPECT_EQ(schema[0].table, "a");
  EXPECT_EQ(schema[2].table, "b");

  auto agg = MakeSimpleAggregate(std::move(join),
                                 {AggregateExpr{AggFunc::kCount, std::nullopt}});
  auto agg_schema = agg->OutputSchema(db);
  ASSERT_EQ(agg_schema.size(), 1u);
  EXPECT_TRUE(agg_schema[0].synthetic);
  EXPECT_EQ(agg->OutputWidthBytes(db), 8);
}

TEST(PhysicalPlanTest, IndexNLJoinSchema) {
  storage::Database db = MakeDb();
  auto scan_a = MakeSeqScan("a", std::nullopt);
  auto inlj = MakeIndexNLJoin(std::move(scan_a), "b", 0, 1, std::nullopt);
  auto schema = inlj->OutputSchema(db);
  ASSERT_EQ(schema.size(), 5u);
  EXPECT_EQ(schema[4].table, "b");
}

TEST(PhysicalPlanTest, SubtreeSizeHeightVisit) {
  storage::Database db = MakeDb();
  auto join = MakeHashJoin(MakeSeqScan("a", std::nullopt),
                           MakeSeqScan("b", std::nullopt), 0, 1);
  auto root = MakeSimpleAggregate(std::move(join),
                                  {AggregateExpr{AggFunc::kCount, std::nullopt}});
  EXPECT_EQ(root->SubtreeSize(), 4u);
  EXPECT_EQ(root->Height(), 3u);
  size_t visited = 0;
  root->Visit([&](const PhysicalNode&) { ++visited; });
  EXPECT_EQ(visited, 4u);
}

TEST(PhysicalPlanTest, CloneDeepCopies) {
  auto scan = MakeSeqScan("a", Predicate::Compare(1, CompareOp::kGt, 5));
  scan->est_cardinality = 42.0;
  scan->true_cardinality = 40.0;
  auto clone = scan->Clone();
  EXPECT_EQ(clone->est_cardinality, 42.0);
  EXPECT_EQ(clone->true_cardinality, 40.0);
  EXPECT_TRUE(clone->predicate.has_value());
  clone->est_cardinality = 1.0;
  EXPECT_EQ(scan->est_cardinality, 42.0);
}

TEST(PhysicalPlanTest, ToStringRendersTree) {
  storage::Database db = MakeDb();
  auto join = MakeHashJoin(MakeSeqScan("a", std::nullopt),
                           MakeSeqScan("b", std::nullopt), 0, 1);
  std::string rendered = join->ToString(db);
  EXPECT_NE(rendered.find("HashJoin"), std::string::npos);
  EXPECT_NE(rendered.find("SeqScan(a)"), std::string::npos);
  EXPECT_NE(rendered.find("SeqScan(b)"), std::string::npos);
}

TEST(PhysicalPlanTest, OpNamesComplete) {
  EXPECT_STREQ(PhysicalOpName(PhysicalOpType::kSeqScan), "SeqScan");
  EXPECT_STREQ(PhysicalOpName(PhysicalOpType::kIndexScan), "IndexScan");
  EXPECT_STREQ(PhysicalOpName(PhysicalOpType::kFilter), "Filter");
  EXPECT_STREQ(PhysicalOpName(PhysicalOpType::kHashJoin), "HashJoin");
  EXPECT_STREQ(PhysicalOpName(PhysicalOpType::kNestedLoopJoin),
               "NestedLoopJoin");
  EXPECT_STREQ(PhysicalOpName(PhysicalOpType::kIndexNLJoin), "IndexNLJoin");
  EXPECT_STREQ(PhysicalOpName(PhysicalOpType::kSort), "Sort");
  EXPECT_STREQ(PhysicalOpName(PhysicalOpType::kHashAggregate),
               "HashAggregate");
  EXPECT_STREQ(PhysicalOpName(PhysicalOpType::kSimpleAggregate),
               "SimpleAggregate");
}

std::unique_ptr<PhysicalNode> MakeJoinAggPlan() {
  auto join = MakeHashJoin(MakeSeqScan("a", Predicate::Compare(1, CompareOp::kGt, 5)),
                           MakeSeqScan("b", std::nullopt), 0, 1);
  join->est_cardinality = 12.0;
  join->est_cost = 48.0;
  return MakeSimpleAggregate(std::move(join),
                             {AggregateExpr{AggFunc::kCount, std::nullopt}});
}

TEST(FingerprintTest, DeterministicAndStableAcrossClone) {
  auto plan = MakeJoinAggPlan();
  const uint64_t fp = FingerprintPlan(*plan);
  EXPECT_EQ(fp, FingerprintPlan(*plan));
  auto clone = plan->Clone();
  EXPECT_EQ(fp, FingerprintPlan(*clone));
}

TEST(FingerprintTest, DiffersOnStructureChange) {
  auto plan = MakeJoinAggPlan();
  const uint64_t fp = FingerprintPlan(*plan);

  // Swap the join algorithm: same children, different operator kind.
  auto nl_join = MakeNestedLoopJoin(
      MakeSeqScan("a", Predicate::Compare(1, CompareOp::kGt, 5)),
      MakeSeqScan("b", std::nullopt), 0, 1);
  nl_join->est_cardinality = 12.0;
  nl_join->est_cost = 48.0;
  auto variant = MakeSimpleAggregate(
      std::move(nl_join), {AggregateExpr{AggFunc::kCount, std::nullopt}});
  EXPECT_NE(fp, FingerprintPlan(*variant));

  // Drop the aggregate on top: different tree shape.
  auto bare_join = MakeHashJoin(
      MakeSeqScan("a", Predicate::Compare(1, CompareOp::kGt, 5)),
      MakeSeqScan("b", std::nullopt), 0, 1);
  bare_join->est_cardinality = 12.0;
  bare_join->est_cost = 48.0;
  EXPECT_NE(fp, FingerprintPlan(*bare_join));
}

TEST(FingerprintTest, DiffersOnPredicateAndTableChange) {
  auto scan = MakeSeqScan("a", Predicate::Compare(1, CompareOp::kGt, 5));
  const uint64_t fp = FingerprintPlan(*scan);

  auto other_literal = MakeSeqScan("a", Predicate::Compare(1, CompareOp::kGt, 6));
  EXPECT_NE(fp, FingerprintPlan(*other_literal));

  auto other_op = MakeSeqScan("a", Predicate::Compare(1, CompareOp::kGe, 5));
  EXPECT_NE(fp, FingerprintPlan(*other_op));

  auto other_table = MakeSeqScan("b", Predicate::Compare(1, CompareOp::kGt, 5));
  EXPECT_NE(fp, FingerprintPlan(*other_table));

  auto no_predicate = MakeSeqScan("a", std::nullopt);
  EXPECT_NE(fp, FingerprintPlan(*no_predicate));
}

TEST(FingerprintTest, DiffersOnAnnotationChange) {
  auto plan = MakeJoinAggPlan();
  const uint64_t fp = FingerprintPlan(*plan);
  auto clone = plan->Clone();
  clone->children[0]->est_cardinality += 1.0;
  EXPECT_NE(fp, FingerprintPlan(*clone));

  auto clone2 = plan->Clone();
  clone2->children[0]->true_cardinality = 11.0;
  EXPECT_NE(fp, FingerprintPlan(*clone2));
}

TEST(FingerprintTest, NullPlanHashesToSentinel) {
  PhysicalPlan empty;
  PhysicalPlan also_empty;
  EXPECT_EQ(FingerprintPlan(empty), FingerprintPlan(also_empty));

  PhysicalPlan real;
  real.root = MakeSeqScan("a", std::nullopt);
  EXPECT_NE(FingerprintPlan(real), FingerprintPlan(empty));
  EXPECT_EQ(FingerprintPlan(real), FingerprintPlan(*real.root));
}

TEST(FingerprintTest, CombineIsOrderSensitive) {
  const uint64_t base = FingerprintString("db");
  const uint64_t ab = FingerprintCombine(FingerprintCombine(base, 1), 2);
  const uint64_t ba = FingerprintCombine(FingerprintCombine(base, 2), 1);
  EXPECT_NE(ab, ba);
  EXPECT_NE(FingerprintCombine(base, 1), base);
  EXPECT_NE(FingerprintString("db"), FingerprintString("db2"));
}

TEST(PhysicalPlanTest, ComputeOutputWidthsMatchesPerNodeCalls) {
  storage::Database db = MakeDb();
  auto plan = MakeJoinAggPlan();
  std::unordered_map<const PhysicalNode*, int64_t> widths;
  plan->ComputeOutputWidths(db, &widths);
  EXPECT_EQ(widths.size(), plan->SubtreeSize());
  plan->Visit([&](const PhysicalNode& node) {
    auto it = widths.find(&node);
    ASSERT_NE(it, widths.end());
    EXPECT_EQ(it->second, node.OutputWidthBytes(db));
  });
}

}  // namespace
}  // namespace zerodb::plan
