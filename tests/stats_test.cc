#include <gtest/gtest.h>

#include "datagen/corpus.h"
#include "datagen/generator.h"
#include "stats/cardinality.h"
#include "stats/database_stats.h"
#include "stats/histogram.h"

namespace zerodb::stats {
namespace {

using catalog::ColumnSchema;
using catalog::DataType;
using catalog::TableSchema;

TEST(HistogramTest, EmptyInput) {
  EquiDepthHistogram h = EquiDepthHistogram::Build({}, 8);
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.SelectivityRange(0, 10), 0.0);
}

TEST(HistogramTest, UniformDataSelectivity) {
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) values.push_back(i);
  EquiDepthHistogram h = EquiDepthHistogram::Build(values, 64);
  EXPECT_EQ(h.row_count(), 10000);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 9999.0);
  EXPECT_NEAR(h.SelectivityLe(4999.5), 0.5, 0.02);
  EXPECT_NEAR(h.SelectivityRange(2500, 7499), 0.5, 0.03);
  EXPECT_DOUBLE_EQ(h.SelectivityLe(-1), 0.0);
  EXPECT_DOUBLE_EQ(h.SelectivityLe(10000), 1.0);
}

TEST(HistogramTest, SkewedDataAdapts) {
  // 90% of the mass at small values; an equi-depth histogram should still
  // place ~90% of selectivity below the knee.
  std::vector<double> values;
  for (int i = 0; i < 9000; ++i) values.push_back(i % 10);
  for (int i = 0; i < 1000; ++i) values.push_back(1000 + i);
  EquiDepthHistogram h = EquiDepthHistogram::Build(values, 32);
  EXPECT_NEAR(h.SelectivityLe(100), 0.9, 0.05);
}

TEST(HistogramTest, InvertedRangeIsZero) {
  std::vector<double> values = {1, 2, 3, 4, 5};
  EquiDepthHistogram h = EquiDepthHistogram::Build(values, 4);
  EXPECT_DOUBLE_EQ(h.SelectivityRange(4, 2), 0.0);
}

storage::Database MakeDb() {
  storage::Database db("stats_test");
  storage::Table t(
      TableSchema("t", {ColumnSchema{"id", DataType::kInt64, 8},
                        ColumnSchema{"k", DataType::kInt64, 8},
                        ColumnSchema{"v", DataType::kDouble, 8}}));
  for (int i = 0; i < 1000; ++i) {
    t.column(0).AppendInt64(i);
    t.column(1).AppendInt64(i % 10);  // 10 distinct values
    t.column(2).AppendDouble(static_cast<double>(i));
  }
  EXPECT_TRUE(db.AddTable(std::move(t)).ok());
  return db;
}

TEST(DatabaseStatsTest, BuildCountsAndDistincts) {
  storage::Database db = MakeDb();
  DatabaseStats stats = DatabaseStats::Build(db);
  const TableStats& t = stats.GetTable("t");
  EXPECT_EQ(t.num_rows, 1000);
  EXPECT_GT(t.num_pages, 0);
  EXPECT_EQ(t.columns.size(), 3u);
  EXPECT_EQ(t.columns[0].num_distinct, 1000);
  EXPECT_EQ(t.columns[1].num_distinct, 10);
  EXPECT_DOUBLE_EQ(t.columns[1].min, 0.0);
  EXPECT_DOUBLE_EQ(t.columns[1].max, 9.0);
  EXPECT_EQ(stats.FindTable("ghost"), nullptr);
}

TEST(CardinalityTest, EqualitySelectivity) {
  storage::Database db = MakeDb();
  DatabaseStats stats = DatabaseStats::Build(db);
  CardinalityEstimator estimator(&db, &stats);
  // k has 10 distinct values -> eq selectivity 0.1 -> 100 rows.
  plan::Predicate p = plan::Predicate::Compare(1, plan::CompareOp::kEq, 3);
  EXPECT_NEAR(estimator.ScanCardinality("t", &p), 100.0, 1.0);
}

TEST(CardinalityTest, OutOfDomainEqualityIsZeroish) {
  storage::Database db = MakeDb();
  DatabaseStats stats = DatabaseStats::Build(db);
  CardinalityEstimator estimator(&db, &stats);
  plan::Predicate p = plan::Predicate::Compare(1, plan::CompareOp::kEq, 99);
  EXPECT_NEAR(estimator.ScanCardinality("t", &p), 1.0, 1e-9);  // floor of 1
}

TEST(CardinalityTest, RangeSelectivity) {
  storage::Database db = MakeDb();
  DatabaseStats stats = DatabaseStats::Build(db);
  CardinalityEstimator estimator(&db, &stats);
  plan::Predicate p = plan::Predicate::Compare(2, plan::CompareOp::kLe, 499.0);
  EXPECT_NEAR(estimator.ScanCardinality("t", &p), 500.0, 30.0);
}

TEST(CardinalityTest, ConjunctionIndependence) {
  storage::Database db = MakeDb();
  DatabaseStats stats = DatabaseStats::Build(db);
  CardinalityEstimator estimator(&db, &stats);
  // P(k = 3) * P(v <= 499) ~= 0.1 * 0.5 -> 50 rows.
  plan::Predicate p = plan::Predicate::And(
      {plan::Predicate::Compare(1, plan::CompareOp::kEq, 3),
       plan::Predicate::Compare(2, plan::CompareOp::kLe, 499.0)});
  EXPECT_NEAR(estimator.ScanCardinality("t", &p), 50.0, 10.0);
}

TEST(CardinalityTest, DisjunctionInclusionExclusion) {
  storage::Database db = MakeDb();
  DatabaseStats stats = DatabaseStats::Build(db);
  CardinalityEstimator estimator(&db, &stats);
  // P(k=3 OR k=5) ~= 0.1 + 0.1 - 0.01 = 0.19.
  plan::Predicate p = plan::Predicate::Or(
      {plan::Predicate::Compare(1, plan::CompareOp::kEq, 3),
       plan::Predicate::Compare(1, plan::CompareOp::kEq, 5)});
  EXPECT_NEAR(estimator.PredicateSelectivity("t", p), 0.19, 0.01);
}

TEST(CardinalityTest, JoinSelectivityUsesMaxDistinct) {
  storage::Database db("join_test");
  storage::Table a(TableSchema("a", {ColumnSchema{"id", DataType::kInt64, 8}}));
  for (int i = 0; i < 100; ++i) a.column(0).AppendInt64(i);
  storage::Table b(
      TableSchema("b", {ColumnSchema{"a_id", DataType::kInt64, 8}}));
  for (int i = 0; i < 500; ++i) b.column(0).AppendInt64(i % 100);
  ASSERT_TRUE(db.AddTable(std::move(a)).ok());
  ASSERT_TRUE(db.AddTable(std::move(b)).ok());
  DatabaseStats stats = DatabaseStats::Build(db);
  CardinalityEstimator estimator(&db, &stats);
  // nd(a.id) = 100, nd(b.a_id) = 100 -> selectivity 1/100.
  EXPECT_NEAR(estimator.JoinSelectivity("a", 0, "b", 0), 0.01, 1e-9);
  // Estimated join size = 100 * 500 / 100 = 500 = true PK-FK join size.
}

TEST(CardinalityTest, GroupCountCappedByInput) {
  storage::Database db = MakeDb();
  DatabaseStats stats = DatabaseStats::Build(db);
  CardinalityEstimator estimator(&db, &stats);
  std::vector<plan::GroupBySpec> group_by = {{"t", "k"}};
  EXPECT_DOUBLE_EQ(estimator.GroupCount(group_by, 1000.0), 10.0);
  EXPECT_DOUBLE_EQ(estimator.GroupCount(group_by, 4.0), 4.0);  // capped
  EXPECT_DOUBLE_EQ(estimator.GroupCount({}, 1000.0), 1.0);
}

}  // namespace
}  // namespace zerodb::stats
