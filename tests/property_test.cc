// Property-based tests: invariants checked across randomized inputs using
// parameterized gtest sweeps (seeds / sizes as parameters).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/math_util.h"
#include "common/rng.h"
#include "datagen/corpus.h"
#include "datagen/distributions.h"
#include "exec/executor.h"
#include "featurize/zeroshot_featurizer.h"
#include "nn/ops.h"
#include "optimizer/optimizer.h"
#include "plan/expr.h"
#include "runtime/simulator.h"
#include "sql/parser.h"
#include "stats/histogram.h"
#include "train/dataset.h"
#include "workload/benchmarks.h"

namespace zerodb {
namespace {

// ---------------------------------------------------------------------------
// Predicate evaluation: random predicate trees against a brute-force
// reference evaluator.
// ---------------------------------------------------------------------------

class PredicateProperty : public ::testing::TestWithParam<uint64_t> {};

plan::Predicate RandomPredicate(Rng* rng, size_t num_slots, size_t depth) {
  if (depth == 0 || rng->Bernoulli(0.5)) {
    static constexpr plan::CompareOp kOps[] = {
        plan::CompareOp::kEq, plan::CompareOp::kNe, plan::CompareOp::kLt,
        plan::CompareOp::kLe, plan::CompareOp::kGt, plan::CompareOp::kGe};
    return plan::Predicate::Compare(rng->NextUint64(num_slots),
                                    kOps[rng->NextUint64(6)],
                                    static_cast<double>(rng->UniformInt(-5, 5)));
  }
  std::vector<plan::Predicate> children;
  size_t arity = 2 + rng->NextUint64(2);
  for (size_t i = 0; i < arity; ++i) {
    children.push_back(RandomPredicate(rng, num_slots, depth - 1));
  }
  return rng->Bernoulli(0.5) ? plan::Predicate::And(std::move(children))
                             : plan::Predicate::Or(std::move(children));
}

bool ReferenceEval(const plan::Predicate& p, const std::vector<double>& row) {
  switch (p.kind()) {
    case plan::Predicate::Kind::kCompare:
      return plan::EvaluateCompare(row[p.slot()], p.op(), p.literal());
    case plan::Predicate::Kind::kAnd: {
      bool result = true;
      for (const auto& child : p.children()) {
        result = result && ReferenceEval(child, row);  // no short circuit
      }
      return result;
    }
    case plan::Predicate::Kind::kOr: {
      bool result = false;
      for (const auto& child : p.children()) {
        result = result || ReferenceEval(child, row);
      }
      return result;
    }
  }
  return false;
}

TEST_P(PredicateProperty, EvaluateMatchesReference) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    plan::Predicate predicate = RandomPredicate(&rng, 4, 3);
    for (int row_trial = 0; row_trial < 20; ++row_trial) {
      std::vector<double> row(4);
      for (double& v : row) v = static_cast<double>(rng.UniformInt(-5, 5));
      EXPECT_EQ(predicate.Evaluate(row), ReferenceEval(predicate, row));
    }
  }
}

TEST_P(PredicateProperty, RemapPreservesSemantics) {
  Rng rng(GetParam() ^ 0xabc);
  for (int trial = 0; trial < 30; ++trial) {
    plan::Predicate predicate = RandomPredicate(&rng, 3, 2);
    std::vector<size_t> map = {5, 1, 3};  // old slot -> new slot
    plan::Predicate remapped = predicate.RemapSlots(map);
    for (int row_trial = 0; row_trial < 20; ++row_trial) {
      std::vector<double> wide(6);
      for (double& v : wide) v = static_cast<double>(rng.UniformInt(-5, 5));
      std::vector<double> narrow = {wide[5], wide[1], wide[3]};
      EXPECT_EQ(predicate.Evaluate(narrow), remapped.Evaluate(wide));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Histograms: selectivity estimates against empirical frequencies.
// ---------------------------------------------------------------------------

class HistogramProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramProperty, RangeSelectivityTracksEmpirical) {
  Rng rng(GetParam());
  // Mixture distribution: uniform + gaussian bumps + point masses.
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    switch (rng.NextUint64(3)) {
      case 0:
        values.push_back(rng.UniformDouble(0, 1000));
        break;
      case 1:
        values.push_back(rng.Normal(300, 20));
        break;
      default:
        values.push_back(static_cast<double>(rng.UniformInt(0, 5)) * 100);
    }
  }
  auto histogram = stats::EquiDepthHistogram::Build(values, 64);
  for (int trial = 0; trial < 20; ++trial) {
    double lo = rng.UniformDouble(-100, 1100);
    double hi = lo + rng.UniformDouble(0, 600);
    double estimated = histogram.SelectivityRange(lo, hi);
    size_t matches = 0;
    for (double v : values) {
      if (v >= lo && v <= hi) ++matches;
    }
    double empirical = static_cast<double>(matches) / values.size();
    EXPECT_NEAR(estimated, empirical, 0.06)
        << "range [" << lo << ", " << hi << "]";
    EXPECT_GE(estimated, 0.0);
    EXPECT_LE(estimated, 1.0);
  }
}

TEST_P(HistogramProperty, SelectivityLeIsMonotone) {
  Rng rng(GetParam() ^ 0x77);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.Normal(0, 50));
  auto histogram = stats::EquiDepthHistogram::Build(values, 32);
  double previous = -1.0;
  for (double x = -200; x <= 200; x += 5) {
    double sel = histogram.SelectivityLe(x);
    EXPECT_GE(sel, previous);
    previous = sel;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramProperty,
                         ::testing::Values(11, 22, 33));

// ---------------------------------------------------------------------------
// Zipf distribution: rank frequencies are non-increasing.
// ---------------------------------------------------------------------------

class ZipfProperty : public ::testing::TestWithParam<double> {};

TEST_P(ZipfProperty, FrequenciesNonIncreasingInRank) {
  Rng rng(5);
  datagen::ZipfDistribution dist(20, GetParam());
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 40000; ++i) counts[dist.Draw(&rng)]++;
  // Compare smoothed neighbors (sampling noise tolerance).
  for (size_t r = 0; r + 2 < counts.size(); ++r) {
    EXPECT_GE(counts[r] + 300, counts[r + 2]) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfProperty,
                         ::testing::Values(0.0, 0.5, 1.0, 1.5));

// ---------------------------------------------------------------------------
// Autograd: numerical gradient checking across randomized composite graphs.
// ---------------------------------------------------------------------------

class AutogradProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AutogradProperty, RandomCompositeGraphGradients) {
  Rng rng(GetParam());
  const size_t in_dim = 3;
  const size_t hidden = 4;
  std::vector<float> w_data(in_dim * hidden);
  for (float& v : w_data) v = static_cast<float>(rng.UniformDouble(-0.7, 0.7));
  nn::Tensor w = nn::Tensor::Parameter(in_dim, hidden, w_data);

  std::vector<float> x_data(2 * in_dim);
  for (float& v : x_data) v = static_cast<float>(rng.UniformDouble(-1, 1));
  nn::Tensor x = nn::Tensor::FromData(2, in_dim, x_data);
  nn::Tensor target = nn::Tensor::FromData(2, 1, {0.3f, -0.2f});

  // A randomized chain of unary ops on top of x @ w.
  const uint64_t recipe = rng.NextUint64();
  auto forward = [&]() {
    nn::Tensor h = nn::MatMul(x, w);
    uint64_t bits = recipe;
    for (int step = 0; step < 3; ++step) {
      switch (bits % 5) {
        case 0:
          h = nn::Tanh(h);
          break;
        case 1:
          h = nn::Sigmoid(h);
          break;
        case 2:
          h = nn::LeakyRelu(h, 0.1f);
          break;
        case 3:
          h = nn::LayerNorm(h);
          break;
        default:
          h = nn::Scale(h, 0.8f);
          break;
      }
      bits /= 5;
    }
    nn::Tensor column = nn::MatMul(
        h, nn::Tensor::FromData(hidden, 1, {0.5f, -0.5f, 0.25f, 1.0f}));
    return nn::MseLoss(column, target);
  };

  nn::Tensor loss = forward();
  w.ZeroGrad();
  loss.Backward();
  std::vector<float> analytic = w.grad();
  const float eps = 1e-2f;
  for (size_t i = 0; i < w.size(); ++i) {
    float original = w.mutable_data()[i];
    w.mutable_data()[i] = original + eps;
    float up = forward().item();
    w.mutable_data()[i] = original - eps;
    float down = forward().item();
    w.mutable_data()[i] = original;
    float numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric, 3e-2f)
        << "recipe " << recipe << " index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// ---------------------------------------------------------------------------
// Planner/executor: for random queries on random databases, every planner
// configuration computes the same result set size, and annotations are sane.
// ---------------------------------------------------------------------------

class PlannerProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlannerProperty, AllPlannerConfigsAgreeOnResults) {
  datagen::GeneratorConfig gen_config;
  gen_config.min_rows = 200;
  gen_config.max_rows = 2000;
  storage::Database db =
      datagen::GenerateRandomDatabase("prop", GetParam(), gen_config);
  Rng index_rng(GetParam() ^ 1);
  datagen::AddDefaultIndexes(&db, &index_rng, 0.5);
  datagen::DatabaseEnv env = datagen::MakeEnv(std::move(db));

  workload::QueryGenerator generator(&env,
                                     workload::TrainingWorkloadConfig(),
                                     GetParam() ^ 2);
  exec::Executor executor(env.db.get());

  optimizer::PlannerOptions no_index;
  no_index.enable_index_scan = false;
  no_index.enable_index_nl_join = false;
  optimizer::PlannerOptions no_nlj;
  no_nlj.nlj_row_threshold = 0;

  int verified = 0;
  for (int trial = 0; trial < 15 && verified < 10; ++trial) {
    plan::QuerySpec query = generator.Next();
    std::optional<size_t> expected_rows;
    for (const optimizer::PlannerOptions& options :
         {optimizer::PlannerOptions(), no_index, no_nlj}) {
      optimizer::Planner planner(env.db.get(), &env.stats,
                                 optimizer::CostParams(), options);
      auto plan = planner.Plan(query);
      ASSERT_TRUE(plan.ok()) << query.ToSql(*env.db);
      auto result = executor.Execute(&*plan);
      if (!result.ok()) {
        expected_rows.reset();
        break;
      }
      if (!expected_rows.has_value()) {
        expected_rows = result->output.num_rows();
        ++verified;
      } else {
        ASSERT_EQ(result->output.num_rows(), *expected_rows)
            << query.ToSql(*env.db);
      }
    }
  }
  EXPECT_GE(verified, 5);
}

TEST_P(PlannerProperty, ExecutedPlansHaveConsistentAnnotations) {
  auto env = datagen::MakeImdbEnv(GetParam(), 0.03);
  workload::QueryGenerator generator(&env,
                                     workload::TrainingWorkloadConfig(),
                                     GetParam());
  auto records = train::CollectRecords(
      env,
      [&] {
        std::vector<plan::QuerySpec> queries;
        for (int i = 0; i < 20; ++i) queries.push_back(generator.Next());
        return queries;
      }(),
      train::CollectOptions());
  for (const train::QueryRecord& record : records) {
    record.plan.root->Visit([&](const plan::PhysicalNode& node) {
      EXPECT_GE(node.true_cardinality, 0.0);   // executed
      EXPECT_GT(node.est_cardinality, 0.0);    // planned
      EXPECT_GT(node.est_cost, 0.0);
      // Children costs never exceed the parent's cumulative cost.
      for (const auto& child : node.children) {
        EXPECT_LE(child->est_cost, node.est_cost + 1e-6);
      }
    });
    EXPECT_GT(record.runtime_ms, 0.0);
    EXPECT_GT(record.opt_cost, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerProperty,
                         ::testing::Values(7, 8, 9, 10));

// ---------------------------------------------------------------------------
// Featurization: database-independence across random structurally-identical
// databases, and feature vectors are always finite.
// ---------------------------------------------------------------------------

class FeaturizeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FeaturizeProperty, FeaturesAlwaysFiniteAndFixedWidth) {
  auto env = datagen::MakeImdbEnv(GetParam(), 0.03);
  workload::QueryGenerator generator(&env,
                                     workload::TrainingWorkloadConfig(),
                                     GetParam() * 13);
  std::vector<plan::QuerySpec> queries;
  for (int i = 0; i < 15; ++i) queries.push_back(generator.Next());
  auto records = train::CollectRecords(env, queries, train::CollectOptions());
  for (auto mode : {featurize::CardinalityMode::kEstimated,
                    featurize::CardinalityMode::kExact}) {
    featurize::ZeroShotFeaturizer featurizer(mode);
    for (const auto& record : records) {
      featurize::PlanGraph graph =
          featurizer.Featurize(*record.plan.root, env);
      EXPECT_EQ(graph.nodes.size(), record.plan.root->SubtreeSize());
      for (const auto& node : graph.nodes) {
        ASSERT_EQ(node.features.size(),
                  featurize::ZeroShotFeaturizer::kFeatureDim);
        for (float f : node.features) {
          EXPECT_TRUE(std::isfinite(f));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeaturizeProperty,
                         ::testing::Values(21, 22, 23));

// ---------------------------------------------------------------------------
// Runtime simulator: determinism and additivity.
// ---------------------------------------------------------------------------

class SimulatorProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimulatorProperty, DeterministicAndAdditive) {
  auto env = datagen::MakeImdbEnv(GetParam(), 0.03);
  workload::QueryGenerator generator(&env,
                                     workload::TrainingWorkloadConfig(),
                                     GetParam());
  optimizer::Planner planner(env.db.get(), &env.stats);
  exec::Executor executor(env.db.get());
  runtime::RuntimeSimulator simulator;
  for (int trial = 0; trial < 10; ++trial) {
    auto plan = planner.Plan(generator.Next());
    ASSERT_TRUE(plan.ok());
    auto result = executor.Execute(&*plan);
    if (!result.ok()) continue;
    double total1 = simulator.PlanMs(*plan, *result);
    double total2 = simulator.PlanMs(*plan, *result);
    EXPECT_DOUBLE_EQ(total1, total2);  // deterministic
    // Additivity: total = startup + sum of operator times.
    double sum = simulator.profile().startup_ms;
    plan->root->Visit([&](const plan::PhysicalNode& node) {
      sum += simulator.OperatorMs(node.type, result->StatsFor(node),
                                  node.aggregates.size());
    });
    EXPECT_NEAR(total1, sum, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorProperty,
                         ::testing::Values(31, 32, 33));

// ---------------------------------------------------------------------------
// SQL round trip: generated query -> ToSql -> ParseQuery produces a query
// with identical structure AND identical execution results.
// ---------------------------------------------------------------------------

class SqlRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlRoundTripProperty, GeneratedQueriesSurviveToSqlParse) {
  auto env = datagen::MakeImdbEnv(GetParam(), 0.03);
  workload::WorkloadConfig config = workload::TrainingWorkloadConfig();
  config.group_by_prob = 0.3;  // exercise GROUP BY round-tripping too
  workload::QueryGenerator generator(&env, config, GetParam() * 7);
  optimizer::Planner planner(env.db.get(), &env.stats);
  exec::Executor executor(env.db.get());

  int verified = 0;
  for (int trial = 0; trial < 25 && verified < 15; ++trial) {
    plan::QuerySpec original = generator.Next();
    std::string sql = original.ToSql(*env.db);
    auto reparsed = sql::ParseQuery(sql, *env.db);
    ASSERT_TRUE(reparsed.ok()) << sql << "\n -> " << reparsed.status().ToString();
    EXPECT_EQ(reparsed->tables.size(), original.tables.size()) << sql;
    EXPECT_EQ(reparsed->joins.size(), original.joins.size()) << sql;
    EXPECT_EQ(reparsed->filters.size(), original.filters.size()) << sql;
    EXPECT_EQ(reparsed->aggregates.size(), original.aggregates.size()) << sql;
    EXPECT_EQ(reparsed->group_by.size(), original.group_by.size()) << sql;

    // The strongest check: both versions compute the same result.
    auto plan_a = planner.Plan(original);
    auto plan_b = planner.Plan(*reparsed);
    ASSERT_TRUE(plan_a.ok() && plan_b.ok()) << sql;
    auto result_a = executor.Execute(&*plan_a);
    auto result_b = executor.Execute(&*plan_b);
    if (!result_a.ok() || !result_b.ok()) continue;
    ASSERT_EQ(result_a->output.num_rows(), result_b->output.num_rows()) << sql;
    // Single-row aggregate outputs must match value-for-value.
    if (result_a->output.num_rows() == 1 &&
        result_a->output.num_columns() == result_b->output.num_columns()) {
      for (size_t c = 0; c < result_a->output.num_columns(); ++c) {
        EXPECT_DOUBLE_EQ(result_a->output.columns[c][0],
                         result_b->output.columns[c][0])
            << sql << " column " << c;
      }
    }
    ++verified;
  }
  EXPECT_GE(verified, 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlRoundTripProperty,
                         ::testing::Values(51, 52, 53));

// ---------------------------------------------------------------------------
// Q-error invariants.
// ---------------------------------------------------------------------------

class QErrorProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QErrorProperty, Invariants) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    double a = std::exp(rng.UniformDouble(-5, 5));
    double b = std::exp(rng.UniformDouble(-5, 5));
    double q = QError(a, b);
    EXPECT_GE(q, 1.0);                             // lower bound
    EXPECT_DOUBLE_EQ(q, QError(b, a));             // symmetry
    EXPECT_DOUBLE_EQ(QError(a, a), 1.0);           // identity
    double scale = std::exp(rng.UniformDouble(-2, 2));
    EXPECT_NEAR(QError(scale * a, scale * b), q, 1e-9 * q);  // scale-free
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QErrorProperty, ::testing::Values(41, 42));

}  // namespace
}  // namespace zerodb
