#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string_view>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "nn/arena.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace zerodb::nn {
namespace {

// ---- BufferPool -----------------------------------------------------------

TEST(BufferPoolTest, MissThenHitReusesCapacity) {
  BufferPool<float> pool;
  std::vector<float> first = pool.Acquire(100);
  EXPECT_EQ(first.size(), 100u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 0u);
  first[0] = 42.0f;
  const float* storage = first.data();
  pool.Release(std::move(first));
  EXPECT_GT(pool.retained_bytes(), 0u);

  // Same size class: served from the bucket, zeroed, same heap block.
  std::vector<float> second = pool.Acquire(80);
  EXPECT_EQ(second.size(), 80u);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(second.data(), storage);
  for (float v : second) EXPECT_EQ(v, 0.0f);
}

TEST(BufferPoolTest, ReleasedCapacityAlwaysCoversReacquire) {
  // Release files under the floor-pow2 bucket of *capacity*, Acquire looks
  // up the ceil-pow2 bucket of the request — so a hit never reallocates.
  BufferPool<float> pool;
  std::vector<float> odd;
  odd.reserve(100);  // capacity 100: floor bucket 64, covers requests <= 64
  odd.resize(100);
  pool.Release(std::move(odd));
  std::vector<float> out = pool.Acquire(64);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_GE(out.capacity(), 100u);
}

TEST(BufferPoolTest, BucketCapBoundsRetention) {
  BufferPool<float> pool;
  const size_t n = 128;
  for (size_t i = 0; i < BufferPool<float>::kMaxPerBucket + 16; ++i) {
    pool.Release(std::vector<float>(n));
  }
  // Only kMaxPerBucket buffers retained; the rest were freed.
  EXPECT_LE(pool.retained_bytes(),
            BufferPool<float>::kMaxPerBucket * n * sizeof(float));
  pool.Clear();
  EXPECT_EQ(pool.retained_bytes(), 0u);
}

TEST(BufferPoolTest, TinyAndZeroRequests) {
  BufferPool<float> pool;
  std::vector<float> zero = pool.Acquire(0);
  EXPECT_TRUE(zero.empty());
  std::vector<float> one = pool.Acquire(1);
  EXPECT_EQ(one.size(), 1u);
  pool.Release(std::move(one));
  std::vector<float> again = pool.Acquire(1);
  EXPECT_EQ(again.size(), 1u);
  EXPECT_GE(pool.hits(), 1u);
}

// ---- GraphArena -----------------------------------------------------------

TEST(GraphArenaTest, SlabGrowthBoundaries) {
  GraphArena arena;
  std::vector<std::shared_ptr<Node>> nodes;
  // Cross two slab boundaries exactly.
  const size_t count = GraphArena::kNodesPerSlab * 2 + 1;
  for (size_t i = 0; i < count; ++i) nodes.push_back(arena.NewNode());
  ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.slabs, 3u);
  EXPECT_EQ(stats.nodes_in_use, count);

  nodes.clear();  // all handles dead before Reset
  arena.Reset();
  stats = arena.stats();
  EXPECT_EQ(stats.nodes_in_use, 0u);
  EXPECT_EQ(stats.slabs, 3u);  // slabs are retained for reuse
  EXPECT_EQ(stats.resets, 1u);

  // The rewound slots serve the next epoch without growing.
  std::vector<std::shared_ptr<Node>> again;
  for (size_t i = 0; i < count; ++i) again.push_back(arena.NewNode());
  EXPECT_EQ(arena.stats().slabs, 3u);
}

TEST(GraphArenaTest, ResetReuseReachesSteadyState) {
  GraphArena arena;
  Tensor w = Tensor::Parameter(4, 4, std::vector<float>(16, 0.5f));
  Tensor b = Tensor::Parameter(1, 4, std::vector<float>(4, 0.1f));
  Tensor v = Tensor::Parameter(4, 1, std::vector<float>(4, 0.3f));

  auto run_epoch = [&]() {
    ArenaGuard guard(&arena);
    {
      Tensor x = Tensor::Full(8, 4, 1.0f);
      Tensor y = LinearFused(x, w, b, /*fuse_relu=*/true);
      Tensor pred = MatMul(y, v);
      Tensor loss = MseLoss(pred, Tensor::Zeros(8, 1));
      loss.Backward();
    }
    arena.Reset();
  };

  run_epoch();  // warmup: buffers miss, slabs allocate
  const ArenaStats warm = arena.stats();
  for (int i = 0; i < 10; ++i) run_epoch();
  const ArenaStats steady = arena.stats();
  // After warmup every buffer acquisition is a pool hit and no new slab is
  // ever needed — the whole point of the arena.
  EXPECT_EQ(steady.buffer_misses, warm.buffer_misses);
  EXPECT_EQ(steady.slabs, warm.slabs);
  EXPECT_EQ(steady.resets, warm.resets + 10);
}

TEST(GraphArenaTest, PooledMatchesFreshBitwise) {
  auto run = [](GraphArena* arena, uint64_t seed) {
    ArenaGuard guard(arena);  // null arena = fresh-allocation path
    Rng rng(seed);
    Tensor w = Tensor::Parameter(6, 3, std::vector<float>(18, 0.25f));
    Tensor b = Tensor::Parameter(1, 3, std::vector<float>(3, -0.05f));
    std::vector<float> input(5 * 6);
    for (size_t i = 0; i < input.size(); ++i) {
      input[i] = static_cast<float>(i % 7) * 0.3f - 1.0f;
    }
    Tensor v = Tensor::Parameter(3, 1, std::vector<float>(3, 0.4f));
    Tensor x = Tensor::FromData(5, 6, std::move(input));
    Tensor h = LinearFused(x, w, b, /*fuse_relu=*/true);
    Tensor d = Dropout(h, 0.5f, &rng, /*training=*/true);
    Tensor loss = MseLoss(MatMul(d, v), Tensor::Zeros(5, 1));
    loss.Backward();
    std::vector<float> out = loss.data();
    out.insert(out.end(), w.grad().begin(), w.grad().end());
    out.insert(out.end(), b.grad().begin(), b.grad().end());
    return out;
  };

  GraphArena arena;
  std::vector<float> pooled = run(&arena, 7);
  arena.Reset();
  std::vector<float> fresh = run(nullptr, 7);
  ASSERT_EQ(pooled.size(), fresh.size());
  for (size_t i = 0; i < pooled.size(); ++i) {
    EXPECT_EQ(pooled[i], fresh[i]) << "index " << i;
  }
  // Second pooled epoch on recycled nodes/buffers: still bitwise equal.
  std::vector<float> recycled = run(&arena, 7);
  arena.Reset();
  for (size_t i = 0; i < recycled.size(); ++i) {
    EXPECT_EQ(recycled[i], fresh[i]) << "index " << i;
  }
}

TEST(GraphArenaTest, PooledBuffersRideInsideNodes) {
  // Dropout masks / gather indices move into aux buffers and return to the
  // pool on Reset — the second epoch's acquisitions are all hits.
  GraphArena arena;
  auto epoch = [&]() {
    ArenaGuard guard(&arena);
    {
      Rng rng(3);
      Tensor x = Tensor::Parameter(4, 4, std::vector<float>(16, 1.0f));
      Tensor v = Tensor::Parameter(4, 1, std::vector<float>(4, 0.2f));
      Tensor d = Dropout(x, 0.25f, &rng, /*training=*/true);
      Tensor g = RowGather(d, {2u, 0u, 1u, 3u});
      Tensor loss = MseLoss(MatMul(g, v), Tensor::Zeros(4, 1));
      loss.Backward();
    }
    arena.Reset();
  };
  epoch();
  const uint64_t misses_after_warmup = arena.stats().buffer_misses;
  epoch();
  EXPECT_EQ(arena.stats().buffer_misses, misses_after_warmup);
  EXPECT_GT(arena.stats().buffer_hits, 0u);
}

TEST(GraphArenaTest, GuardNestsAndRestores) {
  GraphArena outer_arena;
  GraphArena inner_arena;
  EXPECT_EQ(ActiveArena(), nullptr);
  {
    ArenaGuard outer(&outer_arena);
    EXPECT_EQ(ActiveArena(), &outer_arena);
    {
      ArenaGuard inner(&inner_arena);
      EXPECT_EQ(ActiveArena(), &inner_arena);
      {
        ArenaGuard none(nullptr);
        // Null guard is a no-op, not a "deactivate".
        EXPECT_EQ(ActiveArena(), &inner_arena);
      }
      EXPECT_EQ(ActiveArena(), &inner_arena);
    }
    EXPECT_EQ(ActiveArena(), &outer_arena);
  }
  EXPECT_EQ(ActiveArena(), nullptr);
}

TEST(GraphArenaTest, StatsHookFiresOnReset) {
  static std::atomic<uint64_t> observed_resets{0};
  InstallArenaStatsHook(
      [](const ArenaStats& stats) { observed_resets = stats.resets; });
  GraphArena arena;
  arena.Reset();
  arena.Reset();
  InstallArenaStatsHook(nullptr);
  EXPECT_EQ(observed_resets.load(), 2u);
}

TEST(GraphArenaTest, EnabledOverride) {
  SetArenaEnabledForTest(false);
  EXPECT_FALSE(ArenaEnabled());
  SetArenaEnabledForTest(true);
  EXPECT_TRUE(ArenaEnabled());
  ClearArenaEnabledOverrideForTest();
  // Without an override the env variable decides; this test process does
  // not set ZERODB_ARENA=off, so the default is on.
  if (const char* env = std::getenv("ZERODB_ARENA");
      env == nullptr || std::string_view(env) != "off") {
    EXPECT_TRUE(ArenaEnabled());
  } else {
    EXPECT_FALSE(ArenaEnabled());
  }
}

// ---- Tensor factories ------------------------------------------------------

TEST(GraphArenaTest, ZerosLikeMatchesShapeAndZeroes) {
  Tensor ref = Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor z = Tensor::ZerosLike(ref);
  EXPECT_EQ(z.rows(), 3u);
  EXPECT_EQ(z.cols(), 2u);
  for (float v : z.data()) EXPECT_EQ(v, 0.0f);

  // Under an arena the buffer is pooled — recycled storage must still come
  // back zeroed (gradient init depends on it).
  GraphArena arena;
  {
    ArenaGuard guard(&arena);
    Tensor dirty = Tensor::Full(3, 2, 9.0f);
    (void)dirty;
  }
  arena.Reset();
  {
    ArenaGuard guard(&arena);
    Tensor z2 = Tensor::ZerosLike(ref);
    for (float v : z2.data()) EXPECT_EQ(v, 0.0f);
  }
  arena.Reset();
}

// ---- Multithreaded stress (8 threads; run under TSan in CI) ---------------

TEST(ArenaStressTest, EightThreadReplicaArenas) {
  // Mirrors the trainer's shard-executor pattern: every thread owns one
  // arena and cycles build-backward-reset. Arenas share nothing but the
  // process-wide stats counters; TSan verifies that claim.
  const size_t kThreads = 8;
  const int kCycles = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &failures]() {
      GraphArena arena;
      Tensor w =
          Tensor::Parameter(8, 8, std::vector<float>(64, 0.125f * (t + 1)));
      Tensor b = Tensor::Parameter(1, 8, std::vector<float>(8, 0.01f));
      for (int cycle = 0; cycle < kCycles; ++cycle) {
        ArenaGuard guard(&arena);
        {
          Rng rng(t * 1000 + cycle);
          Tensor v = Tensor::Parameter(8, 1, std::vector<float>(8, 0.1f));
          Tensor x = Tensor::Full(16, 8, 0.5f);
          Tensor h = LinearFused(x, w, b, /*fuse_relu=*/true);
          Tensor d = Dropout(h, 0.1f, &rng, /*training=*/true);
          Tensor loss = MseLoss(MatMul(d, v), Tensor::Zeros(16, 1));
          loss.Backward();
          if (loss.data().empty() || w.grad().empty()) failures.fetch_add(1);
        }
        w.ZeroGrad();
        b.ZeroGrad();
        arena.Reset();
      }
      // Steady state: slab count small and stable, nothing in use.
      if (arena.stats().nodes_in_use != 0) failures.fetch_add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace zerodb::nn
