// Tests for the roadmap extensions: ensemble uncertainty (paper Section
// 2.2), zero-shot plan selection (Section 4.2), and model persistence.

#include <gtest/gtest.h>

#include <cstdio>

#include "datagen/corpus.h"
#include "models/scaled_cost_model.h"
#include "train/metrics.h"
#include "workload/benchmarks.h"
#include "zeroshot/ensemble.h"
#include "zeroshot/estimator.h"
#include "zeroshot/plan_selection.h"

namespace zerodb::zeroshot {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new std::vector<datagen::DatabaseEnv>(
        datagen::MakeTrainingCorpus(42, 5, 0.1));
    imdb_ = new datagen::DatabaseEnv(datagen::MakeImdbEnv(7, 0.1));
    ZeroShotConfig config;
    config.queries_per_database = 120;
    config.trainer.max_epochs = 20;
    records_ = new std::vector<train::QueryRecord>(
        CollectCorpusRecords(*corpus_, config));
    estimator_ = new ZeroShotEstimator(ZeroShotEstimator::TrainFromRecords(
        CloneRecords(*records_), config));
  }
  static void TearDownTestSuite() {
    delete estimator_;
    delete records_;
    delete imdb_;
    delete corpus_;
  }

  static std::vector<train::QueryRecord> CloneRecords(
      const std::vector<train::QueryRecord>& records) {
    std::vector<train::QueryRecord> copies;
    for (const train::QueryRecord& record : records) {
      train::QueryRecord copy;
      copy.env = record.env;
      copy.db_name = record.db_name;
      copy.query = record.query;
      copy.plan = record.plan.Clone();
      copy.runtime_ms = record.runtime_ms;
      copy.opt_cost = record.opt_cost;
      copies.push_back(std::move(copy));
    }
    return copies;
  }

  static std::vector<datagen::DatabaseEnv>* corpus_;
  static datagen::DatabaseEnv* imdb_;
  static std::vector<train::QueryRecord>* records_;
  static ZeroShotEstimator* estimator_;
};

std::vector<datagen::DatabaseEnv>* ExtensionsTest::corpus_ = nullptr;
datagen::DatabaseEnv* ExtensionsTest::imdb_ = nullptr;
std::vector<train::QueryRecord>* ExtensionsTest::records_ = nullptr;
ZeroShotEstimator* ExtensionsTest::estimator_ = nullptr;

TEST_F(ExtensionsTest, EnsemblePredictsWithSpread) {
  EnsembleConfig config;
  config.ensemble_size = 3;
  config.base.trainer.max_epochs = 10;
  EnsembleEstimator ensemble =
      EnsembleEstimator::TrainFromRecords(CloneRecords(*records_), config);
  EXPECT_EQ(ensemble.size(), 3u);

  auto queries = workload::MakeBenchmark(
      workload::BenchmarkWorkload::kSynthetic, *imdb_, 40, 5);
  auto eval = train::CollectRecords(*imdb_, queries, train::CollectOptions());
  auto predictions = ensemble.Predict(train::MakeView(eval));
  ASSERT_EQ(predictions.size(), eval.size());
  for (const UncertainPrediction& prediction : predictions) {
    EXPECT_GT(prediction.runtime_ms.value(), 0.0);
    EXPECT_GE(prediction.spread_factor, 1.0);
    EXPECT_LE(prediction.low_ms.value(), prediction.runtime_ms.value() + 1e-9);
    EXPECT_GE(prediction.high_ms.value(), prediction.runtime_ms.value() - 1e-9);
    EXPECT_EQ(prediction.uncertain,
              prediction.spread_factor > config.uncertainty_threshold);
  }
}

TEST_F(ExtensionsTest, EnsembleMoreUncertainOffDistribution) {
  EnsembleConfig config;
  config.ensemble_size = 3;
  config.base.trainer.max_epochs = 10;
  EnsembleEstimator ensemble =
      EnsembleEstimator::TrainFromRecords(CloneRecords(*records_), config);

  // In-distribution: evaluation on the training records themselves.
  std::vector<const train::QueryRecord*> in_dist;
  for (size_t i = 0; i < 40; ++i) in_dist.push_back(&(*records_)[i]);
  auto in_predictions = ensemble.Predict(in_dist);

  // Off-distribution: corrupt the plans' cardinality annotations wildly.
  auto corrupted = CloneRecords(*records_);
  corrupted.resize(40);
  Rng rng(9);
  for (auto& record : corrupted) {
    record.plan.root->VisitMutable([&](plan::PhysicalNode& node) {
      node.est_cardinality *= rng.LogNormal(0.0, 4.0);
    });
  }
  auto off_predictions = ensemble.Predict(train::MakeView(corrupted));

  double in_spread = 0.0;
  double off_spread = 0.0;
  for (const auto& p : in_predictions) in_spread += p.spread_factor;
  for (const auto& p : off_predictions) off_spread += p.spread_factor;
  EXPECT_GT(off_spread / off_predictions.size(),
            in_spread / in_predictions.size());
}

TEST_F(ExtensionsTest, FallbackKicksInWhenUncertain) {
  EnsembleConfig config;
  config.ensemble_size = 3;
  config.base.trainer.max_epochs = 10;
  config.uncertainty_threshold = 1.0;  // everything is "uncertain"
  EnsembleEstimator ensemble =
      EnsembleEstimator::TrainFromRecords(CloneRecords(*records_), config);
  models::ScaledOptCostModel fallback;
  fallback.Fit(train::MakeView(*records_));
  std::vector<const train::QueryRecord*> view;
  for (size_t i = 0; i < 20; ++i) view.push_back(&(*records_)[i]);
  size_t num_fallbacks = 0;
  auto predictions = ensemble.PredictWithFallback(view, &fallback,
                                                  &num_fallbacks);
  EXPECT_EQ(predictions.size(), 20u);
  EXPECT_GT(num_fallbacks, 15u);  // threshold 1.0 => almost all fall back
  auto fallback_only = fallback.PredictMs(view);
  for (size_t i = 0; i < view.size(); ++i) {
    if (num_fallbacks == 20) {
      EXPECT_DOUBLE_EQ(predictions[i].value(), fallback_only[i].value());
    }
  }
}

TEST_F(ExtensionsTest, CandidatePlansAreDistinct) {
  ASSERT_TRUE(imdb_->db->CreateIndex("cast_info", "movie_id").ok());
  imdb_->RefreshStats();
  size_t year_col = *imdb_->db->FindTable("title")->schema().FindColumn(
      "production_year");
  plan::QuerySpec query;
  query.tables = {"title", "cast_info"};
  query.joins = {plan::JoinSpec{"cast_info", "movie_id", "title", "id"}};
  query.filters = {plan::FilterSpec{
      "title", plan::Predicate::Compare(year_col, plan::CompareOp::kEq, 2015)}};
  query.aggregates = {plan::AggregateSpec{plan::AggFunc::kCount, "", ""}};
  auto candidates = EnumerateCandidatePlans(*imdb_, query);
  EXPECT_GE(candidates.size(), 2u);  // index and no-index shapes differ
  for (size_t a = 0; a < candidates.size(); ++a) {
    for (size_t b = a + 1; b < candidates.size(); ++b) {
      EXPECT_NE(candidates[a].root->ToString(*imdb_->db),
                candidates[b].root->ToString(*imdb_->db));
    }
  }
  imdb_->db->DropAllIndexes();
  imdb_->RefreshStats();
}

TEST_F(ExtensionsTest, ModelChoosesAPlan) {
  workload::QueryGenerator generator(
      imdb_, workload::TrainingWorkloadConfig(), 23);
  int chosen = 0;
  for (int i = 0; i < 10; ++i) {
    auto choice = ChoosePlanWithModel(estimator_, *imdb_, generator.Next());
    ASSERT_TRUE(choice.ok()) << choice.status().ToString();
    EXPECT_GT(choice->predicted_ms.value(), 0.0);
    EXPECT_GE(choice->num_candidates, 1u);
    EXPECT_LT(choice->candidate_index, choice->num_candidates);
    ++chosen;
  }
  EXPECT_EQ(chosen, 10);
}

TEST_F(ExtensionsTest, SaveLoadRoundTripsPredictions) {
  std::string path = testing::TempDir() + "/zdb_model.bin";
  ASSERT_TRUE(estimator_->model().SaveWeights(path).ok());

  models::ZeroShotCostModel::Options options;  // same defaults as config
  models::ZeroShotCostModel restored(options);
  ASSERT_TRUE(restored.LoadWeights(path).ok());

  std::vector<const train::QueryRecord*> view;
  for (size_t i = 0; i < 20; ++i) view.push_back(&(*records_)[i]);
  auto original = estimator_->model().PredictMs(view);
  auto roundtrip = restored.PredictMs(view);
  ASSERT_EQ(original.size(), roundtrip.size());
  for (size_t i = 0; i < original.size(); ++i) {
    // Normalization statistics are persisted as float32, so round-tripped
    // predictions agree to float precision, not bit-exactly.
    EXPECT_NEAR(original[i].value(), roundtrip[i].value(),
                1e-5 * (1.0 + original[i].value()));
  }
  std::remove(path.c_str());
}

TEST_F(ExtensionsTest, SaveUntrainedModelRejected) {
  models::ZeroShotCostModel::Options options;
  models::ZeroShotCostModel untrained(options);
  EXPECT_FALSE(untrained.SaveWeights("/tmp/zdb_should_not_exist.bin").ok());
}

}  // namespace
}  // namespace zerodb::zeroshot
