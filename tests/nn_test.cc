#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <functional>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/lr_schedule.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "nn/tensor.h"

namespace zerodb::nn {
namespace {

TEST(TensorTest, FactoriesAndShapes) {
  Tensor z = Tensor::Zeros(2, 3);
  EXPECT_EQ(z.rows(), 2u);
  EXPECT_EQ(z.cols(), 3u);
  EXPECT_EQ(z.size(), 6u);
  for (float v : z.data()) EXPECT_EQ(v, 0.0f);

  Tensor f = Tensor::Full(2, 2, 1.5f);
  EXPECT_EQ(f.at(1, 1), 1.5f);

  Tensor d = Tensor::FromData(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(d.at(0, 1), 2.0f);
  EXPECT_EQ(d.at(1, 0), 3.0f);
  EXPECT_FALSE(d.requires_grad());

  Tensor p = Tensor::Parameter(1, 2, {5, 6});
  EXPECT_TRUE(p.requires_grad());
  EXPECT_EQ(p.grad().size(), 2u);
}

TEST(TensorTest, ItemRequiresScalar) {
  Tensor s = Tensor::FromData(1, 1, {3.0f});
  EXPECT_EQ(s.item(), 3.0f);
}

TEST(OpsTest, MatMulForward) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(OpsTest, AddBiasForward) {
  Tensor x = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor b = Tensor::FromData(1, 2, {10, 20});
  Tensor y = AddBias(x, b);
  EXPECT_FLOAT_EQ(y.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(y.at(1, 1), 24.0f);
}

TEST(OpsTest, ReluForward) {
  Tensor x = Tensor::FromData(1, 4, {-2, -0.5f, 0, 3});
  Tensor y = Relu(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 3), 3.0f);
}

TEST(OpsTest, RowGatherForward) {
  Tensor x = Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor y = RowGather(x, {2, 0, 2});
  ASSERT_EQ(y.rows(), 3u);
  EXPECT_FLOAT_EQ(y.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(2, 1), 6.0f);
}

TEST(OpsTest, RowScatterAddForward) {
  Tensor x = Tensor::FromData(3, 2, {1, 1, 2, 2, 3, 3});
  Tensor y = RowScatterAdd(x, {0, 0, 1}, 2);
  ASSERT_EQ(y.rows(), 2u);
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.0f);  // rows 0 and 1 summed
  EXPECT_FLOAT_EQ(y.at(1, 0), 3.0f);
}

TEST(OpsTest, ConcatColsForward) {
  Tensor a = Tensor::FromData(2, 1, {1, 2});
  Tensor b = Tensor::FromData(2, 2, {3, 4, 5, 6});
  Tensor c = ConcatCols({a, b});
  ASSERT_EQ(c.cols(), 3u);
  EXPECT_FLOAT_EQ(c.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c.at(0, 2), 4.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 5.0f);
}

TEST(OpsTest, ConcatRowsForward) {
  Tensor a = Tensor::FromData(1, 2, {1, 2});
  Tensor b = Tensor::FromData(2, 2, {3, 4, 5, 6});
  Tensor c = ConcatRows({a, b});
  ASSERT_EQ(c.rows(), 3u);
  EXPECT_FLOAT_EQ(c.at(2, 1), 6.0f);
}

TEST(OpsTest, MseLossForward) {
  Tensor pred = Tensor::FromData(2, 1, {1.0f, 3.0f});
  Tensor target = Tensor::FromData(2, 1, {0.0f, 1.0f});
  Tensor loss = MseLoss(pred, target);
  EXPECT_FLOAT_EQ(loss.item(), (1.0f + 4.0f) / 2.0f);
}

TEST(OpsTest, HuberLossForward) {
  Tensor pred = Tensor::FromData(2, 1, {0.5f, 3.0f});
  Tensor target = Tensor::FromData(2, 1, {0.0f, 0.0f});
  Tensor loss = HuberLoss(pred, target, 1.0f);
  // 0.5*0.25 + (3 - 0.5) = 0.125 + 2.5, averaged.
  EXPECT_FLOAT_EQ(loss.item(), (0.125f + 2.5f) / 2.0f);
}

// Numerical gradient checking: perturb each parameter entry and compare the
// finite-difference slope with the autograd gradient.
void CheckGradients(Tensor param, const std::function<Tensor()>& loss_fn,
                    float tolerance = 2e-2f) {
  Tensor loss = loss_fn();
  param.ZeroGrad();
  loss.Backward();
  std::vector<float> analytic = param.grad();
  const float eps = 1e-2f;
  for (size_t i = 0; i < param.size(); ++i) {
    float original = param.mutable_data()[i];
    param.mutable_data()[i] = original + eps;
    float up = loss_fn().item();
    param.mutable_data()[i] = original - eps;
    float down = loss_fn().item();
    param.mutable_data()[i] = original;
    float numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric, tolerance)
        << "gradient mismatch at index " << i;
  }
}

TEST(AutogradTest, MatMulGradient) {
  Tensor w = Tensor::Parameter(3, 2, {0.1f, -0.2f, 0.3f, 0.4f, -0.5f, 0.6f});
  Tensor x = Tensor::FromData(2, 3, {1, 2, 3, -1, 0.5f, 2});
  Tensor target = Tensor::FromData(2, 1, {1.0f, -1.0f});
  Tensor ones = Tensor::FromData(2, 1, {1.0f, 1.0f});
  auto loss_fn = [&]() {
    Tensor h = MatMul(x, w);                       // (2,2)
    Tensor col = MatMul(h, Tensor::FromData(2, 1, {1.0f, 1.0f}));
    (void)ones;
    return MseLoss(col, target);
  };
  CheckGradients(w, loss_fn);
}

TEST(AutogradTest, BiasGradient) {
  Tensor b = Tensor::Parameter(1, 2, {0.2f, -0.3f});
  Tensor x = Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor target = Tensor::FromData(3, 1, {1, 2, 3});
  auto loss_fn = [&]() {
    Tensor h = AddBias(x, b);
    Tensor col = MatMul(h, Tensor::FromData(2, 1, {1.0f, -1.0f}));
    return MseLoss(col, target);
  };
  CheckGradients(b, loss_fn);
}

TEST(AutogradTest, ReluGradient) {
  Tensor w = Tensor::Parameter(2, 2, {0.5f, -0.4f, 0.3f, 0.8f});
  Tensor x = Tensor::FromData(2, 2, {1, -2, 3, 0.5f});
  Tensor target = Tensor::FromData(2, 1, {0.3f, 0.7f});
  auto loss_fn = [&]() {
    Tensor h = Relu(MatMul(x, w));
    Tensor col = MatMul(h, Tensor::FromData(2, 1, {1.0f, 1.0f}));
    return MseLoss(col, target);
  };
  CheckGradients(w, loss_fn);
}

TEST(AutogradTest, SigmoidTanhGradient) {
  Tensor w = Tensor::Parameter(2, 2, {0.5f, -0.4f, 0.3f, 0.8f});
  Tensor x = Tensor::FromData(2, 2, {1, -2, 3, 0.5f});
  Tensor target = Tensor::FromData(2, 1, {0.3f, 0.7f});
  auto loss_fn = [&]() {
    Tensor h = Tanh(MatMul(x, w));
    Tensor s = Sigmoid(h);
    Tensor col = MatMul(s, Tensor::FromData(2, 1, {1.0f, 1.0f}));
    return MseLoss(col, target);
  };
  CheckGradients(w, loss_fn);
}

TEST(AutogradTest, GatherScatterGradient) {
  Tensor w = Tensor::Parameter(3, 2, {0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f});
  Tensor target = Tensor::FromData(2, 1, {1.0f, 0.0f});
  auto loss_fn = [&]() {
    Tensor gathered = RowGather(w, {0, 2, 1, 0});          // (4,2)
    Tensor pooled = RowScatterAdd(gathered, {0, 0, 1, 1}, 2);  // (2,2)
    Tensor col = MatMul(pooled, Tensor::FromData(2, 1, {1.0f, -1.0f}));
    return MseLoss(col, target);
  };
  CheckGradients(w, loss_fn);
}

TEST(AutogradTest, ConcatGradient) {
  Tensor w = Tensor::Parameter(2, 2, {0.1f, 0.2f, 0.3f, 0.4f});
  Tensor x = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor target = Tensor::FromData(2, 1, {1.0f, -1.0f});
  auto loss_fn = [&]() {
    Tensor h = MatMul(x, w);
    Tensor cat = ConcatCols({h, x});  // (2,4)
    Tensor col = MatMul(cat, Tensor::FromData(4, 1, {1.0f, -1.0f, 0.5f, 0.5f}));
    return MseLoss(col, target);
  };
  CheckGradients(w, loss_fn);
}

TEST(AutogradTest, SharedSubgraphAccumulates) {
  // Using a parameter twice must add both gradient contributions.
  Tensor w = Tensor::Parameter(1, 1, {0.7f});
  Tensor target = Tensor::FromData(1, 1, {2.0f});
  auto loss_fn = [&]() {
    Tensor doubled = Add(w, w);  // 2w
    return MseLoss(doubled, target);
  };
  CheckGradients(w, loss_fn);
}

TEST(AutogradTest, HuberGradient) {
  Tensor w = Tensor::Parameter(2, 1, {2.0f, -0.2f});
  Tensor x = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor target = Tensor::FromData(2, 1, {0.0f, 0.0f});
  auto loss_fn = [&]() { return HuberLoss(MatMul(x, w), target, 1.0f); };
  CheckGradients(w, loss_fn);
}

TEST(AutogradTest, ScaleRowsAndScaleGradient) {
  Tensor w = Tensor::Parameter(2, 2, {0.3f, 0.1f, -0.2f, 0.5f});
  Tensor target = Tensor::FromData(2, 1, {1.0f, 2.0f});
  auto loss_fn = [&]() {
    Tensor scaled = ScaleRows(w, {0.5f, 2.0f});
    Tensor s2 = Scale(scaled, 3.0f);
    Tensor col = MatMul(s2, Tensor::FromData(2, 1, {1.0f, 1.0f}));
    return MseLoss(col, target);
  };
  CheckGradients(w, loss_fn);
}

TEST(LayersTest, LinearShapesAndDeterminism) {
  Rng rng1(5);
  Rng rng2(5);
  Linear a(4, 3, &rng1);
  Linear b(4, 3, &rng2);
  EXPECT_EQ(a.weight().data(), b.weight().data());
  Tensor x = Tensor::FromData(2, 4, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor y = a.Forward(x);
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_EQ(y.cols(), 3u);
}

TEST(LayersTest, MlpForwardShape) {
  Rng rng(5);
  MlpConfig config;
  config.in_features = 6;
  config.hidden_sizes = {8, 8};
  config.out_features = 1;
  Mlp mlp(config, &rng);
  Tensor x = Tensor::Zeros(3, 6);
  Tensor y = mlp.Forward(x);
  EXPECT_EQ(y.rows(), 3u);
  EXPECT_EQ(y.cols(), 1u);
  EXPECT_EQ(mlp.Parameters().size(), 6u);  // 3 layers x (W, b)
}

TEST(TrainingTest, MlpLearnsLinearFunction) {
  // y = 2*x0 - x1 + 0.5 learned from samples; sanity check the full loop.
  Rng rng(123);
  MlpConfig config;
  config.in_features = 2;
  config.hidden_sizes = {16};
  config.out_features = 1;
  Mlp mlp(config, &rng);

  std::vector<float> inputs;
  std::vector<float> targets;
  Rng data_rng(7);
  const size_t n = 256;
  for (size_t i = 0; i < n; ++i) {
    float x0 = static_cast<float>(data_rng.UniformDouble(-1, 1));
    float x1 = static_cast<float>(data_rng.UniformDouble(-1, 1));
    inputs.push_back(x0);
    inputs.push_back(x1);
    targets.push_back(2 * x0 - x1 + 0.5f);
  }
  Tensor x = Tensor::FromData(n, 2, inputs);
  Tensor y = Tensor::FromData(n, 1, targets);

  Adam optimizer(mlp.Parameters(), 0.01f);
  float final_loss = 1e9f;
  for (int epoch = 0; epoch < 600; ++epoch) {
    Tensor loss = MseLoss(mlp.Forward(x), y);
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
    final_loss = loss.item();
  }
  EXPECT_LT(final_loss, 2e-3f);
}

TEST(TrainingTest, SgdMomentumConverges) {
  Rng rng(11);
  MlpConfig config;
  config.in_features = 1;
  config.hidden_sizes = {};
  config.out_features = 1;
  Mlp mlp(config, &rng);
  Tensor x = Tensor::FromData(4, 1, {0, 1, 2, 3});
  Tensor y = Tensor::FromData(4, 1, {1, 3, 5, 7});  // y = 2x + 1
  Sgd optimizer(mlp.Parameters(), 0.02f, 0.9f);
  float final_loss = 1e9f;
  for (int step = 0; step < 500; ++step) {
    Tensor loss = MseLoss(mlp.Forward(x), y);
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
    final_loss = loss.item();
  }
  EXPECT_LT(final_loss, 1e-4f);
}

TEST(OptimizerTest, ClipGradNorm) {
  Tensor p = Tensor::Parameter(1, 2, {0.0f, 0.0f});
  p.mutable_grad() = {3.0f, 4.0f};  // norm 5
  Adam optimizer({p}, 0.001f);
  double norm = optimizer.ClipGradNorm(1.0);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_NEAR(p.grad()[0], 0.6f, 1e-5);
  EXPECT_NEAR(p.grad()[1], 0.8f, 1e-5);
}

TEST(OptimizerTest, ZeroGradClears) {
  Tensor p = Tensor::Parameter(1, 2, {0.0f, 0.0f});
  p.mutable_grad() = {1.0f, 2.0f};
  Sgd optimizer({p}, 0.1f);
  optimizer.ZeroGrad();
  EXPECT_EQ(p.grad()[0], 0.0f);
  EXPECT_EQ(p.grad()[1], 0.0f);
}

TEST(DropoutTest, IdentityInEval) {
  Rng rng(3);
  Tensor x = Tensor::FromData(1, 4, {1, 2, 3, 4});
  Tensor y = Dropout(x, 0.5f, &rng, /*training=*/false);
  EXPECT_EQ(y.data(), x.data());
}

TEST(DropoutTest, ZeroesAndRescales) {
  Rng rng(3);
  Tensor x = Tensor::Full(1, 1000, 1.0f);
  Tensor y = Dropout(x, 0.5f, &rng, /*training=*/true);
  int zeros = 0;
  double sum = 0;
  for (float v : y.data()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);
    }
    sum += v;
  }
  EXPECT_NEAR(zeros / 1000.0, 0.5, 0.06);
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.12);
}

TEST(OpsTest, LayerNormForward) {
  Tensor x = Tensor::FromData(2, 3, {1, 2, 3, 10, 10, 10});
  Tensor y = LayerNorm(x);
  // Row 0: mean 2, var 2/3 -> normalized {-1.22, 0, 1.22}.
  EXPECT_NEAR(y.at(0, 0), -1.2247f, 1e-3);
  EXPECT_NEAR(y.at(0, 1), 0.0f, 1e-4);
  EXPECT_NEAR(y.at(0, 2), 1.2247f, 1e-3);
  // Constant row: all zeros (epsilon guards the division).
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(y.at(1, j), 0.0f, 1e-3);
}

TEST(LrScheduleTest, ConstantAndStep) {
  ConstantLr constant(0.1f);
  EXPECT_FLOAT_EQ(constant.RateForEpoch(0), 0.1f);
  EXPECT_FLOAT_EQ(constant.RateForEpoch(100), 0.1f);

  StepDecayLr step(0.1f, 0.5f, 10);
  EXPECT_FLOAT_EQ(step.RateForEpoch(0), 0.1f);
  EXPECT_FLOAT_EQ(step.RateForEpoch(9), 0.1f);
  EXPECT_FLOAT_EQ(step.RateForEpoch(10), 0.05f);
  EXPECT_FLOAT_EQ(step.RateForEpoch(25), 0.025f);
}

TEST(LrScheduleTest, CosineDecreasesToFloor) {
  CosineLr cosine(0.1f, 0.01f, 21);
  EXPECT_FLOAT_EQ(cosine.RateForEpoch(0), 0.1f);
  EXPECT_NEAR(cosine.RateForEpoch(10), 0.055f, 1e-3);
  EXPECT_FLOAT_EQ(cosine.RateForEpoch(20), 0.01f);
  EXPECT_FLOAT_EQ(cosine.RateForEpoch(100), 0.01f);  // clamped past the end
  float previous = 1.0f;
  for (size_t epoch = 0; epoch < 21; ++epoch) {
    float rate = cosine.RateForEpoch(epoch);
    EXPECT_LE(rate, previous + 1e-7f);
    previous = rate;
  }
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng(77);
  MlpConfig config;
  config.in_features = 3;
  config.hidden_sizes = {5};
  config.out_features = 2;
  Mlp source(config, &rng);
  Mlp dest(config, &rng);  // different weights (rng advanced)

  std::string path = testing::TempDir() + "/zdb_params.bin";
  ASSERT_TRUE(SaveParameters(source.Parameters(), path).ok());
  ASSERT_TRUE(LoadParameters(dest.Parameters(), path).ok());

  Tensor x = Tensor::FromData(1, 3, {0.1f, 0.2f, 0.3f});
  Tensor ys = source.Forward(x);
  Tensor yd = dest.Forward(x);
  for (size_t i = 0; i < ys.size(); ++i) {
    EXPECT_FLOAT_EQ(ys.data()[i], yd.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Rng rng(78);
  MlpConfig small;
  small.in_features = 2;
  small.out_features = 1;
  MlpConfig big;
  big.in_features = 3;
  big.out_features = 1;
  Mlp source(small, &rng);
  Mlp dest(big, &rng);
  std::string path = testing::TempDir() + "/zdb_params2.bin";
  ASSERT_TRUE(SaveParameters(source.Parameters(), path).ok());
  Status s = LoadParameters(dest.Parameters(), path);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIOError) {
  Rng rng(79);
  MlpConfig config;
  config.in_features = 2;
  config.out_features = 1;
  Mlp mlp(config, &rng);
  Status s = LoadParameters(mlp.Parameters(), "/nonexistent/params.bin");
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

// The blocked MatMul kernel (4-wide k blocking) reorders float summation
// versus the scalar i-k-j reference, so it must match within tolerance,
// not bitwise. k values straddle the block boundary on purpose: 1 and 3
// run only the scalar tail, 4 and 8 only blocks, 7 both.
TEST(OpsTest, MatMulBlockedMatchesReference) {
  Rng rng(99);
  for (size_t k : {1u, 3u, 4u, 7u, 8u}) {
    const size_t m = 5;
    const size_t n = 6;
    std::vector<float> a_data(m * k);
    std::vector<float> b_data(k * n);
    for (float& v : a_data) {
      v = static_cast<float>(rng.UniformDouble(-2.0, 2.0));
    }
    // Sprinkle zeros so the kernel's zero-block skip path runs too.
    a_data[0] = 0.0f;
    if (k >= 4) {
      for (size_t j = 0; j < k; ++j) a_data[1 * k + j] = 0.0f;
    }
    for (float& v : b_data) {
      v = static_cast<float>(rng.UniformDouble(-2.0, 2.0));
    }
    Tensor a = Tensor::FromData(m, k, a_data);
    Tensor b = Tensor::FromData(k, n, b_data);
    Tensor c = MatMul(a, b);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        double reference = 0.0;
        for (size_t kk = 0; kk < k; ++kk) {
          reference += static_cast<double>(a_data[i * k + kk]) *
                       static_cast<double>(b_data[kk * n + j]);
        }
        EXPECT_NEAR(c.at(i, j), static_cast<float>(reference), 1e-4f)
            << "k=" << k << " at (" << i << "," << j << ")";
      }
    }
  }
}

TEST(OpsTest, LinearFusedMatchesComposition) {
  // LinearFused promises bitwise-identical results to the three-op
  // composition (bias after the full k-accumulation, then ReLU), so exact
  // equality — not tolerance — is the contract.
  Tensor x = Tensor::FromData(3, 5, {0.3f, -1.2f, 0.7f, 2.1f, -0.4f,
                                     1.1f, 0.0f, -0.9f, 0.5f, 1.7f,
                                     -2.2f, 0.8f, 1.3f, -0.1f, 0.6f});
  Rng rng(7);
  std::vector<float> w_data(5 * 4);
  for (float& v : w_data) {
    v = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
  }
  Tensor w = Tensor::FromData(5, 4, w_data);
  Tensor bias = Tensor::FromData(1, 4, {0.1f, -0.2f, 0.3f, -0.4f});
  Tensor composed = Relu(AddBias(MatMul(x, w), bias));
  Tensor fused = LinearFused(x, w, bias, /*relu=*/true);
  ASSERT_EQ(fused.rows(), composed.rows());
  ASSERT_EQ(fused.cols(), composed.cols());
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(fused.data()[i], composed.data()[i]) << "element " << i;
  }
  Tensor fused_linear = LinearFused(x, w, bias, /*relu=*/false);
  Tensor composed_linear = AddBias(MatMul(x, w), bias);
  for (size_t i = 0; i < fused_linear.size(); ++i) {
    EXPECT_EQ(fused_linear.data()[i], composed_linear.data()[i])
        << "element " << i;
  }
}

TEST(AutogradTest, LinearFusedWeightGradient) {
  Tensor w = Tensor::Parameter(3, 2, {0.4f, -0.3f, 0.2f, 0.6f, -0.5f, 0.1f});
  Tensor x = Tensor::FromData(2, 3, {1, -2, 0.5f, 2, 1, -1});
  Tensor bias = Tensor::FromData(1, 2, {0.3f, -0.2f});
  Tensor target = Tensor::FromData(2, 1, {1.0f, -1.0f});
  auto loss_fn = [&]() {
    Tensor h = LinearFused(x, w, bias, /*relu=*/true);
    Tensor col = MatMul(h, Tensor::FromData(2, 1, {1.0f, -1.0f}));
    return MseLoss(col, target);
  };
  CheckGradients(w, loss_fn);
}

TEST(AutogradTest, LinearFusedBiasGradient) {
  // 0.3 keeps every pre-activation a safe margin away from the ReLU kink:
  // the numeric gradient straddles z = 0 and diverges from the analytic
  // one when a perturbation flips the unit's activation.
  Tensor bias = Tensor::Parameter(1, 2, {0.3f, -0.15f});
  Tensor x = Tensor::FromData(2, 3, {1, -2, 0.5f, 2, 1, -1});
  Tensor w = Tensor::FromData(3, 2, {0.4f, -0.3f, 0.2f, 0.6f, -0.5f, 0.1f});
  Tensor target = Tensor::FromData(2, 1, {1.0f, -1.0f});
  auto loss_fn = [&]() {
    Tensor h = LinearFused(x, w, bias, /*relu=*/true);
    Tensor col = MatMul(h, Tensor::FromData(2, 1, {1.0f, 1.0f}));
    return MseLoss(col, target);
  };
  CheckGradients(bias, loss_fn);
}

TEST(OpsTest, RowScatterAddToMatchesComposition) {
  Tensor base = Tensor::FromData(3, 2, {1, 1, 2, 2, 3, 3});
  Tensor x = Tensor::FromData(2, 2, {10, 10, 20, 20});
  Tensor composed = Add(base, RowScatterAdd(x, {0, 2}, 3));
  Tensor fused = RowScatterAddTo(base, x, {0, 2});
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(fused.data()[i], composed.data()[i]) << "element " << i;
  }
}

TEST(AutogradTest, RowScatterAddToGradient) {
  Tensor w = Tensor::Parameter(2, 2, {0.3f, -0.4f, 0.5f, 0.2f});
  Tensor base = Tensor::FromData(3, 2, {0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f});
  Tensor target = Tensor::FromData(3, 1, {1.0f, 0.0f, -1.0f});
  auto loss_fn = [&]() {
    Tensor acc = RowScatterAddTo(base, w, {2, 0});
    Tensor col = MatMul(acc, Tensor::FromData(2, 1, {1.0f, -1.0f}));
    return MseLoss(col, target);
  };
  CheckGradients(w, loss_fn);
}

TEST(InferenceModeTest, ResultsAreDetached) {
  Tensor w = Tensor::Parameter(3, 2, {0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f});
  Tensor bias = Tensor::FromData(1, 2, {0.1f, -0.1f});
  Tensor x = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor attached = LinearFused(x, w, bias, /*relu=*/true);
  EXPECT_TRUE(attached.requires_grad());
  {
    InferenceModeGuard inference;
    EXPECT_TRUE(InInferenceMode());
    Tensor detached = LinearFused(x, w, bias, /*relu=*/true);
    EXPECT_FALSE(detached.requires_grad());
    // Values are unaffected by the mode — only the graph is skipped.
    for (size_t i = 0; i < detached.size(); ++i) {
      EXPECT_EQ(detached.data()[i], attached.data()[i]);
    }
  }
  EXPECT_FALSE(InInferenceMode());
}

TEST(InferenceModeTest, RowScatterAddToReusesBaseBuffer) {
  InferenceModeGuard inference;
  Tensor base = Tensor::FromData(2, 2, {1, 2, 3, 4});
  const float* buffer = base.data().data();
  Tensor x = Tensor::FromData(1, 2, {10, 20});
  Tensor out = RowScatterAddTo(std::move(base), x, {1});
  // In-place contract: the accumulation happened in base's own buffer.
  EXPECT_EQ(out.data().data(), buffer);
  EXPECT_FLOAT_EQ(out.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 13.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 24.0f);
}

}  // namespace
}  // namespace zerodb::nn
