// Semantics of the annotated sync primitives (common/sync.h) plus
// multi-threaded stress on the classes the concurrency layer migrated:
// MetricsRegistry (thread-safe, shared across 8 threads) and QueryTracer
// (thread-compatible, one per thread). Run under ZERODB_SANITIZE=thread
// (scripts/check.sh thread) these tests prove the migration kept the
// annotated state race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zerodb {
namespace {

TEST(MutexTest, LockUnlockRoundTrip) {
  Mutex mu;
  mu.Lock();
  mu.AssertHeld();
  mu.Unlock();
  // Relockable after Unlock (a recursive attempt would deadlock instead).
  mu.Lock();
  mu.Unlock();
}

TEST(MutexTest, TryLockReflectsOwnership) {
  // Branch directly on TryLock(): that is the pattern clang's try-acquire
  // analysis tracks (and the style the tree should copy).
  Mutex mu;
  if (!mu.TryLock()) {
    FAIL() << "TryLock on an uncontended mutex must succeed";
    return;
  }
  // A second owner must be refused while we hold it. (TryLock on the same
  // thread is UB for std::mutex, so probe from another thread.)
  bool acquired = false;
  // zerodb-lint: allow(raw-thread): testing the layer ThreadPool is built on
  std::thread probe([&mu, &acquired] {
    if (mu.TryLock()) {
      mu.Unlock();
      acquired = true;
    }
  });
  probe.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();

  // zerodb-lint: allow(raw-thread): testing the layer ThreadPool is built on
  std::thread probe_after([&mu, &acquired] {
    if (mu.TryLock()) {
      mu.Unlock();
      acquired = true;
    }
  });
  probe_after.join();
  EXPECT_TRUE(acquired);
}

TEST(MutexTest, MutexLockGuardsCriticalSection) {
  // 8 writers x 10k increments on a ZDB_GUARDED_BY counter: any lost
  // update (or TSan report) means MutexLock does not actually exclude.
  struct Guarded {
    Mutex mu;
    int64_t value ZDB_GUARDED_BY(mu) = 0;
  } state;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10'000;
  // zerodb-lint: allow(raw-thread): testing the layer ThreadPool is built on
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&state] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&state.mu);
        ++state.value;
      }
    });
  }
  // zerodb-lint: allow(raw-thread): testing the layer ThreadPool is built on
  for (std::thread& thread : threads) thread.join();
  MutexLock lock(&state.mu);
  EXPECT_EQ(state.value, int64_t{kThreads} * kIncrements);
}

TEST(CondVarTest, NotifyWakesWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  // zerodb-lint: allow(raw-thread): testing the layer ThreadPool is built on
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();  // completes only if the wakeup arrived
  MutexLock lock(&mu);
  EXPECT_TRUE(ready);
}

TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  EXPECT_FALSE(cv.WaitFor(&mu, /*timeout_ms=*/5.0));
}

TEST(CondVarTest, NotifyAllReleasesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int woken = 0;
  constexpr int kWaiters = 8;
  // zerodb-lint: allow(raw-thread): testing the layer ThreadPool is built on
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(&mu);
      ++woken;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  // zerodb-lint: allow(raw-thread): testing the layer ThreadPool is built on
  for (std::thread& waiter : waiters) waiter.join();
  MutexLock lock(&mu);
  EXPECT_EQ(woken, kWaiters);
}

TEST(CondVarTest, ProducerConsumerHandsOffInOrder) {
  // Single-slot mailbox: producer publishes 1..N, consumer must read each
  // exactly once, strictly ordered. Exercises Wait's release-reacquire on
  // both sides.
  Mutex mu;
  CondVar cv;
  int slot = 0;        // 0 = empty
  int consumed = 0;    // last value consumed
  constexpr int kItems = 1'000;
  // zerodb-lint: allow(raw-thread): testing the layer ThreadPool is built on
  std::thread producer([&] {
    for (int i = 1; i <= kItems; ++i) {
      MutexLock lock(&mu);
      while (slot != 0) cv.Wait(&mu);
      slot = i;
      cv.NotifyAll();
    }
  });
  // zerodb-lint: allow(raw-thread): testing the layer ThreadPool is built on
  std::thread consumer([&] {
    for (int i = 1; i <= kItems; ++i) {
      MutexLock lock(&mu);
      while (slot == 0) cv.Wait(&mu);
      EXPECT_EQ(slot, consumed + 1);
      consumed = slot;
      slot = 0;
      cv.NotifyAll();
    }
  });
  producer.join();
  consumer.join();
  MutexLock lock(&mu);
  EXPECT_EQ(consumed, kItems);
}

TEST(SyncStressTest, MetricsRegistrySharedAcrossEightThreads) {
  // All threads hammer the SAME metric names, so Get* races on the name
  // map and the writes race on the metric internals — exactly what the
  // ZDB_GUARDED_BY(mu_) map plus lock-free metric atomics must absorb.
  // One thread concurrently exports ToJson to race reads against writes.
  obs::MetricsRegistry registry(/*enabled=*/true);
  constexpr int kThreads = 8;
  constexpr int kOps = 5'000;
  std::atomic<bool> stop{false};
  // zerodb-lint: allow(raw-thread): testing the layer ThreadPool is built on
  std::thread exporter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)registry.ToJson();  // result discarded: racing, not asserting
    }
  });
  // zerodb-lint: allow(raw-thread): testing the layer ThreadPool is built on
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kOps; ++i) {
        registry.GetCounter("stress.ops")->Add(1);
        registry.GetGauge("stress.level")->Set(static_cast<double>(t));
        registry.GetHistogram("stress.latency_us")
            ->Observe(static_cast<double>(i % 100));
        // A name unique to this thread interleaves map growth with the
        // shared-name lookups above.
        registry.GetCounter("stress.thread." + std::to_string(t))->Add(1);
      }
    });
  }
  // zerodb-lint: allow(raw-thread): testing the layer ThreadPool is built on
  for (std::thread& thread : threads) thread.join();
  stop.store(true, std::memory_order_relaxed);
  exporter.join();

  EXPECT_EQ(registry.GetCounter("stress.ops")->value(),
            int64_t{kThreads} * kOps);
  EXPECT_EQ(registry.GetHistogram("stress.latency_us")->count(),
            int64_t{kThreads} * kOps);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.GetCounter("stress.thread." + std::to_string(t))
                  ->value(),
              kOps);
  }
}

TEST(SyncStressTest, ThreadConfinedTracersWithSharedRegistry) {
  // The documented discipline for thread-compatible classes: one
  // QueryTracer per thread (no sharing), while all threads report to one
  // thread-safe MetricsRegistry. TSan verifies the confinement claim.
  obs::MetricsRegistry registry(/*enabled=*/true);
  constexpr int kThreads = 8;
  constexpr int kQueries = 200;
  // zerodb-lint: allow(raw-thread): testing the layer ThreadPool is built on
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::vector<size_t> span_counts(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &span_counts, t] {
      obs::QueryTracer tracer;  // thread-confined
      for (int q = 0; q < kQueries; ++q) {
        // zerodb-lint: allow(bare-span): stress-testing QueryTracer itself
        obs::Span* root = tracer.BeginSpan("query");
        root->AddAttribute("thread", static_cast<double>(t));
        // zerodb-lint: allow(bare-span): stress-testing QueryTracer itself
        tracer.BeginSpan("scan");
        registry.GetCounter("trace.spans")->Add(2);
        // zerodb-lint: allow(bare-span): stress-testing QueryTracer itself
        tracer.EndSpan();
        // zerodb-lint: allow(bare-span): stress-testing QueryTracer itself
        tracer.EndSpan();
      }
      size_t spans = 0;
      for (const obs::Span& root : tracer.roots()) {
        spans += root.TreeSize();
      }
      span_counts[static_cast<size_t>(t)] = spans;
    });
  }
  // zerodb-lint: allow(raw-thread): testing the layer ThreadPool is built on
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(span_counts[static_cast<size_t>(t)], size_t{2} * kQueries);
  }
  EXPECT_EQ(registry.GetCounter("trace.spans")->value(),
            int64_t{2} * kThreads * kQueries);
}

}  // namespace
}  // namespace zerodb
