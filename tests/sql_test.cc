#include <gtest/gtest.h>

#include "datagen/corpus.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace zerodb::sql {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT a.b, 42 FROM t WHERE x >= 3.5 AND y = 'hi';");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 5u);
  EXPECT_EQ((*tokens)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "select");  // lower-cased
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[2].type, TokenType::kDot);
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(LexerTest, Numbers) {
  auto tokens = Tokenize("1 2.5 -3 1e4");
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 1.0);
  EXPECT_DOUBLE_EQ((*tokens)[1].number, 2.5);
  EXPECT_DOUBLE_EQ((*tokens)[2].number, -3.0);
  EXPECT_DOUBLE_EQ((*tokens)[3].number, 1e4);
}

TEST(LexerTest, Operators) {
  auto tokens = Tokenize("= <> < <= > >= !=");
  ASSERT_TRUE(tokens.ok());
  const char* expected[] = {"=", "<>", "<", "<=", ">", ">=", "<>"};
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_EQ((*tokens)[i].type, TokenType::kOperator);
    EXPECT_EQ((*tokens)[i].text, expected[i]);
  }
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("a # b").ok());
}

TEST(LexerTest, KeywordRecognition) {
  EXPECT_TRUE(IsKeyword("select"));
  EXPECT_TRUE(IsKeyword("group"));
  EXPECT_FALSE(IsKeyword("title"));
}

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() : env_(datagen::MakeImdbEnv(11, 0.02)) {}
  datagen::DatabaseEnv env_;
};

TEST_F(ParserTest, CountStarSingleTable) {
  auto query = ParseQuery("SELECT COUNT(*) FROM title;", *env_.db);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->tables, std::vector<std::string>{"title"});
  ASSERT_EQ(query->aggregates.size(), 1u);
  EXPECT_EQ(query->aggregates[0].func, plan::AggFunc::kCount);
}

TEST_F(ParserTest, JoinAndPredicates) {
  auto query = ParseQuery(
      "SELECT COUNT(*), AVG(title.production_year) FROM title, cast_info "
      "WHERE cast_info.movie_id = title.id AND title.production_year >= 1990 "
      "AND cast_info.nr_order < 5",
      *env_.db);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->tables.size(), 2u);
  ASSERT_EQ(query->joins.size(), 1u);
  EXPECT_EQ(query->joins[0].left_table, "cast_info");
  EXPECT_EQ(query->joins[0].right_column, "id");
  EXPECT_EQ(query->filters.size(), 2u);
  EXPECT_EQ(query->aggregates.size(), 2u);
}

TEST_F(ParserTest, UnqualifiedColumnsResolved) {
  auto query = ParseQuery(
      "SELECT COUNT(*) FROM title WHERE production_year = 2000", *env_.db);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_EQ(query->filters.size(), 1u);
  EXPECT_EQ(query->filters[0].table, "title");
}

TEST_F(ParserTest, AmbiguousColumnRejected) {
  // Both cast_info and movie_info have info-ish columns; "id" exists in all.
  auto query = ParseQuery(
      "SELECT COUNT(*) FROM title, cast_info WHERE "
      "cast_info.movie_id = title.id AND id = 3",
      *env_.db);
  EXPECT_FALSE(query.ok());
}

TEST_F(ParserTest, StringLiteralsUseDictionary) {
  // kind_id is a dictionary-encoded string column; grab a real value.
  const storage::Table* title = env_.db->FindTable("title");
  size_t kind_col = *title->schema().FindColumn("kind_id");
  std::string value = title->column(kind_col).GetValue(0).AsString();
  auto query = ParseQuery(
      "SELECT COUNT(*) FROM title WHERE kind_id = '" + value + "'", *env_.db);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_EQ(query->filters.size(), 1u);
  auto code = title->column(kind_col).LookupCode(value);
  EXPECT_DOUBLE_EQ(query->filters[0].predicate.literal(),
                   static_cast<double>(*code));
}

TEST_F(ParserTest, UnknownStringMatchesNothing) {
  auto query = ParseQuery(
      "SELECT COUNT(*) FROM title WHERE kind_id = 'no_such_kind'", *env_.db);
  ASSERT_TRUE(query.ok());
  EXPECT_DOUBLE_EQ(query->filters[0].predicate.literal(), -1.0);
}

TEST_F(ParserTest, OrGroups) {
  auto query = ParseQuery(
      "SELECT COUNT(*) FROM title WHERE "
      "(production_year = 1990 OR production_year = 2000)",
      *env_.db);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_EQ(query->filters.size(), 1u);
  EXPECT_EQ(query->filters[0].predicate.kind(), plan::Predicate::Kind::kOr);
  EXPECT_EQ(query->filters[0].predicate.NumComparisons(), 2u);
}

TEST_F(ParserTest, CrossTableOrRejected) {
  auto query = ParseQuery(
      "SELECT COUNT(*) FROM title, cast_info WHERE "
      "cast_info.movie_id = title.id AND "
      "(title.production_year = 1990 OR cast_info.nr_order = 1)",
      *env_.db);
  EXPECT_FALSE(query.ok());
}

TEST_F(ParserTest, GroupBy) {
  auto query = ParseQuery(
      "SELECT kind_id, COUNT(*) FROM title GROUP BY kind_id", *env_.db);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_EQ(query->group_by.size(), 1u);
  EXPECT_EQ(query->group_by[0].column, "kind_id");
}

TEST_F(ParserTest, BareColumnNotGroupedRejected) {
  auto query =
      ParseQuery("SELECT production_year, COUNT(*) FROM title", *env_.db);
  EXPECT_FALSE(query.ok());
}

TEST_F(ParserTest, GroupByWithoutAggregatesGetsImplicitCount) {
  auto query =
      ParseQuery("SELECT kind_id FROM title GROUP BY kind_id", *env_.db);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_EQ(query->aggregates.size(), 1u);
  EXPECT_EQ(query->aggregates[0].func, plan::AggFunc::kCount);
}

TEST_F(ParserTest, SyntaxErrorsReportPosition) {
  auto query = ParseQuery("SELECT FROM title", *env_.db);
  ASSERT_FALSE(query.ok());
  EXPECT_NE(query.status().message().find("position"), std::string::npos);
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) title", *env_.db).ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM ghost", *env_.db).ok());
  EXPECT_FALSE(
      ParseQuery("SELECT COUNT(*) FROM title WHERE production_year", *env_.db)
          .ok());
  EXPECT_FALSE(
      ParseQuery("SELECT COUNT(*) FROM title WHERE kind_id < 'abc'", *env_.db)
          .ok());
  EXPECT_FALSE(
      ParseQuery("SELECT COUNT(*) FROM title; garbage", *env_.db).ok());
}

TEST_F(ParserTest, NonEquiJoinRejected) {
  auto query = ParseQuery(
      "SELECT COUNT(*) FROM title, cast_info WHERE "
      "cast_info.movie_id >= title.id",
      *env_.db);
  EXPECT_FALSE(query.ok());
}

TEST_F(ParserTest, ParsedQueryPlansAndExecutes) {
  auto query = ParseQuery(
      "SELECT COUNT(*), MIN(production_year) FROM title, cast_info "
      "WHERE cast_info.movie_id = title.id AND production_year >= 1950",
      *env_.db);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  optimizer::Planner planner(env_.db.get(), &env_.stats);
  auto plan = planner.Plan(*query);
  ASSERT_TRUE(plan.ok());
  exec::Executor executor(env_.db.get());
  auto result = executor.Execute(&*plan);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->output.num_rows(), 1u);
  EXPECT_GE(result->output.columns[0][0], 0.0);   // count
  EXPECT_GE(result->output.columns[1][0], 1950.0);  // min year respects filter
}

TEST_F(ParserTest, RoundTripThroughToSql) {
  // ToSql output of a parsed query parses again to the same structure.
  auto query = ParseQuery(
      "SELECT COUNT(*) FROM title, cast_info WHERE "
      "cast_info.movie_id = title.id AND title.production_year >= 1990",
      *env_.db);
  ASSERT_TRUE(query.ok());
  std::string sql = query->ToSql(*env_.db);
  auto reparsed = ParseQuery(sql, *env_.db);
  ASSERT_TRUE(reparsed.ok()) << sql << " -> " << reparsed.status().ToString();
  EXPECT_EQ(reparsed->tables, query->tables);
  EXPECT_EQ(reparsed->joins.size(), query->joins.size());
  EXPECT_EQ(reparsed->filters.size(), query->filters.size());
}

}  // namespace
}  // namespace zerodb::sql
