#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "datagen/corpus.h"
#include "models/zeroshot_model.h"
#include "train/dataset.h"
#include "train/metrics.h"
#include "train/trainer.h"
#include "workload/benchmarks.h"

namespace zerodb::train {
namespace {

class TrainTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Size the global pool before its first use so every trainer test in
    // this binary exercises the parallel shard path even on 1-core hosts.
    ThreadPool::SetGlobalThreads(4);
    env_ = new datagen::DatabaseEnv(datagen::MakeImdbEnv(13, 0.03));
    records_ = new std::vector<QueryRecord>(CollectRandomWorkload(
        *env_, workload::TrainingWorkloadConfig(), 120, 5, CollectOptions()));
    ASSERT_GE(records_->size(), 100u);
  }
  static void TearDownTestSuite() {
    delete records_;
    delete env_;
  }
  static datagen::DatabaseEnv* env_;
  static std::vector<QueryRecord>* records_;
};

datagen::DatabaseEnv* TrainTest::env_ = nullptr;
std::vector<QueryRecord>* TrainTest::records_ = nullptr;

TEST_F(TrainTest, CollectRecordsAnnotatesEverything) {
  for (const QueryRecord& record : *records_) {
    EXPECT_EQ(record.db_name, "imdb");
    EXPECT_NE(record.env, nullptr);
    EXPECT_NE(record.plan.root, nullptr);
    EXPECT_GT(record.runtime_ms, 0.0);
    EXPECT_GT(record.opt_cost, 0.0);
    EXPECT_GE(record.plan.root->true_cardinality, 0.0);
  }
}

TEST_F(TrainTest, CollectSkipsUnplannableQueries) {
  // A disconnected query cannot be planned; collection drops it silently.
  plan::QuerySpec bad;
  bad.tables = {"title", "cast_info"};  // no join edge
  plan::QuerySpec good;
  good.tables = {"title"};
  good.aggregates = {plan::AggregateSpec{plan::AggFunc::kCount, "", ""}};
  auto records = CollectRecords(*env_, {bad, good, bad}, CollectOptions());
  EXPECT_EQ(records.size(), 1u);
}

TEST_F(TrainTest, NoiseSeedChangesRuntimes) {
  plan::QuerySpec query;
  query.tables = {"title"};
  query.aggregates = {plan::AggregateSpec{plan::AggFunc::kCount, "", ""}};
  CollectOptions a;
  a.noise_seed = 1;
  CollectOptions b;
  b.noise_seed = 2;
  auto record_a = CollectRecords(*env_, {query}, a);
  auto record_b = CollectRecords(*env_, {query}, b);
  ASSERT_EQ(record_a.size(), 1u);
  ASSERT_EQ(record_b.size(), 1u);
  EXPECT_NE(record_a[0].runtime_ms, record_b[0].runtime_ms);
  // But the same seed reproduces exactly.
  auto record_a2 = CollectRecords(*env_, {query}, a);
  EXPECT_DOUBLE_EQ(record_a[0].runtime_ms, record_a2[0].runtime_ms);
}

TEST_F(TrainTest, MakeViewPointsAtRecords) {
  auto view = MakeView(*records_);
  ASSERT_EQ(view.size(), records_->size());
  EXPECT_EQ(view[0], &(*records_)[0]);
}

models::ZeroShotCostModel MakeTinyModel(uint64_t seed = 1) {
  models::ZeroShotCostModel::Options options;
  options.hidden_dim = 16;
  options.init_seed = seed;
  return models::ZeroShotCostModel(options);
}

TEST_F(TrainTest, CosineScheduleTrains) {
  auto model = MakeTinyModel();
  TrainerOptions options;
  options.max_epochs = 12;
  options.lr_schedule = LrScheduleKind::kCosine;
  TrainResult result = TrainModel(&model, MakeView(*records_), options);
  EXPECT_GT(result.epochs_run, 0u);
  EXPECT_LT(result.best_validation_loss, 1.0);
}

TEST_F(TrainTest, StepDecayScheduleTrains) {
  auto model = MakeTinyModel(2);
  TrainerOptions options;
  options.max_epochs = 12;
  options.lr_schedule = LrScheduleKind::kStepDecay;
  options.lr_decay_epochs = 4;
  TrainResult result = TrainModel(&model, MakeView(*records_), options);
  EXPECT_GT(result.epochs_run, 0u);
}

TEST_F(TrainTest, BatchLargerThanDataWorks) {
  auto model = MakeTinyModel(3);
  std::vector<const QueryRecord*> few;
  for (size_t i = 0; i < 10; ++i) few.push_back(&(*records_)[i]);
  TrainerOptions options;
  options.max_epochs = 3;
  options.batch_size = 64;  // larger than the dataset
  options.validation_fraction = 0.0;
  TrainResult result = TrainModel(&model, few, options);
  EXPECT_EQ(result.epochs_run, 3u);
}

TEST_F(TrainTest, ZeroValidationFractionUsesTrainLoss) {
  auto model = MakeTinyModel(4);
  std::vector<const QueryRecord*> few;
  for (size_t i = 0; i < 12; ++i) few.push_back(&(*records_)[i]);
  TrainerOptions options;
  options.max_epochs = 5;
  options.validation_fraction = 0.0;
  TrainResult result = TrainModel(&model, few, options);
  EXPECT_GT(result.best_validation_loss, 0.0);
}

TEST_F(TrainTest, TrainingImprovesOverInitialization) {
  auto model = MakeTinyModel(5);
  auto view = MakeView(*records_);
  // Initial loss (Prepare happens inside TrainModel; to get a baseline,
  // train for 0-epochs equivalent: 1 epoch vs 15 epochs).
  auto model_short = MakeTinyModel(5);
  TrainerOptions short_options;
  short_options.max_epochs = 1;
  TrainResult short_result = TrainModel(&model_short, view, short_options);
  TrainerOptions long_options;
  long_options.max_epochs = 20;
  TrainResult long_result = TrainModel(&model, view, long_options);
  EXPECT_LT(long_result.best_validation_loss,
            short_result.best_validation_loss);
}

TEST_F(TrainTest, DeterministicTrainingGivenSeeds) {
  auto model_a = MakeTinyModel(6);
  auto model_b = MakeTinyModel(6);
  auto view = MakeView(*records_);
  TrainerOptions options;
  options.max_epochs = 4;
  options.seed = 11;
  TrainResult result_a = TrainModel(&model_a, view, options);
  TrainResult result_b = TrainModel(&model_b, view, options);
  EXPECT_DOUBLE_EQ(result_a.final_train_loss, result_b.final_train_loss);
  std::vector<const QueryRecord*> probe = {&(*records_)[0]};
  EXPECT_DOUBLE_EQ(model_a.PredictMs(probe)[0].value(),
                   model_b.PredictMs(probe)[0].value());
}

// The tentpole determinism contract: minibatches split into fixed 8-record
// shards with a fixed-order reduction of partial gradients, so the loss
// history is exactly — not approximately — thread-count independent.
void ExpectSameHistory(const TrainResult& a, const TrainResult& b) {
  EXPECT_EQ(a.epochs_run, b.epochs_run);
  EXPECT_EQ(a.early_stopped, b.early_stopped);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t e = 0; e < a.history.size(); ++e) {
    EXPECT_EQ(a.history[e].train_loss, b.history[e].train_loss)
        << "epoch " << e;
    EXPECT_EQ(a.history[e].val_loss, b.history[e].val_loss) << "epoch " << e;
    EXPECT_EQ(a.history[e].grad_norm, b.history[e].grad_norm) << "epoch " << e;
  }
}

TEST_F(TrainTest, ThreadCountDoesNotChangeLossHistory) {
  auto model_serial = MakeTinyModel(6);
  auto model_parallel = MakeTinyModel(6);
  auto view = MakeView(*records_);
  TrainerOptions options;
  options.max_epochs = 4;
  options.seed = 11;
  options.num_threads = 1;
  TrainResult serial = TrainModel(&model_serial, view, options);
  options.num_threads = 4;
  TrainResult parallel = TrainModel(&model_parallel, view, options);
  ExpectSameHistory(serial, parallel);
  // The trained weights match too: identical predictions, bit for bit.
  std::vector<const QueryRecord*> probe = {&(*records_)[0], &(*records_)[7]};
  std::vector<Millis> p_serial = model_serial.PredictMs(probe);
  std::vector<Millis> p_parallel = model_parallel.PredictMs(probe);
  ASSERT_EQ(p_serial.size(), p_parallel.size());
  for (size_t i = 0; i < p_serial.size(); ++i) {
    EXPECT_EQ(p_serial[i].value(), p_parallel[i].value());
  }
}

TEST_F(TrainTest, ThreadCountDoesNotChangeLossHistoryWithDropout) {
  // Dropout draws from per-shard Rngs whose seeds are pre-drawn in shard
  // order — the stochastic path must stay thread-count independent too.
  models::ZeroShotCostModel::Options model_options;
  model_options.hidden_dim = 16;
  model_options.init_seed = 6;
  model_options.dropout = 0.2f;
  models::ZeroShotCostModel model_serial(model_options);
  models::ZeroShotCostModel model_parallel(model_options);
  auto view = MakeView(*records_);
  TrainerOptions options;
  options.max_epochs = 3;
  options.seed = 11;
  options.num_threads = 1;
  TrainResult serial = TrainModel(&model_serial, view, options);
  options.num_threads = 4;
  TrainResult parallel = TrainModel(&model_parallel, view, options);
  ExpectSameHistory(serial, parallel);
}

TEST_F(TrainTest, PooledMemoryDoesNotChangeLossHistory) {
  // The arena recycles nodes and buffers but never changes the arithmetic:
  // every pooled/fresh × serial/parallel combination — with and without the
  // stochastic dropout path — produces the same loss history bit for bit.
  auto view = MakeView(*records_);
  for (float dropout : {0.0f, 0.2f}) {
    TrainResult reference;
    bool have_reference = false;
    for (bool pooled : {true, false}) {
      for (size_t threads : {size_t(1), size_t(4)}) {
        models::ZeroShotCostModel::Options model_options;
        model_options.hidden_dim = 16;
        model_options.init_seed = 6;
        model_options.dropout = dropout;
        models::ZeroShotCostModel model(model_options);
        TrainerOptions options;
        options.max_epochs = 3;
        options.seed = 11;
        options.num_threads = threads;
        options.pooled_memory = pooled;
        TrainResult result = TrainModel(&model, view, options);
        if (!have_reference) {
          reference = result;
          have_reference = true;
        } else {
          ExpectSameHistory(reference, result);
        }
      }
    }
  }
}

}  // namespace
}  // namespace zerodb::train
