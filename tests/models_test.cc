#include <gtest/gtest.h>

#include "datagen/corpus.h"
#include "models/e2e_model.h"
#include "models/mscn_model.h"
#include "models/scaled_cost_model.h"
#include "models/zeroshot_model.h"
#include "train/dataset.h"
#include "train/metrics.h"
#include "train/trainer.h"
#include "workload/benchmarks.h"

namespace zerodb::models {
namespace {

// Shared tiny fixture: one small IMDB-like env and a workload on it.
class ModelsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new datagen::DatabaseEnv(datagen::MakeImdbEnv(31, 0.03));
    workload::WorkloadConfig config = workload::TrainingWorkloadConfig();
    records_ = new std::vector<train::QueryRecord>(
        train::CollectRandomWorkload(*env_, config, 200, 41,
                                     train::CollectOptions()));
    ASSERT_GE(records_->size(), 150u);
  }
  static void TearDownTestSuite() {
    delete records_;
    delete env_;
    records_ = nullptr;
    env_ = nullptr;
  }

  static datagen::DatabaseEnv* env_;
  static std::vector<train::QueryRecord>* records_;
};

datagen::DatabaseEnv* ModelsTest::env_ = nullptr;
std::vector<train::QueryRecord>* ModelsTest::records_ = nullptr;

TEST_F(ModelsTest, ZeroShotTrainsToLowError) {
  ZeroShotCostModel::Options options;
  options.hidden_dim = 32;
  ZeroShotCostModel model(options);
  train::TrainerOptions trainer;
  trainer.max_epochs = 30;
  train::TrainResult result =
      train::TrainModel(&model, train::MakeView(*records_), trainer);
  EXPECT_GT(result.epochs_run, 0u);
  EXPECT_LT(result.best_validation_loss, 0.2);

  auto view = train::MakeView(*records_);
  auto predictions = model.PredictMs(view);
  std::vector<double> truth;
  for (const auto& record : *records_) truth.push_back(record.runtime_ms);
  train::QErrorStats stats = train::ComputeQErrors(predictions, truth);
  EXPECT_LT(stats.median, 1.5) << stats.ToString();
}

TEST_F(ModelsTest, ZeroShotExactCardinalitiesAtLeastAsGoodTraining) {
  ZeroShotCostModel::Options options;
  options.hidden_dim = 32;
  options.cardinality_mode = featurize::CardinalityMode::kExact;
  ZeroShotCostModel model(options);
  train::TrainerOptions trainer;
  trainer.max_epochs = 30;
  train::TrainModel(&model, train::MakeView(*records_), trainer);
  auto view = train::MakeView(*records_);
  auto predictions = model.PredictMs(view);
  std::vector<double> truth;
  for (const auto& record : *records_) truth.push_back(record.runtime_ms);
  train::QErrorStats stats = train::ComputeQErrors(predictions, truth);
  EXPECT_LT(stats.median, 1.5) << stats.ToString();
}

TEST_F(ModelsTest, E2ETrainsOnOneDatabase) {
  E2ECostModel::Options options;
  options.hidden_dim = 32;
  E2ECostModel model(options);
  train::TrainerOptions trainer;
  trainer.max_epochs = 30;
  train::TrainModel(&model, train::MakeView(*records_), trainer);
  auto view = train::MakeView(*records_);
  auto predictions = model.PredictMs(view);
  std::vector<double> truth;
  for (const auto& record : *records_) truth.push_back(record.runtime_ms);
  train::QErrorStats stats = train::ComputeQErrors(predictions, truth);
  EXPECT_LT(stats.median, 2.0) << stats.ToString();
}

TEST_F(ModelsTest, MscnTrainsButCoarser) {
  MscnCostModel::Options options;
  options.hidden_dim = 32;
  MscnCostModel model(options);
  train::TrainerOptions trainer;
  trainer.max_epochs = 30;
  train::TrainModel(&model, train::MakeView(*records_), trainer);
  auto view = train::MakeView(*records_);
  auto predictions = model.PredictMs(view);
  std::vector<double> truth;
  for (const auto& record : *records_) truth.push_back(record.runtime_ms);
  train::QErrorStats stats = train::ComputeQErrors(predictions, truth);
  // MSCN sees no plan structure; it still must beat wild guessing.
  EXPECT_LT(stats.median, 5.0) << stats.ToString();
}

TEST_F(ModelsTest, ScaledOptCostFitsAndPredicts) {
  ScaledOptCostModel model;
  auto view = train::MakeView(*records_);
  model.Fit(view);
  ASSERT_TRUE(model.fitted());
  auto predictions = model.PredictMs(view);
  ASSERT_EQ(predictions.size(), records_->size());
  for (Millis p : predictions) {
    EXPECT_GT(p.value(), 0.0);
    EXPECT_TRUE(std::isfinite(p.value()));
  }
  std::vector<double> truth;
  for (const auto& record : *records_) truth.push_back(record.runtime_ms);
  train::QErrorStats stats = train::ComputeQErrors(predictions, truth);
  EXPECT_LT(stats.median, 5.0) << stats.ToString();
}

TEST_F(ModelsTest, ModelsExposeParameters) {
  ZeroShotCostModel::Options zs_options;
  zs_options.hidden_dim = 16;
  ZeroShotCostModel zero_shot(zs_options);
  // 9 encoders x 3 linear layers x 2 tensors + combine 3x2 + readout 3x2.
  EXPECT_EQ(zero_shot.Parameters().size(), 9u * 6 + 6 + 6);

  E2ECostModel::Options e2e_options;
  e2e_options.hidden_dim = 16;
  E2ECostModel e2e(e2e_options);
  EXPECT_EQ(e2e.Parameters().size(), 6u + 6 + 6);

  MscnCostModel::Options mscn_options;
  mscn_options.hidden_dim = 16;
  MscnCostModel mscn(mscn_options);
  EXPECT_EQ(mscn.Parameters().size(), 4u * 4);  // 4 MLPs x 2 layers x (W,b)
}

TEST_F(ModelsTest, PredictionsAreDeterministic) {
  ZeroShotCostModel::Options options;
  options.hidden_dim = 16;
  ZeroShotCostModel model(options);
  train::TrainerOptions trainer;
  trainer.max_epochs = 3;
  train::TrainModel(&model, train::MakeView(*records_), trainer);
  auto view = train::MakeView(*records_);
  auto first = model.PredictMs(view);
  auto second = model.PredictMs(view);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i].value(), second[i].value());
  }
}

TEST_F(ModelsTest, TrainerEarlyStopsAndRestoresBest) {
  ZeroShotCostModel::Options options;
  options.hidden_dim = 16;
  ZeroShotCostModel model(options);
  train::TrainerOptions trainer;
  trainer.max_epochs = 200;
  trainer.early_stop_patience = 3;
  train::TrainResult result =
      train::TrainModel(&model, train::MakeView(*records_), trainer);
  // With 200 allowed epochs and patience 3, early stopping should engage.
  EXPECT_TRUE(result.early_stopped || result.epochs_run == 200);
  EXPECT_LT(result.epochs_run, 201u);
}

TEST(MetricsTest, QErrorStats) {
  train::QErrorStats stats =
      train::ComputeQErrors({10, 20, 40}, {10, 10, 10});
  EXPECT_DOUBLE_EQ(stats.median, 2.0);
  EXPECT_DOUBLE_EQ(stats.max, 4.0);
  EXPECT_EQ(stats.count, 3u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(MetricsTest, EmptyInput) {
  train::QErrorStats stats =
      train::ComputeQErrors(std::vector<double>{}, std::vector<double>{});
  EXPECT_EQ(stats.count, 0u);
}

}  // namespace
}  // namespace zerodb::models
