#include <gtest/gtest.h>

#include <set>

#include "datagen/corpus.h"
#include "workload/benchmarks.h"
#include "workload/generator.h"

namespace zerodb::workload {
namespace {

datagen::DatabaseEnv MakeEnv() { return datagen::MakeImdbEnv(21, 0.03); }

TEST(QueryGeneratorTest, AllQueriesValid) {
  auto env = MakeEnv();
  QueryGenerator generator(&env, TrainingWorkloadConfig(), 1);
  for (int i = 0; i < 100; ++i) {
    plan::QuerySpec query = generator.Next();
    EXPECT_TRUE(query.Validate(*env.db).ok()) << query.ToSql(*env.db);
    EXPECT_GE(query.aggregates.size(), 1u);
    EXPECT_LE(query.tables.size(), 5u);
  }
}

TEST(QueryGeneratorTest, Deterministic) {
  auto env = MakeEnv();
  QueryGenerator a(&env, TrainingWorkloadConfig(), 5);
  QueryGenerator b(&env, TrainingWorkloadConfig(), 5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.Next().ToSql(*env.db), b.Next().ToSql(*env.db));
  }
}

TEST(QueryGeneratorTest, JoinCountVaries) {
  auto env = MakeEnv();
  QueryGenerator generator(&env, TrainingWorkloadConfig(), 3);
  std::set<size_t> table_counts;
  for (int i = 0; i < 200; ++i) {
    table_counts.insert(generator.Next().tables.size());
  }
  EXPECT_GE(table_counts.size(), 3u);  // at least 3 distinct join sizes
  EXPECT_TRUE(table_counts.count(1) > 0);
}

TEST(QueryGeneratorTest, JoinsFollowForeignKeys) {
  auto env = MakeEnv();
  QueryGenerator generator(&env, TrainingWorkloadConfig(), 9);
  for (int i = 0; i < 50; ++i) {
    plan::QuerySpec query = generator.Next();
    for (const plan::JoinSpec& join : query.joins) {
      // On the IMDB schema every join is satellite.movie_id = title.id.
      EXPECT_EQ(join.left_column, "movie_id");
      EXPECT_EQ(join.right_table, "title");
      EXPECT_EQ(join.right_column, "id");
    }
  }
}

TEST(QueryGeneratorTest, MultiTableQueriesGetPredicates) {
  auto env = MakeEnv();
  WorkloadConfig config = TrainingWorkloadConfig();
  config.min_predicates = 0;
  config.max_predicates = 0;  // only forced predicates can appear
  config.force_predicate_on_joins = true;
  QueryGenerator generator(&env, config, 13);
  for (int i = 0; i < 50; ++i) {
    plan::QuerySpec query = generator.Next();
    if (query.tables.size() > 1) {
      EXPECT_GE(query.filters.size(), 1u) << query.ToSql(*env.db);
    }
  }
}

TEST(QueryGeneratorTest, HubTableForcesStarJoins) {
  auto env = MakeEnv();
  WorkloadConfig config;
  config.min_tables = 2;
  config.max_tables = 4;
  config.hub_table = "title";
  QueryGenerator generator(&env, config, 4);
  for (int i = 0; i < 30; ++i) {
    plan::QuerySpec query = generator.Next();
    EXPECT_EQ(query.tables[0], "title");
  }
}

TEST(QueryGeneratorTest, CountStarOnly) {
  auto env = MakeEnv();
  WorkloadConfig config;
  config.count_star_only = true;
  QueryGenerator generator(&env, config, 8);
  for (int i = 0; i < 30; ++i) {
    plan::QuerySpec query = generator.Next();
    ASSERT_EQ(query.aggregates.size(), 1u);
    EXPECT_EQ(query.aggregates[0].func, plan::AggFunc::kCount);
    EXPECT_TRUE(query.aggregates[0].table.empty());
    EXPECT_TRUE(query.group_by.empty());
  }
}

TEST(BenchmarksTest, Names) {
  EXPECT_STREQ(BenchmarkWorkloadName(BenchmarkWorkload::kScale), "scale");
  EXPECT_STREQ(BenchmarkWorkloadName(BenchmarkWorkload::kSynthetic),
               "synthetic");
  EXPECT_STREQ(BenchmarkWorkloadName(BenchmarkWorkload::kJobLight),
               "job-light");
}

TEST(BenchmarksTest, ScaleSweepsJoinCounts) {
  auto env = MakeEnv();
  auto queries = MakeBenchmark(BenchmarkWorkload::kScale, env, 50, 31);
  ASSERT_EQ(queries.size(), 50u);
  std::set<size_t> table_counts;
  for (const auto& query : queries) table_counts.insert(query.tables.size());
  // Buckets of 1..5 tables, all represented.
  EXPECT_EQ(table_counts.size(), 5u);
}

TEST(BenchmarksTest, JobLightShape) {
  auto env = MakeEnv();
  auto queries = MakeBenchmark(BenchmarkWorkload::kJobLight, env, 40, 33);
  size_t range_leaves = 0;
  size_t total_leaves = 0;
  for (const auto& query : queries) {
    EXPECT_GE(query.tables.size(), 2u);
    EXPECT_EQ(query.tables[0], "title");
    ASSERT_EQ(query.aggregates.size(), 1u);
    EXPECT_EQ(query.aggregates[0].func, plan::AggFunc::kCount);
    for (const auto& filter : query.filters) {
      std::vector<const plan::Predicate*> leaves;
      filter.predicate.CollectLeaves(&leaves);
      for (const plan::Predicate* leaf : leaves) {
        ++total_leaves;
        if (leaf->op() != plan::CompareOp::kEq &&
            leaf->op() != plan::CompareOp::kNe) {
          ++range_leaves;
        }
      }
    }
  }
  ASSERT_GT(total_leaves, 0u);
  // "rarely contain range predicates"
  EXPECT_LT(static_cast<double>(range_leaves) / total_leaves, 0.35);
}

TEST(BenchmarksTest, SyntheticMatchesTrainingShape) {
  auto env = MakeEnv();
  auto queries = MakeBenchmark(BenchmarkWorkload::kSynthetic, env, 30, 35);
  EXPECT_EQ(queries.size(), 30u);
  for (const auto& query : queries) {
    EXPECT_TRUE(query.Validate(*env.db).ok());
  }
}

TEST(BenchmarksTest, WorksOnGeneratedTrainingDatabases) {
  auto corpus = datagen::MakeTrainingCorpus(77, 2, 0.02);
  for (const auto& env : corpus) {
    QueryGenerator generator(&env, TrainingWorkloadConfig(), 55);
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(generator.Next().Validate(*env.db).ok());
    }
  }
}

}  // namespace
}  // namespace zerodb::workload
