#include "plan/validate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "datagen/corpus.h"
#include "exec/executor.h"
#include "nn/layers.h"
#include "nn/validate.h"
#include "optimizer/optimizer.h"
#include "plan/physical.h"
#include "storage/database.h"
#include "workload/benchmarks.h"
#include "workload/generator.h"

namespace zerodb {
namespace {

using catalog::ColumnSchema;
using catalog::DataType;
using catalog::TableSchema;
using plan::AggFunc;
using plan::AggregateExpr;
using plan::CompareOp;
using plan::PhysicalPlan;
using plan::Predicate;
using plan::ValidatePlan;
using plan::ValidatePredicate;

// Database:
//   users(id, age, city):      3 rows, city is dictionary-encoded
//   orders(id, user_id, amt):  4 rows
storage::Database MakeDb() {
  storage::Database db("validate_test");
  storage::Table users(
      TableSchema("users", {ColumnSchema{"id", DataType::kInt64, 8},
                            ColumnSchema{"age", DataType::kInt64, 8},
                            ColumnSchema{"city", DataType::kString, 10}}));
  const char* cities[] = {"tokyo", "lima", "oslo"};
  for (int i = 0; i < 3; ++i) {
    users.column(0).AppendInt64(i);
    users.column(1).AppendInt64(25 + 10 * i);
    users.column(2).AppendString(cities[i]);
  }
  storage::Table orders(
      TableSchema("orders", {ColumnSchema{"id", DataType::kInt64, 8},
                             ColumnSchema{"user_id", DataType::kInt64, 8},
                             ColumnSchema{"amt", DataType::kDouble, 8}}));
  for (int i = 0; i < 4; ++i) {
    orders.column(0).AppendInt64(i);
    orders.column(1).AppendInt64(i % 3);
    orders.column(2).AppendDouble(10.0 * i);
  }
  EXPECT_TRUE(db.AddTable(std::move(users)).ok());
  EXPECT_TRUE(db.AddTable(std::move(orders)).ok());
  return db;
}

// ---------------------------------------------------------------------------
// ValidatePlan as a Status-returning function.

TEST(PlanValidatorTest, AcceptsWellFormedPlans) {
  storage::Database db = MakeDb();
  PhysicalPlan scan(plan::MakeSeqScan(
      "users", Predicate::Compare(1, CompareOp::kGe, 30.0)));
  EXPECT_TRUE(ValidatePlan(scan, db).ok());

  PhysicalPlan join(plan::MakeHashJoin(
      plan::MakeSeqScan("users", std::nullopt),
      plan::MakeSeqScan("orders", std::nullopt), /*left_key_slot=*/0,
      /*right_key_slot=*/1));
  EXPECT_TRUE(ValidatePlan(join, db).ok());

  PhysicalPlan agg(plan::MakeSimpleAggregate(
      plan::MakeSeqScan("orders", std::nullopt),
      {AggregateExpr{AggFunc::kSum, 2}}));
  EXPECT_TRUE(ValidatePlan(agg, db).ok());
}

TEST(PlanValidatorTest, RejectsUnknownTable) {
  storage::Database db = MakeDb();
  PhysicalPlan plan(plan::MakeSeqScan("nonexistent", std::nullopt));
  Status status = ValidatePlan(plan, db);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unknown table"), std::string::npos);
}

TEST(PlanValidatorTest, RejectsMissingRoot) {
  storage::Database db = MakeDb();
  PhysicalPlan plan;
  EXPECT_FALSE(ValidatePlan(plan, db).ok());
}

TEST(PlanValidatorTest, RejectsWrongChildCount) {
  storage::Database db = MakeDb();
  // A Filter node with no child.
  auto filter = std::make_unique<plan::PhysicalNode>();
  filter->type = plan::PhysicalOpType::kFilter;
  filter->predicate = Predicate::Compare(0, CompareOp::kEq, 1.0);
  Status status = ValidatePlan(*filter, db);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("child"), std::string::npos);
}

TEST(PlanValidatorTest, RejectsPredicateSlotOutOfRange) {
  storage::Database db = MakeDb();
  // users has 3 columns; slot 7 does not exist.
  PhysicalPlan plan(plan::MakeSeqScan(
      "users", Predicate::Compare(7, CompareOp::kEq, 1.0)));
  Status status = ValidatePlan(plan, db);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("out of range"), std::string::npos);
}

TEST(PlanValidatorTest, RejectsRangePredicateOnStringColumn) {
  storage::Database db = MakeDb();
  // city (slot 2) is dictionary-encoded: `city < 1.5` is type confusion.
  PhysicalPlan plan(plan::MakeSeqScan(
      "users", Predicate::Compare(2, CompareOp::kLt, 1.5)));
  Status status = ValidatePlan(plan, db);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("string"), std::string::npos);
  // Equality on the dictionary code is fine.
  PhysicalPlan eq(plan::MakeSeqScan(
      "users", Predicate::Compare(2, CompareOp::kEq, 1.0)));
  EXPECT_TRUE(ValidatePlan(eq, db).ok());
}

TEST(PlanValidatorTest, RejectsNaNLiteral) {
  storage::Database db = MakeDb();
  PhysicalPlan plan(plan::MakeSeqScan(
      "users", Predicate::Compare(
                   1, CompareOp::kEq,
                   std::numeric_limits<double>::quiet_NaN())));
  EXPECT_FALSE(ValidatePlan(plan, db).ok());
}

TEST(PlanValidatorTest, RejectsJoinKeySlotOutOfRange) {
  storage::Database db = MakeDb();
  PhysicalPlan plan(plan::MakeHashJoin(
      plan::MakeSeqScan("users", std::nullopt),
      plan::MakeSeqScan("orders", std::nullopt), /*left_key_slot=*/9,
      /*right_key_slot=*/1));
  Status status = ValidatePlan(plan, db);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("left key"), std::string::npos);
}

TEST(PlanValidatorTest, RejectsStringAgainstNumericJoin) {
  storage::Database db = MakeDb();
  // users.city (string, slot 2) joined against orders.user_id (int, slot 1).
  PhysicalPlan plan(plan::MakeHashJoin(
      plan::MakeSeqScan("users", std::nullopt),
      plan::MakeSeqScan("orders", std::nullopt), /*left_key_slot=*/2,
      /*right_key_slot=*/1));
  Status status = ValidatePlan(plan, db);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("string"), std::string::npos);
}

TEST(PlanValidatorTest, RejectsMalformedAggregates) {
  storage::Database db = MakeDb();
  // SUM with no input slot.
  PhysicalPlan no_slot(plan::MakeSimpleAggregate(
      plan::MakeSeqScan("orders", std::nullopt),
      {AggregateExpr{AggFunc::kSum, std::nullopt}}));
  EXPECT_FALSE(ValidatePlan(no_slot, db).ok());
  // SUM over the dictionary codes of a string column.
  PhysicalPlan string_sum(plan::MakeSimpleAggregate(
      plan::MakeSeqScan("users", std::nullopt),
      {AggregateExpr{AggFunc::kSum, 2}}));
  EXPECT_FALSE(ValidatePlan(string_sum, db).ok());
  // HashAggregate without group-by slots.
  auto agg = plan::MakeHashAggregate(plan::MakeSeqScan("orders", std::nullopt),
                                     {}, {AggregateExpr{AggFunc::kCount, std::nullopt}});
  EXPECT_FALSE(ValidatePlan(*agg, db).ok());
}

TEST(PlanValidatorTest, RejectsSortWithoutKeys) {
  storage::Database db = MakeDb();
  auto sort = plan::MakeSort(plan::MakeSeqScan("orders", std::nullopt), {});
  EXPECT_FALSE(ValidatePlan(*sort, db).ok());
}

TEST(PlanValidatorTest, RejectsBrokenAnnotations) {
  storage::Database db = MakeDb();
  PhysicalPlan plan(plan::MakeSeqScan("users", std::nullopt));
  plan.root->est_cardinality = -3.0;
  EXPECT_FALSE(ValidatePlan(plan, db).ok());
  plan.root->est_cardinality = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ValidatePlan(plan, db).ok());
  plan.root->est_cardinality = 1.0;
  plan.root->true_cardinality = -2.0;  // only -1 means "unknown"
  EXPECT_FALSE(ValidatePlan(plan, db).ok());
}

TEST(PlanValidatorTest, RejectsInconsistentTrueCardinalities) {
  storage::Database db = MakeDb();
  // A Filter claiming to output more rows than its input produced.
  auto child = plan::MakeSeqScan("users", std::nullopt);
  child->true_cardinality = 3.0;
  auto filter = plan::MakeFilter(std::move(child),
                                 Predicate::Compare(1, CompareOp::kGe, 0.0));
  filter->true_cardinality = 10.0;
  EXPECT_FALSE(ValidatePlan(*filter, db).ok());
  // SimpleAggregate must emit exactly one row.
  auto agg = plan::MakeSimpleAggregate(plan::MakeSeqScan("users", std::nullopt),
                                       {AggregateExpr{AggFunc::kCount, std::nullopt}});
  agg->true_cardinality = 2.0;
  EXPECT_FALSE(ValidatePlan(*agg, db).ok());
}

TEST(PredicateValidatorTest, ChecksTreeAgainstSlotTypes) {
  std::vector<DataType> types = {DataType::kInt64, DataType::kString};
  EXPECT_TRUE(ValidatePredicate(
                  Predicate::And({Predicate::Compare(0, CompareOp::kLt, 5.0),
                                  Predicate::Compare(1, CompareOp::kNe, 2.0)}),
                  types)
                  .ok());
  EXPECT_FALSE(
      ValidatePredicate(Predicate::Compare(1, CompareOp::kGt, 0.0), types)
          .ok());
  // (An empty AND/OR cannot be built: Predicate::And/Or CHECK non-empty at
  // construction; the validator's empty-children check is defense in depth.)
}

// ---------------------------------------------------------------------------
// Death tests: the ZDB_DCHECK_OK gates in the optimizer, executor, layers
// and trainer must actually fire in debug builds. (The default build keeps
// assertions on — NDEBUG is never defined — so these run under tier-1.)

#ifndef NDEBUG

using PlanValidatorDeathTest = ::testing::Test;

TEST(PlanValidatorDeathTest, ExecutorRefusesMalformedSchema) {
  storage::Database db = MakeDb();
  exec::Executor executor(&db);
  // Join key slot out of range: caught at the open path, before any
  // operator dereferences the bogus slot.
  PhysicalPlan plan(plan::MakeHashJoin(
      plan::MakeSeqScan("users", std::nullopt),
      plan::MakeSeqScan("orders", std::nullopt), /*left_key_slot=*/9,
      /*right_key_slot=*/1));
  EXPECT_DEATH(executor.Execute(&plan).ok(), "out of range");
}

TEST(PlanValidatorDeathTest, ExecutorRefusesTypeConfusedPredicate) {
  storage::Database db = MakeDb();
  exec::Executor executor(&db);
  PhysicalPlan plan(plan::MakeSeqScan(
      "users", Predicate::Compare(2, CompareOp::kLe, 1.0)));
  EXPECT_DEATH(executor.Execute(&plan).ok(), "string");
}

TEST(NnValidatorDeathTest, LinearRejectsMismatchedShape) {
  Rng rng(7);
  nn::Linear layer(4, 2, &rng);
  nn::Tensor wrong = nn::Tensor::Zeros(1, 3);  // expects 4 columns
  EXPECT_DEATH(layer.Forward(wrong), "feature columns");
}

TEST(NnValidatorDeathTest, MlpRejectsNaNInput) {
  Rng rng(7);
  nn::MlpConfig config;
  config.in_features = 2;
  config.hidden_sizes = {4};
  config.out_features = 1;
  nn::Mlp mlp(config, &rng);
  nn::Tensor nan_input = nn::Tensor::FromData(
      1, 2, {1.0f, std::numeric_limits<float>::quiet_NaN()});
  EXPECT_DEATH(mlp.Forward(nan_input), "non-finite");
}

TEST(NnValidatorDeathTest, NaNGradientAborts) {
  nn::Tensor param = nn::Tensor::Parameter(1, 2, {1.0f, 2.0f});
  param.mutable_grad() = {0.5f, std::numeric_limits<float>::quiet_NaN()};
  std::vector<nn::Tensor> params = {param};
  EXPECT_DEATH(
      ZDB_CHECK_OK(nn::ValidateFiniteGradients(params, "trainer backward")),
      "non-finite gradient");
}

#endif  // NDEBUG

// ---------------------------------------------------------------------------
// Pass-through: every plan the optimizer emits for the seed benchmark
// workloads validates cleanly, before and after execution.

TEST(PlanValidatorPassThroughTest, SeedWorkloadPlansValidate) {
  datagen::DatabaseEnv env = datagen::MakeImdbEnv(17, 0.05);
  optimizer::Planner planner(env.db.get(), &env.stats);
  exec::Executor executor(env.db.get());
  size_t validated = 0;
  for (workload::BenchmarkWorkload benchmark :
       {workload::BenchmarkWorkload::kScale,
        workload::BenchmarkWorkload::kSynthetic,
        workload::BenchmarkWorkload::kJobLight}) {
    for (const plan::QuerySpec& query :
         workload::MakeBenchmark(benchmark, env, /*count=*/20, /*seed=*/23)) {
      auto plan = planner.Plan(query);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      Status valid = ValidatePlan(*plan, *env.db);
      EXPECT_TRUE(valid.ok())
          << valid.ToString() << "\n"
          << plan->root->ToString(*env.db);
      // Execution fills true cardinalities; the plan must still validate.
      auto result = executor.Execute(&*plan);
      if (result.ok()) {
        Status post = ValidatePlan(*plan, *env.db);
        EXPECT_TRUE(post.ok())
            << post.ToString() << "\n"
            << plan->root->ToString(*env.db);
      }
      ++validated;
    }
  }
  EXPECT_EQ(validated, 60u);
}

}  // namespace
}  // namespace zerodb
