#include <gtest/gtest.h>
#include <cstdio>

#include "catalog/schema.h"
#include "catalog/types.h"
#include "storage/column.h"
#include "storage/csv.h"
#include "storage/database.h"
#include "storage/index.h"
#include "storage/table.h"
#include "storage/value.h"

namespace zerodb::storage {
namespace {

using catalog::ColumnSchema;
using catalog::DataType;
using catalog::ForeignKey;
using catalog::TableSchema;

TableSchema PeopleSchema() {
  return TableSchema("people", {ColumnSchema{"id", DataType::kInt64, 8},
                                ColumnSchema{"age", DataType::kInt64, 8},
                                ColumnSchema{"height", DataType::kDouble, 8},
                                ColumnSchema{"city", DataType::kString, 10}});
}

Table MakePeople() {
  Table table(PeopleSchema());
  const int64_t ages[] = {30, 40, 25, 30, 55};
  const double heights[] = {1.7, 1.8, 1.6, 1.75, 1.9};
  const char* cities[] = {"berlin", "paris", "berlin", "rome", "paris"};
  for (int i = 0; i < 5; ++i) {
    table.column(0).AppendInt64(i);
    table.column(1).AppendInt64(ages[i]);
    table.column(2).AppendDouble(heights[i]);
    table.column(3).AppendString(cities[i]);
  }
  return table;
}

TEST(TypesTest, NamesAndWidths) {
  EXPECT_STREQ(catalog::DataTypeName(DataType::kInt64), "int64");
  EXPECT_STREQ(catalog::DataTypeName(DataType::kString), "string");
  EXPECT_EQ(catalog::FixedWidthBytes(DataType::kInt64), 8);
  EXPECT_EQ(catalog::FixedWidthBytes(DataType::kDouble), 8);
  EXPECT_EQ(catalog::FixedWidthBytes(DataType::kString), 4);
}

TEST(ValueTest, Variants) {
  Value i(int64_t{42});
  Value d(2.5);
  Value s(std::string("abc"));
  EXPECT_TRUE(i.is_int64());
  EXPECT_EQ(i.AsInt64(), 42);
  EXPECT_DOUBLE_EQ(i.AsNumeric(), 42.0);
  EXPECT_DOUBLE_EQ(d.AsNumeric(), 2.5);
  EXPECT_EQ(s.AsString(), "abc");
  EXPECT_EQ(i.ToString(), "42");
  EXPECT_EQ(s.ToString(), "'abc'");
  EXPECT_TRUE(Value(int64_t{1}) == Value(int64_t{1}));
  EXPECT_FALSE(Value(int64_t{1}) == Value(1.0));
}

TEST(ColumnTest, IntAndDouble) {
  Column ints(DataType::kInt64);
  ints.AppendInt64(7);
  ints.AppendInt64(-3);
  EXPECT_EQ(ints.size(), 2u);
  EXPECT_EQ(ints.GetValue(0).AsInt64(), 7);
  EXPECT_DOUBLE_EQ(ints.GetNumeric(1), -3.0);

  Column doubles(DataType::kDouble);
  doubles.AppendDouble(1.5);
  EXPECT_DOUBLE_EQ(doubles.GetNumeric(0), 1.5);
  EXPECT_EQ(doubles.AvgWidthBytes(), 8);
}

TEST(ColumnTest, StringDictionary) {
  Column strings(DataType::kString);
  strings.AppendString("aa");
  strings.AppendString("bb");
  strings.AppendString("aa");
  EXPECT_EQ(strings.size(), 3u);
  EXPECT_EQ(strings.dictionary_size(), 2u);
  EXPECT_EQ(strings.GetValue(2).AsString(), "aa");
  EXPECT_EQ(strings.ints()[0], strings.ints()[2]);
  auto code = strings.LookupCode("bb");
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(*code, 1);
  EXPECT_FALSE(strings.LookupCode("zz").ok());
}

TEST(ColumnTest, BulkDictionaryLoad) {
  Column strings(DataType::kString);
  strings.SetDictionary({"x", "y", "z"});
  strings.AppendStringCode(2);
  strings.AppendStringCode(0);
  EXPECT_EQ(strings.GetValue(0).AsString(), "z");
  EXPECT_EQ(strings.GetValue(1).AsString(), "x");
}

TEST(SchemaTest, FindColumnAndWidth) {
  TableSchema schema = PeopleSchema();
  EXPECT_EQ(schema.num_columns(), 4u);
  EXPECT_EQ(*schema.FindColumn("age"), 1u);
  EXPECT_FALSE(schema.FindColumn("nope").has_value());
  EXPECT_EQ(schema.RowWidthBytes(), 8 + 8 + 8 + 10);
}

TEST(TableTest, RowsPagesAndValidate) {
  Table table = MakePeople();
  EXPECT_EQ(table.num_rows(), 5u);
  EXPECT_EQ(table.NumPages(), 1);  // tiny table still occupies one page
  EXPECT_TRUE(table.Validate().ok());
  auto index = table.ColumnIndex("height");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(*index, 2u);
  EXPECT_FALSE(table.ColumnIndex("missing").ok());
}

TEST(TableTest, PagesGrowWithRows) {
  Table table(TableSchema("wide", {ColumnSchema{"a", DataType::kInt64, 8},
                                   ColumnSchema{"b", DataType::kInt64, 8}}));
  for (int i = 0; i < 10000; ++i) {
    table.column(0).AppendInt64(i);
    table.column(1).AppendInt64(i);
  }
  // 10000 rows * 16 bytes = 160000 bytes / 8192 => 20 pages.
  EXPECT_EQ(table.NumPages(), 20);
}

TEST(CatalogTest, ForeignKeys) {
  catalog::Catalog cat;
  ASSERT_TRUE(cat.AddTable(PeopleSchema()).ok());
  ASSERT_TRUE(cat.AddTable(TableSchema(
                               "orders",
                               {ColumnSchema{"id", DataType::kInt64, 8},
                                ColumnSchema{"people_id", DataType::kInt64, 8}}))
                  .ok());
  EXPECT_FALSE(cat.AddTable(PeopleSchema()).ok());  // duplicate

  ASSERT_TRUE(
      cat.AddForeignKey(ForeignKey{"orders", "people_id", "people", "id"})
          .ok());
  EXPECT_FALSE(
      cat.AddForeignKey(ForeignKey{"orders", "nope", "people", "id"}).ok());
  EXPECT_FALSE(
      cat.AddForeignKey(ForeignKey{"missing", "x", "people", "id"}).ok());

  EXPECT_EQ(cat.JoinEdgesFor("people").size(), 1u);
  EXPECT_EQ(cat.JoinEdgesFor("orders").size(), 1u);
}

TEST(DatabaseTest, AddFindTables) {
  Database db("test");
  ASSERT_TRUE(db.AddTable(MakePeople()).ok());
  EXPECT_NE(db.FindTable("people"), nullptr);
  EXPECT_EQ(db.FindTable("ghost"), nullptr);
  EXPECT_FALSE(db.GetTable("ghost").ok());
  EXPECT_EQ(db.TotalRows(), 5);
  EXPECT_FALSE(db.AddTable(MakePeople()).ok());  // duplicate schema
}

TEST(DatabaseTest, CreateAndFindIndex) {
  Database db("test");
  ASSERT_TRUE(db.AddTable(MakePeople()).ok());
  ASSERT_TRUE(db.CreateIndex("people", "age").ok());
  EXPECT_FALSE(db.CreateIndex("people", "age").ok());   // duplicate
  EXPECT_FALSE(db.CreateIndex("ghost", "age").ok());    // missing table
  EXPECT_FALSE(db.CreateIndex("people", "ghost").ok()); // missing column
  EXPECT_NE(db.FindIndex("people", 1), nullptr);
  EXPECT_EQ(db.FindIndex("people", 0), nullptr);
  db.DropAllIndexes();
  EXPECT_EQ(db.FindIndex("people", 1), nullptr);
}

TEST(IndexTest, RangeLookup) {
  Table table = MakePeople();
  OrderedIndex index = OrderedIndex::Build("people", table, 1);  // age
  EXPECT_EQ(index.num_entries(), 5u);
  EXPECT_GE(index.EstimatedHeight(), 1);

  std::vector<uint32_t> rows;
  EXPECT_EQ(index.LookupRange(30, 40, &rows), 3u);  // ages 30, 30, 40
  rows.clear();
  EXPECT_EQ(index.LookupEqual(30, &rows), 2u);
  rows.clear();
  EXPECT_EQ(index.LookupRange(100, 200, &rows), 0u);
  EXPECT_EQ(index.LookupRange(50, 20, &rows), 0u);  // inverted range
}

TEST(IndexTest, LookupReturnsCorrectRows) {
  Table table = MakePeople();
  OrderedIndex index = OrderedIndex::Build("people", table, 1);
  std::vector<uint32_t> rows;
  index.LookupEqual(25, &rows);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 2u);
}

TEST(CsvTest, RoundTrip) {
  Table table = MakePeople();
  std::string path = testing::TempDir() + "/zdb_people.csv";
  ASSERT_TRUE(SaveCsv(table, path).ok());
  auto loaded = LoadCsv(path, PeopleSchema());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      EXPECT_TRUE(loaded->column(c).GetValue(r) ==
                  table.column(c).GetValue(r))
          << "row " << r << " col " << c;
    }
  }
  std::remove(path.c_str());
}

TEST(CsvTest, ParsesTypesFromString) {
  auto loaded = LoadCsvFromString(
      "id,age,height,city\n"
      "0,30,1.75,berlin\n"
      "1,41,1.6,paris\n",
      PeopleSchema());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_rows(), 2u);
  EXPECT_EQ(loaded->column(1).GetValue(1).AsInt64(), 41);
  EXPECT_DOUBLE_EQ(loaded->column(2).GetValue(0).AsDouble(), 1.75);
  EXPECT_EQ(loaded->column(3).GetValue(1).AsString(), "paris");
  EXPECT_EQ(loaded->column(3).dictionary_size(), 2u);
}

TEST(CsvTest, SkipsBlankLines) {
  auto loaded = LoadCsvFromString(
      "id,age,height,city\n\n0,30,1.75,berlin\n\n", PeopleSchema());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), 1u);
}

TEST(CsvTest, RejectsBadInput) {
  EXPECT_FALSE(LoadCsvFromString("", PeopleSchema()).ok());
  // Wrong header name.
  EXPECT_FALSE(
      LoadCsvFromString("id,age,height,town\n", PeopleSchema()).ok());
  // Wrong column count in header.
  EXPECT_FALSE(LoadCsvFromString("id,age\n", PeopleSchema()).ok());
  // Ragged data row.
  EXPECT_FALSE(
      LoadCsvFromString("id,age,height,city\n1,2\n", PeopleSchema()).ok());
  // Type mismatch.
  EXPECT_FALSE(LoadCsvFromString("id,age,height,city\nx,30,1.7,berlin\n",
                                 PeopleSchema())
                   .ok());
  EXPECT_FALSE(LoadCsvFromString("id,age,height,city\n0,30,tall,berlin\n",
                                 PeopleSchema())
                   .ok());
  // Missing file.
  EXPECT_EQ(LoadCsv("/nonexistent/file.csv", PeopleSchema()).status().code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace zerodb::storage
