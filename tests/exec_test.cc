#include <gtest/gtest.h>

#include "exec/executor.h"
#include "plan/physical.h"
#include "storage/database.h"

namespace zerodb::exec {
namespace {

using catalog::ColumnSchema;
using catalog::DataType;
using catalog::TableSchema;
using plan::AggFunc;
using plan::AggregateExpr;
using plan::CompareOp;
using plan::PhysicalPlan;
using plan::Predicate;

// Database:
//   users(id, age):            5 rows, ages {30, 40, 25, 30, 55}
//   orders(id, user_id, amt):  8 rows, user_id = i % 5
storage::Database MakeDb() {
  storage::Database db("exec_test");
  storage::Table users(
      TableSchema("users", {ColumnSchema{"id", DataType::kInt64, 8},
                            ColumnSchema{"age", DataType::kInt64, 8}}));
  const int64_t ages[] = {30, 40, 25, 30, 55};
  for (int i = 0; i < 5; ++i) {
    users.column(0).AppendInt64(i);
    users.column(1).AppendInt64(ages[i]);
  }
  storage::Table orders(
      TableSchema("orders", {ColumnSchema{"id", DataType::kInt64, 8},
                             ColumnSchema{"user_id", DataType::kInt64, 8},
                             ColumnSchema{"amt", DataType::kDouble, 8}}));
  for (int i = 0; i < 8; ++i) {
    orders.column(0).AppendInt64(i);
    orders.column(1).AppendInt64(i % 5);
    orders.column(2).AppendDouble(10.0 * i);
  }
  EXPECT_TRUE(db.AddTable(std::move(users)).ok());
  EXPECT_TRUE(db.AddTable(std::move(orders)).ok());
  return db;
}

TEST(ExecutorTest, SeqScanAllRows) {
  storage::Database db = MakeDb();
  Executor executor(&db);
  PhysicalPlan plan(plan::MakeSeqScan("users", std::nullopt));
  auto result = executor.Execute(&plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output.num_rows(), 5u);
  EXPECT_EQ(result->output.num_columns(), 2u);
  const OperatorStats& stats = result->StatsFor(*plan.root);
  EXPECT_EQ(stats.rows_scanned, 5);
  EXPECT_EQ(stats.output_rows, 5);
  EXPECT_EQ(plan.root->true_cardinality, 5.0);
}

TEST(ExecutorTest, SeqScanWithPredicate) {
  storage::Database db = MakeDb();
  Executor executor(&db);
  PhysicalPlan plan(
      plan::MakeSeqScan("users", Predicate::Compare(1, CompareOp::kEq, 30)));
  auto result = executor.Execute(&plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output.num_rows(), 2u);
  EXPECT_EQ(result->StatsFor(*plan.root).predicate_evals, 5);
}

TEST(ExecutorTest, SeqScanComplexPredicate) {
  storage::Database db = MakeDb();
  Executor executor(&db);
  // age >= 30 AND age < 50  -> ages 30, 40, 30
  PhysicalPlan plan(plan::MakeSeqScan(
      "users", Predicate::And({Predicate::Compare(1, CompareOp::kGe, 30),
                               Predicate::Compare(1, CompareOp::kLt, 50)})));
  auto result = executor.Execute(&plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output.num_rows(), 3u);
}

TEST(ExecutorTest, IndexScanRange) {
  storage::Database db = MakeDb();
  ASSERT_TRUE(db.CreateIndex("users", "age").ok());
  Executor executor(&db);
  PhysicalPlan plan(
      plan::MakeIndexScan("users", 1, 30.0, 45.0, std::nullopt));
  auto result = executor.Execute(&plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output.num_rows(), 3u);  // 30, 30, 40
  const OperatorStats& stats = result->StatsFor(*plan.root);
  EXPECT_EQ(stats.index_entries, 3);
  EXPECT_GT(stats.pages_read, 0);
}

TEST(ExecutorTest, IndexScanWithResidual) {
  storage::Database db = MakeDb();
  ASSERT_TRUE(db.CreateIndex("users", "age").ok());
  Executor executor(&db);
  // range picks ages >= 30; residual also requires id <= 1.
  PhysicalPlan plan(plan::MakeIndexScan(
      "users", 1, 30.0, std::nullopt,
      Predicate::Compare(0, CompareOp::kLe, 1)));
  auto result = executor.Execute(&plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output.num_rows(), 2u);  // rows 0 (30) and 1 (40)
}

TEST(ExecutorTest, IndexScanMissingIndexFails) {
  storage::Database db = MakeDb();
  Executor executor(&db);
  PhysicalPlan plan(
      plan::MakeIndexScan("users", 1, 30.0, 45.0, std::nullopt));
  EXPECT_FALSE(executor.Execute(&plan).ok());
}

TEST(ExecutorTest, FilterOverChild) {
  storage::Database db = MakeDb();
  Executor executor(&db);
  auto scan = plan::MakeSeqScan("orders", std::nullopt);
  PhysicalPlan plan(plan::MakeFilter(
      std::move(scan), Predicate::Compare(2, CompareOp::kGe, 40.0)));
  auto result = executor.Execute(&plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output.num_rows(), 4u);  // amt 40, 50, 60, 70
}

TEST(ExecutorTest, HashJoinMatchesNestedLoop) {
  storage::Database db = MakeDb();
  Executor executor(&db);
  PhysicalPlan hash_plan(plan::MakeHashJoin(
      plan::MakeSeqScan("users", std::nullopt),
      plan::MakeSeqScan("orders", std::nullopt), 0, 1));
  PhysicalPlan nl_plan(plan::MakeNestedLoopJoin(
      plan::MakeSeqScan("users", std::nullopt),
      plan::MakeSeqScan("orders", std::nullopt), 0, 1));
  auto hash_result = executor.Execute(&hash_plan);
  auto nl_result = executor.Execute(&nl_plan);
  ASSERT_TRUE(hash_result.ok());
  ASSERT_TRUE(nl_result.ok());
  // Every order matches exactly one user: 8 output rows.
  EXPECT_EQ(hash_result->output.num_rows(), 8u);
  EXPECT_EQ(nl_result->output.num_rows(), 8u);
  EXPECT_EQ(hash_result->output.num_columns(), 5u);
  const OperatorStats& stats = hash_result->StatsFor(*hash_plan.root);
  EXPECT_EQ(stats.hash_build_rows, 5);
  EXPECT_EQ(stats.hash_probe_rows, 8);
}

TEST(ExecutorTest, HashJoinSelectiveBuild) {
  storage::Database db = MakeDb();
  Executor executor(&db);
  // Only users with age == 30 (ids 0 and 3) join with orders.
  PhysicalPlan plan(plan::MakeHashJoin(
      plan::MakeSeqScan("users", Predicate::Compare(1, CompareOp::kEq, 30)),
      plan::MakeSeqScan("orders", std::nullopt), 0, 1));
  auto result = executor.Execute(&plan);
  ASSERT_TRUE(result.ok());
  // user 0 -> orders 0, 5; user 3 -> orders 3. Total 3.
  EXPECT_EQ(result->output.num_rows(), 3u);
}

TEST(ExecutorTest, IndexNLJoin) {
  storage::Database db = MakeDb();
  ASSERT_TRUE(db.CreateIndex("orders", "user_id").ok());
  Executor executor(&db);
  PhysicalPlan plan(plan::MakeIndexNLJoin(
      plan::MakeSeqScan("users", Predicate::Compare(1, CompareOp::kEq, 30)),
      "orders", 0, 1, std::nullopt));
  auto result = executor.Execute(&plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output.num_rows(), 3u);
  const OperatorStats& stats = result->StatsFor(*plan.root);
  EXPECT_EQ(stats.index_probes, 2);   // two outer rows
  EXPECT_EQ(stats.index_entries, 3);  // three matches
}

TEST(ExecutorTest, IndexNLJoinWithResidual) {
  storage::Database db = MakeDb();
  ASSERT_TRUE(db.CreateIndex("orders", "user_id").ok());
  Executor executor(&db);
  PhysicalPlan plan(plan::MakeIndexNLJoin(
      plan::MakeSeqScan("users", Predicate::Compare(1, CompareOp::kEq, 30)),
      "orders", 0, 1, Predicate::Compare(2, CompareOp::kGe, 30.0)));
  auto result = executor.Execute(&plan);
  ASSERT_TRUE(result.ok());
  // Matches were orders 0 (amt 0), 5 (amt 50), 3 (amt 30); residual keeps 2.
  EXPECT_EQ(result->output.num_rows(), 2u);
}

TEST(ExecutorTest, SortOrdersRows) {
  storage::Database db = MakeDb();
  Executor executor(&db);
  auto scan = plan::MakeSeqScan("users", std::nullopt);
  PhysicalPlan plan(plan::MakeSort(std::move(scan), {1}));
  auto result = executor.Execute(&plan);
  ASSERT_TRUE(result.ok());
  const auto& ages = result->output.columns[1];
  for (size_t i = 1; i < ages.size(); ++i) EXPECT_LE(ages[i - 1], ages[i]);
  EXPECT_EQ(result->StatsFor(*plan.root).sort_rows, 5);
}

TEST(ExecutorTest, SimpleAggregateAllFunctions) {
  storage::Database db = MakeDb();
  Executor executor(&db);
  auto scan = plan::MakeSeqScan("users", std::nullopt);
  PhysicalPlan plan(plan::MakeSimpleAggregate(
      std::move(scan),
      {AggregateExpr{AggFunc::kCount, std::nullopt},
       AggregateExpr{AggFunc::kSum, 1}, AggregateExpr{AggFunc::kAvg, 1},
       AggregateExpr{AggFunc::kMin, 1}, AggregateExpr{AggFunc::kMax, 1}}));
  auto result = executor.Execute(&plan);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->output.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(result->output.columns[0][0], 5.0);    // count
  EXPECT_DOUBLE_EQ(result->output.columns[1][0], 180.0);  // sum
  EXPECT_DOUBLE_EQ(result->output.columns[2][0], 36.0);   // avg
  EXPECT_DOUBLE_EQ(result->output.columns[3][0], 25.0);   // min
  EXPECT_DOUBLE_EQ(result->output.columns[4][0], 55.0);   // max
}

TEST(ExecutorTest, SimpleAggregateEmptyInput) {
  storage::Database db = MakeDb();
  Executor executor(&db);
  auto scan = plan::MakeSeqScan(
      "users", Predicate::Compare(1, CompareOp::kGt, 1000));
  PhysicalPlan plan(plan::MakeSimpleAggregate(
      std::move(scan), {AggregateExpr{AggFunc::kCount, std::nullopt},
                        AggregateExpr{AggFunc::kMin, 1}}));
  auto result = executor.Execute(&plan);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->output.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(result->output.columns[0][0], 0.0);
  EXPECT_DOUBLE_EQ(result->output.columns[1][0], 0.0);  // min of empty -> 0
}

TEST(ExecutorTest, HashAggregateGroups) {
  storage::Database db = MakeDb();
  Executor executor(&db);
  auto scan = plan::MakeSeqScan("users", std::nullopt);
  PhysicalPlan plan(plan::MakeHashAggregate(
      std::move(scan), {1},  // group by age
      {AggregateExpr{AggFunc::kCount, std::nullopt}}));
  auto result = executor.Execute(&plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output.num_rows(), 4u);  // ages 25, 30, 40, 55
  EXPECT_EQ(result->StatsFor(*plan.root).group_count, 4);
  // The group with age 30 must have count 2.
  bool found = false;
  for (size_t i = 0; i < result->output.num_rows(); ++i) {
    if (result->output.columns[0][i] == 30.0) {
      EXPECT_DOUBLE_EQ(result->output.columns[1][i], 2.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ExecutorTest, RowCapRejectsHugeOutputs) {
  storage::Database db = MakeDb();
  ExecutorOptions options;
  options.max_intermediate_rows = 4;
  Executor executor(&db, options);
  PhysicalPlan plan(plan::MakeSeqScan("orders", std::nullopt));
  auto result = executor.Execute(&plan);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(ExecutorTest, JoinOverAggregatePipeline) {
  // users -> filter -> join orders -> aggregate: a full pipeline.
  storage::Database db = MakeDb();
  Executor executor(&db);
  auto join = plan::MakeHashJoin(
      plan::MakeSeqScan("users", Predicate::Compare(1, CompareOp::kGe, 30)),
      plan::MakeSeqScan("orders", std::nullopt), 0, 1);
  PhysicalPlan plan(plan::MakeSimpleAggregate(
      std::move(join), {AggregateExpr{AggFunc::kCount, std::nullopt},
                        AggregateExpr{AggFunc::kSum, 4}}));
  auto result = executor.Execute(&plan);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->output.num_rows(), 1u);
  // users >= 30: ids 0,1,3,4. orders by user: 0->{0,5}, 1->{1,6}, 3->{3}, 4->{4}.
  EXPECT_DOUBLE_EQ(result->output.columns[0][0], 6.0);
  // sum of amts: 0+50+10+60+30+40 = 190.
  EXPECT_DOUBLE_EQ(result->output.columns[1][0], 190.0);
  // All three nodes have stats and true cardinalities.
  EXPECT_EQ(result->stats.size(), 4u);
  EXPECT_EQ(plan.root->true_cardinality, 1.0);
}

TEST(ExecutorTest, SortByMultipleKeys) {
  storage::Database db = MakeDb();
  Executor executor(&db);
  // Sort orders by (user_id, amt): ties on user_id broken by amt.
  auto scan = plan::MakeSeqScan("orders", std::nullopt);
  PhysicalPlan plan(plan::MakeSort(std::move(scan), {1, 2}));
  auto result = executor.Execute(&plan);
  ASSERT_TRUE(result.ok());
  const auto& user_ids = result->output.columns[1];
  const auto& amts = result->output.columns[2];
  for (size_t i = 1; i < user_ids.size(); ++i) {
    ASSERT_TRUE(user_ids[i - 1] < user_ids[i] ||
                (user_ids[i - 1] == user_ids[i] && amts[i - 1] <= amts[i]));
  }
}

TEST(ExecutorTest, HashAggregateOverEmptyInput) {
  storage::Database db = MakeDb();
  Executor executor(&db);
  auto scan = plan::MakeSeqScan(
      "users", Predicate::Compare(1, CompareOp::kGt, 1000));
  PhysicalPlan plan(plan::MakeHashAggregate(
      std::move(scan), {1}, {AggregateExpr{AggFunc::kCount, std::nullopt}}));
  auto result = executor.Execute(&plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output.num_rows(), 0u);  // no groups from no rows
  EXPECT_EQ(result->StatsFor(*plan.root).group_count, 0);
}

TEST(ExecutorTest, FilterOverJoinOutputSlots) {
  // A Filter above a join addresses the concatenated output schema: slot 4
  // is orders.amt (users has 2 columns, orders starts at slot 2).
  storage::Database db = MakeDb();
  Executor executor(&db);
  auto join = plan::MakeHashJoin(plan::MakeSeqScan("users", std::nullopt),
                                 plan::MakeSeqScan("orders", std::nullopt),
                                 0, 1);
  PhysicalPlan plan(plan::MakeFilter(
      std::move(join), Predicate::Compare(4, CompareOp::kGe, 50.0)));
  auto result = executor.Execute(&plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output.num_rows(), 3u);  // amts 50, 60, 70
  for (size_t r = 0; r < result->output.num_rows(); ++r) {
    EXPECT_GE(result->output.columns[4][r], 50.0);
  }
}

TEST(ExecutorTest, GroupByOverJoin) {
  storage::Database db = MakeDb();
  Executor executor(&db);
  // COUNT orders per age bracket: join then group by users.age (slot 1).
  auto join = plan::MakeHashJoin(plan::MakeSeqScan("users", std::nullopt),
                                 plan::MakeSeqScan("orders", std::nullopt),
                                 0, 1);
  PhysicalPlan plan(plan::MakeHashAggregate(
      std::move(join), {1}, {AggregateExpr{AggFunc::kCount, std::nullopt}}));
  auto result = executor.Execute(&plan);
  ASSERT_TRUE(result.ok());
  // Ages with orders: 30 (users 0,3 -> orders 0,5,3), 40 (1 -> 1,6),
  // 25 (2 -> 2,7), 55 (4 -> 4). Four groups, counts 3,2,2,1.
  EXPECT_EQ(result->output.num_rows(), 4u);
  double total = 0;
  for (size_t r = 0; r < 4; ++r) total += result->output.columns[1][r];
  EXPECT_DOUBLE_EQ(total, 8.0);
}

TEST(ExecutorTest, NestedLoopRespectsRowCapMidLoop) {
  storage::Database db = MakeDb();
  ExecutorOptions options;
  options.max_intermediate_rows = 3;
  Executor executor(&db, options);
  PhysicalPlan plan(plan::MakeNestedLoopJoin(
      plan::MakeSeqScan("users", std::nullopt),
      plan::MakeSeqScan("orders", std::nullopt), 0, 1));
  auto result = executor.Execute(&plan);
  // 5 and 8 rows are both over the cap already at the scans.
  EXPECT_FALSE(result.ok());
}

TEST(ExecutorTest, StatsForUnknownNodeAborts) {
  storage::Database db = MakeDb();
  Executor executor(&db);
  PhysicalPlan plan(plan::MakeSeqScan("users", std::nullopt));
  auto result = executor.Execute(&plan);
  ASSERT_TRUE(result.ok());
  auto orphan = plan::MakeSeqScan("orders", std::nullopt);
  EXPECT_DEATH(result->StatsFor(*orphan), "no stats recorded");
}

}  // namespace
}  // namespace zerodb::exec
