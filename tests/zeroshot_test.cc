#include <gtest/gtest.h>
#include <cmath>
#include <set>

#include "datagen/corpus.h"
#include "train/metrics.h"
#include "whatif/index_advisor.h"
#include "workload/benchmarks.h"
#include "zeroshot/estimator.h"

namespace zerodb::zeroshot {
namespace {

// One corpus + trained estimator shared across the suite (training is the
// expensive part).
class ZeroShotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new std::vector<datagen::DatabaseEnv>(
        datagen::MakeTrainingCorpus(42, 6, 0.12));
    imdb_ = new datagen::DatabaseEnv(datagen::MakeImdbEnv(7, 0.12));
    ZeroShotConfig config;
    config.queries_per_database = 150;
    config.trainer.max_epochs = 25;
    estimator_ = new ZeroShotEstimator(ZeroShotEstimator::Train(*corpus_, config));
  }
  static void TearDownTestSuite() {
    delete estimator_;
    delete imdb_;
    delete corpus_;
    estimator_ = nullptr;
    imdb_ = nullptr;
    corpus_ = nullptr;
  }

  static std::vector<datagen::DatabaseEnv>* corpus_;
  static datagen::DatabaseEnv* imdb_;
  static ZeroShotEstimator* estimator_;
};

std::vector<datagen::DatabaseEnv>* ZeroShotTest::corpus_ = nullptr;
datagen::DatabaseEnv* ZeroShotTest::imdb_ = nullptr;
ZeroShotEstimator* ZeroShotTest::estimator_ = nullptr;

TEST_F(ZeroShotTest, TrainingCollectedFromAllDatabases) {
  const auto& records = estimator_->training_records();
  ASSERT_FALSE(records.empty());
  std::set<std::string> db_names;
  for (const auto& record : records) db_names.insert(record.db_name);
  EXPECT_EQ(db_names.size(), corpus_->size());
  // The unseen database never appears in training.
  EXPECT_EQ(db_names.count("imdb"), 0u);
}

TEST_F(ZeroShotTest, GeneralizesToUnseenDatabase) {
  // The headline claim: accurate runtime prediction on a database the model
  // never saw, without executing a single training query on it.
  auto queries = workload::MakeBenchmark(workload::BenchmarkWorkload::kSynthetic,
                                         *imdb_, 100, 5);
  auto eval = train::CollectRecords(*imdb_, queries, train::CollectOptions());
  ASSERT_GE(eval.size(), 60u);
  auto predictions = estimator_->PredictMs(train::MakeView(eval));
  std::vector<double> truth;
  for (const auto& record : eval) truth.push_back(record.runtime_ms);
  train::QErrorStats stats = train::ComputeQErrors(predictions, truth);
  EXPECT_LT(stats.median, 1.8) << stats.ToString();
  EXPECT_LT(stats.p95, 15.0) << stats.ToString();
}

TEST_F(ZeroShotTest, EstimateQueryWithoutExecution) {
  workload::QueryGenerator generator(
      imdb_, workload::TrainingWorkloadConfig(), 17);
  for (int i = 0; i < 5; ++i) {
    auto ms = estimator_->EstimateQueryMs(*imdb_, generator.Next());
    ASSERT_TRUE(ms.ok());
    EXPECT_GT(ms->value(), 0.0);
    EXPECT_TRUE(std::isfinite(ms->value()));
  }
}

TEST_F(ZeroShotTest, WhatIfChangesPrediction) {
  // Build a selective single-table query; declaring a hypothetical index on
  // the filtered column must lower (or at least change) the prediction via
  // the changed plan.
  size_t votes_col =
      *imdb_->db->FindTable("title")->schema().FindColumn("votes");
  plan::QuerySpec query;
  query.tables = {"title"};
  query.filters = {plan::FilterSpec{
      "title", plan::Predicate::Compare(votes_col, plan::CompareOp::kEq,
                                        12345)}};
  query.aggregates = {plan::AggregateSpec{plan::AggFunc::kCount, "", ""}};

  auto without = estimator_->EstimateQueryMs(*imdb_, query);
  ASSERT_TRUE(without.ok());

  optimizer::PlannerOptions with_index;
  with_index.hypothetical_indexes = {
      optimizer::HypotheticalIndex{"title", votes_col}};
  auto with = estimator_->EstimateQueryMs(*imdb_, query, with_index);
  ASSERT_TRUE(with.ok());
  EXPECT_LT(*with, *without);
}

TEST_F(ZeroShotTest, AdvisorRecommendsUsefulIndexes) {
  // Workload dominated by selective predicates on title.votes: the advisor
  // should discover that indexing helps, using only what-if predictions.
  size_t votes_col =
      *imdb_->db->FindTable("title")->schema().FindColumn("votes");
  std::vector<plan::QuerySpec> queries;
  Rng rng(3);
  for (int i = 0; i < 6; ++i) {
    plan::QuerySpec query;
    query.tables = {"title"};
    query.filters = {plan::FilterSpec{
        "title",
        plan::Predicate::Compare(votes_col, plan::CompareOp::kEq,
                                 static_cast<double>(rng.UniformInt(1, 30000)))}};
    query.aggregates = {plan::AggregateSpec{plan::AggFunc::kCount, "", ""}};
    queries.push_back(query);
  }
  whatif::IndexAdvisor advisor(estimator_);
  auto candidates = advisor.EnumerateCandidates(*imdb_, queries);
  ASSERT_FALSE(candidates.empty());
  whatif::AdvisorResult result = advisor.Recommend(*imdb_, queries);
  ASSERT_FALSE(result.chosen.empty());
  EXPECT_EQ(result.chosen[0].table, "title");
  EXPECT_EQ(result.chosen[0].column, "votes");
  EXPECT_LT(result.final_total_ms, result.baseline_total_ms);
}

TEST_F(ZeroShotTest, AdvisorSkipsExistingIndexes) {
  size_t votes_col =
      *imdb_->db->FindTable("title")->schema().FindColumn("votes");
  plan::QuerySpec query;
  query.tables = {"title"};
  query.filters = {plan::FilterSpec{
      "title", plan::Predicate::Compare(votes_col, plan::CompareOp::kEq, 5.0)}};
  whatif::IndexAdvisor advisor(estimator_);
  ASSERT_TRUE(imdb_->db->CreateIndex("title", "votes").ok());
  auto candidates = advisor.EnumerateCandidates(*imdb_, {query});
  for (const auto& candidate : candidates) {
    EXPECT_FALSE(candidate.table == "title" && candidate.column == "votes");
  }
  imdb_->db->DropAllIndexes();
}

TEST_F(ZeroShotTest, ExactModeRejectsEstimateQuery) {
  ZeroShotConfig config;
  config.queries_per_database = 40;
  config.trainer.max_epochs = 2;
  config.model.cardinality_mode = featurize::CardinalityMode::kExact;
  std::vector<datagen::DatabaseEnv> tiny_corpus =
      datagen::MakeTrainingCorpus(5, 2, 0.05);
  ZeroShotEstimator exact = ZeroShotEstimator::Train(tiny_corpus, config);
  workload::QueryGenerator generator(
      imdb_, workload::TrainingWorkloadConfig(), 21);
  auto result = exact.EstimateQueryMs(*imdb_, generator.Next());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace zerodb::zeroshot
