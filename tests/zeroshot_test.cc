#include <gtest/gtest.h>
#include <cmath>
#include <set>

#include "datagen/corpus.h"
#include "train/metrics.h"
#include "whatif/index_advisor.h"
#include "workload/benchmarks.h"
#include "zeroshot/estimator.h"

namespace zerodb::zeroshot {
namespace {

// One corpus + trained estimator shared across the suite (training is the
// expensive part).
class ZeroShotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new std::vector<datagen::DatabaseEnv>(
        datagen::MakeTrainingCorpus(42, 6, 0.12));
    imdb_ = new datagen::DatabaseEnv(datagen::MakeImdbEnv(7, 0.12));
    ZeroShotConfig config;
    config.queries_per_database = 150;
    config.trainer.max_epochs = 25;
    estimator_ = new ZeroShotEstimator(ZeroShotEstimator::Train(*corpus_, config));
  }
  static void TearDownTestSuite() {
    delete estimator_;
    delete imdb_;
    delete corpus_;
    estimator_ = nullptr;
    imdb_ = nullptr;
    corpus_ = nullptr;
  }

  static std::vector<datagen::DatabaseEnv>* corpus_;
  static datagen::DatabaseEnv* imdb_;
  static ZeroShotEstimator* estimator_;
};

std::vector<datagen::DatabaseEnv>* ZeroShotTest::corpus_ = nullptr;
datagen::DatabaseEnv* ZeroShotTest::imdb_ = nullptr;
ZeroShotEstimator* ZeroShotTest::estimator_ = nullptr;

TEST_F(ZeroShotTest, TrainingCollectedFromAllDatabases) {
  const auto& records = estimator_->training_records();
  ASSERT_FALSE(records.empty());
  std::set<std::string> db_names;
  for (const auto& record : records) db_names.insert(record.db_name);
  EXPECT_EQ(db_names.size(), corpus_->size());
  // The unseen database never appears in training.
  EXPECT_EQ(db_names.count("imdb"), 0u);
}

TEST_F(ZeroShotTest, GeneralizesToUnseenDatabase) {
  // The headline claim: accurate runtime prediction on a database the model
  // never saw, without executing a single training query on it.
  auto queries = workload::MakeBenchmark(workload::BenchmarkWorkload::kSynthetic,
                                         *imdb_, 100, 5);
  auto eval = train::CollectRecords(*imdb_, queries, train::CollectOptions());
  ASSERT_GE(eval.size(), 60u);
  auto predictions = estimator_->PredictMs(train::MakeView(eval));
  std::vector<double> truth;
  for (const auto& record : eval) truth.push_back(record.runtime_ms);
  train::QErrorStats stats = train::ComputeQErrors(predictions, truth);
  EXPECT_LT(stats.median, 1.8) << stats.ToString();
  EXPECT_LT(stats.p95, 15.0) << stats.ToString();
}

TEST_F(ZeroShotTest, EstimateQueryWithoutExecution) {
  workload::QueryGenerator generator(
      imdb_, workload::TrainingWorkloadConfig(), 17);
  for (int i = 0; i < 5; ++i) {
    auto ms = estimator_->EstimateQueryMs(*imdb_, generator.Next());
    ASSERT_TRUE(ms.ok());
    EXPECT_GT(ms->value(), 0.0);
    EXPECT_TRUE(std::isfinite(ms->value()));
  }
}

TEST_F(ZeroShotTest, WhatIfChangesPrediction) {
  // Build a selective single-table query; declaring a hypothetical index on
  // the filtered column must lower (or at least change) the prediction via
  // the changed plan.
  size_t votes_col =
      *imdb_->db->FindTable("title")->schema().FindColumn("votes");
  plan::QuerySpec query;
  query.tables = {"title"};
  query.filters = {plan::FilterSpec{
      "title", plan::Predicate::Compare(votes_col, plan::CompareOp::kEq,
                                        12345)}};
  query.aggregates = {plan::AggregateSpec{plan::AggFunc::kCount, "", ""}};

  auto without = estimator_->EstimateQueryMs(*imdb_, query);
  ASSERT_TRUE(without.ok());

  optimizer::PlannerOptions with_index;
  with_index.hypothetical_indexes = {
      optimizer::HypotheticalIndex{"title", votes_col}};
  auto with = estimator_->EstimateQueryMs(*imdb_, query, with_index);
  ASSERT_TRUE(with.ok());
  EXPECT_LT(*with, *without);
}

TEST_F(ZeroShotTest, AdvisorRecommendsUsefulIndexes) {
  // Workload dominated by selective predicates on title.votes: the advisor
  // should discover that indexing helps, using only what-if predictions.
  size_t votes_col =
      *imdb_->db->FindTable("title")->schema().FindColumn("votes");
  std::vector<plan::QuerySpec> queries;
  Rng rng(3);
  for (int i = 0; i < 6; ++i) {
    plan::QuerySpec query;
    query.tables = {"title"};
    query.filters = {plan::FilterSpec{
        "title",
        plan::Predicate::Compare(votes_col, plan::CompareOp::kEq,
                                 static_cast<double>(rng.UniformInt(1, 30000)))}};
    query.aggregates = {plan::AggregateSpec{plan::AggFunc::kCount, "", ""}};
    queries.push_back(query);
  }
  whatif::IndexAdvisor advisor(estimator_);
  auto candidates = advisor.EnumerateCandidates(*imdb_, queries);
  ASSERT_FALSE(candidates.empty());
  whatif::AdvisorResult result = advisor.Recommend(*imdb_, queries);
  ASSERT_FALSE(result.chosen.empty());
  EXPECT_EQ(result.chosen[0].table, "title");
  EXPECT_EQ(result.chosen[0].column, "votes");
  EXPECT_LT(result.final_total_ms, result.baseline_total_ms);
}

TEST_F(ZeroShotTest, AdvisorSkipsExistingIndexes) {
  size_t votes_col =
      *imdb_->db->FindTable("title")->schema().FindColumn("votes");
  plan::QuerySpec query;
  query.tables = {"title"};
  query.filters = {plan::FilterSpec{
      "title", plan::Predicate::Compare(votes_col, plan::CompareOp::kEq, 5.0)}};
  whatif::IndexAdvisor advisor(estimator_);
  ASSERT_TRUE(imdb_->db->CreateIndex("title", "votes").ok());
  auto candidates = advisor.EnumerateCandidates(*imdb_, {query});
  for (const auto& candidate : candidates) {
    EXPECT_FALSE(candidate.table == "title" && candidate.column == "votes");
  }
  imdb_->db->DropAllIndexes();
}

TEST_F(ZeroShotTest, ExactModeRejectsEstimateQuery) {
  ZeroShotConfig config;
  config.queries_per_database = 40;
  config.trainer.max_epochs = 2;
  config.model.cardinality_mode = featurize::CardinalityMode::kExact;
  std::vector<datagen::DatabaseEnv> tiny_corpus =
      datagen::MakeTrainingCorpus(5, 2, 0.05);
  ZeroShotEstimator exact = ZeroShotEstimator::Train(tiny_corpus, config);
  workload::QueryGenerator generator(
      imdb_, workload::TrainingWorkloadConfig(), 21);
  auto result = exact.EstimateQueryMs(*imdb_, generator.Next());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ZeroShotTest, BatchedForwardMatchesSerial) {
  // The batched serving path must be a pure packing optimization: pricing a
  // workload in one ForwardBatch call and pricing each record alone must
  // agree. Per-row accumulation order is independent of batch composition,
  // so the tolerance is tight.
  auto queries = workload::MakeBenchmark(workload::BenchmarkWorkload::kSynthetic,
                                         *imdb_, 100, 9);
  auto eval = train::CollectRecords(*imdb_, queries, train::CollectOptions());
  ASSERT_GE(eval.size(), 60u);
  auto view = train::MakeView(eval);
  auto batched = estimator_->model().ForwardBatch(view);
  ASSERT_EQ(batched.size(), view.size());
  for (size_t i = 0; i < view.size(); ++i) {
    auto serial = estimator_->model().ForwardBatch({view[i]});
    ASSERT_EQ(serial.size(), 1u);
    EXPECT_NEAR(batched[i].value(), serial[0].value(), 1e-5)
        << "record " << i;
  }
}

TEST_F(ZeroShotTest, PredictionCacheHitsAndInvalidation) {
  const PredictCache* cache = estimator_->predict_cache();
  ASSERT_NE(cache, nullptr);
  workload::QueryGenerator generator(
      imdb_, workload::TrainingWorkloadConfig(), 29);
  plan::QuerySpec query = generator.Next();

  // Counters are cumulative across the shared fixture, so assert on deltas.
  auto first = estimator_->EstimateQueryMs(*imdb_, query);
  ASSERT_TRUE(first.ok());
  const int64_t hits_before = cache->hits();
  auto second = estimator_->EstimateQueryMs(*imdb_, query);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache->hits(), hits_before + 1);
  EXPECT_DOUBLE_EQ(second->value(), first->value());

  const int64_t invalidations_before = cache->invalidations();
  estimator_->InvalidatePredictionCache();
  EXPECT_EQ(cache->invalidations(), invalidations_before + 1);
  EXPECT_EQ(cache->size(), 0u);

  // After invalidation the same query misses, recomputes, and lands on the
  // same value (the weights have not changed).
  const int64_t misses_before = cache->misses();
  auto third = estimator_->EstimateQueryMs(*imdb_, query);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(cache->misses(), misses_before + 1);
  EXPECT_DOUBLE_EQ(third->value(), first->value());
}

TEST_F(ZeroShotTest, BatchEstimateMatchesSerialEstimate) {
  workload::QueryGenerator generator(
      imdb_, workload::TrainingWorkloadConfig(), 31);
  std::vector<plan::QuerySpec> queries;
  for (int i = 0; i < 8; ++i) queries.push_back(generator.Next());
  auto batch = estimator_->EstimateQueryBatchMs(*imdb_, queries);
  ASSERT_EQ(batch.size(), queries.size());
  // Drop the entries the batch call just cached so the serial path below
  // recomputes through the model instead of trivially replaying the cache.
  estimator_->InvalidatePredictionCache();
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << "query " << i;
    auto serial = estimator_->EstimateQueryMs(*imdb_, queries[i]);
    ASSERT_TRUE(serial.ok()) << "query " << i;
    EXPECT_NEAR(batch[i]->value(), serial->value(), 1e-5) << "query " << i;
  }
}

}  // namespace
}  // namespace zerodb::zeroshot
