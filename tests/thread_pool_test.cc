#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace zerodb {
namespace {

TEST(WaitGroupTest, WaitReturnsOnceAllDone) {
  ThreadPool pool(4);
  WaitGroup wg;
  std::atomic<int> done{0};
  const int kTasks = 64;
  wg.Add(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.Schedule([&] {
      done.fetch_add(1, std::memory_order_relaxed);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(WaitGroupTest, WaitWithNoWorkReturnsImmediately) {
  WaitGroup wg;
  wg.Wait();
}

TEST(ThreadPoolTest, DestructorDrainsScheduledWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Schedule([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // No join here: the destructor must run everything already scheduled.
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolTest, ScheduleFromInsideATask) {
  ThreadPool pool(2);
  WaitGroup wg;
  std::atomic<int> ran{0};
  wg.Add(2);
  pool.Schedule([&] {
    ran.fetch_add(1, std::memory_order_relaxed);
    pool.Schedule([&] {
      ran.fetch_add(1, std::memory_order_relaxed);
      wg.Done();
    });
    wg.Done();
  });
  wg.Wait();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTest, GlobalPoolIsASingleton) {
  ThreadPool* a = ThreadPool::Global();
  ThreadPool* b = ThreadPool::Global();
  EXPECT_EQ(a, b);
  EXPECT_GE(a->num_threads(), 1u);
}

TEST(ParallelForTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  const size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  ParallelFor(&pool, 0, kCount, /*grain=*/7, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ChunkBoundariesAreDeterministic) {
  ThreadPool pool(4);
  Mutex mu;
  std::set<std::pair<size_t, size_t>> chunks;
  ParallelFor(&pool, 3, 25, /*grain=*/10, [&](size_t begin, size_t end) {
    MutexLock lock(&mu);
    chunks.insert({begin, end});
  });
  std::set<std::pair<size_t, size_t>> expected = {{3, 13}, {13, 23}, {23, 25}};
  EXPECT_EQ(chunks, expected);
}

TEST(ParallelForTest, SerialFallbacks) {
  // Null pool: one inline call covering the whole range.
  std::vector<std::pair<size_t, size_t>> calls;
  ParallelFor(nullptr, 5, 50, /*grain=*/3, [&](size_t begin, size_t end) {
    calls.push_back({begin, end});
  });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], (std::pair<size_t, size_t>{5, 50}));

  // Range within one grain: inline even with a pool.
  ThreadPool pool(4);
  calls.clear();
  ParallelFor(&pool, 0, 4, /*grain=*/8, [&](size_t begin, size_t end) {
    calls.push_back({begin, end});
  });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], (std::pair<size_t, size_t>{0, 4}));

  // Empty range: fn never runs.
  calls.clear();
  ParallelFor(&pool, 9, 9, /*grain=*/1,
              [&](size_t, size_t) { calls.push_back({0, 0}); });
  EXPECT_TRUE(calls.empty());
}

TEST(ParallelForTest, NestedParallelForDoesNotDeadlock) {
  // Inner ParallelFor runs from inside pool tasks while every worker may be
  // busy: caller participation must guarantee progress.
  ThreadPool pool(2);
  std::atomic<int> inner_runs{0};
  ParallelFor(&pool, 0, 8, /*grain=*/1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ParallelFor(&pool, 0, 16, /*grain=*/1, [&](size_t b2, size_t e2) {
        for (size_t j = b2; j < e2; ++j) {
          inner_runs.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  });
  EXPECT_EQ(inner_runs.load(), 8 * 16);
}

TEST(ParallelForTest, EightThreadStress) {
  // Hammer the queue from 8 workers; run under TSan in CI to prove the
  // pool's locking (and the test's own counters) race-free.
  ThreadPool pool(8);
  std::atomic<int64_t> sum{0};
  const size_t kRounds = 50;
  const size_t kCount = 512;
  for (size_t round = 0; round < kRounds; ++round) {
    ParallelFor(&pool, 0, kCount, /*grain=*/3, [&](size_t begin, size_t end) {
      int64_t local = 0;
      for (size_t i = begin; i < end; ++i) {
        local += static_cast<int64_t>(i);
      }
      sum.fetch_add(local, std::memory_order_relaxed);
    });
  }
  const int64_t per_round =
      static_cast<int64_t>(kCount) * static_cast<int64_t>(kCount - 1) / 2;
  EXPECT_EQ(sum.load(), static_cast<int64_t>(kRounds) * per_round);
}

TEST(ParallelForTest, ConcurrentCallersShareOnePool) {
  // Two threads' worth of ParallelFor traffic multiplexed over one pool via
  // Schedule — the trainer + featurizer sharing the global pool in miniature.
  ThreadPool pool(4);
  WaitGroup wg;
  std::atomic<int> total{0};
  wg.Add(2);
  for (int caller = 0; caller < 2; ++caller) {
    pool.Schedule([&] {
      ParallelFor(&pool, 0, 256, /*grain=*/5, [&](size_t begin, size_t end) {
        total.fetch_add(static_cast<int>(end - begin),
                        std::memory_order_relaxed);
      });
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(total.load(), 512);
}

}  // namespace
}  // namespace zerodb
