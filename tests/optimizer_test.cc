#include <gtest/gtest.h>

#include "datagen/corpus.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "runtime/simulator.h"
#include "workload/benchmarks.h"
#include "workload/generator.h"

namespace zerodb::optimizer {
namespace {

using plan::CompareOp;
using plan::PhysicalOpType;
using plan::Predicate;
using plan::QuerySpec;

datagen::DatabaseEnv MakeEnv() { return datagen::MakeImdbEnv(17, 0.05); }

TEST(CostModelTest, MonotoneInWork) {
  CostModel model;
  EXPECT_LT(model.SeqScanCost(10, 1000, 1, 100),
            model.SeqScanCost(100, 10000, 1, 100));
  EXPECT_LT(model.HashJoinCost(100, 100, 100),
            model.HashJoinCost(10000, 10000, 100));
  EXPECT_LT(model.SortCost(100), model.SortCost(100000));
  EXPECT_LT(model.IndexScanCost(3, 10, 1, 10),
            model.IndexScanCost(3, 10000, 1, 10));
}

TEST(PlannerTest, SingleTableSeqScan) {
  auto env = MakeEnv();
  Planner planner(env.db.get(), &env.stats);
  QuerySpec query;
  query.tables = {"title"};
  query.aggregates = {plan::AggregateSpec{plan::AggFunc::kCount, "", ""}};
  auto plan = planner.Plan(query);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->type, PhysicalOpType::kSimpleAggregate);
  EXPECT_EQ(plan->root->children[0]->type, PhysicalOpType::kSeqScan);
  EXPECT_GT(plan->root->est_cost, 0.0);
  EXPECT_DOUBLE_EQ(plan->root->est_cardinality, 1.0);
}

TEST(PlannerTest, SelectiveIndexScanChosen) {
  auto env = MakeEnv();
  ASSERT_TRUE(env.db->CreateIndex("title", "production_year").ok());
  Planner planner(env.db.get(), &env.stats);
  QuerySpec query;
  query.tables = {"title"};
  size_t year_col = *env.db->FindTable("title")->schema().FindColumn(
      "production_year");
  query.filters = {plan::FilterSpec{
      "title", Predicate::Compare(year_col, CompareOp::kEq, 1895)}};
  auto plan = planner.Plan(query);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->type, PhysicalOpType::kIndexScan);
  EXPECT_EQ(plan->root->index_column, year_col);
  ASSERT_TRUE(plan->root->range_lo.has_value());
  EXPECT_DOUBLE_EQ(*plan->root->range_lo, 1895.0);
}

TEST(PlannerTest, UnselectivePredicateKeepsSeqScan) {
  auto env = MakeEnv();
  ASSERT_TRUE(env.db->CreateIndex("title", "production_year").ok());
  Planner planner(env.db.get(), &env.stats);
  QuerySpec query;
  query.tables = {"title"};
  size_t year_col = *env.db->FindTable("title")->schema().FindColumn(
      "production_year");
  // year >= 0 matches everything: an index scan would be absurd.
  query.filters = {plan::FilterSpec{
      "title", Predicate::Compare(year_col, CompareOp::kGe, 0)}};
  auto plan = planner.Plan(query);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->type, PhysicalOpType::kSeqScan);
}

TEST(PlannerTest, TwoWayJoinProducesJoinPlan) {
  auto env = MakeEnv();
  Planner planner(env.db.get(), &env.stats);
  QuerySpec query;
  query.tables = {"title", "cast_info"};
  query.joins = {plan::JoinSpec{"cast_info", "movie_id", "title", "id"}};
  query.aggregates = {plan::AggregateSpec{plan::AggFunc::kCount, "", ""}};
  auto plan = planner.Plan(query);
  ASSERT_TRUE(plan.ok());
  const plan::PhysicalNode* agg = plan->root.get();
  ASSERT_EQ(agg->children.size(), 1u);
  const plan::PhysicalNode* join = agg->children[0].get();
  EXPECT_TRUE(join->type == PhysicalOpType::kHashJoin ||
              join->type == PhysicalOpType::kNestedLoopJoin);
}

TEST(PlannerTest, IndexNLJoinUsedWithIndexAndSelectiveOuter) {
  auto env = MakeEnv();
  ASSERT_TRUE(env.db->CreateIndex("cast_info", "movie_id").ok());
  Planner planner(env.db.get(), &env.stats);
  QuerySpec query;
  query.tables = {"title", "cast_info"};
  query.joins = {plan::JoinSpec{"cast_info", "movie_id", "title", "id"}};
  size_t year_col = *env.db->FindTable("title")->schema().FindColumn(
      "production_year");
  // Highly selective filter on the outer side makes INLJ attractive.
  query.filters = {plan::FilterSpec{
      "title", Predicate::Compare(year_col, CompareOp::kEq, 1895)}};
  query.aggregates = {plan::AggregateSpec{plan::AggFunc::kCount, "", ""}};
  auto plan = planner.Plan(query);
  ASSERT_TRUE(plan.ok());
  bool has_inlj = false;
  plan->root->Visit([&](const plan::PhysicalNode& node) {
    if (node.type == PhysicalOpType::kIndexNLJoin) has_inlj = true;
  });
  EXPECT_TRUE(has_inlj);
}

TEST(PlannerTest, HypotheticalIndexEnablesIndexPlans) {
  auto env = MakeEnv();  // no real indexes
  size_t year_col = *env.db->FindTable("title")->schema().FindColumn(
      "production_year");
  PlannerOptions options;
  options.hypothetical_indexes = {HypotheticalIndex{"title", year_col}};
  Planner planner(env.db.get(), &env.stats, CostParams(), options);
  QuerySpec query;
  query.tables = {"title"};
  query.filters = {plan::FilterSpec{
      "title", Predicate::Compare(year_col, CompareOp::kEq, 1895)}};
  auto plan = planner.Plan(query);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->type, PhysicalOpType::kIndexScan);
  // The hypothetical plan cannot be executed (no real index).
  exec::Executor executor(env.db.get());
  EXPECT_FALSE(executor.Execute(&*plan).ok());
}

TEST(PlannerTest, DisablingIndexScansForcesSeq) {
  auto env = MakeEnv();
  ASSERT_TRUE(env.db->CreateIndex("title", "production_year").ok());
  PlannerOptions options;
  options.enable_index_scan = false;
  options.enable_index_nl_join = false;
  Planner planner(env.db.get(), &env.stats, CostParams(), options);
  QuerySpec query;
  query.tables = {"title"};
  size_t year_col = *env.db->FindTable("title")->schema().FindColumn(
      "production_year");
  query.filters = {plan::FilterSpec{
      "title", Predicate::Compare(year_col, CompareOp::kEq, 1895)}};
  auto plan = planner.Plan(query);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->type, PhysicalOpType::kSeqScan);
}

TEST(PlannerTest, RejectsCyclicJoinGraph) {
  auto env = MakeEnv();
  Planner planner(env.db.get(), &env.stats);
  QuerySpec query;
  query.tables = {"title", "cast_info"};
  query.joins = {plan::JoinSpec{"cast_info", "movie_id", "title", "id"},
                 plan::JoinSpec{"cast_info", "id", "title", "id"}};
  EXPECT_FALSE(planner.Plan(query).ok());
}

TEST(PlannerTest, PlansExecuteCorrectly) {
  // The planner's plans must compute the same answer as a canonical
  // hand-built plan, for many random queries.
  auto env = MakeEnv();
  ASSERT_TRUE(env.db->CreateIndex("cast_info", "movie_id").ok());
  Planner planner(env.db.get(), &env.stats);
  exec::Executor executor(env.db.get());
  workload::QueryGenerator generator(&env,
                                     workload::TrainingWorkloadConfig(), 99);
  int checked = 0;
  for (int i = 0; i < 20; ++i) {
    QuerySpec query = generator.Next();
    auto plan = planner.Plan(query);
    ASSERT_TRUE(plan.ok()) << query.ToSql(*env.db);
    auto result = executor.Execute(&*plan);
    if (!result.ok()) continue;  // row-cap rejection is fine

    // Reference: force hash joins and seq scans only.
    PlannerOptions reference_options;
    reference_options.enable_index_scan = false;
    reference_options.enable_index_nl_join = false;
    reference_options.nlj_row_threshold = 0;
    Planner reference(env.db.get(), &env.stats, CostParams(),
                      reference_options);
    auto ref_plan = reference.Plan(query);
    ASSERT_TRUE(ref_plan.ok());
    auto ref_result = executor.Execute(&*ref_plan);
    ASSERT_TRUE(ref_result.ok());

    ASSERT_EQ(result->output.num_rows(), ref_result->output.num_rows())
        << query.ToSql(*env.db);
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST(PlannerTest, EstimatesAreAnnotated) {
  auto env = MakeEnv();
  Planner planner(env.db.get(), &env.stats);
  workload::QueryGenerator generator(&env,
                                     workload::TrainingWorkloadConfig(), 7);
  for (int i = 0; i < 10; ++i) {
    auto plan = planner.Plan(generator.Next());
    ASSERT_TRUE(plan.ok());
    plan->root->Visit([](const plan::PhysicalNode& node) {
      EXPECT_GT(node.est_cardinality, 0.0);
      EXPECT_GT(node.est_cost, 0.0);
    });
  }
}

TEST(FindSlotTest, LocatesColumns) {
  std::vector<plan::OutputColumn> schema = {
      {"a", 0, false}, {"a", 1, false}, {"b", 0, false}};
  EXPECT_EQ(FindSlot(schema, "a", 1), 1u);
  EXPECT_EQ(FindSlot(schema, "b", 0), 2u);
}

}  // namespace
}  // namespace zerodb::optimizer
