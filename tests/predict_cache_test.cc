#include "zeroshot/predict_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace zerodb::zeroshot {
namespace {

PredictCacheOptions SmallCache(size_t capacity,
                               obs::MetricsRegistry* registry = nullptr) {
  PredictCacheOptions options;
  options.capacity = capacity;
  options.registry = registry;
  return options;
}

TEST(PredictCacheTest, MissThenHit) {
  PredictCache cache(SmallCache(4));
  EXPECT_EQ(cache.Lookup(1), std::nullopt);
  cache.Insert(1, Millis(2.5));
  auto hit = cache.Lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->value(), 2.5);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.evictions(), 0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PredictCacheTest, InsertRefreshesValue) {
  PredictCache cache(SmallCache(4));
  cache.Insert(1, Millis(2.0));
  cache.Insert(1, Millis(3.0));
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.Lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->value(), 3.0);
}

TEST(PredictCacheTest, EvictsLeastRecentlyUsed) {
  PredictCache cache(SmallCache(2));
  cache.Insert(1, Millis(1.0));
  cache.Insert(2, Millis(2.0));
  // Touch 1 so 2 becomes the LRU entry, then push it out with 3.
  ASSERT_TRUE(cache.Lookup(1).has_value());
  cache.Insert(3, Millis(3.0));
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(1).has_value());
  EXPECT_EQ(cache.Lookup(2), std::nullopt);
  EXPECT_TRUE(cache.Lookup(3).has_value());
}

TEST(PredictCacheTest, ZeroCapacityDisables) {
  PredictCache cache(SmallCache(0));
  cache.Insert(1, Millis(1.0));
  EXPECT_EQ(cache.Lookup(1), std::nullopt);
  EXPECT_EQ(cache.size(), 0u);
  // A disabled cache records no traffic: every call would be a miss, which
  // would drag the hit-rate gauge to zero for a cache that is not there.
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);
}

TEST(PredictCacheTest, TtlExpiryCountsMissAndEviction) {
  double fake_now = 100.0;
  PredictCacheOptions options = SmallCache(4);
  options.ttl_ms = 50.0;
  options.now_ms = [&fake_now] { return fake_now; };
  PredictCache cache(options);

  cache.Insert(1, Millis(1.0));
  fake_now = 149.0;  // still inside the TTL window
  EXPECT_TRUE(cache.Lookup(1).has_value());
  fake_now = 151.0;  // past it
  EXPECT_EQ(cache.Lookup(1), std::nullopt);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.size(), 0u);

  // Re-inserting after expiry restarts the clock.
  cache.Insert(1, Millis(2.0));
  fake_now = 200.0;
  EXPECT_TRUE(cache.Lookup(1).has_value());
}

TEST(PredictCacheTest, InvalidateDropsEverything) {
  PredictCache cache(SmallCache(8));
  for (uint64_t key = 0; key < 5; ++key) cache.Insert(key, Millis(1.0));
  EXPECT_EQ(cache.size(), 5u);
  cache.Invalidate();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.invalidations(), 1);
  EXPECT_EQ(cache.Lookup(0), std::nullopt);
}

TEST(PredictCacheTest, MirrorsCountersIntoRegistry) {
  obs::MetricsRegistry registry(/*enabled=*/true);
  PredictCache cache(SmallCache(2, &registry));
  cache.Insert(1, Millis(1.0));
  cache.Lookup(1);   // hit
  cache.Lookup(9);   // miss
  cache.Insert(2, Millis(2.0));
  cache.Insert(3, Millis(3.0));  // evicts
  cache.Invalidate();
  EXPECT_EQ(registry.GetCounter("cache.hit")->value(), 1);
  EXPECT_EQ(registry.GetCounter("cache.miss")->value(), 1);
  EXPECT_EQ(registry.GetCounter("cache.evict")->value(), 1);
  EXPECT_EQ(registry.GetCounter("cache.invalidation")->value(), 1);
  EXPECT_DOUBLE_EQ(registry.GetGauge("cache.hit_rate")->value(), 0.5);
  EXPECT_DOUBLE_EQ(registry.GetGauge("cache.size")->value(), 0.0);
}

// 8 threads hammer a small cache with overlapping key ranges so inserts,
// hits, LRU refreshes and evictions interleave. The assertions are
// accounting invariants; the real check is TSan (nightly flake-hunt runs
// this under --repeat until-fail).
TEST(PredictCacheTest, ConcurrentMixedTraffic) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  PredictCache cache(SmallCache(64));
  std::atomic<int64_t> observed_hits{0};
  // zerodb-lint: allow(raw-thread): stress test needs unmanaged contention
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &observed_hits, t] {
      int64_t local_hits = 0;
      for (int i = 0; i < kOpsPerThread; ++i) {
        // 128 keys over capacity 64: half the working set misses, so the
        // eviction path stays hot too.
        const uint64_t key =
            static_cast<uint64_t>((i * 7 + t * 13) % 128);
        if (auto hit = cache.Lookup(key)) {
          local_hits += 1;
          EXPECT_GT(hit->value(), 0.0);
        } else {
          cache.Insert(key, Millis(static_cast<double>(key + 1)));
        }
      }
      observed_hits.fetch_add(local_hits, std::memory_order_relaxed);
    });
  }
  // zerodb-lint: allow(raw-thread): stress test needs unmanaged contention
  for (std::thread& thread : threads) thread.join();
  EXPECT_LE(cache.size(), 64u);
  EXPECT_EQ(cache.hits(), observed_hits.load());
  // Every op was exactly one lookup; hits + misses must balance.
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<int64_t>(kThreads) * kOpsPerThread);
}

}  // namespace
}  // namespace zerodb::zeroshot
