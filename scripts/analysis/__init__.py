"""zerodb-analyzer: AST-level whole-program analysis for the zerodb tree.

The package splits into three layers:

  ir.py          the frontend-neutral micro-IR every check consumes:
                 per-file functions (with ordered lock acquisitions,
                 range-for loops, calls, returns, locals), classes
                 (with members), includes, type aliases and suppressions
  clangparse.py  libclang (clang.cindex) frontend — the real AST, used
                 when python3-clang + libclang are installed (CI)
  textparse.py   pure-python lexical frontend — a conservative
                 brace/token scanner that fills the same IR, so every
                 check still runs in containers without libclang
  checks.py      the five whole-program checks (determinism audit,
                 lock-order cycles, lifetime, layering, AST-level
                 discarded Status) over the merged IR

Entry point: scripts/zerodb_analyzer.py.
"""

__all__ = ["ir", "textparse", "clangparse", "checks"]
