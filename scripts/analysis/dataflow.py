"""Interprocedural dataflow passes for zerodb-analyzer.

Three rules built on the cross-TU call graph (callgraph.py):

  unit-mix        dimensional correctness for the cost pipeline. The tag
                  lattice is {unknown, ms, log-ms, rows, bytes,
                  selectivity}; tags seed from the strong types in
                  src/common/units.h (Millis, LogMillis, Rows, Bytes,
                  Selectivity) and propagate through assignments, call
                  arguments and return values via a return-tag fixpoint.
                  A tagged value may not flow into a differently-tagged
                  parameter, constructor, or +/- mix without one of the
                  named conversions (ToLog, FromLog, FromRows).

  statusor-deref  `StatusOr<T>::value()` / unary `*` on a value whose
                  `ok()` was never established before that point — with
                  StatusOr-ness inferred interprocedurally for
                  `auto x = f(...)` — and Status/StatusOr locals that a
                  function receives from a callee and then never checks,
                  returns, or forwards.

  hot-alloc       heap allocation (new / make_unique / make_shared) or
                  container growth (push_back, emplace_back, insert,
                  resize without a prior reserve on the same receiver)
                  reachable from the executor's per-row `Exec*`/`Next`
                  loops or the trainer's per-shard inner loop. "Hot"
                  propagates along call edges: a call made inside a hot
                  function's loop makes the callee loop-hot (its whole
                  body runs per row), and loop-hot is transitive. The
                  nn pool API (GraphArena/BufferPool methods and the
                  AcquirePooled*/MakeNode/MakeOpResult entry points) is
                  exempt by qualified name: its slow paths allocate by
                  design, precisely so steady-state call sites don't.

All three passes read only `FileIR.raw_lines` (via callgraph.lower_file),
which both frontends populate identically — so findings are
frontend-identical by construction and the pinned fixtures hold under
libclang and text alike.
"""

import re

from . import callgraph
from .ir import Finding

RULES = ("unit-mix", "statusor-deref", "hot-alloc")

# --- tag lattice -------------------------------------------------------

UNIT_TAGS = {
    "Millis": "ms",
    "LogMillis": "log-ms",
    "Rows": "rows",
    "Bytes": "bytes",
    "Selectivity": "selectivity",
}

# Named conversions: calling these is the sanctioned way to move between
# dimensions, so their results carry the *target* tag and their arguments
# are exempt from mixing checks.
_CONVERSIONS = {
    "ToLog": "log-ms",
    "FromLog": "ms",
    "FromRows": "selectivity",
}

_TYPE_CLEAN_RE = re.compile(
    r"\b(?:const|constexpr|static|inline|friend|virtual|volatile)\b")

_IDENT_RE = re.compile(r"^[A-Za-z_]\w*$")

_FIXPOINT_LIMIT = 10


def type_tag(type_text):
    """Declared type -> tag, or None. Only *scalar* unit types count —
    `std::vector<Millis>` is a container, and element flow through
    containers is out of scope for this pass."""
    if not type_text:
        return None
    text = _TYPE_CLEAN_RE.sub("", type_text)
    text = text.replace("&", " ").replace("*", " ").strip()
    text = text.split("::")[-1].strip()
    return UNIT_TAGS.get(text)


class _FuncEnv:
    """Per-function variable tag environment, seeded from declarations."""

    def __init__(self, func):
        self.func = func
        self.tags = {}
        for p in func.params:
            tag = type_tag(p.type_text)
            if tag and p.name:
                self.tags[p.name] = tag
        self.return_tag_decl = type_tag(func.return_type)


def _closes_at_end(text, open_idx):
    """True when the paren at `open_idx` closes exactly at text's end."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i == len(text) - 1
    return False


def _strip_outer_parens(text):
    text = text.strip()
    while text.startswith("(") and text.endswith(")"):
        depth = 0
        for i, ch in enumerate(text):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0 and i != len(text) - 1:
                    return text
        text = text[1:-1].strip()
    return text


def _split_top(text, ops=("+", "-")):
    """Splits `text` on top-level binary + or - (not unary, not inside
    any bracket). Returns list of operand texts (len 1 when no split)."""
    parts, depth, start = [], 0, 0
    prev_nonspace = ""
    i = 0
    while i < len(text):
        ch = text[i]
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch in ops and depth == 0:
            # Unary context: operator follows nothing, another operator,
            # an open bracket, or a comma/return keyword.
            if prev_nonspace and (prev_nonspace.isalnum()
                                  or prev_nonspace in ")]_"):
                # `->` and `e-9` are not subtraction.
                if ch == "-" and i + 1 < len(text) and text[i + 1] == ">":
                    i += 2
                    continue
                if prev_nonspace.lower() == "e" and i >= 2 \
                        and text[i - 2:i - 1].isdigit():
                    i += 1
                    continue
                parts.append(text[start:i].strip())
                start = i + 1
        if not ch.isspace():
            prev_nonspace = ch
        i += 1
    parts.append(text[start:].strip())
    return [p for p in parts if p]


class UnitPass:
    def __init__(self, files, graph):
        self.files = files
        self.graph = graph
        self.envs = {id(f): _FuncEnv(f) for f in graph.functions}
        # name -> tag agreed by every same-named function, else None.
        self.return_tags = {}
        self.findings = []

    # -- expression tag inference --------------------------------------

    def expr_tag(self, env, expr, depth=0):
        """Best-effort tag of an expression ('' receiver chains, calls,
        casts). Returns a tag string or None (unknown)."""
        if depth > 6 or not expr:
            return None
        expr = _strip_outer_parens(expr)
        # static_cast<T>(e) is transparent.
        m = re.match(r"^static_cast\s*<[^>]*>\s*\((.*)\)$", expr)
        if m:
            return self.expr_tag(env, m.group(1), depth + 1)
        # Named conversions produce their target dimension — whether
        # called on a variable (`ms.ToLog()`), a temporary
        # (`Millis(x).ToLog()`), or statically (`Millis::FromLog(e)`).
        m = re.search(r"(?:\.|->|::)(ToLog|FromLog|FromRows)\s*"
                      r"\((?:[^()]|\([^()]*\))*\)$", expr)
        if m:
            return _CONVERSIONS[m.group(1)]
        # Unit constructor: Millis(e) — tags as that unit (rule (b)
        # checks the operand elsewhere). The opening paren must close at
        # the end of the expression, or this is a longer chain.
        m = re.match(r"^(?:zerodb\s*::\s*)?(\w+)\s*\(", expr)
        if m and m.group(1) in UNIT_TAGS \
                and _closes_at_end(expr, m.end() - 1):
            return UNIT_TAGS[m.group(1)]
        # x.value() unwraps the representation but keeps the dimension:
        # `ms.value() - rows.value()` is still a unit mix.
        m = re.match(r"^(.*?)(?:\.|->)value\s*\(\s*\)$", expr)
        if m:
            return self.expr_tag(env, m.group(1), depth + 1)
        # Plain variable (possibly dereferenced StatusOr / iterator).
        base = expr.lstrip("*&").strip()
        if _IDENT_RE.match(base):
            return env.tags.get(base)
        # Member access `a.b` / indexing `v[i]`: use the terminal symbol
        # only when the whole chain is a declared local; otherwise
        # unknown.
        m = re.match(r"^([A-Za-z_]\w*)\s*\[[^\]]*\]$", expr)
        if m:
            return env.tags.get(m.group(1))
        # Free/member call: interprocedural return-tag summary, but only
        # when every same-named candidate agrees.
        m = re.match(r"^(?:[A-Za-z_]\w*(?:\.|->|::))*([A-Za-z_]\w*)\s*\(",
                     expr)
        if m and expr.endswith(")"):
            return self.return_tags.get(m.group(1))
        return None

    # -- fixpoint over return tags -------------------------------------

    def _infer_return_tag(self, env):
        if env.return_tag_decl:
            return env.return_tag_decl
        tags = set()
        for stmt in env.func.stmts:
            m = re.match(r"^return\b(.*)$", stmt.text)
            if not m:
                continue
            expr = m.group(1).strip()
            if not expr:
                return None
            tags.add(self.expr_tag(env, expr))
        if len(tags) == 1:
            return tags.pop()
        return None

    def _seed_locals(self, env):
        """One forward sweep: local declarations and `auto x = expr`
        assignments extend the environment."""
        decl_re = re.compile(
            r"^(?:const\s+)?(?P<type>[\w:<>,\s]+?[&\s])\s*"
            r"(?P<name>[A-Za-z_]\w*)\s*(?:=\s*(?P<init>.*)|\((?P<ctor>.*)\)"
            r"|\{(?P<brace>.*)\})?$")
        for stmt in env.func.stmts:
            m = decl_re.match(stmt.text)
            if not m:
                continue
            name = m.group("name")
            type_text = m.group("type").strip()
            tag = type_tag(type_text)
            if tag:
                env.tags.setdefault(name, tag)
                continue
            if type_text in ("auto", "const auto", "auto&", "const auto&"):
                init = m.group("init") or m.group("ctor") \
                    or m.group("brace")
                if init:
                    inferred = self.expr_tag(env, init.strip())
                    if inferred:
                        env.tags.setdefault(name, inferred)

    def run_fixpoint(self):
        for _ in range(_FIXPOINT_LIMIT):
            changed = False
            for func in self.graph.functions:
                env = self.envs[id(func)]
                before = dict(env.tags)
                self._seed_locals(env)
                if env.tags != before:
                    changed = True
            new_returns = {}
            for name, candidates in self.graph.by_name.items():
                tags = {self._infer_return_tag(self.envs[id(f)])
                        for f in candidates}
                new_returns[name] = tags.pop() if len(tags) == 1 else None
            if new_returns != self.return_tags:
                self.return_tags = new_returns
                changed = True
            if not changed:
                break

    # -- conviction rules ----------------------------------------------

    def _flag(self, func, line, message):
        fir = self.files.get(func.rel)
        if fir is not None and fir.suppressed(line, "unit-mix"):
            return
        self.findings.append(Finding(func.rel, line, "unit-mix", message))

    def check(self):
        self.run_fixpoint()
        for func in self.graph.functions:
            env = self.envs[id(func)]
            self._check_calls(func, env)
            self._check_arith(func, env)
            self._check_returns(func, env)
        return self.findings

    def _check_calls(self, func, env):
        for call in func.calls:
            # Rule (b): re-tagging through a unit constructor,
            # e.g. Millis(rows) — dimensions only change via ToLog /
            # FromLog / FromRows.
            if call.name in UNIT_TAGS and len(call.args) == 1:
                want = UNIT_TAGS[call.name]
                got = self.expr_tag(env, call.args[0])
                if got and got != want:
                    self._flag(
                        func, call.line,
                        f"`{call.name}({call.args[0]})` re-tags a "
                        f"{got}-typed value as {want} without a named "
                        "conversion (ToLog/FromLog/FromRows, "
                        "common/units.h)")
                continue
            if call.name in _CONVERSIONS:
                continue
            # Rule (a): tagged argument into a differently-declared unit
            # parameter. Same-named overloads are merged by the text
            # frontend, so convict only when every candidate conflicts.
            candidates = self.graph.resolve(call.name)
            if not candidates:
                continue
            for arg_idx, arg in enumerate(call.args):
                got = self.expr_tag(env, arg)
                if not got:
                    continue
                wants = set()
                for cand in candidates:
                    if arg_idx >= len(cand.params):
                        wants.add(None)
                        continue
                    wants.add(type_tag(cand.params[arg_idx].type_text))
                if None in wants or got in wants or not wants:
                    continue
                want = sorted(w for w in wants if w)[0]
                self._flag(
                    func, call.line,
                    f"{got}-tagged argument `{arg}` flows into "
                    f"parameter {arg_idx + 1} of `{call.name}` declared "
                    f"as {want}; convert explicitly (common/units.h) or "
                    "fix the call")

    def _check_arith(self, func, env):
        for stmt in func.stmts:
            text = stmt.text
            # Only the right-hand side of an assignment / the bare
            # expression; skip declarations' type part.
            if "=" in text:
                text = text.split("=", 1)[1]
            if text.startswith("return"):
                text = text[len("return"):]
            operands = _split_top(text)
            if len(operands) < 2:
                continue
            tags = []
            for op in operands:
                tags.append(self.expr_tag(env, op))
            known = [(op, t) for op, t in zip(operands, tags) if t]
            for i in range(len(known) - 1):
                if known[i][1] != known[i + 1][1]:
                    a, b = known[i], known[i + 1]
                    self._flag(
                        func, stmt.line,
                        f"adding/subtracting {a[1]} (`{a[0]}`) and "
                        f"{b[1]} (`{b[0]}`) mixes dimensions; convert "
                        "through the named conversions in common/units.h "
                        "first")
                    break

    def _check_returns(self, func, env):
        # Rule (d): declared unit return type vs differently-tagged
        # return expression.
        want = env.return_tag_decl
        if not want:
            return
        for stmt in func.stmts:
            m = re.match(r"^return\b(.*)$", stmt.text)
            if not m:
                continue
            got = self.expr_tag(env, m.group(1).strip())
            if got and got != want:
                self._flag(
                    func, stmt.line,
                    f"`{func.qualified}` declares a {want} return but "
                    f"this path returns a {got}-tagged value")


def check_units(files, graph):
    return UnitPass(files, graph).check()


# --- statusor-deref ----------------------------------------------------

_STATUSOR_DECL_RE = re.compile(r"\bStatusOr\s*<")
_STATUS_DECL_RE = re.compile(r"^(?:const\s+)?(?:\w+::)*Status\s*[&]?\s+$")

_CHECK_MACROS = ("ZDB_CHECK_OK", "ZDB_DCHECK_OK", "ZDB_RETURN_NOT_OK",
                 "ZDB_ASSERT_OK", "ASSERT_OK", "EXPECT_OK")


def _returns_statusor(func):
    return bool(_STATUSOR_DECL_RE.search(func.return_type))


def _returns_status(func):
    return bool(re.match(r"^(?:\w+::)*Status\s*$",
                         func.return_type.strip()))


def check_statusor(files, graph):
    findings = []
    statusor_fns, status_fns = set(), set()
    for name, candidates in graph.by_name.items():
        if candidates and all(_returns_statusor(f) for f in candidates):
            statusor_fns.add(name)
        if candidates and all(_returns_status(f) for f in candidates):
            status_fns.add(name)

    for func in graph.functions:
        fir = files.get(func.rel)

        # Discover StatusOr/Status locals: explicit declarations, or
        # `auto x = f(...)` where the call graph knows f's return type
        # (the interprocedural part).
        so_vars, st_vars = {}, {}  # name -> decl line
        decl_from_call = {}        # name -> callee
        for stmt in func.stmts:
            m = re.match(
                r"^(?:const\s+)?(?P<type>[\w:<>,\s]+?)\s+"
                r"(?P<name>[A-Za-z_]\w*)\s*=\s*(?P<init>.*)$", stmt.text)
            if m:
                type_text, name, init = (m.group("type"), m.group("name"),
                                         m.group("init"))
                callee = re.match(
                    r"^(?:[A-Za-z_]\w*(?:\.|->|::))*([A-Za-z_]\w*)\s*\(",
                    init)
                if _STATUSOR_DECL_RE.search(type_text):
                    so_vars[name] = stmt.line
                elif re.match(r"^(?:\w+::)*Status$", type_text.strip()):
                    st_vars[name] = stmt.line
                elif type_text.strip() in ("auto", "const auto", "auto&&",
                                           "const auto&") and callee:
                    if callee.group(1) in statusor_fns:
                        so_vars[name] = stmt.line
                        decl_from_call[name] = callee.group(1)
                    elif callee.group(1) in status_fns:
                        st_vars[name] = stmt.line
                        decl_from_call[name] = callee.group(1)
                if callee and name in so_vars:
                    decl_from_call.setdefault(name, callee.group(1))

        if not so_vars and not st_vars:
            continue

        checked = {}    # name -> first line where ok-ness is established
        used = set()    # names mentioned after their declaration
        deref_sites = []  # (name, line)
        for stmt in func.stmts:
            text = stmt.text
            for name in list(so_vars) + list(st_vars):
                if not re.search(r"\b" + re.escape(name) + r"\b", text):
                    continue
                decl_line = so_vars.get(name, st_vars.get(name))
                if stmt.line == decl_line and re.match(
                        r"^(?:const\s+)?[\w:<>,\s]+?\s+"
                        + re.escape(name) + r"\s*=", text):
                    continue  # the declaration itself
                used.add(name)
                esc = re.escape(name)
                establishes = (
                    re.search(r"\b" + esc + r"\s*(?:\.|->)\s*ok\s*\(", text)
                    or any(re.search(r"\b" + macro + r"\s*\(\s*" + esc
                                     + r"\b", text)
                           for macro in _CHECK_MACROS)
                    or re.search(r"\breturn\s+" + esc
                                 + r"\b(?!\s*(?:\.|->|\[))", text)
                    or re.search(r"\breturn\s+std::move\s*\(\s*" + esc,
                                 text))
                if establishes:
                    checked.setdefault(name, stmt.line)
                if name in so_vars:
                    deref = (
                        re.search(r"\b" + esc + r"\s*(?:\.|->)\s*value\s*\(",
                                  text)
                        or re.match(r"^\*\s*" + esc + r"\b", text)
                        or re.search(r"[(,=]\s*\*\s*" + esc + r"\b", text))
                    if deref:
                        deref_sites.append((name, stmt.line))

        for name, line in deref_sites:
            if name in checked and checked[name] <= line:
                continue
            if fir is not None and fir.suppressed(line, "statusor-deref"):
                continue
            origin = decl_from_call.get(name)
            via = f" (returned by `{origin}`)" if origin else ""
            findings.append(Finding(
                func.rel, line, "statusor-deref",
                f"`{name}`{via} is dereferenced before `{name}.ok()` is "
                "established on this path; a failed Status here aborts — "
                "check ok() or use ZDB_ASSIGN_OR_RETURN"))

        # Status/StatusOr received from a callee and then never looked at
        # again: the error crosses this function's boundary unchecked.
        for name, decl_line in list(so_vars.items()) + list(st_vars.items()):
            if name in used or name not in decl_from_call:
                continue
            if fir is not None and \
                    fir.suppressed(decl_line, "statusor-deref"):
                continue
            findings.append(Finding(
                func.rel, decl_line, "statusor-deref",
                f"`{name}` holds the Status of `{decl_from_call[name]}` "
                "but is never checked, returned or forwarded — the error "
                "silently dies in this frame"))
    return findings


# --- hot-alloc ---------------------------------------------------------

_ALLOC_RE = re.compile(
    r"(?:^|[\s(,=])new\s+[A-Za-z_]|\bmake_unique\s*<|\bmake_shared\s*<")
_GROWTH_METHODS = ("push_back", "emplace_back", "insert", "resize")

# Pool-API allow-list: the nn arena/buffer-pool implementation IS the
# hoisted allocation — its slow paths (slab growth, bucket miss, heap
# fallback when no arena is active) allocate precisely so the per-row call
# sites don't. Exempting these functions here, by qualified name, keeps the
# pool sources free of inline suppression pragmas while the rule stays
# strict for everything that merely *uses* the pool.
_POOL_API_PREFIXES = ("GraphArena::", "BufferPool")
_POOL_API_NAMES = frozenset({
    "AcquirePooledFloats", "AcquirePooledIndices",
    "ReleasePooledFloats", "ReleasePooledIndices",
    "MakeNode", "MakeOpResult",
})


def _pool_api(func):
    qualified = func.qualified or func.name
    return (qualified.startswith(_POOL_API_PREFIXES)
            or func.name in _POOL_API_NAMES)


def _hot_roots(graph):
    """Per-row entry points: the executor's Exec*/Next functions and the
    trainer's per-shard loop body."""
    roots = []
    for func in graph.functions:
        if func.module == "exec" and (func.name.startswith("Exec")
                                      or func.name == "Next"):
            roots.append(func)
        elif func.module == "train" and func.name == "RunShard":
            roots.append(func)
    return roots


def _propagate_hotness(graph):
    """Returns {func_name: 'plain' | 'loop'}. Roots start 'plain' (only
    their in-loop statements are per-row); a callee invoked from a hot
    function's loop is 'loop' (its entire body is per-row), and 'loop'
    propagates to every callee."""
    hotness = {}
    worklist = []
    for root in _hot_roots(graph):
        if hotness.get(root.name) != "plain":
            hotness.setdefault(root.name, "plain")
            worklist.append(root.name)
    while worklist:
        name = worklist.pop()
        level = hotness[name]
        for func in graph.by_name.get(name, []):
            for call in func.calls:
                if call.name not in graph.by_name:
                    continue
                callee_level = "loop" if (level == "loop" or call.in_loop) \
                    else None
                if callee_level is None:
                    continue
                if hotness.get(call.name) != "loop":
                    hotness[call.name] = "loop"
                    worklist.append(call.name)
    return hotness


def _recv_base(recv):
    """Receiver chain with index expressions erased, so `cols[g]` and
    `cols[c]` (a reserve in a sibling loop) compare equal."""
    return re.sub(r"\[[^\]]*\]", "[]", recv).replace(" ", "")


def check_hot_alloc(files, graph):
    findings = []
    hotness = _propagate_hotness(graph)
    flagged = set()
    for func in graph.functions:
        level = hotness.get(func.name)
        if level is None:
            continue
        if _pool_api(func):
            continue
        fir = files.get(func.rel)
        reserved = {_recv_base(c.recv) for c in func.calls
                    if c.name == "reserve" and c.recv}
        root_note = ("reachable from a per-row executor/trainer loop"
                     if level == "loop"
                     else "inside this per-row loop")
        for stmt in func.stmts:
            if level == "plain" and not stmt.in_loop:
                continue
            site = None
            if _ALLOC_RE.search(stmt.text):
                site = "heap allocation"
            else:
                for call in calls_for_stmt(func, stmt):
                    if call.name in _GROWTH_METHODS and call.recv:
                        if _recv_base(call.recv) in reserved:
                            continue  # capacity established up front
                        site = (f"`{call.recv}.{call.name}()` growth "
                                "without a prior reserve")
                        break
            if site is None:
                continue
            key = (func.rel, stmt.line)
            if key in flagged:
                continue
            if fir is not None and fir.suppressed(stmt.line, "hot-alloc"):
                continue
            flagged.add(key)
            findings.append(Finding(
                func.rel, stmt.line, "hot-alloc",
                f"{site} in `{func.qualified}`, {root_note}; allocation "
                "per row dominates tight scan/join/training loops — hoist "
                "the buffer or reserve() outside the loop"))
    return findings


def calls_for_stmt(func, stmt):
    return [c for c in func.calls if c.line == stmt.line]


# --- entry point -------------------------------------------------------

def run(files):
    """All three interprocedural passes; returns sorted findings."""
    graph = callgraph.build(files)
    findings = []
    findings.extend(check_units(files, graph))
    findings.extend(check_statusor(files, graph))
    findings.extend(check_hot_alloc(files, graph))
    findings.sort(key=lambda f: (f.rel, f.line, f.rule))
    return findings
