"""The five whole-program checks of zerodb-analyzer.

Each check consumes the merged micro-IR (`{rel: FileIR}`) produced by
either frontend and yields ir.Finding objects. Suppression
(`// zerodb-lint: allow(<rule>)` on the line or the line above) is applied
here so both frontends behave identically.

Rules:
  nondet-call       banned nondeterminism source (clocks, rand, getenv,
                    random_device) outside the allowlist
                    (src/common/rng.*, src/obs/, bench/)
  nondet-iter       range-for over an unordered container whose body
                    reaches an order-sensitive sink (serialization or
                    sequence accumulation)
  lock-order        cycle in the cross-TU lock acquisition-order graph
  lifetime-return   std::string_view / reference return bound to a
                    function-local or temporary
  lifetime-member   class stores a string_view or reference member
  layering          #include edge that points *up* the module DAG
  discarded-status  statement-level call to a Status/StatusOr-returning
                    function (including through aliases) whose result is
                    dropped
  unit-mix          interprocedural dimensional analysis over the
                    common/units.h tag lattice (see dataflow.py)
  statusor-deref    StatusOr dereferenced on a path where ok() was never
                    established; Status results that die unchecked
  hot-alloc         allocation/container growth reachable from per-row
                    executor/trainer loops (see dataflow.py)
"""

import re

from . import dataflow
from .ir import Finding, strip_code

ALL_RULES = ("nondet-call", "nondet-iter", "lock-order", "lifetime-return",
             "lifetime-member", "layering", "discarded-status",
             "unit-mix", "statusor-deref", "hot-alloc")

# Module DAG, bottom (most fundamental) to top: an #include may only point
# at a strictly earlier module. This is the architecture contract from
# DESIGN.md: common -> obs -> {storage, stats, plan, ...} -> {optimizer,
# exec, train, zeroshot, whatif}.
MODULE_ORDER = (
    "common", "obs", "nn", "catalog", "storage", "plan", "stats",
    "datagen", "sql", "exec", "runtime", "workload", "featurize", "models",
    "optimizer", "train", "zeroshot", "whatif")
_MODULE_INDEX = {module: i for i, module in enumerate(MODULE_ORDER)}

# -- determinism audit -------------------------------------------------

# Fully-qualified call spellings that read ambient nondeterministic state.
BANNED_QUALIFIED = frozenset((
    "time", "::time", "std::time", "clock", "std::clock", "gettimeofday",
    "clock_gettime", "rand", "srand", "std::rand", "std::srand", "random",
    "rand_r", "getenv", "std::getenv", "secure_getenv", "mkstemp",
    "tmpnam", "localtime", "localtime_r"))
BANNED_CLOCK_SUFFIX = "_clock::now"

# Order-sensitive sinks: feeding them from unordered iteration makes the
# produced artifact depend on hash-table layout. Commutative sinks
# (counter Add, set insert, numeric min/max) are deliberately absent.
SINK_RE = re.compile(
    r"\b(?:ToJson|Append|Set|push_back|emplace_back|RenderPrometheus|"
    r"WriteTo|Serialize|AppendTo|Write)\s*\(|<<|\+=")

UNORDERED_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)\b")


def _determinism_allowlisted(rel):
    return (rel.startswith("src/obs/")
            or rel.startswith("src/common/rng.")
            or rel.startswith("bench/"))


def check_determinism(files):
    findings = []
    for rel in sorted(files):
        fir = files[rel]
        if _determinism_allowlisted(rel):
            continue
        for call in fir.calls:
            banned = (call.qualified in BANNED_QUALIFIED
                      or call.qualified.endswith(BANNED_CLOCK_SUFFIX)
                      or call.name == "random_device")
            if banned and not fir.suppressed(call.line, "nondet-call"):
                findings.append(Finding(
                    rel, call.line, "nondet-call",
                    f"call to nondeterministic `{call.qualified}`; clocks, "
                    "rand and env reads are confined to src/common/rng.*, "
                    "src/obs/ and bench/ so training/serving stays "
                    "bit-reproducible (route timing through obs, "
                    "randomness through zerodb::Rng)"))
        for name, type_text in fir.decl_types.items():
            if "random_device" in type_text:
                line = _decl_line(fir, name, "random_device")
                if line and not fir.suppressed(line, "nondet-call"):
                    findings.append(Finding(
                        rel, line, "nondet-call",
                        f"`std::random_device` object `{name}`; draw seeds "
                        "from zerodb::Rng (common/rng.h) so runs replay"))
        code = None
        for loop in fir.range_fors:
            unordered = (UNORDERED_RE.search(loop.container_type or "")
                         or UNORDERED_RE.search(loop.container or ""))
            if not unordered:
                continue
            if code is None:
                code = strip_code(fir.raw_lines)
            body = "\n".join(
                code[loop.body_begin - 1:loop.body_end])
            if SINK_RE.search(body) and \
                    not fir.suppressed(loop.line, "nondet-iter"):
                findings.append(Finding(
                    rel, loop.line, "nondet-iter",
                    f"range-for over unordered container "
                    f"`{loop.container.strip()}` feeds an order-sensitive "
                    "sink; iteration order is a hash-table artifact — "
                    "collect and sort keys first so exported bytes are "
                    "stable across runs and libstdc++ versions"))
    return findings


def _decl_line(fir, name, type_fragment):
    pattern = re.compile(
        r"\b" + re.escape(type_fragment) + r"\b.*\b" + re.escape(name)
        + r"\b")
    for idx, line in enumerate(fir.raw_lines):
        if pattern.search(line):
            return idx + 1
    return 0


# -- lock-order --------------------------------------------------------

def build_lock_graph(files):
    """Returns {(held, acquired): (rel, line)} — the first site where
    `acquired` was taken while `held` was held."""
    edges = {}
    for rel in sorted(files):
        fir = files[rel]
        if rel.startswith("src/common/sync."):
            continue  # the wrapper's own internals
        locks = sorted(fir.locks, key=lambda acquire: acquire.line)
        for i, held in enumerate(locks):
            for acquired in locks[i + 1:]:
                if acquired.line > held.held_until:
                    break
                if acquired.line >= held.line:
                    key = (held.lock_id, acquired.lock_id)
                    edges.setdefault(key, (rel, acquired.line))
    return edges


def _find_cycles(edges):
    """Tarjan SCCs over the lock graph; returns the set of edges that sit
    inside a cycle (SCC of size > 1, or a self-loop)."""
    graph = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())
    index_of, low, on_stack = {}, {}, set()
    stack, sccs = [], []
    counter = [0]

    def strongconnect(v):
        work = [(v, iter(sorted(graph[v])))]
        index_of[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                sccs.append(component)

    for vertex in sorted(graph):
        if vertex not in index_of:
            strongconnect(vertex)

    cyclic = set()
    for component in sccs:
        if len(component) > 1:
            for (a, b) in edges:
                if a in component and b in component:
                    cyclic.add((a, b))
    for (a, b) in edges:  # self-loop: nested acquisition of one lock
        if a == b:
            cyclic.add((a, b))
    return cyclic


def check_lock_order(files):
    edges = build_lock_graph(files)
    cyclic = _find_cycles(edges)
    findings = []
    for (a, b) in sorted(cyclic):
        rel, line = edges[(a, b)]
        fir = files[rel]
        if fir.suppressed(line, "lock-order"):
            continue
        if a == b:
            message = (f"`{a}` acquired while already held — "
                       "zerodb::Mutex is not reentrant, this self-deadlocks")
        else:
            message = (f"acquiring `{b}` while holding `{a}` closes a "
                       "lock-order cycle; some other code path takes these "
                       "locks in the opposite order (see lock_order.dot) — "
                       "pick one global order and restructure")
        findings.append(Finding(rel, line, "lock-order", message))
    return findings, edges, cyclic


def lock_graph_dot(edges, cyclic):
    lines = ["digraph lock_order {",
             '  rankdir=LR;',
             '  node [shape=box, fontname="monospace"];']
    nodes = sorted({n for edge in edges for n in edge})
    for node in nodes:
        lines.append(f'  "{node}";')
    for (a, b) in sorted(edges):
        rel, line = edges[(a, b)]
        style = ' [color=red, penwidth=2]' if (a, b) in cyclic else ""
        lines.append(f'  "{a}" -> "{b}"'
                     f'{style};  // first: {rel}:{line}')
    lines.append("}")
    return "\n".join(lines) + "\n"


# -- lifetime ----------------------------------------------------------

# Expression shapes that materialize a temporary std::string.
_TEMP_STRING_RE = re.compile(
    r"std::string\s*\(|\.str\s*\(\s*\)|\+\s*\"\"|\"\"\s*\+|"
    r"std::to_string\s*\(")
_OWNING_LOCAL_RE = re.compile(
    r"\b(?:std::)?(?:string|vector|deque|map|set|unordered_\w+|"
    r"ostringstream|stringstream)\b")


def check_lifetime(files):
    findings = []
    for rel in sorted(files):
        fir = files[rel]
        for func in fir.functions:
            return_type = func.return_type
            is_view = "string_view" in return_type
            is_ref = return_type.rstrip().endswith("&")
            if not (is_view or is_ref):
                continue
            for ret in func.returns:
                if fir.suppressed(ret.line, "lifetime-return"):
                    continue
                expr = ret.expr
                flagged = False
                if ret.returns_local:
                    flagged = True
                elif ret.returns_local is None:
                    # Textual fallback: convict only when the named local
                    # *owns* its storage. Iterators, pointers and
                    # reference locals project into someone else's buffer
                    # (usually a member), which is fine.
                    base = _base_expr_identifier(expr)
                    local_type = func.locals.get(base, "")
                    flagged = (
                        _OWNING_LOCAL_RE.search(local_type) is not None
                        and "*" not in local_type
                        and not local_type.rstrip().endswith("&"))
                if not flagged and is_view and expr and \
                        _TEMP_STRING_RE.search(expr):
                    flagged = True
                if flagged:
                    kind = ("std::string_view" if is_view
                            else f"reference ({return_type.strip()})")
                    findings.append(Finding(
                        rel, ret.line, "lifetime-return",
                        f"`{func.qualified or func.name}` returns a {kind} "
                        f"bound to function-local storage (`{expr}`); the "
                        "view dangles the moment the frame is gone — "
                        "return by value or take the buffer from the "
                        "caller"))
        for cls in fir.classes:
            for member in cls.members:
                if fir.suppressed(member.line, "lifetime-member"):
                    continue
                findings.append(Finding(
                    rel, member.line, "lifetime-member",
                    f"`{cls.name}::{member.name}` stores "
                    f"`{member.type_text}`; a view/reference member ties "
                    "the object's validity to an unowned buffer — store a "
                    "value (or document the lifetime contract and "
                    "suppress)"))
    return findings


def _base_expr_identifier(expr):
    m = re.match(r"\s*[&*]*\s*([A-Za-z_]\w*)", expr or "")
    return m.group(1) if m else ""


# -- layering ----------------------------------------------------------

def check_layering(files):
    findings = []
    for rel in sorted(files):
        fir = files[rel]
        module = fir.module or fir.fixture_module()
        if module not in _MODULE_INDEX:
            continue
        for include in fir.includes:
            dep = include.header.split("/")[0] if "/" in include.header \
                else ""
            if dep not in _MODULE_INDEX or dep == module:
                continue
            if _MODULE_INDEX[dep] > _MODULE_INDEX[module]:
                if fir.suppressed(include.line, "layering"):
                    continue
                findings.append(Finding(
                    rel, include.line, "layering",
                    f"module `{module}` (layer {_MODULE_INDEX[module]}) "
                    f"includes `{include.header}` from `{dep}` (layer "
                    f"{_MODULE_INDEX[dep]}): a back-edge in the module "
                    "DAG common -> obs -> {storage,stats,plan,...} -> "
                    "{optimizer,exec,train,zeroshot,whatif} — invert the "
                    "dependency (hooks/interface in the lower layer)"))
    return findings


# -- discarded Status --------------------------------------------------

def check_discarded_status(files):
    status_fns, non_status_fns = set(), set()
    for fir in files.values():
        status_fns |= fir.status_fns
        non_status_fns |= fir.non_status_fns
    # Precision first: a name also declared with a non-Status return type
    # anywhere (overloads, unrelated helpers) is not convicted textually.
    convictable = status_fns - non_status_fns
    findings = []
    for rel in sorted(files):
        fir = files[rel]
        for call in fir.stmt_calls:
            if call.name not in convictable:
                continue
            if fir.suppressed(call.line, "discarded-status"):
                continue
            findings.append(Finding(
                rel, call.line, "discarded-status",
                f"result of Status-returning `{call.qualified}` is "
                "discarded (reached through an alias or macro the "
                "[[nodiscard]] regex gate cannot see); check it with "
                "ZDB_CHECK_OK or justify a (void) cast"))
    return findings


# -- driver ------------------------------------------------------------

def run_all(files):
    """Runs every check; returns (findings, lock_edges, cyclic_edges)."""
    findings = []
    findings.extend(check_determinism(files))
    lock_findings, edges, cyclic = check_lock_order(files)
    findings.extend(lock_findings)
    findings.extend(check_lifetime(files))
    findings.extend(check_layering(files))
    findings.extend(check_discarded_status(files))
    findings.extend(dataflow.run(files))
    findings.sort(key=lambda f: (f.rel, f.line, f.rule))
    return findings, edges, cyclic
