"""Frontend-neutral micro-IR for zerodb-analyzer.

Both frontends (libclang in clangparse.py, the lexical fallback in
textparse.py) lower a translation unit into these structures; every check
in checks.py consumes only this IR, so findings stay frontend-agnostic and
the self-test fixtures pin one behavior.

Line numbers are 1-based throughout (matching compiler diagnostics).
"""

import re
from dataclasses import dataclass, field

from . import suppress

# Shared suppression syntax with zerodb_lint.py (one parser, one behavior:
# see analysis/suppress.py): `// zerodb-lint: allow(rule)` — or a
# comma-separated list, spaces allowed — on the offending line or the line
# directly above it.
SUPPRESS_RE = suppress.SUPPRESS_RE

# Fixture-only markers (see scripts/lint_fixtures/analyzer/):
#   // expect-analyzer: <rule>           this line must be flagged
#   // analyzer-fixture: module(<name>)  pretend the file lives in src/<name>/
EXPECT_RE = re.compile(r"//\s*expect-analyzer:\s*([a-z-]+)")
MODULE_MARKER_RE = re.compile(r"//\s*analyzer-fixture:\s*module\(([a-z_]+)\)")


@dataclass
class CallSite:
    """One call expression: `name` is the unqualified callee, `qualified`
    keeps whatever qualification the frontend saw (`std::chrono::
    steady_clock::now`, `obs::MetricsRegistry::Global`, ...)."""

    name: str
    qualified: str
    line: int


@dataclass
class LockAcquire:
    """One RAII `MutexLock guard(&expr)` (or explicit `expr.Lock()`).
    `lock_id` is the canonical cross-TU identity of the lock object;
    `held_until` is the last line of the scope holding it."""

    lock_id: str
    line: int
    held_until: int


@dataclass
class RangeFor:
    """A range-based for; `container` is the source text of the range
    expression, `container_type` the declared type when the frontend could
    resolve it (empty otherwise). Body spans [body_begin, body_end]."""

    container: str
    container_type: str
    line: int
    body_begin: int
    body_end: int


@dataclass
class ReturnStmt:
    """`expr` is the returned expression's source text ('' for bare
    return). `returns_local` is set when the frontend proved the value is
    a function-local variable (libclang) — the textual frontend leaves it
    None and the check falls back to matching `expr` against `locals`."""

    expr: str
    line: int
    returns_local: "bool | None" = None


@dataclass
class Function:
    """Functions are only materialized for the lifetime check (return type
    + body-local variables); calls/locks/loops live on FileIR because the
    lock-scope stack and the determinism audit don't need function
    identity."""

    name: str
    qualified: str
    return_type: str
    line: int
    end_line: int
    returns: "list[ReturnStmt]" = field(default_factory=list)
    # local (non-static) variable name -> declared type text
    locals: "dict[str, str]" = field(default_factory=dict)


@dataclass
class Member:
    type_text: str
    name: str
    line: int


@dataclass
class ClassDecl:
    name: str
    line: int
    members: "list[Member]" = field(default_factory=list)


@dataclass
class Include:
    header: str  # as written: "exec/executor.h"
    line: int
    system: bool = False  # <...> includes


@dataclass
class FileIR:
    """Everything the checks need to know about one source file."""

    path: str  # absolute
    rel: str  # repo-relative, '/'-separated
    module: str  # "exec" for src/exec/..., "" when not a module file
    raw_lines: "list[str]" = field(default_factory=list)
    includes: "list[Include]" = field(default_factory=list)
    functions: "list[Function]" = field(default_factory=list)
    classes: "list[ClassDecl]" = field(default_factory=list)
    calls: "list[CallSite]" = field(default_factory=list)
    # expression-statements that are a single call (result discarded)
    stmt_calls: "list[CallSite]" = field(default_factory=list)
    locks: "list[LockAcquire]" = field(default_factory=list)
    range_fors: "list[RangeFor]" = field(default_factory=list)
    # every declaration seen in the file (locals, members, globals):
    # variable name -> declared type text, for range-for type resolution
    decl_types: "dict[str, str]" = field(default_factory=dict)
    # `using Alias = zerodb::Status;` / typedef equivalents
    status_aliases: "set[str]" = field(default_factory=set)
    # names declared in this file with a Status/StatusOr return type
    status_fns: "set[str]" = field(default_factory=set)
    # names also declared with a non-Status return type somewhere (used to
    # keep the textual discarded-status check precise on overloads)
    non_status_fns: "set[str]" = field(default_factory=set)

    def suppressed(self, line: int, rule: str) -> bool:
        """True when `line` (1-based) or the line above carries
        `// zerodb-lint: allow(...)` naming `rule`."""
        return suppress.suppressed(self.raw_lines, line - 1, rule)

    def expected_findings(self) -> "set[tuple[int, str]]":
        expected = set()
        for idx, line in enumerate(self.raw_lines):
            for m in EXPECT_RE.finditer(line):
                expected.add((idx + 1, m.group(1)))
        return expected

    def fixture_module(self) -> "str | None":
        for line in self.raw_lines[:10]:
            m = MODULE_MARKER_RE.search(line)
            if m:
                return m.group(1)
        return None


@dataclass
class Finding:
    rel: str
    line: int
    rule: str
    message: str

    def __str__(self):
        return f"{self.rel}:{self.line}: [{self.rule}] {self.message}"


def module_of(rel: str) -> str:
    """src/exec/executor.cc -> "exec"; anything else -> ""."""
    parts = rel.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return ""


def strip_code(lines):
    """Blanks comments and string/char literals so token scans only see
    code. Tracks /* */ across lines; same contract as zerodb_lint."""
    stripped = []
    in_block = False
    for line in lines:
        out = []
        i = 0
        n = len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                break
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch in "\"'":
                quote = ch
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        i += 1
                        break
                    i += 1
                out.append(quote + quote)
                continue
            out.append(ch)
            i += 1
        stripped.append("".join(out))
    return stripped
