"""libclang (clang.cindex) frontend for zerodb-analyzer.

Parses real translation units from compile_commands.json and lowers the
AST into the same micro-IR the textual frontend produces, with two
precision upgrades the checks exploit automatically:

  - lock identity is the *semantic* member (`zerodb::obs::MetricsRegistry::
    mu_`), so same-named locks on different classes stay distinct nodes in
    the lock-order graph
  - `ReturnStmt.returns_local` is proven from the AST (a DeclRefExpr whose
    referenced VarDecl lives in the function), instead of matched by name

Availability is probed lazily: `load()` returns the clang.cindex module or
raises FrontendUnavailable with a human-readable reason. Any parse-time
exception is converted into FrontendUnavailable too, so the driver can
degrade to the textual frontend instead of crashing a CI job on a
libclang/ABI mismatch.
"""

import glob
import os

from . import ir


class FrontendUnavailable(Exception):
    pass


_cindex = None


def load():
    """Imports clang.cindex and makes sure libclang is loadable. Returns
    the module; raises FrontendUnavailable otherwise."""
    global _cindex
    if _cindex is not None:
        return _cindex
    try:
        from clang import cindex
    except ImportError as error:
        raise FrontendUnavailable(
            f"python3-clang is not installed ({error})") from error
    try:
        cindex.Index.create()
    except Exception:  # noqa: BLE001 - probe alternate libclang paths
        candidates = sorted(
            glob.glob("/usr/lib/llvm-*/lib/libclang-*.so*")
            + glob.glob("/usr/lib/llvm-*/lib/libclang.so*")
            + glob.glob("/usr/lib/x86_64-linux-gnu/libclang-*.so*"),
            reverse=True)
        for candidate in candidates:
            try:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(candidate)
                cindex.Index.create()
                break
            except Exception:  # noqa: BLE001
                continue
        else:
            raise FrontendUnavailable(
                "clang.cindex imports but libclang.so could not be loaded")
    _cindex = cindex
    return cindex


def _filter_args(command_args):
    """Compile-command argv -> libclang args (drop compiler, -c/-o pairs,
    the source file itself)."""
    args = []
    skip_next = False
    for arg in command_args[1:]:
        if skip_next:
            skip_next = False
            continue
        if arg in ("-c", "-o"):
            skip_next = arg == "-o"
            continue
        if arg.endswith((".cc", ".cpp", ".o")):
            continue
        args.append(arg)
    return args


def _qualified_name(cursor):
    parts = []
    node = cursor
    while node is not None and node.spelling:
        kind = node.kind.name
        if kind in ("TRANSLATION_UNIT",):
            break
        parts.append(node.spelling)
        node = node.semantic_parent
    return "::".join(reversed(parts))


def _extent_lines(cursor):
    return cursor.extent.start.line, cursor.extent.end.line


class _TuLowering:
    def __init__(self, cindex, repo_root, file_cache):
        self.cindex = cindex
        self.repo_root = repo_root
        self.files = file_cache  # rel -> FileIR (merged across TUs)

    def file_ir(self, location_file):
        path = os.path.realpath(str(location_file))
        if not path.startswith(self.repo_root + os.sep):
            return None
        rel = os.path.relpath(path, self.repo_root).replace(os.sep, "/")
        if rel in self.files:
            return self.files[rel]
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                raw_lines = f.read().splitlines()
        except OSError:
            return None
        fir = ir.FileIR(path=path, rel=rel, module=ir.module_of(rel),
                        raw_lines=raw_lines)
        fir.clang_seen = set()  # dedup across TUs re-parsing one header
        self.files[rel] = fir
        return fir

    def seen(self, fir, key):
        if key in fir.clang_seen:
            return True
        fir.clang_seen.add(key)
        return False

    def lower_tu(self, tu):
        for include in tu.get_includes():
            fir = self.file_ir(include.location.file)
            if fir is None:
                continue
            header = str(include.include)
            for prefix in (os.path.join(self.repo_root, "src") + os.sep,
                           self.repo_root + os.sep):
                real = os.path.realpath(header)
                if real.startswith(prefix):
                    header = real[len(prefix):].replace(os.sep, "/")
                    break
            if not self.seen(fir, ("inc", include.location.line, header)):
                fir.includes.append(ir.Include(
                    header=header, line=include.location.line))
        self.walk(tu.cursor, None, None)

    # -- AST walk ------------------------------------------------------

    def walk(self, node, enclosing_fn, enclosing_scope_end):
        kinds = self.cindex.CursorKind
        for child in node.get_children():
            if child.location.file is None:
                self.walk(child, enclosing_fn, enclosing_scope_end)
                continue
            fir = self.file_ir(child.location.file)
            if fir is None:
                continue
            kind = child.kind
            if kind in (kinds.FUNCTION_DECL, kinds.CXX_METHOD,
                        kinds.CONSTRUCTOR, kinds.DESTRUCTOR,
                        kinds.FUNCTION_TEMPLATE):
                self.lower_function(fir, child)
            elif kind in (kinds.CLASS_DECL, kinds.STRUCT_DECL,
                          kinds.CLASS_TEMPLATE):
                self.lower_class(fir, child)
                self.walk(child, enclosing_fn, enclosing_scope_end)
            else:
                self.walk(child, enclosing_fn, enclosing_scope_end)

    def lower_class(self, fir, cursor):
        kinds = self.cindex.CursorKind
        members = []
        for child in cursor.get_children():
            if child.kind != kinds.FIELD_DECL:
                continue
            type_spelling = child.type.spelling
            is_ref = child.type.kind in (
                self.cindex.TypeKind.LVALUEREFERENCE,
                self.cindex.TypeKind.RVALUEREFERENCE)
            if is_ref or "string_view" in type_spelling:
                members.append(ir.Member(type_text=type_spelling,
                                         name=child.spelling,
                                         line=child.location.line))
        if members and not self.seen(fir, ("cls", cursor.location.line,
                                           cursor.spelling)):
            fir.classes.append(ir.ClassDecl(
                name=cursor.spelling, line=cursor.location.line,
                members=members))

    def lower_function(self, fir, cursor):
        result = cursor.result_type.spelling
        name = cursor.spelling
        canonical_result = cursor.result_type.get_canonical().spelling
        base = canonical_result.replace("zerodb::", "").split("<")[0].strip()
        if base in ("Status", "StatusOr"):
            fir.status_fns.add(name)
        elif name:
            fir.non_status_fns.add(name)
        if not cursor.is_definition():
            return
        start, end = _extent_lines(cursor)
        func = None
        is_view = "string_view" in result or result.rstrip().endswith("&")
        if is_view and not self.seen(fir, ("fn", start, name)):
            func = ir.Function(name=name, qualified=_qualified_name(cursor),
                               return_type=result, line=start, end_line=end)
            fir.functions.append(func)
        self.lower_body(fir, cursor, func, end)

    def lower_body(self, fir, node, func, scope_end):
        kinds = self.cindex.CursorKind
        for child in node.get_children():
            loc_fir = fir
            if child.location.file is not None:
                loc_fir = self.file_ir(child.location.file) or fir
            kind = child.kind
            line = child.location.line
            if kind == kinds.CALL_EXPR:
                callee = child.referenced
                qualified = (_qualified_name(callee)
                             if callee is not None else child.spelling)
                if child.spelling and not self.seen(
                        loc_fir, ("call", line, child.spelling, id(node))):
                    loc_fir.calls.append(ir.CallSite(
                        name=child.spelling, qualified=qualified or
                        child.spelling, line=line))
                if node.kind == kinds.COMPOUND_STMT and child.spelling:
                    loc_fir.stmt_calls.append(ir.CallSite(
                        name=child.spelling, qualified=qualified or
                        child.spelling, line=line))
            elif kind == kinds.DECL_REF_EXPR and "random_device" in \
                    child.type.spelling:
                loc_fir.decl_types.setdefault(child.spelling,
                                              child.type.spelling)
            elif kind == kinds.VAR_DECL:
                type_spelling = child.type.spelling
                loc_fir.decl_types.setdefault(child.spelling, type_spelling)
                if func is not None and "static" not in [
                        t.spelling for t in child.get_tokens()][:1]:
                    func.locals.setdefault(child.spelling, type_spelling)
                if "MutexLock" in type_spelling:
                    lock_id = self.lock_identity(child)
                    if lock_id and not self.seen(
                            loc_fir, ("lock", line, lock_id)):
                        loc_fir.locks.append(ir.LockAcquire(
                            lock_id=lock_id, line=line,
                            held_until=scope_end))
            elif kind == kinds.CXX_FOR_RANGE_STMT:
                self.lower_range_for(loc_fir, child)
            elif kind == kinds.RETURN_STMT and func is not None:
                expr, returns_local = self.return_info(child, func)
                func.returns.append(ir.ReturnStmt(
                    expr=expr, line=line, returns_local=returns_local))
            if kind == kinds.COMPOUND_STMT:
                _, child_end = _extent_lines(child)
                self.lower_body(fir, child, func, child_end)
            else:
                self.lower_body(fir, child, func, scope_end)

    def lock_identity(self, var_decl):
        """Semantic identity of the lock a MutexLock guards: the qualified
        member/variable behind the `&expr` constructor argument."""
        kinds = self.cindex.CursorKind
        stack = list(var_decl.get_children())
        while stack:
            node = stack.pop()
            if node.kind in (kinds.MEMBER_REF_EXPR, kinds.DECL_REF_EXPR):
                referenced = node.referenced
                if referenced is not None and "Mutex" in \
                        referenced.type.spelling:
                    return _qualified_name(referenced) or node.spelling
            stack.extend(node.get_children())
        tokens = [t.spelling for t in var_decl.get_tokens()]
        return "".join(tokens[-4:-1]) if len(tokens) >= 4 else ""

    def lower_range_for(self, fir, cursor):
        children = list(cursor.get_children())
        if not children:
            return
        start, end = _extent_lines(cursor)
        range_expr = children[-2] if len(children) >= 2 else children[0]
        container_type = range_expr.type.get_canonical().spelling \
            if range_expr.type is not None else ""
        tokens = [t.spelling for t in range_expr.get_tokens()]
        if not self.seen(fir, ("rfor", start, end)):
            fir.range_fors.append(ir.RangeFor(
                container="".join(tokens[:8]),
                container_type=container_type,
                line=start, body_begin=start, body_end=end))

    def return_info(self, return_stmt, func):
        kinds = self.cindex.CursorKind
        tokens = [t.spelling for t in return_stmt.get_tokens()]
        expr = " ".join(tokens[1:]).rstrip(";").strip()
        stack = list(return_stmt.get_children())
        top_level = True
        while stack:
            node = stack.pop()
            if node.kind == kinds.DECL_REF_EXPR:
                referenced = node.referenced
                if referenced is not None and \
                        referenced.kind == kinds.VAR_DECL and \
                        referenced.spelling in func.locals:
                    # Only owning locals dangle: iterators, pointers and
                    # reference locals project into storage that outlives
                    # the frame (typically a member).
                    ref_type = referenced.type
                    type_kinds = self.cindex.TypeKind
                    owning = ref_type.kind not in (
                        type_kinds.POINTER,
                        type_kinds.LVALUEREFERENCE,
                        type_kinds.RVALUEREFERENCE) and \
                        "iterator" not in \
                        ref_type.get_canonical().spelling
                    if owning:
                        return expr, True
            if top_level:
                stack.extend(node.get_children())
                top_level = False
            else:
                stack.extend(node.get_children())
        return expr, None


def parse_compdb(compdb_path, repo_root, limit_files=None):
    """Parses every TU in compile_commands.json; returns {rel: FileIR} for
    all repo files the TUs touch. Raises FrontendUnavailable on any
    libclang-level failure."""
    import json

    cindex = load()
    repo_root = os.path.realpath(repo_root)
    try:
        with open(compdb_path, encoding="utf-8") as f:
            commands = json.load(f)
    except (OSError, ValueError) as error:
        raise FrontendUnavailable(
            f"cannot read {compdb_path}: {error}") from error

    files = {}
    lowering = _TuLowering(cindex, repo_root, files)
    index = cindex.Index.create()
    try:
        for command in commands:
            source = os.path.realpath(
                os.path.join(command.get("directory", "."),
                             command["file"]))
            if not source.startswith(repo_root + os.sep):
                continue
            rel = os.path.relpath(source, repo_root).replace(os.sep, "/")
            if limit_files is not None and rel not in limit_files:
                continue
            if "arguments" in command:
                args = _filter_args(command["arguments"])
            else:
                args = _filter_args(command.get("command", "").split())
            tu = index.parse(source, args=args)
            lowering.lower_tu(tu)
    except FrontendUnavailable:
        raise
    except Exception as error:  # noqa: BLE001 - degrade, don't crash CI
        raise FrontendUnavailable(
            f"libclang parse failed: {error!r}") from error
    return files
