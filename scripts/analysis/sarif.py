"""SARIF 2.1.0 and GitHub workflow-command emission for analyzer findings.

Kept deliberately defensive: CI calls these writers on whatever the run
produced, including degenerate inputs (no findings, findings with missing
fields, an empty call graph), and a traceback in the reporter must never
mask the analysis result. Malformed findings are skipped, not fatal.
"""

import json

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "zerodb-analyzer"
TOOL_URI = "https://github.com/zerodb/zerodb"


def _clean(finding):
    """Returns (rel, line, rule, message) or None when the finding is too
    malformed to report (reporter must not throw on bad IR)."""
    try:
        rel = str(finding.rel)
        line = int(finding.line)
        rule = str(finding.rule)
        message = str(finding.message)
    except (AttributeError, TypeError, ValueError):
        return None
    if not rel or not rule:
        return None
    if line < 1:
        line = 1
    return rel, line, rule, message


def to_sarif(findings, rules=()):
    """Builds the SARIF log dict for `findings` (iterable of
    checks.Finding). `rules` seeds tool.driver.rules so rule ids resolve
    even on a clean run."""
    rule_ids = []
    for rule in list(rules or ()):
        if isinstance(rule, str) and rule and rule not in rule_ids:
            rule_ids.append(rule)
    results = []
    for finding in findings or ():
        cleaned = _clean(finding)
        if cleaned is None:
            continue
        rel, line, rule, message = cleaned
        if rule not in rule_ids:
            rule_ids.append(rule)
        results.append({
            "ruleId": rule,
            "level": "error",
            "message": {"text": message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": rel,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": line},
                },
            }],
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri": TOOL_URI,
                    "rules": [{"id": rule_id} for rule_id in rule_ids],
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }


def write_sarif(path, findings, rules=()):
    with open(path, "w", encoding="utf-8") as f:
        json.dump(to_sarif(findings, rules), f, indent=2, sort_keys=True)
        f.write("\n")


def _escape_property(text):
    # GitHub workflow-command property escaping.
    return (text.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A").replace(":", "%3A").replace(",", "%2C"))


def _escape_data(text):
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def github_annotations(findings):
    """Yields `::error file=...` workflow commands, one per finding, so
    the analyze CI job annotates the offending lines in the diff view."""
    for finding in findings or ():
        cleaned = _clean(finding)
        if cleaned is None:
            continue
        rel, line, rule, message = cleaned
        yield (f"::error file={_escape_property(rel)},line={line},"
               f"title={_escape_property(TOOL_NAME + ': ' + rule)}::"
               f"{_escape_data(message)}")
