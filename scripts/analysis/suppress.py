"""Shared `// zerodb-lint: allow(...)` suppression parsing.

One parser, one behavior: both scripts/zerodb_lint.py (per-line lint) and
the analyzer checks (scripts/analysis/) honor the same comment syntax, so a
suppression written for either tool reads identically to both:

    // zerodb-lint: allow(rule)
    // zerodb-lint: allow(rule-a, rule-b)

on the offending line or the line directly above it. Rule names are
lower-case kebab-case; whitespace around commas is ignored. Unit tests live
in scripts/tooling_test.py (suppress.py section).
"""

import re

# One rule or a comma-separated list, spaces allowed.
SUPPRESS_RE = re.compile(
    r"zerodb-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


def allowed_rules(line):
    """The set of rule names a single source line suppresses (empty when
    the line carries no marker; a malformed marker suppresses nothing)."""
    m = SUPPRESS_RE.search(line)
    if not m:
        return frozenset()
    return frozenset(rule.strip() for rule in m.group(1).split(","))


def suppressed(raw_lines, idx, rule):
    """True when line `idx` (0-based) or the line directly above carries
    `// zerodb-lint: allow(...)` naming `rule`."""
    for j in (idx, idx - 1):
        if 0 <= j < len(raw_lines) and rule in allowed_rules(raw_lines[j]):
            return True
    return False
