"""Lexical fallback frontend for zerodb-analyzer.

Lowers a C++ source file into the micro-IR (analysis/ir.py) without a real
compiler: comments/strings are blanked, then a single character scan tracks
brace scopes and paren depth, splitting the stream into statements. The
scan is deliberately conservative — it only materializes the constructs the
checks need (includes, calls, RAII lock acquisitions with their scope
extents, range-fors with body extents, view/reference-returning function
definitions with their body-locals, view/reference class members, Status
alias/return declarations) and leaves everything else untouched.

Known approximations vs the libclang frontend (clangparse.py):
  - lock identity is the canonical acquisition-expression text (`mu_`,
    `exec.mu`), not the semantic member — same-named locks on different
    classes merge into one graph node (safe: merging can only create
    *extra* edges, never hide a cycle between distinctly-named locks)
  - function definitions are only recognized when the return type is a
    view/reference (all the lifetime check needs), so constructors and
    value-returning functions are not materialized
  - types are declaration text; typedef chains beyond one `using X = ...`
    hop are not followed
"""

import re

from . import ir

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(?:"([^"]+)"|<([^>]+)>)')

# `MutexLock lock(&mu_);` / `zerodb::MutexLock l(&exec.mu);`
MUTEX_LOCK_RE = re.compile(
    r"\b(?:zerodb::)?MutexLock\s+\w+\s*\(\s*&\s*([\w.\->]+)\s*\)")
# explicit `mu_.Lock()` / `mu->Lock()` (and the releasing Unlock)
MANUAL_LOCK_RE = re.compile(r"([\w.\->]+?)(?:\.|->)(Lock|Unlock)\s*\(\s*\)")

# Function-definition header, matched only when the return type is a
# string_view or a reference — the lifetime check needs nothing else.
FUNC_RE = re.compile(
    r"^(?:template\s*<[^;{]*>\s*)?"
    r"((?:static\s+|inline\s+|constexpr\s+)*(?:const\s+)?"
    r"[\w:]+(?:<[\w:<>,\s*&]*>)?\s*(?:string_view|&+))\s+"
    r"((?:\w+(?:<[\w:<>,\s]*>)?::)*[\w~]+|operator\S+)\s*"
    r"\(([^;{]*)\)"
    r"((?:\s*(?:const|noexcept|override|final|ZDB_\w+\([^)]*\)))*)\s*$")

CLASS_RE = re.compile(
    r"^(?:template\s*<[^;{]*>\s*)?(?:class|struct)\s+"
    r"(?:ZDB_\w+(?:\([^)]*\))?\s+)?(?:\[\[\w+\]\]\s+)?(\w+)")

# View/reference data member: `std::string_view name_;`, `const Foo& ref;`
MEMBER_RE = re.compile(
    r"^(?:mutable\s+)?((?:const\s+)?[\w:]+(?:<[\w:<>,\s*]*>)?"
    r"\s*(?:&+|[\w:]*string_view))\s+(\w+)\s*(?:;|=|\{|$)")

# Plain declaration: `std::string name`, `std::unordered_map<K, V> m`,
# `const Foo* p` — one per statement prefix.
DECL_RE = re.compile(
    r"^(?:static\s+)?(?:const(?:expr)?\s+)?"
    r"((?:std::)?[A-Za-z_][\w:]*(?:<[\w:<>,\s*&]*>)?(?:\s*[*&]+)?)\s+"
    r"(\w+)\s*(?:[=;({\[]|$)")

RETURN_RE = re.compile(r"^return\b\s*(.*?);?\s*$")

CALL_RE = re.compile(
    r"([A-Za-z_][\w]*(?:(?:::|\.|->)[A-Za-z_~][\w]*)*)\s*\(")

# Whole statement is one call expression -> discarded result candidate.
STMT_CALL_RE = re.compile(r"^((?:\w+(?:::|\.|->))*(\w+))\s*\(.*\)\s*;?\s*$")

STATUS_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*(?:zerodb::)?(?:common::)?"
    r"Status(?:Or<[^;]*>)?\s*;")
STATUS_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s+)?(?:static\s+|virtual\s+|inline\s+)*"
    r"((?:zerodb::)?\w+(?:<[\w:<>,\s*&]*>)?)\s+(\w+)\s*\(")

LABEL_RE = re.compile(r"^(?:(?:public|private|protected)\s*:\s*"
                      r"|case\s+[^:]+?:(?!:)\s*|default\s*:\s*)+")

CONTROL_KEYWORDS = frozenset(
    ("if", "for", "while", "switch", "return", "else", "do", "case",
     "new", "delete", "sizeof", "catch", "throw", "co_return", "goto",
     "defined", "alignof", "decltype", "static_assert", "assert"))

DECL_TYPE_KEYWORDS = frozenset(
    ("return", "new", "delete", "else", "typedef", "using", "case", "throw",
     "public", "private", "protected", "template", "typename", "friend",
     "operator", "namespace", "enum", "class", "struct", "union", "goto",
     "break", "continue", "default", "extern", "do", "if", "while", "for"))


class _Scope:
    __slots__ = ("kind", "open_line", "name", "return_type", "locals",
                 "static_locals", "returns", "locks", "members")

    def __init__(self, kind, open_line, name="", return_type=""):
        self.kind = kind  # "function" | "class" | "rangefor" | "block"
        self.open_line = open_line
        self.name = name
        self.return_type = return_type
        self.locals = {}
        self.static_locals = set()
        self.returns = []
        self.locks = []  # LockAcquire still waiting for held_until
        self.members = []


def _base_identifier(expr):
    """`groups` -> `groups`, `state->items` -> `state`, `a.b` -> `a`."""
    m = re.match(r"\s*[&*]*\s*([A-Za-z_]\w*)", expr)
    return m.group(1) if m else ""


def _last_component(qualified):
    return re.split(r"::|\.|->", qualified)[-1]


def _range_for_container(text):
    """Returns the range expression of `for (decl : range)`, or None when
    `text` is not a range-for header (classic for, other statements)."""
    m = re.match(r"\s*for\s*\((.*)$", text)
    if m is None:
        return None
    rest = m.group(1)
    depth = 1
    end = len(rest)
    for i, ch in enumerate(rest):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                end = i
                break
    header = rest[:end]
    if ";" in header:
        return None  # classic for
    m = re.search(r"(?<!:):(?!:)", header)
    if m is None:
        return None
    return header[m.end():].strip()


def parse_file(path, rel, raw_lines=None):
    """Returns the FileIR for one file. `raw_lines` lets callers reuse an
    already-read file body."""
    if raw_lines is None:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
    code = ir.strip_code(raw_lines)
    fir = ir.FileIR(path=path, rel=rel, module=ir.module_of(rel),
                    raw_lines=raw_lines)

    # Includes + preprocessor extents (directives and their backslash
    # continuations are invisible to the statement scan below).
    is_pp = [False] * len(code)
    continuing = False
    for idx, raw in enumerate(raw_lines):
        if continuing:
            is_pp[idx] = True
        elif raw.lstrip().startswith("#"):
            is_pp[idx] = True
            m = INCLUDE_RE.match(raw)
            if m:
                fir.includes.append(ir.Include(
                    header=m.group(1) or m.group(2), line=idx + 1,
                    system=m.group(1) is None))
        continuing = is_pp[idx] and raw.rstrip().endswith("\\")

    for idx, line in enumerate(code):
        if is_pp[idx]:
            continue
        for m in CALL_RE.finditer(line):
            qualified = m.group(1)
            name = _last_component(qualified)
            if name in CONTROL_KEYWORDS or qualified in CONTROL_KEYWORDS:
                continue
            fir.calls.append(ir.CallSite(
                name=name, qualified=qualified, line=idx + 1))
        m = STATUS_ALIAS_RE.search(line)
        if m:
            fir.status_aliases.add(m.group(1))

    for idx, line in enumerate(code):
        if is_pp[idx]:
            continue
        m = STATUS_DECL_RE.match(line)
        if not m:
            continue
        ret = m.group(1).replace("zerodb::", "")
        base = ret.split("<")[0]
        name = m.group(2)
        if base in CONTROL_KEYWORDS or name in CONTROL_KEYWORDS:
            continue
        if base in ("Status", "StatusOr") or base in fir.status_aliases:
            fir.status_fns.add(name)
        else:
            fir.non_status_fns.add(name)

    # ---- statement/scope scan ----------------------------------------
    scopes = []  # stack of _Scope
    stmt = []  # [(line_no, fragment)]
    paren_depth = 0

    def innermost(kind):
        for scope in reversed(scopes):
            if scope.kind == kind:
                return scope
        return None

    def take_statement():
        # Leading fragments that are nothing but access/case labels (e.g.
        # `private:` on its own line) must not claim the statement's line.
        while stmt and not LABEL_RE.sub("", stmt[0][1].strip()).strip():
            stmt.pop(0)
        if not stmt:
            return "", 0
        first_line = stmt[0][0]
        text = LABEL_RE.sub("", " ".join(f for _, f in stmt).strip())
        stmt.clear()
        return text, first_line

    def record_locks(text, first_line):
        m = MUTEX_LOCK_RE.search(text)
        if m:
            acquire = ir.LockAcquire(lock_id=m.group(1), line=first_line,
                                     held_until=0)
            fir.locks.append(acquire)
            if scopes:
                scopes[-1].locks.append(acquire)
            return
        for m in MANUAL_LOCK_RE.finditer(text):
            lock_id, op = m.group(1), m.group(2)
            if op == "Lock":
                acquire = ir.LockAcquire(lock_id=lock_id, line=first_line,
                                         held_until=0)
                fir.locks.append(acquire)
                if scopes:
                    scopes[-1].locks.append(acquire)
            else:  # Unlock closes the latest open acquisition of this id
                for acquire in reversed(fir.locks):
                    if acquire.lock_id == lock_id and acquire.held_until == 0:
                        acquire.held_until = first_line
                        for scope in scopes:
                            if acquire in scope.locks:
                                scope.locks.remove(acquire)
                        break

    def finalize_statement(end_line):
        text, first_line = take_statement()
        if not text:
            return
        record_locks(text, first_line)

        func = innermost("function")
        m = RETURN_RE.match(text)
        if m is not None:
            if func is not None:
                func.returns.append(ir.ReturnStmt(
                    expr=m.group(1).strip(), line=first_line))
            return

        container = _range_for_container(text)
        if container is not None:
            # Braceless range-for: the body is the statement's own extent.
            fir.range_fors.append(ir.RangeFor(
                container=container,
                container_type=fir.decl_types.get(
                    _base_identifier(container), ""),
                line=first_line, body_begin=first_line, body_end=end_line))
            return

        m = DECL_RE.match(text)
        if m and _last_component(m.group(1)) not in DECL_TYPE_KEYWORDS \
                and m.group(2) not in DECL_TYPE_KEYWORDS:
            type_text, name = m.group(1).strip(), m.group(2)
            fir.decl_types.setdefault(name, type_text)
            if func is not None:
                if text.startswith("static"):
                    func.static_locals.add(name)
                else:
                    func.locals.setdefault(name, type_text)

        cls = scopes[-1] if scopes and scopes[-1].kind == "class" else None
        if cls is not None and "(" not in text:
            m = MEMBER_RE.match(text)
            if m and not text.startswith("static"):
                cls.members.append(ir.Member(type_text=m.group(1).strip(),
                                             name=m.group(2),
                                             line=first_line))

        m = STMT_CALL_RE.match(text)
        if m and m.group(2) not in CONTROL_KEYWORDS:
            fir.stmt_calls.append(ir.CallSite(
                name=m.group(2), qualified=m.group(1), line=first_line))

    def open_scope(open_line):
        text, first_line = take_statement()
        header_line = first_line or open_line
        record_locks(text, header_line)

        container = _range_for_container(text)
        if container is not None:
            scope = _Scope("rangefor", header_line, name=container)
            scopes.append(scope)
            return
        m = FUNC_RE.match(text)
        if m:
            scopes.append(_Scope("function", header_line, name=m.group(2),
                                 return_type=m.group(1).strip()))
            return
        m = CLASS_RE.match(text)
        if m and not re.match(r"^enum\b", text):
            scopes.append(_Scope("class", header_line, name=m.group(1)))
            return
        scopes.append(_Scope("block", header_line))

    def close_scope(close_line):
        if not scopes:
            return
        scope = scopes.pop()
        for acquire in scope.locks:
            if acquire.held_until == 0:
                acquire.held_until = close_line
        if scope.kind == "rangefor":
            fir.range_fors.append(ir.RangeFor(
                container=scope.name,
                container_type=fir.decl_types.get(
                    _base_identifier(scope.name), ""),
                line=scope.open_line, body_begin=scope.open_line,
                body_end=close_line))
        elif scope.kind == "function":
            func = ir.Function(
                name=_last_component(scope.name), qualified=scope.name,
                return_type=scope.return_type, line=scope.open_line,
                end_line=close_line)
            func.returns = scope.returns
            func.locals = {n: t for n, t in scope.locals.items()
                           if n not in scope.static_locals}
            fir.functions.append(func)
        elif scope.kind == "class":
            if scope.members:
                fir.classes.append(ir.ClassDecl(
                    name=scope.name, line=scope.open_line,
                    members=scope.members))

    for idx, line in enumerate(code):
        if is_pp[idx]:
            continue
        line_no = idx + 1
        buffered = []

        def flush_fragment():
            fragment = "".join(buffered)
            buffered.clear()
            if fragment.strip():
                stmt.append((line_no, fragment))

        for ch in line:
            if ch == "(":
                paren_depth += 1
                buffered.append(ch)
            elif ch == ")":
                paren_depth = max(0, paren_depth - 1)
                buffered.append(ch)
            elif ch == "{" and paren_depth == 0:
                flush_fragment()
                open_scope(line_no)
            elif ch == "}" and paren_depth == 0:
                flush_fragment()
                finalize_statement(line_no)
                close_scope(line_no)
            elif ch == ";" and paren_depth == 0:
                buffered.append(ch)
                flush_fragment()
                finalize_statement(line_no)
            else:
                buffered.append(ch)
        flush_fragment()

    # EOF: release anything still open (truncated fixtures, macro noise).
    last_line = len(raw_lines)
    while scopes:
        finalize_statement(last_line)
        close_scope(last_line)
    for acquire in fir.locks:
        if acquire.held_until == 0:
            acquire.held_until = last_line
    return fir
