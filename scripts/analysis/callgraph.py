"""Cross-TU call graph for zerodb-analyzer's interprocedural passes.

The existing micro-IR (ir.FileIR) materializes `Function` objects only for
the lifetime check, and the two frontends disagree on which functions they
materialize (textparse only lowers view/reference-returning ones). The
interprocedural passes need *every* function with its parameters,
statements and loop structure — and they need the exact same answer from
both frontends, or the pinned fixtures would flap depending on whether
libclang is installed.

So this module does its own lowering, from `FileIR.raw_lines` (which both
frontends populate identically): a single brace/paren scan recovers
function definitions, their parameter lists, per-statement text with
1-based lines, and whether each statement sits inside a loop. Findings
built on top of this are frontend-identical by construction.

Call resolution is name-based and conservative: a call site resolves to
every known function with that unqualified name (same-named overloads are
merged into one candidate list). Checks that would misfire on merged
overloads must require agreement across all candidates.
"""

import re
from dataclasses import dataclass, field

from .ir import module_of, strip_code

# Keywords that look like calls to a naive scanner.
_NOT_CALLS = frozenset((
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "catch", "do", "else", "new", "delete", "throw", "case", "default",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "static_assert", "decltype", "defined", "assert", "alignas",
    "noexcept", "typeid", "co_await", "co_return", "co_yield"))

_CONTROL = frozenset(("if", "for", "while", "switch", "catch", "do",
                      "else", "try"))
_LOOP_KEYWORDS = frozenset(("for", "while", "do"))
_TYPE_KEYWORDS = frozenset(("class", "struct", "union", "enum"))

# `recv.name(` / `recv->name(` / `ns::name(` / `name(` — recv is a simple
# chained expression (identifiers, (), [], . and ->).
CALL_RE = re.compile(
    r"(?P<recv>[A-Za-z_]\w*(?:\(\)|\[\w*\])?(?:(?:\.|->)"
    r"[A-Za-z_]\w*(?:\(\)|\[\w*\])?)*)?"
    r"(?P<sep>\.|->|::)?"
    r"(?<![\w])(?P<name>[A-Za-z_]\w*)\s*\(")

_IDENT_RE = re.compile(r"[A-Za-z_]\w*")


@dataclass
class Stmt:
    """One statement (or loop/branch header) inside a function body."""

    line: int       # 1-based line of the statement's first character
    text: str       # comment/string-stripped, whitespace-collapsed
    in_loop: bool   # lexically inside any for/while/do body


@dataclass
class Call:
    """One call expression found inside a function."""

    name: str        # unqualified callee
    recv: str        # receiver text for `recv.name(...)` ('' for free calls)
    args: "list[str]"
    line: int
    in_loop: bool


@dataclass
class Param:
    type_text: str
    name: str


@dataclass
class FuncInfo:
    name: str          # unqualified
    qualified: str     # as written, e.g. TreeModel::PredictMs
    rel: str
    module: str
    line: int
    end_line: int
    return_type: str   # '' for constructors/destructors
    params: "list[Param]" = field(default_factory=list)
    stmts: "list[Stmt]" = field(default_factory=list)
    calls: "list[Call]" = field(default_factory=list)

    def body_text(self):
        return "\n".join(s.text for s in self.stmts)


def split_top_commas(text):
    """Splits on commas at angle/paren/bracket/brace depth zero."""
    parts, depth, start = [], 0, 0
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == "<":
            # Heuristic: treat as angle bracket when it looks like a
            # template argument list (previous non-space is an identifier
            # character), not a less-than.
            j = i - 1
            while j >= 0 and text[j] == " ":
                j -= 1
            if j >= 0 and (text[j].isalnum() or text[j] == "_"):
                depth += 1
        elif ch == ">" and depth > 0 and (i == 0 or text[i - 1] != "-"):
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(text[start:i].strip())
            start = i + 1
        i += 1
    tail = text[start:].strip()
    if tail or parts:
        parts.append(tail)
    return parts


def parse_params(params_text):
    """Parameter list text -> [Param]; best-effort name/type split."""
    params = []
    text = params_text.strip()
    if not text or text == "void":
        return params
    for piece in split_top_commas(text):
        piece = piece.split("=", 1)[0].strip()  # drop default argument
        if not piece or piece == "...":
            continue
        m = re.match(r"^(?P<type>.+?)\s*[&*]*\s*(?P<name>[A-Za-z_]\w*)"
                     r"\s*(?:\[\s*\w*\s*\])?$", piece)
        if m and m.group("type").rstrip() not in ("const", ""):
            type_text = piece[:m.start("name")].strip()
            params.append(Param(type_text, m.group("name")))
        else:
            params.append(Param(piece, ""))
    return params


def _match_function_header(text):
    """Returns (qualified_name, params_text, return_type) when `text` (the
    statement buffer preceding a `{`) is a function definition header,
    else None."""
    text = text.strip()
    if not text or "(" not in text:
        return None
    # Initializer lists / assignments / control flow are not headers.
    first_word = _IDENT_RE.match(text)
    if first_word and first_word.group(0) in _CONTROL | _TYPE_KEYWORDS \
            | {"namespace", "return", "using", "extern", "case"}:
        return None
    open_idx = text.find("(")
    pre = text[:open_idx].rstrip()
    if not pre:
        return None
    # `operator` names carry symbols; otherwise the name is the trailing
    # (possibly ::-qualified) identifier chain.
    m = re.search(r"(?:operator\s*(?:\(\)|\[\]|[^\s(]+))\s*$", pre)
    if m:
        qualified = m.group(0).replace(" ", "")
        head = pre[:m.start()].rstrip()
    else:
        m = re.search(r"((?:[A-Za-z_]\w*\s*::\s*)*~?[A-Za-z_]\w*)\s*$", pre)
        if not m or not m.group(1):
            return None
        qualified = re.sub(r"\s*", "", m.group(1)) if "::" in m.group(1) \
            else m.group(1)
        head = pre[:m.start()].rstrip()
        last = qualified.split("::")[-1]
        if last in _NOT_CALLS or last in _CONTROL:
            return None
    # A `=` before the name means this is an initializer (`auto f = [..`).
    if "=" in head and "operator" not in head:
        return None
    if head.endswith(("return", ",", "&&", "||", "!", "(")):
        return None
    # Balanced parameter list starting at open_idx.
    depth, i = 0, open_idx
    close_idx = -1
    while i < len(text):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                close_idx = i
                break
        i += 1
    if close_idx < 0:
        return None
    params_text = text[open_idx + 1:close_idx]
    trail = text[close_idx + 1:].strip()
    # Trail may hold cv/ref/noexcept/override, a trailing return type, or a
    # constructor initializer list. Anything else (arithmetic, `=`, ...)
    # means this was an ordinary expression.
    if trail and not re.match(
            r"^(?:const|noexcept(?:\([^)]*\))?|override|final|&&?|"
            r"->\s*[\w:<>,&*\s\[\]]+|:\s*.*|\s)*$", trail):
        return None
    # Macro invocations at namespace scope (e.g. TEST_F) still match; they
    # behave like functions for our purposes.
    return_type = re.sub(r"\s+", " ", head).strip()
    for kw in ("static", "inline", "constexpr", "virtual", "explicit",
               "friend", "extern"):
        return_type = re.sub(r"\b" + kw + r"\b", "", return_type).strip()
    return qualified, params_text, return_type


def calls_in(text, line, in_loop):
    """All call expressions in one statement's text."""
    out = []
    for m in CALL_RE.finditer(text):
        name = m.group("name")
        if name in _NOT_CALLS:
            continue
        recv = ""
        if m.group("sep") in (".", "->") and m.group("recv"):
            recv = m.group("recv")
        # Extract balanced argument text.
        depth, i = 0, m.end() - 1
        close = -1
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    close = i
                    break
            i += 1
        args_text = text[m.end():close] if close > 0 else ""
        args = split_top_commas(args_text) if args_text.strip() else []
        out.append(Call(name, recv, args, line, in_loop))
    return out


class _Scope:
    __slots__ = ("kind", "func")

    def __init__(self, kind, func=None):
        self.kind = kind  # "func" | "loop" | "block" | "type" | "ns"
        self.func = func


def lower_file(fir):
    """FileIR -> [FuncInfo] via a brace/paren scan over raw_lines."""
    lines = strip_code(fir.raw_lines)
    funcs = []
    scopes = []
    buf = []
    buf_line = 0
    paren = 0
    brace_in_paren = 0

    def current_func():
        for scope in reversed(scopes):
            if scope.kind == "func":
                return scope.func
        return None

    def in_loop():
        for scope in reversed(scopes):
            if scope.kind == "loop":
                return True
            if scope.kind == "func":
                return False
        return False

    def emit(text, line):
        func = current_func()
        if func is None:
            return
        text = re.sub(r"\s+", " ", text).strip()
        if not text:
            return
        stmt = Stmt(line, text, in_loop())
        func.stmts.append(stmt)
        func.calls.extend(calls_in(text, line, stmt.in_loop))

    for lineno, line in enumerate(lines, 1):
        for ch in line:
            if not buf:
                if ch.isspace():
                    continue  # don't let indentation pin buf_line early
                buf_line = lineno
            if ch == "(":
                paren += 1
                buf.append(ch)
            elif ch == ")":
                paren = max(0, paren - 1)
                buf.append(ch)
            elif ch == "{":
                if paren > 0:
                    brace_in_paren += 1
                    buf.append(ch)
                    continue
                if brace_in_paren > 0:
                    # Brace-init or lambda body nested in an expression.
                    brace_in_paren += 1
                    buf.append(ch)
                    continue
                text = "".join(buf).strip()
                buf = []
                header = _match_function_header(text)
                first = _IDENT_RE.match(text)
                first_word = first.group(0) if first else ""
                if first_word == "namespace":
                    scopes.append(_Scope("ns"))
                elif first_word in _TYPE_KEYWORDS and "=" not in text:
                    scopes.append(_Scope("type"))
                elif first_word in _CONTROL:
                    emit(text, buf_line)  # loop/branch header text
                    kind = "loop" if first_word in _LOOP_KEYWORDS \
                        else "block"
                    scopes.append(_Scope(kind, None))
                elif header and (current_func() is None):
                    qualified, params_text, return_type = header
                    name = qualified.split("::")[-1]
                    func = FuncInfo(
                        name=name, qualified=qualified, rel=fir.rel,
                        module=fir.module or fir.fixture_module() or "",
                        line=buf_line, end_line=buf_line,
                        return_type=return_type,
                        params=parse_params(params_text))
                    funcs.append(func)
                    scopes.append(_Scope("func", func))
                elif text.endswith("="):
                    scopes.append(_Scope("block"))  # brace initializer
                else:
                    if text:
                        emit(text, buf_line)
                    scopes.append(_Scope("block"))
            elif ch == "}":
                if brace_in_paren > 0:
                    brace_in_paren -= 1
                    buf.append(ch)
                    continue
                tail = "".join(buf).strip()
                if tail:
                    emit(tail, buf_line)
                buf = []
                if scopes:
                    closed = scopes.pop()
                    if closed.kind == "func" and closed.func is not None:
                        closed.func.end_line = lineno
            elif ch == ";":
                if paren > 0 or brace_in_paren > 0:
                    buf.append(ch)
                    continue
                emit("".join(buf), buf_line)
                buf = []
            else:
                buf.append(ch)
        if buf and buf[-1] != " ":
            buf.append(" ")  # line break = token boundary
    return funcs


@dataclass
class CallGraph:
    """Name-indexed functions plus caller -> callee-name edges."""

    functions: "list[FuncInfo]" = field(default_factory=list)
    by_name: "dict[str, list[FuncInfo]]" = field(default_factory=dict)

    def resolve(self, name):
        return self.by_name.get(name, [])

    def callees_of(self, func):
        names = set()
        for call in func.calls:
            if call.name in self.by_name:
                names.add(call.name)
        return names

    def reachable_names(self, seed_names, undirected=False):
        """Function names reachable from `seed_names` along call edges.
        With undirected=True, caller and callee edges both count (used by
        --changed-only to find everything a change can influence)."""
        callers_of = {}
        if undirected:
            for func in self.functions:
                for callee in self.callees_of(func):
                    callers_of.setdefault(callee, set()).add(func.name)
        seen = set()
        frontier = [n for n in seed_names if n in self.by_name]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            for func in self.by_name.get(name, []):
                for callee in self.callees_of(func):
                    if callee not in seen:
                        frontier.append(callee)
            if undirected:
                for caller in callers_of.get(name, ()):
                    if caller not in seen:
                        frontier.append(caller)
        return seen


def build(files):
    """{rel: FileIR} -> CallGraph over every function in every file."""
    graph = CallGraph()
    for rel in sorted(files):
        for func in lower_file(files[rel]):
            graph.functions.append(func)
            graph.by_name.setdefault(func.name, []).append(func)
    return graph
