#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by --trace_out.

Checks the structural contract that chrome://tracing and ui.perfetto.dev
rely on, so a malformed trace fails CI instead of silently rendering as an
empty timeline:

  - top level is an object with a "traceEvents" array
  - every event is an object with string "name"/"ph" and integer-ish
    "pid"/"tid"
  - non-metadata events carry a numeric, non-negative "ts" (microseconds)
  - complete events (ph "X") carry a numeric, non-negative "dur"
  - counter events (ph "C") carry an "args" object with at least one
    numeric series
  - metadata events (ph "M") are process_name/thread_name with a string
    args.name

Beyond structure, callers assert content:

  --require-track SUBSTR   at least one thread_name metadata event whose
                           args.name contains SUBSTR (repeatable)
  --require-event SUBSTR   at least one ph "X" event whose name contains
                           SUBSTR (repeatable)

Usage:
  scripts/trace_validate.py trace.json \
      --require-track pool-worker --require-event train.epoch

Exit status: 0 valid, 1 validation failure, 2 usage error.
"""

import argparse
import json
import sys

ALLOWED_PHASES = ("X", "C", "M")
METADATA_NAMES = ("process_name", "thread_name")


def fail(message):
    print(f"trace_validate: {message}", file=sys.stderr)
    sys.exit(1)


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_event(event, index):
    where = f"traceEvents[{index}]"
    if not isinstance(event, dict):
        fail(f"{where}: event is not an object")
    name = event.get("name")
    if not isinstance(name, str) or not name:
        fail(f"{where}: missing or non-string 'name'")
    phase = event.get("ph")
    if phase not in ALLOWED_PHASES:
        fail(f"{where} ({name!r}): 'ph' must be one of {ALLOWED_PHASES}, "
             f"got {phase!r}")
    for key in ("pid", "tid"):
        value = event.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            fail(f"{where} ({name!r}): missing or non-integer {key!r}")
    if phase == "M":
        if name not in METADATA_NAMES:
            fail(f"{where}: metadata event name must be one of "
                 f"{METADATA_NAMES}, got {name!r}")
        args = event.get("args")
        if not isinstance(args, dict) or not isinstance(args.get("name"), str):
            fail(f"{where} ({name!r}): metadata event needs string args.name")
        return
    ts = event.get("ts")
    if not is_number(ts) or ts < 0:
        fail(f"{where} ({name!r}): missing or negative 'ts'")
    if phase == "X":
        dur = event.get("dur")
        if not is_number(dur) or dur < 0:
            fail(f"{where} ({name!r}): complete event needs "
                 f"non-negative 'dur', got {dur!r}")
    if phase == "C":
        args = event.get("args")
        if not isinstance(args, dict) or not any(
                is_number(v) for v in args.values()):
            fail(f"{where} ({name!r}): counter event needs an 'args' object "
                 "with at least one numeric series")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace-event JSON file to validate")
    parser.add_argument("--require-track", action="append", default=[],
                        metavar="SUBSTR",
                        help="require a thread_name track containing SUBSTR")
    parser.add_argument("--require-event", action="append", default=[],
                        metavar="SUBSTR",
                        help="require a complete event whose name contains "
                             "SUBSTR")
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot load {args.trace}: {error}")

    if not isinstance(trace, dict):
        fail("top level must be an object")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("'traceEvents' must be a non-empty array")

    tracks = set()
    complete_names = set()
    phase_counts = {phase: 0 for phase in ALLOWED_PHASES}
    for index, event in enumerate(events):
        validate_event(event, index)
        phase_counts[event["ph"]] += 1
        if event["ph"] == "M" and event["name"] == "thread_name":
            tracks.add(event["args"]["name"])
        if event["ph"] == "X":
            complete_names.add(event["name"])

    for needle in args.require_track:
        if not any(needle in track for track in tracks):
            fail(f"no thread_name track contains {needle!r}; tracks: "
                 f"{sorted(tracks)}")
    for needle in args.require_event:
        if not any(needle in name for name in complete_names):
            fail(f"no complete event name contains {needle!r}")

    print(f"trace_validate: {args.trace} OK — "
          f"{phase_counts['X']} complete, {phase_counts['C']} counter, "
          f"{phase_counts['M']} metadata events across "
          f"{len(tracks)} named tracks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
