#!/usr/bin/env python3
"""zerodb-lint: repo-invariant checks clang-tidy cannot express.

Rules (all suppressible on a given line — or the line above it — with
`// zerodb-lint: allow(<rule>)` plus a reason):

  raw-mutex         std::mutex / std::lock_guard / std::condition_variable
                    etc. anywhere outside src/common/sync.{h,cc}. Everything
                    locks through the annotated zerodb::Mutex wrappers so
                    clang's -Wthread-safety sees every acquisition.
  raw-thread        std::thread / std::jthread / std::async / .detach()
                    anywhere outside src/common/thread_pool.{h,cc}. Work
                    fans out through zerodb::ThreadPool so pool metrics,
                    shutdown draining and the determinism contracts stay
                    centralized; detached threads are never acceptable.
  stdout-io         std::cout / std::cerr / printf-family in library code
                    (src/). Library output goes through ZDB_LOG so sinks,
                    levels and thread-atomic lines keep working. Tests,
                    benches and examples may print.
  naked-new         `new` whose result is not immediately owned (same line
                    must contain unique_ptr/make_unique/shared_ptr) and is
                    not the `static X* x = new X` leak-singleton idiom.
  discarded-status  (a) `(void)fn(...)` casts with no nearby comment saying
                    why the discard is sound — Status and StatusOr are
                    class-level [[nodiscard]], so every cast is a deliberate
                    override that needs a justification; (b) the
                    [[nodiscard]] markers themselves must stay present in
                    src/common/status.h.
  bare-span         QueryTracer::BeginSpan / EndSpan calls anywhere outside
                    src/obs/. Manual begin/end pairs leak spans on early
                    returns and exceptions; instrumentation goes through the
                    RAII obs::SpanScope (or obs::TimelineScope for the
                    cross-thread timeline) so every span is balanced.
  include-hygiene   files using ZDB_ thread-safety annotation macros must
                    directly include common/thread_annotations.h (or
                    common/sync.h); files using Mutex/MutexLock/CondVar must
                    directly include common/sync.h. No include-what-you-use
                    via transitive headers for locking primitives.

Usage:
  scripts/zerodb_lint.py              # lint src/ tests/ bench/ examples/
  scripts/zerodb_lint.py FILE...      # lint specific files
  scripts/zerodb_lint.py --self-test  # verify the known-bad fixtures under
                                      # scripts/lint_fixtures/ are all
                                      # flagged (and only as expected)

Exit status: 0 clean, 1 violations (or self-test mismatch), 2 usage error.
Wired into scripts/lint.sh and scripts/check.sh; CI runs both the tree scan
and the self-test.
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from analysis import suppress as _suppress  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE_DIR = os.path.join("scripts", "lint_fixtures")
SCAN_ROOTS = ("src", "tests", "bench", "examples")
EXTENSIONS = (".h", ".cc", ".cpp")

# Suppression syntax is shared with zerodb-analyzer; the single parser
# lives in scripts/analysis/suppress.py (one parser, one behavior).
SUPPRESS_RE = _suppress.SUPPRESS_RE
EXPECT_RE = re.compile(r"//\s*expect-lint:\s*([a-z-]+)")

RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b"
)
RAW_THREAD_RE = re.compile(
    r"\bstd::(?:thread|jthread|async)\b|\.detach\s*\(\s*\)"
)
STDOUT_IO_RE = re.compile(
    r"std::cout|std::cerr|(?<![A-Za-z0-9_])(?:printf|fprintf|puts|fputs|"
    r"putchar)\s*\("
)
# `new` in expression position; `delete` of any kind is not flagged (the
# tree is smart-pointer owned; delete never appears outside sync anyway).
NAKED_NEW_RE = re.compile(r"(?<![A-Za-z0-9_])new\s+[A-Za-z_:(]")
OWNED_NEW_RE = re.compile(r"unique_ptr|make_unique|shared_ptr|\bstatic\b")
VOID_CAST_RE = re.compile(r"\(void\)\s*[A-Za-z_][A-Za-z0-9_:.\->]*\s*\(")
ANNOTATION_MACRO_RE = re.compile(
    r"\bZDB_(?:CAPABILITY|SCOPED_CAPABILITY|GUARDED_BY|PT_GUARDED_BY|"
    r"REQUIRES|REQUIRES_SHARED|EXCLUDES|ACQUIRE|ACQUIRE_SHARED|RELEASE|"
    r"RELEASE_SHARED|TRY_ACQUIRE|ASSERT_CAPABILITY|RETURN_CAPABILITY|"
    r"NO_THREAD_SAFETY_ANALYSIS)\b"
)
BARE_SPAN_RE = re.compile(r"\b(?:BeginSpan|EndSpan)\s*\(")
SYNC_TYPE_RE = re.compile(r"\b(?:Mutex|MutexLock|CondVar)\b")
ANNOTATION_INCLUDE_RE = re.compile(
    r'#include\s+"common/(?:thread_annotations|sync)\.h"'
)
SYNC_INCLUDE_RE = re.compile(r'#include\s+"common/sync\.h"')

NODISCARD_MARKERS = (
    "class [[nodiscard]] Status",
    "class [[nodiscard]] StatusOr",
)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(lines):
    """Returns lines with comments and string/char literals blanked out, so
    rule regexes only see code. Tracks /* */ across lines; ignores raw
    strings (unused in this tree)."""
    stripped = []
    in_block = False
    for line in lines:
        out = []
        i = 0
        n = len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                break
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch in "\"'":
                quote = ch
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        i += 1
                        break
                    i += 1
                out.append(quote + quote)
                continue
            out.append(ch)
            i += 1
        stripped.append("".join(out))
    return stripped


def suppressed(raw_lines, idx, rule):
    """True if line idx (0-based) or the line above carries
    `// zerodb-lint: allow(rule)` (shared parser, analysis/suppress.py)."""
    return _suppress.suppressed(raw_lines, idx, rule)


def has_nearby_comment(raw_lines, idx):
    """True if line idx or one of the three preceding lines has a comment
    (the justification requirement for discarded-status). Fixture
    `expect-lint` markers don't count as justification."""
    for j in range(max(0, idx - 3), idx + 1):
        line = EXPECT_RE.sub("", raw_lines[j])
        if "//" in line or "/*" in line:
            return True
    return False


def norm(path):
    return os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")


def lint_file(path, as_library=None):
    """Lints one file; `as_library` forces library-code scoping (used for
    fixtures, which live outside src/)."""
    rel = norm(path)
    try:
        with open(path, encoding="utf-8") as f:
            raw = f.read().splitlines()
    except (OSError, UnicodeDecodeError) as e:
        return [Finding(rel, 1, "io", f"unreadable: {e}")]
    code = strip_code(raw)
    in_fixture = rel.startswith(FIXTURE_DIR.replace(os.sep, "/"))
    library = as_library if as_library is not None else rel.startswith("src/")
    in_sync = rel in ("src/common/sync.h", "src/common/sync.cc")
    in_thread_pool = rel in ("src/common/thread_pool.h",
                             "src/common/thread_pool.cc")
    in_obs = rel.startswith("src/obs/")
    findings = []

    def report(idx, rule, message):
        if not suppressed(raw, idx, rule):
            findings.append(Finding(rel, idx + 1, rule, message))

    first_annotation_use = None
    first_sync_type_use = None
    has_annotation_include = False
    has_sync_include = False

    for idx, line in enumerate(code):
        if not in_sync and RAW_MUTEX_RE.search(line):
            report(idx, "raw-mutex",
                   "raw std::mutex-family primitive; use the annotated "
                   "zerodb::Mutex/MutexLock/CondVar from common/sync.h")
        if not in_thread_pool and RAW_THREAD_RE.search(line):
            report(idx, "raw-thread",
                   "raw std::thread/std::jthread/std::async/.detach(); "
                   "schedule work on zerodb::ThreadPool "
                   "(common/thread_pool.h)")
        if not in_obs and BARE_SPAN_RE.search(line):
            report(idx, "bare-span",
                   "manual BeginSpan/EndSpan outside src/obs/; use the RAII "
                   "obs::SpanScope (obs/trace.h) or obs::TimelineScope "
                   "(obs/trace_event.h) so spans balance on every path")
        if library and STDOUT_IO_RE.search(line):
            report(idx, "stdout-io",
                   "direct stdout/stderr I/O in library code; use ZDB_LOG "
                   "(common/logging.h)")
        m = NAKED_NEW_RE.search(line)
        if library and m and not OWNED_NEW_RE.search(line):
            report(idx, "naked-new",
                   "`new` without immediate smart-pointer ownership (or "
                   "`static` leak-singleton idiom on the same line)")
        if VOID_CAST_RE.search(line) and not has_nearby_comment(raw, idx):
            report(idx, "discarded-status",
                   "(void)-discarded call without a nearby comment "
                   "justifying the discard")
        # Includes are matched on the raw line: the stripper blanks the
        # quoted path.
        if ANNOTATION_INCLUDE_RE.search(raw[idx]):
            has_annotation_include = True
        if SYNC_INCLUDE_RE.search(raw[idx]):
            has_sync_include = True
        if first_annotation_use is None and ANNOTATION_MACRO_RE.search(line):
            first_annotation_use = idx
        if first_sync_type_use is None and SYNC_TYPE_RE.search(line):
            first_sync_type_use = idx

    if rel != "src/common/thread_annotations.h" and not in_sync:
        if first_annotation_use is not None and not has_annotation_include:
            report(first_annotation_use, "include-hygiene",
                   "uses ZDB_ thread-safety annotations without directly "
                   'including "common/thread_annotations.h" (or '
                   '"common/sync.h")')
        if first_sync_type_use is not None and not has_sync_include:
            report(first_sync_type_use, "include-hygiene",
                   "uses Mutex/MutexLock/CondVar without directly including "
                   '"common/sync.h"')

    if rel == "src/common/status.h":
        text = "\n".join(raw)
        for marker in NODISCARD_MARKERS:
            if marker not in text:
                findings.append(Finding(
                    rel, 1, "discarded-status",
                    f"missing `{marker}`: the tree-wide no-discarded-Status "
                    "guarantee rests on the class-level [[nodiscard]]"))
    return findings


def collect_changed_files(base):
    """Lintable files changed vs `base` (plus untracked ones), for fast
    pre-commit runs: `scripts/zerodb_lint.py --changed-only`."""
    import subprocess

    def git(*argv):
        result = subprocess.run(
            ["git", "-C", REPO_ROOT, *argv],
            capture_output=True, text=True, check=False)
        if result.returncode != 0:
            print(f"zerodb_lint: git {' '.join(argv)} failed: "
                  f"{result.stderr.strip()}", file=sys.stderr)
            sys.exit(2)
        return result.stdout.splitlines()

    names = set(git("diff", "--name-only", "--diff-filter=d", base, "--"))
    names |= set(git("ls-files", "--others", "--exclude-standard"))
    files = []
    for name in sorted(names):
        if not name.endswith(EXTENSIONS):
            continue
        if not name.startswith(tuple(root + "/" for root in SCAN_ROOTS)):
            continue
        path = os.path.join(REPO_ROOT, name)
        if os.path.isfile(path):
            files.append(path)
    return files


def collect_tree_files():
    files = []
    for root in SCAN_ROOTS:
        base = os.path.join(REPO_ROOT, root)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    return files


def self_test():
    fixture_dir = os.path.join(REPO_ROOT, FIXTURE_DIR)
    fixtures = sorted(
        os.path.join(fixture_dir, n) for n in os.listdir(fixture_dir)
        if n.endswith(EXTENSIONS))
    if not fixtures:
        print(f"zerodb_lint: no fixtures under {FIXTURE_DIR}", file=sys.stderr)
        return 1
    failures = 0
    total_expected = 0
    for path in fixtures:
        rel = norm(path)
        with open(path, encoding="utf-8") as f:
            raw = f.read().splitlines()
        expected = set()
        for idx, line in enumerate(raw):
            for m in EXPECT_RE.finditer(line):
                expected.add((idx + 1, m.group(1)))
        total_expected += len(expected)
        actual = {(f.line, f.rule)
                  for f in lint_file(path, as_library=True)}
        for line_no, rule in sorted(expected - actual):
            print(f"SELF-TEST FAIL {rel}:{line_no}: expected [{rule}] "
                  "not reported")
            failures += 1
        for line_no, rule in sorted(actual - expected):
            print(f"SELF-TEST FAIL {rel}:{line_no}: unexpected [{rule}]")
            failures += 1
    if failures:
        return 1
    print(f"zerodb_lint: self-test OK ({len(fixtures)} fixtures, "
          f"{total_expected} expected findings all reported)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*",
                        help="files to lint (default: whole tree)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the known-bad fixtures are flagged")
    parser.add_argument("--changed-only", action="store_true",
                        help="lint only files changed vs --base (plus "
                             "untracked files) instead of the whole tree")
    parser.add_argument("--base", default="HEAD",
                        help="git ref --changed-only diffs against "
                             "(default: HEAD)")
    args = parser.parse_args()

    if args.self_test:
        if args.files:
            parser.error("--self-test takes no file arguments")
        return self_test()
    if args.changed_only and args.files:
        parser.error("--changed-only takes no file arguments")

    if args.changed_only:
        files = collect_changed_files(args.base)
        if not files:
            print("zerodb_lint: no changed lintable files")
            return 0
    elif args.files:
        files = [os.path.abspath(f) for f in args.files]
    else:
        files = collect_tree_files()
    for f in files:
        if not os.path.isfile(f):
            print(f"zerodb_lint: no such file: {f}", file=sys.stderr)
            return 2

    findings = []
    for f in files:
        findings.extend(lint_file(f))
    for finding in findings:
        print(finding)
    if findings:
        print(f"zerodb_lint: {len(findings)} violation(s)", file=sys.stderr)
        return 1
    print(f"zerodb_lint: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
