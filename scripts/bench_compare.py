#!/usr/bin/env python3
"""Compare a freshly generated bench summary against the committed baseline.

  scripts/bench_compare.py --fresh BENCH_fresh.json \
      --baseline BENCH_micro.json [--threshold 0.25] [--github-annotations]

Reports per-benchmark real_time_ms and wall_clock_s movements between the
two summaries (schema v2 or v3; see bench_summary.py). Regressions beyond
the threshold are printed — and, with --github-annotations, emitted as
`::warning::` workflow annotations so they show up on the PR — but the exit
code stays 0. Counters present in only one summary (a new or retired
benchmark) are skipped with a note (`::notice` under --github-annotations)
rather than silently dropped. Exit 0 despite regressions because
micro-benchmarks on shared CI runners are too noisy to gate merges on —
the annotation is the signal.

--fail-on RATIO turns the soft report into a hard gate for the series
named by --allowlist (comma-separated, repeatable; each entry matches a
benchmark family by substring, so `BM_ForwardBatch` covers every
`BM_ForwardBatch/batch:N`). An allowlisted series that slows down by more
than RATIO fails the run: `::error` annotations under
--github-annotations and exit code 3. Series outside the allowlist keep
the warning-only behavior — the allowlist names the counters judged
stable enough to gate merges on. --fail-on without --allowlist gates
every series. Exit 1 is reserved for unusable input (missing/invalid
fresh summary), 2 for usage errors, 3 for a tripped gate.

A missing baseline is not an error (first run on a fresh branch): the
script prints a note and exits 0.
"""

import argparse
import json
import os
import sys


def load_summary(path, *, required):
    if not os.path.isfile(path):
        if required:
            print(f"bench_compare: missing summary: {path}", file=sys.stderr)
            sys.exit(1)
        return None
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        if required:
            print(f"bench_compare: cannot read {path}: {error}",
                  file=sys.stderr)
            sys.exit(1)
        print(f"bench_compare: ignoring unreadable baseline {path}: {error}")
        return None
    if not isinstance(data, dict):
        if required:
            print(f"bench_compare: {path} is not a JSON object",
                  file=sys.stderr)
            sys.exit(1)
        return None
    return data


def benchmark_times(summary):
    """{name: real_time_ms} from a schema-v2 summary; tolerant of malformed
    entries (they are skipped, not fatal — the baseline may predate
    validation)."""
    out = {}
    entries = summary.get("benchmarks")
    if not isinstance(entries, list):
        return out
    for entry in entries:
        if not isinstance(entry, dict):
            continue
        name = entry.get("name")
        value = entry.get("real_time_ms")
        if isinstance(name, str) and isinstance(value, (int, float)) \
                and value > 0:
            out[name] = float(value)
    return out


def wall_clocks(summary):
    out = {}
    walls = summary.get("wall_clock_s")
    if not isinstance(walls, dict):
        return out
    for name, value in walls.items():
        if isinstance(name, str) and isinstance(value, (int, float)) \
                and value > 0:
            out[name] = float(value)
    return out


def allowlisted(name, allowlist):
    """True when `name` belongs to a gated benchmark family. Substring
    match: an allowlist entry names a family (`BM_ForwardBatch`) and covers
    every argumented instance (`BM_ForwardBatch/batch:32`)."""
    return any(entry in name for entry in allowlist)


def compare(fresh, baseline, threshold, fail_on=None, allowlist=()):
    """Returns (gated, regressions, improvements, common_count, one_sided).
    gated/regression/improvement entries are (kind, name, baseline_value,
    fresh_value, ratio-1); one_sided entries are (kind, name, side) for
    counters present in only one summary (new or retired benchmarks —
    skipped, not compared). A slowdown lands in `gated` when --fail-on is
    active, it exceeds fail_on, and the series is allowlisted (an empty
    allowlist gates everything); otherwise slowdowns beyond `threshold`
    land in `regressions`."""
    gated, regressions, improvements, one_sided = [], [], [], []
    common = 0
    for kind, extract in (("bench", benchmark_times), ("wall", wall_clocks)):
        fresh_map = extract(fresh)
        base_map = extract(baseline)
        for name in sorted(fresh_map.keys() ^ base_map.keys()):
            side = "fresh" if name in fresh_map else "baseline"
            one_sided.append((kind, name, side))
        for name in sorted(fresh_map.keys() & base_map.keys()):
            common += 1
            before, after = base_map[name], fresh_map[name]
            delta = after / before - 1.0
            gate_applies = fail_on is not None and (
                not allowlist or allowlisted(name, allowlist))
            if gate_applies and delta > fail_on:
                gated.append((kind, name, before, after, delta))
            elif delta > threshold:
                regressions.append((kind, name, before, after, delta))
            elif delta < -threshold:
                improvements.append((kind, name, before, after, delta))
    return gated, regressions, improvements, common, one_sided


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True,
                        help="summary generated by this run")
    parser.add_argument("--baseline", default="BENCH_micro.json",
                        help="committed baseline summary")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative slowdown that counts as a "
                             "regression (default 0.25 = +25%%)")
    parser.add_argument("--github-annotations", action="store_true",
                        help="emit ::warning:: lines for regressions")
    parser.add_argument("--fail-on", type=float, default=None,
                        help="relative slowdown beyond which allowlisted "
                             "series fail the run (exit 3); e.g. 0.35")
    parser.add_argument("--allowlist", action="append", default=[],
                        help="comma-separated benchmark families gated by "
                             "--fail-on (substring match; repeatable); "
                             "empty gates every series")
    args = parser.parse_args()
    if args.threshold <= 0:
        parser.error("--threshold must be > 0")
    if args.fail_on is not None and args.fail_on <= 0:
        parser.error("--fail-on must be > 0")
    allowlist = [entry.strip()
                 for chunk in args.allowlist
                 for entry in chunk.split(",") if entry.strip()]
    if allowlist and args.fail_on is None:
        parser.error("--allowlist requires --fail-on")

    fresh = load_summary(args.fresh, required=True)
    baseline = load_summary(args.baseline, required=False)
    if baseline is None:
        print(f"bench_compare: no baseline at {args.baseline}; nothing to "
              "compare (first run?)")
        return 0

    base_commit = baseline.get("commit", "?")
    gated, regressions, improvements, common, one_sided = compare(
        fresh, baseline, args.threshold, fail_on=args.fail_on,
        allowlist=allowlist)
    unit = {"bench": "ms", "wall": "s"}
    for kind, name, before, after, delta in gated:
        u = unit[kind]
        message = (f"{name}: {before:.2f}{u} -> {after:.2f}{u} "
                   f"(+{delta * 100.0:.0f}% vs baseline {base_commit}, "
                   f"gate {args.fail_on * 100.0:.0f}%)")
        print(f"bench_compare: GATED REGRESSION {message}")
        if args.github_annotations:
            print(f"::error title=bench gate::{message}")
    for kind, name, before, after, delta in regressions:
        u = unit[kind]
        message = (f"{name}: {before:.2f}{u} -> {after:.2f}{u} "
                   f"(+{delta * 100.0:.0f}% vs baseline {base_commit})")
        print(f"bench_compare: REGRESSION {message}")
        if args.github_annotations:
            # One annotation per regression; non-fatal by design (exit 0).
            print(f"::warning title=bench regression::{message}")
    for kind, name, before, after, delta in improvements:
        u = unit[kind]
        print(f"bench_compare: improvement {name}: {before:.2f}{u} -> "
              f"{after:.2f}{u} ({delta * 100.0:.0f}%)")
    for kind, name, side in one_sided:
        message = (f"{name} ({kind}) exists only in the {side} summary "
                   f"(new or retired series); skipped")
        print(f"bench_compare: skipped {message}")
        if args.github_annotations:
            print(f"::notice title=bench one-sided counter::{message}")
    print(f"bench_compare: {common} series compared, "
          f"{len(gated)} gated regression(s), "
          f"{len(regressions)} regression(s), "
          f"{len(improvements)} improvement(s) beyond "
          f"{args.threshold * 100.0:.0f}%, "
          f"{len(one_sided)} one-sided series skipped")
    return 3 if gated else 0


if __name__ == "__main__":
    sys.exit(main())
