#!/usr/bin/env python3
"""Convert bench outputs into the repo-root BENCH_micro.json summary.

Inputs
  --micro <path>       google-benchmark JSON (bench_micro --benchmark_out=...)
  --metrics name=path  a bench --metrics_out artifact to mine for pool.*
                       utilization and quality.* prediction-quality series
                       (repeatable)
  --wall name=seconds  whole-bench wall-clock measured by the caller
                       (repeatable)
  --out <path>         where to write the summary (default BENCH_micro.json)
  --commit <sha>       recorded verbatim (default $GITHUB_SHA, else "local")

Output schema (schema_version 4), validated before writing — an invalid
summary exits non-zero so CI fails instead of uploading garbage:

  {
    "schema_version": 4,
    "commit": str,
    "host": {"threads": int},
    "benchmarks": [
      {"name": str, "real_time_ms": float, "cpu_time_ms": float,
       "iterations": int}            # median across repeated entries
    ],
    "speedups": {                    # serial-vs-parallel pairs, by family
      "BM_CorpusGeneration": {"serial_ms": float, "parallel_ms": float,
                               "threads": int, "speedup": float}
    },
    "forward_batch": {               # batched-inference throughput, from
      "plans_per_sec": {str: float}, # BM_ForwardBatch/batch:N real_time
      "speedup_32v1": float | None   # plans/sec at batch 32 over batch 1
    },
    "train": {                       # training-path throughput, from the
      "plans_per_sec": {str: float}, # BM_TrainEpoch/threads:N/pooled:1
                                     # user counters (plans trained per
                                     # second of process CPU time)
      "allocs_per_batch": {          # nn-layer heap events per minibatch
        "pooled": float | None,      # arena path (threads:1/pooled:1)
        "fresh": float | None        # fresh-allocation path (pooled:0)
      },
      "alloc_reduction": float | None  # fresh / pooled
    },
    "cache": {str: {                 # prediction cache, per metrics artifact
      "hits": int, "misses": int, "evictions": int, "invalidations": int,
      "hit_rate": float | None}},    # hits / (hits + misses)
    "wall_clock_s": {str: float},
    "pool": {str: {"tasks_scheduled": int, "tasks_run": int,
                    "parallel_for_calls": int,
                    "steal_latency_us_p50": float | None,
                    "steal_latency_us_p95": float | None}},
    "quality": {str: {"samples": int, "drift_events": int,
                       "qerror_p50": float | None,
                       "qerror_p95": float | None,
                       "qerror_max": float | None}}
  }

The perf trajectory lives in this one committed file: CI regenerates it on
every push and uploads it as an artifact, so regressions show up as diffs.
"""

import argparse
import json
import os
import re
import statistics
import sys

SCHEMA_VERSION = 4

_TIME_UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def fail(message):
    print(f"bench_summary: {message}", file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot read {path}: {error}")


def summarize_micro(micro):
    """Median-aggregates google-benchmark entries by benchmark name."""
    if not isinstance(micro, dict):
        fail("google-benchmark JSON must be an object, got "
             f"{type(micro).__name__}")
    entries = micro.get("benchmarks")
    if not isinstance(entries, list) or not entries:
        fail("google-benchmark JSON has no 'benchmarks' entries")
    by_name = {}
    for entry in entries:
        if not isinstance(entry, dict):
            fail(f"malformed benchmark entry: {entry!r}")
        # Skip explicit aggregates (mean/median/stddev rows from
        # --benchmark_repetitions); we aggregate iterations ourselves.
        if entry.get("run_type") == "aggregate":
            continue
        name = entry.get("name")
        unit = entry.get("time_unit", "ns")
        if name is None or unit not in _TIME_UNIT_TO_MS:
            fail(f"malformed benchmark entry: {entry!r}")
        scale = _TIME_UNIT_TO_MS[unit]
        try:
            by_name.setdefault(name, []).append(
                {
                    "real_time_ms": float(entry["real_time"]) * scale,
                    "cpu_time_ms": float(entry["cpu_time"]) * scale,
                    "iterations": int(entry.get("iterations", 0)),
                }
            )
        except (KeyError, TypeError, ValueError) as error:
            fail(f"malformed benchmark entry {name!r}: {error!r}")
    benchmarks = []
    for name in sorted(by_name):
        runs = by_name[name]
        benchmarks.append(
            {
                "name": name,
                "real_time_ms": statistics.median(
                    r["real_time_ms"] for r in runs
                ),
                "cpu_time_ms": statistics.median(
                    r["cpu_time_ms"] for r in runs
                ),
                "iterations": max(r["iterations"] for r in runs),
            }
        )
    return benchmarks


def find_speedups(benchmarks):
    """Pairs <family>/threads:1 with the largest <family>/threads:N."""
    families = {}
    pattern = re.compile(r"^(?P<family>[^/]+)/threads:(?P<threads>\d+)")
    for bench in benchmarks:
        match = pattern.match(bench["name"])
        if not match:
            continue
        family = families.setdefault(match.group("family"), {})
        family[int(match.group("threads"))] = bench["real_time_ms"]
    speedups = {}
    for family, by_threads in families.items():
        if 1 not in by_threads or len(by_threads) < 2:
            continue
        parallel_threads = max(t for t in by_threads if t != 1)
        serial_ms = by_threads[1]
        parallel_ms = by_threads[parallel_threads]
        speedups[family] = {
            "serial_ms": serial_ms,
            "parallel_ms": parallel_ms,
            "threads": parallel_threads,
            "speedup": serial_ms / parallel_ms if parallel_ms > 0 else 0.0,
        }
    return speedups


def find_forward_batch(benchmarks):
    """Batched-inference throughput: BM_ForwardBatch/batch:N measures one
    ForwardBatch call over N plans, so plans/sec = N / real_time. The
    headline ratio is plans/sec at batch 32 over batch 1 — how much the
    batched serving path amortizes per-call overhead."""
    pattern = re.compile(r"^BM_ForwardBatch/batch:(?P<batch>\d+)$")
    plans_per_sec = {}
    for bench in benchmarks:
        match = pattern.match(bench["name"])
        if not match or bench["real_time_ms"] <= 0:
            continue
        batch = int(match.group("batch"))
        plans_per_sec[str(batch)] = batch / (bench["real_time_ms"] / 1e3)
    speedup = None
    if "1" in plans_per_sec and "32" in plans_per_sec \
            and plans_per_sec["1"] > 0:
        speedup = plans_per_sec["32"] / plans_per_sec["1"]
    return {"plans_per_sec": plans_per_sec, "speedup_32v1": speedup}


def find_train(micro):
    """Training-path throughput from BM_TrainEpoch's user counters, read
    from the raw google-benchmark entries (summarize_micro keeps only the
    timing triple). plans_per_sec comes from the pooled rows per thread
    count; allocs_per_batch contrasts the threads:1 pooled row against the
    threads:1 fresh-allocation (pooled:0) reference row."""
    entries = micro.get("benchmarks") if isinstance(micro, dict) else None
    if not isinstance(entries, list):
        entries = []
    pattern = re.compile(
        r"^BM_TrainEpoch/threads:(?P<threads>\d+)/pooled:(?P<pooled>\d+)")
    plans_per_sec = {}
    allocs = {"pooled": None, "fresh": None}
    for entry in entries:
        if not isinstance(entry, dict) or entry.get("run_type") == "aggregate":
            continue
        match = pattern.match(entry.get("name") or "")
        if not match:
            continue
        threads = match.group("threads")
        pooled = match.group("pooled") != "0"
        pps = entry.get("plans_per_sec")
        if pooled and isinstance(pps, (int, float)) and pps > 0:
            plans_per_sec[threads] = float(pps)
        if threads == "1":
            apb = entry.get("allocs_per_batch")
            if isinstance(apb, (int, float)) and apb >= 0:
                allocs["pooled" if pooled else "fresh"] = float(apb)
    reduction = None
    if allocs["pooled"] and allocs["fresh"]:
        reduction = allocs["fresh"] / allocs["pooled"]
    return {
        "plans_per_sec": plans_per_sec,
        "allocs_per_batch": allocs,
        "alloc_reduction": reduction,
    }


def extract_cache_stats(artifact):
    """Prediction-cache traffic from a metrics artifact's cache.* counters.
    Returns None when the artifact predates the cache (no counters)."""
    metrics = _as_dict(_as_dict(artifact).get("metrics"))
    counters = _as_dict(metrics.get("counters"))
    if not any(key.startswith("cache.") for key in counters):
        return None
    hits = _count(counters, "cache.hit")
    misses = _count(counters, "cache.miss")
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "evictions": _count(counters, "cache.evict"),
        "invalidations": _count(counters, "cache.invalidation"),
        "hit_rate": hits / total if total > 0 else None,
    }


def _as_dict(value):
    """Defensive accessor for metrics artifacts: malformed sections read as
    empty instead of raising AttributeError mid-summary."""
    return value if isinstance(value, dict) else {}


def _count(mapping, key):
    value = mapping.get(key, 0)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(f"{key} must be numeric, got {value!r}")
    return int(value)


def extract_pool_stats(artifact):
    metrics = _as_dict(_as_dict(artifact).get("metrics"))
    counters = _as_dict(metrics.get("counters"))
    steal = _as_dict(metrics.get("histograms")).get("pool.steal_latency_us")
    steal = steal if isinstance(steal, dict) else {}
    return {
        "tasks_scheduled": _count(counters, "pool.tasks_scheduled"),
        "tasks_run": _count(counters, "pool.tasks_run"),
        "parallel_for_calls": _count(counters, "pool.parallel_for_calls"),
        "steal_latency_us_p50": _maybe_float(steal.get("p50")),
        "steal_latency_us_p95": _maybe_float(steal.get("p95")),
    }


def extract_quality_stats(artifact):
    """Folds the prediction-quality monitor section (or, failing that, the
    raw quality.* metrics) into per-bench q-error quantiles. Returns None
    when the artifact carries no quality data at all."""
    quality = _as_dict(artifact).get("quality")
    if isinstance(quality, dict):
        qerror = _as_dict(quality.get("qerror"))
        drift = _as_dict(quality.get("drift"))
        return {
            "samples": _count(quality, "samples"),
            "drift_events": _count(drift, "events"),
            "qerror_p50": _maybe_float(qerror.get("p50")),
            "qerror_p95": _maybe_float(qerror.get("p95")),
            "qerror_max": _maybe_float(qerror.get("max")),
        }
    metrics = _as_dict(_as_dict(artifact).get("metrics"))
    histogram = _as_dict(metrics.get("histograms")).get("quality.qerror")
    if not isinstance(histogram, dict):
        return None
    counters = _as_dict(metrics.get("counters"))
    return {
        "samples": _count(counters, "quality.samples"),
        "drift_events": _count(counters, "quality.drift_events"),
        "qerror_p50": _maybe_float(histogram.get("p50")),
        "qerror_p95": _maybe_float(histogram.get("p95")),
        "qerror_max": _maybe_float(histogram.get("max")),
    }


def _maybe_float(value):
    return float(value) if isinstance(value, (int, float)) else None


def validate(summary):
    """Hand-rolled schema check (no external jsonschema dependency)."""

    def expect(condition, what):
        if not condition:
            fail(f"schema violation: {what}")

    expect(summary.get("schema_version") == SCHEMA_VERSION, "schema_version")
    expect(isinstance(summary.get("commit"), str), "commit must be a string")
    host = summary.get("host")
    expect(
        isinstance(host, dict) and isinstance(host.get("threads"), int),
        "host.threads must be an int",
    )
    benchmarks = summary.get("benchmarks")
    expect(
        isinstance(benchmarks, list) and benchmarks,
        "benchmarks must be a non-empty list",
    )
    for bench in benchmarks:
        expect(isinstance(bench.get("name"), str), "benchmark name")
        for key in ("real_time_ms", "cpu_time_ms"):
            value = bench.get(key)
            expect(
                isinstance(value, (int, float)) and value >= 0,
                f"{bench.get('name')}: {key}",
            )
        expect(
            isinstance(bench.get("iterations"), int)
            and bench["iterations"] >= 0,
            f"{bench.get('name')}: iterations",
        )
    expect(isinstance(summary.get("speedups"), dict), "speedups must be a dict")
    for family, pair in summary["speedups"].items():
        for key in ("serial_ms", "parallel_ms", "speedup"):
            expect(
                isinstance(pair.get(key), (int, float)),
                f"speedups.{family}.{key}",
            )
        expect(isinstance(pair.get("threads"), int), f"speedups.{family}.threads")
    expect(
        isinstance(summary.get("wall_clock_s"), dict),
        "wall_clock_s must be a dict",
    )
    for name, seconds in summary["wall_clock_s"].items():
        expect(
            isinstance(seconds, (int, float)) and seconds >= 0,
            f"wall_clock_s.{name}",
        )
    forward_batch = summary.get("forward_batch")
    expect(isinstance(forward_batch, dict), "forward_batch must be a dict")
    throughput = forward_batch.get("plans_per_sec")
    expect(isinstance(throughput, dict), "forward_batch.plans_per_sec")
    for batch, value in throughput.items():
        expect(
            isinstance(batch, str) and batch.isdigit()
            and isinstance(value, (int, float)) and value > 0,
            f"forward_batch.plans_per_sec[{batch!r}]",
        )
    speedup = forward_batch.get("speedup_32v1")
    expect(
        speedup is None or (isinstance(speedup, (int, float)) and speedup > 0),
        "forward_batch.speedup_32v1",
    )
    train = summary.get("train")
    expect(isinstance(train, dict), "train must be a dict")
    train_throughput = train.get("plans_per_sec")
    expect(isinstance(train_throughput, dict), "train.plans_per_sec")
    for threads, value in train_throughput.items():
        expect(
            isinstance(threads, str) and threads.isdigit()
            and isinstance(value, (int, float)) and value > 0,
            f"train.plans_per_sec[{threads!r}]",
        )
    train_allocs = train.get("allocs_per_batch")
    expect(isinstance(train_allocs, dict), "train.allocs_per_batch")
    for key in ("pooled", "fresh"):
        value = train_allocs.get(key)
        expect(
            value is None or (isinstance(value, (int, float)) and value >= 0),
            f"train.allocs_per_batch.{key}",
        )
    reduction = train.get("alloc_reduction")
    expect(
        reduction is None
        or (isinstance(reduction, (int, float)) and reduction > 0),
        "train.alloc_reduction",
    )
    expect(isinstance(summary.get("cache"), dict), "cache must be a dict")
    for name, stats in summary["cache"].items():
        for key in ("hits", "misses", "evictions", "invalidations"):
            expect(
                isinstance(stats.get(key), int) and stats[key] >= 0,
                f"cache.{name}.{key}",
            )
        rate = stats.get("hit_rate")
        expect(
            rate is None
            or (isinstance(rate, (int, float)) and 0.0 <= rate <= 1.0),
            f"cache.{name}.hit_rate",
        )
    expect(isinstance(summary.get("pool"), dict), "pool must be a dict")
    expect(isinstance(summary.get("quality"), dict), "quality must be a dict")
    for name, stats in summary["quality"].items():
        for key in ("samples", "drift_events"):
            expect(
                isinstance(stats.get(key), int) and stats[key] >= 0,
                f"quality.{name}.{key}",
            )
        for key in ("qerror_p50", "qerror_p95", "qerror_max"):
            value = stats.get(key)
            expect(
                value is None or isinstance(value, (int, float)),
                f"quality.{name}.{key}",
            )


def parse_pairs(pairs, value_type, flag):
    out = {}
    for pair in pairs:
        if "=" not in pair:
            fail(f"{flag} expects name=value, got {pair!r}")
        name, _, value = pair.partition("=")
        try:
            out[name] = value_type(value)
        except ValueError:
            fail(f"{flag} {name}: bad value {value!r}")
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--micro", required=True)
    parser.add_argument("--metrics", action="append", default=[])
    parser.add_argument("--wall", action="append", default=[])
    parser.add_argument("--out", default="BENCH_micro.json")
    parser.add_argument(
        "--commit", default=os.environ.get("GITHUB_SHA", "local")
    )
    args = parser.parse_args()

    micro = load_json(args.micro)
    benchmarks = summarize_micro(micro)
    artifacts = {
        name: load_json(path)
        for name, path in parse_pairs(args.metrics, str, "--metrics").items()
    }
    pool = {
        name: extract_pool_stats(artifact)
        for name, artifact in artifacts.items()
    }
    quality = {}
    for name, artifact in artifacts.items():
        stats = extract_quality_stats(artifact)
        if stats is not None:
            quality[name] = stats
    cache = {}
    for name, artifact in artifacts.items():
        stats = extract_cache_stats(artifact)
        if stats is not None:
            cache[name] = stats
    summary = {
        "schema_version": SCHEMA_VERSION,
        "commit": args.commit,
        "host": {"threads": os.cpu_count() or 1},
        "benchmarks": benchmarks,
        "speedups": find_speedups(benchmarks),
        "forward_batch": find_forward_batch(benchmarks),
        "train": find_train(micro),
        "cache": cache,
        "wall_clock_s": parse_pairs(args.wall, float, "--wall"),
        "pool": pool,
        "quality": quality,
    }
    validate(summary)
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"bench_summary: wrote {args.out}")
    for family, pair in summary["speedups"].items():
        print(
            f"bench_summary: {family}: {pair['serial_ms']:.1f} ms serial vs "
            f"{pair['parallel_ms']:.1f} ms at {pair['threads']} threads "
            f"({pair['speedup']:.2f}x)"
        )
    batch_speedup = summary["forward_batch"]["speedup_32v1"]
    if batch_speedup is not None:
        per_sec = summary["forward_batch"]["plans_per_sec"]
        print(
            f"bench_summary: forward batch: {per_sec['1']:.0f} plans/s "
            f"serial vs {per_sec['32']:.0f} plans/s at batch 32 "
            f"({batch_speedup:.2f}x)"
        )
    train = summary["train"]
    if train["plans_per_sec"]:
        rates = ", ".join(
            f"{value:.0f} plans/s at {threads} thread(s)"
            for threads, value in sorted(train["plans_per_sec"].items())
        )
        reduction = train["alloc_reduction"]
        print(
            f"bench_summary: train: {rates}; allocs/batch "
            f"pooled={train['allocs_per_batch']['pooled']} "
            f"fresh={train['allocs_per_batch']['fresh']} "
            f"({f'{reduction:.1f}x fewer' if reduction else 'n/a'})"
        )
    for name, stats in summary["cache"].items():
        rate = stats["hit_rate"]
        print(
            f"bench_summary: {name}: cache "
            f"{stats['hits']} hit(s) / {stats['misses']} miss(es), "
            f"hit rate {f'{rate:.2f}' if rate is not None else 'n/a'}, "
            f"{stats['evictions']} eviction(s)"
        )
    for name, stats in summary["quality"].items():
        p50 = stats["qerror_p50"]
        p95 = stats["qerror_p95"]
        print(
            f"bench_summary: {name}: quality q-error p50="
            f"{p50 if p50 is not None else 'n/a'} p95="
            f"{p95 if p95 is not None else 'n/a'} over "
            f"{stats['samples']} samples, {stats['drift_events']} drift "
            "event(s)"
        )


if __name__ == "__main__":
    main()
