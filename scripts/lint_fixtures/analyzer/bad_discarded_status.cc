// Fixture: discarded-status — statement-level calls to Status-returning
// functions, including through a `using` alias the regex-based
// [[nodiscard]] gate in zerodb_lint cannot see.
namespace zerodb {

struct Status {};

using Result = Status;

Result Flush();
Status Commit();

void Tick() {
  Flush();  // expect-analyzer: discarded-status
  Commit();  // expect-analyzer: discarded-status
}

}  // namespace zerodb
