// Fixture: statusor-deref — dereferencing a StatusOr on a path where
// ok() was never established, with StatusOr-ness inferred across the call
// graph for `auto` locals, and Status results that die unchecked.
// analyzer-fixture: module(zeroshot)
namespace zerodb {

StatusOr<double> EstimateQueryMs(int query) {
  if (query < 0) return Status::InvalidArgument("negative query id");
  return 1.5;
}

Status SaveWeights(int model) {
  if (model < 0) return Status::InvalidArgument("bad model");
  return Status::OK();
}

double DerefAutoWithoutCheck(int query) {
  auto estimate = EstimateQueryMs(query);  // StatusOr via the call graph
  return estimate.value();  // expect-analyzer: statusor-deref
}

double DerefStarWithoutCheck(int query) {
  StatusOr<double> estimate = EstimateQueryMs(query);
  double v = *estimate;  // expect-analyzer: statusor-deref
  return v;
}

void StatusDiesInFrame(int model) {
  auto saved = SaveWeights(model);  // expect-analyzer: statusor-deref
}

}  // namespace zerodb
