// Fixture: hot-alloc — heap allocation and unreserved container growth
// reachable from the executor's per-row Exec*/Next loops, including
// through callees invoked from inside those loops (loop-hot propagation).
// analyzer-fixture: module(exec)
namespace zerodb {

void AppendRow(std::vector<double>* out, double v) {
  out->push_back(v);  // expect-analyzer: hot-alloc
}

void ExecScan(const std::vector<double>& input, std::vector<double>* rows) {
  std::vector<double> selected;
  for (double v : input) {
    double* scratch = new double[8];  // expect-analyzer: hot-alloc
    scratch[0] = v;
    selected.push_back(scratch[0]);  // expect-analyzer: hot-alloc
    AppendRow(rows, selected.back());
  }
}

}  // namespace zerodb
