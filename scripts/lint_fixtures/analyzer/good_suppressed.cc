// Fixture: justified suppressions — every would-be finding carries a
// `// zerodb-lint: allow(...)` (including the comma-separated multi-rule
// form with spaces), so the analyzer must stay silent.
#include <chrono>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

namespace zerodb {

double DiagnosticStamp() {
  // Wall clock feeds a human-readable log prefix only, never model state.
  // zerodb-lint: allow(nondet-call)
  auto now = std::chrono::system_clock::now();
  (void)now;
  return 0.0;
}

int ThreadsFromEnv() {
  // Config read: changes parallelism, results stay bit-identical.
  const char* env = getenv("ZERODB_THREADS");  // zerodb-lint: allow(nondet-call, nondet-iter)
  return env ? 1 : 0;
}

std::vector<std::string> CollectThenSort() {
  std::unordered_map<std::string, int> counts;
  std::vector<std::string> keys;
  // Collection order is irrelevant: callers sort keys before use.
  // zerodb-lint: allow(nondet-iter)
  for (const auto& entry : counts) {
    keys.push_back(entry.first);
  }
  return keys;
}

}  // namespace zerodb
