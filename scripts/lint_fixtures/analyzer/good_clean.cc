// Fixture: clean code — the analyzer must report zero findings here.
// Exercises the precision side of every check: ordered containers,
// commutative folds over unordered ones, a consistent lock order,
// member/parameter view returns, and properly consumed Status values.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace zerodb {

class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

struct Status {};

Status Persist();

// Ordered container: iteration order is defined, sinks are fine.
std::vector<std::string> ExportOrdered() {
  std::map<std::string, int> counts;
  std::vector<std::string> out;
  for (const auto& entry : counts) {
    out.push_back(entry.first);
  }
  return out;
}

// Unordered container, but the fold is commutative (max) — no sink.
int MaxCount() {
  std::unordered_map<std::string, int> counts;
  int best = 0;
  for (const auto& entry : counts) {
    best = best < entry.second ? entry.second : best;
  }
  return best;
}

struct State {
  Mutex mu;
  Mutex io_mu;
};

// Both paths take mu before io_mu: edges exist, no cycle.
void Checkpoint(State* s) {
  MutexLock l1(&s->mu);
  MutexLock l2(&s->io_mu);
}

void Compact(State* s) {
  MutexLock l1(&s->mu);
  MutexLock l2(&s->io_mu);
}

// Returning a view of a parameter or a reference to a member is fine.
std::string_view Trim(std::string_view text) {
  return text;
}

class Config {
 public:
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

void Shutdown() {
  Status s = Persist();
  (void)s;
}

}  // namespace zerodb
