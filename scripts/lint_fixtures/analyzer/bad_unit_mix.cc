// Fixture: unit-mix — the interprocedural dimensional analysis over the
// common/units.h tag lattice (ms / log-ms / rows / bytes / selectivity).
// Tags seed from declared strong types and propagate through assignments,
// call arguments and return values; mixing dimensions without a named
// conversion (ToLog / FromLog / FromRows) is flagged.
// analyzer-fixture: module(models)
namespace zerodb {

double Normalize(LogMillis value) { return value.value(); }

double Budget(Millis limit) { return limit.value(); }

Millis EstimateMs() { return Millis(42.0); }

void ParamMix(Millis predicted) {
  Normalize(predicted);  // expect-analyzer: unit-mix
}

void ConstructorRetag(Rows rows) {
  Millis wrong = Millis(rows);  // expect-analyzer: unit-mix
  Budget(wrong);
}

double ArithmeticMix(Millis ms, Rows rows) {
  return ms.value() + rows.value();  // expect-analyzer: unit-mix
}

LogMillis ReturnMix(Millis ms) {
  return ms;  // expect-analyzer: unit-mix
}

void InterproceduralMix() {
  auto predicted = EstimateMs();  // tagged ms via the call graph
  Normalize(predicted);  // expect-analyzer: unit-mix
}

}  // namespace zerodb
