// Fixture: nondet-iter — range-for over an unordered container feeding an
// order-sensitive sink (sequence accumulation). Iteration order is a
// hash-table artifact, so the produced vector differs across runs.
#include <string>
#include <unordered_map>
#include <vector>

namespace zerodb {

std::vector<std::string> ExportCountsBad() {
  std::unordered_map<std::string, int> counts;
  counts["a"] = 1;
  std::vector<std::string> out;
  for (const auto& entry : counts) {  // expect-analyzer: nondet-iter
    out.push_back(entry.first);
  }
  return out;
}

}  // namespace zerodb
