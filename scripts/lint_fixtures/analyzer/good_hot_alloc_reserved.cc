// Fixture: hot-alloc negative space — growth with capacity established by
// a reserve() on the same receiver (directly or in a loop-hot callee),
// and cold functions never reached from a per-row root.
// analyzer-fixture: module(exec)
namespace zerodb {

void AppendRows(std::vector<double>* out, int n) {
  out->reserve(out->size() + static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out->push_back(static_cast<double>(i));
}

void ExecProject(const std::vector<double>& input) {
  std::vector<double> selected;
  selected.reserve(input.size());
  for (double v : input) {
    if (v > 0.0) selected.push_back(v);
    AppendRows(&selected, 2);
  }
}

void ColdPathGrowth(std::vector<double>* out) {
  out->push_back(1.0);  // never reached from Exec*/Next/RunShard
}

}  // namespace zerodb
