// Fixture: lifetime — string_view/reference returns bound to function-local
// storage or temporaries, and classes storing view/reference members.
#include <string>
#include <string_view>

namespace zerodb {

std::string_view NameBad() {
  std::string local = "zerodb";
  return local;  // expect-analyzer: lifetime-return
}

std::string_view TempBad(int code) {
  return "code-" + std::to_string(code);  // expect-analyzer: lifetime-return
}

const std::string& RefBad() {
  std::string scratch = "scratch";
  return scratch;  // expect-analyzer: lifetime-return
}

class ViewHolder {
 public:
  explicit ViewHolder(std::string_view name) : name_(name), backing_(own_) {}

 private:
  std::string own_;
  std::string_view name_;  // expect-analyzer: lifetime-member
  const std::string& backing_;  // expect-analyzer: lifetime-member
};

}  // namespace zerodb
