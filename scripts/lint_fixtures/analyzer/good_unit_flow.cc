// Fixture: unit-mix negative space — dimension changes through the named
// conversions in common/units.h, same-unit arithmetic, and dimensionless
// ratios must all stay silent.
// analyzer-fixture: module(models)
namespace zerodb {

double Normalize(LogMillis value) { return value.value(); }

void NamedConversion(Millis predicted) {
  Normalize(predicted.ToLog());  // ms -> log-ms, explicitly
}

Millis Readout(LogMillis log_ms) { return Millis::FromLog(log_ms); }

Millis SameUnitSum(Millis a, Millis b) { return a + b; }

double Ratio(Millis a, Millis b) { return a / b; }

Selectivity FromCardinalities(Rows out_rows, Rows in_rows) {
  return Selectivity::FromRows(out_rows, in_rows);
}

double RawScaling(Millis ms) { return ms.value() * 2.0; }

}  // namespace zerodb
