// analyzer-fixture: module(storage)
// Fixture: layering — a file in src/storage/ reaches *up* the module DAG
// into exec; only strictly lower layers (common, obs, ...) are legal.
#include "common/status.h"
#include "exec/executor.h"  // expect-analyzer: layering

namespace zerodb {
namespace storage {}
}  // namespace zerodb
