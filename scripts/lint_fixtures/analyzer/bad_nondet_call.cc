// Fixture: nondet-call — ambient nondeterminism outside the allowlist
// (src/common/rng.*, src/obs/, bench/). Every marked line must be flagged.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace zerodb {

double NowSeconds() {
  auto t = std::chrono::steady_clock::now();  // expect-analyzer: nondet-call
  (void)t;
  return 0.0;
}

int DrawBad() {
  std::random_device rd;  // expect-analyzer: nondet-call
  (void)rd;
  return rand();  // expect-analyzer: nondet-call
}

const char* HomeDir() {
  return getenv("HOME");  // expect-analyzer: nondet-call
}

long StampBad() {
  return ::time(nullptr);  // expect-analyzer: nondet-call
}

}  // namespace zerodb
