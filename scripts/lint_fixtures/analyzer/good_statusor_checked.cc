// Fixture: statusor-deref negative space — ok() guards, the ZDB check
// macros, and returning/forwarding the Status all establish ok-ness.
// analyzer-fixture: module(zeroshot)
namespace zerodb {

StatusOr<double> EstimateQueryMs(int query) {
  if (query < 0) return Status::InvalidArgument("negative query id");
  return 1.5;
}

Status SaveWeights(int model) {
  if (model < 0) return Status::InvalidArgument("bad model");
  return Status::OK();
}

double GuardedDeref(int query) {
  auto estimate = EstimateQueryMs(query);
  if (!estimate.ok()) return 0.0;
  return estimate.value();
}

void MacroChecked(int model) {
  auto saved = SaveWeights(model);
  ZDB_CHECK_OK(saved);
}

Status Forwarded(int model) {
  auto saved = SaveWeights(model);
  return saved;
}

}  // namespace zerodb
