// Fixture: hot-alloc pool-API allow-list — the arena/buffer-pool
// implementation allocates by design (slab growth, bucket miss); it is
// exempt by qualified name so the pool sources carry no inline
// suppressions. (bad_hot_alloc.cc pins that non-pool callees on the same
// kind of hot path are still flagged.)
// analyzer-fixture: module(train)
namespace zerodb {

struct GraphArena {
  void* NewNode();
  std::vector<char*> slabs_;
};

void* GraphArena::NewNode() {
  char* slab = new char[4096];  // pool slow path: exempt by allow-list
  slabs_.push_back(slab);       // exempt by allow-list
  return slab;
}

void AcquirePooledFloats(std::vector<std::vector<float>>* pool) {
  pool->push_back(std::vector<float>(8));  // exempt by allow-list
}

void RunShard(const std::vector<double>& batch, GraphArena* arena,
              std::vector<std::vector<float>>* pool,
              std::vector<double>* out) {
  out->reserve(batch.size());
  for (double v : batch) {
    arena->NewNode();
    AcquirePooledFloats(pool);
    out->push_back(v);
  }
}

}  // namespace zerodb
