// Fixture: lock-order — two code paths acquire the same pair of locks in
// opposite orders, closing a cycle in the cross-TU lock-order graph.
namespace zerodb {

class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

struct Channels {
  Mutex a_mu;
  Mutex b_mu;
};

void Send(Channels* ch) {
  MutexLock hold_a(&ch->a_mu);
  MutexLock hold_b(&ch->b_mu);  // expect-analyzer: lock-order
}

void Drain(Channels* ch) {
  MutexLock hold_b(&ch->b_mu);
  MutexLock hold_a(&ch->a_mu);  // expect-analyzer: lock-order
}

}  // namespace zerodb
