// Fixture: uses thread-safety annotation macros and the annotated sync
// types without directly including common/thread_annotations.h or
// common/sync.h. Transitive includes don't count for locking primitives:
// the contract must be visible in the file that states it.

namespace fixture {

class Counter {
 public:
  void Add(int delta) {
    MutexLock lock(&mu_);  // expect-lint: include-hygiene
    total_ += delta;
  }

 private:
  Mutex mu_;
  int total_ ZDB_GUARDED_BY(mu_) = 0;  // expect-lint: include-hygiene
};

}  // namespace fixture
