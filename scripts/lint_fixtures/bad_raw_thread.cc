// Known-bad fixture for the raw-thread rule: every way of spawning a thread
// outside src/common/thread_pool.* must be flagged. Work fans out through
// zerodb::ThreadPool so pool metrics, shutdown draining and the determinism
// contracts stay centralized. This file is never compiled; it exists so
// `scripts/zerodb_lint.py --self-test` proves the rule fires.

#include <future>
#include <thread>

namespace zerodb {

void SpawnJoined() {
  std::thread worker([] {});  // expect-lint: raw-thread
  worker.join();
}

void SpawnDetached() {
  std::thread worker([] {});  // expect-lint: raw-thread
  worker.detach();            // expect-lint: raw-thread
}

void SpawnJThread() {
  std::jthread worker([] {});  // expect-lint: raw-thread
}

void SpawnAsync() {
  auto result = std::async([] { return 1; });  // expect-lint: raw-thread
  result.get();
}

}  // namespace zerodb
