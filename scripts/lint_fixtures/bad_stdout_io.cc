// Fixture: direct stdout/stderr I/O in library code. Correct code logs
// through ZDB_LOG so sink redirection, levels and line atomicity hold.
#include <cstdio>
#include <iostream>

namespace fixture {

void Report(int rows) {
  std::cout << "rows=" << rows << "\n";     // expect-lint: stdout-io
  std::cerr << "done\n";                    // expect-lint: stdout-io
  printf("rows=%d\n", rows);                // expect-lint: stdout-io
  fprintf(stderr, "rows=%d\n", rows);       // expect-lint: stdout-io
  // snprintf formats into a buffer — not output, must NOT be flagged:
  char buf[32];
  snprintf(buf, sizeof(buf), "%d", rows);
  // Mentioning std::cout in a comment or "printf(" in a string is fine:
  const char* s = "printf(";
  (void)s;  // silence unused warning; string content must not be linted
}

}  // namespace fixture
