// Fixture: raw standard-library sync primitives outside src/common/sync.
// Correct code uses zerodb::Mutex / MutexLock / CondVar (common/sync.h).
#include <condition_variable>
#include <mutex>

namespace fixture {

class Queue {
 public:
  void Push() {
    std::lock_guard<std::mutex> lock(mu_);  // expect-lint: raw-mutex
    cv_.notify_one();
  }

  void Pop() {
    std::unique_lock<std::mutex> lock(mu_);  // expect-lint: raw-mutex
    cv_.wait(lock);
  }

 private:
  std::mutex mu_;               // expect-lint: raw-mutex
  std::condition_variable cv_;  // expect-lint: raw-mutex
};

}  // namespace fixture
