// Fixture: `new` without immediate smart-pointer ownership. Correct code
// uses std::make_unique, or the `static X* x = new X` leak-singleton idiom
// for process-lifetime objects, or a suppression with a reason.
#include <memory>

namespace fixture {

struct Node {
  int value = 0;
};

Node* Make() {
  return new Node();  // expect-lint: naked-new
}

void Ok() {
  auto owned = std::unique_ptr<Node>(new Node());  // owned: not flagged
  auto made = std::make_unique<Node>();
  static Node* singleton = new Node();  // leak-singleton idiom: not flagged
  // zerodb-lint: allow(naked-new) — exercising the suppression path.
  Node* suppressed = new Node();
  delete suppressed;
  (void)owned;  // keep -Wunused quiet in fixture-land
  (void)made;
  (void)singleton;
}

}  // namespace fixture
