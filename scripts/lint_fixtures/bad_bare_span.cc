// Known-bad fixture for the bare-span rule: manual BeginSpan/EndSpan pairs
// outside src/obs/ must be flagged. An early return or exception between the
// two calls leaves the tracer's span stack unbalanced, so instrumentation
// goes through the RAII obs::SpanScope (or obs::TimelineScope). This file is
// never compiled; it exists so `scripts/zerodb_lint.py --self-test` proves
// the rule fires.

#include "obs/trace.h"

namespace zerodb {

void ManuallyPairedSpan(obs::QueryTracer* tracer) {
  tracer->BeginSpan("query");  // expect-lint: bare-span
  tracer->EndSpan();           // expect-lint: bare-span
}

bool LeakOnEarlyReturn(obs::QueryTracer* tracer, bool fail) {
  obs::Span* span = tracer->BeginSpan("scan");  // expect-lint: bare-span
  span->AddAttribute("rows", 0.0);
  if (fail) return false;  // span never ended — the stack is now wrong
  tracer->EndSpan();  // expect-lint: bare-span
  return true;
}

}  // namespace zerodb
