// Fixture: fully conformant locking code — zero findings expected. This
// pins the linter's precision: every rule must stay quiet here.
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/sync.h"

namespace fixture {

class EventLog {
 public:
  void Append(int event) {
    MutexLock lock(&mu_);
    events_.push_back(event);
    if (events_.size() % 1000 == 0) {
      ZDB_LOG(Info) << "events: " << events_.size();
    }
  }

  bool WaitNonEmpty(double timeout_ms) {
    MutexLock lock(&mu_);
    while (events_.empty()) {
      if (!cv_.WaitFor(&mu_, timeout_ms)) return false;
    }
    return true;
  }

 private:
  Mutex mu_;
  CondVar cv_;
  std::vector<int> events_ ZDB_GUARDED_BY(mu_);
};

EventLog* GlobalLog() {
  // Process-lifetime singleton, deliberately leaked (destruction-order
  // safety); `static ... = new` is the sanctioned idiom.
  static EventLog* log = new EventLog();
  return log;
}

}  // namespace fixture
