// Fixture: (void)-discarding a [[nodiscard]] call with no justification.
// Correct code handles the Status, wraps it in ZDB_CHECK_OK, or casts to
// void with a nearby comment saying why ignoring the error is sound.

namespace fixture {

struct [[nodiscard]] Status {
  bool ok = true;
};

Status DoWork();
Status Cleanup();

void Run() {
  (void)DoWork();  // expect-lint: discarded-status

  // Best-effort teardown: the object is going away either way, and there
  // is no caller to report to — a justified discard is not flagged.
  (void)Cleanup();
}

}  // namespace fixture
