#!/usr/bin/env bash
# Static-analysis runner. Usage:
#   scripts/lint.sh             # zerodb-lint + clang-tidy over src/
#   scripts/lint.sh --format    # clang-format verify-only pass (no rewrites)
#   scripts/lint.sh src/nn      # zerodb-lint + clang-tidy over one subtree
#
# ZERODB_LINT_BASE=<ref> switches the python analyzers to their
# --changed-only fast path against that ref (pre-commit loop; the analyzer
# still parses the whole tree so cross-TU checks stay sound, but reports
# only findings the changed files can influence via the call graph).
#
# Exits non-zero on any finding. When an *optional external* tool is not
# installed (clang-tidy/clang-format in minimal containers that only ship
# gcc), prints a SKIPPED notice and exits 0 so the rest of the verification
# pipeline (`-Werror` build, UBSan, debug validators) still gates the tree;
# CI installs the tools and runs the real thing. zerodb_lint.py is NOT
# optional: it needs only python3, and findings always fail the run.
#
# scripts/lint_fixtures/ (known-bad zerodb-lint snippets) is exempt from
# tidy and format: the tidy/format file globs below cover only
# src/tests/bench/examples, and the fixture directory carries its own
# .clang-tidy disabling every check.
set -euo pipefail

cd "$(dirname "$0")/.."

find_tool() {
  # Accept both plain and versioned binaries (clang-tidy-18, ...).
  local base="$1"
  if command -v "$base" > /dev/null 2>&1; then
    echo "$base"
    return 0
  fi
  local versioned
  versioned="$(compgen -c "$base-" 2> /dev/null | grep -E "^$base-[0-9]+$" \
               | sort -t- -k3 -rn | head -1 || true)"
  if [[ -n "$versioned" ]]; then
    echo "$versioned"
    return 0
  fi
  return 1
}

if [[ "${1-}" == "--format" ]]; then
  if ! FORMATTER="$(find_tool clang-format)"; then
    echo "lint.sh: SKIPPED (clang-format not installed)" >&2
    exit 0
  fi
  mapfile -t files < <(git ls-files \
    'src/**/*.h' 'src/**/*.cc' 'tests/*.cc' 'bench/*.cc' 'bench/*.h' \
    'examples/*.cpp')
  echo "lint.sh: checking formatting of ${#files[@]} files with $FORMATTER"
  "$FORMATTER" --dry-run --Werror "${files[@]}"
  echo "lint.sh: formatting clean"
  exit 0
fi

# --- zerodb-lint: repo invariants (raw-mutex, raw-thread, stdout-io,
# naked-new, discarded-status, include-hygiene). Self-test first so a broken
# linter
# can't silently pass the tree.
if command -v python3 > /dev/null 2>&1; then
  echo "lint.sh: zerodb-lint self-test"
  python3 scripts/zerodb_lint.py --self-test
  if [[ -n "${ZERODB_LINT_BASE-}" ]]; then
    echo "lint.sh: zerodb-lint changed-only scan (base $ZERODB_LINT_BASE)"
    python3 scripts/zerodb_lint.py --changed-only --base "$ZERODB_LINT_BASE"
  else
    echo "lint.sh: zerodb-lint tree scan"
    python3 scripts/zerodb_lint.py
  fi

  # --- zerodb-analyzer: whole-program checks (determinism audit, lock-order
  # cycles, lifetime, layering, AST-accurate discarded-status, and the
  # interprocedural dataflow rules unit-mix / statusor-deref / hot-alloc).
  # Uses the libclang frontend when the python clang bindings are importable
  # and degrades to the built-in lexical frontend otherwise, so findings
  # gate the tree in any container with python3.
  echo "lint.sh: zerodb-analyzer self-test"
  python3 scripts/zerodb_analyzer.py --self-test
  if [[ -n "${ZERODB_LINT_BASE-}" ]]; then
    echo "lint.sh: zerodb-analyzer changed-only scan (base $ZERODB_LINT_BASE)"
    python3 scripts/zerodb_analyzer.py --changed-only \
      --base "$ZERODB_LINT_BASE"
  else
    echo "lint.sh: zerodb-analyzer tree scan"
    python3 scripts/zerodb_analyzer.py
  fi

  # --- tooling negative-path tests: bench_summary / trace_validate /
  # bench_compare must reject malformed inputs cleanly (no tracebacks).
  echo "lint.sh: tooling negative-path tests"
  python3 scripts/tooling_test.py
else
  echo "lint.sh: zerodb-lint SKIPPED (python3 not installed)" >&2
fi

if ! TIDY="$(find_tool clang-tidy)"; then
  echo "lint.sh: SKIPPED (clang-tidy not installed)" >&2
  exit 0
fi

# clang-tidy needs a compilation database; the default build exports one
# (CMAKE_EXPORT_COMPILE_COMMANDS in CMakeLists.txt).
BUILD_DIR="${BUILD_DIR:-build}"
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  cmake -B "$BUILD_DIR" -S . > /dev/null
fi

TARGET="${1:-src}"
mapfile -t sources < <(git ls-files "$TARGET/**/*.cc" "$TARGET/*.cc")
if [[ "${#sources[@]}" -eq 0 ]]; then
  echo "lint.sh: no sources under '$TARGET'" >&2
  exit 1
fi

echo "lint.sh: running $TIDY on ${#sources[@]} files"
status=0
if RUNNER="$(find_tool run-clang-tidy)"; then
  "$RUNNER" -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -quiet \
    "${sources[@]}" || status=$?
else
  for source in "${sources[@]}"; do
    "$TIDY" -p "$BUILD_DIR" --quiet "$source" || status=$?
  done
fi
if [[ "$status" -ne 0 ]]; then
  echo "lint.sh: clang-tidy found issues" >&2
  exit "$status"
fi
echo "lint.sh: clean"
