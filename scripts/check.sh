#!/usr/bin/env bash
# Sanitized build + test run. Usage:
#   scripts/check.sh            # address sanitizer (default)
#   scripts/check.sh thread     # thread sanitizer
#   scripts/check.sh ""         # plain build, no sanitizer
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZER="${1-address}"
BUILD_DIR="build-check${SANITIZER:+-$SANITIZER}"

cmake -B "$BUILD_DIR" -S . -DZERODB_SANITIZE="$SANITIZER" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
