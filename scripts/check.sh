#!/usr/bin/env bash
# Lint + sanitized build + test runs. Usage:
#   scripts/check.sh            # zerodb-lint, then ASan AND TSan runs
#   scripts/check.sh address    # one sanitizer: address
#   scripts/check.sh thread     # one sanitizer: thread (TSan)
#   scripts/check.sh undefined  # UBSan, -fno-sanitize-recover (UB aborts)
#   scripts/check.sh all        # address + thread + undefined
#   scripts/check.sh ""         # plain build, no sanitizer
set -euo pipefail

cd "$(dirname "$0")/.."

# Repo-invariant lint + whole-program analyzer + tooling tests gate every
# check run (fail on violations; only skipped when python3 itself is
# missing).
if command -v python3 > /dev/null 2>&1; then
  python3 scripts/zerodb_lint.py --self-test
  python3 scripts/zerodb_lint.py
  python3 scripts/zerodb_analyzer.py --self-test
  python3 scripts/zerodb_analyzer.py
  python3 scripts/tooling_test.py
else
  echo "check.sh: zerodb-lint SKIPPED (python3 not installed)" >&2
fi

# Compiler cache when available (CI restores .ccache across runs; local
# rebuilds of the three sanitizer trees benefit just as much).
CCACHE_ARGS=()
if command -v ccache > /dev/null 2>&1; then
  CCACHE_ARGS=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

run_one() {
  local sanitizer="$1"
  local build_dir="build-check${sanitizer:+-$sanitizer}"
  # Release here is the repo's own -O2 -g *without* NDEBUG (see CMakeLists):
  # the debug-time plan/tensor validators stay live, so every sanitized test
  # run is also an invariant-verification run.
  cmake -B "$build_dir" -S . -DZERODB_SANITIZE="$sanitizer" \
    -DCMAKE_BUILD_TYPE=Release "${CCACHE_ARGS[@]}"
  cmake --build "$build_dir" -j "$(nproc)"
  # Sanitizers slow tests 10-20x (TSan especially); ctest's default 600 s
  # per-test timeout is calibrated for plain builds, so raise it here.
  # Multithreaded tests declare PROCESSORS (tests/CMakeLists.txt) so -j
  # schedules by core budget instead of oversubscribing.
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" \
    --timeout 2400
}

case "${1-__default__}" in
  __default__)
    # The default covers memory errors AND data races: the concurrency
    # layer (common/sync, obs) must stay TSan-clean, not just ASan-clean.
    run_one address
    run_one thread
    ;;
  all)
    run_one address
    run_one thread
    run_one undefined
    ;;
  *)
    run_one "$1"
    ;;
esac
