#!/usr/bin/env bash
# Sanitized build + test run. Usage:
#   scripts/check.sh            # address sanitizer (default)
#   scripts/check.sh thread     # thread sanitizer
#   scripts/check.sh undefined  # UBSan, -fno-sanitize-recover (UB aborts)
#   scripts/check.sh ""         # plain build, no sanitizer
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZER="${1-address}"
BUILD_DIR="build-check${SANITIZER:+-$SANITIZER}"

# Release here is the repo's own -O2 -g *without* NDEBUG (see CMakeLists):
# the debug-time plan/tensor validators stay live, so every sanitized test
# run is also an invariant-verification run.
cmake -B "$BUILD_DIR" -S . -DZERODB_SANITIZE="$SANITIZER" \
  -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
