#!/usr/bin/env python3
"""zerodb-analyzer: whole-program static analysis for the zerodb tree.

Five checks over a frontend-neutral micro-IR (see scripts/analysis/):
determinism audit (nondet-call / nondet-iter), cross-TU lock-order cycles
(lock-order, with a lock_order.dot artifact), lifetime (lifetime-return /
lifetime-member), module-DAG layering, and AST-level discarded Status.

Frontends:
  libclang   real ASTs from compile_commands.json (python3-clang + a
             loadable libclang.so; the CI `analyze` job provides both)
  text       pure-python lexical frontend, always available

`--frontend auto` (default) prefers libclang and degrades to the textual
frontend with a warning; `--frontend libclang` prints SKIPPED and exits 0
when libclang is unavailable, so the gate never hard-fails on a missing
toolchain. The self-test always runs the textual frontend so fixture
behavior is pinned and reproducible in any container.

Exit codes: 0 clean (or SKIPPED), 1 findings / self-test failure, 2 usage.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from analysis import checks, ir, textparse  # noqa: E402
from analysis import callgraph, clangparse, dataflow  # noqa: E402
from analysis import sarif as sarif_out  # noqa: E402

REPO_ROOT = os.path.realpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir))
FIXTURE_DIR = os.path.join(REPO_ROOT, "scripts", "lint_fixtures", "analyzer")
SCAN_ROOT = "src"


def _tree_files():
    out = []
    for root, dirs, names in os.walk(os.path.join(REPO_ROOT, SCAN_ROOT)):
        dirs.sort()
        for name in sorted(names):
            if name.endswith((".h", ".cc")):
                out.append(os.path.join(root, name))
    return out


def _rel(path):
    return os.path.relpath(os.path.realpath(path), REPO_ROOT).replace(
        os.sep, "/")


def _parse_text(paths):
    files = {}
    for path in paths:
        rel = _rel(path)
        files[rel] = textparse.parse_file(path, rel)
    return files


def _parse(paths, frontend, compdb):
    """Returns ({rel: FileIR}, frontend_used) or raises
    clangparse.FrontendUnavailable when frontend == 'libclang' only."""
    if frontend == "text":
        return _parse_text(paths), "text"
    limit = None
    if paths is not None:
        limit = {_rel(p) for p in paths}
    try:
        files = clangparse.parse_compdb(compdb, REPO_ROOT,
                                        limit_files=limit)
    except clangparse.FrontendUnavailable:
        if frontend == "libclang":
            raise
        return _parse_text(paths), "text"
    # Headers no TU reaches (or files outside the compdb) still get the
    # textual frontend, so coverage matches the tree scan.
    for path in paths:
        rel = _rel(path)
        if rel not in files:
            files[rel] = textparse.parse_file(path, rel)
    return files, "libclang"


def _changed_rels(base):
    """Repo-relative analyzable files changed vs `base`, plus untracked
    ones — the seed set for the --changed-only fast path."""
    import subprocess

    def git(*argv):
        result = subprocess.run(
            ["git", "-C", REPO_ROOT, *argv],
            capture_output=True, text=True, check=False)
        if result.returncode != 0:
            print(f"zerodb-analyzer: git {' '.join(argv)} failed: "
                  f"{result.stderr.strip()}", file=sys.stderr)
            sys.exit(2)
        return result.stdout.splitlines()

    names = set(git("diff", "--name-only", "--diff-filter=d", base, "--"))
    names |= set(git("ls-files", "--others", "--exclude-standard"))
    return {name for name in names
            if name.endswith((".h", ".cc"))
            and name.startswith(SCAN_ROOT + "/")
            and os.path.isfile(os.path.join(REPO_ROOT, name))}


def _relevant_rels(files, changed_rels):
    """Changed files plus every file holding a function the call graph
    connects to a changed file's functions in either direction — the set
    whose cross-TU findings a change can influence."""
    graph = callgraph.build(files)
    seeds = [f.name for f in graph.functions if f.rel in changed_rels]
    reachable = graph.reachable_names(seeds, undirected=True)
    relevant = set(changed_rels)
    relevant.update(f.rel for f in graph.functions
                    if f.name in reachable)
    return relevant


def _write_dot(dot_path, edges, cyclic):
    os.makedirs(os.path.dirname(os.path.abspath(dot_path)), exist_ok=True)
    with open(dot_path, "w", encoding="utf-8") as f:
        f.write(checks.lock_graph_dot(edges, cyclic))


def _self_test_libclang(names):
    """Second self-test leg: the interprocedural dataflow rules under the
    libclang frontend. Dataflow lowers from FileIR.raw_lines, which both
    frontends populate identically, so these findings must match the text
    frontend exactly; where libclang is absent the leg prints SKIPPED and
    the gate stays green (mirrors the tree-wide `--frontend libclang`
    degradation contract)."""
    import json
    import tempfile

    try:
        clangparse.load()
    except clangparse.FrontendUnavailable as error:
        print(f"self-test[libclang]: SKIPPED ({error})")
        return 0

    dataflow_rules = set(dataflow.RULES)
    sources = [os.path.join(FIXTURE_DIR, n) for n in names
               if n.endswith(".cc")]
    with tempfile.TemporaryDirectory() as tmp:
        compdb_path = os.path.join(tmp, "compile_commands.json")
        with open(compdb_path, "w", encoding="utf-8") as f:
            json.dump([{"directory": FIXTURE_DIR,
                        "file": src,
                        "arguments": ["clang++", "-std=c++17",
                                      "-fsyntax-only", src]}
                       for src in sources], f)
        try:
            files = clangparse.parse_compdb(compdb_path, REPO_ROOT)
        except clangparse.FrontendUnavailable as error:
            print(f"self-test[libclang]: SKIPPED ({error})")
            return 0

    failures = 0
    for src in sources:
        name = os.path.basename(src)
        rel = _rel(src)
        fir = files.get(rel)
        if fir is None:
            failures += 1
            print(f"FAIL [libclang] {name}: fixture missing from parse")
            continue
        findings = dataflow.run({rel: fir})
        found = {(f.line, f.rule) for f in findings}
        expected = {(line, rule) for line, rule
                    in fir.expected_findings() if rule in dataflow_rules}
        problems = []
        for line, rule in sorted(expected - found):
            problems.append(f"missed expected: line {line} [{rule}]")
        for line, rule in sorted(found - expected):
            problems.append(f"spurious finding: line {line} [{rule}]")
        if problems:
            failures += 1
            print(f"FAIL [libclang] {name}")
            for p in problems:
                print(f"  {p}")
        else:
            print(f"ok   [libclang] {name} ({len(expected)} expected)")
    return failures


def self_test():
    if not os.path.isdir(FIXTURE_DIR):
        print(f"zerodb-analyzer: FAIL: missing fixture dir {FIXTURE_DIR}")
        return 1
    names = sorted(n for n in os.listdir(FIXTURE_DIR)
                   if n.endswith((".cc", ".h")))
    if not names:
        print("zerodb-analyzer: FAIL: no fixtures found")
        return 1
    rules_covered = set()
    failures = 0
    for name in names:
        path = os.path.join(FIXTURE_DIR, name)
        rel = _rel(path)
        fir = textparse.parse_file(path, rel)
        findings, _, _ = checks.run_all({rel: fir})
        found = {(f.line, f.rule) for f in findings}
        expected = fir.expected_findings()
        problems = []
        if name.startswith("good_"):
            if expected:
                problems.append("good_ fixture must not carry "
                                "expect-analyzer markers")
            for f in sorted(found):
                problems.append(f"unexpected finding: line {f[0]} [{f[1]}]")
        else:
            if not expected:
                problems.append("bad_ fixture has no expect-analyzer "
                                "markers")
            for line, rule in sorted(expected - found):
                problems.append(f"missed expected: line {line} [{rule}]")
            for line, rule in sorted(found - expected):
                problems.append(f"spurious finding: line {line} [{rule}]")
            rules_covered |= {rule for _, rule in expected}
        if problems:
            failures += 1
            print(f"FAIL {name}")
            for p in problems:
                print(f"  {p}")
        else:
            print(f"ok   {name} "
                  f"({len(expected) if expected else 0} expected)")
    missing_rules = set(checks.ALL_RULES) - rules_covered
    if missing_rules:
        failures += 1
        print("FAIL coverage: no bad_ fixture exercises: "
              + ", ".join(sorted(missing_rules)))
    failures += _self_test_libclang(names)
    if failures:
        print(f"zerodb-analyzer self-test: FAIL ({failures} problem(s))")
        return 1
    print(f"zerodb-analyzer self-test: PASS ({len(names)} fixtures, "
          f"all {len(checks.ALL_RULES)} rules covered)")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="zerodb_analyzer.py",
        description="whole-program static analysis (determinism, "
                    "lock-order, lifetime, layering, discarded Status)")
    parser.add_argument("files", nargs="*",
                        help="analyze only these files (default: src/ tree)")
    parser.add_argument("-p", "--compdb",
                        default=os.path.join(REPO_ROOT, "build",
                                             "compile_commands.json"),
                        help="compile_commands.json for the libclang "
                             "frontend (default: build/)")
    parser.add_argument("--frontend", choices=("auto", "libclang", "text"),
                        default="auto")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture suite (textual frontend)")
    parser.add_argument("--dot", metavar="PATH",
                        help="write the lock-order graph as graphviz DOT "
                             "(default: build/lock_order.dot when build/ "
                             "exists)")
    parser.add_argument("--sarif", metavar="PATH",
                        help="write findings as a SARIF 2.1.0 log (CI "
                             "uploads this as the analyze artifact)")
    parser.add_argument("--github", action="store_true",
                        help="emit one ::error workflow command per "
                             "finding so CI annotates offending lines")
    parser.add_argument("--changed-only", action="store_true",
                        help="fast path: report only findings in files "
                             "changed vs --base or in functions the "
                             "call graph connects (either direction) to "
                             "a changed file; the whole tree is still "
                             "parsed so cross-TU checks stay sound")
    parser.add_argument("--base", default="HEAD",
                        help="git ref --changed-only diffs against "
                             "(default: HEAD)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the per-finding listing")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.changed_only and args.files:
        parser.error("--changed-only takes no file arguments")

    changed_rels = None
    if args.changed_only:
        changed_rels = _changed_rels(args.base)
        if not changed_rels:
            print("zerodb-analyzer: no changed analyzable files")
            if args.sarif:
                sarif_out.write_sarif(args.sarif, [],
                                      rules=checks.ALL_RULES)
            return 0

    if args.files:
        paths = []
        for f in args.files:
            if not os.path.isfile(f):
                print(f"zerodb-analyzer: no such file: {f}",
                      file=sys.stderr)
                return 2
            paths.append(os.path.abspath(f))
    else:
        paths = _tree_files()
        if not paths:
            print(f"zerodb-analyzer: nothing under {SCAN_ROOT}/",
                  file=sys.stderr)
            return 2

    try:
        files, used = _parse(paths, args.frontend, args.compdb)
    except clangparse.FrontendUnavailable as error:
        print(f"zerodb-analyzer: SKIPPED (libclang frontend requested but "
              f"unavailable: {error})")
        if args.sarif:
            # Keep the CI artifact contract: an empty-but-valid log.
            sarif_out.write_sarif(args.sarif, [], rules=checks.ALL_RULES)
        return 0
    if args.frontend == "auto" and used == "text":
        print("zerodb-analyzer: note: libclang unavailable, using the "
              "textual frontend", file=sys.stderr)

    findings, edges, cyclic = checks.run_all(files)

    scanned = len(files)
    if changed_rels is not None:
        relevant = _relevant_rels(files, changed_rels)
        findings = [f for f in findings if f.rel in relevant]

    dot_path = args.dot
    if dot_path is None and not args.files and \
            os.path.isdir(os.path.join(REPO_ROOT, "build")):
        dot_path = os.path.join(REPO_ROOT, "build", "lock_order.dot")
    if dot_path:
        _write_dot(dot_path, edges, cyclic)

    if args.sarif:
        sarif_out.write_sarif(args.sarif, findings,
                              rules=checks.ALL_RULES)
    if args.github:
        for line in sarif_out.github_annotations(findings):
            print(line)

    if not args.quiet:
        for finding in findings:
            print(finding)
    locks_note = (f"{len(edges)} lock-order edge(s), "
                  f"{len(cyclic)} in cycles")
    scope_note = ""
    if changed_rels is not None:
        scope_note = (f" (changed-only vs {args.base}: "
                      f"{len(changed_rels)} changed file(s))")
    print(f"zerodb-analyzer: {len(findings)} finding(s) across "
          f"{scanned} file(s) [frontend: {used}; {locks_note}]"
          + scope_note
          + (f"; wrote {os.path.relpath(dot_path, os.getcwd())}"
             if dot_path else "")
          + (f"; wrote {os.path.relpath(args.sarif, os.getcwd())}"
             if args.sarif else ""))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
