#!/usr/bin/env python3
"""zerodb-analyzer: whole-program static analysis for the zerodb tree.

Five checks over a frontend-neutral micro-IR (see scripts/analysis/):
determinism audit (nondet-call / nondet-iter), cross-TU lock-order cycles
(lock-order, with a lock_order.dot artifact), lifetime (lifetime-return /
lifetime-member), module-DAG layering, and AST-level discarded Status.

Frontends:
  libclang   real ASTs from compile_commands.json (python3-clang + a
             loadable libclang.so; the CI `analyze` job provides both)
  text       pure-python lexical frontend, always available

`--frontend auto` (default) prefers libclang and degrades to the textual
frontend with a warning; `--frontend libclang` prints SKIPPED and exits 0
when libclang is unavailable, so the gate never hard-fails on a missing
toolchain. The self-test always runs the textual frontend so fixture
behavior is pinned and reproducible in any container.

Exit codes: 0 clean (or SKIPPED), 1 findings / self-test failure, 2 usage.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from analysis import checks, ir, textparse  # noqa: E402
from analysis import clangparse  # noqa: E402

REPO_ROOT = os.path.realpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir))
FIXTURE_DIR = os.path.join(REPO_ROOT, "scripts", "lint_fixtures", "analyzer")
SCAN_ROOT = "src"


def _tree_files():
    out = []
    for root, dirs, names in os.walk(os.path.join(REPO_ROOT, SCAN_ROOT)):
        dirs.sort()
        for name in sorted(names):
            if name.endswith((".h", ".cc")):
                out.append(os.path.join(root, name))
    return out


def _rel(path):
    return os.path.relpath(os.path.realpath(path), REPO_ROOT).replace(
        os.sep, "/")


def _parse_text(paths):
    files = {}
    for path in paths:
        rel = _rel(path)
        files[rel] = textparse.parse_file(path, rel)
    return files


def _parse(paths, frontend, compdb):
    """Returns ({rel: FileIR}, frontend_used) or raises
    clangparse.FrontendUnavailable when frontend == 'libclang' only."""
    if frontend == "text":
        return _parse_text(paths), "text"
    limit = None
    if paths is not None:
        limit = {_rel(p) for p in paths}
    try:
        files = clangparse.parse_compdb(compdb, REPO_ROOT,
                                        limit_files=limit)
    except clangparse.FrontendUnavailable:
        if frontend == "libclang":
            raise
        return _parse_text(paths), "text"
    # Headers no TU reaches (or files outside the compdb) still get the
    # textual frontend, so coverage matches the tree scan.
    for path in paths:
        rel = _rel(path)
        if rel not in files:
            files[rel] = textparse.parse_file(path, rel)
    return files, "libclang"


def _write_dot(dot_path, edges, cyclic):
    os.makedirs(os.path.dirname(os.path.abspath(dot_path)), exist_ok=True)
    with open(dot_path, "w", encoding="utf-8") as f:
        f.write(checks.lock_graph_dot(edges, cyclic))


def self_test():
    if not os.path.isdir(FIXTURE_DIR):
        print(f"zerodb-analyzer: FAIL: missing fixture dir {FIXTURE_DIR}")
        return 1
    names = sorted(n for n in os.listdir(FIXTURE_DIR)
                   if n.endswith((".cc", ".h")))
    if not names:
        print("zerodb-analyzer: FAIL: no fixtures found")
        return 1
    rules_covered = set()
    failures = 0
    for name in names:
        path = os.path.join(FIXTURE_DIR, name)
        rel = _rel(path)
        fir = textparse.parse_file(path, rel)
        findings, _, _ = checks.run_all({rel: fir})
        found = {(f.line, f.rule) for f in findings}
        expected = fir.expected_findings()
        problems = []
        if name.startswith("good_"):
            if expected:
                problems.append("good_ fixture must not carry "
                                "expect-analyzer markers")
            for f in sorted(found):
                problems.append(f"unexpected finding: line {f[0]} [{f[1]}]")
        else:
            if not expected:
                problems.append("bad_ fixture has no expect-analyzer "
                                "markers")
            for line, rule in sorted(expected - found):
                problems.append(f"missed expected: line {line} [{rule}]")
            for line, rule in sorted(found - expected):
                problems.append(f"spurious finding: line {line} [{rule}]")
            rules_covered |= {rule for _, rule in expected}
        if problems:
            failures += 1
            print(f"FAIL {name}")
            for p in problems:
                print(f"  {p}")
        else:
            print(f"ok   {name} "
                  f"({len(expected) if expected else 0} expected)")
    missing_rules = set(checks.ALL_RULES) - rules_covered
    if missing_rules:
        failures += 1
        print("FAIL coverage: no bad_ fixture exercises: "
              + ", ".join(sorted(missing_rules)))
    if failures:
        print(f"zerodb-analyzer self-test: FAIL ({failures} problem(s))")
        return 1
    print(f"zerodb-analyzer self-test: PASS ({len(names)} fixtures, "
          f"all {len(checks.ALL_RULES)} rules covered)")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="zerodb_analyzer.py",
        description="whole-program static analysis (determinism, "
                    "lock-order, lifetime, layering, discarded Status)")
    parser.add_argument("files", nargs="*",
                        help="analyze only these files (default: src/ tree)")
    parser.add_argument("-p", "--compdb",
                        default=os.path.join(REPO_ROOT, "build",
                                             "compile_commands.json"),
                        help="compile_commands.json for the libclang "
                             "frontend (default: build/)")
    parser.add_argument("--frontend", choices=("auto", "libclang", "text"),
                        default="auto")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture suite (textual frontend)")
    parser.add_argument("--dot", metavar="PATH",
                        help="write the lock-order graph as graphviz DOT "
                             "(default: build/lock_order.dot when build/ "
                             "exists)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the per-finding listing")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    if args.files:
        paths = []
        for f in args.files:
            if not os.path.isfile(f):
                print(f"zerodb-analyzer: no such file: {f}",
                      file=sys.stderr)
                return 2
            paths.append(os.path.abspath(f))
    else:
        paths = _tree_files()
        if not paths:
            print(f"zerodb-analyzer: nothing under {SCAN_ROOT}/",
                  file=sys.stderr)
            return 2

    try:
        files, used = _parse(paths, args.frontend, args.compdb)
    except clangparse.FrontendUnavailable as error:
        print(f"zerodb-analyzer: SKIPPED (libclang frontend requested but "
              f"unavailable: {error})")
        return 0
    if args.frontend == "auto" and used == "text":
        print("zerodb-analyzer: note: libclang unavailable, using the "
              "textual frontend", file=sys.stderr)

    findings, edges, cyclic = checks.run_all(files)

    dot_path = args.dot
    if dot_path is None and not args.files and \
            os.path.isdir(os.path.join(REPO_ROOT, "build")):
        dot_path = os.path.join(REPO_ROOT, "build", "lock_order.dot")
    if dot_path:
        _write_dot(dot_path, edges, cyclic)

    if not args.quiet:
        for finding in findings:
            print(finding)
    locks_note = (f"{len(edges)} lock-order edge(s), "
                  f"{len(cyclic)} in cycles")
    print(f"zerodb-analyzer: {len(findings)} finding(s) across "
          f"{len(files)} file(s) [frontend: {used}; {locks_note}]"
          + (f"; wrote {os.path.relpath(dot_path, os.getcwd())}"
             if dot_path else ""))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
