#!/usr/bin/env python3
"""Negative-path tests for the repo's python tooling.

The C++ gates (analyzer/lint self-tests) pin behavior on *code*; this file
pins the tooling's behavior on *bad inputs*: every script must reject
malformed, empty or truncated files with a clean one-line diagnostic and a
non-zero exit — never a python stack trace (a traceback in CI reads as a
tooling crash, not as the input's fault).

Covered:
  bench_summary.py   malformed / empty / non-object google-benchmark JSON,
                     entries missing real_time, malformed --metrics artifacts
  trace_validate.py  truncated JSON, wrong top-level shape, event missing ts
  bench_compare.py   missing baseline tolerated; regression detection and
                     non-fatal exit; corrupt baseline tolerated; one-sided
                     counters skipped with a ::notice, never compared;
                     --fail-on hard gate trips (exit 3, ::error) on
                     allowlisted families only and passes clean runs
  analysis/suppress  `zerodb-lint: allow(...)` parsing unit tests (shared
                     by zerodb_lint.py and every analyzer rule)
  analysis/sarif     SARIF writer and ::error emitter survive malformed
                     findings (bad IR) and an empty run — no tracebacks

Run: scripts/tooling_test.py   (exit 0 pass, 1 fail). Wired into lint.sh /
check.sh and the CI lint job.
"""

import json
import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__))))

from analysis import sarif, suppress  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCRIPTS = os.path.join(REPO_ROOT, "scripts")

_failures = []
_checks = 0


def run_script(script, *argv):
    return subprocess.run(
        [sys.executable, os.path.join(SCRIPTS, script), *argv],
        capture_output=True, text=True, check=False)


def check(label, condition, detail=""):
    global _checks
    _checks += 1
    if condition:
        print(f"ok   {label}")
    else:
        _failures.append(label)
        print(f"FAIL {label}{': ' + detail if detail else ''}")


def expect_clean_failure(label, result, want_exit=1):
    """Non-zero exit, a diagnostic on stderr/stdout, and no traceback."""
    output = result.stdout + result.stderr
    check(f"{label}: exit {want_exit}", result.returncode == want_exit,
          f"got {result.returncode}; output: {output.strip()[:200]}")
    check(f"{label}: no traceback", "Traceback" not in output,
          output.strip()[:200])
    check(f"{label}: has diagnostic", bool(output.strip()))


def write(tmp, name, text):
    path = os.path.join(tmp, name)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
    return path


def micro_json(tmp, name="micro.json", real_time=1000.0):
    return write(tmp, name, json.dumps({
        "benchmarks": [{"name": "BM_X", "real_time": real_time,
                        "cpu_time": real_time, "iterations": 3,
                        "time_unit": "us"}]}))


def test_bench_summary(tmp):
    out = os.path.join(tmp, "out.json")

    not_json = write(tmp, "garbage.json", "{not json at all")
    expect_clean_failure(
        "bench_summary malformed JSON",
        run_script("bench_summary.py", "--micro", not_json, "--out", out))

    empty = write(tmp, "empty.json", "")
    expect_clean_failure(
        "bench_summary empty file",
        run_script("bench_summary.py", "--micro", empty, "--out", out))

    top_level_list = write(tmp, "list.json", "[1, 2, 3]")
    expect_clean_failure(
        "bench_summary non-object top level",
        run_script("bench_summary.py", "--micro", top_level_list,
                   "--out", out))

    no_entries = write(tmp, "noentries.json", '{"benchmarks": []}')
    expect_clean_failure(
        "bench_summary empty benchmarks",
        run_script("bench_summary.py", "--micro", no_entries, "--out", out))

    missing_time = write(tmp, "missingtime.json", json.dumps(
        {"benchmarks": [{"name": "BM_X", "cpu_time": 1.0,
                         "iterations": 1, "time_unit": "ns"}]}))
    expect_clean_failure(
        "bench_summary entry missing real_time",
        run_script("bench_summary.py", "--micro", missing_time,
                   "--out", out))

    non_dict_entry = write(tmp, "nondict.json",
                           '{"benchmarks": [null]}')
    expect_clean_failure(
        "bench_summary null entry",
        run_script("bench_summary.py", "--micro", non_dict_entry,
                   "--out", out))

    # Malformed --metrics artifact sections read as empty, not as a crash.
    bad_metrics = write(tmp, "badmetrics.json",
                        '{"metrics": "not-a-dict", "quality": []}')
    result = run_script("bench_summary.py", "--micro", micro_json(tmp),
                        "--metrics", f"weird={bad_metrics}", "--out", out)
    check("bench_summary tolerates malformed metrics artifact",
          result.returncode == 0 and os.path.isfile(out),
          (result.stdout + result.stderr).strip()[:200])
    check("bench_summary malformed artifact: no traceback",
          "Traceback" not in result.stdout + result.stderr)

    # Sanity: the happy path still works and validates.
    result = run_script("bench_summary.py", "--micro", micro_json(tmp),
                        "--out", out)
    with open(out, encoding="utf-8") as f:
        summary = json.load(f)
    check("bench_summary happy path",
          result.returncode == 0
          and summary["schema_version"] == 4
          and summary["benchmarks"][0]["name"] == "BM_X")

    # Schema v3: BM_ForwardBatch series fold into plans/sec + the 32-vs-1
    # speedup, and cache.* counters fold into a hit-rate section.
    batched = write(tmp, "batched.json", json.dumps({"benchmarks": [
        {"name": "BM_ForwardBatch/batch:1", "real_time": 25.0,
         "cpu_time": 25.0, "iterations": 100, "time_unit": "us"},
        {"name": "BM_ForwardBatch/batch:32", "real_time": 400.0,
         "cpu_time": 400.0, "iterations": 100, "time_unit": "us"}]}))
    cache_metrics = write(tmp, "cache_metrics.json", json.dumps({
        "metrics": {"counters": {"cache.hit": 30, "cache.miss": 10,
                                 "cache.evict": 2,
                                 "cache.invalidation": 1}}}))
    result = run_script("bench_summary.py", "--micro", batched,
                        "--metrics", f"micro={cache_metrics}", "--out", out)
    with open(out, encoding="utf-8") as f:
        summary = json.load(f)
    per_sec = summary["forward_batch"]["plans_per_sec"]
    check("bench_summary forward_batch plans/sec and speedup",
          result.returncode == 0
          and round(per_sec["1"]) == 40000      # 1 plan / 25us
          and round(per_sec["32"]) == 80000     # 32 plans / 400us
          and abs(summary["forward_batch"]["speedup_32v1"] - 2.0) < 1e-9,
          (result.stdout + result.stderr).strip()[:300])
    check("bench_summary cache hit-rate section",
          summary["cache"]["micro"]["hits"] == 30
          and summary["cache"]["micro"]["evictions"] == 2
          and abs(summary["cache"]["micro"]["hit_rate"] - 0.75) < 1e-9)
    # Schema v4: BM_TrainEpoch user counters fold into the train section —
    # plans/sec per thread count from the pooled rows, allocs/batch from the
    # threads:1 pooled-vs-fresh pair.
    train_micro = write(tmp, "train.json", json.dumps({"benchmarks": [
        {"name": "BM_TrainEpoch/threads:1/pooled:1/process_time/real_time",
         "real_time": 40.0, "cpu_time": 40.0, "iterations": 5,
         "time_unit": "ms", "plans_per_sec": 12800.0,
         "allocs_per_batch": 25.0},
        {"name": "BM_TrainEpoch/threads:4/pooled:1/process_time/real_time",
         "real_time": 42.0, "cpu_time": 42.0, "iterations": 5,
         "time_unit": "ms", "plans_per_sec": 12000.0,
         "allocs_per_batch": 30.0},
        {"name": "BM_TrainEpoch/threads:1/pooled:0/process_time/real_time",
         "real_time": 44.0, "cpu_time": 44.0, "iterations": 5,
         "time_unit": "ms", "plans_per_sec": 11000.0,
         "allocs_per_batch": 500.0}]}))
    result = run_script("bench_summary.py", "--micro", train_micro,
                        "--out", out)
    with open(out, encoding="utf-8") as f:
        summary = json.load(f)
    train = summary["train"]
    check("bench_summary train section",
          result.returncode == 0
          and round(train["plans_per_sec"]["1"]) == 12800
          and round(train["plans_per_sec"]["4"]) == 12000
          and train["allocs_per_batch"]["pooled"] == 25.0
          and train["allocs_per_batch"]["fresh"] == 500.0
          and abs(train["alloc_reduction"] - 20.0) < 1e-9,
          (result.stdout + result.stderr).strip()[:300])

    no_cache = write(tmp, "no_cache_metrics.json", json.dumps({
        "metrics": {"counters": {"pool.tasks_run": 4}}}))
    result = run_script("bench_summary.py", "--micro", batched,
                        "--metrics", f"micro={no_cache}", "--out", out)
    with open(out, encoding="utf-8") as f:
        summary = json.load(f)
    check("bench_summary cache section omits artifacts without counters",
          result.returncode == 0 and summary["cache"] == {})


def test_trace_validate(tmp):
    truncated = write(tmp, "truncated.json",
                      '{"traceEvents": [{"name": "a", "ph": "X"')
    expect_clean_failure(
        "trace_validate truncated trace",
        run_script("trace_validate.py", truncated))

    wrong_shape = write(tmp, "shape.json", '["not", "an", "object"]')
    expect_clean_failure(
        "trace_validate wrong top-level shape",
        run_script("trace_validate.py", wrong_shape))

    missing_ts = write(tmp, "missing_ts.json", json.dumps({
        "traceEvents": [{"name": "span", "ph": "X", "pid": 1, "tid": 1,
                         "dur": 5.0}]}))
    expect_clean_failure(
        "trace_validate event missing ts",
        run_script("trace_validate.py", missing_ts))

    valid = write(tmp, "valid.json", json.dumps({
        "traceEvents": [
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
             "args": {"name": "main"}},
            {"name": "span", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0,
             "dur": 5.0},
        ]}))
    result = run_script("trace_validate.py", valid,
                        "--require-track", "main")
    check("trace_validate happy path", result.returncode == 0,
          (result.stdout + result.stderr).strip()[:200])


def test_bench_compare(tmp):
    def summary(name, real_time_ms, wall_s):
        return write(tmp, name, json.dumps({
            "schema_version": 2, "commit": name,
            "benchmarks": [{"name": "BM_X", "real_time_ms": real_time_ms,
                            "cpu_time_ms": real_time_ms, "iterations": 1}],
            "wall_clock_s": {"bench_micro": wall_s}}))

    fresh = summary("fresh.json", 200.0, 20.0)
    base = summary("base.json", 100.0, 10.0)

    result = run_script("bench_compare.py", "--fresh", fresh,
                        "--baseline", os.path.join(tmp, "nope.json"))
    check("bench_compare missing baseline tolerated",
          result.returncode == 0 and "nothing to compare" in result.stdout,
          (result.stdout + result.stderr).strip()[:200])

    result = run_script("bench_compare.py", "--fresh", fresh,
                        "--baseline", base, "--github-annotations")
    check("bench_compare flags regression non-fatally",
          result.returncode == 0
          and result.stdout.count("REGRESSION") == 2
          and "::warning" in result.stdout,
          (result.stdout + result.stderr).strip()[:300])

    result = run_script("bench_compare.py", "--fresh", base,
                        "--baseline", base)
    check("bench_compare identical summaries: no regressions",
          result.returncode == 0 and "0 regression(s)" in result.stdout
          and "0 one-sided" in result.stdout)

    renamed = write(tmp, "renamed.json", json.dumps({
        "schema_version": 2, "commit": "renamed",
        "benchmarks": [{"name": "BM_New", "real_time_ms": 5.0,
                        "cpu_time_ms": 5.0, "iterations": 1}],
        "wall_clock_s": {"bench_micro": 10.0}}))
    result = run_script("bench_compare.py", "--fresh", renamed,
                        "--baseline", base, "--github-annotations")
    check("bench_compare one-sided counters skipped with ::notice",
          result.returncode == 0
          and result.stdout.count("::notice") == 2
          and "BM_New" in result.stdout and "BM_X" in result.stdout
          and "2 one-sided series skipped" in result.stdout,
          (result.stdout + result.stderr).strip()[:300])

    expect_clean_failure(
        "bench_compare missing fresh summary",
        run_script("bench_compare.py", "--fresh",
                   os.path.join(tmp, "absent.json"), "--baseline", base))

    corrupt = write(tmp, "corrupt.json", "{broken")
    result = run_script("bench_compare.py", "--fresh", fresh,
                        "--baseline", corrupt)
    check("bench_compare corrupt baseline tolerated",
          result.returncode == 0
          and "Traceback" not in result.stdout + result.stderr,
          (result.stdout + result.stderr).strip()[:200])

    # The hard gate: an allowlisted series past --fail-on fails the run
    # with exit 3 and an ::error annotation. fresh's BM_X is +100% over
    # base; the wall clock series is not allowlisted so it stays a warning.
    result = run_script("bench_compare.py", "--fresh", fresh,
                        "--baseline", base, "--github-annotations",
                        "--fail-on", "0.35", "--allowlist", "BM_X")
    check("bench_compare gate trips on allowlisted regression",
          result.returncode == 3
          and "GATED REGRESSION" in result.stdout
          and "::error" in result.stdout
          and "1 gated regression(s)" in result.stdout,
          (result.stdout + result.stderr).strip()[:300])

    result = run_script("bench_compare.py", "--fresh", fresh,
                        "--baseline", base, "--github-annotations",
                        "--fail-on", "0.35", "--allowlist", "BM_Other")
    check("bench_compare gate ignores non-allowlisted series",
          result.returncode == 0
          and "GATED" not in result.stdout
          and "::error" not in result.stdout
          and "::warning" in result.stdout,
          (result.stdout + result.stderr).strip()[:300])

    result = run_script("bench_compare.py", "--fresh", base,
                        "--baseline", base, "--fail-on", "0.35",
                        "--allowlist", "BM_X")
    check("bench_compare gate passes when allowlisted series hold",
          result.returncode == 0 and "0 gated" in result.stdout,
          (result.stdout + result.stderr).strip()[:200])

    # Allowlist entries name families: `BM_Fwd` must cover the argumented
    # instance `BM_Fwd/batch:32` by substring.
    def family(name, ms):
        return write(tmp, name, json.dumps({
            "schema_version": 3, "commit": name,
            "benchmarks": [{"name": "BM_Fwd/batch:32", "real_time_ms": ms,
                            "cpu_time_ms": ms, "iterations": 1}],
            "wall_clock_s": {}}))
    result = run_script("bench_compare.py",
                        "--fresh", family("fam_fresh.json", 300.0),
                        "--baseline", family("fam_base.json", 100.0),
                        "--fail-on", "0.35", "--allowlist", "BM_Fwd,BM_Y")
    check("bench_compare gate matches benchmark families by substring",
          result.returncode == 3 and "BM_Fwd/batch:32" in result.stdout,
          (result.stdout + result.stderr).strip()[:300])

    expect_clean_failure(
        "bench_compare --allowlist without --fail-on is a usage error",
        run_script("bench_compare.py", "--fresh", fresh, "--baseline", base,
                   "--allowlist", "BM_X"),
        want_exit=2)


def test_suppress():
    check("suppress: plain line has no rules",
          suppress.allowed_rules("int x = 1;") == frozenset())
    check("suppress: single rule",
          suppress.allowed_rules("x;  // zerodb-lint: allow(hot-alloc)")
          == frozenset({"hot-alloc"}))
    check("suppress: comma list with spaces",
          suppress.allowed_rules(
              "// zerodb-lint: allow(unit-mix , statusor-deref)")
          == frozenset({"unit-mix", "statusor-deref"}))
    check("suppress: malformed marker suppresses nothing",
          suppress.allowed_rules("// zerodb-lint: allow()") == frozenset()
          and suppress.allowed_rules("// zerodb-lint: allow(Bad_Rule)")
          == frozenset())
    lines = ["int a;",
             "// zerodb-lint: allow(unit-mix)",
             "Millis m = Millis(rows);",
             "rows2ms(r);  // zerodb-lint: allow(unit-mix)"]
    check("suppress: line above applies",
          suppress.suppressed(lines, 2, "unit-mix"))
    check("suppress: same line applies",
          suppress.suppressed(lines, 3, "unit-mix"))
    check("suppress: other rule untouched",
          not suppress.suppressed(lines, 2, "hot-alloc"))
    check("suppress: unmarked line untouched",
          not suppress.suppressed(lines, 0, "unit-mix"))
    check("suppress: out-of-range index is safe",
          not suppress.suppressed(lines, 0, "unit-mix")
          and not suppress.suppressed([], 0, "unit-mix"))


class _FakeFinding:
    def __init__(self, rel, line, rule, message):
        self.rel = rel
        self.line = line
        self.rule = rule
        self.message = message


def test_sarif(tmp):
    # Empty run (e.g. an empty call graph produced zero findings): a valid
    # log with the rule table intact, not a crash or an empty file.
    path = os.path.join(tmp, "empty.sarif")
    sarif.write_sarif(path, [], rules=("unit-mix", "hot-alloc"))
    with open(path, encoding="utf-8") as f:
        log = json.load(f)
    run = log["runs"][0]
    check("sarif: empty run is a valid 2.1.0 log",
          log["version"] == "2.1.0" and run["results"] == []
          and {r["id"] for r in run["tool"]["driver"]["rules"]}
          == {"unit-mix", "hot-alloc"})

    # Malformed findings (IR handed garbage lines/fields) are dropped,
    # never raised: the reporter must not mask the analysis result.
    findings = [
        _FakeFinding("src/a.cc", 3, "unit-mix", "real finding"),
        _FakeFinding("src/b.cc", "not-a-line", "unit-mix", "bad line"),
        _FakeFinding("", 1, "unit-mix", "empty path"),
        _FakeFinding("src/c.cc", -7, "hot-alloc", "clamped line"),
        None,
        _FakeFinding("src/d.cc", 2, "", "empty rule"),
    ]
    try:
        doc = sarif.to_sarif(findings)
        annotations = list(sarif.github_annotations(findings))
        crashed = False
    except Exception:  # noqa: BLE001 - the absence of this is the test
        crashed = True
        doc, annotations = {}, []
    results = doc.get("runs", [{}])[0].get("results", []) if not crashed \
        else []
    check("sarif: malformed findings dropped, valid kept",
          not crashed and len(results) == 2
          and results[0]["locations"][0]["physicalLocation"]
          ["region"]["startLine"] == 3
          and results[1]["locations"][0]["physicalLocation"]
          ["region"]["startLine"] == 1)
    check("sarif: annotations skip malformed, escape properly",
          len(annotations) == 2
          and annotations[0].startswith("::error file=src/a.cc,line=3,")
          and "%3A" in annotations[0])

    newline_msg = [_FakeFinding("src/a.cc", 1, "unit-mix", "line1\nline2")]
    check("sarif: newline in message escaped for ::error",
          "%0A" in next(iter(sarif.github_annotations(newline_msg))))


def main():
    with tempfile.TemporaryDirectory(prefix="zerodb-tooling-") as tmp:
        test_bench_summary(tmp)
        test_trace_validate(tmp)
        test_bench_compare(tmp)
        test_suppress()
        test_sarif(tmp)
    if _failures:
        print(f"tooling_test: FAIL ({len(_failures)}/{_checks} checks): "
              + ", ".join(_failures))
        return 1
    print(f"tooling_test: PASS ({_checks} checks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
