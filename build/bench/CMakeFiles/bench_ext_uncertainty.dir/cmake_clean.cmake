file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_uncertainty.dir/bench_ext_uncertainty.cc.o"
  "CMakeFiles/bench_ext_uncertainty.dir/bench_ext_uncertainty.cc.o.d"
  "bench_ext_uncertainty"
  "bench_ext_uncertainty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_uncertainty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
