# Empty dependencies file for bench_ablation_numdbs.
# This may be replaced when dependencies are built.
