file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_numdbs.dir/bench_ablation_numdbs.cc.o"
  "CMakeFiles/bench_ablation_numdbs.dir/bench_ablation_numdbs.cc.o.d"
  "bench_ablation_numdbs"
  "bench_ablation_numdbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_numdbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
