file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cardquality.dir/bench_ablation_cardquality.cc.o"
  "CMakeFiles/bench_ablation_cardquality.dir/bench_ablation_cardquality.cc.o.d"
  "bench_ablation_cardquality"
  "bench_ablation_cardquality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cardquality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
