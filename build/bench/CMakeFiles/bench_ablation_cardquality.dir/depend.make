# Empty dependencies file for bench_ablation_cardquality.
# This may be replaced when dependencies are built.
