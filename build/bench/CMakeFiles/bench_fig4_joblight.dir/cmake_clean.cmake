file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_joblight.dir/bench_fig4_joblight.cc.o"
  "CMakeFiles/bench_fig4_joblight.dir/bench_fig4_joblight.cc.o.d"
  "bench_fig4_joblight"
  "bench_fig4_joblight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_joblight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
