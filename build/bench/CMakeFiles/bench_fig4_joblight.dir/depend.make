# Empty dependencies file for bench_fig4_joblight.
# This may be replaced when dependencies are built.
