file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_whatif.dir/bench_table1_whatif.cc.o"
  "CMakeFiles/bench_table1_whatif.dir/bench_table1_whatif.cc.o.d"
  "bench_table1_whatif"
  "bench_table1_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
