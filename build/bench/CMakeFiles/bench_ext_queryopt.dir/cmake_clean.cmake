file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_queryopt.dir/bench_ext_queryopt.cc.o"
  "CMakeFiles/bench_ext_queryopt.dir/bench_ext_queryopt.cc.o.d"
  "bench_ext_queryopt"
  "bench_ext_queryopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_queryopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
