# Empty dependencies file for bench_ext_queryopt.
# This may be replaced when dependencies are built.
