# Empty compiler generated dependencies file for zerodb.
# This may be replaced when dependencies are built.
