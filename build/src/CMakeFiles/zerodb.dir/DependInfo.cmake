
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/schema.cc" "src/CMakeFiles/zerodb.dir/catalog/schema.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/catalog/schema.cc.o.d"
  "/root/repo/src/catalog/types.cc" "src/CMakeFiles/zerodb.dir/catalog/types.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/catalog/types.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/zerodb.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/common/logging.cc.o.d"
  "/root/repo/src/common/math_util.cc" "src/CMakeFiles/zerodb.dir/common/math_util.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/common/math_util.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/zerodb.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/zerodb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/zerodb.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/common/string_util.cc.o.d"
  "/root/repo/src/datagen/corpus.cc" "src/CMakeFiles/zerodb.dir/datagen/corpus.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/datagen/corpus.cc.o.d"
  "/root/repo/src/datagen/distributions.cc" "src/CMakeFiles/zerodb.dir/datagen/distributions.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/datagen/distributions.cc.o.d"
  "/root/repo/src/datagen/generator.cc" "src/CMakeFiles/zerodb.dir/datagen/generator.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/datagen/generator.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/zerodb.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/exec/executor.cc.o.d"
  "/root/repo/src/featurize/e2e_featurizer.cc" "src/CMakeFiles/zerodb.dir/featurize/e2e_featurizer.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/featurize/e2e_featurizer.cc.o.d"
  "/root/repo/src/featurize/mscn_featurizer.cc" "src/CMakeFiles/zerodb.dir/featurize/mscn_featurizer.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/featurize/mscn_featurizer.cc.o.d"
  "/root/repo/src/featurize/normalization.cc" "src/CMakeFiles/zerodb.dir/featurize/normalization.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/featurize/normalization.cc.o.d"
  "/root/repo/src/featurize/plan_graph.cc" "src/CMakeFiles/zerodb.dir/featurize/plan_graph.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/featurize/plan_graph.cc.o.d"
  "/root/repo/src/featurize/zeroshot_featurizer.cc" "src/CMakeFiles/zerodb.dir/featurize/zeroshot_featurizer.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/featurize/zeroshot_featurizer.cc.o.d"
  "/root/repo/src/models/e2e_model.cc" "src/CMakeFiles/zerodb.dir/models/e2e_model.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/models/e2e_model.cc.o.d"
  "/root/repo/src/models/mscn_model.cc" "src/CMakeFiles/zerodb.dir/models/mscn_model.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/models/mscn_model.cc.o.d"
  "/root/repo/src/models/scaled_cost_model.cc" "src/CMakeFiles/zerodb.dir/models/scaled_cost_model.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/models/scaled_cost_model.cc.o.d"
  "/root/repo/src/models/tree_model.cc" "src/CMakeFiles/zerodb.dir/models/tree_model.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/models/tree_model.cc.o.d"
  "/root/repo/src/models/zeroshot_model.cc" "src/CMakeFiles/zerodb.dir/models/zeroshot_model.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/models/zeroshot_model.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/CMakeFiles/zerodb.dir/nn/layers.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/nn/layers.cc.o.d"
  "/root/repo/src/nn/lr_schedule.cc" "src/CMakeFiles/zerodb.dir/nn/lr_schedule.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/nn/lr_schedule.cc.o.d"
  "/root/repo/src/nn/ops.cc" "src/CMakeFiles/zerodb.dir/nn/ops.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/nn/ops.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/zerodb.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/CMakeFiles/zerodb.dir/nn/serialize.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/nn/serialize.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/CMakeFiles/zerodb.dir/nn/tensor.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/nn/tensor.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/CMakeFiles/zerodb.dir/optimizer/cost_model.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/optimizer/cost_model.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/zerodb.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/plan/expr.cc" "src/CMakeFiles/zerodb.dir/plan/expr.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/plan/expr.cc.o.d"
  "/root/repo/src/plan/physical.cc" "src/CMakeFiles/zerodb.dir/plan/physical.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/plan/physical.cc.o.d"
  "/root/repo/src/plan/query.cc" "src/CMakeFiles/zerodb.dir/plan/query.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/plan/query.cc.o.d"
  "/root/repo/src/runtime/simulator.cc" "src/CMakeFiles/zerodb.dir/runtime/simulator.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/runtime/simulator.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/zerodb.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/zerodb.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/sql/parser.cc.o.d"
  "/root/repo/src/stats/cardinality.cc" "src/CMakeFiles/zerodb.dir/stats/cardinality.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/stats/cardinality.cc.o.d"
  "/root/repo/src/stats/database_stats.cc" "src/CMakeFiles/zerodb.dir/stats/database_stats.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/stats/database_stats.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/zerodb.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/stats/histogram.cc.o.d"
  "/root/repo/src/storage/column.cc" "src/CMakeFiles/zerodb.dir/storage/column.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/storage/column.cc.o.d"
  "/root/repo/src/storage/csv.cc" "src/CMakeFiles/zerodb.dir/storage/csv.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/storage/csv.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/CMakeFiles/zerodb.dir/storage/database.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/storage/database.cc.o.d"
  "/root/repo/src/storage/index.cc" "src/CMakeFiles/zerodb.dir/storage/index.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/storage/index.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/zerodb.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/CMakeFiles/zerodb.dir/storage/value.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/storage/value.cc.o.d"
  "/root/repo/src/train/dataset.cc" "src/CMakeFiles/zerodb.dir/train/dataset.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/train/dataset.cc.o.d"
  "/root/repo/src/train/metrics.cc" "src/CMakeFiles/zerodb.dir/train/metrics.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/train/metrics.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/CMakeFiles/zerodb.dir/train/trainer.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/train/trainer.cc.o.d"
  "/root/repo/src/whatif/index_advisor.cc" "src/CMakeFiles/zerodb.dir/whatif/index_advisor.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/whatif/index_advisor.cc.o.d"
  "/root/repo/src/workload/benchmarks.cc" "src/CMakeFiles/zerodb.dir/workload/benchmarks.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/workload/benchmarks.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/zerodb.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/workload/generator.cc.o.d"
  "/root/repo/src/zeroshot/ensemble.cc" "src/CMakeFiles/zerodb.dir/zeroshot/ensemble.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/zeroshot/ensemble.cc.o.d"
  "/root/repo/src/zeroshot/estimator.cc" "src/CMakeFiles/zerodb.dir/zeroshot/estimator.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/zeroshot/estimator.cc.o.d"
  "/root/repo/src/zeroshot/plan_selection.cc" "src/CMakeFiles/zerodb.dir/zeroshot/plan_selection.cc.o" "gcc" "src/CMakeFiles/zerodb.dir/zeroshot/plan_selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
