file(REMOVE_RECURSE
  "libzerodb.a"
)
