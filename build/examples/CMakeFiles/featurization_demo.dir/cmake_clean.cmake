file(REMOVE_RECURSE
  "CMakeFiles/featurization_demo.dir/featurization_demo.cpp.o"
  "CMakeFiles/featurization_demo.dir/featurization_demo.cpp.o.d"
  "featurization_demo"
  "featurization_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/featurization_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
