# Empty dependencies file for featurization_demo.
# This may be replaced when dependencies are built.
