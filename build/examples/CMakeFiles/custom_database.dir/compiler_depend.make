# Empty compiler generated dependencies file for custom_database.
# This may be replaced when dependencies are built.
