file(REMOVE_RECURSE
  "CMakeFiles/custom_database.dir/custom_database.cpp.o"
  "CMakeFiles/custom_database.dir/custom_database.cpp.o.d"
  "custom_database"
  "custom_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
