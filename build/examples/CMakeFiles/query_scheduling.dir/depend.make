# Empty dependencies file for query_scheduling.
# This may be replaced when dependencies are built.
