file(REMOVE_RECURSE
  "CMakeFiles/query_scheduling.dir/query_scheduling.cpp.o"
  "CMakeFiles/query_scheduling.dir/query_scheduling.cpp.o.d"
  "query_scheduling"
  "query_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
