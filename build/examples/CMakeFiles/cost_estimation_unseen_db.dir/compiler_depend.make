# Empty compiler generated dependencies file for cost_estimation_unseen_db.
# This may be replaced when dependencies are built.
