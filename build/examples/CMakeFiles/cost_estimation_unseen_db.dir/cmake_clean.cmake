file(REMOVE_RECURSE
  "CMakeFiles/cost_estimation_unseen_db.dir/cost_estimation_unseen_db.cpp.o"
  "CMakeFiles/cost_estimation_unseen_db.dir/cost_estimation_unseen_db.cpp.o.d"
  "cost_estimation_unseen_db"
  "cost_estimation_unseen_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_estimation_unseen_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
