#include "plan/query.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace zerodb::plan {

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  ZDB_CHECK(false);
  return "?";
}

std::string QuerySpec::ToSql(const storage::Database& db) const {
  std::vector<std::string> select_items;
  for (const AggregateSpec& agg : aggregates) {
    if (agg.table.empty()) {
      select_items.push_back(std::string(AggFuncName(agg.func)) + "(*)");
    } else {
      select_items.push_back(StrFormat("%s(%s.%s)", AggFuncName(agg.func),
                                       agg.table.c_str(), agg.column.c_str()));
    }
  }
  for (const GroupBySpec& g : group_by) {
    select_items.insert(select_items.begin(), g.table + "." + g.column);
  }
  if (select_items.empty()) select_items.push_back("*");

  std::string sql = "SELECT " + Join(select_items, ", ") + " FROM " +
                    Join(tables, ", ");

  std::vector<std::string> where_parts;
  for (const JoinSpec& join : joins) {
    where_parts.push_back(StrFormat("%s.%s = %s.%s", join.left_table.c_str(),
                                    join.left_column.c_str(),
                                    join.right_table.c_str(),
                                    join.right_column.c_str()));
  }
  for (const FilterSpec& filter : filters) {
    const storage::Table* table = db.FindTable(filter.table);
    // Render literals losslessly, and dictionary codes as quoted strings,
    // so the output parses back through sql::ParseQuery unchanged.
    auto renderer = [&](size_t slot, CompareOp op, double literal) {
      std::string name = StrFormat("%s.$%zu", filter.table.c_str(), slot);
      std::string value = StrFormat("%.17g", literal);
      if (table != nullptr && slot < table->num_columns()) {
        name = filter.table + "." + table->schema().column(slot).name;
        const storage::Column& column = table->column(slot);
        if (column.type() == catalog::DataType::kString) {
          auto entry = column.DictionaryEntry(static_cast<int64_t>(literal));
          value = entry.ok() ? "'" + *entry + "'" : "'<unknown>'";
        }
      }
      return StrFormat("%s %s %s", name.c_str(), CompareOpName(op),
                       value.c_str());
    };
    where_parts.push_back(filter.predicate.ToStringWithRenderer(renderer));
  }
  if (!where_parts.empty()) {
    sql += " WHERE " + Join(where_parts, " AND ");
  }
  if (!group_by.empty()) {
    std::vector<std::string> group_items;
    for (const GroupBySpec& g : group_by) {
      group_items.push_back(g.table + "." + g.column);
    }
    sql += " GROUP BY " + Join(group_items, ", ");
  }
  return sql + ";";
}

Status QuerySpec::Validate(const storage::Database& db) const {
  if (tables.empty()) return Status::InvalidArgument("query has no tables");
  for (const std::string& table_name : tables) {
    if (db.FindTable(table_name) == nullptr) {
      return Status::NotFound("table: " + table_name);
    }
  }
  auto has_table = [this](const std::string& name) {
    return std::find(tables.begin(), tables.end(), name) != tables.end();
  };
  auto check_column = [&db](const std::string& table_name,
                            const std::string& column_name) -> Status {
    const storage::Table* table = db.FindTable(table_name);
    if (table == nullptr) return Status::NotFound("table: " + table_name);
    if (!table->schema().FindColumn(column_name).has_value()) {
      return Status::NotFound("column: " + table_name + "." + column_name);
    }
    return Status::OK();
  };

  for (const JoinSpec& join : joins) {
    if (!has_table(join.left_table) || !has_table(join.right_table)) {
      return Status::InvalidArgument("join references table outside FROM");
    }
    ZDB_RETURN_NOT_OK(check_column(join.left_table, join.left_column));
    ZDB_RETURN_NOT_OK(check_column(join.right_table, join.right_column));
  }
  for (const FilterSpec& filter : filters) {
    if (!has_table(filter.table)) {
      return Status::InvalidArgument("filter references table outside FROM");
    }
    const storage::Table* table = db.FindTable(filter.table);
    for (size_t slot : filter.predicate.ReferencedSlots()) {
      if (slot >= table->num_columns()) {
        return Status::OutOfRange("filter slot out of range");
      }
    }
  }
  for (const AggregateSpec& agg : aggregates) {
    if (agg.table.empty()) continue;  // COUNT(*)
    if (!has_table(agg.table)) {
      return Status::InvalidArgument("aggregate references table outside FROM");
    }
    ZDB_RETURN_NOT_OK(check_column(agg.table, agg.column));
  }
  for (const GroupBySpec& g : group_by) {
    if (!has_table(g.table)) {
      return Status::InvalidArgument("group-by references table outside FROM");
    }
    ZDB_RETURN_NOT_OK(check_column(g.table, g.column));
  }

  // Connectivity: every table must be reachable through join edges (single
  // table queries trivially pass).
  if (tables.size() > 1) {
    std::vector<std::string> reachable = {tables[0]};
    bool grew = true;
    while (grew) {
      grew = false;
      for (const JoinSpec& join : joins) {
        bool left_in = std::find(reachable.begin(), reachable.end(),
                                 join.left_table) != reachable.end();
        bool right_in = std::find(reachable.begin(), reachable.end(),
                                  join.right_table) != reachable.end();
        if (left_in != right_in) {
          reachable.push_back(left_in ? join.right_table : join.left_table);
          grew = true;
        }
      }
    }
    if (reachable.size() != tables.size()) {
      return Status::InvalidArgument("join graph is disconnected");
    }
  }
  return Status::OK();
}

}  // namespace zerodb::plan
