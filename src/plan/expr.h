#ifndef ZERODB_PLAN_EXPR_H_
#define ZERODB_PLAN_EXPR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "catalog/schema.h"

namespace zerodb::plan {

/// Comparison operators usable in predicates. String (dictionary-code)
/// columns use only kEq / kNe; numeric columns use all of them.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

/// A boolean predicate tree over the "slots" (column positions) of some row
/// schema. At table scans the slots are the base table's column indexes; in
/// Filter nodes they are positions in the child operator's output schema.
///
/// Only the *structure* of predicates (tree shape, operator kinds, column
/// types) is visible to the zero-shot featurizer; literal values stay out of
/// the features (the paper's separation of concerns: selectivities enter
/// through cardinality inputs, not through memorized literals).
class Predicate {
 public:
  enum class Kind { kCompare, kAnd, kOr };

  /// Leaf: slot <op> literal.
  static Predicate Compare(size_t slot, CompareOp op, double literal);
  /// Conjunction / disjunction of one or more children.
  static Predicate And(std::vector<Predicate> children);
  static Predicate Or(std::vector<Predicate> children);

  Kind kind() const { return kind_; }
  size_t slot() const { return slot_; }
  CompareOp op() const { return op_; }
  double literal() const { return literal_; }
  const std::vector<Predicate>& children() const { return children_; }

  /// Evaluates against a row given as slot values.
  bool Evaluate(const std::vector<double>& row) const;

  /// Number of leaf comparisons (a computational-complexity feature).
  size_t NumComparisons() const;

  /// Tree depth (leaf = 1).
  size_t Depth() const;

  /// Leaves in left-to-right order (slot/op/literal triples).
  void CollectLeaves(std::vector<const Predicate*>* leaves) const;

  /// All slots referenced anywhere in the tree.
  std::vector<size_t> ReferencedSlots() const;

  /// Rewrites every leaf's slot through the mapping (old slot -> new slot).
  Predicate RemapSlots(const std::vector<size_t>& slot_map) const;

  /// Renders with the given column names, e.g. "(age >= 30 AND kind = 4)".
  std::string ToString(const std::vector<std::string>& slot_names) const;

  /// Renders with a custom leaf renderer (e.g. to resolve dictionary codes
  /// back to quoted strings for SQL output).
  using LeafRenderer =
      std::function<std::string(size_t slot, CompareOp op, double literal)>;
  std::string ToStringWithRenderer(const LeafRenderer& renderer) const;

 private:
  Kind kind_ = Kind::kCompare;
  size_t slot_ = 0;
  CompareOp op_ = CompareOp::kEq;
  double literal_ = 0.0;
  std::vector<Predicate> children_;
};

/// Evaluates a single comparison on a value.
bool EvaluateCompare(double value, CompareOp op, double literal);

}  // namespace zerodb::plan

#endif  // ZERODB_PLAN_EXPR_H_
