#ifndef ZERODB_PLAN_VALIDATE_H_
#define ZERODB_PLAN_VALIDATE_H_

#include "common/status.h"
#include "plan/physical.h"
#include "storage/database.h"

namespace zerodb::plan {

/// Semantic plan invariants the compiler cannot express, checked at
/// debug time via ZDB_DCHECK_OK at every plan hand-off (optimizer emission,
/// executor open) so each existing test doubles as a verification run.
///
/// ValidatePlan walks the tree bottom-up and returns the first violation:
///  - structure: every operator has its required child count; aggregates
///    are non-empty; HashAggregate groups, SimpleAggregate does not; Sort
///    has sort keys.
///  - schema consistency: scans name existing tables; every slot reference
///    (predicate leaves, join keys, group-by, aggregate inputs, sort keys)
///    resolves inside the input schema it indexes.
///  - expression typing: predicate leaves over dictionary-encoded string
///    columns use only equality/inequality; literals are not NaN; equi-join
///    keys do not compare a string column against a numeric one.
///  - cardinality sanity: estimates are finite and non-negative;
///    true cardinalities (when recorded by the executor) respect relational
///    bounds — a Filter never outputs more rows than its input, Sort
///    preserves cardinality, SimpleAggregate emits exactly one row, a join
///    emits at most the cross product, a scan at most the table.
[[nodiscard]] Status ValidatePlan(const PhysicalNode& root,
                                  const storage::Database& db);

/// Convenience overload; fails if the plan has no root.
[[nodiscard]] Status ValidatePlan(const PhysicalPlan& plan,
                                  const storage::Database& db);

/// Validates a predicate tree against an input schema given as per-slot
/// column types (kCompare leaves must reference valid slots, string slots
/// only with kEq/kNe, literals must not be NaN; kAnd/kOr need children).
/// Exposed for reuse by featurizers and tests.
[[nodiscard]] Status ValidatePredicate(
    const Predicate& predicate,
    const std::vector<catalog::DataType>& slot_types);

}  // namespace zerodb::plan

#endif  // ZERODB_PLAN_VALIDATE_H_
