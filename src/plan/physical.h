#ifndef ZERODB_PLAN_PHYSICAL_H_
#define ZERODB_PLAN_PHYSICAL_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "plan/expr.h"
#include "plan/query.h"
#include "storage/database.h"

namespace zerodb::plan {

/// Physical operator kinds. The zero-shot model has one encoder per kind:
/// physical (not logical) operators are featurized so runtime-complexity
/// differences (hash vs index-nested-loop join, seq vs index scan) are
/// visible to the model, as in the paper's Figure 3.
enum class PhysicalOpType {
  kSeqScan,
  kIndexScan,
  kFilter,
  kHashJoin,
  kNestedLoopJoin,
  kIndexNLJoin,
  kSort,
  kHashAggregate,
  kSimpleAggregate,
};

const char* PhysicalOpName(PhysicalOpType type);
inline constexpr size_t kNumPhysicalOpTypes = 9;

/// An aggregate over a slot of the child's output (nullopt = COUNT(*)).
struct AggregateExpr {
  AggFunc func = AggFunc::kCount;
  std::optional<size_t> input_slot;
};

/// Provenance of one output column: which base table column it carries.
/// Synthetic columns (aggregate results) have table empty.
struct OutputColumn {
  std::string table;
  size_t column_index = 0;
  bool synthetic = false;
};

/// A node of a physical query plan. Plans are trees of unique_ptr-owned
/// nodes; annotation fields are written by the optimizer (estimates) and the
/// executor (true cardinalities) and consumed by the featurizers.
struct PhysicalNode {
  PhysicalOpType type = PhysicalOpType::kSeqScan;
  std::vector<std::unique_ptr<PhysicalNode>> children;

  // --- Scans (kSeqScan, kIndexScan) and the inner side of kIndexNLJoin ---
  std::string table_name;
  /// Scan filter (slots = base table columns) evaluated during the scan; for
  /// kIndexScan this is the residual predicate applied after the range
  /// lookup; for kFilter the slots index the child's output schema; for
  /// kIndexNLJoin it is the residual predicate on the *inner* table.
  std::optional<Predicate> predicate;
  // kIndexScan: indexed column and inclusive key range.
  size_t index_column = 0;
  std::optional<double> range_lo;
  std::optional<double> range_hi;

  // --- Joins (kHashJoin, kNestedLoopJoin): equi-join slots into the left /
  // right child output schemas. For kIndexNLJoin, left_key_slot indexes the
  // outer (only) child's output and index_column names the inner key column.
  size_t left_key_slot = 0;
  size_t right_key_slot = 0;

  // --- Aggregation (kHashAggregate has group_by_slots; kSimpleAggregate
  // produces exactly one row) ---
  std::vector<size_t> group_by_slots;
  std::vector<AggregateExpr> aggregates;

  // --- Sort ---
  std::vector<size_t> sort_slots;

  // --- Annotations ---
  double est_cardinality = 0.0;   ///< optimizer's estimated output rows
  double est_cost = 0.0;          ///< optimizer's cumulative cost
  double true_cardinality = -1.0; ///< filled by the executor, -1 = unknown

  /// Output schema given the database (for widths / slot resolution).
  std::vector<OutputColumn> OutputSchema(const storage::Database& db) const;

  /// Average output tuple width in bytes.
  int64_t OutputWidthBytes(const storage::Database& db) const;

  /// Fills `widths` with OutputWidthBytes for this node and every
  /// descendant in one post-order pass. OutputWidthBytes rebuilds the
  /// output schema recursively on each call, so per-node calls across a
  /// whole plan are quadratic in plan size — featurization, which needs
  /// every node's width, uses this instead.
  void ComputeOutputWidths(
      const storage::Database& db,
      std::unordered_map<const PhysicalNode*, int64_t>* widths) const;

  /// Number of nodes in this subtree.
  size_t SubtreeSize() const;

  /// Tree height (leaf = 1).
  size_t Height() const;

  /// Pre-order visit of the subtree.
  void Visit(const std::function<void(const PhysicalNode&)>& fn) const;
  void VisitMutable(const std::function<void(PhysicalNode&)>& fn);

  /// Deep copy (annotations included).
  std::unique_ptr<PhysicalNode> Clone() const;

  /// Indented multi-line rendering of the subtree (EXPLAIN-style).
  std::string ToString(const storage::Database& db, int indent = 0) const;
};

/// Convenience builders.
std::unique_ptr<PhysicalNode> MakeSeqScan(std::string table,
                                          std::optional<Predicate> predicate);
std::unique_ptr<PhysicalNode> MakeIndexScan(std::string table,
                                            size_t index_column,
                                            std::optional<double> lo,
                                            std::optional<double> hi,
                                            std::optional<Predicate> residual);
std::unique_ptr<PhysicalNode> MakeFilter(std::unique_ptr<PhysicalNode> child,
                                         Predicate predicate);
std::unique_ptr<PhysicalNode> MakeHashJoin(std::unique_ptr<PhysicalNode> build,
                                           std::unique_ptr<PhysicalNode> probe,
                                           size_t left_key_slot,
                                           size_t right_key_slot);
std::unique_ptr<PhysicalNode> MakeNestedLoopJoin(
    std::unique_ptr<PhysicalNode> left, std::unique_ptr<PhysicalNode> right,
    size_t left_key_slot, size_t right_key_slot);
std::unique_ptr<PhysicalNode> MakeIndexNLJoin(
    std::unique_ptr<PhysicalNode> outer, std::string inner_table,
    size_t outer_key_slot, size_t inner_key_column,
    std::optional<Predicate> inner_residual);
std::unique_ptr<PhysicalNode> MakeSort(std::unique_ptr<PhysicalNode> child,
                                       std::vector<size_t> sort_slots);
std::unique_ptr<PhysicalNode> MakeSimpleAggregate(
    std::unique_ptr<PhysicalNode> child, std::vector<AggregateExpr> aggregates);
std::unique_ptr<PhysicalNode> MakeHashAggregate(
    std::unique_ptr<PhysicalNode> child, std::vector<size_t> group_by_slots,
    std::vector<AggregateExpr> aggregates);

/// A complete plan: the root node plus the query it answers.
struct PhysicalPlan {
  std::unique_ptr<PhysicalNode> root;

  PhysicalPlan() = default;
  explicit PhysicalPlan(std::unique_ptr<PhysicalNode> r) : root(std::move(r)) {}

  PhysicalPlan Clone() const {
    PhysicalPlan copy;
    if (root != nullptr) copy.root = root->Clone();
    return copy;
  }
};

}  // namespace zerodb::plan

#endif  // ZERODB_PLAN_PHYSICAL_H_
