#include "plan/physical.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace zerodb::plan {

const char* PhysicalOpName(PhysicalOpType type) {
  switch (type) {
    case PhysicalOpType::kSeqScan:
      return "SeqScan";
    case PhysicalOpType::kIndexScan:
      return "IndexScan";
    case PhysicalOpType::kFilter:
      return "Filter";
    case PhysicalOpType::kHashJoin:
      return "HashJoin";
    case PhysicalOpType::kNestedLoopJoin:
      return "NestedLoopJoin";
    case PhysicalOpType::kIndexNLJoin:
      return "IndexNLJoin";
    case PhysicalOpType::kSort:
      return "Sort";
    case PhysicalOpType::kHashAggregate:
      return "HashAggregate";
    case PhysicalOpType::kSimpleAggregate:
      return "SimpleAggregate";
  }
  ZDB_CHECK(false);
  return "?";
}

namespace {

std::vector<OutputColumn> TableColumns(const storage::Database& db,
                                       const std::string& table_name) {
  const storage::Table* table = db.FindTable(table_name);
  ZDB_CHECK(table != nullptr) << "unknown table " << table_name;
  std::vector<OutputColumn> columns;
  columns.reserve(table->num_columns());
  for (size_t i = 0; i < table->num_columns(); ++i) {
    columns.push_back(OutputColumn{table_name, i, false});
  }
  return columns;
}

int64_t SchemaWidthBytes(const std::vector<OutputColumn>& schema,
                         const storage::Database& db) {
  int64_t width = 0;
  for (const OutputColumn& column : schema) {
    if (column.synthetic) {
      width += 8;
      continue;
    }
    const storage::Table* table = db.FindTable(column.table);
    ZDB_CHECK(table != nullptr);
    width += table->column(column.column_index).AvgWidthBytes();
  }
  return std::max<int64_t>(width, 1);
}

// The one schema-derivation switch, shared by OutputSchema (widths ==
// nullptr) and ComputeOutputWidths, which memoizes every subtree width in
// a single post-order pass instead of re-deriving child schemas per call.
std::vector<OutputColumn> SchemaOf(
    const PhysicalNode& node, const storage::Database& db,
    std::unordered_map<const PhysicalNode*, int64_t>* widths) {
  std::vector<OutputColumn> schema;
  switch (node.type) {
    case PhysicalOpType::kSeqScan:
    case PhysicalOpType::kIndexScan:
      schema = TableColumns(db, node.table_name);
      break;
    case PhysicalOpType::kFilter:
    case PhysicalOpType::kSort:
      ZDB_CHECK_EQ(node.children.size(), 1u);
      schema = SchemaOf(*node.children[0], db, widths);
      break;
    case PhysicalOpType::kHashJoin:
    case PhysicalOpType::kNestedLoopJoin: {
      ZDB_CHECK_EQ(node.children.size(), 2u);
      schema = SchemaOf(*node.children[0], db, widths);
      std::vector<OutputColumn> right = SchemaOf(*node.children[1], db, widths);
      schema.insert(schema.end(), right.begin(), right.end());
      break;
    }
    case PhysicalOpType::kIndexNLJoin: {
      ZDB_CHECK_EQ(node.children.size(), 1u);
      schema = SchemaOf(*node.children[0], db, widths);
      std::vector<OutputColumn> inner = TableColumns(db, node.table_name);
      schema.insert(schema.end(), inner.begin(), inner.end());
      break;
    }
    case PhysicalOpType::kHashAggregate:
    case PhysicalOpType::kSimpleAggregate: {
      ZDB_CHECK_EQ(node.children.size(), 1u);
      std::vector<OutputColumn> child_schema =
          SchemaOf(*node.children[0], db, widths);
      for (size_t slot : node.group_by_slots) {
        ZDB_CHECK_LT(slot, child_schema.size());
        schema.push_back(child_schema[slot]);
      }
      for (size_t i = 0; i < node.aggregates.size(); ++i) {
        schema.push_back(OutputColumn{"", i, true});
      }
      break;
    }
  }
  if (widths != nullptr) {
    (*widths)[&node] = SchemaWidthBytes(schema, db);
  }
  return schema;
}

}  // namespace

std::vector<OutputColumn> PhysicalNode::OutputSchema(
    const storage::Database& db) const {
  return SchemaOf(*this, db, nullptr);
}

int64_t PhysicalNode::OutputWidthBytes(const storage::Database& db) const {
  return SchemaWidthBytes(OutputSchema(db), db);
}

void PhysicalNode::ComputeOutputWidths(
    const storage::Database& db,
    std::unordered_map<const PhysicalNode*, int64_t>* widths) const {
  ZDB_CHECK(widths != nullptr);
  SchemaOf(*this, db, widths);
}

size_t PhysicalNode::SubtreeSize() const {
  size_t count = 1;
  for (const auto& child : children) count += child->SubtreeSize();
  return count;
}

size_t PhysicalNode::Height() const {
  size_t max_child = 0;
  for (const auto& child : children) {
    max_child = std::max(max_child, child->Height());
  }
  return max_child + 1;
}

void PhysicalNode::Visit(
    const std::function<void(const PhysicalNode&)>& fn) const {
  fn(*this);
  for (const auto& child : children) child->Visit(fn);
}

void PhysicalNode::VisitMutable(const std::function<void(PhysicalNode&)>& fn) {
  fn(*this);
  for (auto& child : children) child->VisitMutable(fn);
}

std::unique_ptr<PhysicalNode> PhysicalNode::Clone() const {
  auto copy = std::make_unique<PhysicalNode>();
  copy->type = type;
  copy->table_name = table_name;
  copy->predicate = predicate;
  copy->index_column = index_column;
  copy->range_lo = range_lo;
  copy->range_hi = range_hi;
  copy->left_key_slot = left_key_slot;
  copy->right_key_slot = right_key_slot;
  copy->group_by_slots = group_by_slots;
  copy->aggregates = aggregates;
  copy->sort_slots = sort_slots;
  copy->est_cardinality = est_cardinality;
  copy->est_cost = est_cost;
  copy->true_cardinality = true_cardinality;
  copy->children.reserve(children.size());
  for (const auto& child : children) copy->children.push_back(child->Clone());
  return copy;
}

std::string PhysicalNode::ToString(const storage::Database& db,
                                   int indent) const {
  std::string line(static_cast<size_t>(indent) * 2, ' ');
  line += PhysicalOpName(type);
  switch (type) {
    case PhysicalOpType::kSeqScan:
      line += "(" + table_name + ")";
      break;
    case PhysicalOpType::kIndexScan: {
      const storage::Table* table = db.FindTable(table_name);
      std::string column = table != nullptr
                               ? table->schema().column(index_column).name
                               : StrFormat("#%zu", index_column);
      line += StrFormat("(%s.%s in [%s, %s])", table_name.c_str(),
                        column.c_str(),
                        range_lo ? FormatDouble(*range_lo, 2).c_str() : "-inf",
                        range_hi ? FormatDouble(*range_hi, 2).c_str() : "+inf");
      break;
    }
    case PhysicalOpType::kIndexNLJoin:
      line += StrFormat("(outer.$%zu = %s.#%zu)", left_key_slot,
                        table_name.c_str(), index_column);
      break;
    case PhysicalOpType::kHashJoin:
    case PhysicalOpType::kNestedLoopJoin:
      line += StrFormat("($%zu = $%zu)", left_key_slot, right_key_slot);
      break;
    default:
      break;
  }
  if (predicate.has_value()) {
    std::vector<std::string> slot_names;
    if (type == PhysicalOpType::kSeqScan ||
        type == PhysicalOpType::kIndexScan ||
        type == PhysicalOpType::kIndexNLJoin) {
      const storage::Table* table = db.FindTable(table_name);
      if (table != nullptr) {
        for (const auto& column : table->schema().columns()) {
          slot_names.push_back(column.name);
        }
      }
    }
    line += " filter=" + predicate->ToString(slot_names);
  }
  if (!aggregates.empty()) {
    line += StrFormat(" aggs=%zu", aggregates.size());
  }
  line += StrFormat("  [est=%.1f", est_cardinality);
  if (true_cardinality >= 0) line += StrFormat(" true=%.0f", true_cardinality);
  line += "]";
  for (const auto& child : children) {
    line += "\n" + child->ToString(db, indent + 1);
  }
  return line;
}

std::unique_ptr<PhysicalNode> MakeSeqScan(std::string table,
                                          std::optional<Predicate> predicate) {
  auto node = std::make_unique<PhysicalNode>();
  node->type = PhysicalOpType::kSeqScan;
  node->table_name = std::move(table);
  node->predicate = std::move(predicate);
  return node;
}

std::unique_ptr<PhysicalNode> MakeIndexScan(
    std::string table, size_t index_column, std::optional<double> lo,
    std::optional<double> hi, std::optional<Predicate> residual) {
  auto node = std::make_unique<PhysicalNode>();
  node->type = PhysicalOpType::kIndexScan;
  node->table_name = std::move(table);
  node->index_column = index_column;
  node->range_lo = lo;
  node->range_hi = hi;
  node->predicate = std::move(residual);
  return node;
}

std::unique_ptr<PhysicalNode> MakeFilter(std::unique_ptr<PhysicalNode> child,
                                         Predicate predicate) {
  auto node = std::make_unique<PhysicalNode>();
  node->type = PhysicalOpType::kFilter;
  node->predicate = std::move(predicate);
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PhysicalNode> MakeHashJoin(std::unique_ptr<PhysicalNode> build,
                                           std::unique_ptr<PhysicalNode> probe,
                                           size_t left_key_slot,
                                           size_t right_key_slot) {
  auto node = std::make_unique<PhysicalNode>();
  node->type = PhysicalOpType::kHashJoin;
  node->left_key_slot = left_key_slot;
  node->right_key_slot = right_key_slot;
  node->children.push_back(std::move(build));
  node->children.push_back(std::move(probe));
  return node;
}

std::unique_ptr<PhysicalNode> MakeNestedLoopJoin(
    std::unique_ptr<PhysicalNode> left, std::unique_ptr<PhysicalNode> right,
    size_t left_key_slot, size_t right_key_slot) {
  auto node = std::make_unique<PhysicalNode>();
  node->type = PhysicalOpType::kNestedLoopJoin;
  node->left_key_slot = left_key_slot;
  node->right_key_slot = right_key_slot;
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return node;
}

std::unique_ptr<PhysicalNode> MakeIndexNLJoin(
    std::unique_ptr<PhysicalNode> outer, std::string inner_table,
    size_t outer_key_slot, size_t inner_key_column,
    std::optional<Predicate> inner_residual) {
  auto node = std::make_unique<PhysicalNode>();
  node->type = PhysicalOpType::kIndexNLJoin;
  node->table_name = std::move(inner_table);
  node->left_key_slot = outer_key_slot;
  node->index_column = inner_key_column;
  node->predicate = std::move(inner_residual);
  node->children.push_back(std::move(outer));
  return node;
}

std::unique_ptr<PhysicalNode> MakeSort(std::unique_ptr<PhysicalNode> child,
                                       std::vector<size_t> sort_slots) {
  auto node = std::make_unique<PhysicalNode>();
  node->type = PhysicalOpType::kSort;
  node->sort_slots = std::move(sort_slots);
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PhysicalNode> MakeSimpleAggregate(
    std::unique_ptr<PhysicalNode> child,
    std::vector<AggregateExpr> aggregates) {
  auto node = std::make_unique<PhysicalNode>();
  node->type = PhysicalOpType::kSimpleAggregate;
  node->aggregates = std::move(aggregates);
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PhysicalNode> MakeHashAggregate(
    std::unique_ptr<PhysicalNode> child, std::vector<size_t> group_by_slots,
    std::vector<AggregateExpr> aggregates) {
  auto node = std::make_unique<PhysicalNode>();
  node->type = PhysicalOpType::kHashAggregate;
  node->group_by_slots = std::move(group_by_slots);
  node->aggregates = std::move(aggregates);
  node->children.push_back(std::move(child));
  return node;
}

}  // namespace zerodb::plan
