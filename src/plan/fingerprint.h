#ifndef ZERODB_PLAN_FINGERPRINT_H_
#define ZERODB_PLAN_FINGERPRINT_H_

#include <cstdint>
#include <string_view>

#include "plan/physical.h"

namespace zerodb::plan {

/// Canonical 64-bit fingerprint of a physical plan tree. Hashes, in
/// pre-order: operator kind, table name, the full predicate structure
/// (tree shape, slots, compare ops, literals), index column and key range,
/// join key slots, group-by / aggregate / sort shape, and the annotation
/// fields the featurizers read (est_cardinality, est_cost,
/// true_cardinality). Every input of plan featurization except the
/// database's own statistics is covered, so two plans with equal
/// fingerprints featurize identically against the same database (modulo
/// 64-bit collisions) — which is exactly what the prediction cache keys on.
/// FNV-1a-based, deterministic across runs and platforms.
uint64_t FingerprintPlan(const PhysicalNode& root);

/// Fingerprint of a whole plan; a null root hashes to a fixed sentinel.
uint64_t FingerprintPlan(const PhysicalPlan& plan);

/// Mixes an extra 64-bit value into a fingerprint (cache callers append
/// database identity, config epochs, ...). Not commutative.
uint64_t FingerprintCombine(uint64_t fingerprint, uint64_t value);

/// Standalone FNV-1a hash of a string (database names and the like).
uint64_t FingerprintString(std::string_view text);

}  // namespace zerodb::plan

#endif  // ZERODB_PLAN_FINGERPRINT_H_
