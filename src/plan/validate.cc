#include "plan/validate.h"

#include <cmath>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace zerodb::plan {

namespace {

using catalog::DataType;

// Per-slot column types of one base table.
StatusOr<std::vector<DataType>> TableSlotTypes(const storage::Database& db,
                                               const std::string& table_name,
                                               const char* op_name) {
  const storage::Table* table = db.FindTable(table_name);
  if (table == nullptr) {
    return Status::InvalidArgument(StrFormat(
        "%s references unknown table '%s'", op_name, table_name.c_str()));
  }
  std::vector<DataType> types;
  types.reserve(table->num_columns());
  for (const catalog::ColumnSchema& column : table->schema().columns()) {
    types.push_back(column.type);
  }
  return types;
}

Status ValidateChildCount(const PhysicalNode& node, size_t expected) {
  if (node.children.size() != expected) {
    return Status::InvalidArgument(StrFormat(
        "%s must have %zu child(ren), has %zu", PhysicalOpName(node.type),
        expected, node.children.size()));
  }
  return Status::OK();
}

Status ValidateSlot(size_t slot, size_t schema_size, const char* op_name,
                    const char* role) {
  if (slot >= schema_size) {
    return Status::InvalidArgument(
        StrFormat("%s %s slot %zu out of range (input schema has %zu slots)",
                  op_name, role, slot, schema_size));
  }
  return Status::OK();
}

Status ValidateAnnotations(const PhysicalNode& node) {
  const char* op_name = PhysicalOpName(node.type);
  if (!std::isfinite(node.est_cardinality) || node.est_cardinality < 0.0) {
    return Status::InvalidArgument(
        StrFormat("%s has invalid est_cardinality %f", op_name,
                  node.est_cardinality));
  }
  if (!std::isfinite(node.est_cost) || node.est_cost < 0.0) {
    return Status::InvalidArgument(
        StrFormat("%s has invalid est_cost %f", op_name, node.est_cost));
  }
  const double t = node.true_cardinality;
  if (!(t == -1.0 || (std::isfinite(t) && t >= 0.0))) {
    return Status::InvalidArgument(
        StrFormat("%s has invalid true_cardinality %f (-1 or >= 0)", op_name,
                  t));
  }
  return Status::OK();
}

// Relational bounds on executor-recorded cardinalities. Unknown (-1) values
// on either side of a bound disable that bound.
Status ValidateTrueCardinality(const PhysicalNode& node,
                               const storage::Database& db) {
  const double t = node.true_cardinality;
  if (t < 0.0) return Status::OK();
  const char* op_name = PhysicalOpName(node.type);
  auto child_card = [&](size_t i) {
    return node.children[i]->true_cardinality;
  };
  switch (node.type) {
    case PhysicalOpType::kSeqScan:
    case PhysicalOpType::kIndexScan: {
      const storage::Table* table = db.FindTable(node.table_name);
      if (table != nullptr &&
          t > static_cast<double>(table->num_rows())) {
        return Status::InvalidArgument(StrFormat(
            "%s output %f exceeds table '%s' cardinality %zu", op_name, t,
            node.table_name.c_str(), table->num_rows()));
      }
      break;
    }
    case PhysicalOpType::kFilter:
      if (child_card(0) >= 0.0 && t > child_card(0)) {
        return Status::InvalidArgument(
            StrFormat("%s output %f exceeds input %f", op_name, t,
                      child_card(0)));
      }
      break;
    case PhysicalOpType::kSort:
      if (child_card(0) >= 0.0 && t != child_card(0)) {
        return Status::InvalidArgument(
            StrFormat("%s must preserve cardinality: output %f, input %f",
                      op_name, t, child_card(0)));
      }
      break;
    case PhysicalOpType::kHashJoin:
    case PhysicalOpType::kNestedLoopJoin:
      if (child_card(0) >= 0.0 && child_card(1) >= 0.0 &&
          t > child_card(0) * child_card(1)) {
        return Status::InvalidArgument(StrFormat(
            "%s output %f exceeds cross product %f x %f", op_name, t,
            child_card(0), child_card(1)));
      }
      break;
    case PhysicalOpType::kIndexNLJoin: {
      const storage::Table* inner = db.FindTable(node.table_name);
      if (child_card(0) >= 0.0 && inner != nullptr &&
          t > child_card(0) * static_cast<double>(inner->num_rows())) {
        return Status::InvalidArgument(StrFormat(
            "%s output %f exceeds outer %f x inner table %zu", op_name, t,
            child_card(0), inner->num_rows()));
      }
      break;
    }
    case PhysicalOpType::kHashAggregate:
      if (child_card(0) >= 0.0 && t > child_card(0)) {
        return Status::InvalidArgument(StrFormat(
            "%s emits %f groups from %f input rows", op_name, t,
            child_card(0)));
      }
      break;
    case PhysicalOpType::kSimpleAggregate:
      if (t != 1.0) {
        return Status::InvalidArgument(StrFormat(
            "%s must emit exactly one row, recorded %f", op_name, t));
      }
      break;
  }
  return Status::OK();
}

Status ValidateAggregates(const PhysicalNode& node,
                          const std::vector<DataType>& child_types) {
  const char* op_name = PhysicalOpName(node.type);
  if (node.aggregates.empty()) {
    return Status::InvalidArgument(
        StrFormat("%s has no aggregate expressions", op_name));
  }
  for (const AggregateExpr& agg : node.aggregates) {
    if (!agg.input_slot.has_value()) {
      if (agg.func != AggFunc::kCount) {
        return Status::InvalidArgument(
            StrFormat("%s: %s requires an input slot (only COUNT(*) may "
                      "omit it)",
                      op_name, AggFuncName(agg.func)));
      }
      continue;
    }
    ZDB_RETURN_NOT_OK(
        ValidateSlot(*agg.input_slot, child_types.size(), op_name,
                     "aggregate input"));
    if (agg.func != AggFunc::kCount &&
        child_types[*agg.input_slot] == DataType::kString) {
      return Status::InvalidArgument(StrFormat(
          "%s: %s over dictionary-encoded string slot %zu is not "
          "meaningful",
          op_name, AggFuncName(agg.func), *agg.input_slot));
    }
  }
  return Status::OK();
}

// Validates one node against its children (already validated) and returns
// the node's output slot types.
StatusOr<std::vector<DataType>> ValidateNode(const PhysicalNode& node,
                                             const storage::Database& db) {
  const char* op_name = PhysicalOpName(node.type);

  // Children first, bottom-up, collecting their output types.
  std::vector<std::vector<DataType>> child_types;
  child_types.reserve(node.children.size());
  for (const auto& child : node.children) {
    if (child == nullptr) {
      return Status::InvalidArgument(
          StrFormat("%s has a null child", op_name));
    }
    ZDB_ASSIGN_OR_RETURN(std::vector<DataType> types,
                         ValidateNode(*child, db));
    child_types.push_back(std::move(types));
  }

  ZDB_RETURN_NOT_OK(ValidateAnnotations(node));

  switch (node.type) {
    case PhysicalOpType::kSeqScan:
    case PhysicalOpType::kIndexScan: {
      ZDB_RETURN_NOT_OK(ValidateChildCount(node, 0));
      ZDB_ASSIGN_OR_RETURN(std::vector<DataType> types,
                           TableSlotTypes(db, node.table_name, op_name));
      if (node.type == PhysicalOpType::kIndexScan) {
        ZDB_RETURN_NOT_OK(ValidateSlot(node.index_column, types.size(),
                                       op_name, "index column"));
        // lo > hi is allowed: contradictory predicates legitimately compile
        // to an empty key range. NaN bounds never are.
        if ((node.range_lo.has_value() && std::isnan(*node.range_lo)) ||
            (node.range_hi.has_value() && std::isnan(*node.range_hi))) {
          return Status::InvalidArgument(
              StrFormat("%s has NaN key range bound", op_name));
        }
      }
      if (node.predicate.has_value()) {
        ZDB_RETURN_NOT_OK(ValidatePredicate(*node.predicate, types));
      }
      ZDB_RETURN_NOT_OK(ValidateTrueCardinality(node, db));
      return types;
    }
    case PhysicalOpType::kFilter: {
      ZDB_RETURN_NOT_OK(ValidateChildCount(node, 1));
      if (!node.predicate.has_value()) {
        return Status::InvalidArgument("Filter has no predicate");
      }
      ZDB_RETURN_NOT_OK(ValidatePredicate(*node.predicate, child_types[0]));
      ZDB_RETURN_NOT_OK(ValidateTrueCardinality(node, db));
      return child_types[0];
    }
    case PhysicalOpType::kHashJoin:
    case PhysicalOpType::kNestedLoopJoin: {
      ZDB_RETURN_NOT_OK(ValidateChildCount(node, 2));
      ZDB_RETURN_NOT_OK(ValidateSlot(node.left_key_slot,
                                     child_types[0].size(), op_name,
                                     "left key"));
      ZDB_RETURN_NOT_OK(ValidateSlot(node.right_key_slot,
                                     child_types[1].size(), op_name,
                                     "right key"));
      const bool left_string =
          child_types[0][node.left_key_slot] == DataType::kString;
      const bool right_string =
          child_types[1][node.right_key_slot] == DataType::kString;
      if (left_string != right_string) {
        return Status::InvalidArgument(StrFormat(
            "%s equi-join compares a string column against a numeric one "
            "(slots %zu, %zu)",
            op_name, node.left_key_slot, node.right_key_slot));
      }
      ZDB_RETURN_NOT_OK(ValidateTrueCardinality(node, db));
      std::vector<DataType> types = child_types[0];
      types.insert(types.end(), child_types[1].begin(), child_types[1].end());
      return types;
    }
    case PhysicalOpType::kIndexNLJoin: {
      ZDB_RETURN_NOT_OK(ValidateChildCount(node, 1));
      ZDB_ASSIGN_OR_RETURN(std::vector<DataType> inner_types,
                           TableSlotTypes(db, node.table_name, op_name));
      ZDB_RETURN_NOT_OK(ValidateSlot(node.left_key_slot,
                                     child_types[0].size(), op_name,
                                     "outer key"));
      ZDB_RETURN_NOT_OK(ValidateSlot(node.index_column, inner_types.size(),
                                     op_name, "inner key column"));
      const bool outer_string =
          child_types[0][node.left_key_slot] == DataType::kString;
      const bool inner_string =
          inner_types[node.index_column] == DataType::kString;
      if (outer_string != inner_string) {
        return Status::InvalidArgument(StrFormat(
            "%s equi-join compares a string column against a numeric one",
            op_name));
      }
      if (node.predicate.has_value()) {
        // Residual predicate slots index the *inner* table's columns.
        ZDB_RETURN_NOT_OK(ValidatePredicate(*node.predicate, inner_types));
      }
      ZDB_RETURN_NOT_OK(ValidateTrueCardinality(node, db));
      std::vector<DataType> types = child_types[0];
      types.insert(types.end(), inner_types.begin(), inner_types.end());
      return types;
    }
    case PhysicalOpType::kSort: {
      ZDB_RETURN_NOT_OK(ValidateChildCount(node, 1));
      if (node.sort_slots.empty()) {
        return Status::InvalidArgument("Sort has no sort keys");
      }
      for (size_t slot : node.sort_slots) {
        ZDB_RETURN_NOT_OK(
            ValidateSlot(slot, child_types[0].size(), op_name, "sort key"));
      }
      ZDB_RETURN_NOT_OK(ValidateTrueCardinality(node, db));
      return child_types[0];
    }
    case PhysicalOpType::kHashAggregate:
    case PhysicalOpType::kSimpleAggregate: {
      ZDB_RETURN_NOT_OK(ValidateChildCount(node, 1));
      if (node.type == PhysicalOpType::kHashAggregate &&
          node.group_by_slots.empty()) {
        return Status::InvalidArgument(
            "HashAggregate has no group-by slots (use SimpleAggregate)");
      }
      if (node.type == PhysicalOpType::kSimpleAggregate &&
          !node.group_by_slots.empty()) {
        return Status::InvalidArgument(
            "SimpleAggregate must not have group-by slots");
      }
      for (size_t slot : node.group_by_slots) {
        ZDB_RETURN_NOT_OK(
            ValidateSlot(slot, child_types[0].size(), op_name, "group-by"));
      }
      ZDB_RETURN_NOT_OK(ValidateAggregates(node, child_types[0]));
      ZDB_RETURN_NOT_OK(ValidateTrueCardinality(node, db));
      std::vector<DataType> types;
      types.reserve(node.group_by_slots.size() + node.aggregates.size());
      for (size_t slot : node.group_by_slots) {
        types.push_back(child_types[0][slot]);
      }
      // Aggregate results are synthetic numeric columns.
      for (size_t i = 0; i < node.aggregates.size(); ++i) {
        types.push_back(DataType::kDouble);
      }
      return types;
    }
  }
  return Status::Internal(StrFormat("unknown operator kind %d",
                                    static_cast<int>(node.type)));
}

}  // namespace

Status ValidatePredicate(const Predicate& predicate,
                         const std::vector<DataType>& slot_types) {
  switch (predicate.kind()) {
    case Predicate::Kind::kCompare: {
      if (predicate.slot() >= slot_types.size()) {
        return Status::InvalidArgument(StrFormat(
            "predicate slot %zu out of range (schema has %zu slots)",
            predicate.slot(), slot_types.size()));
      }
      if (std::isnan(predicate.literal())) {
        return Status::InvalidArgument(
            StrFormat("predicate on slot %zu compares against NaN",
                      predicate.slot()));
      }
      if (slot_types[predicate.slot()] == DataType::kString &&
          predicate.op() != CompareOp::kEq &&
          predicate.op() != CompareOp::kNe) {
        return Status::InvalidArgument(StrFormat(
            "predicate applies range operator %s to dictionary-encoded "
            "string slot %zu",
            CompareOpName(predicate.op()), predicate.slot()));
      }
      return Status::OK();
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr: {
      if (predicate.children().empty()) {
        return Status::InvalidArgument(
            "AND/OR predicate must have at least one child");
      }
      for (const Predicate& child : predicate.children()) {
        ZDB_RETURN_NOT_OK(ValidatePredicate(child, slot_types));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown predicate kind");
}

Status ValidatePlan(const PhysicalNode& root, const storage::Database& db) {
  return ValidateNode(root, db).status();
}

Status ValidatePlan(const PhysicalPlan& plan, const storage::Database& db) {
  if (plan.root == nullptr) {
    return Status::InvalidArgument("physical plan has no root node");
  }
  return ValidatePlan(*plan.root, db);
}

}  // namespace zerodb::plan
