#include "plan/expr.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace zerodb::plan {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  ZDB_CHECK(false);
  return "?";
}

bool EvaluateCompare(double value, CompareOp op, double literal) {
  switch (op) {
    case CompareOp::kEq:
      return value == literal;
    case CompareOp::kNe:
      return value != literal;
    case CompareOp::kLt:
      return value < literal;
    case CompareOp::kLe:
      return value <= literal;
    case CompareOp::kGt:
      return value > literal;
    case CompareOp::kGe:
      return value >= literal;
  }
  ZDB_CHECK(false);
  return false;
}

Predicate Predicate::Compare(size_t slot, CompareOp op, double literal) {
  Predicate p;
  p.kind_ = Kind::kCompare;
  p.slot_ = slot;
  p.op_ = op;
  p.literal_ = literal;
  return p;
}

Predicate Predicate::And(std::vector<Predicate> children) {
  ZDB_CHECK(!children.empty());
  if (children.size() == 1) return std::move(children[0]);
  Predicate p;
  p.kind_ = Kind::kAnd;
  p.children_ = std::move(children);
  return p;
}

Predicate Predicate::Or(std::vector<Predicate> children) {
  ZDB_CHECK(!children.empty());
  if (children.size() == 1) return std::move(children[0]);
  Predicate p;
  p.kind_ = Kind::kOr;
  p.children_ = std::move(children);
  return p;
}

bool Predicate::Evaluate(const std::vector<double>& row) const {
  switch (kind_) {
    case Kind::kCompare:
      ZDB_DCHECK(slot_ < row.size());
      return EvaluateCompare(row[slot_], op_, literal_);
    case Kind::kAnd:
      for (const Predicate& child : children_) {
        if (!child.Evaluate(row)) return false;
      }
      return true;
    case Kind::kOr:
      for (const Predicate& child : children_) {
        if (child.Evaluate(row)) return true;
      }
      return false;
  }
  ZDB_CHECK(false);
  return false;
}

size_t Predicate::NumComparisons() const {
  if (kind_ == Kind::kCompare) return 1;
  size_t total = 0;
  for (const Predicate& child : children_) total += child.NumComparisons();
  return total;
}

size_t Predicate::Depth() const {
  if (kind_ == Kind::kCompare) return 1;
  size_t max_child = 0;
  for (const Predicate& child : children_) {
    max_child = std::max(max_child, child.Depth());
  }
  return max_child + 1;
}

void Predicate::CollectLeaves(std::vector<const Predicate*>* leaves) const {
  if (kind_ == Kind::kCompare) {
    leaves->push_back(this);
    return;
  }
  for (const Predicate& child : children_) child.CollectLeaves(leaves);
}

std::vector<size_t> Predicate::ReferencedSlots() const {
  std::vector<const Predicate*> leaves;
  CollectLeaves(&leaves);
  std::vector<size_t> slots;
  for (const Predicate* leaf : leaves) {
    if (std::find(slots.begin(), slots.end(), leaf->slot()) == slots.end()) {
      slots.push_back(leaf->slot());
    }
  }
  return slots;
}

Predicate Predicate::RemapSlots(const std::vector<size_t>& slot_map) const {
  if (kind_ == Kind::kCompare) {
    ZDB_CHECK_LT(slot_, slot_map.size());
    return Compare(slot_map[slot_], op_, literal_);
  }
  std::vector<Predicate> remapped;
  remapped.reserve(children_.size());
  for (const Predicate& child : children_) {
    remapped.push_back(child.RemapSlots(slot_map));
  }
  Predicate p;
  p.kind_ = kind_;
  p.children_ = std::move(remapped);
  return p;
}

std::string Predicate::ToString(
    const std::vector<std::string>& slot_names) const {
  return ToStringWithRenderer(
      [&slot_names](size_t slot, CompareOp op, double literal) {
        std::string name = slot < slot_names.size()
                               ? slot_names[slot]
                               : StrFormat("$%zu", slot);
        return StrFormat("%s %s %g", name.c_str(), CompareOpName(op),
                         literal);
      });
}

std::string Predicate::ToStringWithRenderer(
    const LeafRenderer& renderer) const {
  switch (kind_) {
    case Kind::kCompare:
      return renderer(slot_, op_, literal_);
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(children_.size());
      for (const Predicate& child : children_) {
        parts.push_back(child.ToStringWithRenderer(renderer));
      }
      const char* glue = kind_ == Kind::kAnd ? " AND " : " OR ";
      return "(" + Join(parts, glue) + ")";
    }
  }
  ZDB_CHECK(false);
  return "";
}

}  // namespace zerodb::plan
