#include "plan/fingerprint.h"

#include <cstring>

namespace zerodb::plan {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

// Fixed sentinel for a plan with no root (distinct from any real hash with
// overwhelming probability, stable across runs).
constexpr uint64_t kNullPlan = 0x9e3779b97f4a7c15ULL;

inline uint64_t MixU64(uint64_t h, uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h = (h ^ (v & 0xffu)) * kFnvPrime;
    v >>= 8;
  }
  return h;
}

inline uint64_t MixDouble(uint64_t h, double v) {
  // Hash the bit pattern, normalizing -0.0 to 0.0 so the two equal values
  // (by operator==) cannot fingerprint differently. NaNs never reach plan
  // annotations (validators reject them upstream).
  if (v == 0.0) v = 0.0;
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return MixU64(h, bits);
}

inline uint64_t MixString(uint64_t h, std::string_view text) {
  // Length-prefixed so ("ab", "c") and ("a", "bc") cannot collide when
  // strings are mixed back to back.
  h = MixU64(h, static_cast<uint64_t>(text.size()));
  for (char c : text) {
    h = (h ^ static_cast<unsigned char>(c)) * kFnvPrime;
  }
  return h;
}

uint64_t MixPredicate(uint64_t h, const Predicate& predicate) {
  h = MixU64(h, static_cast<uint64_t>(predicate.kind()));
  switch (predicate.kind()) {
    case Predicate::Kind::kCompare:
      h = MixU64(h, static_cast<uint64_t>(predicate.slot()));
      h = MixU64(h, static_cast<uint64_t>(predicate.op()));
      h = MixDouble(h, predicate.literal());
      break;
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      h = MixU64(h, static_cast<uint64_t>(predicate.children().size()));
      for (const Predicate& child : predicate.children()) {
        h = MixPredicate(h, child);
      }
      break;
  }
  return h;
}

uint64_t MixNode(uint64_t h, const PhysicalNode& node) {
  h = MixU64(h, static_cast<uint64_t>(node.type));
  h = MixString(h, node.table_name);
  h = MixU64(h, node.predicate.has_value() ? 1u : 0u);
  if (node.predicate.has_value()) h = MixPredicate(h, *node.predicate);
  h = MixU64(h, static_cast<uint64_t>(node.index_column));
  h = MixU64(h, node.range_lo.has_value() ? 1u : 0u);
  if (node.range_lo.has_value()) h = MixDouble(h, *node.range_lo);
  h = MixU64(h, node.range_hi.has_value() ? 1u : 0u);
  if (node.range_hi.has_value()) h = MixDouble(h, *node.range_hi);
  h = MixU64(h, static_cast<uint64_t>(node.left_key_slot));
  h = MixU64(h, static_cast<uint64_t>(node.right_key_slot));
  h = MixU64(h, static_cast<uint64_t>(node.group_by_slots.size()));
  for (size_t slot : node.group_by_slots) {
    h = MixU64(h, static_cast<uint64_t>(slot));
  }
  h = MixU64(h, static_cast<uint64_t>(node.aggregates.size()));
  for (const AggregateExpr& aggregate : node.aggregates) {
    h = MixU64(h, static_cast<uint64_t>(aggregate.func));
    h = MixU64(h, aggregate.input_slot.has_value() ? 1u : 0u);
    if (aggregate.input_slot.has_value()) {
      h = MixU64(h, static_cast<uint64_t>(*aggregate.input_slot));
    }
  }
  h = MixU64(h, static_cast<uint64_t>(node.sort_slots.size()));
  for (size_t slot : node.sort_slots) {
    h = MixU64(h, static_cast<uint64_t>(slot));
  }
  h = MixDouble(h, node.est_cardinality);
  h = MixDouble(h, node.est_cost);
  h = MixDouble(h, node.true_cardinality);
  h = MixU64(h, static_cast<uint64_t>(node.children.size()));
  for (const std::unique_ptr<PhysicalNode>& child : node.children) {
    h = MixNode(h, *child);
  }
  return h;
}

}  // namespace

uint64_t FingerprintPlan(const PhysicalNode& root) {
  return MixNode(kFnvOffset, root);
}

uint64_t FingerprintPlan(const PhysicalPlan& plan) {
  if (plan.root == nullptr) return kNullPlan;
  return FingerprintPlan(*plan.root);
}

uint64_t FingerprintCombine(uint64_t fingerprint, uint64_t value) {
  return MixU64(fingerprint, value);
}

uint64_t FingerprintString(std::string_view text) {
  return MixString(kFnvOffset, text);
}

}  // namespace zerodb::plan
