#ifndef ZERODB_PLAN_QUERY_H_
#define ZERODB_PLAN_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "plan/expr.h"
#include "storage/database.h"

namespace zerodb::plan {

/// Aggregate functions supported in the SELECT list.
enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc func);

/// An aggregate over a base-table column (or COUNT(*) with no column).
struct AggregateSpec {
  AggFunc func = AggFunc::kCount;
  std::string table;   // empty for COUNT(*)
  std::string column;  // empty for COUNT(*)
};

/// An equi-join condition between two base-table columns.
struct JoinSpec {
  std::string left_table;
  std::string left_column;
  std::string right_table;
  std::string right_column;
};

/// A conjunctive filter attached to one base table; predicate slots index
/// the base table's columns.
struct FilterSpec {
  std::string table;
  Predicate predicate = Predicate::Compare(0, CompareOp::kEq, 0);
};

/// A grouping column.
struct GroupBySpec {
  std::string table;
  std::string column;
};

/// The declarative representation of the SPJA queries the paper's workloads
/// use: select-project-join with per-table conjunctive predicates and up to
/// a few aggregates, optionally grouped. This is what the workload generator
/// emits and what the optimizer turns into a physical plan.
struct QuerySpec {
  std::vector<std::string> tables;
  std::vector<JoinSpec> joins;
  std::vector<FilterSpec> filters;
  std::vector<AggregateSpec> aggregates;
  std::vector<GroupBySpec> group_by;

  /// Renders as SQL-ish text for logs and examples.
  std::string ToSql(const storage::Database& db) const;

  /// Structural sanity checks against the database schema: tables exist,
  /// join/aggregate columns exist, joins connect the table set.
  Status Validate(const storage::Database& db) const;
};

}  // namespace zerodb::plan

#endif  // ZERODB_PLAN_QUERY_H_
