#include "datagen/distributions.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace zerodb::datagen {

ZipfDistribution::ZipfDistribution(int64_t n, double skew)
    : n_(n), skew_(skew) {
  ZDB_CHECK_GT(n, 0);
  ZDB_CHECK_GE(skew, 0.0);
  if (skew == 0.0) return;  // uniform fast path, no table
  cdf_.resize(static_cast<size_t>(n));
  double total = 0.0;
  for (int64_t rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), skew);
    cdf_[static_cast<size_t>(rank)] = total;
  }
  for (double& value : cdf_) value /= total;
}

int64_t ZipfDistribution::Draw(Rng* rng) const {
  if (cdf_.empty()) {
    return static_cast<int64_t>(rng->NextUint64(static_cast<uint64_t>(n_)));
  }
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<int64_t>(it - cdf_.begin());
}

const char* ColumnDistributionName(ColumnDistribution distribution) {
  switch (distribution) {
    case ColumnDistribution::kUniformInt:
      return "uniform_int";
    case ColumnDistribution::kZipfInt:
      return "zipf_int";
    case ColumnDistribution::kNormalDouble:
      return "normal_double";
    case ColumnDistribution::kUniformDouble:
      return "uniform_double";
    case ColumnDistribution::kCategorical:
      return "categorical";
    case ColumnDistribution::kCorrelated:
      return "correlated";
  }
  ZDB_CHECK(false);
  return "?";
}

}  // namespace zerodb::datagen
