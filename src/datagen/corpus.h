#ifndef ZERODB_DATAGEN_CORPUS_H_
#define ZERODB_DATAGEN_CORPUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "datagen/generator.h"
#include "stats/database_stats.h"
#include "storage/database.h"

namespace zerodb::datagen {

/// A database bundled with its ANALYZE statistics — what every consumer
/// (optimizer, featurizer, workload generator) needs together.
struct DatabaseEnv {
  std::unique_ptr<storage::Database> db;
  stats::DatabaseStats stats;

  /// Rebuilds statistics (after index creation nothing changes, but data
  /// mutation tests use this).
  void RefreshStats();
};

/// Builds a DatabaseEnv around an existing database.
DatabaseEnv MakeEnv(storage::Database db);

/// Creates the index set a freshly loaded database would have: a primary-key
/// index on every `id` column, plus (seeded) random secondary indexes on
/// other columns with probability `secondary_index_prob` each — the paper's
/// "random but fixed set of indexes per database" that teaches the zero-shot
/// model how index operators behave.
void AddDefaultIndexes(storage::Database* db, Rng* rng,
                       double secondary_index_prob);

/// Names of the 19 training databases — the public datasets the paper
/// trained on (per the authors' follow-up work); contents here are
/// synthetic, diversity comes from the generator configuration.
const std::vector<std::string>& TrainingDatabaseNames();

/// Generates the training corpus: one randomly-generated database per name,
/// each with its own seed and size band so the corpus spans small and large,
/// narrow and wide databases. `count` trims the corpus (for the
/// #training-databases ablation); `scale` multiplies row counts.
///
/// Databases generate in parallel on `pool` (pass nullptr to force serial).
/// Every per-database Rng is seeded up front from the corpus seed in the
/// serial draw order, so the corpus is bit-identical for any thread count.
std::vector<DatabaseEnv> MakeTrainingCorpus(uint64_t seed, size_t count = 19,
                                            double scale = 1.0,
                                            ThreadPool* pool =
                                                ThreadPool::Global());

/// The held-out IMDB-like evaluation database.
DatabaseEnv MakeImdbEnv(uint64_t seed, double scale = 1.0);

}  // namespace zerodb::datagen

#endif  // ZERODB_DATAGEN_CORPUS_H_
