#include "datagen/corpus.h"

#include "common/check.h"
#include "obs/trace_event.h"

namespace zerodb::datagen {

void DatabaseEnv::RefreshStats() {
  ZDB_CHECK(db != nullptr);
  stats = stats::DatabaseStats::Build(*db);
}

void AddDefaultIndexes(storage::Database* db, Rng* rng,
                       double secondary_index_prob) {
  ZDB_CHECK(db != nullptr);
  for (const storage::Table& table : db->tables()) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const catalog::ColumnSchema& column = table.schema().column(c);
      bool create = column.name == "id"
                        ? true  // primary key
                        : rng->Bernoulli(secondary_index_prob);
      if (create) {
        // AlreadyExists cannot happen on a fresh database; ignore anyway.
        (void)db->CreateIndex(table.name(), column.name);
      }
    }
  }
}

DatabaseEnv MakeEnv(storage::Database db) {
  DatabaseEnv env;
  env.db = std::make_unique<storage::Database>(std::move(db));
  env.RefreshStats();
  return env;
}

const std::vector<std::string>& TrainingDatabaseNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>{
      "airline",     "ssb",        "tpc_h",     "walmart",  "financial",
      "basketball",  "accidents",  "movielens", "baseball", "hepatitis",
      "tournament",  "credit",     "employee",  "consumer", "geneea",
      "genome",      "carcinogenesis", "seznam", "fhnk"};
  return names;
}

std::vector<DatabaseEnv> MakeTrainingCorpus(uint64_t seed, size_t count,
                                            double scale, ThreadPool* pool) {
  const auto& names = TrainingDatabaseNames();
  ZDB_CHECK_LE(count, names.size());
  // Draw every per-database seed up front, in the serial loop's draw order
  // (db seed, then index seed, per database). Each database then generates
  // from only its own pre-drawn seeds, so the corpus is bit-identical no
  // matter how the per-database tasks interleave.
  Rng rng(seed);
  struct DbSeeds {
    uint64_t db_seed = 0;
    uint64_t index_seed = 0;
  };
  std::vector<DbSeeds> seeds(count);
  for (size_t i = 0; i < count; ++i) {
    seeds[i].db_seed = rng.NextUint64();
    seeds[i].index_seed = rng.NextUint64();
  }
  std::vector<DatabaseEnv> corpus(count);
  ParallelFor(pool, 0, count, /*grain=*/1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      obs::TimelineScope db_scope("corpus.db", "datagen");
      db_scope.AddArg("db", static_cast<double>(i));
      GeneratorConfig config;
      config.scale = scale;
      // Vary the size band per database so the corpus covers small OLTP-ish
      // and larger analytics-ish databases.
      switch (i % 4) {
        case 0:  // small
          config.min_rows = 500;
          config.max_rows = 8000;
          config.min_tables = 2;
          config.max_tables = 5;
          break;
        case 1:  // medium
          config.min_rows = 2000;
          config.max_rows = 25000;
          break;
        case 2:  // large
          config.min_rows = 8000;
          config.max_rows = 60000;
          config.min_tables = 3;
          config.max_tables = 6;
          break;
        case 3:  // wide (more columns)
          config.min_attr_columns = 4;
          config.max_attr_columns = 8;
          break;
      }
      storage::Database db =
          GenerateRandomDatabase(names[i], seeds[i].db_seed, config);
      Rng index_rng(seeds[i].index_seed);
      AddDefaultIndexes(&db, &index_rng, /*secondary_index_prob=*/0.35);
      corpus[i] = MakeEnv(std::move(db));
    }
  });
  return corpus;
}

DatabaseEnv MakeImdbEnv(uint64_t seed, double scale) {
  storage::Database db = MakeImdbDatabase(seed, scale);
  // Like a freshly restored production database: primary-key indexes only.
  // (Benches evaluating the What-If mode add attribute indexes themselves.)
  Rng index_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  AddDefaultIndexes(&db, &index_rng, /*secondary_index_prob=*/0.0);
  return MakeEnv(std::move(db));
}

}  // namespace zerodb::datagen
