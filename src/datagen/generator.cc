#include "datagen/generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/string_util.h"
#include "datagen/distributions.h"

namespace zerodb::datagen {

namespace {

using catalog::ColumnSchema;
using catalog::DataType;
using catalog::ForeignKey;
using catalog::TableSchema;
using storage::Column;
using storage::Database;
using storage::Table;

constexpr const char* kTableNamePool[] = {
    "customers", "orders",   "items",   "events",  "products",
    "reviews",   "sessions", "visits",  "accounts", "payments",
    "shipments", "stores",   "regions", "devices",  "logs"};

constexpr const char* kColumnNamePool[] = {
    "age",    "price",  "year",  "score",  "amount", "status", "kind",
    "size",   "weight", "length", "rating", "level",  "count",  "code"};

int64_t LogUniformInt(Rng* rng, int64_t lo, int64_t hi) {
  ZDB_CHECK_LE(lo, hi);
  double log_lo = std::log(static_cast<double>(std::max<int64_t>(lo, 1)));
  double log_hi = std::log(static_cast<double>(std::max<int64_t>(hi, 1)));
  double draw = std::exp(rng->UniformDouble(log_lo, log_hi));
  return std::clamp(static_cast<int64_t>(draw), lo, hi);
}

// Descriptor of one attribute column to generate.
struct AttrPlan {
  ColumnSchema schema;
  ColumnDistribution distribution = ColumnDistribution::kUniformInt;
  int64_t int_base = 0;       // offset for integer domains
  int64_t domain = 100;       // distinct values for int/categorical
  double zipf_skew = 0.0;
  double mean = 0.0;          // gaussian
  double stddev = 1.0;
  size_t corr_source = 0;     // index into previously planned attrs
  double corr_slope = 1.0;
  double corr_intercept = 0.0;
  double corr_noise = 1.0;
};

AttrPlan PlanAttribute(Rng* rng, const std::string& column_name,
                       size_t num_prior_numeric_attrs,
                       const GeneratorConfig& config) {
  AttrPlan plan;
  plan.schema.name = column_name;
  std::vector<double> weights = {2.5, 2.0, 1.5, 1.0, 2.0,
                                 num_prior_numeric_attrs > 0
                                     ? 6.0 * config.correlated_column_prob
                                     : 0.0};
  switch (rng->Categorical(weights)) {
    case 0:
      plan.distribution = ColumnDistribution::kUniformInt;
      break;
    case 1:
      plan.distribution = ColumnDistribution::kZipfInt;
      break;
    case 2:
      plan.distribution = ColumnDistribution::kNormalDouble;
      break;
    case 3:
      plan.distribution = ColumnDistribution::kUniformDouble;
      break;
    case 4:
      plan.distribution = ColumnDistribution::kCategorical;
      break;
    case 5:
      plan.distribution = ColumnDistribution::kCorrelated;
      break;
  }
  switch (plan.distribution) {
    case ColumnDistribution::kUniformInt:
    case ColumnDistribution::kZipfInt:
      plan.schema.type = DataType::kInt64;
      plan.schema.avg_width_bytes = 8;
      plan.int_base = rng->UniformInt(0, 2000);
      plan.domain = LogUniformInt(rng, 10, 100000);
      plan.zipf_skew = plan.distribution == ColumnDistribution::kZipfInt
                           ? rng->UniformDouble(0.4, 1.4)
                           : 0.0;
      break;
    case ColumnDistribution::kNormalDouble:
    case ColumnDistribution::kUniformDouble:
      plan.schema.type = DataType::kDouble;
      plan.schema.avg_width_bytes = 8;
      plan.mean = rng->UniformDouble(-100, 100);
      plan.stddev = std::exp(rng->UniformDouble(0.0, 4.0));
      break;
    case ColumnDistribution::kCategorical:
      plan.schema.type = DataType::kString;
      plan.domain = LogUniformInt(rng, 2, 200);
      plan.schema.avg_width_bytes = rng->UniformInt(4, 24);
      plan.zipf_skew = rng->UniformDouble(0.0, 1.2);
      break;
    case ColumnDistribution::kCorrelated:
      plan.schema.type = DataType::kDouble;
      plan.schema.avg_width_bytes = 8;
      plan.corr_source = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(num_prior_numeric_attrs) - 1));
      plan.corr_slope = rng->UniformDouble(-3.0, 3.0);
      plan.corr_intercept = rng->UniformDouble(-50.0, 50.0);
      plan.corr_noise = std::exp(rng->UniformDouble(-1.0, 2.0));
      break;
  }
  return plan;
}

}  // namespace

Database GenerateRandomDatabase(const std::string& name, uint64_t seed,
                                const GeneratorConfig& config) {
  Rng rng(seed);
  Database db(name);

  const size_t num_tables = static_cast<size_t>(rng.UniformInt(
      static_cast<int64_t>(config.min_tables),
      static_cast<int64_t>(config.max_tables)));

  // Pick distinct table names.
  std::vector<std::string> table_names;
  {
    const size_t pool_size = std::size(kTableNamePool);
    auto picks = rng.SampleWithoutReplacement(pool_size, std::min(num_tables, pool_size));
    for (size_t i = 0; i < num_tables; ++i) {
      if (i < picks.size()) {
        table_names.push_back(kTableNamePool[picks[i]]);
      } else {
        table_names.push_back(StrFormat("extra_%zu", i));
      }
    }
  }

  std::vector<int64_t> table_rows(num_tables);
  for (size_t t = 0; t < num_tables; ++t) {
    int64_t rows = LogUniformInt(&rng, config.min_rows, config.max_rows);
    rows = std::max<int64_t>(
        10, static_cast<int64_t>(static_cast<double>(rows) * config.scale));
    table_rows[t] = rows;
  }

  struct FkPlan {
    std::string column_name;
    size_t parent = 0;
    double skew = 0.0;
  };

  for (size_t t = 0; t < num_tables; ++t) {
    const int64_t rows = table_rows[t];
    std::vector<ColumnSchema> columns;
    columns.push_back(ColumnSchema{"id", DataType::kInt64, 8});

    // Foreign keys to earlier tables (1-2, when available).
    std::vector<FkPlan> fks;
    if (t > 0) {
      size_t num_fks = 1 + (t > 1 && rng.Bernoulli(0.35) ? 1 : 0);
      auto parents = rng.SampleWithoutReplacement(t, std::min(num_fks, t));
      for (size_t parent : parents) {
        FkPlan fk;
        fk.column_name = table_names[parent] + "_id";
        fk.parent = parent;
        fk.skew = rng.Bernoulli(0.5)
                      ? rng.UniformDouble(0.3, config.max_fk_skew)
                      : 0.0;
        fks.push_back(fk);
        columns.push_back(ColumnSchema{fk.column_name, DataType::kInt64, 8});
      }
    }

    // Attribute columns.
    const size_t num_attrs = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(config.min_attr_columns),
        static_cast<int64_t>(config.max_attr_columns)));
    std::vector<AttrPlan> attrs;
    std::vector<size_t> numeric_attr_indexes;  // indexes into attrs
    const size_t name_pool = std::size(kColumnNamePool);
    auto name_picks = rng.SampleWithoutReplacement(
        name_pool, std::min(num_attrs, name_pool));
    for (size_t a = 0; a < num_attrs; ++a) {
      std::string column_name = a < name_picks.size()
                                    ? kColumnNamePool[name_picks[a]]
                                    : StrFormat("attr_%zu", a);
      AttrPlan plan = PlanAttribute(&rng, column_name,
                                    numeric_attr_indexes.size(), config);
      if (plan.distribution == ColumnDistribution::kCorrelated) {
        plan.corr_source = numeric_attr_indexes[plan.corr_source];
      }
      if (plan.schema.type != DataType::kString) {
        numeric_attr_indexes.push_back(attrs.size());
      }
      attrs.push_back(std::move(plan));
      columns.push_back(attrs.back().schema);
    }

    Table table(TableSchema(table_names[t], columns));

    // --- Generate data, column by column. ---
    size_t column_index = 0;
    // id: sequential primary key.
    {
      Column& id = table.column(column_index++);
      id.Reserve(static_cast<size_t>(rows));
      for (int64_t row = 0; row < rows; ++row) id.AppendInt64(row);
    }
    // Foreign keys.
    for (const FkPlan& fk : fks) {
      ZipfDistribution dist(table_rows[fk.parent], fk.skew);
      Column& column = table.column(column_index++);
      column.Reserve(static_cast<size_t>(rows));
      for (int64_t row = 0; row < rows; ++row) {
        column.AppendInt64(dist.Draw(&rng));
      }
    }
    // Attributes. Generated values cached so correlated columns can read
    // their source.
    std::vector<std::vector<double>> attr_values(attrs.size());
    for (size_t a = 0; a < attrs.size(); ++a) {
      const AttrPlan& plan = attrs[a];
      Column& column = table.column(column_index++);
      column.Reserve(static_cast<size_t>(rows));
      attr_values[a].reserve(static_cast<size_t>(rows));
      switch (plan.distribution) {
        case ColumnDistribution::kUniformInt:
        case ColumnDistribution::kZipfInt: {
          ZipfDistribution dist(plan.domain, plan.zipf_skew);
          for (int64_t row = 0; row < rows; ++row) {
            int64_t v = plan.int_base + dist.Draw(&rng);
            column.AppendInt64(v);
            attr_values[a].push_back(static_cast<double>(v));
          }
          break;
        }
        case ColumnDistribution::kNormalDouble:
          for (int64_t row = 0; row < rows; ++row) {
            double v = rng.Normal(plan.mean, plan.stddev);
            column.AppendDouble(v);
            attr_values[a].push_back(v);
          }
          break;
        case ColumnDistribution::kUniformDouble:
          for (int64_t row = 0; row < rows; ++row) {
            double v = rng.UniformDouble(plan.mean - 2 * plan.stddev,
                                         plan.mean + 2 * plan.stddev);
            column.AppendDouble(v);
            attr_values[a].push_back(v);
          }
          break;
        case ColumnDistribution::kCategorical: {
          std::vector<std::string> dictionary;
          dictionary.reserve(static_cast<size_t>(plan.domain));
          for (int64_t v = 0; v < plan.domain; ++v) {
            dictionary.push_back(
                StrFormat("%s_%s_%lld", table_names[t].c_str(),
                          plan.schema.name.c_str(),
                          static_cast<long long>(v)));
          }
          column.SetDictionary(std::move(dictionary));
          ZipfDistribution dist(plan.domain, plan.zipf_skew);
          for (int64_t row = 0; row < rows; ++row) {
            int64_t code = dist.Draw(&rng);
            column.AppendStringCode(code);
            attr_values[a].push_back(static_cast<double>(code));
          }
          break;
        }
        case ColumnDistribution::kCorrelated: {
          const std::vector<double>& source = attr_values[plan.corr_source];
          for (int64_t row = 0; row < rows; ++row) {
            double v = plan.corr_slope * source[static_cast<size_t>(row)] +
                       plan.corr_intercept +
                       rng.Normal(0.0, plan.corr_noise);
            column.AppendDouble(v);
            attr_values[a].push_back(v);
          }
          break;
        }
      }
    }

    ZDB_CHECK(db.AddTable(std::move(table)).ok());
    for (const FkPlan& fk : fks) {
      ZDB_CHECK(db.mutable_catalog()
                    .AddForeignKey(ForeignKey{table_names[t], fk.column_name,
                                              table_names[fk.parent], "id"})
                    .ok());
    }
  }

  return db;
}

namespace {

// Adds a satellite table referencing title.id with the given columns
// already generated.
struct ImdbColumnSpec {
  ColumnSchema schema;
  ColumnDistribution distribution;
  int64_t domain = 10;
  double skew = 0.0;
  double mean = 0.0;
  double stddev = 1.0;
};

void GenerateImdbTable(Database* db, Rng* rng, const std::string& name,
                       int64_t rows, int64_t title_rows, double fk_skew,
                       const std::vector<ImdbColumnSpec>& specs) {
  std::vector<ColumnSchema> columns;
  columns.push_back(ColumnSchema{"id", DataType::kInt64, 8});
  const bool has_fk = title_rows > 0;
  if (has_fk) {
    columns.push_back(ColumnSchema{"movie_id", DataType::kInt64, 8});
  }
  for (const ImdbColumnSpec& spec : specs) columns.push_back(spec.schema);

  Table table(TableSchema(name, columns));
  size_t column_index = 0;
  {
    Column& id = table.column(column_index++);
    id.Reserve(static_cast<size_t>(rows));
    for (int64_t row = 0; row < rows; ++row) id.AppendInt64(row);
  }
  if (has_fk) {
    ZipfDistribution dist(title_rows, fk_skew);
    Column& fk = table.column(column_index++);
    fk.Reserve(static_cast<size_t>(rows));
    for (int64_t row = 0; row < rows; ++row) fk.AppendInt64(dist.Draw(rng));
  }
  for (const ImdbColumnSpec& spec : specs) {
    Column& column = table.column(column_index++);
    column.Reserve(static_cast<size_t>(rows));
    switch (spec.distribution) {
      case ColumnDistribution::kUniformInt:
      case ColumnDistribution::kZipfInt: {
        ZipfDistribution dist(spec.domain, spec.skew);
        for (int64_t row = 0; row < rows; ++row) {
          column.AppendInt64(static_cast<int64_t>(spec.mean) + dist.Draw(rng));
        }
        break;
      }
      case ColumnDistribution::kNormalDouble:
        for (int64_t row = 0; row < rows; ++row) {
          column.AppendDouble(rng->Normal(spec.mean, spec.stddev));
        }
        break;
      case ColumnDistribution::kUniformDouble:
        for (int64_t row = 0; row < rows; ++row) {
          column.AppendDouble(rng->UniformDouble(spec.mean - 2 * spec.stddev,
                                                 spec.mean + 2 * spec.stddev));
        }
        break;
      case ColumnDistribution::kCategorical: {
        std::vector<std::string> dictionary;
        for (int64_t v = 0; v < spec.domain; ++v) {
          dictionary.push_back(StrFormat("%s_%s_%lld", name.c_str(),
                                         spec.schema.name.c_str(),
                                         static_cast<long long>(v)));
        }
        column.SetDictionary(std::move(dictionary));
        ZipfDistribution dist(spec.domain, spec.skew);
        for (int64_t row = 0; row < rows; ++row) {
          column.AppendStringCode(dist.Draw(rng));
        }
        break;
      }
      case ColumnDistribution::kCorrelated:
        ZDB_CHECK(false) << "not used for imdb tables";
        break;
    }
  }
  ZDB_CHECK(db->AddTable(std::move(table)).ok());
  if (has_fk) {
    ZDB_CHECK(db->mutable_catalog()
                  .AddForeignKey(ForeignKey{name, "movie_id", "title", "id"})
                  .ok());
  }
}

}  // namespace

Database MakeImdbDatabase(uint64_t seed, double scale) {
  Rng rng(seed);
  Database db("imdb");
  const int64_t title_rows = std::max<int64_t>(100, static_cast<int64_t>(20000 * scale));

  // title is generated without a foreign key (it is the hub).
  GenerateImdbTable(
      &db, &rng, "title", title_rows, /*title_rows=*/0, 0.0,
      {
          {ColumnSchema{"kind_id", DataType::kString, 10},
           ColumnDistribution::kCategorical, 7, 0.9},
          {ColumnSchema{"production_year", DataType::kInt64, 8},
           ColumnDistribution::kZipfInt, 133, 0.8, 1890.0},
          {ColumnSchema{"imdb_index", DataType::kString, 6},
           ColumnDistribution::kCategorical, 30, 1.1},
          {ColumnSchema{"votes", DataType::kInt64, 8},
           ColumnDistribution::kZipfInt, 50000, 1.1},
          {ColumnSchema{"rating", DataType::kDouble, 8},
           ColumnDistribution::kNormalDouble, 0, 0.0, 6.2, 1.3},
      });
  GenerateImdbTable(
      &db, &rng, "cast_info",
      static_cast<int64_t>(3.0 * static_cast<double>(title_rows)), title_rows,
      0.6,
      {
          {ColumnSchema{"person_id", DataType::kInt64, 8},
           ColumnDistribution::kZipfInt, 100000, 0.8},
          {ColumnSchema{"role_id", DataType::kString, 9},
           ColumnDistribution::kCategorical, 11, 0.9},
          {ColumnSchema{"nr_order", DataType::kInt64, 8},
           ColumnDistribution::kZipfInt, 200, 1.0},
      });
  GenerateImdbTable(
      &db, &rng, "movie_info",
      static_cast<int64_t>(2.5 * static_cast<double>(title_rows)), title_rows,
      0.55,
      {
          {ColumnSchema{"info_type_id", DataType::kString, 12},
           ColumnDistribution::kCategorical, 110, 0.8},
          {ColumnSchema{"length", DataType::kInt64, 8},
           ColumnDistribution::kZipfInt, 300, 0.6},
      });
  GenerateImdbTable(
      &db, &rng, "movie_info_idx",
      static_cast<int64_t>(1.5 * static_cast<double>(title_rows)), title_rows,
      0.5,
      {
          {ColumnSchema{"info_type_id", DataType::kString, 12},
           ColumnDistribution::kCategorical, 110, 0.9},
          {ColumnSchema{"info_votes", DataType::kInt64, 8},
           ColumnDistribution::kZipfInt, 30000, 1.1},
      });
  GenerateImdbTable(
      &db, &rng, "movie_companies",
      static_cast<int64_t>(1.8 * static_cast<double>(title_rows)), title_rows,
      0.55,
      {
          {ColumnSchema{"company_id", DataType::kInt64, 8},
           ColumnDistribution::kZipfInt, 20000, 1.0},
          {ColumnSchema{"company_type_id", DataType::kString, 8},
           ColumnDistribution::kCategorical, 4, 0.5},
      });
  GenerateImdbTable(
      &db, &rng, "movie_keyword",
      static_cast<int64_t>(2.2 * static_cast<double>(title_rows)), title_rows,
      0.65,
      {
          {ColumnSchema{"keyword_id", DataType::kInt64, 8},
           ColumnDistribution::kZipfInt, 40000, 0.9},
      });

  return db;
}

}  // namespace zerodb::datagen
