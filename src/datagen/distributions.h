#ifndef ZERODB_DATAGEN_DISTRIBUTIONS_H_
#define ZERODB_DATAGEN_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace zerodb::datagen {

/// Zipf distribution over ranks [0, n) with skew s >= 0 (s = 0 is uniform).
/// Precomputes the CDF once (O(n)) and draws by binary search (O(log n)).
class ZipfDistribution {
 public:
  ZipfDistribution(int64_t n, double skew);

  int64_t Draw(Rng* rng) const;
  int64_t domain() const { return n_; }
  double skew() const { return skew_; }

 private:
  int64_t n_;
  double skew_;
  std::vector<double> cdf_;  // empty when skew == 0 (uniform fast path)
};

/// Shapes for generated attribute columns. The mix across training
/// databases is what gives the zero-shot model distributional diversity.
enum class ColumnDistribution {
  kUniformInt,     ///< uniform integers over a domain
  kZipfInt,        ///< zipf-skewed integers over a domain
  kNormalDouble,   ///< gaussian doubles
  kUniformDouble,  ///< uniform doubles
  kCategorical,    ///< dictionary strings, zipf-skewed codes
  kCorrelated,     ///< linear function of another column + noise
};

const char* ColumnDistributionName(ColumnDistribution distribution);

}  // namespace zerodb::datagen

#endif  // ZERODB_DATAGEN_DISTRIBUTIONS_H_
