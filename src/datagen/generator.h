#ifndef ZERODB_DATAGEN_GENERATOR_H_
#define ZERODB_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "storage/database.h"

namespace zerodb::datagen {

/// Knobs for the random database generator. Defaults produce databases in
/// the size band the experiments use; `scale` multiplies all row counts so
/// benches can shrink or grow the corpus uniformly.
struct GeneratorConfig {
  size_t min_tables = 3;
  size_t max_tables = 7;
  int64_t min_rows = 1000;
  int64_t max_rows = 40000;   ///< per-table rows drawn log-uniform in range
  size_t min_attr_columns = 2;
  size_t max_attr_columns = 5;
  double max_fk_skew = 1.2;   ///< zipf skew of foreign-key references
  double correlated_column_prob = 0.25;
  double scale = 1.0;
};

/// Generates a complete random database: a random star/snowflake-ish schema
/// (every non-root table has 1-2 foreign keys to earlier tables), random
/// column types and distributions (uniform/zipf ints, gaussian doubles,
/// zipf-skewed categoricals, correlated pairs), and the data itself.
/// Deterministic in (name, seed, config).
storage::Database GenerateRandomDatabase(const std::string& name,
                                         uint64_t seed,
                                         const GeneratorConfig& config);

/// Builds the IMDB-like evaluation database: the six JOB-light tables
/// (title, cast_info, movie_info, movie_info_idx, movie_companies,
/// movie_keyword) with skewed foreign keys into title. `scale` multiplies
/// row counts (1.0 => title has 20k rows, satellites 1.5-3x that).
storage::Database MakeImdbDatabase(uint64_t seed, double scale = 1.0);

}  // namespace zerodb::datagen

#endif  // ZERODB_DATAGEN_GENERATOR_H_
