#ifndef ZERODB_STORAGE_DATABASE_H_
#define ZERODB_STORAGE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "storage/index.h"
#include "storage/table.h"

namespace zerodb::storage {

/// A complete in-memory database: catalog, table data, and secondary
/// indexes. Move-only (tables can be large).
class Database {
 public:
  Database() = default;
  explicit Database(std::string name) : name_(std::move(name)) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  const std::string& name() const { return name_; }
  const catalog::Catalog& catalog() const { return catalog_; }
  catalog::Catalog& mutable_catalog() { return catalog_; }

  /// Adds a table (schema goes into the catalog as well).
  Status AddTable(Table table);

  const std::vector<Table>& tables() const { return tables_; }
  const Table* FindTable(const std::string& name) const;
  StatusOr<const Table*> GetTable(const std::string& name) const;

  /// Creates a secondary index on table.column; fails if one already exists
  /// or the endpoints are missing.
  Status CreateIndex(const std::string& table_name,
                     const std::string& column_name);

  /// The index on table.column if present, else nullptr.
  const OrderedIndex* FindIndex(const std::string& table_name,
                                size_t column_index) const;

  const std::vector<OrderedIndex>& indexes() const { return indexes_; }

  /// Drops all secondary indexes (used between what-if experiments).
  void DropAllIndexes() { indexes_.clear(); }

  /// Total rows across tables (size reporting).
  int64_t TotalRows() const;

 private:
  std::string name_;
  catalog::Catalog catalog_;
  std::vector<Table> tables_;
  std::vector<OrderedIndex> indexes_;
};

}  // namespace zerodb::storage

#endif  // ZERODB_STORAGE_DATABASE_H_
