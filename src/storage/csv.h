#ifndef ZERODB_STORAGE_CSV_H_
#define ZERODB_STORAGE_CSV_H_

#include <string>

#include "catalog/schema.h"
#include "common/status.h"
#include "storage/database.h"
#include "storage/table.h"

namespace zerodb::storage {

/// Loads a CSV file (header row with column names, comma-separated, no
/// quoting/escaping — this is a research engine) into a Table with the
/// given schema. The header must match the schema's column names in order.
/// Numeric cells are parsed per the column type; string columns are
/// dictionary-encoded on the fly.
StatusOr<Table> LoadCsv(const std::string& path,
                        const catalog::TableSchema& schema);

/// Parses CSV content from a string (testing and embedding).
StatusOr<Table> LoadCsvFromString(const std::string& content,
                                  const catalog::TableSchema& schema);

/// Writes a table as CSV (header + rows) to the given path.
Status SaveCsv(const Table& table, const std::string& path);

}  // namespace zerodb::storage

#endif  // ZERODB_STORAGE_CSV_H_
