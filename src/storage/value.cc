#include "storage/value.h"

#include "common/string_util.h"

namespace zerodb::storage {

std::string Value::ToString() const {
  if (is_int64()) return std::to_string(AsInt64());
  if (is_double()) return StrFormat("%g", AsDouble());
  return "'" + AsString() + "'";
}

}  // namespace zerodb::storage
