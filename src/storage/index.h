#ifndef ZERODB_STORAGE_INDEX_H_
#define ZERODB_STORAGE_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"

namespace zerodb::storage {

/// A secondary ordered index over one numeric (or dictionary-code) column:
/// (key, row_id) pairs sorted by key, range lookups by binary search —
/// operationally a B+-tree leaf chain, which is what matters for cost
/// behaviour (log height probe + sequential leaf scan).
class OrderedIndex {
 public:
  OrderedIndex() = default;

  /// Builds the index over table.column(column_index).
  static OrderedIndex Build(const std::string& table_name,
                            const Table& table, size_t column_index);

  const std::string& table_name() const { return table_name_; }
  size_t column_index() const { return column_index_; }
  size_t num_entries() const { return keys_.size(); }

  /// Estimated B-tree height for the entry count (fanout 256).
  int64_t EstimatedHeight() const;

  /// Row ids with key in [lo, hi] (inclusive), appended to `out`.
  /// Returns the number of index entries touched (== matches).
  size_t LookupRange(double lo, double hi, std::vector<uint32_t>* out) const;

  /// Row ids with key == key.
  size_t LookupEqual(double key, std::vector<uint32_t>* out) const {
    return LookupRange(key, key, out);
  }

 private:
  std::string table_name_;
  size_t column_index_ = 0;
  std::vector<double> keys_;      // sorted
  std::vector<uint32_t> row_ids_;  // aligned with keys_
};

}  // namespace zerodb::storage

#endif  // ZERODB_STORAGE_INDEX_H_
