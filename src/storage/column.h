#ifndef ZERODB_STORAGE_COLUMN_H_
#define ZERODB_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/types.h"
#include "common/status.h"
#include "storage/value.h"

namespace zerodb::storage {

/// A typed column vector. Int64 and dictionary-encoded string columns share
/// the int64 buffer (string columns store dictionary codes); double columns
/// use the double buffer. Columnar layout keeps the executor's scans,
/// filters and hash joins cache-friendly.
class Column {
 public:
  Column() = default;
  explicit Column(catalog::DataType type);

  catalog::DataType type() const { return type_; }
  size_t size() const;

  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  /// Appends a string, interning it in the dictionary. O(dictionary) per
  /// call; bulk loaders should SetDictionary + AppendStringCode instead.
  void AppendString(const std::string& v);

  /// Installs the full dictionary up front (bulk-load path).
  void SetDictionary(std::vector<std::string> dictionary);

  /// Appends a pre-encoded dictionary code; requires SetDictionary first.
  void AppendStringCode(int64_t code);

  /// Raw buffers for the executor's tight loops.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }

  /// Value at row (strings decoded through the dictionary).
  Value GetValue(size_t row) const;

  /// Numeric view of a row: int64 / dictionary code / double as double.
  double GetNumeric(size_t row) const;

  /// Dictionary code for the given string; error if not present. Used to
  /// translate string literals in predicates into comparable codes.
  StatusOr<int64_t> LookupCode(const std::string& v) const;

  /// Dictionary string for a code (inverse of LookupCode).
  StatusOr<std::string> DictionaryEntry(int64_t code) const;

  /// Number of distinct dictionary entries (string columns only).
  size_t dictionary_size() const { return dictionary_.size(); }

  /// Average payload width in bytes (strings: mean string length).
  int64_t AvgWidthBytes() const;

  void Reserve(size_t rows);

 private:
  catalog::DataType type_ = catalog::DataType::kInt64;
  std::vector<int64_t> ints_;      // int64 data or string dictionary codes
  std::vector<double> doubles_;    // double data
  std::vector<std::string> dictionary_;  // code -> string
};

}  // namespace zerodb::storage

#endif  // ZERODB_STORAGE_COLUMN_H_
