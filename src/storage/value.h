#ifndef ZERODB_STORAGE_VALUE_H_
#define ZERODB_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "catalog/types.h"
#include "common/check.h"

namespace zerodb::storage {

/// A single scalar value. Strings appear only at API boundaries (loading
/// data, printing); inside the engine string columns are dictionary codes
/// and predicates compare codes.
class Value {
 public:
  Value() : repr_(int64_t{0}) {}
  explicit Value(int64_t v) : repr_(v) {}
  explicit Value(double v) : repr_(v) {}
  explicit Value(std::string v) : repr_(std::move(v)) {}

  bool is_int64() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }

  int64_t AsInt64() const {
    ZDB_CHECK(is_int64());
    return std::get<int64_t>(repr_);
  }
  double AsDouble() const {
    ZDB_CHECK(is_double());
    return std::get<double>(repr_);
  }
  const std::string& AsString() const {
    ZDB_CHECK(is_string());
    return std::get<std::string>(repr_);
  }

  /// Numeric view: int64 widened to double; strings not allowed.
  double AsNumeric() const {
    if (is_int64()) return static_cast<double>(AsInt64());
    return AsDouble();
  }

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.repr_ == b.repr_;
  }

 private:
  std::variant<int64_t, double, std::string> repr_;
};

}  // namespace zerodb::storage

#endif  // ZERODB_STORAGE_VALUE_H_
