#include "storage/database.h"

namespace zerodb::storage {

Status Database::AddTable(Table table) {
  ZDB_RETURN_NOT_OK(table.Validate());
  ZDB_RETURN_NOT_OK(catalog_.AddTable(table.schema()));
  tables_.push_back(std::move(table));
  return Status::OK();
}

const Table* Database::FindTable(const std::string& name) const {
  for (const Table& table : tables_) {
    if (table.name() == name) return &table;
  }
  return nullptr;
}

StatusOr<const Table*> Database::GetTable(const std::string& name) const {
  const Table* table = FindTable(name);
  if (table == nullptr) return Status::NotFound("table: " + name);
  return table;
}

Status Database::CreateIndex(const std::string& table_name,
                             const std::string& column_name) {
  const Table* table = FindTable(table_name);
  if (table == nullptr) return Status::NotFound("table: " + table_name);
  ZDB_ASSIGN_OR_RETURN(size_t column_index, table->ColumnIndex(column_name));
  if (FindIndex(table_name, column_index) != nullptr) {
    return Status::AlreadyExists("index on " + table_name + "." + column_name);
  }
  indexes_.push_back(OrderedIndex::Build(table_name, *table, column_index));
  return Status::OK();
}

const OrderedIndex* Database::FindIndex(const std::string& table_name,
                                        size_t column_index) const {
  for (const OrderedIndex& index : indexes_) {
    if (index.table_name() == table_name &&
        index.column_index() == column_index) {
      return &index;
    }
  }
  return nullptr;
}

int64_t Database::TotalRows() const {
  int64_t total = 0;
  for (const Table& table : tables_) {
    total += static_cast<int64_t>(table.num_rows());
  }
  return total;
}

}  // namespace zerodb::storage
