#ifndef ZERODB_STORAGE_TABLE_H_
#define ZERODB_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "storage/column.h"

namespace zerodb::storage {

/// An in-memory columnar table: a schema plus one Column per schema column.
class Table {
 public:
  Table() = default;
  explicit Table(catalog::TableSchema schema);

  const catalog::TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }
  size_t num_rows() const;
  size_t num_columns() const { return columns_.size(); }

  Column& column(size_t index);
  const Column& column(size_t index) const;

  /// Column by name; error status if absent.
  StatusOr<size_t> ColumnIndex(const std::string& name) const;

  /// Number of 8 KiB pages the table would occupy: a scan-cost feature the
  /// zero-shot model consumes (ceil(rows * row_width / page_size), min 1).
  int64_t NumPages() const;

  /// Average tuple width in bytes from the live column data.
  int64_t RowWidthBytes() const;

  /// Verifies all columns have equal length.
  Status Validate() const;

 private:
  catalog::TableSchema schema_;
  std::vector<Column> columns_;
};

}  // namespace zerodb::storage

#endif  // ZERODB_STORAGE_TABLE_H_
