#include "storage/table.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_util.h"

namespace zerodb::storage {

Table::Table(catalog::TableSchema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (const catalog::ColumnSchema& column : schema_.columns()) {
    columns_.emplace_back(column.type);
  }
}

size_t Table::num_rows() const {
  return columns_.empty() ? 0 : columns_[0].size();
}

Column& Table::column(size_t index) {
  ZDB_CHECK_LT(index, columns_.size());
  return columns_[index];
}

const Column& Table::column(size_t index) const {
  ZDB_CHECK_LT(index, columns_.size());
  return columns_[index];
}

StatusOr<size_t> Table::ColumnIndex(const std::string& name) const {
  auto index = schema_.FindColumn(name);
  if (!index.has_value()) {
    return Status::NotFound("column " + name + " in table " + schema_.name());
  }
  return *index;
}

int64_t Table::NumPages() const {
  int64_t bytes = static_cast<int64_t>(num_rows()) * RowWidthBytes();
  return std::max<int64_t>(1, CeilDiv(bytes, catalog::kPageSizeBytes));
}

int64_t Table::RowWidthBytes() const {
  int64_t width = 0;
  for (const Column& column : columns_) width += column.AvgWidthBytes();
  return std::max<int64_t>(width, 1);
}

Status Table::Validate() const {
  for (const Column& column : columns_) {
    if (column.size() != num_rows()) {
      return Status::Internal("ragged columns in table " + schema_.name());
    }
  }
  return Status::OK();
}

}  // namespace zerodb::storage
