#include "storage/index.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace zerodb::storage {

OrderedIndex OrderedIndex::Build(const std::string& table_name,
                                 const Table& table, size_t column_index) {
  ZDB_CHECK_LT(column_index, table.num_columns());
  const Column& column = table.column(column_index);
  const size_t n = column.size();

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&column](uint32_t a, uint32_t b) {
    return column.GetNumeric(a) < column.GetNumeric(b);
  });

  OrderedIndex index;
  index.table_name_ = table_name;
  index.column_index_ = column_index;
  index.keys_.reserve(n);
  index.row_ids_.reserve(n);
  for (uint32_t row : order) {
    index.keys_.push_back(column.GetNumeric(row));
    index.row_ids_.push_back(row);
  }
  return index;
}

int64_t OrderedIndex::EstimatedHeight() const {
  // ceil(log_fanout(entries)) with fanout 256, minimum height 1.
  constexpr double kFanout = 256.0;
  if (keys_.size() <= 1) return 1;
  return std::max<int64_t>(
      1, static_cast<int64_t>(
             std::ceil(std::log(static_cast<double>(keys_.size())) /
                       std::log(kFanout))));
}

size_t OrderedIndex::LookupRange(double lo, double hi,
                                 std::vector<uint32_t>* out) const {
  ZDB_CHECK(out != nullptr);
  if (lo > hi) return 0;
  auto begin = std::lower_bound(keys_.begin(), keys_.end(), lo);
  auto end = std::upper_bound(begin, keys_.end(), hi);
  size_t first = static_cast<size_t>(begin - keys_.begin());
  size_t last = static_cast<size_t>(end - keys_.begin());
  out->reserve(out->size() + (last - first));
  for (size_t i = first; i < last; ++i) out->push_back(row_ids_[i]);
  return last - first;
}

}  // namespace zerodb::storage
