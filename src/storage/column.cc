#include "storage/column.h"

#include "common/check.h"

namespace zerodb::storage {

Column::Column(catalog::DataType type) : type_(type) {}

size_t Column::size() const {
  return type_ == catalog::DataType::kDouble ? doubles_.size() : ints_.size();
}

void Column::AppendInt64(int64_t v) {
  ZDB_CHECK(type_ == catalog::DataType::kInt64);
  ints_.push_back(v);
}

void Column::AppendDouble(double v) {
  ZDB_CHECK(type_ == catalog::DataType::kDouble);
  doubles_.push_back(v);
}

void Column::AppendString(const std::string& v) {
  ZDB_CHECK(type_ == catalog::DataType::kString);
  // Linear-probe intern: fine for the modest dictionary sizes the data
  // generator produces; data loading is not on the measured path.
  for (size_t code = 0; code < dictionary_.size(); ++code) {
    if (dictionary_[code] == v) {
      ints_.push_back(static_cast<int64_t>(code));
      return;
    }
  }
  dictionary_.push_back(v);
  ints_.push_back(static_cast<int64_t>(dictionary_.size() - 1));
}

void Column::SetDictionary(std::vector<std::string> dictionary) {
  ZDB_CHECK(type_ == catalog::DataType::kString);
  ZDB_CHECK(ints_.empty()) << "SetDictionary after data was appended";
  dictionary_ = std::move(dictionary);
}

void Column::AppendStringCode(int64_t code) {
  ZDB_CHECK(type_ == catalog::DataType::kString);
  ZDB_CHECK_GE(code, 0);
  ZDB_CHECK_LT(static_cast<size_t>(code), dictionary_.size());
  ints_.push_back(code);
}

Value Column::GetValue(size_t row) const {
  ZDB_CHECK_LT(row, size());
  switch (type_) {
    case catalog::DataType::kInt64:
      return Value(ints_[row]);
    case catalog::DataType::kDouble:
      return Value(doubles_[row]);
    case catalog::DataType::kString: {
      int64_t code = ints_[row];
      ZDB_CHECK_LT(static_cast<size_t>(code), dictionary_.size());
      return Value(dictionary_[static_cast<size_t>(code)]);
    }
  }
  ZDB_CHECK(false);
  return Value();
}

double Column::GetNumeric(size_t row) const {
  ZDB_CHECK_LT(row, size());
  if (type_ == catalog::DataType::kDouble) return doubles_[row];
  return static_cast<double>(ints_[row]);
}

StatusOr<int64_t> Column::LookupCode(const std::string& v) const {
  if (type_ != catalog::DataType::kString) {
    return Status::InvalidArgument("LookupCode on non-string column");
  }
  for (size_t code = 0; code < dictionary_.size(); ++code) {
    if (dictionary_[code] == v) return static_cast<int64_t>(code);
  }
  return Status::NotFound("dictionary entry: " + v);
}

StatusOr<std::string> Column::DictionaryEntry(int64_t code) const {
  if (type_ != catalog::DataType::kString) {
    return Status::InvalidArgument("DictionaryEntry on non-string column");
  }
  if (code < 0 || static_cast<size_t>(code) >= dictionary_.size()) {
    return Status::OutOfRange("dictionary code out of range");
  }
  return dictionary_[static_cast<size_t>(code)];
}

int64_t Column::AvgWidthBytes() const {
  if (type_ != catalog::DataType::kString) {
    return catalog::FixedWidthBytes(type_);
  }
  if (dictionary_.empty()) return catalog::FixedWidthBytes(type_);
  size_t total = 0;
  for (const std::string& entry : dictionary_) total += entry.size();
  return static_cast<int64_t>(total / dictionary_.size()) + 1;
}

void Column::Reserve(size_t rows) {
  if (type_ == catalog::DataType::kDouble) {
    doubles_.reserve(rows);
  } else {
    ints_.reserve(rows);
  }
}

}  // namespace zerodb::storage
