#include "storage/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace zerodb::storage {

namespace {

Status ParseRow(const std::string& line, size_t line_number,
                const catalog::TableSchema& schema, Table* table) {
  std::vector<std::string> cells = Split(line, ',');
  if (cells.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("line %zu: expected %zu cells, found %zu", line_number,
                  schema.num_columns(), cells.size()));
  }
  for (size_t c = 0; c < cells.size(); ++c) {
    const catalog::ColumnSchema& column_schema = schema.column(c);
    Column& column = table->column(c);
    const std::string& cell = cells[c];
    switch (column_schema.type) {
      case catalog::DataType::kInt64: {
        char* end = nullptr;
        long long value = std::strtoll(cell.c_str(), &end, 10);
        if (end == cell.c_str() || *end != '\0') {
          return Status::InvalidArgument(
              StrFormat("line %zu: bad int64 '%s'", line_number,
                        cell.c_str()));
        }
        column.AppendInt64(static_cast<int64_t>(value));
        break;
      }
      case catalog::DataType::kDouble: {
        char* end = nullptr;
        double value = std::strtod(cell.c_str(), &end);
        if (end == cell.c_str() || *end != '\0') {
          return Status::InvalidArgument(
              StrFormat("line %zu: bad double '%s'", line_number,
                        cell.c_str()));
        }
        column.AppendDouble(value);
        break;
      }
      case catalog::DataType::kString:
        column.AppendString(cell);
        break;
    }
  }
  return Status::OK();
}

StatusOr<Table> LoadCsvFromStream(std::istream& in,
                                  const catalog::TableSchema& schema) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV input");
  }
  // Validate the header against the schema.
  std::vector<std::string> header = Split(line, ',');
  if (header.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("header has %zu columns, schema expects %zu", header.size(),
                  schema.num_columns()));
  }
  for (size_t c = 0; c < header.size(); ++c) {
    if (header[c] != schema.column(c).name) {
      return Status::InvalidArgument(
          StrFormat("header column %zu is '%s', schema expects '%s'", c,
                    header[c].c_str(), schema.column(c).name.c_str()));
    }
  }

  Table table(schema);
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    ZDB_RETURN_NOT_OK(ParseRow(line, line_number, schema, &table));
  }
  ZDB_RETURN_NOT_OK(table.Validate());
  return table;
}

}  // namespace

StatusOr<Table> LoadCsv(const std::string& path,
                        const catalog::TableSchema& schema) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  return LoadCsvFromStream(in, schema);
}

StatusOr<Table> LoadCsvFromString(const std::string& content,
                                  const catalog::TableSchema& schema) {
  std::istringstream in(content);
  return LoadCsvFromStream(in, schema);
}

Status SaveCsv(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  std::vector<std::string> names;
  for (const catalog::ColumnSchema& column : table.schema().columns()) {
    names.push_back(column.name);
  }
  out << Join(names, ",") << "\n";
  for (size_t row = 0; row < table.num_rows(); ++row) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << ",";
      Value value = table.column(c).GetValue(row);
      if (value.is_string()) {
        out << value.AsString();
      } else if (value.is_double()) {
        out << StrFormat("%.17g", value.AsDouble());
      } else {
        out << value.AsInt64();
      }
    }
    out << "\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace zerodb::storage
