#include "catalog/types.h"

#include "common/check.h"

namespace zerodb::catalog {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  ZDB_CHECK(false) << "unknown data type";
  return "?";
}

int64_t FixedWidthBytes(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return 8;
    case DataType::kDouble:
      return 8;
    case DataType::kString:
      return 4;
  }
  ZDB_CHECK(false) << "unknown data type";
  return 0;
}

}  // namespace zerodb::catalog
