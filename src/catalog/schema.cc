#include "catalog/schema.h"

#include "common/check.h"

namespace zerodb::catalog {

const ColumnSchema& TableSchema::column(size_t index) const {
  ZDB_CHECK_LT(index, columns_.size());
  return columns_[index];
}

std::optional<size_t> TableSchema::FindColumn(
    const std::string& column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column_name) return i;
  }
  return std::nullopt;
}

int64_t TableSchema::RowWidthBytes() const {
  int64_t width = 0;
  for (const ColumnSchema& column : columns_) width += column.avg_width_bytes;
  return width;
}

Status Catalog::AddTable(TableSchema table) {
  if (FindTable(table.name()) != nullptr) {
    return Status::AlreadyExists("table exists: " + table.name());
  }
  tables_.push_back(std::move(table));
  return Status::OK();
}

Status Catalog::AddForeignKey(ForeignKey fk) {
  const TableSchema* source = FindTable(fk.table);
  const TableSchema* target = FindTable(fk.ref_table);
  if (source == nullptr) return Status::NotFound("fk table: " + fk.table);
  if (target == nullptr) return Status::NotFound("fk ref table: " + fk.ref_table);
  if (!source->FindColumn(fk.column).has_value()) {
    return Status::NotFound("fk column: " + fk.table + "." + fk.column);
  }
  if (!target->FindColumn(fk.ref_column).has_value()) {
    return Status::NotFound("fk ref column: " + fk.ref_table + "." +
                            fk.ref_column);
  }
  foreign_keys_.push_back(std::move(fk));
  return Status::OK();
}

const TableSchema* Catalog::FindTable(const std::string& name) const {
  for (const TableSchema& table : tables_) {
    if (table.name() == name) return &table;
  }
  return nullptr;
}

std::vector<ForeignKey> Catalog::JoinEdgesFor(const std::string& table) const {
  std::vector<ForeignKey> edges;
  for (const ForeignKey& fk : foreign_keys_) {
    if (fk.table == table || fk.ref_table == table) edges.push_back(fk);
  }
  return edges;
}

}  // namespace zerodb::catalog
