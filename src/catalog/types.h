#ifndef ZERODB_CATALOG_TYPES_H_
#define ZERODB_CATALOG_TYPES_H_

#include <cstdint>
#include <string>

namespace zerodb::catalog {

/// Column data types. Strings are dictionary-encoded categoricals: the
/// workloads the paper studies use them only in equality / IN predicates.
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

/// Human-readable type name ("int64", "double", "string").
const char* DataTypeName(DataType type);

/// Fixed storage width in bytes for numeric types; strings report the
/// dictionary-code width (4) — their payload width is schema-dependent and
/// tracked per column as avg_width_bytes.
int64_t FixedWidthBytes(DataType type);

/// Database page size used for page-count statistics (Postgres default).
inline constexpr int64_t kPageSizeBytes = 8192;

}  // namespace zerodb::catalog

#endif  // ZERODB_CATALOG_TYPES_H_
