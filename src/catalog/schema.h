#ifndef ZERODB_CATALOG_SCHEMA_H_
#define ZERODB_CATALOG_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "catalog/types.h"
#include "common/status.h"

namespace zerodb::catalog {

/// Schema of one column.
struct ColumnSchema {
  std::string name;
  DataType type = DataType::kInt64;
  /// Average payload width in bytes; for numerics this equals the fixed
  /// width, for strings the average string length. A database-independent
  /// feature the zero-shot featurizer consumes.
  int64_t avg_width_bytes = 8;
};

/// A foreign-key edge: `table.column` references `ref_table.ref_column`.
/// The workload generator only joins along these edges, like the paper's
/// training workloads which join along schema join paths.
struct ForeignKey {
  std::string table;
  std::string column;
  std::string ref_table;
  std::string ref_column;
};

/// Schema of one table.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnSchema> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnSchema>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }

  const ColumnSchema& column(size_t index) const;

  /// Index of the named column, or nullopt.
  std::optional<size_t> FindColumn(const std::string& column_name) const;

  /// Sum of column widths: the tuple width in bytes, another core
  /// database-independent feature.
  int64_t RowWidthBytes() const;

 private:
  std::string name_;
  std::vector<ColumnSchema> columns_;
};

/// The schema-level catalog of a database: tables plus foreign-key edges.
class Catalog {
 public:
  Catalog() = default;

  /// Adds a table; fails if a table of that name exists.
  Status AddTable(TableSchema table);

  /// Registers a foreign key; fails unless both endpoints exist.
  Status AddForeignKey(ForeignKey fk);

  const std::vector<TableSchema>& tables() const { return tables_; }
  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  const TableSchema* FindTable(const std::string& name) const;

  /// All FK edges incident to `table` (either direction) — the join
  /// neighborhood used by the workload generator.
  std::vector<ForeignKey> JoinEdgesFor(const std::string& table) const;

 private:
  std::vector<TableSchema> tables_;
  std::vector<ForeignKey> foreign_keys_;
};

}  // namespace zerodb::catalog

#endif  // ZERODB_CATALOG_SCHEMA_H_
