#ifndef ZERODB_RUNTIME_SIMULATOR_H_
#define ZERODB_RUNTIME_SIMULATOR_H_

#include "common/rng.h"
#include "exec/executor.h"
#include "plan/physical.h"

namespace zerodb::runtime {

/// Latency parameters of the simulated machine, in milliseconds per unit of
/// work. This is the *hidden ground truth* standing in for the paper's real
/// PostgreSQL server: the executor reports what work was done, this profile
/// says how long that work takes. The learned models never see these
/// constants, and the functional forms are deliberately different from the
/// optimizer's CostModel (nonlinear cache terms, per-operator startup), so a
/// linear rescaling of optimizer cost cannot fit runtimes exactly.
struct MachineProfile {
  double startup_ms = 0.4;             ///< per-query overhead
  double operator_startup_ms = 0.04;   ///< per-operator overhead
  double seq_page_ms = 0.015;
  double random_page_ms = 0.06;
  double tuple_cpu_ms = 0.0004;
  double predicate_leaf_ms = 0.00012;
  double hash_build_row_ms = 0.0011;
  double hash_probe_row_ms = 0.0006;
  double index_probe_ms = 0.0035;
  double index_entry_ms = 0.0012;
  double sort_compare_ms = 0.00035;    ///< x n log2 n
  double agg_update_ms = 0.00045;      ///< per row per aggregate
  double group_ms = 0.0009;            ///< per output group
  double output_byte_ms = 1.5e-6;      ///< materialization bandwidth
  /// Hash tables beyond this many rows fall out of cache; build/probe costs
  /// scale up smoothly (the main nonlinearity).
  double cache_rows = 60000.0;
  double cache_penalty = 0.9;
  /// Multiplicative lognormal noise (sigma of log runtime) applied per
  /// query; models real-machine variance and keeps Q-errors above 1.
  double noise_sigma = 0.08;
};

/// Converts executed plans' work counters into simulated runtimes.
class RuntimeSimulator {
 public:
  explicit RuntimeSimulator(MachineProfile profile = MachineProfile());

  /// Deterministic time for one operator's work.
  double OperatorMs(plan::PhysicalOpType type,
                    const exec::OperatorStats& stats,
                    size_t num_aggregates) const;

  /// Deterministic total runtime of an executed plan (no noise).
  double PlanMs(const plan::PhysicalPlan& plan,
                const exec::ExecutionResult& result) const;

  /// Total runtime with multiplicative noise drawn from `rng`.
  double NoisyPlanMs(const plan::PhysicalPlan& plan,
                     const exec::ExecutionResult& result, Rng* rng) const;

  const MachineProfile& profile() const { return profile_; }

 private:
  MachineProfile profile_;
};

}  // namespace zerodb::runtime

#endif  // ZERODB_RUNTIME_SIMULATOR_H_
