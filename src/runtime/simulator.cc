#include "runtime/simulator.h"

#include <cmath>

#include "common/check.h"

namespace zerodb::runtime {

namespace {

double Log2Safe(double x) { return std::log2(x < 2.0 ? 2.0 : x); }

}  // namespace

RuntimeSimulator::RuntimeSimulator(MachineProfile profile)
    : profile_(profile) {}

double RuntimeSimulator::OperatorMs(plan::PhysicalOpType type,
                                    const exec::OperatorStats& stats,
                                    size_t num_aggregates) const {
  const MachineProfile& p = profile_;
  double ms = p.operator_startup_ms;
  // Work every operator pays: producing its output.
  ms += static_cast<double>(stats.output_rows) * p.tuple_cpu_ms;
  ms += static_cast<double>(stats.output_bytes) * p.output_byte_ms;
  ms += static_cast<double>(stats.predicate_evals) * p.predicate_leaf_ms;

  auto cache_factor = [&p](double rows) {
    // Smooth out-of-cache penalty: 1 at 0 rows, 1 + penalty for tables far
    // beyond the cache size. log1p keeps it differentiable-ish and mild.
    return 1.0 + p.cache_penalty * std::log1p(rows / p.cache_rows) /
                     std::log1p(8.0);
  };

  switch (type) {
    case plan::PhysicalOpType::kSeqScan:
      ms += static_cast<double>(stats.pages_read) * p.seq_page_ms;
      ms += static_cast<double>(stats.rows_scanned) * p.tuple_cpu_ms * 0.5;
      break;
    case plan::PhysicalOpType::kIndexScan:
      ms += static_cast<double>(stats.index_probes) * p.index_probe_ms;
      ms += static_cast<double>(stats.index_entries) * p.index_entry_ms;
      ms += static_cast<double>(stats.pages_read) * p.random_page_ms;
      break;
    case plan::PhysicalOpType::kFilter:
      break;  // predicate_evals covered above
    case plan::PhysicalOpType::kHashJoin: {
      double build = static_cast<double>(stats.hash_build_rows);
      double probe = static_cast<double>(stats.hash_probe_rows);
      double factor = cache_factor(build);
      ms += build * p.hash_build_row_ms * factor;
      ms += probe * p.hash_probe_row_ms * factor;
      break;
    }
    case plan::PhysicalOpType::kNestedLoopJoin:
      break;  // predicate_evals covers the quadratic comparisons
    case plan::PhysicalOpType::kIndexNLJoin:
      ms += static_cast<double>(stats.index_probes) * p.index_probe_ms;
      ms += static_cast<double>(stats.index_entries) * p.index_entry_ms;
      ms += static_cast<double>(stats.pages_read) * p.random_page_ms * 0.1;
      break;
    case plan::PhysicalOpType::kSort: {
      double rows = static_cast<double>(stats.sort_rows);
      ms += rows * Log2Safe(rows) * p.sort_compare_ms;
      break;
    }
    case plan::PhysicalOpType::kHashAggregate:
    case plan::PhysicalOpType::kSimpleAggregate: {
      double rows = static_cast<double>(stats.input_rows_left);
      double groups = static_cast<double>(stats.group_count);
      ms += rows * p.agg_update_ms *
            static_cast<double>(num_aggregates == 0 ? 1 : num_aggregates) *
            cache_factor(groups);
      ms += groups * p.group_ms;
      break;
    }
  }
  return ms;
}

double RuntimeSimulator::PlanMs(const plan::PhysicalPlan& plan,
                                const exec::ExecutionResult& result) const {
  ZDB_CHECK(plan.root != nullptr);
  double total = profile_.startup_ms;
  plan.root->Visit([&](const plan::PhysicalNode& node) {
    total += OperatorMs(node.type, result.StatsFor(node),
                        node.aggregates.size());
  });
  // Ground-truth runtimes feed straight into training targets; a NaN or a
  // negative runtime here would corrupt every model trained on the record.
  ZDB_DCHECK(std::isfinite(total) && total >= 0.0);
  return total;
}

double RuntimeSimulator::NoisyPlanMs(const plan::PhysicalPlan& plan,
                                     const exec::ExecutionResult& result,
                                     Rng* rng) const {
  ZDB_CHECK(rng != nullptr);
  const double sigma = profile_.noise_sigma;
  // Mean-one lognormal noise: E[exp(N(-s^2/2, s^2))] = 1.
  double noise = rng->LogNormal(-0.5 * sigma * sigma, sigma);
  return PlanMs(plan, result) * noise;
}

}  // namespace zerodb::runtime
