#include "sql/parser.h"

#include <algorithm>
#include <optional>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace zerodb::sql {

namespace {

using plan::AggFunc;
using plan::CompareOp;
using plan::Predicate;
using plan::QuerySpec;

struct ColumnRef {
  std::string table;
  size_t column_index = 0;
};

// A parsed scalar comparison or boolean combination, before it is assigned
// to a table (join vs filter) during binding.
struct BoundPredicate {
  std::string table;        // every leaf references this table
  Predicate predicate = Predicate::Compare(0, CompareOp::kEq, 0);
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const storage::Database& db)
      : tokens_(std::move(tokens)), db_(db) {}

  StatusOr<QuerySpec> Parse() {
    ZDB_RETURN_NOT_OK(ExpectKeyword("select"));
    ZDB_RETURN_NOT_OK(ParseSelectList());
    ZDB_RETURN_NOT_OK(ExpectKeyword("from"));
    ZDB_RETURN_NOT_OK(ParseTableList());
    if (AcceptKeyword("where")) {
      ZDB_RETURN_NOT_OK(ParseWhere());
    }
    if (AcceptKeyword("group")) {
      ZDB_RETURN_NOT_OK(ExpectKeyword("by"));
      ZDB_RETURN_NOT_OK(ParseGroupBy());
    }
    // Trailing semicolon is optional; absence is not an error.
    (void)Accept(TokenType::kSemicolon);
    if (Peek().type != TokenType::kEnd) {
      return ErrorHere("trailing input");
    }
    ZDB_RETURN_NOT_OK(BindSelectItems());
    ZDB_RETURN_NOT_OK(query_.Validate(db_));
    return query_;
  }

 private:
  // ----- token helpers -----
  const Token& Peek(size_t ahead = 0) const {
    size_t index = std::min(position_ + ahead, tokens_.size() - 1);
    return tokens_[index];
  }
  const Token& Advance() { return tokens_[position_++]; }
  bool Accept(TokenType type) {
    if (Peek().type == type) {
      ++position_;
      return true;
    }
    return false;
  }
  bool AcceptKeyword(const std::string& keyword) {
    if (Peek().type == TokenType::kKeyword && Peek().text == keyword) {
      ++position_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& keyword) {
    if (!AcceptKeyword(keyword)) {
      return ErrorHere("expected '" + keyword + "'");
    }
    return Status::OK();
  }
  Status Expect(TokenType type, const char* what) {
    if (!Accept(type)) return ErrorHere(std::string("expected ") + what);
    return Status::OK();
  }
  Status ErrorHere(const std::string& message) const {
    return Status::InvalidArgument(StrFormat(
        "%s at position %zu (near '%s')", message.c_str(), Peek().position,
        Peek().text.c_str()));
  }

  // ----- grammar -----
  // Select items are remembered raw and bound after FROM is known.
  struct RawSelectItem {
    bool is_aggregate = false;
    bool is_star = false;           // COUNT(*) argument or bare '*'
    AggFunc func = AggFunc::kCount;
    std::string table;              // may be empty (unqualified)
    std::string column;
  };

  Status ParseSelectList() {
    if (Accept(TokenType::kStar)) {
      RawSelectItem item;
      item.is_star = true;
      raw_items_.push_back(item);
      return Status::OK();
    }
    do {
      RawSelectItem item;
      if (Peek().type == TokenType::kKeyword && IsAggName(Peek().text)) {
        item.is_aggregate = true;
        item.func = AggFromName(Advance().text);
        ZDB_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
        if (Accept(TokenType::kStar)) {
          item.is_star = true;
        } else {
          ZDB_RETURN_NOT_OK(ParseColumnName(&item.table, &item.column));
        }
        ZDB_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      } else {
        ZDB_RETURN_NOT_OK(ParseColumnName(&item.table, &item.column));
      }
      raw_items_.push_back(std::move(item));
    } while (Accept(TokenType::kComma));
    return Status::OK();
  }

  Status ParseTableList() {
    do {
      if (Peek().type != TokenType::kIdentifier) {
        return ErrorHere("expected table name");
      }
      query_.tables.push_back(Advance().text);
    } while (Accept(TokenType::kComma));
    return Status::OK();
  }

  Status ParseColumnName(std::string* table, std::string* column) {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected column name");
    }
    std::string first = Advance().text;
    if (Accept(TokenType::kDot)) {
      if (Peek().type != TokenType::kIdentifier) {
        return ErrorHere("expected column name after '.'");
      }
      *table = first;
      *column = Advance().text;
    } else {
      table->clear();
      *column = first;
    }
    return Status::OK();
  }

  // Resolves a (possibly unqualified) column against the FROM tables.
  StatusOr<ColumnRef> Resolve(const std::string& table,
                              const std::string& column) {
    if (!table.empty()) {
      if (std::find(query_.tables.begin(), query_.tables.end(), table) ==
          query_.tables.end()) {
        return Status::InvalidArgument("table not in FROM: " + table);
      }
      const storage::Table* t = db_.FindTable(table);
      if (t == nullptr) return Status::NotFound("table: " + table);
      auto index = t->schema().FindColumn(column);
      if (!index.has_value()) {
        return Status::NotFound("column: " + table + "." + column);
      }
      return ColumnRef{table, *index};
    }
    // Unqualified: search the FROM tables; must be unique.
    std::optional<ColumnRef> found;
    for (const std::string& candidate : query_.tables) {
      const storage::Table* t = db_.FindTable(candidate);
      if (t == nullptr) continue;
      auto index = t->schema().FindColumn(column);
      if (index.has_value()) {
        if (found.has_value()) {
          return Status::InvalidArgument("ambiguous column: " + column);
        }
        found = ColumnRef{candidate, *index};
      }
    }
    if (!found.has_value()) return Status::NotFound("column: " + column);
    return *found;
  }

  static bool IsAggName(const std::string& word) {
    return word == "count" || word == "sum" || word == "avg" ||
           word == "min" || word == "max";
  }
  static AggFunc AggFromName(const std::string& word) {
    if (word == "count") return AggFunc::kCount;
    if (word == "sum") return AggFunc::kSum;
    if (word == "avg") return AggFunc::kAvg;
    if (word == "min") return AggFunc::kMin;
    return AggFunc::kMax;
  }

  static StatusOr<CompareOp> OpFromText(const std::string& text) {
    if (text == "=") return CompareOp::kEq;
    if (text == "<>") return CompareOp::kNe;
    if (text == "<") return CompareOp::kLt;
    if (text == "<=") return CompareOp::kLe;
    if (text == ">") return CompareOp::kGt;
    if (text == ">=") return CompareOp::kGe;
    return Status::InvalidArgument("unknown operator: " + text);
  }

  // WHERE := factor (AND factor)* ; each factor is a join condition, a
  // comparison, or a parenthesized OR group over one table.
  Status ParseWhere() {
    do {
      ZDB_RETURN_NOT_OK(ParseWhereFactor());
    } while (AcceptKeyword("and"));
    return Status::OK();
  }

  Status ParseWhereFactor() {
    if (Accept(TokenType::kLParen)) {
      // Parenthesized group: comparisons combined with a single connective
      // (all OR or all AND), over a single table.
      ZDB_ASSIGN_OR_RETURN(BoundPredicate first, ParseComparison());
      std::vector<Predicate> branches = {first.predicate};
      std::string table = first.table;
      bool is_or = false;
      bool saw_connective = false;
      while (true) {
        bool got_or = AcceptKeyword("or");
        bool got_and = !got_or && AcceptKeyword("and");
        if (!got_or && !got_and) break;
        if (saw_connective && got_or != is_or) {
          return Status::InvalidArgument(
              "mixed AND/OR inside one group is not supported; nest "
              "parentheses");
        }
        is_or = got_or;
        saw_connective = true;
        ZDB_ASSIGN_OR_RETURN(BoundPredicate next, ParseComparison());
        if (next.table != table) {
          return Status::InvalidArgument(
              "boolean groups across different tables are not supported");
        }
        branches.push_back(next.predicate);
      }
      ZDB_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      Predicate group = is_or ? Predicate::Or(std::move(branches))
                              : Predicate::And(std::move(branches));
      query_.filters.push_back(plan::FilterSpec{table, std::move(group)});
      return Status::OK();
    }

    // Either `col op literal` or a join `col = col`.
    std::string left_table;
    std::string left_column;
    ZDB_RETURN_NOT_OK(ParseColumnName(&left_table, &left_column));
    if (Peek().type != TokenType::kOperator) {
      return ErrorHere("expected comparison operator");
    }
    std::string op_text = Advance().text;
    ZDB_ASSIGN_OR_RETURN(CompareOp op, OpFromText(op_text));

    if (Peek().type == TokenType::kIdentifier) {
      // Join condition.
      if (op != CompareOp::kEq) {
        return ErrorHere("only equi-joins are supported");
      }
      std::string right_table;
      std::string right_column;
      ZDB_RETURN_NOT_OK(ParseColumnName(&right_table, &right_column));
      ZDB_ASSIGN_OR_RETURN(ColumnRef left, Resolve(left_table, left_column));
      ZDB_ASSIGN_OR_RETURN(ColumnRef right,
                           Resolve(right_table, right_column));
      const storage::Table* lt = db_.FindTable(left.table);
      const storage::Table* rt = db_.FindTable(right.table);
      query_.joins.push_back(plan::JoinSpec{
          left.table, lt->schema().column(left.column_index).name,
          right.table, rt->schema().column(right.column_index).name});
      return Status::OK();
    }

    ZDB_ASSIGN_OR_RETURN(BoundPredicate bound,
                         FinishComparison(left_table, left_column, op));
    query_.filters.push_back(plan::FilterSpec{bound.table, bound.predicate});
    return Status::OK();
  }

  // Parses `col op literal` (no join allowed here; used inside OR groups).
  StatusOr<BoundPredicate> ParseComparison() {
    std::string table;
    std::string column;
    ZDB_RETURN_NOT_OK(ParseColumnName(&table, &column));
    if (Peek().type != TokenType::kOperator) {
      return Status(StatusCode::kInvalidArgument,
                    "expected comparison operator in predicate");
    }
    ZDB_ASSIGN_OR_RETURN(CompareOp op, OpFromText(Advance().text));
    return FinishComparison(table, column, op);
  }

  StatusOr<BoundPredicate> FinishComparison(const std::string& table,
                                            const std::string& column,
                                            CompareOp op) {
    ZDB_ASSIGN_OR_RETURN(ColumnRef ref, Resolve(table, column));
    const storage::Table* t = db_.FindTable(ref.table);
    const storage::Column& col = t->column(ref.column_index);

    double literal = 0.0;
    if (Peek().type == TokenType::kNumber) {
      if (col.type() == catalog::DataType::kString) {
        return Status::InvalidArgument(
            "numeric literal compared against string column " + column);
      }
      literal = Advance().number;
    } else if (Peek().type == TokenType::kString) {
      if (col.type() != catalog::DataType::kString) {
        return Status::InvalidArgument(
            "string literal compared against numeric column " + column);
      }
      if (op != CompareOp::kEq && op != CompareOp::kNe) {
        return Status::InvalidArgument(
            "string columns support only = and <>");
      }
      std::string value = Advance().text;
      auto code = col.LookupCode(value);
      // Unknown strings match nothing: use a code outside the dictionary.
      literal = code.ok() ? static_cast<double>(*code) : -1.0;
    } else {
      return ErrorHere("expected literal");
    }
    BoundPredicate bound;
    bound.table = ref.table;
    bound.predicate = Predicate::Compare(ref.column_index, op, literal);
    return bound;
  }

  Status ParseGroupBy() {
    do {
      std::string table;
      std::string column;
      ZDB_RETURN_NOT_OK(ParseColumnName(&table, &column));
      ZDB_ASSIGN_OR_RETURN(ColumnRef ref, Resolve(table, column));
      const storage::Table* t = db_.FindTable(ref.table);
      query_.group_by.push_back(plan::GroupBySpec{
          ref.table, t->schema().column(ref.column_index).name});
    } while (Accept(TokenType::kComma));
    return Status::OK();
  }

  // Turns raw select items into aggregates, checking GROUP BY consistency.
  Status BindSelectItems() {
    for (const RawSelectItem& item : raw_items_) {
      if (item.is_aggregate) {
        if (item.is_star) {
          if (item.func != AggFunc::kCount) {
            return Status::InvalidArgument("only COUNT(*) takes '*'");
          }
          query_.aggregates.push_back(plan::AggregateSpec{AggFunc::kCount,
                                                          "", ""});
        } else {
          ZDB_ASSIGN_OR_RETURN(ColumnRef ref,
                               Resolve(item.table, item.column));
          const storage::Table* t = db_.FindTable(ref.table);
          query_.aggregates.push_back(plan::AggregateSpec{
              item.func, ref.table,
              t->schema().column(ref.column_index).name});
        }
        continue;
      }
      if (item.is_star) {
        // Bare '*': plain scan projection, allowed only without grouping
        // or aggregation.
        if (!query_.group_by.empty()) {
          return Status::InvalidArgument("SELECT * with GROUP BY");
        }
        continue;
      }
      // Bare column: must appear in GROUP BY.
      ZDB_ASSIGN_OR_RETURN(ColumnRef ref, Resolve(item.table, item.column));
      const storage::Table* t = db_.FindTable(ref.table);
      const std::string& name = t->schema().column(ref.column_index).name;
      bool grouped = false;
      for (const plan::GroupBySpec& g : query_.group_by) {
        if (g.table == ref.table && g.column == name) grouped = true;
      }
      if (!grouped) {
        return Status::InvalidArgument(
            "column " + name + " must appear in GROUP BY or an aggregate");
      }
    }
    // Grouping without aggregates still needs at least a COUNT(*) for this
    // engine's HashAggregate output; add one implicitly.
    if (!query_.group_by.empty() && query_.aggregates.empty()) {
      query_.aggregates.push_back(plan::AggregateSpec{AggFunc::kCount, "", ""});
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  // Borrowed from ParseQuery's argument; the parser is a stack-local inside
  // that one call and never escapes it.
  const storage::Database& db_;  // zerodb-lint: allow(lifetime-member)
  size_t position_ = 0;
  QuerySpec query_;
  std::vector<RawSelectItem> raw_items_;
};

}  // namespace

StatusOr<plan::QuerySpec> ParseQuery(const std::string& text,
                                     const storage::Database& db) {
  ZDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), db);
  return parser.Parse();
}

}  // namespace zerodb::sql
