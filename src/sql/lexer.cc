#include "sql/lexer.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace zerodb::sql {

namespace {

const char* const kKeywords[] = {"select", "from", "where", "and", "or",
                                 "group",  "by",   "count", "sum", "avg",
                                 "min",    "max",  "as",    "order"};

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

bool IsKeyword(const std::string& word) {
  for (const char* keyword : kKeywords) {
    if (word == keyword) return true;
  }
  return false;
}

StatusOr<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                       text[i] == '_')) {
        ++i;
      }
      token.text = ToLower(text.substr(start, i - start));
      token.type = IsKeyword(token.text) ? TokenType::kKeyword
                                         : TokenType::kIdentifier;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(text[i])) ||
                       text[i] == '.' || text[i] == 'e' || text[i] == 'E' ||
                       ((text[i] == '+' || text[i] == '-') &&
                        (text[i - 1] == 'e' || text[i - 1] == 'E')))) {
        ++i;
      }
      token.type = TokenType::kNumber;
      token.text = text.substr(start, i - start);
      char* end = nullptr;
      token.number = std::strtod(token.text.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument(
            StrFormat("bad number '%s' at %zu", token.text.c_str(), start));
      }
    } else if (c == '\'') {
      size_t start = ++i;
      while (i < n && text[i] != '\'') ++i;
      if (i >= n) {
        return Status::InvalidArgument(
            StrFormat("unterminated string at %zu", token.position));
      }
      token.type = TokenType::kString;
      token.text = text.substr(start, i - start);
      ++i;  // closing quote
    } else {
      switch (c) {
        case ',':
          token.type = TokenType::kComma;
          token.text = ",";
          ++i;
          break;
        case '.':
          token.type = TokenType::kDot;
          token.text = ".";
          ++i;
          break;
        case '*':
          token.type = TokenType::kStar;
          token.text = "*";
          ++i;
          break;
        case '(':
          token.type = TokenType::kLParen;
          token.text = "(";
          ++i;
          break;
        case ')':
          token.type = TokenType::kRParen;
          token.text = ")";
          ++i;
          break;
        case ';':
          token.type = TokenType::kSemicolon;
          token.text = ";";
          ++i;
          break;
        case '=':
          token.type = TokenType::kOperator;
          token.text = "=";
          ++i;
          break;
        case '<':
          token.type = TokenType::kOperator;
          if (i + 1 < n && text[i + 1] == '=') {
            token.text = "<=";
            i += 2;
          } else if (i + 1 < n && text[i + 1] == '>') {
            token.text = "<>";
            i += 2;
          } else {
            token.text = "<";
            ++i;
          }
          break;
        case '>':
          token.type = TokenType::kOperator;
          if (i + 1 < n && text[i + 1] == '=') {
            token.text = ">=";
            i += 2;
          } else {
            token.text = ">";
            ++i;
          }
          break;
        case '!':
          if (i + 1 < n && text[i + 1] == '=') {
            token.type = TokenType::kOperator;
            token.text = "<>";
            i += 2;
            break;
          }
          [[fallthrough]];
        default:
          return Status::InvalidArgument(
              StrFormat("unexpected character '%c' at %zu", c, i));
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end_token;
  end_token.type = TokenType::kEnd;
  end_token.position = n;
  tokens.push_back(end_token);
  return tokens;
}

}  // namespace zerodb::sql
