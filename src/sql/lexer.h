#ifndef ZERODB_SQL_LEXER_H_
#define ZERODB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace zerodb::sql {

enum class TokenType {
  kIdentifier,   // title, production_year
  kNumber,       // 42, 3.5, -7
  kString,       // 'berlin'
  kComma,
  kDot,
  kStar,
  kLParen,
  kRParen,
  kSemicolon,
  kOperator,     // = <> < <= > >=
  kKeyword,      // SELECT FROM WHERE AND OR GROUP BY COUNT SUM AVG MIN MAX AS ORDER
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;       // normalized: keywords/identifiers lower-cased
  double number = 0.0;    // for kNumber
  size_t position = 0;    // byte offset, for error messages
};

/// Tokenizes a SQL string. Keywords are case-insensitive; identifiers are
/// lower-cased (this engine's catalogs are lower-case). Fails on unknown
/// characters and unterminated strings.
StatusOr<std::vector<Token>> Tokenize(const std::string& text);

/// True if the (lower-case) word is a recognized keyword.
bool IsKeyword(const std::string& word);

}  // namespace zerodb::sql

#endif  // ZERODB_SQL_LEXER_H_
