#ifndef ZERODB_SQL_PARSER_H_
#define ZERODB_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "plan/query.h"
#include "storage/database.h"

namespace zerodb::sql {

/// Parses a SQL SELECT statement of the dialect this engine supports into a
/// bound QuerySpec:
///
///   SELECT COUNT(*), AVG(t.score) FROM t, u
///   WHERE t.id = u.t_id AND t.score >= 10 AND (u.kind = 'a' OR u.kind = 'b')
///   GROUP BY t.status;
///
/// Supported: aggregate and plain column select items, comma-separated FROM
/// list, a WHERE conjunction of equi-join conditions (column = column) and
/// per-table predicates (column <op> literal, with parenthesized OR groups),
/// GROUP BY. String literals are resolved through the column dictionary;
/// unqualified columns are resolved if unambiguous. Everything is validated
/// against the database schema; errors carry the byte position.
StatusOr<plan::QuerySpec> ParseQuery(const std::string& text,
                                     const storage::Database& db);

}  // namespace zerodb::sql

#endif  // ZERODB_SQL_PARSER_H_
