#include "workload/benchmarks.h"

#include "common/check.h"

namespace zerodb::workload {

const char* BenchmarkWorkloadName(BenchmarkWorkload workload) {
  switch (workload) {
    case BenchmarkWorkload::kScale:
      return "scale";
    case BenchmarkWorkload::kSynthetic:
      return "synthetic";
    case BenchmarkWorkload::kJobLight:
      return "job-light";
  }
  ZDB_CHECK(false);
  return "?";
}

WorkloadConfig TrainingWorkloadConfig() {
  WorkloadConfig config;
  config.min_tables = 1;
  config.max_tables = 5;
  config.max_predicates = 5;
  config.max_aggregates = 3;
  return config;
}

std::vector<plan::QuerySpec> MakeBenchmark(BenchmarkWorkload workload,
                                           const datagen::DatabaseEnv& env,
                                           size_t count, uint64_t seed) {
  std::vector<plan::QuerySpec> queries;
  queries.reserve(count);
  switch (workload) {
    case BenchmarkWorkload::kScale: {
      // Sweep the join count: bucket i uses (i % 5) + 1 tables, so the
      // workload "scales" the number of joins like the original benchmark.
      for (size_t join_bucket = 0; join_bucket < 5; ++join_bucket) {
        WorkloadConfig config = TrainingWorkloadConfig();
        config.min_tables = join_bucket + 1;
        config.max_tables = join_bucket + 1;
        config.min_predicates = 1;
        config.max_predicates = 4;
        QueryGenerator generator(&env, config, seed + join_bucket);
        size_t bucket_count = count / 5 + (join_bucket < count % 5 ? 1 : 0);
        for (size_t i = 0; i < bucket_count; ++i) {
          queries.push_back(generator.Next());
        }
      }
      break;
    }
    case BenchmarkWorkload::kSynthetic: {
      QueryGenerator generator(&env, TrainingWorkloadConfig(), seed);
      for (size_t i = 0; i < count; ++i) queries.push_back(generator.Next());
      break;
    }
    case BenchmarkWorkload::kJobLight: {
      WorkloadConfig config;
      config.min_tables = 2;
      config.max_tables = 5;
      config.min_predicates = 1;
      config.max_predicates = 4;
      config.max_aggregates = 1;
      config.count_star_only = true;
      config.range_predicate_prob = 0.1;  // "rarely contain range predicates"
      config.or_predicate_prob = 0.0;
      config.group_by_prob = 0.0;
      config.hub_table = "title";
      QueryGenerator generator(&env, config, seed);
      for (size_t i = 0; i < count; ++i) queries.push_back(generator.Next());
      break;
    }
  }
  return queries;
}

}  // namespace zerodb::workload
