#ifndef ZERODB_WORKLOAD_BENCHMARKS_H_
#define ZERODB_WORKLOAD_BENCHMARKS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/corpus.h"
#include "plan/query.h"
#include "workload/generator.h"

namespace zerodb::workload {

/// The three IMDB evaluation benchmarks of the paper's Figure 4 / Table 1,
/// rebuilt as generators against the IMDB-like database:
///  - scale:     join-count sweep (1..5 tables), mixed predicates;
///  - synthetic: the training distribution (random SPJA queries);
///  - job-light: star joins on `title`, mostly equality predicates, COUNT(*).
enum class BenchmarkWorkload { kScale, kSynthetic, kJobLight };

const char* BenchmarkWorkloadName(BenchmarkWorkload workload);

/// Generates `count` queries of the given benchmark against the database
/// (which must be the IMDB-like env for job-light).
std::vector<plan::QuerySpec> MakeBenchmark(BenchmarkWorkload workload,
                                           const datagen::DatabaseEnv& env,
                                           size_t count, uint64_t seed);

/// The paper's training workload shape (used on the 19 training databases).
WorkloadConfig TrainingWorkloadConfig();

}  // namespace zerodb::workload

#endif  // ZERODB_WORKLOAD_BENCHMARKS_H_
