#include "workload/generator.h"

#include <algorithm>

#include "common/check.h"

namespace zerodb::workload {

namespace {

using plan::CompareOp;
using plan::Predicate;
using plan::QuerySpec;

// A column is a key if it is the primary key or participates in a foreign
// key (either end). Keys carry no data semantics, so predicates and
// aggregates avoid them — matching how the paper's workloads filter on
// attribute columns.
bool IsKeyColumn(const catalog::Catalog& cat, const std::string& table,
                 const catalog::ColumnSchema& column) {
  if (column.name == "id") return true;
  for (const catalog::ForeignKey& fk : cat.foreign_keys()) {
    if ((fk.table == table && fk.column == column.name) ||
        (fk.ref_table == table && fk.ref_column == column.name)) {
      return true;
    }
  }
  return false;
}

}  // namespace

QueryGenerator::QueryGenerator(const datagen::DatabaseEnv* env,
                               WorkloadConfig config, uint64_t seed)
    : env_(env), config_(std::move(config)), rng_(seed) {
  ZDB_CHECK(env != nullptr && env->db != nullptr);
  ZDB_CHECK_GE(config_.max_tables, config_.min_tables);
  ZDB_CHECK_GE(config_.min_tables, 1u);
}

std::vector<size_t> QueryGenerator::AttributeColumns(
    const storage::Table& table) const {
  const catalog::Catalog& cat = env_->db->catalog();
  std::vector<size_t> columns;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (!IsKeyColumn(cat, table.name(), table.schema().column(c))) {
      columns.push_back(c);
    }
  }
  return columns;
}

std::vector<size_t> QueryGenerator::NumericColumns(
    const storage::Table& table) const {
  const catalog::Catalog& cat = env_->db->catalog();
  std::vector<size_t> columns;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const catalog::ColumnSchema& schema = table.schema().column(c);
    if (IsKeyColumn(cat, table.name(), schema)) continue;
    if (schema.type != catalog::DataType::kString) columns.push_back(c);
  }
  return columns;
}

double QueryGenerator::SampleLiteral(const storage::Table& table,
                                     size_t column_index) {
  const storage::Column& column = table.column(column_index);
  ZDB_CHECK_GT(column.size(), 0u);
  size_t row = static_cast<size_t>(rng_.NextUint64(column.size()));
  return column.GetNumeric(row);
}

std::optional<Predicate> QueryGenerator::MakePredicate(
    const storage::Table& table) {
  std::vector<size_t> candidates = AttributeColumns(table);
  if (candidates.empty()) return std::nullopt;

  auto make_leaf = [&]() {
    size_t column_index =
        candidates[rng_.NextUint64(candidates.size())];
    const catalog::ColumnSchema& schema = table.schema().column(column_index);
    double literal = SampleLiteral(table, column_index);
    CompareOp op;
    if (schema.type == catalog::DataType::kString) {
      // Dictionary codes: equality predicates only (like categorical
      // predicates in the paper's workloads).
      op = rng_.Bernoulli(0.9) ? CompareOp::kEq : CompareOp::kNe;
    } else if (schema.type == catalog::DataType::kDouble) {
      // Point predicates on continuous data are degenerate; use ranges.
      static constexpr CompareOp kRangeOps[] = {CompareOp::kLe, CompareOp::kGe,
                                                CompareOp::kLt, CompareOp::kGt};
      op = kRangeOps[rng_.NextUint64(4)];
    } else if (rng_.Bernoulli(config_.range_predicate_prob)) {
      static constexpr CompareOp kRangeOps[] = {CompareOp::kLe, CompareOp::kGe,
                                                CompareOp::kLt, CompareOp::kGt};
      op = kRangeOps[rng_.NextUint64(4)];
    } else {
      op = CompareOp::kEq;
    }
    return Predicate::Compare(column_index, op, literal);
  };

  if (rng_.Bernoulli(config_.or_predicate_prob)) {
    return Predicate::Or({make_leaf(), make_leaf()});
  }
  return make_leaf();
}

QuerySpec QueryGenerator::Next() {
  const storage::Database& db = *env_->db;
  const catalog::Catalog& cat = db.catalog();
  QuerySpec query;

  // --- Choose the table set via a random walk on the FK graph. ---
  const size_t target_tables = static_cast<size_t>(rng_.UniformInt(
      static_cast<int64_t>(config_.min_tables),
      static_cast<int64_t>(config_.max_tables)));

  std::string start;
  if (config_.hub_table.has_value()) {
    start = *config_.hub_table;
    ZDB_CHECK(db.FindTable(start) != nullptr)
        << "hub table missing: " << start;
  } else {
    start = db.tables()[rng_.NextUint64(db.tables().size())].name();
  }
  query.tables.push_back(start);

  while (query.tables.size() < target_tables) {
    // Candidate edges: FK edges with exactly one endpoint inside the set.
    std::vector<catalog::ForeignKey> frontier;
    for (const std::string& table : query.tables) {
      for (const catalog::ForeignKey& fk : cat.JoinEdgesFor(table)) {
        bool src_in = std::find(query.tables.begin(), query.tables.end(),
                                fk.table) != query.tables.end();
        bool dst_in = std::find(query.tables.begin(), query.tables.end(),
                                fk.ref_table) != query.tables.end();
        if (src_in != dst_in) frontier.push_back(fk);
      }
    }
    if (frontier.empty()) break;  // no more join partners
    const catalog::ForeignKey& fk =
        frontier[rng_.NextUint64(frontier.size())];
    bool src_in = std::find(query.tables.begin(), query.tables.end(),
                            fk.table) != query.tables.end();
    query.tables.push_back(src_in ? fk.ref_table : fk.table);
    query.joins.push_back(
        plan::JoinSpec{fk.table, fk.column, fk.ref_table, fk.ref_column});
  }

  // --- Predicates. ---
  size_t num_predicates = static_cast<size_t>(rng_.UniformInt(
      static_cast<int64_t>(config_.min_predicates),
      static_cast<int64_t>(config_.max_predicates)));
  if (config_.force_predicate_on_joins && query.tables.size() > 1) {
    // Wide star joins over skewed foreign keys blow up without filters;
    // require at least one predicate, two once the join gets wide (the
    // paper's benchmark queries behave the same way).
    size_t floor = query.tables.size() >= 4 ? 2 : 1;
    num_predicates = std::max(num_predicates, floor);
  }
  size_t added = 0;
  for (size_t attempt = 0; attempt < 4 * num_predicates && added < num_predicates;
       ++attempt) {
    const std::string& table_name =
        query.tables[rng_.NextUint64(query.tables.size())];
    const storage::Table* table = db.FindTable(table_name);
    std::optional<Predicate> predicate = MakePredicate(*table);
    if (!predicate.has_value()) continue;  // table has no attribute columns
    query.filters.push_back(plan::FilterSpec{table_name, *predicate});
    ++added;
  }

  // --- Aggregates. ---
  size_t num_aggregates = static_cast<size_t>(
      rng_.UniformInt(1, static_cast<int64_t>(config_.max_aggregates)));
  if (config_.count_star_only) num_aggregates = 1;
  for (size_t i = 0; i < num_aggregates; ++i) {
    if (config_.count_star_only || i == 0 || rng_.Bernoulli(0.35)) {
      query.aggregates.push_back(plan::AggregateSpec{plan::AggFunc::kCount,
                                                     "", ""});
      continue;
    }
    // Numeric aggregate over a random numeric column in the joined set.
    std::vector<std::pair<std::string, size_t>> numeric;
    for (const std::string& table_name : query.tables) {
      const storage::Table* table = db.FindTable(table_name);
      for (size_t c : NumericColumns(*table)) {
        numeric.emplace_back(table_name, c);
      }
    }
    if (numeric.empty()) {
      query.aggregates.push_back(plan::AggregateSpec{plan::AggFunc::kCount,
                                                     "", ""});
      continue;
    }
    auto [table_name, column_index] =
        numeric[rng_.NextUint64(numeric.size())];
    static constexpr plan::AggFunc kFuncs[] = {
        plan::AggFunc::kSum, plan::AggFunc::kAvg, plan::AggFunc::kMin,
        plan::AggFunc::kMax};
    const storage::Table* table = db.FindTable(table_name);
    query.aggregates.push_back(plan::AggregateSpec{
        kFuncs[rng_.NextUint64(4)], table_name,
        table->schema().column(column_index).name});
  }

  // --- Group by (occasionally, over a low-cardinality column). ---
  if (!config_.count_star_only && rng_.Bernoulli(config_.group_by_prob)) {
    std::vector<std::pair<std::string, size_t>> categorical;
    for (const std::string& table_name : query.tables) {
      const storage::Table* table = db.FindTable(table_name);
      for (size_t c = 0; c < table->num_columns(); ++c) {
        if (table->schema().column(c).type == catalog::DataType::kString) {
          categorical.emplace_back(table_name, c);
        }
      }
    }
    if (!categorical.empty()) {
      auto [table_name, column_index] =
          categorical[rng_.NextUint64(categorical.size())];
      const storage::Table* table = db.FindTable(table_name);
      query.group_by.push_back(plan::GroupBySpec{
          table_name, table->schema().column(column_index).name});
    }
  }

  ZDB_DCHECK(query.Validate(db).ok());
  return query;
}

}  // namespace zerodb::workload
