#ifndef ZERODB_WORKLOAD_GENERATOR_H_
#define ZERODB_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/rng.h"
#include "datagen/corpus.h"
#include "plan/query.h"

namespace zerodb::workload {

/// Query-shape knobs matching the paper's training workload description:
/// "up to five-way joins with up to five numerical and categorical
/// predicates and up to three aggregates".
struct WorkloadConfig {
  size_t min_tables = 1;
  size_t max_tables = 5;            ///< up to 5-way joins
  size_t min_predicates = 0;
  size_t max_predicates = 5;
  size_t max_aggregates = 3;
  double group_by_prob = 0.12;
  double or_predicate_prob = 0.08;  ///< chance a predicate is an OR of two leaves
  /// Probability a numeric predicate is a range (vs equality). JOB-light
  /// uses a low value ("rarely contain range predicates").
  double range_predicate_prob = 0.55;
  /// When true, the only aggregate is COUNT(*) (JOB-light style).
  bool count_star_only = false;
  /// When set, every query is a star join centered on this table
  /// (JOB-light style); tables are the hub plus 0..max_tables-1 satellites.
  std::optional<std::string> hub_table;
  /// Multi-table queries always get at least one predicate to bound
  /// intermediate results.
  bool force_predicate_on_joins = true;
};

/// Draws random valid queries against one database: a random walk over the
/// foreign-key join graph, literals sampled from live column data (so
/// selectivities span the full range), and random aggregates.
/// Deterministic in (env, config, seed).
class QueryGenerator {
 public:
  QueryGenerator(const datagen::DatabaseEnv* env, WorkloadConfig config,
                 uint64_t seed);

  /// Generates the next random query. Always valid against the database.
  plan::QuerySpec Next();

 private:
  /// Picks a literal for a predicate on the given column by sampling a live
  /// row (guarantees non-degenerate selectivity).
  double SampleLiteral(const storage::Table& table, size_t column_index);

  /// Builds one random leaf or OR-of-leaves predicate on the table; returns
  /// nullopt if the table has no usable attribute columns.
  std::optional<plan::Predicate> MakePredicate(const storage::Table& table);

  /// Attribute (non-key) column indexes of a table.
  std::vector<size_t> AttributeColumns(const storage::Table& table) const;

  /// Numeric column indexes (int64 or double, excluding keys).
  std::vector<size_t> NumericColumns(const storage::Table& table) const;

  const datagen::DatabaseEnv* env_;
  WorkloadConfig config_;
  Rng rng_;
};

}  // namespace zerodb::workload

#endif  // ZERODB_WORKLOAD_GENERATOR_H_
