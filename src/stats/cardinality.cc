#include "stats/cardinality.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace zerodb::stats {

CardinalityEstimator::CardinalityEstimator(const storage::Database* db,
                                           const DatabaseStats* stats)
    : db_(db), stats_(stats) {
  ZDB_CHECK(db != nullptr);
  ZDB_CHECK(stats != nullptr);
}

double CardinalityEstimator::LeafSelectivity(const std::string& table,
                                             size_t column_index,
                                             plan::CompareOp op,
                                             double literal) const {
  const ColumnStats& column = stats_->GetColumn(table, column_index);
  if (column.num_rows == 0) return 0.0;
  const double nd = std::max<double>(1.0, static_cast<double>(column.num_distinct));
  switch (op) {
    case plan::CompareOp::kEq:
      // Uniform-over-distinct assumption; skew makes this wrong, which is
      // intended (Postgres without MCVs behaves the same way).
      if (literal < column.min || literal > column.max) return 0.0;
      return 1.0 / nd;
    case plan::CompareOp::kNe:
      if (literal < column.min || literal > column.max) return 1.0;
      return 1.0 - 1.0 / nd;
    case plan::CompareOp::kLt:
      return column.histogram.SelectivityLe(literal) -
             LeafSelectivity(table, column_index, plan::CompareOp::kEq, literal);
    case plan::CompareOp::kLe:
      return column.histogram.SelectivityLe(literal);
    case plan::CompareOp::kGt:
      return 1.0 - column.histogram.SelectivityLe(literal);
    case plan::CompareOp::kGe:
      return 1.0 - column.histogram.SelectivityLe(literal) +
             LeafSelectivity(table, column_index, plan::CompareOp::kEq, literal);
  }
  ZDB_CHECK(false);
  return 0.0;
}

namespace {

double Clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

}  // namespace

double CardinalityEstimator::PredicateSelectivity(
    const std::string& table, const plan::Predicate& predicate) const {
  switch (predicate.kind()) {
    case plan::Predicate::Kind::kCompare:
      return Clamp01(LeafSelectivity(table, predicate.slot(), predicate.op(),
                                     predicate.literal()));
    case plan::Predicate::Kind::kAnd: {
      double selectivity = 1.0;
      for (const plan::Predicate& child : predicate.children()) {
        selectivity *= PredicateSelectivity(table, child);
      }
      return Clamp01(selectivity);
    }
    case plan::Predicate::Kind::kOr: {
      double not_selected = 1.0;
      for (const plan::Predicate& child : predicate.children()) {
        not_selected *= 1.0 - PredicateSelectivity(table, child);
      }
      return Clamp01(1.0 - not_selected);
    }
  }
  ZDB_CHECK(false);
  return 0.0;
}

double CardinalityEstimator::ScanCardinality(
    const std::string& table, const plan::Predicate* predicate) const {
  const TableStats& table_stats = stats_->GetTable(table);
  double cardinality = static_cast<double>(table_stats.num_rows);
  if (predicate != nullptr) {
    cardinality *= PredicateSelectivity(table, *predicate);
  }
  return std::max(cardinality, 1.0);
}

double CardinalityEstimator::JoinSelectivity(const std::string& left_table,
                                             size_t left_column,
                                             const std::string& right_table,
                                             size_t right_column) const {
  const ColumnStats& left = stats_->GetColumn(left_table, left_column);
  const ColumnStats& right = stats_->GetColumn(right_table, right_column);
  double nd = std::max({static_cast<double>(left.num_distinct),
                        static_cast<double>(right.num_distinct), 1.0});
  return 1.0 / nd;
}

double CardinalityEstimator::GroupCount(
    const std::vector<plan::GroupBySpec>& group_by,
    double input_cardinality) const {
  if (group_by.empty()) return 1.0;
  double combinations = 1.0;
  for (const plan::GroupBySpec& g : group_by) {
    const storage::Table* table = db_->FindTable(g.table);
    ZDB_CHECK(table != nullptr);
    auto column_index = table->schema().FindColumn(g.column);
    ZDB_CHECK(column_index.has_value());
    const ColumnStats& column = stats_->GetColumn(g.table, *column_index);
    combinations *= std::max<double>(1.0, static_cast<double>(column.num_distinct));
  }
  return std::max(1.0, std::min(combinations, input_cardinality));
}

}  // namespace zerodb::stats
