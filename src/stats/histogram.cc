#include "stats/histogram.h"

#include <algorithm>

#include "common/check.h"

namespace zerodb::stats {

EquiDepthHistogram EquiDepthHistogram::Build(std::vector<double> values,
                                             size_t num_buckets) {
  ZDB_CHECK_GT(num_buckets, 0u);
  EquiDepthHistogram histogram;
  histogram.row_count_ = static_cast<int64_t>(values.size());
  if (values.empty()) return histogram;
  std::sort(values.begin(), values.end());
  const size_t buckets = std::min(num_buckets, values.size());
  histogram.bounds_.reserve(buckets + 1);
  histogram.bounds_.push_back(values.front());
  for (size_t b = 1; b < buckets; ++b) {
    size_t index = b * values.size() / buckets;
    histogram.bounds_.push_back(values[index]);
  }
  histogram.bounds_.push_back(values.back());
  return histogram;
}

double EquiDepthHistogram::SelectivityLe(double x) const {
  if (empty() || bounds_.size() < 2) return 1.0;
  if (x < bounds_.front()) return 0.0;
  if (x >= bounds_.back()) return 1.0;
  const size_t buckets = bounds_.size() - 1;
  const double per_bucket = 1.0 / static_cast<double>(buckets);
  // Find the bucket containing x.
  auto it = std::upper_bound(bounds_.begin(), bounds_.end(), x);
  size_t bucket = static_cast<size_t>(it - bounds_.begin());
  bucket = bucket == 0 ? 0 : bucket - 1;
  bucket = std::min(bucket, buckets - 1);
  double lo = bounds_[bucket];
  double hi = bounds_[bucket + 1];
  double fraction = hi > lo ? (x - lo) / (hi - lo) : 1.0;
  fraction = std::clamp(fraction, 0.0, 1.0);
  return per_bucket * (static_cast<double>(bucket) + fraction);
}

double EquiDepthHistogram::SelectivityRange(double lo, double hi) const {
  if (empty()) return 0.0;
  if (lo > hi) return 0.0;
  double sel = SelectivityLe(hi) - SelectivityLe(lo);
  // Add back the mass at exactly `lo` for closed intervals: approximate a
  // point's mass by a small epsilon slice unless the interval is a point.
  double result = std::clamp(sel, 0.0, 1.0);
  return result;
}

}  // namespace zerodb::stats
