#include "stats/database_stats.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace zerodb::stats {

DatabaseStats DatabaseStats::Build(const storage::Database& db,
                                   size_t histogram_buckets) {
  DatabaseStats stats;
  for (const storage::Table& table : db.tables()) {
    TableStats table_stats;
    table_stats.table_name = table.name();
    table_stats.num_rows = static_cast<int64_t>(table.num_rows());
    table_stats.num_pages = table.NumPages();
    table_stats.row_width_bytes = table.RowWidthBytes();
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const storage::Column& column = table.column(c);
      ColumnStats column_stats;
      column_stats.num_rows = static_cast<int64_t>(column.size());
      std::vector<double> values(column.size());
      std::unordered_set<double> distinct;
      for (size_t row = 0; row < column.size(); ++row) {
        values[row] = column.GetNumeric(row);
        distinct.insert(values[row]);
      }
      column_stats.num_distinct = static_cast<int64_t>(distinct.size());
      if (!values.empty()) {
        auto [min_it, max_it] = std::minmax_element(values.begin(), values.end());
        column_stats.min = *min_it;
        column_stats.max = *max_it;
      }
      column_stats.histogram =
          EquiDepthHistogram::Build(std::move(values), histogram_buckets);
      table_stats.columns.push_back(std::move(column_stats));
    }
    stats.tables_.push_back(std::move(table_stats));
  }
  return stats;
}

const TableStats* DatabaseStats::FindTable(const std::string& name) const {
  for (const TableStats& table : tables_) {
    if (table.table_name == name) return &table;
  }
  return nullptr;
}

const TableStats& DatabaseStats::GetTable(const std::string& name) const {
  const TableStats* table = FindTable(name);
  ZDB_CHECK(table != nullptr) << "no stats for table " << name;
  return *table;
}

const ColumnStats& DatabaseStats::GetColumn(const std::string& table,
                                            size_t column_index) const {
  const TableStats& table_stats = GetTable(table);
  ZDB_CHECK_LT(column_index, table_stats.columns.size());
  return table_stats.columns[column_index];
}

}  // namespace zerodb::stats
