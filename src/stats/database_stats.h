#ifndef ZERODB_STATS_DATABASE_STATS_H_
#define ZERODB_STATS_DATABASE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "stats/histogram.h"
#include "storage/database.h"

namespace zerodb::stats {

/// Per-column statistics (the ANALYZE output of this engine).
struct ColumnStats {
  int64_t num_rows = 0;
  int64_t num_distinct = 0;
  double min = 0.0;
  double max = 0.0;
  EquiDepthHistogram histogram;
};

/// Per-table statistics.
struct TableStats {
  std::string table_name;
  int64_t num_rows = 0;
  int64_t num_pages = 0;
  int64_t row_width_bytes = 0;
  std::vector<ColumnStats> columns;
};

/// Statistics for every table of a database; built once after data load
/// (the "data-driven model" of the paper's separation of concerns — cheap,
/// derived from the data alone, no training queries).
class DatabaseStats {
 public:
  DatabaseStats() = default;

  /// Scans the database and builds all histograms / distinct counts.
  static DatabaseStats Build(const storage::Database& db,
                             size_t histogram_buckets = 64);

  const TableStats* FindTable(const std::string& name) const;
  const TableStats& GetTable(const std::string& name) const;
  const ColumnStats& GetColumn(const std::string& table,
                               size_t column_index) const;

  const std::vector<TableStats>& tables() const { return tables_; }

 private:
  std::vector<TableStats> tables_;
};

}  // namespace zerodb::stats

#endif  // ZERODB_STATS_DATABASE_STATS_H_
