#ifndef ZERODB_STATS_HISTOGRAM_H_
#define ZERODB_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "plan/expr.h"

namespace zerodb::stats {

/// Equi-depth (equal-frequency) histogram over a numeric column, like
/// Postgres' pg_stats histogram_bounds. Selectivity estimates interpolate
/// linearly inside buckets, which makes the estimates realistically
/// imperfect on skewed data — exactly the imperfection the paper's
/// "estimated cardinality" zero-shot variant has to live with.
class EquiDepthHistogram {
 public:
  EquiDepthHistogram() = default;

  /// Builds from (a copy of) the column values.
  static EquiDepthHistogram Build(std::vector<double> values,
                                  size_t num_buckets);

  bool empty() const { return row_count_ == 0; }
  int64_t row_count() const { return row_count_; }
  double min() const { return bounds_.empty() ? 0.0 : bounds_.front(); }
  double max() const { return bounds_.empty() ? 0.0 : bounds_.back(); }
  size_t num_buckets() const {
    return bounds_.empty() ? 0 : bounds_.size() - 1;
  }

  /// Estimated fraction of rows with value in [lo, hi] (inclusive).
  double SelectivityRange(double lo, double hi) const;

  /// Estimated fraction of rows with value <= x.
  double SelectivityLe(double x) const;

 private:
  std::vector<double> bounds_;  // num_buckets + 1 boundaries, ascending
  int64_t row_count_ = 0;
};

}  // namespace zerodb::stats

#endif  // ZERODB_STATS_HISTOGRAM_H_
