#ifndef ZERODB_STATS_CARDINALITY_H_
#define ZERODB_STATS_CARDINALITY_H_

#include <string>

#include "plan/expr.h"
#include "plan/query.h"
#include "stats/database_stats.h"
#include "storage/database.h"

namespace zerodb::stats {

/// Histogram-based cardinality estimator in the System-R / Postgres
/// tradition: per-leaf selectivities from histograms and distinct counts,
/// independence across predicates, and 1/max(nd_left, nd_right) for
/// equi-joins. Deliberately classical — these are the "estimated
/// cardinalities" fed to the zero-shot model's estimated-card variant and to
/// the optimizer's cost model, and their characteristic errors (correlation
/// blindness, skew smoothing) are part of the reproduction.
class CardinalityEstimator {
 public:
  CardinalityEstimator(const storage::Database* db, const DatabaseStats* stats);

  /// Selectivity of a single comparison leaf on a base-table column.
  double LeafSelectivity(const std::string& table, size_t column_index,
                         plan::CompareOp op, double literal) const;

  /// Selectivity of a predicate tree over a base table (AND: product,
  /// OR: inclusion-exclusion, independence everywhere).
  double PredicateSelectivity(const std::string& table,
                              const plan::Predicate& predicate) const;

  /// Estimated rows surviving a scan of `table` under `predicate`
  /// (nullptr = no predicate).
  double ScanCardinality(const std::string& table,
                         const plan::Predicate* predicate) const;

  /// Equi-join selectivity between two base columns: 1 / max(nd_l, nd_r).
  double JoinSelectivity(const std::string& left_table, size_t left_column,
                         const std::string& right_table,
                         size_t right_column) const;

  /// Estimated distinct groups for a group-by over the given base columns,
  /// capped by the input cardinality.
  double GroupCount(const std::vector<plan::GroupBySpec>& group_by,
                    double input_cardinality) const;

  const DatabaseStats& stats() const { return *stats_; }
  const storage::Database& db() const { return *db_; }

 private:
  const storage::Database* db_;
  const DatabaseStats* stats_;
};

}  // namespace zerodb::stats

#endif  // ZERODB_STATS_CARDINALITY_H_
