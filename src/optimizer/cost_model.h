#ifndef ZERODB_OPTIMIZER_COST_MODEL_H_
#define ZERODB_OPTIMIZER_COST_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace zerodb::optimizer {

/// Cost-model parameters in the Postgres tradition (arbitrary units where
/// one sequential page read costs 1.0). These drive plan *choice* and the
/// Scaled-Optimizer-Cost baseline; the learned models never see them.
struct CostParams {
  double seq_page_cost = 1.0;
  /// SSD-era setting (Postgres' 4.0 assumes spinning disks); also keeps the
  /// optimizer's index/seq break-even near the simulated machine's.
  double random_page_cost = 1.5;
  double cpu_tuple_cost = 0.01;
  double cpu_operator_cost = 0.0025;
  double cpu_index_tuple_cost = 0.005;
  double hash_build_cost_per_row = 0.02;
  double hash_probe_cost_per_row = 0.012;
  double sort_cost_per_compare = 0.004;
  double agg_cost_per_row = 0.015;
};

/// Analytical per-operator costs; all take estimated cardinalities.
class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(CostParams params) : params_(params) {}

  double SeqScanCost(int64_t pages, double rows, int64_t predicate_leaves,
                     double out_rows) const;
  double IndexScanCost(int64_t index_height, double matched_rows,
                       int64_t residual_leaves, double out_rows) const;
  double FilterCost(double in_rows, int64_t predicate_leaves,
                    double out_rows) const;
  double HashJoinCost(double build_rows, double probe_rows,
                      double out_rows) const;
  double NestedLoopJoinCost(double left_rows, double right_rows,
                            double out_rows) const;
  double IndexNLJoinCost(double outer_rows, int64_t index_height,
                         double matched_rows, int64_t residual_leaves,
                         double out_rows) const;
  double SortCost(double rows) const;
  double AggregateCost(double in_rows, size_t num_aggs,
                       double groups) const;

  const CostParams& params() const { return params_; }

 private:
  CostParams params_;
};

}  // namespace zerodb::optimizer

#endif  // ZERODB_OPTIMIZER_COST_MODEL_H_
