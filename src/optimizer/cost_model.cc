#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace zerodb::optimizer {

namespace {
double Log2Safe(double x) { return std::log2(std::max(x, 2.0)); }
}  // namespace

double CostModel::SeqScanCost(int64_t pages, double rows,
                              int64_t predicate_leaves,
                              double out_rows) const {
  return static_cast<double>(pages) * params_.seq_page_cost +
         rows * params_.cpu_tuple_cost +
         rows * static_cast<double>(predicate_leaves) *
             params_.cpu_operator_cost +
         out_rows * params_.cpu_tuple_cost;
}

double CostModel::IndexScanCost(int64_t index_height, double matched_rows,
                                int64_t residual_leaves,
                                double out_rows) const {
  return static_cast<double>(index_height) * params_.random_page_cost +
         matched_rows *
             (params_.random_page_cost + params_.cpu_index_tuple_cost) +
         matched_rows * static_cast<double>(residual_leaves) *
             params_.cpu_operator_cost +
         out_rows * params_.cpu_tuple_cost;
}

double CostModel::FilterCost(double in_rows, int64_t predicate_leaves,
                             double out_rows) const {
  return in_rows * static_cast<double>(predicate_leaves) *
             params_.cpu_operator_cost +
         out_rows * params_.cpu_tuple_cost;
}

double CostModel::HashJoinCost(double build_rows, double probe_rows,
                               double out_rows) const {
  return build_rows * params_.hash_build_cost_per_row +
         probe_rows * params_.hash_probe_cost_per_row +
         out_rows * params_.cpu_tuple_cost;
}

double CostModel::NestedLoopJoinCost(double left_rows, double right_rows,
                                     double out_rows) const {
  return left_rows * right_rows * params_.cpu_operator_cost +
         out_rows * params_.cpu_tuple_cost;
}

double CostModel::IndexNLJoinCost(double outer_rows, int64_t index_height,
                                  double matched_rows, int64_t residual_leaves,
                                  double out_rows) const {
  return outer_rows * static_cast<double>(index_height) *
             params_.random_page_cost * 0.25 +  // upper levels mostly cached
         matched_rows *
             (params_.random_page_cost + params_.cpu_index_tuple_cost) +
         matched_rows * static_cast<double>(residual_leaves) *
             params_.cpu_operator_cost +
         out_rows * params_.cpu_tuple_cost;
}

double CostModel::SortCost(double rows) const {
  return rows * Log2Safe(rows) * params_.sort_cost_per_compare;
}

double CostModel::AggregateCost(double in_rows, size_t num_aggs,
                                double groups) const {
  return in_rows * params_.agg_cost_per_row *
             std::max<double>(1.0, static_cast<double>(num_aggs)) +
         groups * params_.cpu_tuple_cost;
}

}  // namespace zerodb::optimizer
