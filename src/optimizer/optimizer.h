#ifndef ZERODB_OPTIMIZER_OPTIMIZER_H_
#define ZERODB_OPTIMIZER_OPTIMIZER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "optimizer/cost_model.h"
#include "plan/physical.h"
#include "plan/query.h"
#include "stats/cardinality.h"
#include "stats/database_stats.h"
#include "storage/database.h"

namespace zerodb::optimizer {

/// A hypothetical ("what-if") index the planner may use even though it does
/// not exist in storage. Plans using one can be featurized and fed to the
/// zero-shot cost model but not executed — that is the paper's What-If mode.
struct HypotheticalIndex {
  std::string table;
  size_t column_index = 0;
};

struct PlannerOptions {
  /// Indexes to treat as existing in addition to the real ones.
  std::vector<HypotheticalIndex> hypothetical_indexes;
  /// When false, scans never use indexes (forces SeqScan-only plans).
  bool enable_index_scan = true;
  /// When false, joins never use IndexNLJoin.
  bool enable_index_nl_join = true;
  /// Rows below which NestedLoopJoin is considered.
  double nlj_row_threshold = 64.0;
};

/// Cost-based query planner: access-path selection per table, then
/// Selinger-style dynamic programming over connected subsets of the join
/// graph, then the aggregation operator on top. Every emitted node is
/// annotated with the estimated cardinality and cumulative estimated cost;
/// the root's est_cost is the "optimizer cost" used by the Scaled Optimizer
/// Cost baseline.
class Planner {
 public:
  Planner(const storage::Database* db, const stats::DatabaseStats* stats,
          CostParams cost_params = CostParams(),
          PlannerOptions options = PlannerOptions());

  /// Plans the query; fails on invalid specs or > 12 tables (DP limit).
  StatusOr<plan::PhysicalPlan> Plan(const plan::QuerySpec& query) const;

  const CostModel& cost_model() const { return cost_model_; }

 private:
  struct AccessPath {
    std::unique_ptr<plan::PhysicalNode> node;
    double cardinality = 0.0;
    double cost = 0.0;
  };

  /// Best access path for one table under its pushed-down predicate.
  AccessPath PlanScan(const std::string& table,
                      const plan::Predicate* predicate) const;

  /// True if an index (real or hypothetical) exists on table.column.
  bool HasIndex(const std::string& table, size_t column_index) const;

  /// Estimated B-tree height for an index on the table (real or assumed).
  int64_t IndexHeight(const std::string& table) const;

  const storage::Database* db_;
  const stats::DatabaseStats* stats_;
  stats::CardinalityEstimator estimator_;
  CostModel cost_model_;
  PlannerOptions options_;

  // Planning telemetry, cached from the global MetricsRegistry (no-ops
  // while it is disabled): plans produced, DP join candidates considered /
  // rejected, and planning latency.
  obs::Counter* plans_planned_;
  obs::Counter* join_candidates_;
  obs::Counter* join_candidates_pruned_;
  obs::Histogram* plan_us_;
};

/// Finds the slot of (table, column_index) in an output schema; CHECK-fails
/// if absent (planner invariant).
size_t FindSlot(const std::vector<plan::OutputColumn>& schema,
                const std::string& table, size_t column_index);

}  // namespace zerodb::optimizer

#endif  // ZERODB_OPTIMIZER_OPTIMIZER_H_
