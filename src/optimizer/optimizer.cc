#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "plan/validate.h"

namespace zerodb::optimizer {

namespace {

using plan::PhysicalNode;
using plan::PhysicalPlan;
using plan::Predicate;
using plan::QuerySpec;

// Inclusive key range extracted from predicate leaves on one column.
struct KeyRange {
  std::optional<double> lo;
  std::optional<double> hi;

  void Narrow(plan::CompareOp op, double literal) {
    switch (op) {
      case plan::CompareOp::kEq:
        lo = lo.has_value() ? std::max(*lo, literal) : literal;
        hi = hi.has_value() ? std::min(*hi, literal) : literal;
        break;
      case plan::CompareOp::kLe:
      case plan::CompareOp::kLt:  // open bound approximated as closed; the
                                  // residual predicate restores exactness
        hi = hi.has_value() ? std::min(*hi, literal) : literal;
        break;
      case plan::CompareOp::kGe:
      case plan::CompareOp::kGt:
        lo = lo.has_value() ? std::max(*lo, literal) : literal;
        break;
      case plan::CompareOp::kNe:
        break;  // not sargable
    }
  }
};

}  // namespace

size_t FindSlot(const std::vector<plan::OutputColumn>& schema,
                const std::string& table, size_t column_index) {
  for (size_t slot = 0; slot < schema.size(); ++slot) {
    if (!schema[slot].synthetic && schema[slot].table == table &&
        schema[slot].column_index == column_index) {
      return slot;
    }
  }
  ZDB_CHECK(false) << "slot for " << table << "." << column_index
                   << " not found in schema";
  return 0;
}

Planner::Planner(const storage::Database* db,
                 const stats::DatabaseStats* stats, CostParams cost_params,
                 PlannerOptions options)
    : db_(db),
      stats_(stats),
      estimator_(db, stats),
      cost_model_(cost_params),
      options_(std::move(options)) {
  ZDB_CHECK(db != nullptr);
  ZDB_CHECK(stats != nullptr);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  plans_planned_ = registry.GetCounter("optimizer.plans");
  join_candidates_ = registry.GetCounter("optimizer.join_candidates");
  join_candidates_pruned_ =
      registry.GetCounter("optimizer.join_candidates_pruned");
  plan_us_ = registry.GetHistogram("optimizer.plan_us");
}

bool Planner::HasIndex(const std::string& table, size_t column_index) const {
  if (db_->FindIndex(table, column_index) != nullptr) return true;
  for (const HypotheticalIndex& hypo : options_.hypothetical_indexes) {
    if (hypo.table == table && hypo.column_index == column_index) return true;
  }
  return false;
}

int64_t Planner::IndexHeight(const std::string& table) const {
  const stats::TableStats& table_stats = stats_->GetTable(table);
  double rows = std::max<double>(2.0, static_cast<double>(table_stats.num_rows));
  return std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(std::log(rows) / std::log(256.0))));
}

Planner::AccessPath Planner::PlanScan(const std::string& table,
                                      const Predicate* predicate) const {
  const stats::TableStats& table_stats = stats_->GetTable(table);
  const double out_rows = estimator_.ScanCardinality(table, predicate);
  const int64_t leaves =
      predicate != nullptr ? static_cast<int64_t>(predicate->NumComparisons())
                           : 0;

  AccessPath best;
  best.cardinality = out_rows;
  best.cost = cost_model_.SeqScanCost(table_stats.num_pages,
                                      static_cast<double>(table_stats.num_rows),
                                      leaves, out_rows);
  std::optional<Predicate> seq_predicate;
  if (predicate != nullptr) seq_predicate = *predicate;
  best.node = plan::MakeSeqScan(table, seq_predicate);

  if (predicate != nullptr && options_.enable_index_scan) {
    // Collect sargable ranges per indexed column from top-level AND leaves.
    std::vector<const Predicate*> conjuncts;
    if (predicate->kind() == Predicate::Kind::kAnd) {
      for (const Predicate& child : predicate->children()) {
        if (child.kind() == Predicate::Kind::kCompare) {
          conjuncts.push_back(&child);
        }
      }
    } else if (predicate->kind() == Predicate::Kind::kCompare) {
      conjuncts.push_back(predicate);
    }
    std::vector<std::pair<size_t, KeyRange>> ranges;  // column -> range
    for (const Predicate* leaf : conjuncts) {
      if (!HasIndex(table, leaf->slot())) continue;
      auto it = std::find_if(ranges.begin(), ranges.end(),
                             [&](const auto& r) { return r.first == leaf->slot(); });
      if (it == ranges.end()) {
        ranges.emplace_back(leaf->slot(), KeyRange());
        it = ranges.end() - 1;
      }
      it->second.Narrow(leaf->op(), leaf->literal());
    }
    for (const auto& [column_index, range] : ranges) {
      if (!range.lo.has_value() && !range.hi.has_value()) continue;
      const stats::ColumnStats& column_stats =
          stats_->GetColumn(table, column_index);
      double match_fraction;
      if (range.lo.has_value() && range.hi.has_value() &&
          *range.lo == *range.hi) {
        match_fraction = estimator_.LeafSelectivity(
            table, column_index, plan::CompareOp::kEq, *range.lo);
      } else {
        double lo = range.lo.value_or(column_stats.min);
        double hi = range.hi.value_or(column_stats.max);
        match_fraction = column_stats.histogram.SelectivityRange(lo, hi);
      }
      double matched =
          std::max(1.0, match_fraction * static_cast<double>(table_stats.num_rows));
      double cost = cost_model_.IndexScanCost(IndexHeight(table), matched,
                                              leaves, out_rows);
      if (cost < best.cost) {
        best.cost = cost;
        best.cardinality = out_rows;
        best.node = plan::MakeIndexScan(table, column_index, range.lo,
                                        range.hi, *predicate);
      }
    }
  }

  best.node->est_cardinality = best.cardinality;
  best.node->est_cost = best.cost;
  return best;
}

StatusOr<PhysicalPlan> Planner::Plan(const QuerySpec& query) const {
  plans_planned_->Add(1);
  obs::ScopedTimer timer(
      obs::MetricsRegistry::Global().enabled() ? plan_us_ : nullptr);
  ZDB_RETURN_NOT_OK(query.Validate(*db_));
  const size_t num_tables = query.tables.size();
  if (num_tables > 12) {
    return Status::InvalidArgument("DP planner supports at most 12 tables");
  }
  if (num_tables > 1 && query.joins.size() != num_tables - 1) {
    return Status::InvalidArgument(
        "join graph must be a tree (n-1 equi-join edges)");
  }

  auto table_index = [&](const std::string& name) {
    for (size_t i = 0; i < num_tables; ++i) {
      if (query.tables[i] == name) return i;
    }
    ZDB_CHECK(false);
    return size_t{0};
  };

  // Merge per-table predicates.
  std::vector<std::optional<Predicate>> predicates(num_tables);
  for (const plan::FilterSpec& filter : query.filters) {
    size_t t = table_index(filter.table);
    if (predicates[t].has_value()) {
      std::vector<Predicate> both = {*predicates[t], filter.predicate};
      predicates[t] = Predicate::And(std::move(both));
    } else {
      predicates[t] = filter.predicate;
    }
  }

  // Resolved join edges.
  struct Edge {
    size_t left_table;
    size_t left_column;
    size_t right_table;
    size_t right_column;
    double selectivity;
  };
  std::vector<Edge> edges;
  for (const plan::JoinSpec& join : query.joins) {
    Edge edge;
    edge.left_table = table_index(join.left_table);
    edge.right_table = table_index(join.right_table);
    const storage::Table* left = db_->FindTable(join.left_table);
    const storage::Table* right = db_->FindTable(join.right_table);
    edge.left_column = *left->schema().FindColumn(join.left_column);
    edge.right_column = *right->schema().FindColumn(join.right_column);
    edge.selectivity = estimator_.JoinSelectivity(
        join.left_table, edge.left_column, join.right_table, edge.right_column);
    edges.push_back(edge);
  }

  // Base access paths.
  std::vector<AccessPath> base(num_tables);
  for (size_t t = 0; t < num_tables; ++t) {
    base[t] = PlanScan(query.tables[t],
                       predicates[t].has_value() ? &*predicates[t] : nullptr);
  }

  // Estimated cardinality of a table subset: product of base cardinalities
  // times the selectivity of internal join edges.
  const size_t full_mask = (size_t{1} << num_tables) - 1;
  auto subset_card = [&](size_t mask) {
    double card = 1.0;
    for (size_t t = 0; t < num_tables; ++t) {
      if (mask & (size_t{1} << t)) card *= base[t].cardinality;
    }
    for (const Edge& edge : edges) {
      if ((mask & (size_t{1} << edge.left_table)) &&
          (mask & (size_t{1} << edge.right_table))) {
        card *= edge.selectivity;
      }
    }
    return std::max(card, 1.0);
  };

  struct DpEntry {
    std::unique_ptr<PhysicalNode> node;
    double cost = std::numeric_limits<double>::infinity();
    bool valid = false;
  };
  std::vector<DpEntry> dp(full_mask + 1);
  for (size_t t = 0; t < num_tables; ++t) {
    size_t mask = size_t{1} << t;
    dp[mask].node = base[t].node->Clone();
    dp[mask].cost = base[t].cost;
    dp[mask].valid = true;
  }

  for (size_t mask = 1; mask <= full_mask; ++mask) {
    if (__builtin_popcountll(mask) < 2) continue;
    const double out_card = subset_card(mask);
    for (size_t sub = (mask - 1) & mask; sub != 0; sub = (sub - 1) & mask) {
      const size_t rest = mask ^ sub;
      if (!dp[sub].valid || !dp[rest].valid) continue;
      // Find the crossing edge (tree join graph => at most one).
      const Edge* crossing = nullptr;
      bool sub_has_left = false;
      for (const Edge& edge : edges) {
        bool left_in_sub = (sub >> edge.left_table) & 1;
        bool right_in_sub = (sub >> edge.right_table) & 1;
        bool left_in_rest = (rest >> edge.left_table) & 1;
        bool right_in_rest = (rest >> edge.right_table) & 1;
        if ((left_in_sub && right_in_rest) || (right_in_sub && left_in_rest)) {
          crossing = &edge;
          sub_has_left = left_in_sub;
          break;
        }
      }
      if (crossing == nullptr) continue;  // would be a cross product

      const double sub_card = subset_card(sub);
      const double rest_card = subset_card(rest);
      const std::string& sub_table = query.tables[sub_has_left
                                                      ? crossing->left_table
                                                      : crossing->right_table];
      const size_t sub_column =
          sub_has_left ? crossing->left_column : crossing->right_column;
      const std::string& rest_table = query.tables[sub_has_left
                                                       ? crossing->right_table
                                                       : crossing->left_table];
      const size_t rest_column =
          sub_has_left ? crossing->right_column : crossing->left_column;

      // Tallies one DP join candidate; rejected ones count as pruned.
      auto consider = [&](double total) {
        join_candidates_->Add(1);
        bool accepted = total < dp[mask].cost;
        if (!accepted) join_candidates_pruned_->Add(1);
        return accepted;
      };

      // Candidate 1: hash join, build = sub side, probe = rest side.
      {
        double step = cost_model_.HashJoinCost(sub_card, rest_card, out_card);
        double total = dp[sub].cost + dp[rest].cost + step;
        if (consider(total)) {
          auto left = dp[sub].node->Clone();
          auto right = dp[rest].node->Clone();
          size_t left_slot =
              FindSlot(left->OutputSchema(*db_), sub_table, sub_column);
          size_t right_slot =
              FindSlot(right->OutputSchema(*db_), rest_table, rest_column);
          auto node = plan::MakeHashJoin(std::move(left), std::move(right),
                                         left_slot, right_slot);
          node->est_cardinality = out_card;
          node->est_cost = total;
          dp[mask].node = std::move(node);
          dp[mask].cost = total;
          dp[mask].valid = true;
        }
      }

      // Candidate 2: nested loop join for tiny inputs.
      if (sub_card <= options_.nlj_row_threshold &&
          rest_card <= options_.nlj_row_threshold) {
        double step =
            cost_model_.NestedLoopJoinCost(sub_card, rest_card, out_card);
        double total = dp[sub].cost + dp[rest].cost + step;
        if (consider(total)) {
          auto left = dp[sub].node->Clone();
          auto right = dp[rest].node->Clone();
          size_t left_slot =
              FindSlot(left->OutputSchema(*db_), sub_table, sub_column);
          size_t right_slot =
              FindSlot(right->OutputSchema(*db_), rest_table, rest_column);
          auto node = plan::MakeNestedLoopJoin(std::move(left), std::move(right),
                                               left_slot, right_slot);
          node->est_cardinality = out_card;
          node->est_cost = total;
          dp[mask].node = std::move(node);
          dp[mask].cost = total;
          dp[mask].valid = true;
        }
      }

      // Candidate 3: index nested loop join when the rest side is a single
      // base table with an index on its join column.
      if (options_.enable_index_nl_join &&
          __builtin_popcountll(rest) == 1 &&
          HasIndex(rest_table, rest_column)) {
        const stats::TableStats& inner_stats = stats_->GetTable(rest_table);
        size_t rest_t = sub_has_left ? crossing->right_table
                                     : crossing->left_table;
        const Predicate* inner_predicate =
            predicates[rest_t].has_value() ? &*predicates[rest_t] : nullptr;
        int64_t residual_leaves =
            inner_predicate != nullptr
                ? static_cast<int64_t>(inner_predicate->NumComparisons())
                : 0;
        // Matches before the residual: outer rows * per-probe fanout.
        double matched = sub_card * crossing->selectivity *
                         static_cast<double>(inner_stats.num_rows);
        double step = cost_model_.IndexNLJoinCost(
            sub_card, IndexHeight(rest_table), matched, residual_leaves,
            out_card);
        double total = dp[sub].cost + step;  // inner scan cost not paid
        if (consider(total)) {
          auto outer = dp[sub].node->Clone();
          size_t outer_slot =
              FindSlot(outer->OutputSchema(*db_), sub_table, sub_column);
          std::optional<Predicate> residual;
          if (inner_predicate != nullptr) residual = *inner_predicate;
          auto node = plan::MakeIndexNLJoin(std::move(outer), rest_table,
                                            outer_slot, rest_column, residual);
          node->est_cardinality = out_card;
          node->est_cost = total;
          dp[mask].node = std::move(node);
          dp[mask].cost = total;
          dp[mask].valid = true;
        }
      }
    }
  }

  if (!dp[full_mask].valid) {
    return Status::Internal("planner failed to join all tables");
  }
  std::unique_ptr<PhysicalNode> root = std::move(dp[full_mask].node);
  double total_cost = dp[full_mask].cost;
  double current_card = subset_card(full_mask);

  // Aggregation on top.
  if (!query.aggregates.empty() || !query.group_by.empty()) {
    std::vector<plan::OutputColumn> schema = root->OutputSchema(*db_);
    std::vector<plan::AggregateExpr> aggs;
    for (const plan::AggregateSpec& agg : query.aggregates) {
      plan::AggregateExpr expr;
      expr.func = agg.func;
      if (!agg.table.empty()) {
        const storage::Table* table = db_->FindTable(agg.table);
        expr.input_slot =
            FindSlot(schema, agg.table, *table->schema().FindColumn(agg.column));
      }
      aggs.push_back(expr);
    }
    if (query.group_by.empty()) {
      double step = cost_model_.AggregateCost(current_card, aggs.size(), 1.0);
      total_cost += step;
      root = plan::MakeSimpleAggregate(std::move(root), std::move(aggs));
      root->est_cardinality = 1.0;
      root->est_cost = total_cost;
      current_card = 1.0;
    } else {
      std::vector<size_t> group_slots;
      for (const plan::GroupBySpec& g : query.group_by) {
        const storage::Table* table = db_->FindTable(g.table);
        group_slots.push_back(
            FindSlot(schema, g.table, *table->schema().FindColumn(g.column)));
      }
      double groups = estimator_.GroupCount(query.group_by, current_card);
      double step = cost_model_.AggregateCost(current_card, aggs.size(), groups);
      total_cost += step;
      root = plan::MakeHashAggregate(std::move(root), std::move(group_slots),
                                     std::move(aggs));
      root->est_cardinality = groups;
      root->est_cost = total_cost;
      current_card = groups;
    }
  }

  // Emission gate: every plan the optimizer hands out satisfies the schema,
  // typing and cardinality invariants (debug builds abort on violation).
  ZDB_DCHECK_OK(plan::ValidatePlan(*root, *db_));
  return PhysicalPlan(std::move(root));
}

}  // namespace zerodb::optimizer
