#ifndef ZERODB_EXEC_EXECUTOR_H_
#define ZERODB_EXEC_EXECUTOR_H_

#include <cstdint>
#include <unordered_map>

#include "common/status.h"
#include "exec/batch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/physical.h"
#include "storage/database.h"

namespace zerodb::exec {

/// Result of executing a plan: the final batch plus per-node work counters.
struct ExecutionResult {
  RowBatch output;
  std::unordered_map<const plan::PhysicalNode*, OperatorStats> stats;

  const OperatorStats& StatsFor(const plan::PhysicalNode& node) const;
};

/// Options guarding runaway queries (the random workload generator can in
/// principle produce large join outputs; such queries are rejected and the
/// collector draws a replacement).
struct ExecutorOptions {
  int64_t max_intermediate_rows = 2'000'000;
  /// When set, every executed plan records a span tree mirroring the plan:
  /// one span per operator carrying wall time plus its OperatorStats.
  obs::QueryTracer* tracer = nullptr;
  /// Registry for executor counters/latency histograms; nullptr = the
  /// process-global registry (disabled by default, so the only cost is a
  /// branch per operator).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Executes physical plans against an in-memory database. Operators
/// materialize their outputs column-at-a-time; every operator also records
/// OperatorStats and writes its true output cardinality into the plan node
/// (`true_cardinality`), which is how "exact cardinality" featurization gets
/// its inputs.
///
/// Thread-compatible, not thread-safe (DESIGN.md "Concurrency discipline"):
/// one Executor serves one thread at a time — Execute mutates the plan in
/// place and the options' tracer is thread-confined. Distinct Executor
/// instances over the same (immutable) Database are safe concurrently: the
/// shared MetricsRegistry is internally synchronized and the cached metric
/// pointers below are written only in the constructor. A future parallel
/// executor parallelizes *within* Execute (operator trees), keeping this
/// external contract.
class Executor {
 public:
  explicit Executor(const storage::Database* db,
                    ExecutorOptions options = ExecutorOptions());

  /// Executes the plan. The plan is annotated in place.
  StatusOr<ExecutionResult> Execute(plan::PhysicalPlan* plan);

 private:
  StatusOr<RowBatch> ExecuteNode(plan::PhysicalNode* node,
                                 ExecutionResult* result);

  StatusOr<RowBatch> ExecSeqScan(plan::PhysicalNode* node, OperatorStats* s);
  StatusOr<RowBatch> ExecIndexScan(plan::PhysicalNode* node, OperatorStats* s);
  StatusOr<RowBatch> ExecFilter(plan::PhysicalNode* node, RowBatch child,
                                OperatorStats* s);
  StatusOr<RowBatch> ExecHashJoin(plan::PhysicalNode* node, RowBatch left,
                                  RowBatch right, OperatorStats* s);
  StatusOr<RowBatch> ExecNestedLoopJoin(plan::PhysicalNode* node,
                                        RowBatch left, RowBatch right,
                                        OperatorStats* s);
  StatusOr<RowBatch> ExecIndexNLJoin(plan::PhysicalNode* node, RowBatch outer,
                                     OperatorStats* s);
  StatusOr<RowBatch> ExecSort(plan::PhysicalNode* node, RowBatch child,
                              OperatorStats* s);
  StatusOr<RowBatch> ExecAggregate(plan::PhysicalNode* node, RowBatch child,
                                   OperatorStats* s);

  const storage::Database* db_;
  ExecutorOptions options_;

  // Cached registry metrics (owned by the registry; see ExecutorOptions).
  obs::MetricsRegistry* registry_;
  obs::Counter* queries_executed_;
  obs::Counter* operators_executed_;
  obs::Counter* rows_produced_;
  obs::Histogram* operator_us_;
  obs::Histogram* query_us_;
};

}  // namespace zerodb::exec

#endif  // ZERODB_EXEC_EXECUTOR_H_
