#include "exec/executor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "common/check.h"
#include "obs/trace_event.h"
#include "plan/validate.h"

namespace zerodb::exec {

namespace {

using plan::PhysicalNode;
using plan::PhysicalOpType;

// Extracts one base-table column as doubles.
std::vector<double> MaterializeColumn(const storage::Table& table,
                                      size_t column_index) {
  const storage::Column& column = table.column(column_index);
  const size_t n = column.size();
  std::vector<double> data(n);
  if (column.type() == catalog::DataType::kDouble) {
    const auto& raw = column.doubles();
    std::copy(raw.begin(), raw.end(), data.begin());
  } else {
    const auto& raw = column.ints();
    for (size_t i = 0; i < n; ++i) data[i] = static_cast<double>(raw[i]);
  }
  return data;
}

// Gathers selected rows of a full column.
std::vector<double> GatherColumn(const std::vector<double>& column,
                                 const std::vector<uint32_t>& row_ids) {
  std::vector<double> out;
  out.reserve(row_ids.size());
  for (uint32_t row : row_ids) out.push_back(column[row]);
  return out;
}

// Builds the schema entries for all columns of a table.
std::vector<plan::OutputColumn> TableSchemaColumns(const storage::Table& table) {
  std::vector<plan::OutputColumn> schema;
  schema.reserve(table.num_columns());
  for (size_t i = 0; i < table.num_columns(); ++i) {
    schema.push_back(plan::OutputColumn{table.name(), i, false});
  }
  return schema;
}

// Evaluates a predicate over a table row by filling only referenced slots.
class TablePredicateEvaluator {
 public:
  TablePredicateEvaluator(const storage::Table& table,
                          const plan::Predicate& predicate)
      : predicate_(predicate), row_(table.num_columns(), 0.0) {
    for (size_t slot : predicate.ReferencedSlots()) {
      referenced_.emplace_back(slot, MaterializeColumn(table, slot));
    }
    leaves_ = static_cast<int64_t>(predicate.NumComparisons());
  }

  bool Matches(size_t row) {
    for (auto& [slot, data] : referenced_) row_[slot] = data[row];
    return predicate_.Evaluate(row_);
  }

  int64_t leaves() const { return leaves_; }

 private:
  // Borrowed from the PhysicalPlan being executed, which strictly outlives
  // this per-scan evaluator (both live inside one Execute call).
  const plan::Predicate& predicate_;  // zerodb-lint: allow(lifetime-member)
  std::vector<std::pair<size_t, std::vector<double>>> referenced_;
  std::vector<double> row_;
  int64_t leaves_ = 0;
};

struct DoubleHash {
  size_t operator()(double v) const {
    // Canonicalize -0.0 so it hashes like +0.0 (they compare equal).
    if (v == 0.0) v = 0.0;
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return std::hash<uint64_t>()(bits);
  }
};

}  // namespace

// Mirrors every work counter of one operator onto its trace span.
void AttachStats(obs::SpanScope* span, const OperatorStats& stats) {
  span->AddAttribute("input_rows_left", static_cast<double>(stats.input_rows_left));
  span->AddAttribute("input_rows_right", static_cast<double>(stats.input_rows_right));
  span->AddAttribute("output_rows", static_cast<double>(stats.output_rows));
  span->AddAttribute("rows_scanned", static_cast<double>(stats.rows_scanned));
  span->AddAttribute("pages_read", static_cast<double>(stats.pages_read));
  span->AddAttribute("index_probes", static_cast<double>(stats.index_probes));
  span->AddAttribute("index_entries", static_cast<double>(stats.index_entries));
  span->AddAttribute("predicate_evals", static_cast<double>(stats.predicate_evals));
  span->AddAttribute("hash_build_rows", static_cast<double>(stats.hash_build_rows));
  span->AddAttribute("hash_probe_rows", static_cast<double>(stats.hash_probe_rows));
  span->AddAttribute("sort_rows", static_cast<double>(stats.sort_rows));
  span->AddAttribute("group_count", static_cast<double>(stats.group_count));
  span->AddAttribute("output_bytes", static_cast<double>(stats.output_bytes));
}

const OperatorStats& ExecutionResult::StatsFor(
    const plan::PhysicalNode& node) const {
  auto it = stats.find(&node);
  ZDB_CHECK(it != stats.end()) << "no stats recorded for node";
  return it->second;
}

Executor::Executor(const storage::Database* db, ExecutorOptions options)
    : db_(db), options_(options) {
  ZDB_CHECK(db != nullptr);
  registry_ = options_.metrics != nullptr ? options_.metrics
                                          : &obs::MetricsRegistry::Global();
  queries_executed_ = registry_->GetCounter("exec.queries");
  operators_executed_ = registry_->GetCounter("exec.operators");
  rows_produced_ = registry_->GetCounter("exec.rows_produced");
  operator_us_ = registry_->GetHistogram("exec.operator_us");
  query_us_ = registry_->GetHistogram("exec.query_us");
}

StatusOr<ExecutionResult> Executor::Execute(plan::PhysicalPlan* plan) {
  ZDB_CHECK(plan != nullptr && plan->root != nullptr);
  // Open-path invariant gate: schemas, slot references and expression types
  // must be consistent before any operator touches data.
  ZDB_DCHECK_OK(plan::ValidatePlan(*plan->root, *db_));
  queries_executed_->Add(1);
  obs::ScopedTimer timer(registry_->enabled() ? query_us_ : nullptr);
  ExecutionResult result;
  ZDB_ASSIGN_OR_RETURN(result.output, ExecuteNode(plan->root.get(), &result));
  // Post-condition: the true cardinalities just recorded must respect the
  // relational bounds (filters shrink, sorts preserve, joins stay under the
  // cross product), so every query execution doubles as a verification run.
  ZDB_DCHECK_OK(plan::ValidatePlan(*plan->root, *db_));
  return result;
}

StatusOr<RowBatch> Executor::ExecuteNode(PhysicalNode* node,
                                         ExecutionResult* result) {
  // The span opens before the child recursion in the switch, so child spans
  // nest underneath; span and histogram time covers the whole subtree.
  obs::SpanScope span(options_.tracer, plan::PhysicalOpName(node->type));
  obs::TimelineScope timeline(plan::PhysicalOpName(node->type), "exec");
  obs::ScopedTimer timer(registry_->enabled() ? operator_us_ : nullptr);
  OperatorStats stats;
  StatusOr<RowBatch> batch_or = [&]() -> StatusOr<RowBatch> {
    switch (node->type) {
      case PhysicalOpType::kSeqScan:
        return ExecSeqScan(node, &stats);
      case PhysicalOpType::kIndexScan:
        return ExecIndexScan(node, &stats);
      case PhysicalOpType::kFilter: {
        ZDB_ASSIGN_OR_RETURN(RowBatch child,
                             ExecuteNode(node->children[0].get(), result));
        return ExecFilter(node, std::move(child), &stats);
      }
      case PhysicalOpType::kHashJoin: {
        ZDB_ASSIGN_OR_RETURN(RowBatch left,
                             ExecuteNode(node->children[0].get(), result));
        ZDB_ASSIGN_OR_RETURN(RowBatch right,
                             ExecuteNode(node->children[1].get(), result));
        return ExecHashJoin(node, std::move(left), std::move(right), &stats);
      }
      case PhysicalOpType::kNestedLoopJoin: {
        ZDB_ASSIGN_OR_RETURN(RowBatch left,
                             ExecuteNode(node->children[0].get(), result));
        ZDB_ASSIGN_OR_RETURN(RowBatch right,
                             ExecuteNode(node->children[1].get(), result));
        return ExecNestedLoopJoin(node, std::move(left), std::move(right),
                                  &stats);
      }
      case PhysicalOpType::kIndexNLJoin: {
        ZDB_ASSIGN_OR_RETURN(RowBatch outer,
                             ExecuteNode(node->children[0].get(), result));
        return ExecIndexNLJoin(node, std::move(outer), &stats);
      }
      case PhysicalOpType::kSort: {
        ZDB_ASSIGN_OR_RETURN(RowBatch child,
                             ExecuteNode(node->children[0].get(), result));
        return ExecSort(node, std::move(child), &stats);
      }
      case PhysicalOpType::kHashAggregate:
      case PhysicalOpType::kSimpleAggregate: {
        ZDB_ASSIGN_OR_RETURN(RowBatch child,
                             ExecuteNode(node->children[0].get(), result));
        return ExecAggregate(node, std::move(child), &stats);
      }
    }
    return Status::Internal("unknown operator");
  }();
  if (!batch_or.ok()) return batch_or.status();
  RowBatch batch = std::move(batch_or).value();

  if (static_cast<int64_t>(batch.num_rows()) > options_.max_intermediate_rows) {
    return Status::OutOfRange("intermediate result exceeds row cap");
  }
  stats.output_rows = static_cast<int64_t>(batch.num_rows());
  stats.output_bytes = stats.output_rows * node->OutputWidthBytes(*db_);
  node->true_cardinality = static_cast<double>(stats.output_rows);
  result->stats[node] = stats;
  operators_executed_->Add(1);
  rows_produced_->Add(stats.output_rows);
  if (span.active()) {
    if (!node->table_name.empty()) span.SetDetail(node->table_name);
    span.AddAttribute("est_cardinality", node->est_cardinality);
    AttachStats(&span, stats);
  }
  return batch;
}

StatusOr<RowBatch> Executor::ExecSeqScan(PhysicalNode* node,
                                         OperatorStats* s) {
  ZDB_ASSIGN_OR_RETURN(const storage::Table* table,
                       db_->GetTable(node->table_name));
  const size_t n = table->num_rows();
  s->rows_scanned = static_cast<int64_t>(n);
  s->input_rows_left = static_cast<int64_t>(n);
  s->pages_read = table->NumPages();

  std::vector<uint32_t> selected;
  if (node->predicate.has_value()) {
    TablePredicateEvaluator evaluator(*table, *node->predicate);
    s->predicate_evals = evaluator.leaves() * static_cast<int64_t>(n);
    selected.reserve(n);  // worst case: every row matches
    for (size_t row = 0; row < n; ++row) {
      if (evaluator.Matches(row)) selected.push_back(static_cast<uint32_t>(row));
    }
  } else {
    selected.resize(n);
    std::iota(selected.begin(), selected.end(), 0u);
  }

  RowBatch batch;
  batch.schema = TableSchemaColumns(*table);
  batch.columns.reserve(table->num_columns());
  for (size_t c = 0; c < table->num_columns(); ++c) {
    std::vector<double> full = MaterializeColumn(*table, c);
    batch.columns.push_back(GatherColumn(full, selected));
  }
  return batch;
}

StatusOr<RowBatch> Executor::ExecIndexScan(PhysicalNode* node,
                                           OperatorStats* s) {
  ZDB_ASSIGN_OR_RETURN(const storage::Table* table,
                       db_->GetTable(node->table_name));
  const storage::OrderedIndex* index =
      db_->FindIndex(node->table_name, node->index_column);
  if (index == nullptr) {
    return Status::NotFound("no index on " + node->table_name);
  }
  const double lo = node->range_lo.value_or(-std::numeric_limits<double>::infinity());
  const double hi = node->range_hi.value_or(std::numeric_limits<double>::infinity());

  std::vector<uint32_t> matched;
  s->index_probes = 1;
  s->index_entries =
      static_cast<int64_t>(index->LookupRange(lo, hi, &matched));
  // Random heap fetches: one page per match (pessimistic, like an
  // unclustered index), plus the B-tree descent.
  s->pages_read = index->EstimatedHeight() + s->index_entries;

  std::vector<uint32_t> selected;
  if (node->predicate.has_value()) {
    TablePredicateEvaluator evaluator(*table, *node->predicate);
    s->predicate_evals =
        evaluator.leaves() * static_cast<int64_t>(matched.size());
    selected.reserve(matched.size());  // worst case: every match passes
    for (uint32_t row : matched) {
      if (evaluator.Matches(row)) selected.push_back(row);
    }
  } else {
    selected = std::move(matched);
  }

  RowBatch batch;
  batch.schema = TableSchemaColumns(*table);
  batch.columns.reserve(table->num_columns());
  for (size_t c = 0; c < table->num_columns(); ++c) {
    std::vector<double> full = MaterializeColumn(*table, c);
    batch.columns.push_back(GatherColumn(full, selected));
  }
  return batch;
}

StatusOr<RowBatch> Executor::ExecFilter(PhysicalNode* node, RowBatch child,
                                        OperatorStats* s) {
  ZDB_CHECK(node->predicate.has_value());
  const size_t n = child.num_rows();
  s->input_rows_left = static_cast<int64_t>(n);
  s->predicate_evals =
      static_cast<int64_t>(node->predicate->NumComparisons()) *
      static_cast<int64_t>(n);

  std::vector<uint32_t> selected;
  selected.reserve(n);  // worst case: every row passes
  std::vector<double> row;
  for (size_t i = 0; i < n; ++i) {
    child.GetRow(i, &row);
    if (node->predicate->Evaluate(row)) {
      selected.push_back(static_cast<uint32_t>(i));
    }
  }
  RowBatch batch;
  batch.schema = child.schema;
  batch.columns.reserve(child.num_columns());
  for (const auto& column : child.columns) {
    batch.columns.push_back(GatherColumn(column, selected));
  }
  return batch;
}

StatusOr<RowBatch> Executor::ExecHashJoin(PhysicalNode* node, RowBatch left,
                                          RowBatch right, OperatorStats* s) {
  ZDB_CHECK_LT(node->left_key_slot, left.num_columns());
  ZDB_CHECK_LT(node->right_key_slot, right.num_columns());
  const auto& build_keys = left.columns[node->left_key_slot];
  const auto& probe_keys = right.columns[node->right_key_slot];
  s->input_rows_left = static_cast<int64_t>(left.num_rows());
  s->input_rows_right = static_cast<int64_t>(right.num_rows());
  s->hash_build_rows = s->input_rows_left;
  s->hash_probe_rows = s->input_rows_right;

  std::unordered_multimap<double, uint32_t, DoubleHash> table;
  table.reserve(build_keys.size());
  for (size_t i = 0; i < build_keys.size(); ++i) {
    table.emplace(build_keys[i], static_cast<uint32_t>(i));
  }

  std::vector<uint32_t> left_sel;
  std::vector<uint32_t> right_sel;
  // FK-join heuristic: about one match per probe row; larger outputs grow
  // geometrically from here instead of from zero.
  left_sel.reserve(probe_keys.size());
  right_sel.reserve(probe_keys.size());
  for (size_t j = 0; j < probe_keys.size(); ++j) {
    auto [begin, end] = table.equal_range(probe_keys[j]);
    for (auto it = begin; it != end; ++it) {
      left_sel.push_back(it->second);
      right_sel.push_back(static_cast<uint32_t>(j));
      if (static_cast<int64_t>(left_sel.size()) >
          options_.max_intermediate_rows) {
        return Status::OutOfRange("hash join output exceeds row cap");
      }
    }
  }

  RowBatch batch;
  batch.schema = left.schema;
  batch.schema.insert(batch.schema.end(), right.schema.begin(),
                      right.schema.end());
  batch.columns.reserve(left.num_columns() + right.num_columns());
  for (const auto& column : left.columns) {
    batch.columns.push_back(GatherColumn(column, left_sel));
  }
  for (const auto& column : right.columns) {
    batch.columns.push_back(GatherColumn(column, right_sel));
  }
  return batch;
}

StatusOr<RowBatch> Executor::ExecNestedLoopJoin(PhysicalNode* node,
                                                RowBatch left, RowBatch right,
                                                OperatorStats* s) {
  ZDB_CHECK_LT(node->left_key_slot, left.num_columns());
  ZDB_CHECK_LT(node->right_key_slot, right.num_columns());
  const auto& left_keys = left.columns[node->left_key_slot];
  const auto& right_keys = right.columns[node->right_key_slot];
  s->input_rows_left = static_cast<int64_t>(left.num_rows());
  s->input_rows_right = static_cast<int64_t>(right.num_rows());
  s->predicate_evals = s->input_rows_left * s->input_rows_right;

  std::vector<uint32_t> left_sel;
  std::vector<uint32_t> right_sel;
  // Same capacity heuristic as the hash join: one match per outer row.
  left_sel.reserve(left_keys.size());
  right_sel.reserve(left_keys.size());
  for (size_t i = 0; i < left_keys.size(); ++i) {
    for (size_t j = 0; j < right_keys.size(); ++j) {
      if (left_keys[i] == right_keys[j]) {
        left_sel.push_back(static_cast<uint32_t>(i));
        right_sel.push_back(static_cast<uint32_t>(j));
        if (static_cast<int64_t>(left_sel.size()) >
            options_.max_intermediate_rows) {
          return Status::OutOfRange("nested loop output exceeds row cap");
        }
      }
    }
  }

  RowBatch batch;
  batch.schema = left.schema;
  batch.schema.insert(batch.schema.end(), right.schema.begin(),
                      right.schema.end());
  batch.columns.reserve(left.num_columns() + right.num_columns());
  for (const auto& column : left.columns) {
    batch.columns.push_back(GatherColumn(column, left_sel));
  }
  for (const auto& column : right.columns) {
    batch.columns.push_back(GatherColumn(column, right_sel));
  }
  return batch;
}

StatusOr<RowBatch> Executor::ExecIndexNLJoin(PhysicalNode* node,
                                             RowBatch outer,
                                             OperatorStats* s) {
  ZDB_ASSIGN_OR_RETURN(const storage::Table* inner,
                       db_->GetTable(node->table_name));
  const storage::OrderedIndex* index =
      db_->FindIndex(node->table_name, node->index_column);
  if (index == nullptr) {
    return Status::NotFound("no index for INLJ on " + node->table_name);
  }
  ZDB_CHECK_LT(node->left_key_slot, outer.num_columns());
  const auto& outer_keys = outer.columns[node->left_key_slot];
  s->input_rows_left = static_cast<int64_t>(outer.num_rows());
  s->index_probes = s->input_rows_left;

  std::optional<TablePredicateEvaluator> residual;
  if (node->predicate.has_value()) {
    residual.emplace(*inner, *node->predicate);
  }

  std::vector<uint32_t> outer_sel;
  std::vector<uint32_t> inner_sel;
  // One index match per outer row is the common case for FK lookups.
  outer_sel.reserve(outer_keys.size());
  inner_sel.reserve(outer_keys.size());
  std::vector<uint32_t> matches;
  for (size_t i = 0; i < outer_keys.size(); ++i) {
    matches.clear();
    s->index_entries += static_cast<int64_t>(
        index->LookupEqual(outer_keys[i], &matches));
    for (uint32_t inner_row : matches) {
      if (residual.has_value()) {
        s->predicate_evals += residual->leaves();
        if (!residual->Matches(inner_row)) continue;
      }
      outer_sel.push_back(static_cast<uint32_t>(i));
      inner_sel.push_back(inner_row);
      if (static_cast<int64_t>(outer_sel.size()) >
          options_.max_intermediate_rows) {
        return Status::OutOfRange("INLJ output exceeds row cap");
      }
    }
  }
  // Random heap fetches on the inner side.
  s->pages_read = index->EstimatedHeight() * s->index_probes + s->index_entries;

  RowBatch batch;
  batch.schema = outer.schema;
  batch.schema.reserve(outer.schema.size() + inner->num_columns());
  batch.columns.reserve(outer.num_columns() + inner->num_columns());
  for (size_t c = 0; c < inner->num_columns(); ++c) {
    batch.schema.push_back(plan::OutputColumn{inner->name(), c, false});
  }
  for (const auto& column : outer.columns) {
    batch.columns.push_back(GatherColumn(column, outer_sel));
  }
  for (size_t c = 0; c < inner->num_columns(); ++c) {
    std::vector<double> full = MaterializeColumn(*inner, c);
    batch.columns.push_back(GatherColumn(full, inner_sel));
  }
  return batch;
}

StatusOr<RowBatch> Executor::ExecSort(PhysicalNode* node, RowBatch child,
                                      OperatorStats* s) {
  const size_t n = child.num_rows();
  s->input_rows_left = static_cast<int64_t>(n);
  s->sort_rows = static_cast<int64_t>(n);

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    for (size_t slot : node->sort_slots) {
      double va = child.columns[slot][a];
      double vb = child.columns[slot][b];
      if (va != vb) return va < vb;
    }
    return a < b;  // stable tie-break
  });

  RowBatch batch;
  batch.schema = child.schema;
  batch.columns.reserve(child.num_columns());
  for (const auto& column : child.columns) {
    batch.columns.push_back(GatherColumn(column, order));
  }
  return batch;
}

StatusOr<RowBatch> Executor::ExecAggregate(PhysicalNode* node, RowBatch child,
                                           OperatorStats* s) {
  const size_t n = child.num_rows();
  s->input_rows_left = static_cast<int64_t>(n);

  struct AggState {
    int64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  const size_t num_aggs = node->aggregates.size();

  auto finalize = [&](const AggState& state, const plan::AggregateExpr& agg) {
    switch (agg.func) {
      case plan::AggFunc::kCount:
        return static_cast<double>(state.count);
      case plan::AggFunc::kSum:
        return state.sum;
      case plan::AggFunc::kAvg:
        return state.count > 0 ? state.sum / static_cast<double>(state.count)
                               : 0.0;
      case plan::AggFunc::kMin:
        return state.count > 0 ? state.min : 0.0;
      case plan::AggFunc::kMax:
        return state.count > 0 ? state.max : 0.0;
    }
    ZDB_CHECK(false);
    return 0.0;
  };

  auto update = [&](AggState* state, const plan::AggregateExpr& agg,
                    size_t row) {
    ++state->count;
    if (agg.input_slot.has_value()) {
      ZDB_CHECK_LT(*agg.input_slot, child.num_columns());
      double v = child.columns[*agg.input_slot][row];
      state->sum += v;
      state->min = std::min(state->min, v);
      state->max = std::max(state->max, v);
    }
  };

  RowBatch batch;
  batch.schema = node->OutputSchema(*db_);

  if (node->type == PhysicalOpType::kSimpleAggregate) {
    std::vector<AggState> states(num_aggs);
    for (size_t row = 0; row < n; ++row) {
      for (size_t a = 0; a < num_aggs; ++a) {
        update(&states[a], node->aggregates[a], row);
      }
    }
    s->group_count = 1;
    batch.columns.resize(num_aggs);
    for (size_t a = 0; a < num_aggs; ++a) {
      batch.columns[a].assign(1, finalize(states[a], node->aggregates[a]));
    }
    return batch;
  }

  // Hash aggregate: group rows by the group-by key tuple.
  struct VectorHash {
    size_t operator()(const std::vector<double>& key) const {
      size_t h = 1469598103934665603ULL;
      for (double v : key) {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        h = (h ^ bits) * 1099511628211ULL;
      }
      return h;
    }
  };
  std::unordered_map<std::vector<double>, std::vector<AggState>, VectorHash>
      groups;
  std::vector<double> key(node->group_by_slots.size());
  for (size_t row = 0; row < n; ++row) {
    for (size_t g = 0; g < node->group_by_slots.size(); ++g) {
      key[g] = child.columns[node->group_by_slots[g]][row];
    }
    auto [it, inserted] = groups.try_emplace(key, num_aggs);
    for (size_t a = 0; a < num_aggs; ++a) {
      update(&it->second[a], node->aggregates[a], row);
    }
  }
  s->group_count = static_cast<int64_t>(groups.size());

  // Emit groups in sorted key order: hash-table iteration order is an
  // artifact of the hash function and load factor, and letting it leak
  // into the result batch made query output (and everything downstream —
  // recorded runtimes, golden files) differ across runs and libstdc++
  // versions. The collection order itself is irrelevant once sorted.
  std::vector<const std::pair<const std::vector<double>,
                              std::vector<AggState>>*> ordered;
  ordered.reserve(groups.size());
  // zerodb-lint: allow(nondet-iter)
  for (const auto& entry : groups) ordered.push_back(&entry);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* a, const auto* b) {
              return std::lexicographical_compare(
                  a->first.begin(), a->first.end(), b->first.begin(),
                  b->first.end());
            });

  batch.columns.assign(node->group_by_slots.size() + num_aggs, {});
  for (size_t c = 0; c < batch.columns.size(); ++c) {
    batch.columns[c].reserve(ordered.size());
  }
  for (const auto* entry : ordered) {
    const std::vector<double>& group_key = entry->first;
    const std::vector<AggState>& states = entry->second;
    for (size_t g = 0; g < group_key.size(); ++g) {
      batch.columns[g].push_back(group_key[g]);
    }
    for (size_t a = 0; a < num_aggs; ++a) {
      batch.columns[group_key.size() + a].push_back(
          finalize(states[a], node->aggregates[a]));
    }
  }
  return batch;
}

}  // namespace zerodb::exec
