#ifndef ZERODB_EXEC_BATCH_H_
#define ZERODB_EXEC_BATCH_H_

#include <cstdint>
#include <vector>

#include "plan/physical.h"

namespace zerodb::exec {

/// A materialized intermediate result: column-major numeric data (int64 and
/// dictionary codes widened to double; exact up to 2^53, far beyond any key
/// domain used here) plus the provenance schema.
struct RowBatch {
  std::vector<plan::OutputColumn> schema;
  std::vector<std::vector<double>> columns;  // one vector per schema entry

  size_t num_rows() const { return columns.empty() ? 0 : columns[0].size(); }
  size_t num_columns() const { return columns.size(); }

  /// Gathers one row as a slot-value vector (for predicate evaluation).
  void GetRow(size_t row, std::vector<double>* out) const {
    // Callers reuse one buffer across rows: this resize allocates on the
    // first call only and is amortized-free thereafter.
    // zerodb-lint: allow(hot-alloc)
    out->resize(columns.size());
    for (size_t c = 0; c < columns.size(); ++c) (*out)[c] = columns[c][row];
  }
};

/// Per-operator work counters collected during execution. These are the
/// ground-truth "what the machine did" signals the runtime simulator turns
/// into a runtime; the learned models never see them directly.
struct OperatorStats {
  int64_t input_rows_left = 0;   ///< rows from child 0 (or table rows scanned)
  int64_t input_rows_right = 0;  ///< rows from child 1 / index matches
  int64_t output_rows = 0;
  int64_t rows_scanned = 0;      ///< base-table rows touched by a scan
  int64_t pages_read = 0;        ///< pages touched (seq: all; index: few)
  int64_t index_probes = 0;      ///< index lookups issued
  int64_t index_entries = 0;     ///< index entries returned
  int64_t predicate_evals = 0;   ///< leaf comparisons executed
  int64_t hash_build_rows = 0;
  int64_t hash_probe_rows = 0;
  int64_t sort_rows = 0;
  int64_t group_count = 0;       ///< distinct groups (hash aggregate)
  int64_t output_bytes = 0;      ///< output_rows * tuple width
};

}  // namespace zerodb::exec

#endif  // ZERODB_EXEC_BATCH_H_
