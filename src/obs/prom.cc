#include "obs/prom.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

#include "obs/export.h"

namespace zerodb::obs {

namespace {

/// %.17g round-trips doubles and renders integers without a trailing ".0",
/// matching what Prometheus client libraries emit.
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void AppendTypeLine(std::string* out, const std::string& name,
                    const char* type) {
  out->append("# TYPE ");
  out->append(name);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
}

void AppendSample(std::string* out, const std::string& name,
                  const std::string& value) {
  out->append(name);
  out->push_back(' ');
  out->append(value);
  out->push_back('\n');
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(valid ? c : '_');
  }
  if (out.empty()) out.push_back('_');
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    AppendTypeLine(&out, prom, "counter");
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%" PRId64, value);
    AppendSample(&out, prom, buffer);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    AppendTypeLine(&out, prom, "gauge");
    AppendSample(&out, prom, FormatDouble(value));
  }
  for (const HistogramSnapshot& histogram : snapshot.histograms) {
    const std::string prom = PrometheusName(histogram.name);
    AppendTypeLine(&out, prom, "histogram");
    int64_t cumulative = 0;
    for (size_t i = 0; i < histogram.bounds.size(); ++i) {
      cumulative += histogram.buckets[i];
      out.append(prom);
      out.append("_bucket{le=\"");
      out.append(FormatDouble(histogram.bounds[i]));
      out.append("\"} ");
      out.append(std::to_string(cumulative));
      out.push_back('\n');
    }
    // The +Inf bucket equals _count by construction (overflow included).
    cumulative += histogram.buckets.empty() ? 0 : histogram.buckets.back();
    out.append(prom);
    out.append("_bucket{le=\"+Inf\"} ");
    out.append(std::to_string(cumulative));
    out.push_back('\n');
    AppendSample(&out, prom + "_sum", FormatDouble(histogram.sum));
    AppendSample(&out, prom + "_count", std::to_string(histogram.count));
  }
  return out;
}

std::string RenderPrometheus(const MetricsRegistry& registry) {
  return RenderPrometheus(registry.Snapshot());
}

Status WritePrometheusTo(const MetricsRegistry& registry,
                         const std::string& path) {
  return WriteFileAtomic(path, RenderPrometheus(registry));
}

}  // namespace zerodb::obs
