#ifndef ZERODB_OBS_TRACE_EVENT_H_
#define ZERODB_OBS_TRACE_EVENT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace zerodb::obs {

/// Sets the calling thread's display name on every timeline track it later
/// opens (pool workers call this with "pool-worker-<i>"). The name is stored
/// thread-locally, so it applies to recorders installed before *or after*
/// the call; a thread that never calls it shows up as "thread-<tid>".
void SetCurrentThreadTraceName(std::string name);

/// Records Chrome trace-event / Perfetto-loadable timelines from any number
/// of threads at once — the cross-thread complement of the per-query,
/// thread-confined QueryTracer.
///
/// Threading model (DESIGN.md "Timeline tracing & quality monitoring"):
/// each thread appends to its own buffer under that buffer's (annotated,
/// uncontended) Mutex; the recorder's own Mutex only guards the
/// thread-key → buffer map and the virtual tracks. ToJson/WriteTo flush by
/// taking each buffer mutex in turn, so exporting races cleanly with
/// recording (TSan-verified in tests/obs_test.cc).
///
/// Buffers are bounded: past Options::max_events_per_thread a thread's
/// further events are counted as dropped instead of recorded, so a traced
/// bench cannot OOM. A disabled (or absent) recorder never reads the clock —
/// TimelineScope is then one relaxed load and a branch.
class TraceEventRecorder {
 public:
  struct Options {
    /// Per-thread (and per-virtual-track) event cap; overflow is dropped
    /// and counted (see dropped_events / the trace's zerodb_dropped_events
    /// counter track).
    size_t max_events_per_thread = 1 << 15;
  };

  // Split (not a default argument) because GCC rejects using a nested
  // struct's default member initializers in a default argument of the
  // enclosing class; the delegating body runs in complete-class context.
  TraceEventRecorder() : TraceEventRecorder(Options()) {}
  explicit TraceEventRecorder(Options options);
  ~TraceEventRecorder() = default;

  TraceEventRecorder(const TraceEventRecorder&) = delete;
  TraceEventRecorder& operator=(const TraceEventRecorder&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Microseconds since this recorder's construction (its timeline epoch).
  double NowUs() const;

  /// Appends a complete ("ph":"X") event to the calling thread's track.
  /// `category` must be a string literal (stored by pointer). No-op while
  /// disabled.
  void AddCompleteEvent(std::string name, const char* category, double ts_us,
                        double dur_us,
                        std::vector<std::pair<std::string, double>> args = {})
      ZDB_EXCLUDES(mu_);

  /// Appends a counter ("ph":"C") sample on the calling thread's track.
  void AddCounter(std::string name, double value) ZDB_EXCLUDES(mu_);

  /// Opens a named synthetic track that is not bound to any thread (used by
  /// the span-tree bridge). Returns its tid. Cold path, recorder-mutex
  /// guarded. Reuses the track if the name was registered before.
  int RegisterVirtualTrack(const std::string& name) ZDB_EXCLUDES(mu_);

  /// Appends a complete event onto a virtual track (recorder-mutex guarded;
  /// safe from any thread).
  void AddCompleteEventOnTrack(
      int tid, std::string name, const char* category, double ts_us,
      double dur_us, std::vector<std::pair<std::string, double>> args = {})
      ZDB_EXCLUDES(mu_);

  /// Events discarded because a buffer hit max_events_per_thread.
  int64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} — loadable by
  /// chrome://tracing and ui.perfetto.dev. Includes process_name /
  /// thread_name metadata ("ph":"M") events for every track.
  JsonValue ToJson() const ZDB_EXCLUDES(mu_);

  /// Serializes to `path` crash-safely (tmp file + atomic rename).
  Status WriteTo(const std::string& path) const ZDB_EXCLUDES(mu_);

  /// The process-global recorder the built-in instrumentation (thread pool,
  /// trainer, executor, featurizer, estimator) reports to. nullptr — the
  /// default — disables every timeline site at the cost of one relaxed load.
  static TraceEventRecorder* Global() {
    return global_.load(std::memory_order_acquire);
  }

  /// Creates (first call; leak-singleton) and enables the global recorder,
  /// naming the calling thread "main" unless it already has a trace name.
  /// Returns the recorder; later calls return the same one.
  static TraceEventRecorder* InstallGlobal();

 private:
  struct Event {
    std::string name;
    const char* category = nullptr;  ///< string literal
    char ph = 'X';
    double ts_us = 0.0;
    double dur_us = 0.0;   ///< 'X' only
    double value = 0.0;    ///< 'C' only
    std::vector<std::pair<std::string, double>> args;  ///< 'X' only
  };

  struct TrackBuffer {
    mutable Mutex mu;
    int tid = 0;
    std::string name;
    std::vector<Event> events ZDB_GUARDED_BY(mu);
  };

  TrackBuffer* BufferForThisThread() ZDB_EXCLUDES(mu_);
  void AppendTo(TrackBuffer* buffer, Event event);

  const Options options_;
  const uint64_t serial_;  ///< distinguishes recorders in thread-local caches
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{true};
  std::atomic<int64_t> dropped_{0};

  mutable Mutex mu_;
  // Thread-key → buffer; entries are never erased, so the per-thread cache
  // in BufferForThisThread can hand out stable pointers.
  std::vector<std::pair<int, std::unique_ptr<TrackBuffer>>> buffers_
      ZDB_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<TrackBuffer>> virtual_tracks_
      ZDB_GUARDED_BY(mu_);
  int next_tid_ ZDB_GUARDED_BY(mu_) = 1;  ///< 0 is the metadata pseudo-track

  static std::atomic<TraceEventRecorder*> global_;
};

/// RAII complete-event scope usable from any thread:
///
///   obs::TimelineScope scope("train.epoch");
///   scope.AddArg("epoch", 3);
///
/// Defaults to the global recorder; a nullptr or disabled recorder makes the
/// whole scope free of clock reads and allocations ("a few branches"), so
/// instrumented hot paths need no call-site branching. `name` and `category`
/// must outlive the scope (pass string literals).
class TimelineScope {
 public:
  explicit TimelineScope(const char* name, const char* category = "zerodb",
                         TraceEventRecorder* recorder =
                             TraceEventRecorder::Global())
      : recorder_(recorder != nullptr && recorder->enabled() ? recorder
                                                             : nullptr),
        name_(name),
        category_(category) {
    if (recorder_ != nullptr) start_us_ = recorder_->NowUs();
  }

  TimelineScope(const TimelineScope&) = delete;
  TimelineScope& operator=(const TimelineScope&) = delete;

  bool active() const { return recorder_ != nullptr; }

  void AddArg(std::string key, double value) {
    if (recorder_ != nullptr) args_.emplace_back(std::move(key), value);
  }

  ~TimelineScope() {
    if (recorder_ == nullptr) return;
    double end_us = recorder_->NowUs();
    recorder_->AddCompleteEvent(name_, category_, start_us_,
                                end_us - start_us_, std::move(args_));
  }

 private:
  TraceEventRecorder* recorder_;
  const char* name_;
  const char* category_;
  double start_us_ = 0.0;
  std::vector<std::pair<std::string, double>> args_;
};

/// Bridges a finished QueryTracer span tree onto the timeline: lays the tree
/// out on a virtual track named `track_name`, with the root ending at
/// `end_ts_us` (default: now) and children placed consecutively from each
/// parent's start — spans carry durations, not timestamps, so the layout is
/// synthesized but preserves nesting and relative widths. Span attributes
/// become event args. No-op on a nullptr/disabled recorder.
void ProjectSpanTree(TraceEventRecorder* recorder, const Span& root,
                     const std::string& track_name, double end_ts_us = -1.0);

}  // namespace zerodb::obs

#endif  // ZERODB_OBS_TRACE_EVENT_H_
