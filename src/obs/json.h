#ifndef ZERODB_OBS_JSON_H_
#define ZERODB_OBS_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace zerodb::obs {

/// A minimal JSON document model used by the observability exporters: every
/// metrics artifact (registry dump, query trace, training telemetry) is
/// built as a JsonValue and serialized with Dump(). Parse() is the inverse,
/// used by tests (round-trip) and by tooling that reads BENCH_*.json
/// trajectory files back in. Object keys preserve insertion order so
/// artifacts diff cleanly across runs.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}  // NOLINT
  JsonValue(int64_t value) : kind_(Kind::kInt), int_(value) {}  // NOLINT
  JsonValue(int value) : kind_(Kind::kInt), int_(value) {}  // NOLINT
  JsonValue(size_t value)  // NOLINT
      : kind_(Kind::kInt), int_(static_cast<int64_t>(value)) {}
  JsonValue(double value) : kind_(Kind::kDouble), double_(value) {}  // NOLINT
  JsonValue(std::string value)  // NOLINT
      : kind_(Kind::kString), string_(std::move(value)) {}
  JsonValue(const char* value) : kind_(Kind::kString), string_(value) {}  // NOLINT

  static JsonValue Array() { return JsonValue(Kind::kArray); }
  static JsonValue Object() { return JsonValue(Kind::kObject); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_string() const { return kind_ == Kind::kString; }

  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Array access.
  size_t size() const;
  const JsonValue& at(size_t index) const;
  void Append(JsonValue value);

  /// Object access. Set overwrites an existing key in place.
  void Set(std::string key, JsonValue value);
  /// Returns nullptr when the key is absent (or this is not an object).
  const JsonValue* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Serializes; indent > 0 pretty-prints with that many spaces per level.
  std::string Dump(int indent = 0) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  static StatusOr<JsonValue> Parse(const std::string& text);

 private:
  explicit JsonValue(Kind kind) : kind_(kind) {}

  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Escapes a string for embedding in JSON output (quotes not included).
std::string JsonEscape(const std::string& text);

}  // namespace zerodb::obs

#endif  // ZERODB_OBS_JSON_H_
