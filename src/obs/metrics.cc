#include "obs/metrics.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/sync.h"
#include "obs/pool_telemetry.h"

namespace zerodb::obs {

namespace {

// fetch_add for atomic<double> predates wide libstdc++ support; CAS loop.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(const std::atomic<bool>* enabled,
                     std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()),
      enabled_(enabled) {
  ZDB_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double value) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  size_t bucket =
      static_cast<size_t>(std::upper_bound(bounds_.begin(), bounds_.end(),
                                           value) -
                          bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

double Histogram::mean() const {
  int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::min() const {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::Quantile(double q) const {
  const int64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  double cumulative = 0.0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    const double in_bucket =
        static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
    if (cumulative + in_bucket >= target || i == bounds_.size()) {
      // Interpolate within [lo, hi); clamp to observed extremes so tiny
      // samples do not report a bound nothing ever reached.
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = i < bounds_.size() ? bounds_[i] : max();
      double fraction =
          in_bucket > 0.0 ? (target - cumulative) / in_bucket : 1.0;
      fraction = std::clamp(fraction, 0.0, 1.0);
      double value = lo + fraction * (hi - lo);
      return std::clamp(value, min(), max());
    }
    cumulative += in_bucket;
  }
  return max();
}

JsonValue Histogram::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("count", count());
  out.Set("sum", sum());
  out.Set("mean", mean());
  out.Set("min", min());
  out.Set("max", max());
  out.Set("p50", Quantile(0.5));
  out.Set("p95", Quantile(0.95));
  out.Set("p99", Quantile(0.99));
  JsonValue buckets = JsonValue::Array();
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    int64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;  // keep artifacts compact
    JsonValue bucket = JsonValue::Object();
    bucket.Set("le", i < bounds_.size()
                         ? JsonValue(bounds_[i])
                         : JsonValue("inf"));
    bucket.Set("count", in_bucket);
    buckets.Append(std::move(bucket));
  }
  out.Set("buckets", std::move(buckets));
  return out;
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 size_t n) {
  ZDB_CHECK(start > 0.0 && factor > 1.0 && n > 0);
  std::vector<double> bounds(n);
  double bound = start;
  for (size_t i = 0; i < n; ++i) {
    bounds[i] = bound;
    bound *= factor;
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry(/*enabled=*/false);
  // Anyone touching the global registry gets pool telemetry wired up too;
  // the pool itself cannot do this (common/ may not depend on obs/).
  InstallPoolTelemetry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  for (auto& entry : counters_) {
    if (entry.name == name) return entry.metric.get();
  }
  counters_.push_back(
      {name, std::unique_ptr<Counter>(new Counter(&enabled_))});
  return counters_.back().metric.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  for (auto& entry : gauges_) {
    if (entry.name == name) return entry.metric.get();
  }
  gauges_.push_back({name, std::unique_ptr<Gauge>(new Gauge(&enabled_))});
  return gauges_.back().metric.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  MutexLock lock(&mu_);
  for (auto& entry : histograms_) {
    if (entry.name == name) return entry.metric.get();
  }
  if (bounds.empty()) bounds = Histogram::ExponentialBounds();
  histograms_.push_back({name, std::unique_ptr<Histogram>(new Histogram(
                                   &enabled_, std::move(bounds)))});
  return histograms_.back().metric.get();
}

JsonValue MetricsRegistry::ToJson() const {
  MutexLock lock(&mu_);
  auto sorted_names = [](const auto& entries) {
    std::vector<size_t> order(entries.size());
    for (size_t i = 0; i < entries.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return entries[a].name < entries[b].name;
    });
    return order;
  };

  JsonValue out = JsonValue::Object();
  JsonValue counters = JsonValue::Object();
  for (size_t i : sorted_names(counters_)) {
    counters.Set(counters_[i].name, counters_[i].metric->value());
  }
  out.Set("counters", std::move(counters));
  JsonValue gauges = JsonValue::Object();
  for (size_t i : sorted_names(gauges_)) {
    gauges.Set(gauges_[i].name, gauges_[i].metric->value());
  }
  out.Set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::Object();
  for (size_t i : sorted_names(histograms_)) {
    histograms.Set(histograms_[i].name, histograms_[i].metric->ToJson());
  }
  out.Set("histograms", std::move(histograms));
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& entry : counters_) {
    snapshot.counters.emplace_back(entry.name, entry.metric->value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& entry : gauges_) {
    snapshot.gauges.emplace_back(entry.name, entry.metric->value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& entry : histograms_) {
    const Histogram& histogram = *entry.metric;
    HistogramSnapshot h;
    h.name = entry.name;
    h.bounds = histogram.bounds();
    h.buckets.reserve(h.bounds.size() + 1);
    for (size_t i = 0; i <= h.bounds.size(); ++i) {
      h.buckets.push_back(histogram.bucket_count(i));
    }
    h.count = histogram.count();
    h.sum = histogram.sum();
    snapshot.histograms.push_back(std::move(h));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snapshot;
}

}  // namespace zerodb::obs
