#ifndef ZERODB_OBS_QUALITY_H_
#define ZERODB_OBS_QUALITY_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sync.h"
#include "common/thread_annotations.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace zerodb::obs {

/// Online monitor for serving-time prediction quality: feed it
/// (predicted, actual) runtime pairs and it maintains rolling q-error
/// statistics plus an EWMA drift detector that flags when the model's live
/// accuracy degrades versus its warm-up baseline — the serving-side answer
/// to "is the zero-shot model still trustworthy on this workload?".
///
/// Math (DESIGN.md "Timeline tracing & quality monitoring"): every sample's
/// q-error max(p/a, a/p) is tracked in log space, where "no error" is 0 and
/// the metric is symmetric in over-/under-estimation. The first
/// `min_samples` log-q-errors freeze a reference median; afterwards an EWMA
/// with weight `ewma_alpha` follows the live level, and drift fires while
///   ewma_log - reference_log > log(drift_threshold)
/// i.e. the *typical* q-error has grown by more than `drift_threshold`×
/// relative to warm-up. The EWMA (not a windowed mean) makes the detector
/// O(1) per sample and biased toward recent behaviour; alpha = 0.05 weights
/// roughly the last ~40 samples.
///
/// Thread-safe: the ring window and scalar state sit behind an annotated
/// Mutex (Record is not on any per-tuple hot path — one call per executed
/// query); `drifting()` is a lock-free atomic read for cheap call sites like
/// the what-if advisor.
class PredictionQualityMonitor {
 public:
  struct Options {
    /// Rolling window of (predicted_ms, actual_ms) pairs kept for ToJson and
    /// windowed statistics.
    size_t window = 512;
    /// Samples used to freeze the warm-up reference median before the drift
    /// detector arms itself.
    size_t min_samples = 32;
    /// EWMA weight on the newest log-q-error.
    double ewma_alpha = 0.05;
    /// Drift fires when the EWMA q-error level exceeds reference ×
    /// drift_threshold.
    double drift_threshold = 2.0;
    /// At most one drift warning log line per this many recorded samples.
    int64_t warn_every = 256;
    /// Metric name prefix ("quality" → quality.qerror, quality.drift, ...).
    std::string metric_prefix = "quality";
    /// Registry to export to; nullptr = MetricsRegistry::Global(). The
    /// monitor keeps its own counts too, so it works (and is testable) with
    /// a disabled registry.
    MetricsRegistry* registry = nullptr;
  };

  // Split (not a default argument) because GCC rejects using a nested
  // struct's default member initializers in a default argument of the
  // enclosing class; the delegating body runs in complete-class context.
  PredictionQualityMonitor() : PredictionQualityMonitor(Options()) {}
  explicit PredictionQualityMonitor(Options options);

  PredictionQualityMonitor(const PredictionQualityMonitor&) = delete;
  PredictionQualityMonitor& operator=(const PredictionQualityMonitor&) =
      delete;

  /// Records one serving-time observation. Non-positive actuals are ignored
  /// (no ground truth). Updates the q-error histogram, window, EWMA and
  /// drift state.
  void Record(double predicted_ms, double actual_ms) ZDB_EXCLUDES(mu_);

  /// True while the EWMA q-error level exceeds the warm-up reference by more
  /// than drift_threshold×. Lock-free.
  bool drifting() const { return drifting_.load(std::memory_order_relaxed); }

  int64_t samples() const ZDB_EXCLUDES(mu_);
  /// Times the detector transitioned healthy → drifting.
  int64_t drift_events() const ZDB_EXCLUDES(mu_);
  /// Current EWMA q-error level (geometric, exp of the log-space EWMA);
  /// 1.0 before any samples.
  double EwmaQError() const ZDB_EXCLUDES(mu_);
  /// Frozen warm-up reference q-error median; 1.0 until min_samples arrive.
  double ReferenceQError() const ZDB_EXCLUDES(mu_);
  /// Histogram-estimated q-error quantile over all recorded samples.
  double QErrorQuantile(double q) const;

  /// {"samples": ..., "qerror": {p50, p95, max}, "drift": {...}} — embedded
  /// by MetricsArtifact as its "quality" section.
  JsonValue ToJson() const ZDB_EXCLUDES(mu_);

  const Options& options() const { return options_; }

 private:
  void UpdateDriftLocked() ZDB_REQUIRES(mu_);

  const Options options_;
  const double log_threshold_;

  Histogram* qerror_histogram_;  ///< registry-owned
  Gauge* drift_gauge_;
  Gauge* ewma_gauge_;
  Counter* samples_counter_;
  Counter* drift_events_counter_;

  std::atomic<bool> drifting_{false};

  mutable Mutex mu_;
  std::vector<std::pair<double, double>> window_ ZDB_GUARDED_BY(mu_);
  size_t window_next_ ZDB_GUARDED_BY(mu_) = 0;
  std::vector<double> warmup_logs_ ZDB_GUARDED_BY(mu_);
  double reference_log_ ZDB_GUARDED_BY(mu_) = 0.0;
  bool reference_frozen_ ZDB_GUARDED_BY(mu_) = false;
  double ewma_log_ ZDB_GUARDED_BY(mu_) = 0.0;
  int64_t samples_ ZDB_GUARDED_BY(mu_) = 0;
  int64_t drift_events_ ZDB_GUARDED_BY(mu_) = 0;
  int64_t last_warn_sample_ ZDB_GUARDED_BY(mu_) = -1;
  double max_qerror_ ZDB_GUARDED_BY(mu_) = 1.0;
};

}  // namespace zerodb::obs

#endif  // ZERODB_OBS_QUALITY_H_
