#include "obs/pool_telemetry.h"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <string>

#include "common/pool_hooks.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace_event.h"

namespace zerodb::obs {

namespace {

double SteadyNowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// PoolHooks implementation reporting into the global registry/recorder.
/// Metric pointers are resolved once at construction so the per-task path
/// never touches the name map; all writes stay gated on the registry's
/// enabled flag (one relaxed load + branch when observability is off).
class PoolTelemetry : public zerodb::PoolHooks {
 public:
  PoolTelemetry()
      : registry_(MetricsRegistry::Global()),
        tasks_scheduled_(registry_.GetCounter("pool.tasks_scheduled")),
        tasks_run_(registry_.GetCounter("pool.tasks_run")),
        parallel_for_calls_(
            registry_.GetCounter("pool.parallel_for_calls")),
        parallel_for_chunks_(
            registry_.GetCounter("pool.parallel_for_chunks")),
        global_threads_(registry_.GetGauge("pool.global_threads")),
        // Time a task sat in the shared queue before a worker picked
        // ("stole") it — the contention signal of the single-queue design.
        steal_latency_us_(
            registry_.GetHistogram("pool.steal_latency_us")) {}

  double EnqueueTimestampUs() override {
    return registry_.enabled() ? SteadyNowUs() : 0.0;
  }

  void OnScheduled() override { tasks_scheduled_->Add(1); }

  void RunTask(size_t worker_index, double enqueue_us,
               const std::function<void()>& task) override {
    // Names the worker's timeline track ("pool-worker-3") once per thread,
    // even when the hooks were installed after the worker started — the
    // name is stored thread-locally and read on first event.
    thread_local bool named = false;
    if (!named) {
      named = true;
      SetCurrentThreadTraceName("pool-worker-" +
                                std::to_string(worker_index));
    }
    if (enqueue_us > 0.0) {
      steal_latency_us_->Observe(SteadyNowUs() - enqueue_us);
    }
    {
      TimelineScope scope("pool.task", "pool");
      task();
    }
    tasks_run_->Add(1);
  }

  void OnGlobalPoolCreated(size_t num_threads) override {
    global_threads_->Set(static_cast<double>(num_threads));
  }

  void OnParallelFor(size_t num_chunks) override {
    parallel_for_calls_->Add(1);
    parallel_for_chunks_->Add(static_cast<int64_t>(num_chunks));
  }

 private:
  // The global registry is a leak-singleton: it strictly outlives this
  // hook object (itself a leak-singleton).
  MetricsRegistry& registry_;  // zerodb-lint: allow(lifetime-member)
  Counter* tasks_scheduled_;
  Counter* tasks_run_;
  Counter* parallel_for_calls_;
  Counter* parallel_for_chunks_;
  Gauge* global_threads_;
  Histogram* steal_latency_us_;
};

}  // namespace

void InstallPoolTelemetry() {
  // The flag flips before the singleton is built: PoolTelemetry's
  // constructor calls MetricsRegistry::Global(), which calls back into
  // InstallPoolTelemetry — the re-entrant call must return immediately.
  static std::atomic<bool> installed{false};
  if (installed.exchange(true, std::memory_order_acq_rel)) return;
  static PoolTelemetry* telemetry = new PoolTelemetry();  // leak-singleton
  zerodb::SetPoolHooks(telemetry);
  // The global pool may predate observability; report its size now.
  size_t threads = zerodb::ThreadPool::GlobalCreatedThreads();
  if (threads > 0) telemetry->OnGlobalPoolCreated(threads);
}

}  // namespace zerodb::obs
