#include "obs/export.h"

#include <cstdio>

#include "obs/quality.h"

namespace zerodb::obs {

Status WriteFileAtomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot open " + tmp + " for writing");
  }
  size_t written = std::fwrite(text.data(), 1, text.size(), file);
  int close_result = std::fclose(file);
  if (written != text.size() || close_result != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status();
}

JsonValue MetricsArtifact::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("name", name_);
  if (!labels_.empty()) {
    JsonValue labels = JsonValue::Object();
    for (const auto& [key, value] : labels_) labels.Set(key, value);
    out.Set("labels", std::move(labels));
  }
  if (registry_ != nullptr) out.Set("metrics", registry_->ToJson());
  if (!traces_.empty()) {
    JsonValue traces = JsonValue::Object();
    for (const auto& [name, root] : traces_) traces.Set(name, root.ToJson());
    out.Set("traces", std::move(traces));
  }
  if (!training_.empty()) {
    JsonValue training = JsonValue::Object();
    for (const auto& [name, history] : training_) {
      training.Set(name, TrainTelemetry::HistoryToJson(history));
    }
    out.Set("training", std::move(training));
  }
  if (quality_ != nullptr) out.Set("quality", quality_->ToJson());
  return out;
}

Status MetricsArtifact::WriteTo(const std::string& path) const {
  std::string text = ToJson().Dump(/*indent=*/2);
  text.push_back('\n');
  return WriteFileAtomic(path, text);
}

}  // namespace zerodb::obs
