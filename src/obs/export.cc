#include "obs/export.h"

#include <cstdio>

namespace zerodb::obs {

JsonValue MetricsArtifact::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("name", name_);
  if (!labels_.empty()) {
    JsonValue labels = JsonValue::Object();
    for (const auto& [key, value] : labels_) labels.Set(key, value);
    out.Set("labels", std::move(labels));
  }
  if (registry_ != nullptr) out.Set("metrics", registry_->ToJson());
  if (!traces_.empty()) {
    JsonValue traces = JsonValue::Object();
    for (const auto& [name, root] : traces_) traces.Set(name, root.ToJson());
    out.Set("traces", std::move(traces));
  }
  if (!training_.empty()) {
    JsonValue training = JsonValue::Object();
    for (const auto& [name, history] : training_) {
      training.Set(name, TrainTelemetry::HistoryToJson(history));
    }
    out.Set("training", std::move(training));
  }
  return out;
}

Status MetricsArtifact::WriteTo(const std::string& path) const {
  std::string text = ToJson().Dump(/*indent=*/2);
  text.push_back('\n');
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(text.data(), 1, text.size(), file);
  int close_result = std::fclose(file);
  if (written != text.size() || close_result != 0) {
    return Status::IOError("short write to " + path);
  }
  return Status();
}

}  // namespace zerodb::obs
