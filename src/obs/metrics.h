#ifndef ZERODB_OBS_METRICS_H_
#define ZERODB_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "common/thread_annotations.h"
#include "obs/json.h"

namespace zerodb::obs {

class MetricsRegistry;

/// Monotonically increasing event count. Writes are relaxed atomics gated on
/// the owning registry's enabled flag, so a disabled registry costs one load
/// and one predictable branch per Add.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  std::atomic<int64_t> value_{0};
  const std::atomic<bool>* enabled_;
};

/// Last-written value (e.g. a configuration knob or a level).
class Gauge {
 public:
  void Set(double value) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.store(value, std::memory_order_relaxed);
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  std::atomic<double> value_{0.0};
  const std::atomic<bool>* enabled_;
};

/// Fixed-bucket histogram with lock-free writes. Bucket upper bounds are
/// set at creation (plus an implicit +inf overflow bucket); quantiles are
/// estimated by linear interpolation inside the containing bucket, which is
/// exact enough for latency summaries at the default exponential bounds.
class Histogram {
 public:
  void Observe(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  double min() const;
  double max() const;
  /// q in [0, 1]; returns 0 when empty.
  double Quantile(double q) const;
  const std::vector<double>& bounds() const { return bounds_; }
  int64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  JsonValue ToJson() const;

  /// `n` bucket bounds start, start*factor, start*factor^2, ... — the
  /// default microsecond-latency layout spans 1us..~17s with factor 2.
  static std::vector<double> ExponentialBounds(double start = 1.0,
                                               double factor = 2.0,
                                               size_t n = 24);

 private:
  friend class MetricsRegistry;
  Histogram(const std::atomic<bool>* enabled, std::vector<double> bounds);

  std::vector<double> bounds_;  ///< sorted upper bounds, ascending
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;  ///< bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
  const std::atomic<bool>* enabled_;
};

/// Point-in-time copy of one histogram's state (bounds + per-bucket counts
/// including the +inf overflow bucket), used by exporters that need more
/// than the summary JSON — the Prometheus renderer in particular.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;    ///< ascending upper bounds
  std::vector<int64_t> buckets;  ///< bounds.size() + 1; last is +inf
  int64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time copy of a registry's metrics, names sorted.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Thread-safe, name-keyed registry of counters, gauges and histograms.
/// Metric objects are created on first request and live as long as the
/// registry; call sites cache the returned pointers so the hot path never
/// touches the name map. The registry starts disabled: every metric write
/// is then a single relaxed load + branch ("a few branches per operator"),
/// verified by BM_ExecutorMetricsOverhead in bench_micro.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = false) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry the built-in instrumentation (executor, planner,
  /// trainer, estimator) reports to. Disabled until someone — typically a
  /// bench run with --metrics_out — enables it.
  static MetricsRegistry& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  Counter* GetCounter(const std::string& name) ZDB_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) ZDB_EXCLUDES(mu_);
  /// `bounds` applies only on first creation; empty = default exponential
  /// microsecond bounds.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {}) ZDB_EXCLUDES(mu_);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with names
  /// sorted for stable artifacts.
  JsonValue ToJson() const ZDB_EXCLUDES(mu_);

  /// Name-sorted copy of every metric's current value (counter/gauge reads
  /// are relaxed; concurrent writers may land between buckets and count, so
  /// a snapshot taken mid-run is approximate, never torn).
  MetricsSnapshot Snapshot() const ZDB_EXCLUDES(mu_);

 private:
  template <typename T>
  struct Entry {
    std::string name;
    std::unique_ptr<T> metric;
  };

  std::atomic<bool> enabled_;
  // Guards the name→metric maps only. The metric objects themselves are
  // lock-free (atomics); Get* hands out stable pointers that outlive the
  // lock because entries are never erased and the metrics are heap-owned.
  mutable Mutex mu_;
  std::vector<Entry<Counter>> counters_ ZDB_GUARDED_BY(mu_);
  std::vector<Entry<Gauge>> gauges_ ZDB_GUARDED_BY(mu_);
  std::vector<Entry<Histogram>> histograms_ ZDB_GUARDED_BY(mu_);
};

/// RAII wall-clock timer: records the scope's duration (microseconds) into
/// a histogram and/or counter on destruction. Pass nullptr targets (or a
/// disabled registry) to make it a no-op; it then never reads the clock.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram, Counter* total_us = nullptr)
      : histogram_(histogram), total_us_(total_us) {
    if (histogram_ != nullptr || total_us_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
      armed_ = true;
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedUs() const {
    if (!armed_) return 0.0;
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  ~ScopedTimer() {
    if (!armed_) return;
    double us = ElapsedUs();
    if (histogram_ != nullptr) histogram_->Observe(us);
    if (total_us_ != nullptr) total_us_->Add(static_cast<int64_t>(us));
  }

 private:
  Histogram* histogram_;
  Counter* total_us_;
  std::chrono::steady_clock::time_point start_;
  bool armed_ = false;
};

}  // namespace zerodb::obs

#endif  // ZERODB_OBS_METRICS_H_
