#ifndef ZERODB_OBS_EXPORT_H_
#define ZERODB_OBS_EXPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace zerodb::obs {

class PredictionQualityMonitor;

/// Writes `text` to `path` crash-safely: the bytes land in `<path>.tmp`
/// first and replace `path` via atomic rename, so a reader (or a crash mid
/// write) sees either the old artifact or the new one — never a torn file.
/// Every artifact writer in this module (JSON, Prometheus, traces) goes
/// through here.
Status WriteFileAtomic(const std::string& path, const std::string& text);

/// One run's observability output, assembled by benches (--metrics_out) and
/// any other caller that wants a single machine-readable artifact: registry
/// metrics + query traces + training loss curves + free-form labels.
///
/// Layout:
/// {
///   "name": "...", "labels": {...},
///   "metrics": {"counters": ..., "gauges": ..., "histograms": ...},
///   "traces": {"<trace name>": <span tree>, ...},
///   "training": {"<run name>": [{epoch,...}, ...], ...},
///   "quality": {"samples": ..., "qerror": {...}, "drift": {...}}
/// }
class MetricsArtifact {
 public:
  explicit MetricsArtifact(std::string name) : name_(std::move(name)) {}

  void AddLabel(std::string key, std::string value) {
    labels_.emplace_back(std::move(key), std::move(value));
  }
  /// The registry whose metrics are dumped (nullptr = omit section).
  void SetRegistry(const MetricsRegistry* registry) { registry_ = registry; }
  void AddTrace(std::string name, Span root) {
    traces_.emplace_back(std::move(name), std::move(root));
  }
  void AddTrainingRun(std::string name, std::vector<EpochStat> history) {
    training_.emplace_back(std::move(name), std::move(history));
  }
  /// The prediction-quality monitor whose rolling q-error / drift state is
  /// embedded as the "quality" section (nullptr = omit).
  void SetQualityMonitor(const PredictionQualityMonitor* monitor) {
    quality_ = monitor;
  }

  JsonValue ToJson() const;

  /// Serializes (pretty-printed) to `path` crash-safely (tmp file + atomic
  /// rename).
  Status WriteTo(const std::string& path) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> labels_;
  const MetricsRegistry* registry_ = nullptr;
  std::vector<std::pair<std::string, Span>> traces_;
  std::vector<std::pair<std::string, std::vector<EpochStat>>> training_;
  const PredictionQualityMonitor* quality_ = nullptr;
};

}  // namespace zerodb::obs

#endif  // ZERODB_OBS_EXPORT_H_
