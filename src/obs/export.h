#ifndef ZERODB_OBS_EXPORT_H_
#define ZERODB_OBS_EXPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace zerodb::obs {

/// One run's observability output, assembled by benches (--metrics_out) and
/// any other caller that wants a single machine-readable artifact: registry
/// metrics + query traces + training loss curves + free-form labels.
///
/// Layout:
/// {
///   "name": "...", "labels": {...},
///   "metrics": {"counters": ..., "gauges": ..., "histograms": ...},
///   "traces": {"<trace name>": <span tree>, ...},
///   "training": {"<run name>": [{epoch,...}, ...], ...}
/// }
class MetricsArtifact {
 public:
  explicit MetricsArtifact(std::string name) : name_(std::move(name)) {}

  void AddLabel(std::string key, std::string value) {
    labels_.emplace_back(std::move(key), std::move(value));
  }
  /// The registry whose metrics are dumped (nullptr = omit section).
  void SetRegistry(const MetricsRegistry* registry) { registry_ = registry; }
  void AddTrace(std::string name, Span root) {
    traces_.emplace_back(std::move(name), std::move(root));
  }
  void AddTrainingRun(std::string name, std::vector<EpochStat> history) {
    training_.emplace_back(std::move(name), std::move(history));
  }

  JsonValue ToJson() const;

  /// Serializes (pretty-printed) to `path`, overwriting.
  Status WriteTo(const std::string& path) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> labels_;
  const MetricsRegistry* registry_ = nullptr;
  std::vector<std::pair<std::string, Span>> traces_;
  std::vector<std::pair<std::string, std::vector<EpochStat>>> training_;
};

}  // namespace zerodb::obs

#endif  // ZERODB_OBS_EXPORT_H_
