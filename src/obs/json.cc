#include "obs/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace zerodb::obs {

bool JsonValue::AsBool() const {
  ZDB_CHECK(kind_ == Kind::kBool) << "JsonValue is not a bool";
  return bool_;
}

int64_t JsonValue::AsInt() const {
  if (kind_ == Kind::kDouble) return static_cast<int64_t>(double_);
  ZDB_CHECK(kind_ == Kind::kInt) << "JsonValue is not a number";
  return int_;
}

double JsonValue::AsDouble() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  ZDB_CHECK(kind_ == Kind::kDouble) << "JsonValue is not a number";
  return double_;
}

const std::string& JsonValue::AsString() const {
  ZDB_CHECK(kind_ == Kind::kString) << "JsonValue is not a string";
  return string_;
}

size_t JsonValue::size() const {
  if (kind_ == Kind::kObject) return object_.size();
  ZDB_CHECK(kind_ == Kind::kArray) << "JsonValue is not a container";
  return array_.size();
}

const JsonValue& JsonValue::at(size_t index) const {
  ZDB_CHECK(kind_ == Kind::kArray) << "JsonValue is not an array";
  ZDB_CHECK_LT(index, array_.size());
  return array_[index];
}

void JsonValue::Append(JsonValue value) {
  ZDB_CHECK(kind_ == Kind::kArray) << "JsonValue is not an array";
  array_.push_back(std::move(value));
}

void JsonValue::Set(std::string key, JsonValue value) {
  ZDB_CHECK(kind_ == Kind::kObject) << "JsonValue is not an object";
  for (auto& [existing, slot] : object_) {
    if (existing == key) {
      slot = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [existing, value] : object_) {
    if (existing == key) return &value;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  ZDB_CHECK(kind_ == Kind::kObject) << "JsonValue is not an object";
  return object_;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          // Cannot truncate: 6 chars + NUL always fit in 8.
          (void)std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void AppendNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    *out += "null";
    return;
  }
  char buf[32];
  // Cannot truncate: %.17g of a finite double is at most 24 chars.
  (void)std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Ensure the token re-parses as a double (keep a '.', 'e' or similar).
  if (std::strpbrk(buf, ".eEnN") == nullptr) std::strcat(buf, ".0");
  *out += buf;
}

void AppendIndent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kInt:
      *out += std::to_string(int_);
      return;
    case Kind::kDouble:
      AppendNumber(out, double_);
      return;
    case Kind::kString:
      out->push_back('"');
      *out += JsonEscape(string_);
      out->push_back('"');
      return;
    case Kind::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendIndent(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) AppendIndent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendIndent(out, indent, depth + 1);
        out->push_back('"');
        *out += JsonEscape(object_[i].first);
        *out += indent > 0 ? "\": " : "\":";
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) AppendIndent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser. Depth-limited so hostile inputs cannot
/// blow the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> ParseDocument() {
    ZDB_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      ZDB_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue(std::move(s));
    }
    if (ConsumeLiteral("true")) return JsonValue(true);
    if (ConsumeLiteral("false")) return JsonValue(false);
    if (ConsumeLiteral("null")) return JsonValue();
    return ParseNumber();
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    ZDB_CHECK(Consume('{'));
    JsonValue object = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return object;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      ZDB_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      ZDB_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      object.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return object;
      return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    ZDB_CHECK(Consume('['));
    JsonValue array = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return array;
    while (true) {
      ZDB_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      array.Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return array;
      return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<std::string> ParseString() {
    ZDB_CHECK(Consume('"'));
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          ZDB_ASSIGN_OR_RETURN(uint32_t code, ParseHex4());
          // Combine surrogate pairs.
          if (code >= 0xD800 && code <= 0xDBFF && pos_ + 1 < text_.size() &&
              text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
            pos_ += 2;
            ZDB_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
            if (low >= 0xDC00 && low <= 0xDFFF) {
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            }
          }
          AppendUtf8(&out, code);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  StatusOr<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<uint32_t>(c - 'A' + 10);
      else return Error("invalid hex digit in \\u escape");
    }
    return value;
  }

  static void AppendUtf8(std::string* out, uint32_t code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Error("invalid number");
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      long long value = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return JsonValue(static_cast<int64_t>(value));
      }
      // Fall through to double on overflow.
    }
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("invalid number");
    return JsonValue(value);
  }

  // Borrowed from JsonValue::Parse's argument; the parser is a stack-local
  // inside that one call and never escapes it.
  const std::string& text_;  // zerodb-lint: allow(lifetime-member)
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> JsonValue::Parse(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace zerodb::obs
