#ifndef ZERODB_OBS_POOL_TELEMETRY_H_
#define ZERODB_OBS_POOL_TELEMETRY_H_

namespace zerodb::obs {

/// Installs the obs implementation of zerodb::PoolHooks: pool.* metrics
/// (tasks_scheduled, tasks_run, parallel_for_calls, parallel_for_chunks,
/// global_threads, steal_latency_us) and per-worker timeline tracks
/// ("pool-worker-N" + a "pool.task" scope per task).
///
/// Idempotent and cheap after the first call. Invoked automatically from
/// MetricsRegistry::Global() and TraceEventRecorder::InstallGlobal(), so
/// any code path that turns on observability wires up the pool too; the
/// pool itself never includes obs/ (module-DAG rule `layering`).
void InstallPoolTelemetry();

}  // namespace zerodb::obs

#endif  // ZERODB_OBS_POOL_TELEMETRY_H_
