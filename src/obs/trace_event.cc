#include "obs/trace_event.h"

#include <utility>

#include "common/check.h"
#include "common/sync.h"
#include "obs/export.h"
#include "obs/pool_telemetry.h"

namespace zerodb::obs {

namespace {

/// Small dense per-thread key (stable for the thread's lifetime), used to
/// index recorder buffers without hashing std::thread::id.
int CurrentThreadKey() {
  static std::atomic<int> next_key{0};
  thread_local int key = next_key.fetch_add(1, std::memory_order_relaxed);
  return key;
}

std::atomic<uint64_t> g_next_recorder_serial{1};

thread_local std::string* t_thread_trace_name = nullptr;

/// One-entry cache: the last (recorder serial, buffer) this thread touched.
/// Serial (not pointer) keyed, so a recorder reallocated at the same address
/// can never alias a stale cache entry.
struct BufferCache {
  uint64_t serial = 0;
  void* buffer = nullptr;
};
thread_local BufferCache t_buffer_cache;

}  // namespace

void SetCurrentThreadTraceName(std::string name) {
  if (t_thread_trace_name == nullptr) {
    // Leaked once per thread naming itself; threads are pooled and bounded.
    // zerodb-lint: allow(naked-new): deliberate per-thread leak, see above
    t_thread_trace_name = new std::string();
  }
  *t_thread_trace_name = std::move(name);
}

std::atomic<TraceEventRecorder*> TraceEventRecorder::global_{nullptr};

TraceEventRecorder::TraceEventRecorder(Options options)
    : options_(options),
      serial_(g_next_recorder_serial.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

double TraceEventRecorder::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceEventRecorder::TrackBuffer* TraceEventRecorder::BufferForThisThread() {
  if (t_buffer_cache.serial == serial_) {
    return static_cast<TrackBuffer*>(t_buffer_cache.buffer);
  }
  const int key = CurrentThreadKey();
  TrackBuffer* buffer = nullptr;
  {
    MutexLock lock(&mu_);
    for (auto& [existing_key, existing] : buffers_) {
      if (existing_key == key) {
        buffer = existing.get();
        break;
      }
    }
    if (buffer == nullptr) {
      auto owned = std::make_unique<TrackBuffer>();
      owned->tid = next_tid_++;
      owned->name = t_thread_trace_name != nullptr && !t_thread_trace_name->empty()
                        ? *t_thread_trace_name
                        : "thread-" + std::to_string(owned->tid);
      buffer = owned.get();
      buffers_.emplace_back(key, std::move(owned));
    }
  }
  t_buffer_cache = {serial_, buffer};
  return buffer;
}

void TraceEventRecorder::AppendTo(TrackBuffer* buffer, Event event) {
  MutexLock lock(&buffer->mu);
  if (buffer->events.size() >= options_.max_events_per_thread) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer->events.push_back(std::move(event));
}

void TraceEventRecorder::AddCompleteEvent(
    std::string name, const char* category, double ts_us, double dur_us,
    std::vector<std::pair<std::string, double>> args) {
  if (!enabled()) return;
  Event event;
  event.name = std::move(name);
  event.category = category;
  event.ph = 'X';
  event.ts_us = ts_us;
  event.dur_us = dur_us < 0.0 ? 0.0 : dur_us;
  event.args = std::move(args);
  AppendTo(BufferForThisThread(), std::move(event));
}

void TraceEventRecorder::AddCounter(std::string name, double value) {
  if (!enabled()) return;
  Event event;
  event.name = std::move(name);
  event.category = "counter";
  event.ph = 'C';
  event.ts_us = NowUs();
  event.value = value;
  AppendTo(BufferForThisThread(), std::move(event));
}

int TraceEventRecorder::RegisterVirtualTrack(const std::string& name) {
  MutexLock lock(&mu_);
  for (const auto& track : virtual_tracks_) {
    if (track->name == name) return track->tid;
  }
  auto track = std::make_unique<TrackBuffer>();
  track->tid = next_tid_++;
  track->name = name;
  int tid = track->tid;
  virtual_tracks_.push_back(std::move(track));
  return tid;
}

void TraceEventRecorder::AddCompleteEventOnTrack(
    int tid, std::string name, const char* category, double ts_us,
    double dur_us, std::vector<std::pair<std::string, double>> args) {
  if (!enabled()) return;
  TrackBuffer* track = nullptr;
  {
    MutexLock lock(&mu_);
    for (const auto& candidate : virtual_tracks_) {
      if (candidate->tid == tid) {
        track = candidate.get();
        break;
      }
    }
  }
  ZDB_CHECK(track != nullptr) << "unknown virtual track tid " << tid;
  Event event;
  event.name = std::move(name);
  event.category = category;
  event.ph = 'X';
  event.ts_us = ts_us;
  event.dur_us = dur_us < 0.0 ? 0.0 : dur_us;
  event.args = std::move(args);
  AppendTo(track, std::move(event));
}

JsonValue TraceEventRecorder::ToJson() const {
  constexpr int kPid = 1;
  JsonValue events = JsonValue::Array();

  auto metadata = [&](const char* what, int tid, const std::string& name) {
    JsonValue event = JsonValue::Object();
    event.Set("ph", "M");
    event.Set("name", what);
    event.Set("pid", kPid);
    event.Set("tid", tid);
    JsonValue args = JsonValue::Object();
    args.Set("name", name);
    event.Set("args", std::move(args));
    events.Append(std::move(event));
  };
  metadata("process_name", 0, "zerodb");

  auto dump_track = [&](const TrackBuffer& track) {
    metadata("thread_name", track.tid, track.name);
    MutexLock lock(&track.mu);
    for (const Event& event : track.events) {
      JsonValue out = JsonValue::Object();
      out.Set("ph", std::string(1, event.ph));
      out.Set("name", event.name);
      out.Set("cat", event.category);
      out.Set("pid", kPid);
      out.Set("tid", track.tid);
      out.Set("ts", event.ts_us);
      if (event.ph == 'X') {
        out.Set("dur", event.dur_us);
        if (!event.args.empty()) {
          JsonValue args = JsonValue::Object();
          for (const auto& [key, value] : event.args) args.Set(key, value);
          out.Set("args", std::move(args));
        }
      } else if (event.ph == 'C') {
        JsonValue args = JsonValue::Object();
        args.Set("value", event.value);
        out.Set("args", std::move(args));
      }
      events.Append(std::move(out));
    }
  };

  {
    MutexLock lock(&mu_);
    for (const auto& [key, buffer] : buffers_) dump_track(*buffer);
    for (const auto& track : virtual_tracks_) dump_track(*track);
  }

  int64_t dropped = dropped_events();
  if (dropped > 0) {
    JsonValue event = JsonValue::Object();
    event.Set("ph", "C");
    event.Set("name", "zerodb_dropped_events");
    event.Set("cat", "counter");
    event.Set("pid", kPid);
    event.Set("tid", 0);
    event.Set("ts", NowUs());
    JsonValue args = JsonValue::Object();
    args.Set("value", dropped);
    event.Set("args", std::move(args));
    events.Append(std::move(event));
  }

  JsonValue out = JsonValue::Object();
  out.Set("traceEvents", std::move(events));
  out.Set("displayTimeUnit", "ms");
  return out;
}

Status TraceEventRecorder::WriteTo(const std::string& path) const {
  std::string text = ToJson().Dump(/*indent=*/1);
  text.push_back('\n');
  return WriteFileAtomic(path, text);
}

TraceEventRecorder* TraceEventRecorder::InstallGlobal() {
  static TraceEventRecorder* recorder = new TraceEventRecorder();
  TraceEventRecorder* expected = nullptr;
  if (global_.compare_exchange_strong(expected, recorder,
                                      std::memory_order_acq_rel)) {
    if (t_thread_trace_name == nullptr || t_thread_trace_name->empty()) {
      SetCurrentThreadTraceName("main");
    }
  }
  recorder->set_enabled(true);
  // Tracing without metrics is common in tests; make sure pool workers get
  // their timeline tracks either way.
  InstallPoolTelemetry();
  return recorder;
}

namespace {

void ProjectSpan(TraceEventRecorder* recorder, int tid, const Span& span,
                 double start_us) {
  std::string name = span.name;
  if (!span.detail.empty()) name += " " + span.detail;
  recorder->AddCompleteEventOnTrack(tid, std::move(name), "span", start_us,
                                    span.duration_ms * 1000.0,
                                    span.attributes);
  double child_start = start_us;
  for (const Span& child : span.children) {
    ProjectSpan(recorder, tid, child, child_start);
    child_start += child.duration_ms * 1000.0;
  }
}

}  // namespace

void ProjectSpanTree(TraceEventRecorder* recorder, const Span& root,
                     const std::string& track_name, double end_ts_us) {
  if (recorder == nullptr || !recorder->enabled()) return;
  if (end_ts_us < 0.0) end_ts_us = recorder->NowUs();
  int tid = recorder->RegisterVirtualTrack(track_name);
  double start_us = end_ts_us - root.duration_ms * 1000.0;
  if (start_us < 0.0) start_us = 0.0;
  ProjectSpan(recorder, tid, root, start_us);
}

}  // namespace zerodb::obs
