#ifndef ZERODB_OBS_TRACE_H_
#define ZERODB_OBS_TRACE_H_

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace zerodb::obs {

/// One timed region of a query's execution. The executor records one span
/// per physical operator, so a finished trace is a tree mirroring the
/// physical plan: span children = operator children, attributes = the
/// operator's work counters (rows in/out, pages, probes, ...), wall time in
/// milliseconds. `detail` carries a short free-form annotation such as the
/// scanned table's name.
struct Span {
  std::string name;
  std::string detail;
  double duration_ms = 0.0;
  std::vector<std::pair<std::string, double>> attributes;
  std::vector<Span> children;

  void AddAttribute(std::string key, double value) {
    attributes.emplace_back(std::move(key), value);
  }
  /// Returns the attribute value or `fallback` when absent.
  double Attribute(const std::string& key, double fallback = 0.0) const;

  /// Nodes in this subtree (including this one).
  size_t TreeSize() const;

  JsonValue ToJson() const;
  static StatusOr<Span> FromJson(const JsonValue& value);
};

/// Records a tree of spans for one (or several) query executions.
///
/// Thread-compatible, not thread-safe (DESIGN.md "Concurrency discipline"):
/// a tracer is confined to one executing thread, mirroring the executor's
/// single-threaded plan walk — concurrent executions each own a tracer
/// (tests/sync_test.cc stresses exactly that confinement under TSan). When
/// the parallel executor lands, roots_/open_/start_times_ become
/// ZDB_GUARDED_BY a tracer mutex or stay per-worker and merge on join.
/// Pass nullptr wherever a tracer is accepted to disable tracing entirely.
class QueryTracer {
 public:
  QueryTracer() = default;

  QueryTracer(const QueryTracer&) = delete;
  QueryTracer& operator=(const QueryTracer&) = delete;

  /// Opens a span as a child of the innermost open span (or a new root).
  /// Returns the span; valid until the tracer is cleared or destroyed, but
  /// siblings may relocate it — use inside the matching Begin/End pair only
  /// via SpanScope below.
  Span* BeginSpan(std::string name);
  void EndSpan();

  /// Finished root spans (one per traced query execution).
  const std::vector<Span>& roots() const { return roots_; }
  bool has_open_span() const { return !open_.empty(); }
  void Clear();

  /// Array of root span trees.
  JsonValue ToJson() const;

 private:
  std::vector<Span> roots_;
  std::vector<Span*> open_;  ///< innermost last; see BeginSpan for validity
  std::vector<std::chrono::steady_clock::time_point> start_times_;
};

/// RAII Begin/End pair tolerant of a null tracer, so instrumented code needs
/// no branching: `obs::SpanScope scope(options_.tracer, "HashJoin");`.
class SpanScope {
 public:
  SpanScope(QueryTracer* tracer, std::string name) : tracer_(tracer) {
    if (tracer_ != nullptr) span_ = tracer_->BeginSpan(std::move(name));
  }
  ~SpanScope() {
    if (tracer_ != nullptr) tracer_->EndSpan();
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  bool active() const { return span_ != nullptr; }
  void SetDetail(std::string detail) {
    if (span_ != nullptr) span_->detail = std::move(detail);
  }
  void AddAttribute(std::string key, double value) {
    if (span_ != nullptr) span_->AddAttribute(std::move(key), value);
  }

 private:
  QueryTracer* tracer_;
  Span* span_ = nullptr;
};

}  // namespace zerodb::obs

#endif  // ZERODB_OBS_TRACE_H_
