#ifndef ZERODB_OBS_TELEMETRY_H_
#define ZERODB_OBS_TELEMETRY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "obs/json.h"

namespace zerodb::obs {

/// One epoch of a training run as the trainer saw it.
struct EpochStat {
  size_t epoch = 0;  ///< 1-based
  double train_loss = 0.0;
  double val_loss = 0.0;
  double learning_rate = 0.0;
  double grad_norm = 0.0;  ///< mean pre-clipping global L2 norm over batches
};

/// Sink for per-epoch training telemetry. The trainer appends one EpochStat
/// per epoch; with `log_epochs` the sink also emits an info log line per
/// epoch — the structured replacement for the old `verbose` prints.
///
/// Thread-compatible: owned by the single training thread that feeds it
/// (DESIGN.md "Concurrency discipline"); epochs_ becomes ZDB_GUARDED_BY a
/// mutex if trainers ever share a sink.
class TrainTelemetry {
 public:
  explicit TrainTelemetry(std::string run_name = "train",
                          bool log_epochs = false)
      : run_name_(std::move(run_name)), log_epochs_(log_epochs) {}

  void RecordEpoch(const EpochStat& stat);

  const std::string& run_name() const { return run_name_; }
  const std::vector<EpochStat>& epochs() const { return epochs_; }

  JsonValue ToJson() const;

  /// Formats + logs one epoch line (used by RecordEpoch and by the trainer's
  /// verbose path when no sink is attached).
  static void LogEpoch(const std::string& run_name, const EpochStat& stat);

  /// The loss-curve JSON shared by ToJson and TrainResult exporters.
  static JsonValue HistoryToJson(const std::vector<EpochStat>& history);

 private:
  std::string run_name_;
  bool log_epochs_;
  std::vector<EpochStat> epochs_;
};

}  // namespace zerodb::obs

#endif  // ZERODB_OBS_TELEMETRY_H_
