#ifndef ZERODB_OBS_PROM_H_
#define ZERODB_OBS_PROM_H_

#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace zerodb::obs {

/// Renders `registry` in the Prometheus text exposition format (version
/// 0.0.4): one `# TYPE` line plus samples per metric, names sorted.
///
/// Mapping and caveats (DESIGN.md "Timeline tracing & quality monitoring"):
///  - metric names are sanitized to [a-zA-Z0-9_:] — the registry's dotted
///    names become underscored (pool.tasks_run → pool_tasks_run);
///  - Counter → counter, Gauge → gauge;
///  - Histogram → histogram with *cumulative* `_bucket{le="..."}` series
///    (the registry stores per-bucket counts; the renderer accumulates),
///    a final `le="+Inf"` bucket, plus `_sum` and `_count`;
///  - samples carry no timestamps: this is a point-in-time scrape of a
///    process-local registry, not a federation endpoint. Writers are
///    relaxed atomics, so sum/count/buckets may disagree by in-flight
///    observations — Prometheus tolerates that within one scrape.
std::string RenderPrometheus(const MetricsRegistry& registry);

/// Renders a snapshot taken earlier (e.g. to expose the same instant as a
/// JSON artifact written next to it).
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

/// Sanitizes one metric name for exposition (invalid chars → '_'; a leading
/// digit gets a '_' prefix).
std::string PrometheusName(const std::string& name);

/// RenderPrometheus + crash-safe write (tmp file + atomic rename).
Status WritePrometheusTo(const MetricsRegistry& registry,
                         const std::string& path);

}  // namespace zerodb::obs

#endif  // ZERODB_OBS_PROM_H_
