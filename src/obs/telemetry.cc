#include "obs/telemetry.h"

#include "common/logging.h"

namespace zerodb::obs {

void TrainTelemetry::RecordEpoch(const EpochStat& stat) {
  epochs_.push_back(stat);
  if (log_epochs_) LogEpoch(run_name_, stat);
}

void TrainTelemetry::LogEpoch(const std::string& run_name,
                              const EpochStat& stat) {
  ZDB_LOG(Info) << run_name << " epoch " << stat.epoch
                << " train=" << stat.train_loss << " val=" << stat.val_loss
                << " lr=" << stat.learning_rate
                << " grad_norm=" << stat.grad_norm;
}

JsonValue TrainTelemetry::HistoryToJson(const std::vector<EpochStat>& history) {
  JsonValue epochs = JsonValue::Array();
  for (const EpochStat& stat : history) {
    JsonValue entry = JsonValue::Object();
    entry.Set("epoch", stat.epoch);
    entry.Set("train_loss", stat.train_loss);
    entry.Set("val_loss", stat.val_loss);
    entry.Set("learning_rate", stat.learning_rate);
    entry.Set("grad_norm", stat.grad_norm);
    epochs.Append(std::move(entry));
  }
  return epochs;
}

JsonValue TrainTelemetry::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("run", run_name_);
  out.Set("epochs", HistoryToJson(epochs_));
  return out;
}

}  // namespace zerodb::obs
