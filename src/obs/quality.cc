#include "obs/quality.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/sync.h"

namespace zerodb::obs {

PredictionQualityMonitor::PredictionQualityMonitor(Options options)
    : options_(std::move(options)),
      log_threshold_(std::log(std::max(options_.drift_threshold, 1.0))) {
  MetricsRegistry* registry =
      options_.registry != nullptr ? options_.registry
                                   : &MetricsRegistry::Global();
  const std::string& prefix = options_.metric_prefix;
  // Q-errors start at 1; factor 1.3 gives ~4 buckets per doubling up to
  // ~1500x, fine-grained enough for p95 interpolation near 1.
  qerror_histogram_ = registry->GetHistogram(
      prefix + ".qerror", Histogram::ExponentialBounds(1.0, 1.3, 28));
  drift_gauge_ = registry->GetGauge(prefix + ".drift");
  ewma_gauge_ = registry->GetGauge(prefix + ".ewma_qerror");
  samples_counter_ = registry->GetCounter(prefix + ".samples");
  drift_events_counter_ = registry->GetCounter(prefix + ".drift_events");
  window_.reserve(std::max<size_t>(options_.window, 1));
}

void PredictionQualityMonitor::Record(double predicted_ms, double actual_ms) {
  if (!(actual_ms > 0.0)) return;  // also rejects NaN
  const double qerr = QError(predicted_ms, actual_ms);
  const double log_qerr = std::log(std::max(qerr, 1.0));

  qerror_histogram_->Observe(qerr);
  samples_counter_->Add(1);

  MutexLock lock(&mu_);
  ++samples_;
  max_qerror_ = std::max(max_qerror_, qerr);

  const size_t cap = std::max<size_t>(options_.window, 1);
  if (window_.size() < cap) {
    window_.emplace_back(predicted_ms, actual_ms);
  } else {
    window_[window_next_] = {predicted_ms, actual_ms};
    window_next_ = (window_next_ + 1) % cap;
  }

  if (!reference_frozen_) {
    warmup_logs_.push_back(log_qerr);
    ewma_log_ = log_qerr;  // track raw level until the detector arms
    if (warmup_logs_.size() >= std::max<size_t>(options_.min_samples, 1)) {
      reference_log_ = Quantile(warmup_logs_, 0.5);
      ewma_log_ = reference_log_;
      reference_frozen_ = true;
      warmup_logs_.clear();
      warmup_logs_.shrink_to_fit();
    }
  } else {
    const double alpha = std::clamp(options_.ewma_alpha, 0.0, 1.0);
    ewma_log_ = (1.0 - alpha) * ewma_log_ + alpha * log_qerr;
  }
  ewma_gauge_->Set(std::exp(ewma_log_));
  UpdateDriftLocked();
}

void PredictionQualityMonitor::UpdateDriftLocked() {
  const bool was_drifting = drifting_.load(std::memory_order_relaxed);
  const bool now_drifting =
      reference_frozen_ && (ewma_log_ - reference_log_ > log_threshold_);
  if (now_drifting != was_drifting) {
    drifting_.store(now_drifting, std::memory_order_relaxed);
    drift_gauge_->Set(now_drifting ? 1.0 : 0.0);
    if (now_drifting) {
      ++drift_events_;
      drift_events_counter_->Add(1);
    }
  }
  if (now_drifting &&
      (last_warn_sample_ < 0 ||
       samples_ - last_warn_sample_ >= std::max<int64_t>(options_.warn_every,
                                                         1))) {
    last_warn_sample_ = samples_;
    ZDB_LOG(Warning) << "prediction quality drift: ewma q-error "
                     << std::exp(ewma_log_) << " vs warm-up reference "
                     << std::exp(reference_log_) << " (threshold "
                     << options_.drift_threshold << "x, " << samples_
                     << " samples)";
  }
}

int64_t PredictionQualityMonitor::samples() const {
  MutexLock lock(&mu_);
  return samples_;
}

int64_t PredictionQualityMonitor::drift_events() const {
  MutexLock lock(&mu_);
  return drift_events_;
}

double PredictionQualityMonitor::EwmaQError() const {
  MutexLock lock(&mu_);
  return samples_ > 0 ? std::exp(ewma_log_) : 1.0;
}

double PredictionQualityMonitor::ReferenceQError() const {
  MutexLock lock(&mu_);
  return reference_frozen_ ? std::exp(reference_log_) : 1.0;
}

double PredictionQualityMonitor::QErrorQuantile(double q) const {
  return qerror_histogram_->Quantile(q);
}

JsonValue PredictionQualityMonitor::ToJson() const {
  MutexLock lock(&mu_);
  JsonValue out = JsonValue::Object();
  out.Set("samples", samples_);

  JsonValue qerror = JsonValue::Object();
  qerror.Set("p50", qerror_histogram_->Quantile(0.5));
  qerror.Set("p95", qerror_histogram_->Quantile(0.95));
  qerror.Set("p99", qerror_histogram_->Quantile(0.99));
  qerror.Set("max", max_qerror_);
  out.Set("qerror", std::move(qerror));

  JsonValue drift = JsonValue::Object();
  drift.Set("drifting", drifting_.load(std::memory_order_relaxed));
  drift.Set("events", drift_events_);
  drift.Set("ewma_qerror", samples_ > 0 ? std::exp(ewma_log_) : 1.0);
  drift.Set("reference_qerror",
            reference_frozen_ ? std::exp(reference_log_) : 1.0);
  drift.Set("threshold", options_.drift_threshold);
  drift.Set("armed", reference_frozen_);
  out.Set("drift", std::move(drift));
  return out;
}

}  // namespace zerodb::obs
