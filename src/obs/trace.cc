#include "obs/trace.h"

#include "common/check.h"

namespace zerodb::obs {

double Span::Attribute(const std::string& key, double fallback) const {
  for (const auto& [attr_key, value] : attributes) {
    if (attr_key == key) return value;
  }
  return fallback;
}

size_t Span::TreeSize() const {
  size_t size = 1;
  for (const Span& child : children) size += child.TreeSize();
  return size;
}

JsonValue Span::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("name", name);
  if (!detail.empty()) out.Set("detail", detail);
  out.Set("duration_ms", duration_ms);
  if (!attributes.empty()) {
    JsonValue attrs = JsonValue::Object();
    for (const auto& [key, value] : attributes) attrs.Set(key, value);
    out.Set("attributes", std::move(attrs));
  }
  if (!children.empty()) {
    JsonValue kids = JsonValue::Array();
    for (const Span& child : children) kids.Append(child.ToJson());
    out.Set("children", std::move(kids));
  }
  return out;
}

StatusOr<Span> Span::FromJson(const JsonValue& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("span JSON must be an object");
  }
  const JsonValue* name = value.Find("name");
  if (name == nullptr || !name->is_string()) {
    return Status::InvalidArgument("span JSON missing string 'name'");
  }
  Span span;
  span.name = name->AsString();
  if (const JsonValue* detail = value.Find("detail"); detail != nullptr) {
    if (!detail->is_string()) {
      return Status::InvalidArgument("span 'detail' must be a string");
    }
    span.detail = detail->AsString();
  }
  if (const JsonValue* duration = value.Find("duration_ms");
      duration != nullptr) {
    if (!duration->is_number()) {
      return Status::InvalidArgument("span 'duration_ms' must be a number");
    }
    span.duration_ms = duration->AsDouble();
  }
  if (const JsonValue* attrs = value.Find("attributes"); attrs != nullptr) {
    if (!attrs->is_object()) {
      return Status::InvalidArgument("span 'attributes' must be an object");
    }
    for (const auto& [key, attr] : attrs->members()) {
      if (!attr.is_number()) {
        return Status::InvalidArgument("span attribute '" + key +
                                       "' must be a number");
      }
      span.AddAttribute(key, attr.AsDouble());
    }
  }
  if (const JsonValue* children = value.Find("children"); children != nullptr) {
    if (!children->is_array()) {
      return Status::InvalidArgument("span 'children' must be an array");
    }
    for (size_t i = 0; i < children->size(); ++i) {
      ZDB_ASSIGN_OR_RETURN(Span child, FromJson(children->at(i)));
      span.children.push_back(std::move(child));
    }
  }
  return span;
}

Span* QueryTracer::BeginSpan(std::string name) {
  // The span lives in its parent's children vector (or roots_). Ancestor
  // pointers in open_ stay valid: while a span is open no sibling can be
  // appended next to it, so no vector containing an open span reallocates.
  std::vector<Span>* siblings =
      open_.empty() ? &roots_ : &open_.back()->children;
  siblings->emplace_back();
  Span* span = &siblings->back();
  span->name = std::move(name);
  open_.push_back(span);
  start_times_.push_back(std::chrono::steady_clock::now());
  return span;
}

void QueryTracer::EndSpan() {
  ZDB_CHECK(!open_.empty()) << "EndSpan without matching BeginSpan";
  Span* span = open_.back();
  span->duration_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() -
                          start_times_.back())
                          .count();
  open_.pop_back();
  start_times_.pop_back();
}

void QueryTracer::Clear() {
  ZDB_CHECK(open_.empty()) << "Clear with open spans";
  roots_.clear();
}

JsonValue QueryTracer::ToJson() const {
  JsonValue out = JsonValue::Array();
  for (const Span& root : roots_) out.Append(root.ToJson());
  return out;
}

}  // namespace zerodb::obs
