#include "featurize/mscn_featurizer.h"

#include <algorithm>

#include "common/check.h"

namespace zerodb::featurize {

namespace {

size_t TableIndex(const storage::Database& db, const std::string& table) {
  for (size_t i = 0; i < db.tables().size(); ++i) {
    if (db.tables()[i].name() == table) {
      return std::min(i, MscnFeaturizer::kMaxTables - 1);
    }
  }
  return MscnFeaturizer::kMaxTables - 1;
}

size_t ColumnIndexCapped(size_t column) {
  return std::min(column, MscnFeaturizer::kMaxColumns - 1);
}

}  // namespace

MscnSets MscnFeaturizer::Featurize(const plan::QuerySpec& query,
                                   const datagen::DatabaseEnv& env) const {
  const storage::Database& db = *env.db;
  MscnSets sets;

  for (const std::string& table : query.tables) {
    std::vector<float> v(kTableDim, 0.0f);
    v[TableIndex(db, table)] = 1.0f;
    sets.tables.push_back(std::move(v));
  }

  for (const plan::JoinSpec& join : query.joins) {
    std::vector<float> v(kJoinDim, 0.0f);
    const storage::Table* left = db.FindTable(join.left_table);
    const storage::Table* right = db.FindTable(join.right_table);
    ZDB_CHECK(left != nullptr && right != nullptr);
    size_t offset = 0;
    v[offset + TableIndex(db, join.left_table)] = 1.0f;
    offset += kMaxTables;
    v[offset + ColumnIndexCapped(*left->schema().FindColumn(join.left_column))] =
        1.0f;
    offset += kMaxColumns;
    v[offset + TableIndex(db, join.right_table)] = 1.0f;
    offset += kMaxTables;
    v[offset +
      ColumnIndexCapped(*right->schema().FindColumn(join.right_column))] = 1.0f;
    sets.joins.push_back(std::move(v));
  }

  for (const plan::FilterSpec& filter : query.filters) {
    std::vector<const plan::Predicate*> leaves;
    filter.predicate.CollectLeaves(&leaves);
    for (const plan::Predicate* leaf : leaves) {
      std::vector<float> v(kPredicateDim, 0.0f);
      size_t offset = 0;
      v[offset + TableIndex(db, filter.table)] = 1.0f;
      offset += kMaxTables;
      v[offset + ColumnIndexCapped(leaf->slot())] = 1.0f;
      offset += kMaxColumns;
      v[offset + static_cast<size_t>(leaf->op())] = 1.0f;
      offset += 6;
      const stats::ColumnStats& column_stats =
          env.stats.GetColumn(filter.table, leaf->slot());
      double range = column_stats.max - column_stats.min;
      double normalized =
          range > 0 ? (leaf->literal() - column_stats.min) / range : 0.5;
      v[offset] = static_cast<float>(std::clamp(normalized, 0.0, 1.0));
      sets.predicates.push_back(std::move(v));
    }
  }

  return sets;
}

}  // namespace zerodb::featurize
