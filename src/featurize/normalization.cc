#include "featurize/normalization.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace zerodb::featurize {

void FeatureNorm::Fit(const std::vector<const std::vector<float>*>& rows) {
  ZDB_CHECK(!rows.empty());
  const size_t dim = rows[0]->size();
  std::vector<double> sum(dim, 0.0);
  std::vector<double> sum_sq(dim, 0.0);
  for (const std::vector<float>* row : rows) {
    ZDB_CHECK_EQ(row->size(), dim);
    for (size_t d = 0; d < dim; ++d) {
      double v = (*row)[d];
      sum[d] += v;
      sum_sq[d] += v * v;
    }
  }
  const double n = static_cast<double>(rows.size());
  mean_.resize(dim);
  std_.resize(dim);
  for (size_t d = 0; d < dim; ++d) {
    double mean = sum[d] / n;
    double variance = std::max(0.0, sum_sq[d] / n - mean * mean);
    double std = std::sqrt(variance);
    mean_[d] = static_cast<float>(mean);
    // Constant dimensions (flags that never fire, the bias) pass through
    // unscaled around their mean.
    std_[d] = std < 1e-6 ? 1.0f : static_cast<float>(std);
  }
}

void FeatureNorm::Apply(std::vector<float>* row) const {
  if (!fitted()) return;
  ZDB_CHECK_EQ(row->size(), mean_.size());
  for (size_t d = 0; d < row->size(); ++d) {
    (*row)[d] = ((*row)[d] - mean_[d]) / std_[d];
    // Fit() clamps std below 1e-6, so a non-finite output means the raw
    // feature was already NaN/Inf — flag it at the first normalization.
    ZDB_DCHECK(std::isfinite((*row)[d]));
  }
}

void FeatureNorm::Set(std::vector<float> mean, std::vector<float> std) {
  ZDB_CHECK_EQ(mean.size(), std.size());
  mean_ = std::move(mean);
  std_ = std::move(std);
}

void TargetNorm::Set(double mean, double std) {
  mean_ = mean;
  std_ = std < 1e-9 ? 1.0 : std;
  fitted_ = true;
}

void TargetNorm::Fit(const std::vector<LogMillis>& values) {
  ZDB_CHECK(!values.empty());
  std::vector<double> raw;
  raw.reserve(values.size());
  for (LogMillis value : values) raw.push_back(value.value());
  mean_ = Mean(raw);
  double std = StdDev(raw);
  std_ = std < 1e-9 ? 1.0 : std;
  fitted_ = true;
}

double TargetNorm::Normalize(LogMillis value) const {
  ZDB_CHECK(fitted_);
  ZDB_DCHECK(std::isfinite(value.value()));
  return (value.value() - mean_) / std_;
}

LogMillis TargetNorm::Denormalize(double normalized) const {
  ZDB_CHECK(fitted_);
  return LogMillis(normalized * std_ + mean_);
}

}  // namespace zerodb::featurize
