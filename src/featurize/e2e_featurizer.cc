#include "featurize/e2e_featurizer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace zerodb::featurize {

namespace {

using plan::PhysicalNode;
using plan::PhysicalOpType;

size_t TableOneHotIndex(const storage::Database& db,
                        const std::string& table_name) {
  for (size_t i = 0; i < db.tables().size(); ++i) {
    if (db.tables()[i].name() == table_name) {
      return std::min(i, E2EFeaturizer::kMaxTables - 1);
    }
  }
  return E2EFeaturizer::kMaxTables - 1;
}

}  // namespace

size_t E2EFeaturizer::AddNode(const PhysicalNode& node,
                              const datagen::DatabaseEnv& env,
                              PlanGraph* graph) const {
  const size_t index = graph->nodes.size();
  graph->nodes.emplace_back();
  graph->nodes[index].op_type = static_cast<size_t>(node.type);

  std::vector<float> f(kFeatureDim, 0.0f);
  size_t offset = 0;

  // Operator one-hot.
  f[offset + static_cast<size_t>(node.type)] = 1.0f;
  offset += 9;

  // Table one-hot (database-dependent!).
  const bool has_table = node.type == PhysicalOpType::kSeqScan ||
                         node.type == PhysicalOpType::kIndexScan ||
                         node.type == PhysicalOpType::kIndexNLJoin;
  if (has_table) {
    f[offset + TableOneHotIndex(*env.db, node.table_name)] = 1.0f;
  }
  offset += kMaxTables;

  // Predicate encoding: a bag of column one-hots, comparison-op counts, and
  // normalized literal statistics (the values the zero-shot featurizer
  // deliberately excludes).
  if (node.predicate.has_value() && has_table) {
    std::vector<const plan::Predicate*> leaves;
    node.predicate->CollectLeaves(&leaves);
    std::vector<double> normalized_literals;
    for (const plan::Predicate* leaf : leaves) {
      size_t column = std::min(leaf->slot(), kMaxColumns - 1);
      f[offset + column] += 1.0f;
      f[offset + kMaxColumns + static_cast<size_t>(leaf->op())] += 1.0f;
      const stats::ColumnStats& column_stats =
          env.stats.GetColumn(node.table_name, leaf->slot());
      double range = column_stats.max - column_stats.min;
      double normalized = range > 0
                              ? (leaf->literal() - column_stats.min) / range
                              : 0.5;
      normalized_literals.push_back(std::clamp(normalized, 0.0, 1.0));
    }
    if (!normalized_literals.empty()) {
      double min_v = *std::min_element(normalized_literals.begin(),
                                       normalized_literals.end());
      double max_v = *std::max_element(normalized_literals.begin(),
                                       normalized_literals.end());
      f[offset + kMaxColumns + 6 + 0] = static_cast<float>(Mean(normalized_literals));
      f[offset + kMaxColumns + 6 + 1] = static_cast<float>(min_v);
      f[offset + kMaxColumns + 6 + 2] = static_cast<float>(max_v);
    }
  }
  offset += kMaxColumns + 6 + 3;

  // Cardinality / width (E2E also consumes estimates).
  double card = mode_ == CardinalityMode::kEstimated ? node.est_cardinality
                                                     : node.true_cardinality;
  if (mode_ == CardinalityMode::kExact) ZDB_CHECK_GE(card, 0.0);
  f[offset++] = static_cast<float>(Log1pSafe(card));
  f[offset++] =
      static_cast<float>(Log1pSafe(static_cast<double>(node.OutputWidthBytes(*env.db))));

  f[offset++] = static_cast<float>(node.aggregates.size());
  f[offset++] = static_cast<float>(node.group_by_slots.size());
  ZDB_CHECK_EQ(offset, kFeatureDim);

  graph->nodes[index].features = std::move(f);

  std::vector<size_t> children;
  for (const auto& child : node.children) {
    children.push_back(AddNode(*child, env, graph));
  }
  graph->nodes[index].children = std::move(children);
  return index;
}

PlanGraph E2EFeaturizer::Featurize(const PhysicalNode& root,
                                   const datagen::DatabaseEnv& env) const {
  PlanGraph graph;
  AddNode(root, env, &graph);
  graph.ComputeLevels();
  return graph;
}

}  // namespace zerodb::featurize
