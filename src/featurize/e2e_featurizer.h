#ifndef ZERODB_FEATURIZE_E2E_FEATURIZER_H_
#define ZERODB_FEATURIZE_E2E_FEATURIZER_H_

#include "datagen/corpus.h"
#include "featurize/plan_graph.h"
#include "plan/physical.h"

namespace zerodb::featurize {

/// The workload-driven baseline featurization in the style of E2E
/// [Sun & Li 2019], Figure 3b of the paper: a tree over plan operators
/// whose node features are *database-dependent* — one-hot table and column
/// identities plus normalized predicate literals. A model trained on these
/// features can be accurate on the database it was trained on (identity
/// implies size/distribution) but is meaningless on any other database,
/// which is precisely the contrast the paper draws.
class E2EFeaturizer {
 public:
  static constexpr size_t kMaxTables = 16;   ///< table one-hot width
  static constexpr size_t kMaxColumns = 12;  ///< column one-hot width
  /// op one-hot (9) + table one-hot + predicate column bag + comparison-op
  /// counts (6) + literal stats (3) + est cardinality + output width +
  /// #aggregates + #group-by.
  static constexpr size_t kFeatureDim =
      9 + kMaxTables + kMaxColumns + 6 + 3 + 2 + 2;

  explicit E2EFeaturizer(CardinalityMode mode) : mode_(mode) {}

  PlanGraph Featurize(const plan::PhysicalNode& root,
                      const datagen::DatabaseEnv& env) const;

  CardinalityMode mode() const { return mode_; }

 private:
  size_t AddNode(const plan::PhysicalNode& node,
                 const datagen::DatabaseEnv& env, PlanGraph* graph) const;

  CardinalityMode mode_;
};

}  // namespace zerodb::featurize

#endif  // ZERODB_FEATURIZE_E2E_FEATURIZER_H_
