#include "featurize/parallel.h"

#include "obs/trace_event.h"

namespace zerodb::featurize {

std::vector<PlanGraph> FeaturizeAll(
    size_t count, const std::function<PlanGraph(size_t)>& featurize,
    ThreadPool* pool) {
  std::vector<PlanGraph> graphs(count);
  // Grain of 8: one plan featurizes in ~tens of microseconds, so batching a
  // few per chunk keeps scheduling overhead below the work itself.
  ParallelFor(pool, 0, count, /*grain=*/8, [&](size_t begin, size_t end) {
    obs::TimelineScope chunk_scope("featurize.chunk", "featurize");
    chunk_scope.AddArg("plans", static_cast<double>(end - begin));
    for (size_t i = begin; i < end; ++i) graphs[i] = featurize(i);
  });
  return graphs;
}

}  // namespace zerodb::featurize
