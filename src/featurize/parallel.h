#ifndef ZERODB_FEATURIZE_PARALLEL_H_
#define ZERODB_FEATURIZE_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/thread_pool.h"
#include "featurize/plan_graph.h"

namespace zerodb::featurize {

/// Builds `count` plan graphs by calling `featurize(i)` for each index,
/// fanned out over `pool` (nullptr forces serial). The featurizers are pure
/// functions of (plan, stats), so graph i is bit-identical for any thread
/// count; only wall-clock changes. Used by model Prepare/PredictMs to turn
/// per-record graph construction — the CPU-bound half of inference — into
/// a ParallelFor.
std::vector<PlanGraph> FeaturizeAll(
    size_t count, const std::function<PlanGraph(size_t)>& featurize,
    ThreadPool* pool = ThreadPool::Global());

}  // namespace zerodb::featurize

#endif  // ZERODB_FEATURIZE_PARALLEL_H_
