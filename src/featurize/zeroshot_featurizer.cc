#include "featurize/zeroshot_featurizer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace zerodb::featurize {

namespace {

using plan::PhysicalNode;
using plan::PhysicalOpType;

float Log1pF(double x) { return static_cast<float>(Log1pSafe(x)); }

// Named unit -> feature-space conversions: counts and widths enter the
// feature vector only log1p-transformed, so the raw magnitudes never mix.
float Log1pF(Rows rows) { return Log1pF(rows.value()); }
float Log1pF(Bytes bytes) { return Log1pF(bytes.value()); }

// Summarizes predicate structure into (leaves, eq leaves, range leaves,
// depth, has_or).
struct PredicateSummary {
  size_t leaves = 0;
  size_t eq_leaves = 0;
  size_t range_leaves = 0;
  size_t depth = 0;
  bool has_or = false;
};

bool HasOr(const plan::Predicate& predicate) {
  if (predicate.kind() == plan::Predicate::Kind::kOr) return true;
  for (const plan::Predicate& child : predicate.children()) {
    if (HasOr(child)) return true;
  }
  return false;
}

void Summarize(const plan::Predicate& predicate, PredicateSummary* out) {
  out->leaves = predicate.NumComparisons();
  out->depth = predicate.Depth();
  std::vector<const plan::Predicate*> leaves;
  predicate.CollectLeaves(&leaves);
  for (const plan::Predicate* leaf : leaves) {
    if (leaf->op() == plan::CompareOp::kEq ||
        leaf->op() == plan::CompareOp::kNe) {
      ++out->eq_leaves;
    } else {
      ++out->range_leaves;
    }
  }
  out->has_or = HasOr(predicate);
}

int64_t RealOrEstimatedIndexHeight(const datagen::DatabaseEnv& env,
                                   const std::string& table,
                                   size_t column_index) {
  const storage::OrderedIndex* index = env.db->FindIndex(table, column_index);
  if (index != nullptr) return index->EstimatedHeight();
  // Hypothetical index: estimate from the table size (what-if mode).
  double rows = std::max<double>(
      2.0, static_cast<double>(env.stats.GetTable(table).num_rows));
  return std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(std::log(rows) / std::log(256.0))));
}

}  // namespace

Rows ZeroShotFeaturizer::NodeCardinality(const PhysicalNode& node) const {
  if (mode_ == CardinalityMode::kEstimated) return Rows(node.est_cardinality);
  ZDB_CHECK_GE(node.true_cardinality, 0.0)
      << "exact-cardinality featurization requires an executed plan";
  return Rows(node.true_cardinality);
}

size_t ZeroShotFeaturizer::AddNode(
    const PhysicalNode& node, const datagen::DatabaseEnv& env,
    const std::unordered_map<const plan::PhysicalNode*, int64_t>& widths,
    PlanGraph* graph) const {
  const size_t index = graph->nodes.size();
  graph->nodes.emplace_back();
  graph->nodes[index].op_type = static_cast<size_t>(node.type);

  std::vector<float> f(kFeatureDim, 0.0f);

  const Rows out_card = NodeCardinality(node);
  f[0] = Log1pF(out_card);
  f[4] = Log1pF(Bytes(static_cast<double>(widths.at(&node))));
  f[19] = 1.0f;

  // Inputs.
  Rows in_left;
  Rows in_right;
  switch (node.type) {
    case PhysicalOpType::kSeqScan:
    case PhysicalOpType::kIndexScan: {
      const stats::TableStats& table_stats = env.stats.GetTable(node.table_name);
      in_left = Rows(static_cast<double>(table_stats.num_rows));
      f[3] = Log1pF(static_cast<double>(table_stats.num_pages));
      f[5] = Log1pF(Bytes(static_cast<double>(table_stats.row_width_bytes)));
      break;
    }
    case PhysicalOpType::kIndexNLJoin: {
      in_left = NodeCardinality(*node.children[0]);
      const stats::TableStats& inner_stats = env.stats.GetTable(node.table_name);
      in_right = Rows(static_cast<double>(inner_stats.num_rows));
      f[3] = Log1pF(static_cast<double>(inner_stats.num_pages));
      f[5] = Log1pF(
          Bytes(static_cast<double>(widths.at(node.children[0].get()))));
      f[6] = Log1pF(Bytes(static_cast<double>(inner_stats.row_width_bytes)));
      break;
    }
    case PhysicalOpType::kHashJoin:
    case PhysicalOpType::kNestedLoopJoin:
      in_left = NodeCardinality(*node.children[0]);
      in_right = NodeCardinality(*node.children[1]);
      f[5] = Log1pF(
          Bytes(static_cast<double>(widths.at(node.children[0].get()))));
      f[6] = Log1pF(
          Bytes(static_cast<double>(widths.at(node.children[1].get()))));
      break;
    case PhysicalOpType::kFilter:
    case PhysicalOpType::kSort:
    case PhysicalOpType::kHashAggregate:
    case PhysicalOpType::kSimpleAggregate:
      in_left = NodeCardinality(*node.children[0]);
      f[5] = Log1pF(
          Bytes(static_cast<double>(widths.at(node.children[0].get()))));
      break;
  }
  f[1] = Log1pF(in_left);
  f[2] = Log1pF(in_right);
  f[7] = static_cast<float>(Selectivity::FromRows(out_card, in_left).value());

  // Predicate structure.
  if (node.predicate.has_value()) {
    PredicateSummary summary;
    Summarize(*node.predicate, &summary);
    f[8] = Log1pF(static_cast<double>(summary.leaves));
    f[9] = Log1pF(static_cast<double>(summary.eq_leaves));
    f[10] = Log1pF(static_cast<double>(summary.range_leaves));
    f[11] = static_cast<float>(summary.depth);
    f[12] = summary.has_or ? 1.0f : 0.0f;
  }

  // Index features.
  if (node.type == PhysicalOpType::kIndexScan ||
      node.type == PhysicalOpType::kIndexNLJoin) {
    f[13] = Log1pF(static_cast<double>(
        RealOrEstimatedIndexHeight(env, node.table_name, node.index_column)));
    if (node.type == PhysicalOpType::kIndexScan) {
      bool is_range = !(node.range_lo.has_value() && node.range_hi.has_value() &&
                        *node.range_lo == *node.range_hi);
      f[14] = is_range ? 1.0f : 0.0f;
    }
  }

  // Aggregation / sort shape.
  f[15] = Log1pF(static_cast<double>(node.aggregates.size()));
  f[16] = Log1pF(static_cast<double>(node.group_by_slots.size()));
  if (node.type == PhysicalOpType::kHashAggregate ||
      node.type == PhysicalOpType::kSimpleAggregate) {
    f[17] = Log1pF(out_card);
  }
  f[18] = Log1pF(static_cast<double>(node.sort_slots.size()));

  graph->nodes[index].features = std::move(f);

  // Children after the parent (ComputeLevels relies on this order).
  std::vector<size_t> children;
  for (const auto& child : node.children) {
    children.push_back(AddNode(*child, env, widths, graph));
  }
  graph->nodes[index].children = std::move(children);
  return index;
}

namespace {

// Debug-only sweep: a NaN/Inf in any node feature would silently poison the
// whole message-passing pass downstream; catch it where it is produced.
bool FeaturesAreFinite(const PlanGraph& graph) {
  for (const PlanGraphNode& node : graph.nodes) {
    for (float value : node.features) {
      if (!std::isfinite(value)) return false;
    }
  }
  return true;
}

}  // namespace

PlanGraph ZeroShotFeaturizer::Featurize(const PhysicalNode& root,
                                        const datagen::DatabaseEnv& env) const {
  PlanGraph graph;
  std::unordered_map<const PhysicalNode*, int64_t> widths;
  root.ComputeOutputWidths(*env.db, &widths);
  AddNode(root, env, widths, &graph);
  graph.ComputeLevels();
  ZDB_DCHECK(!graph.nodes.empty());
  ZDB_DCHECK(FeaturesAreFinite(graph));
  return graph;
}

}  // namespace zerodb::featurize
