#ifndef ZERODB_FEATURIZE_MSCN_FEATURIZER_H_
#define ZERODB_FEATURIZE_MSCN_FEATURIZER_H_

#include <vector>

#include "datagen/corpus.h"
#include "plan/query.h"

namespace zerodb::featurize {

/// The three feature sets of MSCN [Kipf et al. 2019]: tables, joins and
/// predicates, each one-hot encoded. Plan-agnostic (MSCN looks at the query,
/// not the physical plan) and fully database-dependent — both reasons the
/// paper reports it as the weakest cost baseline.
struct MscnSets {
  std::vector<std::vector<float>> tables;
  std::vector<std::vector<float>> joins;
  std::vector<std::vector<float>> predicates;
};

class MscnFeaturizer {
 public:
  static constexpr size_t kMaxTables = 16;
  static constexpr size_t kMaxColumns = 12;
  static constexpr size_t kTableDim = kMaxTables;
  static constexpr size_t kJoinDim = 2 * (kMaxTables + kMaxColumns);
  static constexpr size_t kPredicateDim = kMaxTables + kMaxColumns + 6 + 1;

  MscnSets Featurize(const plan::QuerySpec& query,
                     const datagen::DatabaseEnv& env) const;
};

}  // namespace zerodb::featurize

#endif  // ZERODB_FEATURIZE_MSCN_FEATURIZER_H_
