#ifndef ZERODB_FEATURIZE_ZEROSHOT_FEATURIZER_H_
#define ZERODB_FEATURIZE_ZEROSHOT_FEATURIZER_H_

#include <cstdint>
#include <unordered_map>

#include "common/units.h"
#include "datagen/corpus.h"
#include "featurize/plan_graph.h"
#include "plan/physical.h"

namespace zerodb::featurize {

/// The paper's core contribution: a *database-independent* featurization of
/// physical plans (Figure 3c). Every feature can be derived from any
/// database — page counts, tuple widths, cardinalities, predicate
/// *structure* (never literal values: selectivity information enters only
/// through the cardinality inputs, the "separation of concerns"). No table
/// names, no column identities, no one-hot encodings — which is exactly why
/// a model trained on these features transfers to unseen databases.
class ZeroShotFeaturizer {
 public:
  /// Per-node feature vector layout (all counts log1p-transformed):
  ///  0 output cardinality        10 #range-comparison leaves
  ///  1 input cardinality (left)  11 predicate tree depth
  ///  2 input cardinality (right) 12 has-OR flag
  ///  3 table pages (scans)       13 index height
  ///  4 output tuple width        14 index range-scan flag
  ///  5 input width (left)        15 #aggregate functions
  ///  6 input width (right)       16 #group-by columns
  ///  7 output/input selectivity  17 group output cardinality
  ///  8 #predicate leaves         18 #sort columns
  ///  9 #equality leaves          19 bias (1.0)
  static constexpr size_t kFeatureDim = 20;

  explicit ZeroShotFeaturizer(CardinalityMode mode) : mode_(mode) {}

  /// Featurizes an annotated plan. With kExact mode every node must carry a
  /// true_cardinality (i.e. the plan was executed).
  PlanGraph Featurize(const plan::PhysicalNode& root,
                      const datagen::DatabaseEnv& env) const;

  CardinalityMode mode() const { return mode_; }

 private:
  /// `widths` holds every subtree's output width, precomputed in one pass
  /// by PhysicalNode::ComputeOutputWidths (per-node OutputWidthBytes calls
  /// are quadratic over a plan and dominated featurization cost).
  size_t AddNode(const plan::PhysicalNode& node,
                 const datagen::DatabaseEnv& env,
                 const std::unordered_map<const plan::PhysicalNode*, int64_t>&
                     widths,
                 PlanGraph* graph) const;

  Rows NodeCardinality(const plan::PhysicalNode& node) const;

  CardinalityMode mode_;
};

}  // namespace zerodb::featurize

#endif  // ZERODB_FEATURIZE_ZEROSHOT_FEATURIZER_H_
