#include "featurize/plan_graph.h"

#include <algorithm>

#include "common/check.h"

namespace zerodb::featurize {

const char* CardinalityModeName(CardinalityMode mode) {
  switch (mode) {
    case CardinalityMode::kEstimated:
      return "estimated";
    case CardinalityMode::kExact:
      return "exact";
  }
  ZDB_CHECK(false);
  return "?";
}

void PlanGraph::ComputeLevels() {
  // Children are constructed after their parent, so a reverse pass settles
  // every node in one sweep.
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
    if (it->children.empty()) {
      it->level = 0;
      continue;
    }
    size_t max_child = 0;
    for (size_t child : it->children) {
      ZDB_CHECK_LT(child, nodes.size());
      max_child = std::max(max_child, nodes[child].level);
    }
    it->level = max_child + 1;
  }
}

}  // namespace zerodb::featurize
