#ifndef ZERODB_FEATURIZE_PLAN_GRAPH_H_
#define ZERODB_FEATURIZE_PLAN_GRAPH_H_

#include <cstddef>
#include <vector>

namespace zerodb::featurize {

/// Which cardinality annotations featurizers read off the plan:
/// the optimizer's histogram estimates (deployable) or the true
/// cardinalities from execution (the paper's upper-baseline variant).
enum class CardinalityMode { kEstimated, kExact };

const char* CardinalityModeName(CardinalityMode mode);

/// One featurized plan operator.
struct PlanGraphNode {
  size_t op_type = 0;              ///< index into plan::PhysicalOpType
  std::vector<float> features;
  std::vector<size_t> children;    ///< indexes into PlanGraph::nodes
  size_t level = 0;                ///< 0 = leaf; parent = max(child)+1
};

/// A featurized query plan: the tree the message-passing models consume.
/// Node 0 is the root.
struct PlanGraph {
  std::vector<PlanGraphNode> nodes;

  size_t root() const { return 0; }
  size_t max_level() const {
    size_t level = 0;
    for (const PlanGraphNode& node : nodes) {
      if (node.level > level) level = node.level;
    }
    return level;
  }

  /// Recomputes levels bottom-up (children appear after parents in the
  /// construction order used by the featurizers).
  void ComputeLevels();
};

}  // namespace zerodb::featurize

#endif  // ZERODB_FEATURIZE_PLAN_GRAPH_H_
