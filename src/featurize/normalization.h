#ifndef ZERODB_FEATURIZE_NORMALIZATION_H_
#define ZERODB_FEATURIZE_NORMALIZATION_H_

#include <cstddef>
#include <vector>

#include "common/units.h"

namespace zerodb::featurize {

/// Per-dimension standardization (z-score) fitted on the training corpus
/// and applied at train and inference time. For the zero-shot model the fit
/// spans all 19 training databases — the statistics themselves are
/// database-independent aggregates.
///
/// Fit-then-freeze concurrency contract (DESIGN.md "Concurrency
/// discipline"): Fit/Set are thread-compatible (single writer, before
/// publication); after that, Apply and the accessors are safe from any
/// number of threads because they only read the frozen statistics. Batched
/// inference relies on this — no lock is needed, and none should be added.
class FeatureNorm {
 public:
  FeatureNorm() = default;

  /// Fits mean/std per dimension. Rows must be equally sized and non-empty.
  void Fit(const std::vector<const std::vector<float>*>& rows);

  /// Applies (x - mean) / std in place. No-op when not fitted.
  void Apply(std::vector<float>* row) const;

  bool fitted() const { return !mean_.empty(); }
  size_t dim() const { return mean_.size(); }
  const std::vector<float>& mean() const { return mean_; }
  const std::vector<float>& std() const { return std_; }

  /// Installs externally persisted statistics (model deserialization).
  void Set(std::vector<float> mean, std::vector<float> std);

 private:
  std::vector<float> mean_;
  std::vector<float> std_;
};

/// Scalar standardization for the regression target (log runtime). Same
/// fit-then-freeze contract as FeatureNorm: concurrent Normalize /
/// Denormalize calls are safe once fitted.
///
/// The target is typed LogMillis end to end: models produce it with
/// `Millis(record->runtime_ms).ToLog()` and invert readouts with
/// `Millis::FromLog(Denormalize(...))`, so a linear-space runtime can never
/// be normalized (or a normalized output mistaken for milliseconds)
/// without going through the named conversions in common/units.h.
class TargetNorm {
 public:
  void Fit(const std::vector<LogMillis>& values);
  double Normalize(LogMillis value) const;
  LogMillis Denormalize(double normalized) const;
  bool fitted() const { return fitted_; }
  double mean() const { return mean_; }
  double std() const { return std_; }

  /// Installs externally persisted statistics (model deserialization).
  void Set(double mean, double std);

 private:
  bool fitted_ = false;
  double mean_ = 0.0;
  double std_ = 1.0;
};

}  // namespace zerodb::featurize

#endif  // ZERODB_FEATURIZE_NORMALIZATION_H_
