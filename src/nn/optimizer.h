#ifndef ZERODB_NN_OPTIMIZER_H_
#define ZERODB_NN_OPTIMIZER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "nn/tensor.h"

namespace zerodb::nn {

/// Gradient-descent optimizer interface over a fixed parameter set.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> parameters)
      : parameters_(std::move(parameters)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Clears all parameter gradients; call after Step.
  void ZeroGrad();

  /// Clips the global L2 norm of all gradients to `max_norm`; returns the
  /// pre-clipping norm. A stabilizer for the message-passing nets.
  double ClipGradNorm(double max_norm);

  const std::vector<Tensor>& parameters() const { return parameters_; }

 protected:
  std::vector<Tensor> parameters_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> parameters, float learning_rate,
      float momentum = 0.0f);

  void Step() override;

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float learning_rate() const { return learning_rate_; }

 private:
  float learning_rate_;
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba) with bias correction; the paper's models train with it.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> parameters, float learning_rate,
       float beta1 = 0.9f, float beta2 = 0.999f, float epsilon = 1e-8f,
       float weight_decay = 0.0f);

  void Step() override;

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float learning_rate() const { return learning_rate_; }
  int64_t step_count() const { return step_count_; }

 private:
  float learning_rate_;
  float beta1_;
  float beta2_;
  float epsilon_;
  float weight_decay_;
  int64_t step_count_ = 0;
  std::vector<std::vector<float>> first_moment_;
  std::vector<std::vector<float>> second_moment_;
};

}  // namespace zerodb::nn

#endif  // ZERODB_NN_OPTIMIZER_H_
