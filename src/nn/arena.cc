#include "nn/arena.h"

#include <atomic>
#include <cstdlib>
#include <string_view>

#include "common/check.h"
#include "obs/metrics.h"

namespace zerodb::nn {

namespace {

// Process-wide allocation counters (relaxed: they are observational — reads
// only need eventual consistency, and each is independently monotonic).
std::atomic<uint64_t> g_heap_nodes{0};
std::atomic<uint64_t> g_arena_nodes{0};
std::atomic<uint64_t> g_pool_hits{0};
std::atomic<uint64_t> g_pool_misses{0};

std::atomic<ArenaStatsHook> g_stats_hook{nullptr};

size_t CeilLog2(size_t n) {
  size_t log2 = 0;
  size_t value = 1;
  while (value < n) {
    value <<= 1;
    ++log2;
  }
  return log2;
}

size_t FloorLog2(size_t n) {
  size_t log2 = 0;
  while ((n >> 1) != 0) {
    n >>= 1;
    ++log2;
  }
  return log2;
}

}  // namespace

template <typename T>
size_t BufferPool<T>::BucketForRequest(size_t n) {
  size_t bucket = CeilLog2(n);
  return bucket < kMinBucketLog2 ? kMinBucketLog2 : bucket;
}

template <typename T>
size_t BufferPool<T>::BucketForCapacity(size_t capacity) {
  return FloorLog2(capacity);
}

template <typename T>
std::vector<T> BufferPool<T>::Acquire(size_t n) {
  const size_t bucket = BucketForRequest(n);
  if (bucket <= kMaxBucketLog2 && !buckets_[bucket].empty()) {
    std::vector<T> buffer = std::move(buckets_[bucket].back());
    buckets_[bucket].pop_back();
    retained_bytes_ -= buffer.capacity() * sizeof(T);
    ++hits_;
    g_pool_hits.fetch_add(1, std::memory_order_relaxed);
    // clear + resize value-initializes exactly n elements within the
    // retained capacity: a memset, never a reallocation.
    buffer.clear();
    buffer.resize(n);
    return buffer;
  }
  ++misses_;
  g_pool_misses.fetch_add(1, std::memory_order_relaxed);
  std::vector<T> buffer;
  buffer.reserve(size_t{1} << bucket);
  buffer.resize(n);
  return buffer;
}

template <typename T>
void BufferPool<T>::Release(std::vector<T>&& buffer) {
  if (buffer.capacity() == 0) return;
  const size_t bucket = BucketForCapacity(buffer.capacity());
  if (bucket < kMinBucketLog2 || bucket > kMaxBucketLog2 ||
      buckets_[bucket].size() >= kMaxPerBucket) {
    return;  // dropping the buffer frees it
  }
  retained_bytes_ += buffer.capacity() * sizeof(T);
  buckets_[bucket].push_back(std::move(buffer));
}

template <typename T>
void BufferPool<T>::Clear() {
  for (auto& bucket : buckets_) bucket.clear();
  retained_bytes_ = 0;
}

template class BufferPool<float>;
template class BufferPool<uint32_t>;

// Raw node storage: construction/destruction is managed per-slot by the
// arena (placement new in NewNode, explicit destructor call in Reset).
struct GraphArena::NodeSlab {
  alignas(alignof(Node)) unsigned char bytes[kNodesPerSlab * sizeof(Node)];

  Node* slot(size_t i) {
    return reinterpret_cast<Node*>(bytes + i * sizeof(Node));
  }
};

GraphArena::GraphArena() : anchor_(std::make_shared<int>(0)) {}

GraphArena::~GraphArena() {
  Reset();
}

std::shared_ptr<Node> GraphArena::NewNode() {
  const size_t slab_index = nodes_in_use_ / kNodesPerSlab;
  if (slab_index == slabs_.size()) {
    slabs_.push_back(std::make_unique<NodeSlab>());
  }
  Node* node = new (slabs_[slab_index]->slot(nodes_in_use_ % kNodesPerSlab))
      Node();
  node->arena = this;
  ++nodes_in_use_;
  g_arena_nodes.fetch_add(1, std::memory_order_relaxed);
  // Aliasing constructor: the handle shares the arena anchor's control block
  // instead of allocating its own.
  return std::shared_ptr<Node>(anchor_, node);
}

std::vector<std::shared_ptr<Node>> GraphArena::AcquireParents() {
  if (!parents_pool_.empty()) {
    std::vector<std::shared_ptr<Node>> parents = std::move(parents_pool_.back());
    parents_pool_.pop_back();
    return parents;
  }
  std::vector<std::shared_ptr<Node>> parents;
  parents.reserve(4);
  return parents;
}

void GraphArena::ReleaseParents(std::vector<std::shared_ptr<Node>>&& parents) {
  if (parents.capacity() == 0 ||
      parents_pool_.size() >= BufferPool<float>::kMaxPerBucket * 8) {
    return;
  }
  parents.clear();
  parents_pool_.push_back(std::move(parents));
}

void GraphArena::Reset() {
  for (size_t i = 0; i < nodes_in_use_; ++i) {
    Node* node = slabs_[i / kNodesPerSlab]->slot(i % kNodesPerSlab);
    floats_.Release(std::move(node->values));
    floats_.Release(std::move(node->grad));
    floats_.Release(std::move(node->aux_floats));
    indices_.Release(std::move(node->aux_indices));
    ReleaseParents(std::move(node->parents));
    node->~Node();
  }
  nodes_in_use_ = 0;
  ++resets_;
  // Every handle into the graph must be dead by now: the only remaining
  // owner of the anchor control block is the arena itself. A live handle
  // here would be a dangling pointer into rewound slab slots.
  ZDB_DCHECK_EQ(anchor_.use_count(), 1)
      << "GraphArena::Reset with live Tensor handles into the arena";

  const ArenaStats snapshot = stats();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  if (registry.enabled()) {
    registry.GetGauge("arena.bytes_in_use")
        ->Set(static_cast<double>(snapshot.bytes_in_use));
    registry.GetGauge("arena.slabs")->Set(static_cast<double>(snapshot.slabs));
    registry.GetCounter("pool.buffer_hit")
        ->Add(static_cast<int64_t>(snapshot.buffer_hits - published_hits_));
    registry.GetCounter("pool.buffer_miss")
        ->Add(static_cast<int64_t>(snapshot.buffer_misses - published_misses_));
    published_hits_ = snapshot.buffer_hits;
    published_misses_ = snapshot.buffer_misses;
  }
  if (ArenaStatsHook hook = g_stats_hook.load(std::memory_order_acquire)) {
    hook(snapshot);
  }
}

ArenaStats GraphArena::stats() const {
  ArenaStats stats;
  stats.slabs = slabs_.size();
  stats.bytes_in_use = slabs_.size() * sizeof(NodeSlab) +
                       floats_.retained_bytes() + indices_.retained_bytes();
  stats.nodes_in_use = nodes_in_use_;
  stats.buffer_hits = floats_.hits() + indices_.hits();
  stats.buffer_misses = floats_.misses() + indices_.misses();
  stats.resets = resets_;
  return stats;
}

namespace {

thread_local GraphArena* tl_active_arena = nullptr;

// Tri-state test override over the env-derived default. Plain (non-atomic)
// because SetArenaEnabledForTest is documented main-thread-only and is read
// before worker threads start using arenas.
enum class ArenaOverride : unsigned char { kNone, kOn, kOff };
ArenaOverride g_arena_override = ArenaOverride::kNone;

bool ArenaEnabledFromEnv() {
  // Read once: the knob selects a CI configuration, not a runtime toggle.
  static const bool enabled = [] {
    const char* env = std::getenv("ZERODB_ARENA");  // zerodb-lint: allow(nondet-call)
    return env == nullptr || std::string_view(env) != "off";
  }();
  return enabled;
}

}  // namespace

ArenaGuard::ArenaGuard(GraphArena* arena) : previous_(tl_active_arena) {
  if (arena != nullptr) tl_active_arena = arena;
}

ArenaGuard::~ArenaGuard() { tl_active_arena = previous_; }

GraphArena* ActiveArena() { return tl_active_arena; }

std::vector<float> AcquirePooledFloats(size_t n) {
  if (GraphArena* arena = tl_active_arena) return arena->AcquireFloats(n);
  return std::vector<float>(n);
}

std::vector<uint32_t> AcquirePooledIndices(size_t n) {
  if (GraphArena* arena = tl_active_arena) return arena->AcquireIndices(n);
  return std::vector<uint32_t>(n);
}

void ReleasePooledFloats(std::vector<float>&& buffer) {
  if (GraphArena* arena = tl_active_arena) {
    arena->ReleaseFloats(std::move(buffer));
  }
}

void ReleasePooledIndices(std::vector<uint32_t>&& buffer) {
  if (GraphArena* arena = tl_active_arena) {
    arena->ReleaseIndices(std::move(buffer));
  }
}

bool ArenaEnabled() {
  switch (g_arena_override) {
    case ArenaOverride::kOn:
      return true;
    case ArenaOverride::kOff:
      return false;
    case ArenaOverride::kNone:
      break;
  }
  return ArenaEnabledFromEnv();
}

void SetArenaEnabledForTest(bool enabled) {
  g_arena_override = enabled ? ArenaOverride::kOn : ArenaOverride::kOff;
}

void ClearArenaEnabledOverrideForTest() {
  g_arena_override = ArenaOverride::kNone;
}

void InstallArenaStatsHook(ArenaStatsHook hook) {
  g_stats_hook.store(hook, std::memory_order_release);
}

AutodiffAllocCounters GlobalAllocCounters() {
  AutodiffAllocCounters counters;
  counters.heap_nodes = g_heap_nodes.load(std::memory_order_relaxed);
  counters.arena_nodes = g_arena_nodes.load(std::memory_order_relaxed);
  counters.pool_hits = g_pool_hits.load(std::memory_order_relaxed);
  counters.pool_misses = g_pool_misses.load(std::memory_order_relaxed);
  return counters;
}

namespace arena_internal {
void CountHeapNode() { g_heap_nodes.fetch_add(1, std::memory_order_relaxed); }
}  // namespace arena_internal

}  // namespace zerodb::nn
