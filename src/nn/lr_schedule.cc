#include "nn/lr_schedule.h"

#include <cmath>

namespace zerodb::nn {

float StepDecayLr::RateForEpoch(size_t epoch) const {
  if (step_epochs_ == 0) return initial_;
  return initial_ *
         std::pow(factor_, static_cast<float>(epoch / step_epochs_));
}

float CosineLr::RateForEpoch(size_t epoch) const {
  if (total_epochs_ <= 1) return floor_;
  double progress = std::min(1.0, static_cast<double>(epoch) /
                                      static_cast<double>(total_epochs_ - 1));
  double cosine = 0.5 * (1.0 + std::cos(progress * M_PI));
  return static_cast<float>(floor_ + (initial_ - floor_) * cosine);
}

}  // namespace zerodb::nn
