#ifndef ZERODB_NN_LAYERS_H_
#define ZERODB_NN_LAYERS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace zerodb::nn {

enum class Activation { kNone, kRelu, kLeakyRelu, kSigmoid, kTanh };

/// Applies the named activation to a tensor.
Tensor ApplyActivation(const Tensor& x, Activation activation);

/// Fully-connected layer y = x W + b with Kaiming-uniform initialization.
class Linear {
 public:
  /// Creates an uninitialized layer; call Init or deserialize before use.
  Linear() = default;
  Linear(size_t in_features, size_t out_features, Rng* rng);

  /// y = x W + b, with the ReLU fused into the same kernel pass when
  /// `fuse_relu` is set (numerically identical to Relu(Forward(x))).
  Tensor Forward(const Tensor& x, bool fuse_relu = false) const;

  size_t in_features() const { return in_features_; }
  size_t out_features() const { return out_features_; }

  /// Trainable parameters: {weight (in,out), bias (1,out)}.
  std::vector<Tensor> Parameters() const { return {weight_, bias_}; }

  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  size_t in_features_ = 0;
  size_t out_features_ = 0;
  Tensor weight_;
  Tensor bias_;
};

/// Configuration for a multilayer perceptron.
struct MlpConfig {
  size_t in_features = 0;
  std::vector<size_t> hidden_sizes;  // one entry per hidden layer
  size_t out_features = 0;
  Activation hidden_activation = Activation::kRelu;
  Activation output_activation = Activation::kNone;
  float dropout = 0.0f;  // applied after each hidden activation
};

/// Multilayer perceptron built from Linear layers.
class Mlp {
 public:
  Mlp() = default;
  Mlp(const MlpConfig& config, Rng* rng);

  /// Forward pass. `training` enables dropout; rng may be null when
  /// dropout == 0 or training == false.
  Tensor Forward(const Tensor& x, bool training = false,
                 Rng* rng = nullptr) const;

  std::vector<Tensor> Parameters() const;

  const MlpConfig& config() const { return config_; }

 private:
  MlpConfig config_;
  std::vector<Linear> layers_;
};

}  // namespace zerodb::nn

#endif  // ZERODB_NN_LAYERS_H_
