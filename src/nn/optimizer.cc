#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace zerodb::nn {

void Optimizer::ZeroGrad() {
  for (Tensor& parameter : parameters_) parameter.ZeroGrad();
}

double Optimizer::ClipGradNorm(double max_norm) {
  ZDB_CHECK_GT(max_norm, 0.0);
  double total_sq = 0.0;
  for (const Tensor& parameter : parameters_) {
    for (float g : parameter.grad()) total_sq += static_cast<double>(g) * g;
  }
  double norm = std::sqrt(total_sq);
  if (norm > max_norm) {
    const float scale = static_cast<float>(max_norm / (norm + 1e-12));
    for (Tensor& parameter : parameters_) {
      for (float& g : parameter.mutable_grad()) g *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Tensor> parameters, float learning_rate, float momentum)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      momentum_(momentum) {
  velocity_.reserve(parameters_.size());
  for (const Tensor& parameter : parameters_) {
    velocity_.emplace_back(parameter.size(), 0.0f);
  }
}

void Sgd::Step() {
  for (size_t p = 0; p < parameters_.size(); ++p) {
    auto& data = parameters_[p].mutable_data();
    const auto& grad = parameters_[p].grad();
    ZDB_CHECK_EQ(data.size(), grad.size());
    auto& velocity = velocity_[p];
    for (size_t i = 0; i < data.size(); ++i) {
      velocity[i] = momentum_ * velocity[i] + grad[i];
      data[i] -= learning_rate_ * velocity[i];
    }
  }
}

Adam::Adam(std::vector<Tensor> parameters, float learning_rate, float beta1,
           float beta2, float epsilon, float weight_decay)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  first_moment_.reserve(parameters_.size());
  second_moment_.reserve(parameters_.size());
  for (const Tensor& parameter : parameters_) {
    first_moment_.emplace_back(parameter.size(), 0.0f);
    second_moment_.emplace_back(parameter.size(), 0.0f);
  }
}

void Adam::Step() {
  ++step_count_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  const float corrected_lr =
      static_cast<float>(learning_rate_ * std::sqrt(bias2) / bias1);
  for (size_t p = 0; p < parameters_.size(); ++p) {
    auto& data = parameters_[p].mutable_data();
    const auto& grad = parameters_[p].grad();
    ZDB_CHECK_EQ(data.size(), grad.size());
    auto& m = first_moment_[p];
    auto& v = second_moment_[p];
    for (size_t i = 0; i < data.size(); ++i) {
      float g = grad[i] + weight_decay_ * data[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
      data[i] -= corrected_lr * m[i] / (std::sqrt(v[i]) + epsilon_);
    }
  }
}

}  // namespace zerodb::nn
