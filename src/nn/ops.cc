#include "nn/ops.h"

#include <cmath>

#include "common/check.h"
#include "nn/arena.h"

namespace zerodb::nn {

namespace {

// Accumulates gradient flowing to `parent` if it participates in autodiff.
// The Backward() pre-pass guarantees sized grad buffers for such nodes.
inline bool WantsGrad(const Node& parent) { return parent.requires_grad; }

// C += A * B for row-major matrices. Register-blocked i-k-j: four A
// scalars are broadcast against four consecutive B rows per pass, so the
// inner j loop is a branch-free chain of contiguous loads that -O3
// auto-vectorizes; the old per-element `a_ik == 0` skip is hoisted to one
// whole-block test, which still short-circuits the mostly-zero one-hot
// encoder inputs without defeating vectorization. Blocking over k changes
// float summation order versus a scalar k loop, so results match a
// reference matmul within tolerance, not bitwise
// (OpsTest.MatMulBlockedMatchesReference pins this). The single-row form is
// split out so LinearFused can apply bias+activation to each output row
// while it is still in cache.
void MatMulRowAccumulate(const float* a_row, size_t a_cols, const float* b,
                         size_t b_cols, float* c_row) {
  const size_t k_blocked = a_cols - a_cols % 4;
  size_t k = 0;
  for (; k < k_blocked; k += 4) {
    const float a0 = a_row[k];
    const float a1 = a_row[k + 1];
    const float a2 = a_row[k + 2];
    const float a3 = a_row[k + 3];
    if (a0 == 0.0f && a1 == 0.0f && a2 == 0.0f && a3 == 0.0f) continue;
    const float* b0 = b + k * b_cols;
    const float* b1 = b0 + b_cols;
    const float* b2 = b1 + b_cols;
    const float* b3 = b2 + b_cols;
    for (size_t j = 0; j < b_cols; ++j) {
      c_row[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
    }
  }
  for (; k < a_cols; ++k) {
    const float a_ik = a_row[k];
    if (a_ik == 0.0f) continue;
    const float* b_row = b + k * b_cols;
    for (size_t j = 0; j < b_cols; ++j) {
      c_row[j] += a_ik * b_row[j];
    }
  }
}

void MatMulAccumulate(const float* a, size_t a_rows, size_t a_cols,
                      const float* b, size_t b_cols, float* c) {
  for (size_t i = 0; i < a_rows; ++i) {
    MatMulRowAccumulate(a + i * a_cols, a_cols, b, b_cols, c + i * b_cols);
  }
}

// C += A^T * B where A is (k, m) so A^T is (m, k); B is (k, n).
void MatMulTransAAccumulate(const float* a, size_t a_rows, size_t a_cols,
                            const float* b, size_t b_cols, float* c) {
  // c is (a_cols, b_cols). Iterate over k (= a_rows) outermost: sequential
  // access to both a and b rows.
  for (size_t k = 0; k < a_rows; ++k) {
    const float* a_row = a + k * a_cols;
    const float* b_row = b + k * b_cols;
    for (size_t i = 0; i < a_cols; ++i) {
      const float a_ki = a_row[i];
      if (a_ki == 0.0f) continue;
      float* c_row = c + i * b_cols;
      for (size_t j = 0; j < b_cols; ++j) {
        c_row[j] += a_ki * b_row[j];
      }
    }
  }
}

// C += A * B^T where A is (m, k), B is (n, k); result (m, n).
// Each dot product accumulates into 8 independent lanes that are combined
// in a fixed tree order: a single scalar accumulator serializes the whole
// reduction (the compiler may not reassociate floats), while per-lane
// chains keep the k loop in SIMD registers. The order is the same on every
// run and every thread count, so determinism contracts are unaffected —
// only the (fixed) summation order differs from a naive scalar loop.
void MatMulTransBAccumulate(const float* a, size_t a_rows, size_t a_cols,
                            const float* b, size_t b_rows, float* c) {
  const size_t k_blocked = a_cols - a_cols % 8;
  for (size_t i = 0; i < a_rows; ++i) {
    const float* a_row = a + i * a_cols;
    float* c_row = c + i * b_rows;
    for (size_t j = 0; j < b_rows; ++j) {
      const float* b_row = b + j * a_cols;
      float lanes[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
      size_t k = 0;
      for (; k < k_blocked; k += 8) {
        for (size_t l = 0; l < 8; ++l) {
          lanes[l] += a_row[k + l] * b_row[k + l];
        }
      }
      float dot = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
                  ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
      for (; k < a_cols; ++k) {
        dot += a_row[k] * b_row[k];
      }
      c_row[j] += dot;
    }
  }
}

// ---- Backward rules, dispatched from RunNodeBackward ----------------------
//
// Each reads its op context from the node's POD fields / aux buffers and
// recovers shapes from the node and its parents. Accumulation order within
// every destination buffer is fixed — independent of thread count, arena
// state, and graph-cache state — so the loss-history equality contracts
// (threads=1 vs threads=N, pooled vs fresh allocation) hold bitwise.

void BackwardMatMul(Node* node) {
  Node* a_node = node->parents[0].get();
  Node* b_node = node->parents[1].get();
  const size_t m = node->rows;
  const size_t n = node->cols;
  const size_t k = a_node->cols;
  if (WantsGrad(*a_node)) {
    // dA += dC * B^T : (m,n) x (n,k)^T-of-(k,n)
    MatMulTransBAccumulate(node->grad.data(), m, n, b_node->values.data(), k,
                           a_node->grad.data());
  }
  if (WantsGrad(*b_node)) {
    // dB += A^T * dC : (m,k)^T x (m,n)
    MatMulTransAAccumulate(a_node->values.data(), m, k, node->grad.data(), n,
                           b_node->grad.data());
  }
}

void BackwardAddBias(Node* node) {
  Node* x_node = node->parents[0].get();
  Node* b_node = node->parents[1].get();
  const size_t m = node->rows;
  const size_t n = node->cols;
  if (WantsGrad(*x_node)) {
    for (size_t i = 0; i < m * n; ++i) x_node->grad[i] += node->grad[i];
  }
  if (WantsGrad(*b_node)) {
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        b_node->grad[j] += node->grad[i * n + j];
      }
    }
  }
}

// Single-pass fused backward: one sweep over the output rows computes the
// activation-gated dZ row in a pooled scratch buffer and immediately feeds
// it to all three gradient accumulations while it is still in cache —
// instead of materializing the full (m,n) dZ and streaming it three times.
// Per-destination accumulation order is unchanged from the unfused version:
// dX rows are independent, and dW / dB both accumulated batch-row-outermost
// before (MatMulTransAAccumulate iterates k = batch row outermost), so
// results are bit-identical.
void BackwardLinearFused(Node* node) {
  Node* x_node = node->parents[0].get();
  Node* w_node = node->parents[1].get();
  Node* b_node = node->parents[2].get();
  const size_t m = node->rows;
  const size_t n = node->cols;
  const size_t k = x_node->cols;
  const bool relu = node->u0 != 0;
  const bool want_x = WantsGrad(*x_node);
  const bool want_w = WantsGrad(*w_node);
  const bool want_b = WantsGrad(*b_node);
  std::vector<float> dz_row = node->arena != nullptr
                                  ? node->arena->AcquireFloats(n)
                                  : std::vector<float>(n);
  for (size_t i = 0; i < m; ++i) {
    const float* grad_row = node->grad.data() + i * n;
    const float* out_row = node->values.data() + i * n;
    // dZ = dOut gated by the activation. The mask comes from the stored
    // *post*-ReLU values: out > 0 iff the pre-activation was > 0, and both
    // conventions pass zero gradient at exactly 0 — identical to Relu's
    // backward on the pre-activation.
    if (relu) {
      for (size_t j = 0; j < n; ++j) {
        dz_row[j] = out_row[j] > 0.0f ? grad_row[j] : 0.0f;
      }
    } else {
      for (size_t j = 0; j < n; ++j) dz_row[j] = grad_row[j];
    }
    if (want_x) {
      // dX_i += dZ_i * W^T
      MatMulTransBAccumulate(dz_row.data(), 1, n, w_node->values.data(), k,
                             x_node->grad.data() + i * k);
    }
    if (want_w) {
      // dW += X_i^T * dZ_i (rank-1 update, same k-outer order as the full
      // X^T * dZ accumulation)
      MatMulTransAAccumulate(x_node->values.data() + i * k, 1, k,
                             dz_row.data(), n, w_node->grad.data());
    }
    if (want_b) {
      for (size_t j = 0; j < n; ++j) b_node->grad[j] += dz_row[j];
    }
  }
  if (node->arena != nullptr) node->arena->ReleaseFloats(std::move(dz_row));
}

void BackwardAdd(Node* node) {
  Node* a_node = node->parents[0].get();
  Node* b_node = node->parents[1].get();
  const size_t count = node->size();
  if (WantsGrad(*a_node)) {
    for (size_t i = 0; i < count; ++i) a_node->grad[i] += node->grad[i];
  }
  if (WantsGrad(*b_node)) {
    for (size_t i = 0; i < count; ++i) b_node->grad[i] += node->grad[i];
  }
}

void BackwardSub(Node* node) {
  Node* a_node = node->parents[0].get();
  Node* b_node = node->parents[1].get();
  const size_t count = node->size();
  if (WantsGrad(*a_node)) {
    for (size_t i = 0; i < count; ++i) a_node->grad[i] += node->grad[i];
  }
  if (WantsGrad(*b_node)) {
    for (size_t i = 0; i < count; ++i) b_node->grad[i] -= node->grad[i];
  }
}

void BackwardMul(Node* node) {
  Node* a_node = node->parents[0].get();
  Node* b_node = node->parents[1].get();
  const size_t count = node->size();
  if (WantsGrad(*a_node)) {
    for (size_t i = 0; i < count; ++i) {
      a_node->grad[i] += node->grad[i] * b_node->values[i];
    }
  }
  if (WantsGrad(*b_node)) {
    for (size_t i = 0; i < count; ++i) {
      b_node->grad[i] += node->grad[i] * a_node->values[i];
    }
  }
}

void BackwardScale(Node* node) {
  Node* x_node = node->parents[0].get();
  if (!WantsGrad(*x_node)) return;
  const size_t count = node->size();
  const float factor = node->f0;
  for (size_t i = 0; i < count; ++i) {
    x_node->grad[i] += node->grad[i] * factor;
  }
}

void BackwardRelu(Node* node) {
  Node* x_node = node->parents[0].get();
  if (!WantsGrad(*x_node)) return;
  const size_t count = node->size();
  for (size_t i = 0; i < count; ++i) {
    if (x_node->values[i] > 0.0f) x_node->grad[i] += node->grad[i];
  }
}

void BackwardLeakyRelu(Node* node) {
  Node* x_node = node->parents[0].get();
  if (!WantsGrad(*x_node)) return;
  const size_t count = node->size();
  const float negative_slope = node->f0;
  for (size_t i = 0; i < count; ++i) {
    float slope = x_node->values[i] > 0.0f ? 1.0f : negative_slope;
    x_node->grad[i] += node->grad[i] * slope;
  }
}

void BackwardSigmoid(Node* node) {
  Node* x_node = node->parents[0].get();
  if (!WantsGrad(*x_node)) return;
  const size_t count = node->size();
  for (size_t i = 0; i < count; ++i) {
    const float out = node->values[i];
    x_node->grad[i] += node->grad[i] * out * (1.0f - out);
  }
}

void BackwardTanh(Node* node) {
  Node* x_node = node->parents[0].get();
  if (!WantsGrad(*x_node)) return;
  const size_t count = node->size();
  for (size_t i = 0; i < count; ++i) {
    const float out = node->values[i];
    x_node->grad[i] += node->grad[i] * (1.0f - out * out);
  }
}

void BackwardDropout(Node* node) {
  Node* x_node = node->parents[0].get();
  if (!WantsGrad(*x_node)) return;
  const size_t count = node->size();
  const std::vector<float>& mask = node->aux_floats;
  for (size_t i = 0; i < count; ++i) {
    x_node->grad[i] += node->grad[i] * mask[i];
  }
}

void BackwardRowGather(Node* node) {
  Node* x_node = node->parents[0].get();
  if (!WantsGrad(*x_node)) return;
  const size_t n = node->cols;
  const std::vector<uint32_t>& indices = node->aux_indices;
  for (size_t i = 0; i < indices.size(); ++i) {
    const size_t src = indices[i];
    for (size_t j = 0; j < n; ++j) {
      x_node->grad[src * n + j] += node->grad[i * n + j];
    }
  }
}

void BackwardRowScatterAdd(Node* node) {
  Node* x_node = node->parents[0].get();
  if (!WantsGrad(*x_node)) return;
  const size_t n = node->cols;
  const std::vector<uint32_t>& indices = node->aux_indices;
  for (size_t i = 0; i < indices.size(); ++i) {
    const size_t dst = indices[i];
    for (size_t j = 0; j < n; ++j) {
      x_node->grad[i * n + j] += node->grad[dst * n + j];
    }
  }
}

void BackwardRowScatterAddTo(Node* node) {
  Node* base_node = node->parents[0].get();
  Node* x_node = node->parents[1].get();
  const size_t n = node->cols;
  if (WantsGrad(*base_node)) {
    for (size_t i = 0; i < node->size(); ++i) {
      base_node->grad[i] += node->grad[i];
    }
  }
  if (WantsGrad(*x_node)) {
    const std::vector<uint32_t>& indices = node->aux_indices;
    for (size_t i = 0; i < indices.size(); ++i) {
      const size_t dst = indices[i];
      for (size_t j = 0; j < n; ++j) {
        x_node->grad[i * n + j] += node->grad[dst * n + j];
      }
    }
  }
}

void BackwardScaleRows(Node* node) {
  Node* x_node = node->parents[0].get();
  if (!WantsGrad(*x_node)) return;
  const size_t n = node->cols;
  const std::vector<float>& factors = node->aux_floats;
  for (size_t i = 0; i < factors.size(); ++i) {
    const float factor = factors[i];
    for (size_t j = 0; j < n; ++j) {
      x_node->grad[i * n + j] += node->grad[i * n + j] * factor;
    }
  }
}

void BackwardConcatCols(Node* node) {
  const size_t m = node->rows;
  const size_t total_cols = node->cols;
  size_t col_offset = 0;
  for (const auto& parent : node->parents) {
    const size_t part_cols = parent->cols;
    if (WantsGrad(*parent)) {
      for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < part_cols; ++j) {
          parent->grad[i * part_cols + j] +=
              node->grad[i * total_cols + col_offset + j];
        }
      }
    }
    col_offset += part_cols;
  }
}

void BackwardConcatRows(Node* node) {
  const size_t n = node->cols;
  size_t row_offset = 0;
  for (const auto& parent : node->parents) {
    const size_t count = parent->rows * n;
    if (WantsGrad(*parent)) {
      for (size_t i = 0; i < count; ++i) {
        parent->grad[i] += node->grad[row_offset * n + i];
      }
    }
    row_offset += parent->rows;
  }
}

void BackwardLayerNorm(Node* node) {
  Node* x_node = node->parents[0].get();
  if (!WantsGrad(*x_node)) return;
  const size_t m = node->rows;
  const size_t n = node->cols;
  const std::vector<float>& inv_std = node->aux_floats;
  // dL/dx_j = s * (dy_j - mean(dy) - y_j * mean(dy * y)), with
  // y the normalized output and s the inverse stddev.
  for (size_t i = 0; i < m; ++i) {
    const float s = inv_std[i];
    double mean_dy = 0.0;
    double mean_dy_y = 0.0;
    for (size_t j = 0; j < n; ++j) {
      const float dy = node->grad[i * n + j];
      const float y = node->values[i * n + j];
      mean_dy += dy;
      mean_dy_y += static_cast<double>(dy) * y;
    }
    mean_dy /= static_cast<double>(n);
    mean_dy_y /= static_cast<double>(n);
    for (size_t j = 0; j < n; ++j) {
      const float dy = node->grad[i * n + j];
      const float y = node->values[i * n + j];
      x_node->grad[i * n + j] +=
          static_cast<float>(s * (dy - mean_dy - y * mean_dy_y));
    }
  }
}

void BackwardMseLoss(Node* node) {
  Node* pred = node->parents[0].get();
  Node* target = node->parents[1].get();
  if (!WantsGrad(*pred)) return;
  const size_t count = pred->rows;
  const float scale = node->grad[0] * 2.0f / static_cast<float>(count);
  for (size_t i = 0; i < count; ++i) {
    pred->grad[i] += scale * (pred->values[i] - target->values[i]);
  }
}

void BackwardHuberLoss(Node* node) {
  Node* pred = node->parents[0].get();
  Node* target = node->parents[1].get();
  if (!WantsGrad(*pred)) return;
  const size_t count = pred->rows;
  const float delta = node->f0;
  const float scale = node->grad[0] / static_cast<float>(count);
  for (size_t i = 0; i < count; ++i) {
    float diff = pred->values[i] - target->values[i];
    float grad =
        std::fabs(diff) <= delta ? diff : (diff > 0.0f ? delta : -delta);
    pred->grad[i] += scale * grad;
  }
}

}  // namespace

void RunNodeBackward(Node* node) {
  switch (node->tag) {
    case BackwardTag::kLeaf:
      return;
    case BackwardTag::kMatMul:
      return BackwardMatMul(node);
    case BackwardTag::kAddBias:
      return BackwardAddBias(node);
    case BackwardTag::kLinearFused:
      return BackwardLinearFused(node);
    case BackwardTag::kAdd:
      return BackwardAdd(node);
    case BackwardTag::kSub:
      return BackwardSub(node);
    case BackwardTag::kMul:
      return BackwardMul(node);
    case BackwardTag::kScale:
      return BackwardScale(node);
    case BackwardTag::kRelu:
      return BackwardRelu(node);
    case BackwardTag::kLeakyRelu:
      return BackwardLeakyRelu(node);
    case BackwardTag::kSigmoid:
      return BackwardSigmoid(node);
    case BackwardTag::kTanh:
      return BackwardTanh(node);
    case BackwardTag::kDropout:
      return BackwardDropout(node);
    case BackwardTag::kRowGather:
      return BackwardRowGather(node);
    case BackwardTag::kRowScatterAdd:
      return BackwardRowScatterAdd(node);
    case BackwardTag::kRowScatterAddTo:
      return BackwardRowScatterAddTo(node);
    case BackwardTag::kScaleRows:
      return BackwardScaleRows(node);
    case BackwardTag::kConcatCols:
      return BackwardConcatCols(node);
    case BackwardTag::kConcatRows:
      return BackwardConcatRows(node);
    case BackwardTag::kLayerNorm:
      return BackwardLayerNorm(node);
    case BackwardTag::kMseLoss:
      return BackwardMseLoss(node);
    case BackwardTag::kHuberLoss:
      return BackwardHuberLoss(node);
  }
  ZDB_CHECK(false) << "unknown backward tag";
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  ZDB_CHECK_EQ(a.cols(), b.rows())
      << "MatMul shape mismatch " << a.ShapeString() << " x "
      << b.ShapeString();
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  Tensor out = MakeOpResult(m, n, "matmul", BackwardTag::kMatMul, {&a, &b});
  MatMulAccumulate(a.data().data(), m, k, b.data().data(), n,
                   out.mutable_data().data());
  return out;
}

Tensor AddBias(const Tensor& x, const Tensor& bias) {
  ZDB_CHECK_EQ(bias.rows(), 1u);
  ZDB_CHECK_EQ(bias.cols(), x.cols());
  const size_t m = x.rows();
  const size_t n = x.cols();
  Tensor out =
      MakeOpResult(m, n, "add_bias", BackwardTag::kAddBias, {&x, &bias});
  // Row-at-a-time over raw pointers: the j loop is two contiguous streams
  // plus one store, which vectorizes cleanly.
  const float* x_ptr = x.data().data();
  const float* b_ptr = bias.data().data();
  float* out_ptr = out.mutable_data().data();
  for (size_t i = 0; i < m; ++i) {
    const float* x_row = x_ptr + i * n;
    float* out_row = out_ptr + i * n;
    for (size_t j = 0; j < n; ++j) {
      out_row[j] = x_row[j] + b_ptr[j];
    }
  }
  return out;
}

Tensor LinearFused(const Tensor& x, const Tensor& weight, const Tensor& bias,
                   bool relu) {
  ZDB_CHECK_EQ(x.cols(), weight.rows())
      << "LinearFused shape mismatch " << x.ShapeString() << " x "
      << weight.ShapeString();
  ZDB_CHECK_EQ(bias.rows(), 1u);
  ZDB_CHECK_EQ(bias.cols(), weight.cols());
  const size_t m = x.rows();
  const size_t k = x.cols();
  const size_t n = weight.cols();
  Tensor out = MakeOpResult(m, n, "linear_fused", BackwardTag::kLinearFused,
                            {&x, &weight, &bias});
  out.node()->u0 = relu ? 1 : 0;
  const float* x_ptr = x.data().data();
  const float* w_ptr = weight.data().data();
  const float* b_ptr = bias.data().data();
  float* out_ptr = out.mutable_data().data();
  for (size_t i = 0; i < m; ++i) {
    float* out_row = out_ptr + i * n;
    MatMulRowAccumulate(x_ptr + i * k, k, w_ptr, n, out_row);
    if (relu) {
      for (size_t j = 0; j < n; ++j) {
        const float v = out_row[j] + b_ptr[j];
        out_row[j] = v > 0.0f ? v : 0.0f;
      }
    } else {
      for (size_t j = 0; j < n; ++j) {
        out_row[j] += b_ptr[j];
      }
    }
  }
  return out;
}

namespace {

Tensor ElementwiseBinary(const Tensor& a, const Tensor& b, const char* name,
                         BackwardTag tag, float (*fwd)(float, float)) {
  ZDB_CHECK_EQ(a.rows(), b.rows());
  ZDB_CHECK_EQ(a.cols(), b.cols());
  const size_t count = a.size();
  Tensor out = MakeOpResult(a.rows(), a.cols(), name, tag, {&a, &b});
  auto& out_data = out.mutable_data();
  for (size_t i = 0; i < count; ++i) {
    out_data[i] = fwd(a.data()[i], b.data()[i]);
  }
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, "add", BackwardTag::kAdd,
                           [](float x, float y) { return x + y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, "sub", BackwardTag::kSub,
                           [](float x, float y) { return x - y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(a, b, "mul", BackwardTag::kMul,
                           [](float x, float y) { return x * y; });
}

Tensor Scale(const Tensor& x, float factor) {
  const size_t count = x.size();
  Tensor out = MakeOpResult(x.rows(), x.cols(), "scale", BackwardTag::kScale,
                            {&x});
  out.node()->f0 = factor;
  auto& out_data = out.mutable_data();
  for (size_t i = 0; i < count; ++i) out_data[i] = x.data()[i] * factor;
  return out;
}

namespace {

Tensor ElementwiseUnary(const Tensor& x, const char* name, BackwardTag tag,
                        float (*fwd)(float)) {
  const size_t count = x.size();
  Tensor out = MakeOpResult(x.rows(), x.cols(), name, tag, {&x});
  auto& out_data = out.mutable_data();
  for (size_t i = 0; i < count; ++i) out_data[i] = fwd(x.data()[i]);
  return out;
}

}  // namespace

Tensor Relu(const Tensor& x) {
  // Dedicated forward (not ElementwiseUnary): the select compiles to a
  // branch-free vector max, and the hot path skips the indirect fwd call
  // per element.
  const size_t count = x.size();
  Tensor out =
      MakeOpResult(x.rows(), x.cols(), "relu", BackwardTag::kRelu, {&x});
  const float* x_ptr = x.data().data();
  float* out_ptr = out.mutable_data().data();
  for (size_t i = 0; i < count; ++i) {
    out_ptr[i] = x_ptr[i] > 0.0f ? x_ptr[i] : 0.0f;
  }
  return out;
}

Tensor LeakyRelu(const Tensor& x, float negative_slope) {
  const size_t count = x.size();
  Tensor out = MakeOpResult(x.rows(), x.cols(), "leaky_relu",
                            BackwardTag::kLeakyRelu, {&x});
  out.node()->f0 = negative_slope;
  auto& out_data = out.mutable_data();
  for (size_t i = 0; i < count; ++i) {
    float v = x.data()[i];
    out_data[i] = v > 0.0f ? v : negative_slope * v;
  }
  return out;
}

Tensor Sigmoid(const Tensor& x) {
  return ElementwiseUnary(x, "sigmoid", BackwardTag::kSigmoid, [](float v) {
    return 1.0f / (1.0f + std::exp(-v));
  });
}

Tensor Tanh(const Tensor& x) {
  return ElementwiseUnary(x, "tanh", BackwardTag::kTanh,
                          [](float v) { return std::tanh(v); });
}

Tensor Dropout(const Tensor& x, float p, Rng* rng, bool training) {
  ZDB_CHECK(p >= 0.0f && p < 1.0f);
  if (!training || p == 0.0f) return x;
  const size_t count = x.size();
  // Build the mask up front so forward and backward agree. It rides in the
  // node's pooled aux buffer — no shared_ptr allocation per dropout op.
  std::vector<float> mask = AcquirePooledFloats(count);
  const float keep_scale = 1.0f / (1.0f - p);
  for (size_t i = 0; i < count; ++i) {
    mask[i] = rng->Bernoulli(p) ? 0.0f : keep_scale;
  }
  Tensor out =
      MakeOpResult(x.rows(), x.cols(), "dropout", BackwardTag::kDropout, {&x});
  auto& out_data = out.mutable_data();
  for (size_t i = 0; i < count; ++i) out_data[i] = x.data()[i] * mask[i];
  out.node()->aux_floats = std::move(mask);
  return out;
}

Tensor RowGather(const Tensor& x, std::vector<uint32_t> indices) {
  const size_t n = x.cols();
  const size_t out_rows = indices.size();
  for (uint32_t index : indices) ZDB_CHECK_LT(index, x.rows());
  Tensor out =
      MakeOpResult(out_rows, n, "row_gather", BackwardTag::kRowGather, {&x});
  auto& out_data = out.mutable_data();
  const auto& x_data = x.data();
  for (size_t i = 0; i < out_rows; ++i) {
    const size_t src = indices[i];
    for (size_t j = 0; j < n; ++j) {
      out_data[i * n + j] = x_data[src * n + j];
    }
  }
  out.node()->aux_indices = std::move(indices);
  return out;
}

Tensor RowScatterAdd(const Tensor& x, std::vector<uint32_t> indices,
                     size_t out_rows) {
  ZDB_CHECK_EQ(indices.size(), x.rows());
  const size_t n = x.cols();
  for (uint32_t index : indices) ZDB_CHECK_LT(index, out_rows);
  Tensor out = MakeOpResult(out_rows, n, "row_scatter_add",
                            BackwardTag::kRowScatterAdd, {&x});
  auto& out_data = out.mutable_data();
  const auto& x_data = x.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const size_t dst = indices[i];
    for (size_t j = 0; j < n; ++j) {
      out_data[dst * n + j] += x_data[i * n + j];
    }
  }
  out.node()->aux_indices = std::move(indices);
  return out;
}

Tensor RowScatterAddTo(Tensor base, const Tensor& x,
                       std::vector<uint32_t> indices) {
  ZDB_CHECK_EQ(indices.size(), x.rows());
  ZDB_CHECK_EQ(base.cols(), x.cols());
  const size_t n = x.cols();
  for (uint32_t index : indices) ZDB_CHECK_LT(index, base.rows());
  if (InInferenceMode()) {
    // Accumulate straight into base's buffer: with no autodiff graph there
    // is no later reader of the pre-scatter value, and the caller contract
    // (header) makes base ours to consume.
    auto& base_data = base.mutable_data();
    const auto& x_data = x.data();
    for (size_t i = 0; i < indices.size(); ++i) {
      const size_t dst = indices[i];
      for (size_t j = 0; j < n; ++j) {
        base_data[dst * n + j] += x_data[i * n + j];
      }
    }
    return base;
  }
  Tensor out = MakeOpResult(base.rows(), n, "row_scatter_add_to",
                            BackwardTag::kRowScatterAddTo, {&base, &x});
  auto& out_data = out.mutable_data();
  out_data = base.data();
  const auto& x_data = x.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const size_t dst = indices[i];
    for (size_t j = 0; j < n; ++j) {
      out_data[dst * n + j] += x_data[i * n + j];
    }
  }
  out.node()->aux_indices = std::move(indices);
  return out;
}

Tensor ScaleRows(const Tensor& x, std::vector<float> factors) {
  ZDB_CHECK_EQ(factors.size(), x.rows());
  const size_t n = x.cols();
  Tensor out = MakeOpResult(x.rows(), n, "scale_rows",
                            BackwardTag::kScaleRows, {&x});
  auto& out_data = out.mutable_data();
  const auto& x_data = x.data();
  for (size_t i = 0; i < factors.size(); ++i) {
    const float factor = factors[i];
    for (size_t j = 0; j < n; ++j) {
      out_data[i * n + j] = x_data[i * n + j] * factor;
    }
  }
  out.node()->aux_floats = std::move(factors);
  return out;
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  ZDB_CHECK(!parts.empty());
  const size_t m = parts[0].rows();
  size_t total_cols = 0;
  for (const Tensor& part : parts) {
    ZDB_CHECK_EQ(part.rows(), m);
    total_cols += part.cols();
  }
  Tensor out = MakeOpResult(m, total_cols, "concat_cols",
                            BackwardTag::kConcatCols, parts);
  auto& out_data = out.mutable_data();
  size_t col_offset = 0;
  for (const Tensor& part : parts) {
    const size_t part_cols = part.cols();
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < part_cols; ++j) {
        out_data[i * total_cols + col_offset + j] =
            part.data()[i * part_cols + j];
      }
    }
    col_offset += part_cols;
  }
  return out;
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  ZDB_CHECK(!parts.empty());
  const size_t n = parts[0].cols();
  size_t total_rows = 0;
  for (const Tensor& part : parts) {
    ZDB_CHECK_EQ(part.cols(), n);
    total_rows += part.rows();
  }
  Tensor out = MakeOpResult(total_rows, n, "concat_rows",
                            BackwardTag::kConcatRows, parts);
  auto& out_data = out.mutable_data();
  size_t row_offset = 0;
  for (const Tensor& part : parts) {
    const size_t count = part.size();
    for (size_t i = 0; i < count; ++i) {
      out_data[row_offset * n + i] = part.data()[i];
    }
    row_offset += part.rows();
  }
  return out;
}

Tensor LayerNorm(const Tensor& x, float epsilon) {
  const size_t m = x.rows();
  const size_t n = x.cols();
  ZDB_CHECK_GT(n, 0u);
  // Precompute per-row mean and inverse stddev; backward reuses the inverse
  // stddev (stored in the node's pooled aux buffer), the mean is forward-only
  // scratch.
  std::vector<float> mean = AcquirePooledFloats(m);
  std::vector<float> inv_std = AcquirePooledFloats(m);
  const auto& x_data = x.data();
  for (size_t i = 0; i < m; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < n; ++j) sum += x_data[i * n + j];
    double mu = sum / static_cast<double>(n);
    double var = 0.0;
    for (size_t j = 0; j < n; ++j) {
      double d = x_data[i * n + j] - mu;
      var += d * d;
    }
    var /= static_cast<double>(n);
    mean[i] = static_cast<float>(mu);
    inv_std[i] = static_cast<float>(1.0 / std::sqrt(var + epsilon));
  }
  Tensor out =
      MakeOpResult(m, n, "layer_norm", BackwardTag::kLayerNorm, {&x});
  auto& out_data = out.mutable_data();
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      out_data[i * n + j] = (x_data[i * n + j] - mean[i]) * inv_std[i];
    }
  }
  ReleasePooledFloats(std::move(mean));
  out.node()->aux_floats = std::move(inv_std);
  return out;
}

Tensor MseLoss(const Tensor& predictions, const Tensor& targets) {
  ZDB_CHECK_EQ(predictions.rows(), targets.rows());
  ZDB_CHECK_EQ(predictions.cols(), 1u);
  ZDB_CHECK_EQ(targets.cols(), 1u);
  const size_t count = predictions.rows();
  ZDB_CHECK_GT(count, 0u);
  Tensor out = MakeOpResult(1, 1, "mse_loss", BackwardTag::kMseLoss,
                            {&predictions, &targets});
  double total = 0.0;
  for (size_t i = 0; i < count; ++i) {
    double diff = predictions.data()[i] - targets.data()[i];
    total += diff * diff;
  }
  out.mutable_data()[0] =
      static_cast<float>(total / static_cast<double>(count));
  return out;
}

Tensor HuberLoss(const Tensor& predictions, const Tensor& targets,
                 float delta) {
  ZDB_CHECK_EQ(predictions.rows(), targets.rows());
  ZDB_CHECK_EQ(predictions.cols(), 1u);
  ZDB_CHECK_EQ(targets.cols(), 1u);
  ZDB_CHECK_GT(delta, 0.0f);
  const size_t count = predictions.rows();
  ZDB_CHECK_GT(count, 0u);
  Tensor out = MakeOpResult(1, 1, "huber_loss", BackwardTag::kHuberLoss,
                            {&predictions, &targets});
  out.node()->f0 = delta;
  double total = 0.0;
  for (size_t i = 0; i < count; ++i) {
    double diff = std::fabs(predictions.data()[i] - targets.data()[i]);
    if (diff <= delta) {
      total += 0.5 * diff * diff;
    } else {
      total += delta * (diff - 0.5 * delta);
    }
  }
  out.mutable_data()[0] =
      static_cast<float>(total / static_cast<double>(count));
  return out;
}

}  // namespace zerodb::nn
