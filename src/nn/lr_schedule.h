#ifndef ZERODB_NN_LR_SCHEDULE_H_
#define ZERODB_NN_LR_SCHEDULE_H_

#include <cstddef>

namespace zerodb::nn {

/// Learning-rate schedules for the trainer. All return the rate to use for
/// the given zero-based epoch.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual float RateForEpoch(size_t epoch) const = 0;
};

/// Constant rate.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float rate) : rate_(rate) {}
  float RateForEpoch(size_t) const override { return rate_; }

 private:
  float rate_;
};

/// Step decay: rate * factor^(epoch / step_epochs).
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(float initial, float factor, size_t step_epochs)
      : initial_(initial), factor_(factor), step_epochs_(step_epochs) {}
  float RateForEpoch(size_t epoch) const override;

 private:
  float initial_;
  float factor_;
  size_t step_epochs_;
};

/// Cosine annealing from `initial` to `floor` over `total_epochs`.
class CosineLr : public LrSchedule {
 public:
  CosineLr(float initial, float floor, size_t total_epochs)
      : initial_(initial), floor_(floor), total_epochs_(total_epochs) {}
  float RateForEpoch(size_t epoch) const override;

 private:
  float initial_;
  float floor_;
  size_t total_epochs_;
};

}  // namespace zerodb::nn

#endif  // ZERODB_NN_LR_SCHEDULE_H_
