#include "nn/tensor.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"
#include "common/string_util.h"
#include "nn/arena.h"

namespace zerodb::nn {

namespace {

// One node with a zeroed (rows*cols) values buffer, from the active arena
// when one is installed, else from the heap. All factories and op results
// funnel through here; Parameter is the exception (always heap — parameters
// outlive arena epochs).
Tensor MakeNode(size_t rows, size_t cols) {
  if (GraphArena* arena = ActiveArena()) {
    std::shared_ptr<Node> node = arena->NewNode();
    node->rows = rows;
    node->cols = cols;
    node->values = arena->AcquireFloats(rows * cols);
    return Tensor(std::move(node));
  }
  arena_internal::CountHeapNode();
  auto node = std::make_shared<Node>();
  node->rows = rows;
  node->cols = cols;
  // Direct value-initialization: one allocation, elements zeroed by the
  // vector itself (no fill-after-resize pass).
  node->values = std::vector<float>(rows * cols);
  return Tensor(std::move(node));
}

}  // namespace

Tensor Tensor::Full(size_t rows, size_t cols, float value) {
  Tensor t = MakeNode(rows, cols);
  if (value != 0.0f) {
    std::fill(t.mutable_data().begin(), t.mutable_data().end(), value);
  }
  return t;
}

Tensor Tensor::Zeros(size_t rows, size_t cols) {
  // MakeNode's buffers are already value-initialized (pooled buffers are
  // zeroed on acquire); nothing to fill.
  return MakeNode(rows, cols);
}

Tensor Tensor::ZerosLike(const Tensor& t) {
  ZDB_CHECK(t.defined());
  return Zeros(t.rows(), t.cols());
}

Tensor Tensor::FromData(size_t rows, size_t cols, std::vector<float> data) {
  ZDB_CHECK_EQ(rows * cols, data.size())
      << "FromData shape (" << rows << ", " << cols << ") vs "
      << data.size() << " values";
  if (GraphArena* arena = ActiveArena()) {
    std::shared_ptr<Node> node = arena->NewNode();
    node->rows = rows;
    node->cols = cols;
    node->values = std::move(data);
    return Tensor(std::move(node));
  }
  arena_internal::CountHeapNode();
  auto node = std::make_shared<Node>();
  node->rows = rows;
  node->cols = cols;
  node->values = std::move(data);
  return Tensor(std::move(node));
}

Tensor Tensor::Parameter(size_t rows, size_t cols, std::vector<float> data) {
  ZDB_CHECK_EQ(rows * cols, data.size())
      << "Parameter shape (" << rows << ", " << cols << ") vs "
      << data.size() << " values";
  // Deliberately not arena-backed even under an ArenaGuard: parameters are
  // long-lived leaves, and an arena Reset would pull the storage out from
  // under them.
  arena_internal::CountHeapNode();
  auto node = std::make_shared<Node>();
  node->rows = rows;
  node->cols = cols;
  node->values = std::move(data);
  node->requires_grad = true;
  node->grad = std::vector<float>(rows * cols);
  return Tensor(std::move(node));
}

float Tensor::item() const {
  ZDB_CHECK(defined());
  ZDB_CHECK_EQ(size(), 1u);
  return node_->values[0];
}

namespace {

// Monotonic traversal epoch: each Backward() call takes a fresh mark, so
// Node::visit_mark == mark identifies "seen by this call" without a visited
// set. Atomic because concurrent shard executors run Backward on disjoint
// graphs; uniqueness across threads keeps stale marks harmless.
std::atomic<uint64_t> g_visit_epoch{0};

struct TopoFrame {
  Node* node;
  size_t next_parent;
};

}  // namespace

void Tensor::Backward() {
  ZDB_CHECK(defined());
  ZDB_CHECK_EQ(size(), 1u) << "Backward requires a scalar loss";
  ZDB_CHECK(node_->requires_grad)
      << "Backward on a graph with no trainable parameters";

  // Iterative depth-first post-order, pruned to the grad-tracking subgraph:
  // requires_grad propagates parent->child, so any node on a path from the
  // loss to a requires_grad node itself requires grad — skipping no-grad
  // parents (constants, targets) drops exactly the nodes whose backward
  // would be a no-op, and leaves the execution order of the rest unchanged.
  // The visit stacks are thread_local so steady-state Backward calls do not
  // allocate.
  const uint64_t mark = g_visit_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  thread_local std::vector<TopoFrame> frames;
  thread_local std::vector<Node*> order;
  frames.clear();
  order.clear();

  node_->visit_mark = mark;
  frames.push_back({node_.get(), 0});
  while (!frames.empty()) {
    TopoFrame& frame = frames.back();
    if (frame.next_parent < frame.node->parents.size()) {
      Node* parent = frame.node->parents[frame.next_parent++].get();
      if (parent->requires_grad && parent->visit_mark != mark) {
        parent->visit_mark = mark;
        frames.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      frames.pop_back();
    }
  }

  // Ensure every node in the walk has a sized grad buffer; leaves keep their
  // accumulated gradient, non-leaf intermediates start each pass from zero.
  // Arena nodes draw pooled buffers (zeroed on acquire).
  for (Node* node : order) {
    const size_t count = node->size();
    if (node->grad.size() != count) {
      if (node->arena != nullptr) {
        node->grad = node->arena->AcquireFloats(count);
      } else {
        node->grad = std::vector<float>(count);
      }
    } else if (node->tag != BackwardTag::kLeaf && node != node_.get()) {
      std::fill(node->grad.begin(), node->grad.end(), 0.0f);
    }
  }

  node_->grad.assign(1, 1.0f);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->tag != BackwardTag::kLeaf) {
      RunNodeBackward(node);
    }
  }
}

void Tensor::ZeroGrad() {
  ZDB_CHECK(defined());
  std::fill(node_->grad.begin(), node_->grad.end(), 0.0f);
}

std::string Tensor::ShapeString() const {
  if (!defined()) return "(null)";
  return StrFormat("(%zu, %zu)", rows(), cols());
}

namespace {

// Depth counter rather than a bool so guards nest (an inference-mode caller
// may invoke a helper that installs its own guard).
thread_local int inference_depth = 0;

}  // namespace

InferenceModeGuard::InferenceModeGuard() { ++inference_depth; }

InferenceModeGuard::~InferenceModeGuard() { --inference_depth; }

bool InInferenceMode() { return inference_depth > 0; }

namespace {

template <typename ParentIter>
Tensor MakeOpResultImpl(size_t rows, size_t cols, const char* op,
                        BackwardTag tag, ParentIter begin, ParentIter end,
                        size_t parent_count) {
  Tensor out = MakeNode(rows, cols);
  Node* node = out.node().get();
  node->op = op;
  if (InInferenceMode()) {
    // Detached result: the op's forward code still writes values, but the
    // graph ends here — no parent edges to keep inputs alive, no backward
    // tag to dispatch.
    return out;
  }
  bool requires_grad = false;
  for (ParentIter it = begin; it != end; ++it) {
    if ((*it)->requires_grad()) {
      requires_grad = true;
      break;
    }
  }
  node->requires_grad = requires_grad;
  if (requires_grad) node->tag = tag;
  // Parent edges are kept even without grad so inputs stay alive while this
  // result does (same ownership semantics as the closure-based graph).
  if (node->arena != nullptr) {
    node->parents = node->arena->AcquireParents();
  } else {
    node->parents.reserve(parent_count);
  }
  for (ParentIter it = begin; it != end; ++it) {
    node->parents.push_back((*it)->node());
  }
  return out;
}

// Adapts the vector<Tensor> overload to the pointer-based iteration above.
struct TensorPtrIter {
  const Tensor* tensor;
  const Tensor* operator*() const { return tensor; }
  TensorPtrIter& operator++() {
    ++tensor;
    return *this;
  }
  bool operator!=(const TensorPtrIter& other) const {
    return tensor != other.tensor;
  }
};

}  // namespace

Tensor MakeOpResult(size_t rows, size_t cols, const char* op, BackwardTag tag,
                    std::initializer_list<const Tensor*> parents) {
  return MakeOpResultImpl(rows, cols, op, tag, parents.begin(), parents.end(),
                          parents.size());
}

Tensor MakeOpResult(size_t rows, size_t cols, const char* op, BackwardTag tag,
                    const std::vector<Tensor>& parents) {
  return MakeOpResultImpl(rows, cols, op, tag,
                          TensorPtrIter{parents.data()},
                          TensorPtrIter{parents.data() + parents.size()},
                          parents.size());
}

}  // namespace zerodb::nn
