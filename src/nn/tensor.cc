#include "nn/tensor.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/string_util.h"

namespace zerodb::nn {

Tensor Tensor::Full(size_t rows, size_t cols, float value) {
  auto node = std::make_shared<Node>();
  node->rows = rows;
  node->cols = cols;
  node->values.assign(rows * cols, value);
  return Tensor(std::move(node));
}

Tensor Tensor::FromData(size_t rows, size_t cols, std::vector<float> data) {
  ZDB_CHECK_EQ(rows * cols, data.size())
      << "FromData shape (" << rows << ", " << cols << ") vs "
      << data.size() << " values";
  auto node = std::make_shared<Node>();
  node->rows = rows;
  node->cols = cols;
  node->values = std::move(data);
  return Tensor(std::move(node));
}

Tensor Tensor::Parameter(size_t rows, size_t cols, std::vector<float> data) {
  Tensor t = FromData(rows, cols, std::move(data));
  t.node()->requires_grad = true;
  t.node()->grad.assign(rows * cols, 0.0f);
  return t;
}

float Tensor::item() const {
  ZDB_CHECK(defined());
  ZDB_CHECK_EQ(size(), 1u);
  return node_->values[0];
}

namespace {

// Depth-first post-order over the graph, visiting each node once.
void TopoSort(Node* node, std::unordered_set<Node*>* visited,
              std::vector<Node*>* order) {
  if (visited->count(node) > 0) return;
  visited->insert(node);
  for (const auto& parent : node->parents) {
    TopoSort(parent.get(), visited, order);
  }
  order->push_back(node);
}

}  // namespace

void Tensor::Backward() {
  ZDB_CHECK(defined());
  ZDB_CHECK_EQ(size(), 1u) << "Backward requires a scalar loss";
  ZDB_CHECK(node_->requires_grad)
      << "Backward on a graph with no trainable parameters";

  std::unordered_set<Node*> visited;
  std::vector<Node*> order;
  TopoSort(node_.get(), &visited, &order);

  // Ensure every grad-tracking intermediate has a zeroed grad buffer; leaves
  // keep their accumulated gradient.
  for (Node* node : order) {
    if (node->requires_grad && node->grad.size() != node->size()) {
      node->grad.assign(node->size(), 0.0f);
    }
    if (node->requires_grad && node->backward_fn != nullptr &&
        node != node_.get()) {
      // Non-leaf intermediates start each backward pass from zero.
      std::fill(node->grad.begin(), node->grad.end(), 0.0f);
    }
  }

  node_->grad.assign(1, 1.0f);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn != nullptr && node->requires_grad) {
      node->backward_fn(node);
    }
  }
}

void Tensor::ZeroGrad() {
  ZDB_CHECK(defined());
  std::fill(node_->grad.begin(), node_->grad.end(), 0.0f);
}

std::string Tensor::ShapeString() const {
  if (!defined()) return "(null)";
  return StrFormat("(%zu, %zu)", rows(), cols());
}

namespace {

// Depth counter rather than a bool so guards nest (an inference-mode caller
// may invoke a helper that installs its own guard).
thread_local int inference_depth = 0;

}  // namespace

InferenceModeGuard::InferenceModeGuard() { ++inference_depth; }

InferenceModeGuard::~InferenceModeGuard() { --inference_depth; }

bool InInferenceMode() { return inference_depth > 0; }

Tensor MakeOpResult(size_t rows, size_t cols, const char* op,
                    std::vector<std::shared_ptr<Node>> parents,
                    std::function<void(Node*)> backward_fn) {
  auto node = std::make_shared<Node>();
  node->rows = rows;
  node->cols = cols;
  node->values.assign(rows * cols, 0.0f);
  node->op = op;
  if (InInferenceMode()) {
    // Detached result: the op's forward code still writes values, but the
    // graph ends here — no parent edges to keep inputs alive, no backward
    // closure to allocate.
    return Tensor(std::move(node));
  }
  bool requires_grad = false;
  for (const auto& parent : parents) {
    if (parent->requires_grad) requires_grad = true;
  }
  node->requires_grad = requires_grad;
  node->parents = std::move(parents);
  if (requires_grad) node->backward_fn = std::move(backward_fn);
  return Tensor(std::move(node));
}

}  // namespace zerodb::nn
