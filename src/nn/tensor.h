#ifndef ZERODB_NN_TENSOR_H_
#define ZERODB_NN_TENSOR_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace zerodb::nn {

/// A node in the autograd graph: a 2-D float matrix plus (optionally) a
/// gradient buffer, the backward function of the op that produced it, and
/// its parents. Users interact through the `Tensor` handle below.
struct Node {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<float> values;
  std::vector<float> grad;  // same size as values when requires_grad
  bool requires_grad = false;

  /// Parents in the compute graph (inputs of the producing op); empty for
  /// leaves (parameters and constants).
  std::vector<std::shared_ptr<Node>> parents;

  /// Propagates this node's grad into the parents' grads. Null for leaves.
  std::function<void(Node*)> backward_fn;

  /// Op name for debugging ("matmul", "relu", ..., "leaf").
  const char* op = "leaf";

  size_t size() const { return rows * cols; }
  float& at(size_t r, size_t c) { return values[r * cols + c]; }
  float at(size_t r, size_t c) const { return values[r * cols + c]; }
};

/// Value-semantics handle to a Node. Copies share the underlying node, like
/// torch tensors. All shapes are (rows, cols); vectors are (1, n) or (n, 1).
class Tensor {
 public:
  /// Null handle; most code should use the factories below.
  Tensor() = default;
  explicit Tensor(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  /// A constant (no-grad) tensor filled with `value`.
  static Tensor Full(size_t rows, size_t cols, float value);
  static Tensor Zeros(size_t rows, size_t cols) {
    return Full(rows, cols, 0.0f);
  }

  /// A constant tensor wrapping the given row-major data.
  static Tensor FromData(size_t rows, size_t cols, std::vector<float> data);

  /// A trainable leaf (requires_grad = true) initialized with `data`.
  static Tensor Parameter(size_t rows, size_t cols, std::vector<float> data);

  bool defined() const { return node_ != nullptr; }
  size_t rows() const { return node_->rows; }
  size_t cols() const { return node_->cols; }
  size_t size() const { return node_->size(); }
  bool requires_grad() const { return node_->requires_grad; }

  const std::vector<float>& data() const { return node_->values; }
  std::vector<float>& mutable_data() { return node_->values; }
  const std::vector<float>& grad() const { return node_->grad; }
  std::vector<float>& mutable_grad() { return node_->grad; }

  float at(size_t r, size_t c) const { return node_->at(r, c); }
  /// Scalar access; requires a 1x1 tensor.
  float item() const;

  std::shared_ptr<Node> node() const { return node_; }

  /// Runs reverse-mode autodiff from this (scalar) tensor: seeds d(this)=1
  /// and accumulates gradients into every requires_grad node reachable from
  /// it. Gradients accumulate across calls until ZeroGrad.
  void Backward();

  /// Clears this node's gradient buffer (leaves only; optimizers clear
  /// their parameters each step).
  void ZeroGrad();

  std::string ShapeString() const;

 private:
  std::shared_ptr<Node> node_;
};

/// Creates a non-leaf node for an op result. Gradient tracking is enabled iff
/// any parent requires grad. Under an InferenceModeGuard the result is
/// detached instead: no parents, no backward_fn, requires_grad = false.
Tensor MakeOpResult(size_t rows, size_t cols, const char* op,
                    std::vector<std::shared_ptr<Node>> parents,
                    std::function<void(Node*)> backward_fn);

/// While alive on the current thread, every MakeOpResult produces a
/// detached node: parents and backward closures are dropped and
/// requires_grad is forced off, even when an input is a trainable
/// parameter. That removes the autodiff bookkeeping — the dominant per-op
/// cost of small-batch forward passes — and lets intermediate nodes free as
/// soon as the ops consuming them finish. Backward() on anything computed
/// under a guard fails its requires_grad check, so training code must never
/// run inside one. Guards nest; the flag is thread-local, so pool workers
/// are unaffected by a guard on the caller's thread.
class InferenceModeGuard {
 public:
  InferenceModeGuard();
  ~InferenceModeGuard();

  InferenceModeGuard(const InferenceModeGuard&) = delete;
  InferenceModeGuard& operator=(const InferenceModeGuard&) = delete;
};

/// True while an InferenceModeGuard is alive on this thread.
bool InInferenceMode();

}  // namespace zerodb::nn

#endif  // ZERODB_NN_TENSOR_H_
