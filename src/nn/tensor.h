#ifndef ZERODB_NN_TENSOR_H_
#define ZERODB_NN_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

namespace zerodb::nn {

class GraphArena;

/// Identifies the backward rule of the op that produced a node. Backward is
/// dispatched by a switch over this tag (RunNodeBackward in ops.cc) with the
/// op's context in the node's POD fields and pooled aux buffers — no
/// std::function, so building a graph node allocates no closure and the
/// whole node recycles through a GraphArena.
enum class BackwardTag : uint8_t {
  kLeaf = 0,
  kMatMul,
  kAddBias,
  kLinearFused,
  kAdd,
  kSub,
  kMul,
  kScale,
  kRelu,
  kLeakyRelu,
  kSigmoid,
  kTanh,
  kDropout,
  kRowGather,
  kRowScatterAdd,
  kRowScatterAddTo,
  kScaleRows,
  kConcatCols,
  kConcatRows,
  kLayerNorm,
  kMseLoss,
  kHuberLoss,
};

/// A node in the autograd graph: a 2-D float matrix plus (optionally) a
/// gradient buffer, the backward tag/context of the op that produced it, and
/// its parents. Users interact through the `Tensor` handle below.
///
/// Nodes live either on the heap (make_shared, the default) or in a
/// GraphArena slab (when an ArenaGuard is active at creation); `arena` is
/// the owning arena or null. Arena nodes' buffers come from the arena's
/// BufferPool and every field recycles on GraphArena::Reset.
struct Node {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<float> values;
  std::vector<float> grad;  // same size as values when requires_grad
  bool requires_grad = false;

  /// Backward dispatch tag plus small POD context. f0 carries the op scalar
  /// (Scale factor, LeakyRelu slope, Huber delta); u0 carries an op flag
  /// (LinearFused: 1 when ReLU is fused). Shapes are recovered from this
  /// node and its parents.
  BackwardTag tag = BackwardTag::kLeaf;
  float f0 = 0.0f;
  uint32_t u0 = 0;

  /// Per-op auxiliary data that used to live in backward closures: dropout
  /// keep-masks, ScaleRows factors and LayerNorm inverse stddevs in
  /// aux_floats; gather/scatter row indices in aux_indices.
  std::vector<float> aux_floats;
  std::vector<uint32_t> aux_indices;

  /// Parents in the compute graph (inputs of the producing op); empty for
  /// leaves (parameters and constants).
  std::vector<std::shared_ptr<Node>> parents;

  /// Owning arena, or null for heap nodes.
  GraphArena* arena = nullptr;

  /// Traversal epoch for Backward()'s iterative topo walk (replaces a
  /// per-call visited hash set).
  uint64_t visit_mark = 0;

  /// Op name for debugging ("matmul", "relu", ..., "leaf").
  const char* op = "leaf";

  size_t size() const { return rows * cols; }
  float& at(size_t r, size_t c) { return values[r * cols + c]; }
  float at(size_t r, size_t c) const { return values[r * cols + c]; }
};

/// Runs one node's backward rule, accumulating into its parents' grads.
/// Implemented in ops.cc as a switch over Node::tag. No-op for leaves.
void RunNodeBackward(Node* node);

/// Value-semantics handle to a Node. Copies share the underlying node, like
/// torch tensors. All shapes are (rows, cols); vectors are (1, n) or (n, 1).
class Tensor {
 public:
  /// Null handle; most code should use the factories below.
  Tensor() = default;
  explicit Tensor(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  /// A constant (no-grad) tensor filled with `value`.
  static Tensor Full(size_t rows, size_t cols, float value);
  static Tensor Zeros(size_t rows, size_t cols);
  /// A zero tensor with t's shape — the gradient-init idiom.
  static Tensor ZerosLike(const Tensor& t);

  /// A constant tensor wrapping the given row-major data.
  static Tensor FromData(size_t rows, size_t cols, std::vector<float> data);

  /// A trainable leaf (requires_grad = true) initialized with `data`.
  /// Always heap-allocated — parameters outlive any arena epoch.
  static Tensor Parameter(size_t rows, size_t cols, std::vector<float> data);

  bool defined() const { return node_ != nullptr; }
  size_t rows() const { return node_->rows; }
  size_t cols() const { return node_->cols; }
  size_t size() const { return node_->size(); }
  bool requires_grad() const { return node_->requires_grad; }

  const std::vector<float>& data() const { return node_->values; }
  std::vector<float>& mutable_data() { return node_->values; }
  const std::vector<float>& grad() const { return node_->grad; }
  std::vector<float>& mutable_grad() { return node_->grad; }

  float at(size_t r, size_t c) const { return node_->at(r, c); }
  /// Scalar access; requires a 1x1 tensor.
  float item() const;

  std::shared_ptr<Node> node() const { return node_; }

  /// Runs reverse-mode autodiff from this (scalar) tensor: seeds d(this)=1
  /// and accumulates gradients into every requires_grad node reachable from
  /// it. Gradients accumulate across calls until ZeroGrad.
  void Backward();

  /// Clears this node's gradient buffer (leaves only; optimizers clear
  /// their parameters each step).
  void ZeroGrad();

  std::string ShapeString() const;

 private:
  std::shared_ptr<Node> node_;
};

/// Creates a non-leaf node for an op result: zeroed values buffer, backward
/// tag, parent edges. Gradient tracking is enabled iff any parent requires
/// grad. Under an InferenceModeGuard the result is detached instead: no
/// parents, tag reset to kLeaf, requires_grad = false. Under an ArenaGuard
/// the node and its buffers come from the active arena. The op fills the
/// node's POD context / aux buffers after this returns (only needed when
/// the result requires grad).
Tensor MakeOpResult(size_t rows, size_t cols, const char* op, BackwardTag tag,
                    std::initializer_list<const Tensor*> parents);

/// Variadic-parent form (ConcatCols/ConcatRows).
Tensor MakeOpResult(size_t rows, size_t cols, const char* op, BackwardTag tag,
                    const std::vector<Tensor>& parents);

/// While alive on the current thread, every MakeOpResult produces a
/// detached node: parents and backward tags are dropped and
/// requires_grad is forced off, even when an input is a trainable
/// parameter. That removes the autodiff bookkeeping — the dominant per-op
/// cost of small-batch forward passes — and lets intermediate nodes free as
/// soon as the ops consuming them finish. Backward() on anything computed
/// under a guard fails its requires_grad check, so training code must never
/// run inside one. Guards nest; the flag is thread-local, so pool workers
/// are unaffected by a guard on the caller's thread.
class InferenceModeGuard {
 public:
  InferenceModeGuard();
  ~InferenceModeGuard();

  InferenceModeGuard(const InferenceModeGuard&) = delete;
  InferenceModeGuard& operator=(const InferenceModeGuard&) = delete;
};

/// True while an InferenceModeGuard is alive on this thread.
bool InInferenceMode();

}  // namespace zerodb::nn

#endif  // ZERODB_NN_TENSOR_H_
