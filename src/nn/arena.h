#ifndef ZERODB_NN_ARENA_H_
#define ZERODB_NN_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace zerodb::nn {

/// Point-in-time view of one arena, published to the stats hook and the
/// obs gauges on every Reset.
struct ArenaStats {
  size_t slabs = 0;             ///< node slabs currently owned
  size_t bytes_in_use = 0;      ///< slab bytes + bytes retained by the pool
  size_t nodes_in_use = 0;      ///< nodes handed out since the last Reset
  uint64_t buffer_hits = 0;     ///< lifetime pool acquisitions served from a bucket
  uint64_t buffer_misses = 0;   ///< lifetime pool acquisitions that heap-allocated
  uint64_t resets = 0;          ///< lifetime Reset calls
};

/// Size-bucketed free list of vectors. Acquire(n) returns a zeroed vector of
/// size n, reusing a retained buffer whose capacity covers n when one is
/// available (bucket = ceil-pow2 of the request); Release files a spent
/// buffer under the floor-pow2 bucket of its capacity, so a reacquire of the
/// same class is guaranteed to fit without reallocating. Buckets are capped:
/// once a class holds kMaxPerBucket buffers, further releases free instead
/// of retaining, which bounds memory when producers outpace consumers.
///
/// Not thread-safe — each pool belongs to one GraphArena, and each arena to
/// one shard executor at a time (the trainer's executor free-list is the
/// hand-off point).
template <typename T>
class BufferPool {
 public:
  static constexpr size_t kMinBucketLog2 = 3;   // smallest class: 8 elements
  static constexpr size_t kMaxBucketLog2 = 26;  // largest class: 64M elements
  static constexpr size_t kMaxPerBucket = 64;

  /// A zero-filled vector of size n (values are value-initialized whether
  /// the buffer is recycled or fresh, so callers can accumulate into it).
  std::vector<T> Acquire(size_t n);

  /// Returns a buffer to its capacity class. Empty/overfull classes free.
  void Release(std::vector<T>&& buffer);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t retained_bytes() const { return retained_bytes_; }

  /// Frees every retained buffer (stats persist).
  void Clear();

 private:
  static size_t BucketForRequest(size_t n);
  static size_t BucketForCapacity(size_t capacity);

  std::vector<std::vector<T>> buckets_[kMaxBucketLog2 + 1];
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  size_t retained_bytes_ = 0;
};

/// Epoch-scoped allocator for the training-path autodiff graph: Node objects
/// come from slab-backed bump storage, value/grad/aux buffers from a
/// BufferPool. One arena serves one shard executor; the trainer resets it
/// after every shard's gradients are harvested, which recycles every node
/// and buffer without returning memory to the heap — at steady state a
/// training batch performs no allocations in the nn layer.
///
/// Node handles are aliasing shared_ptrs onto a single per-arena anchor, so
/// creating one costs two atomic increments, not a control-block allocation.
/// Reset() checks (debug builds) that no handle outlives the graph: the
/// anchor's use_count must be back to 1.
class GraphArena {
 public:
  static constexpr size_t kNodesPerSlab = 256;

  GraphArena();
  ~GraphArena();

  GraphArena(const GraphArena&) = delete;
  GraphArena& operator=(const GraphArena&) = delete;

  /// A fresh default-constructed Node owned by this arena (node->arena set).
  std::shared_ptr<Node> NewNode();

  /// Pooled zeroed buffers for values / grads / op aux data.
  std::vector<float> AcquireFloats(size_t n) { return floats_.Acquire(n); }
  std::vector<uint32_t> AcquireIndices(size_t n) { return indices_.Acquire(n); }
  void ReleaseFloats(std::vector<float>&& v) { floats_.Release(std::move(v)); }
  void ReleaseIndices(std::vector<uint32_t>&& v) {
    indices_.Release(std::move(v));
  }

  /// Pooled parents vectors (shared_ptr copies are cheap; the vector's heap
  /// block is what this recycles).
  std::vector<std::shared_ptr<Node>> AcquireParents();
  void ReleaseParents(std::vector<std::shared_ptr<Node>>&& parents);

  /// Recycles every node and buffer handed out since the last Reset: buffers
  /// return to the pool, nodes are destroyed and their slab slots rewound
  /// (slabs themselves are kept for reuse). All Tensor handles into this
  /// arena must be dead; debug builds check the anchor refcount. Publishes
  /// stats to the obs gauges and the installed stats hook.
  void Reset();

  ArenaStats stats() const;

 private:
  struct NodeSlab;

  std::shared_ptr<void> anchor_;
  std::vector<std::unique_ptr<NodeSlab>> slabs_;
  size_t nodes_in_use_ = 0;
  uint64_t resets_ = 0;
  uint64_t published_hits_ = 0;    ///< pool hits already pushed to obs
  uint64_t published_misses_ = 0;  ///< pool misses already pushed to obs
  BufferPool<float> floats_;
  BufferPool<uint32_t> indices_;
  std::vector<std::vector<std::shared_ptr<Node>>> parents_pool_;
};

/// Installs `arena` as the active arena for the current thread; MakeOpResult
/// and the Tensor factories allocate from it while the guard is alive.
/// Mirrors InferenceModeGuard: thread-local, nests (restores the previous
/// active arena on destruction). A null arena is a no-op guard — callers can
/// pass their "maybe pooled" pointer unconditionally.
class ArenaGuard {
 public:
  explicit ArenaGuard(GraphArena* arena);
  ~ArenaGuard();

  ArenaGuard(const ArenaGuard&) = delete;
  ArenaGuard& operator=(const ArenaGuard&) = delete;

 private:
  GraphArena* previous_;
};

/// The current thread's active arena, or null when none is installed.
GraphArena* ActiveArena();

/// A pooled zeroed buffer from the active arena, or a plain heap vector when
/// no arena is installed. Callers that move buffers into graph nodes (op aux
/// data, FromData inputs) should acquire through these so the buffer returns
/// to the pool on Reset.
std::vector<float> AcquirePooledFloats(size_t n);
std::vector<uint32_t> AcquirePooledIndices(size_t n);

/// Returns a pooled buffer to the active arena (no-op beyond freeing when
/// none is installed). For scratch that does not ride inside a graph node.
void ReleasePooledFloats(std::vector<float>&& buffer);
void ReleasePooledIndices(std::vector<uint32_t>&& buffer);

/// False when the ZERODB_ARENA environment variable is "off" (or a test
/// override is in place): the trainer then skips arena construction and
/// every allocation takes the plain heap path. The fallback is exercised by
/// a nightly ASan job; results are bit-identical either way (pinned by
/// TrainTest.PooledMemoryDoesNotChangeLossHistory).
bool ArenaEnabled();

/// Test-only override of ArenaEnabled (pass std::nullopt-like semantics by
/// restoring with the previous value). Not thread-safe; call from test main
/// thread only.
void SetArenaEnabledForTest(bool enabled);
void ClearArenaEnabledOverrideForTest();

/// Hook fired (with the arena's stats) on every GraphArena::Reset — the
/// bench harness installs one to count steady-state pool misses per batch.
/// Pass nullptr to uninstall. The hook must be thread-safe: shard executors
/// reset their arenas from pool threads.
using ArenaStatsHook = void (*)(const ArenaStats&);
void InstallArenaStatsHook(ArenaStatsHook hook);

/// Process-wide allocation counters for the autodiff layer, for benchmarks
/// and tests that assert steady-state allocation behavior. heap_nodes counts
/// make_shared fallbacks in MakeOpResult / the Tensor factories; arena_nodes
/// counts slab allocations; pool hits/misses aggregate over every arena.
struct AutodiffAllocCounters {
  uint64_t heap_nodes = 0;
  uint64_t arena_nodes = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
};
AutodiffAllocCounters GlobalAllocCounters();

namespace arena_internal {
/// Called by the heap fallback in tensor.cc; counts toward
/// GlobalAllocCounters().heap_nodes.
void CountHeapNode();
}  // namespace arena_internal

}  // namespace zerodb::nn

#endif  // ZERODB_NN_ARENA_H_
