#include "nn/layers.h"

#include <cmath>

#include "common/check.h"
#include "nn/validate.h"

namespace zerodb::nn {

Tensor ApplyActivation(const Tensor& x, Activation activation) {
  switch (activation) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return Relu(x);
    case Activation::kLeakyRelu:
      return LeakyRelu(x);
    case Activation::kSigmoid:
      return Sigmoid(x);
    case Activation::kTanh:
      return Tanh(x);
  }
  ZDB_CHECK(false) << "unknown activation";
  return x;
}

Linear::Linear(size_t in_features, size_t out_features, Rng* rng)
    : in_features_(in_features), out_features_(out_features) {
  ZDB_CHECK_GT(in_features, 0u);
  ZDB_CHECK_GT(out_features, 0u);
  ZDB_CHECK(rng != nullptr);
  // Kaiming-uniform fan-in initialization, matching torch's Linear default.
  const double bound = std::sqrt(1.0 / static_cast<double>(in_features));
  std::vector<float> weight_data(in_features * out_features);
  for (float& w : weight_data) {
    w = static_cast<float>(rng->UniformDouble(-bound, bound));
  }
  std::vector<float> bias_data(out_features);
  for (float& b : bias_data) {
    b = static_cast<float>(rng->UniformDouble(-bound, bound));
  }
  weight_ = Tensor::Parameter(in_features, out_features, std::move(weight_data));
  bias_ = Tensor::Parameter(1, out_features, std::move(bias_data));
}

Tensor Linear::Forward(const Tensor& x, bool fuse_relu) const {
  ZDB_DCHECK_OK(ValidateFeatureDim(x, in_features_, "Linear::Forward input"));
  ZDB_DCHECK_OK(ValidateShape(weight_, in_features_, out_features_,
                              "Linear::Forward weight"));
  ZDB_CHECK_EQ(x.cols(), in_features_);
  return LinearFused(x, weight_, bias_, fuse_relu);
}

Mlp::Mlp(const MlpConfig& config, Rng* rng) : config_(config) {
  ZDB_CHECK_GT(config.in_features, 0u);
  ZDB_CHECK_GT(config.out_features, 0u);
  size_t in = config.in_features;
  for (size_t hidden : config.hidden_sizes) {
    layers_.emplace_back(in, hidden, rng);
    in = hidden;
  }
  layers_.emplace_back(in, config.out_features, rng);
}

Tensor Mlp::Forward(const Tensor& x, bool training, Rng* rng) const {
  ZDB_CHECK(!layers_.empty()) << "Mlp used before initialization";
  ZDB_DCHECK_OK(ValidateFinite(x, "Mlp::Forward input"));
  Tensor current = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const bool is_output = (i + 1 == layers_.size());
    const Activation activation =
        is_output ? config_.output_activation : config_.hidden_activation;
    // ReLU rides inside the fused dense kernel (one pass over the output
    // instead of three); other activations apply as a separate op.
    if (activation == Activation::kRelu) {
      current = layers_[i].Forward(current, /*fuse_relu=*/true);
    } else {
      current = ApplyActivation(layers_[i].Forward(current), activation);
    }
    if (!is_output && config_.dropout > 0.0f && training) {
      ZDB_CHECK(rng != nullptr) << "dropout requires an rng";
      current = Dropout(current, config_.dropout, rng, training);
    }
  }
  ZDB_DCHECK_OK(ValidateFinite(current, "Mlp::Forward output"));
  return current;
}

std::vector<Tensor> Mlp::Parameters() const {
  std::vector<Tensor> params;
  for (const Linear& layer : layers_) {
    for (const Tensor& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace zerodb::nn
