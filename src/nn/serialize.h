#ifndef ZERODB_NN_SERIALIZE_H_
#define ZERODB_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/tensor.h"

namespace zerodb::nn {

/// Writes the parameter tensors (shapes + float data) to a binary file.
/// Format: magic, count, then per tensor rows/cols/values. Models own their
/// hyperparameters; this only persists weights, so load must be called on a
/// structurally identical model.
Status SaveParameters(const std::vector<Tensor>& parameters,
                      const std::string& path);

/// Loads parameters saved by SaveParameters into the given tensors in order.
/// Fails if the count or any shape mismatches.
Status LoadParameters(std::vector<Tensor> parameters, const std::string& path);

}  // namespace zerodb::nn

#endif  // ZERODB_NN_SERIALIZE_H_
