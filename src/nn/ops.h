#ifndef ZERODB_NN_OPS_H_
#define ZERODB_NN_OPS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace zerodb::nn {

/// Matrix product: (m,k) x (k,n) -> (m,n).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Adds a (1,n) bias row to every row of the (m,n) input.
Tensor AddBias(const Tensor& x, const Tensor& bias);

/// Fused dense layer: out = x (m,k) * weight (k,n) + bias (1,n), with an
/// optional ReLU on the result. Numerically identical to
/// Relu(AddBias(MatMul(x, weight), bias)) — the bias is added after the full
/// k-accumulation and the row is rectified in the same pass — but touches
/// each output row once while it is still in cache instead of streaming the
/// (m,n) intermediate through memory twice, and builds one graph node
/// instead of three.
Tensor LinearFused(const Tensor& x, const Tensor& weight, const Tensor& bias,
                   bool relu);

/// Elementwise sum of same-shape tensors.
Tensor Add(const Tensor& a, const Tensor& b);

/// Elementwise difference a - b of same-shape tensors.
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise product of same-shape tensors.
Tensor Mul(const Tensor& a, const Tensor& b);

/// Multiplies every element by a constant.
Tensor Scale(const Tensor& x, float factor);

/// Rectified linear unit.
Tensor Relu(const Tensor& x);

/// Leaky ReLU with the given negative slope.
Tensor LeakyRelu(const Tensor& x, float negative_slope = 0.01f);

/// Elementwise sigmoid.
Tensor Sigmoid(const Tensor& x);

/// Elementwise tanh.
Tensor Tanh(const Tensor& x);

/// Inverted dropout: during training, zeroes each element with probability p
/// and scales survivors by 1/(1-p); identity when `training` is false.
Tensor Dropout(const Tensor& x, float p, Rng* rng, bool training);

/// Gathers rows: out[i] = x[indices[i]]. Backward scatter-adds.
Tensor RowGather(const Tensor& x, std::vector<uint32_t> indices);

/// Scatter-add of rows: out has `out_rows` rows, out[indices[i]] += x[i].
/// The DeepSets "sum children" step of the message passing phase.
Tensor RowScatterAdd(const Tensor& x, std::vector<uint32_t> indices,
                     size_t out_rows);

/// Fused accumulator scatter: out = base; out[indices[i]] += x[i].
/// Functionally Add(base, RowScatterAdd(x, indices, base.rows())) without
/// materializing the zero-filled intermediate — the pattern the tree model
/// uses to accumulate per-encoder and per-level rows into a shared
/// (total_nodes, hidden) state. Under an InferenceModeGuard the rows are
/// added into base's own buffer and `base` is returned, so an accumulation
/// chain costs only the scattered writes; callers must treat `base` as
/// consumed (reassign it to the result, keep no other live reference).
Tensor RowScatterAddTo(Tensor base, const Tensor& x,
                       std::vector<uint32_t> indices);

/// Multiplies row i of x by factors[i] (constants, not differentiated).
/// Used for mean pooling (factors = 1/set_size).
Tensor ScaleRows(const Tensor& x, std::vector<float> factors);

/// Concatenates along columns: shapes (m,n1),(m,n2) -> (m,n1+n2).
Tensor ConcatCols(const std::vector<Tensor>& parts);

/// Concatenates along rows: shapes (m1,n),(m2,n) -> (m1+m2,n).
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Row-wise layer normalization: each row is standardized to zero mean and
/// unit variance (no learned affine; compose with Linear for that).
Tensor LayerNorm(const Tensor& x, float epsilon = 1e-5f);

/// Mean squared error between (n,1) predictions and constant (n,1) targets,
/// as a scalar (1,1) tensor.
Tensor MseLoss(const Tensor& predictions, const Tensor& targets);

/// Huber (smooth-L1) loss with threshold delta, as a scalar tensor.
Tensor HuberLoss(const Tensor& predictions, const Tensor& targets,
                 float delta = 1.0f);

}  // namespace zerodb::nn

#endif  // ZERODB_NN_OPS_H_
