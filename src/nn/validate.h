#ifndef ZERODB_NN_VALIDATE_H_
#define ZERODB_NN_VALIDATE_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/status.h"
#include "common/string_util.h"
#include "nn/tensor.h"

namespace zerodb::nn {

/// Debug-time tensor invariants, invoked via ZDB_DCHECK_OK on layer
/// boundaries (Linear/Mlp forward) and in the trainer's forward/backward.
/// A NaN that sneaks into one batch silently poisons every weight; a shape
/// mismatch that happens to be in-bounds silently mixes features. These
/// validators make both abort loudly in debug builds and cost nothing under
/// NDEBUG (the DCHECK swallow never evaluates them).

/// The tensor handle refers to a node (defined()), and rows/cols match the
/// value buffer.
[[nodiscard]] inline Status ValidateTensor(const Tensor& t,
                                           const char* context) {
  if (!t.defined()) {
    return Status::InvalidArgument(
        StrFormat("%s: tensor is undefined (null handle)", context));
  }
  if (t.data().size() != t.rows() * t.cols()) {
    return Status::InvalidArgument(StrFormat(
        "%s: value buffer has %zu elements for shape (%zu, %zu)", context,
        t.data().size(), t.rows(), t.cols()));
  }
  return Status::OK();
}

/// Exact shape agreement.
[[nodiscard]] inline Status ValidateShape(const Tensor& t, size_t rows,
                                          size_t cols, const char* context) {
  ZDB_RETURN_NOT_OK(ValidateTensor(t, context));
  if (t.rows() != rows || t.cols() != cols) {
    return Status::InvalidArgument(
        StrFormat("%s: expected shape (%zu, %zu), got (%zu, %zu)", context,
                  rows, cols, t.rows(), t.cols()));
  }
  return Status::OK();
}

/// Same shape on both tensors (elementwise-op precondition).
[[nodiscard]] inline Status ValidateSameShape(const Tensor& a,
                                              const Tensor& b,
                                              const char* context) {
  ZDB_RETURN_NOT_OK(ValidateTensor(a, context));
  return ValidateShape(b, a.rows(), a.cols(), context);
}

/// Column count agreement: `t` feeds a consumer expecting `features`
/// columns (e.g. a Linear layer's in_features).
[[nodiscard]] inline Status ValidateFeatureDim(const Tensor& t,
                                               size_t features,
                                               const char* context) {
  ZDB_RETURN_NOT_OK(ValidateTensor(t, context));
  if (t.cols() != features) {
    return Status::InvalidArgument(
        StrFormat("%s: expected %zu feature columns, got (%zu, %zu)",
                  context, features, t.rows(), t.cols()));
  }
  return Status::OK();
}

/// No NaN/Inf anywhere in the values.
[[nodiscard]] inline Status ValidateFinite(const Tensor& t,
                                           const char* context) {
  ZDB_RETURN_NOT_OK(ValidateTensor(t, context));
  const std::vector<float>& values = t.data();
  for (size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) {
      return Status::InvalidArgument(StrFormat(
          "%s: non-finite value %f at flat index %zu of (%zu, %zu)", context,
          static_cast<double>(values[i]), i, t.rows(), t.cols()));
    }
  }
  return Status::OK();
}

/// No NaN/Inf anywhere in the gradient buffers of `params` (post-backward
/// guard: one exploding batch otherwise corrupts the weights for good).
[[nodiscard]] inline Status ValidateFiniteGradients(
    const std::vector<Tensor>& params, const char* context) {
  for (size_t p = 0; p < params.size(); ++p) {
    const std::vector<float>& grad = params[p].grad();
    for (size_t i = 0; i < grad.size(); ++i) {
      if (!std::isfinite(grad[i])) {
        return Status::InvalidArgument(StrFormat(
            "%s: non-finite gradient %f at flat index %zu of parameter %zu",
            context, static_cast<double>(grad[i]), i, p));
      }
    }
  }
  return Status::OK();
}

}  // namespace zerodb::nn

#endif  // ZERODB_NN_VALIDATE_H_
