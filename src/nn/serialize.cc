#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <fstream>

#include "common/string_util.h"

namespace zerodb::nn {

namespace {
constexpr uint64_t kMagic = 0x5a44424e4e303031ULL;  // "ZDBNN001"
}  // namespace

Status SaveParameters(const std::vector<Tensor>& parameters,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  auto write_u64 = [&out](uint64_t value) {
    out.write(reinterpret_cast<const char*>(&value), sizeof(value));
  };
  write_u64(kMagic);
  write_u64(parameters.size());
  for (const Tensor& parameter : parameters) {
    write_u64(parameter.rows());
    write_u64(parameter.cols());
    out.write(reinterpret_cast<const char*>(parameter.data().data()),
              static_cast<std::streamsize>(parameter.size() * sizeof(float)));
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status LoadParameters(std::vector<Tensor> parameters,
                      const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  auto read_u64 = [&in]() {
    uint64_t value = 0;
    in.read(reinterpret_cast<char*>(&value), sizeof(value));
    return value;
  };
  if (read_u64() != kMagic) {
    return Status::InvalidArgument("not a zerodb parameter file: " + path);
  }
  uint64_t count = read_u64();
  if (count != parameters.size()) {
    return Status::InvalidArgument(
        StrFormat("parameter count mismatch: file has %llu, model has %zu",
                  static_cast<unsigned long long>(count), parameters.size()));
  }
  for (Tensor& parameter : parameters) {
    uint64_t rows = read_u64();
    uint64_t cols = read_u64();
    if (rows != parameter.rows() || cols != parameter.cols()) {
      return Status::InvalidArgument(StrFormat(
          "parameter shape mismatch: file (%llu, %llu) vs model %s",
          static_cast<unsigned long long>(rows),
          static_cast<unsigned long long>(cols),
          parameter.ShapeString().c_str()));
    }
    in.read(reinterpret_cast<char*>(parameter.mutable_data().data()),
            static_cast<std::streamsize>(parameter.size() * sizeof(float)));
    if (!in) return Status::IOError("truncated parameter file: " + path);
  }
  return Status::OK();
}

}  // namespace zerodb::nn
