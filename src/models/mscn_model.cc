#include "models/mscn_model.h"

#include <cmath>

#include "common/check.h"
#include "nn/ops.h"

namespace zerodb::models {

namespace {

nn::MlpConfig MakeMlpConfig(size_t in, size_t hidden, size_t out,
                            float dropout) {
  nn::MlpConfig config;
  config.in_features = in;
  config.hidden_sizes = {hidden};
  config.out_features = out;
  config.dropout = dropout;
  return config;
}

}  // namespace

MscnCostModel::MscnCostModel(const Options& options) : options_(options) {
  Rng rng(options.init_seed);
  const size_t h = options.hidden_dim;
  table_encoder_ = nn::Mlp(
      MakeMlpConfig(featurize::MscnFeaturizer::kTableDim, h, h,
                    options.dropout),
      &rng);
  join_encoder_ = nn::Mlp(
      MakeMlpConfig(featurize::MscnFeaturizer::kJoinDim, h, h, options.dropout),
      &rng);
  predicate_encoder_ = nn::Mlp(
      MakeMlpConfig(featurize::MscnFeaturizer::kPredicateDim, h, h,
                    options.dropout),
      &rng);
  output_ = nn::Mlp(MakeMlpConfig(3 * h, h, 1, options.dropout), &rng);
}

std::vector<nn::Tensor> MscnCostModel::Parameters() const {
  std::vector<nn::Tensor> params;
  for (const nn::Mlp* mlp :
       {&table_encoder_, &join_encoder_, &predicate_encoder_, &output_}) {
    for (const nn::Tensor& p : mlp->Parameters()) params.push_back(p);
  }
  return params;
}

std::unique_ptr<NeuralCostModel> MscnCostModel::CloneReplica() const {
  auto replica = std::make_unique<MscnCostModel>(options_);
  std::vector<nn::Tensor> dst = replica->Parameters();
  std::vector<nn::Tensor> src = Parameters();
  ZDB_CHECK_EQ(dst.size(), src.size());
  for (size_t i = 0; i < dst.size(); ++i) {
    ZDB_CHECK_EQ(dst[i].size(), src[i].size());
    dst[i].mutable_data() = src[i].data();
  }
  replica->target_norm_ = target_norm_;
  return replica;
}

void MscnCostModel::Prepare(
    const std::vector<const QueryRecord*>& records) {
  ZDB_CHECK(!records.empty());
  std::vector<LogMillis> log_runtimes;
  log_runtimes.reserve(records.size());
  for (const QueryRecord* record : records) {
    log_runtimes.push_back(Millis(record->runtime_ms).ToLog());
  }
  target_norm_.Fit(log_runtimes);
}

nn::Tensor MscnCostModel::PoolSet(
    const std::vector<featurize::MscnSets>& batch,
    const std::vector<std::vector<float>> featurize::MscnSets::*member,
    size_t element_dim, const nn::Mlp& encoder, bool training, Rng* rng) {
  const size_t batch_size = batch.size();
  std::vector<float> elements;
  std::vector<uint32_t> owners;
  std::vector<float> inverse_counts(batch_size, 0.0f);
  for (size_t b = 0; b < batch_size; ++b) {
    const auto& set = batch[b].*member;
    if (!set.empty()) {
      inverse_counts[b] = 1.0f / static_cast<float>(set.size());
    }
    for (const std::vector<float>& element : set) {
      ZDB_CHECK_EQ(element.size(), element_dim);
      elements.insert(elements.end(), element.begin(), element.end());
      owners.push_back(static_cast<uint32_t>(b));
    }
  }
  if (owners.empty()) {
    // Entire batch has empty sets: contribute zeros.
    return nn::Tensor::Zeros(batch_size, options_.hidden_dim);
  }
  nn::Tensor input =
      nn::Tensor::FromData(owners.size(), element_dim, std::move(elements));
  nn::Tensor encoded = encoder.Forward(input, training, rng);
  nn::Tensor summed = nn::RowScatterAdd(encoded, owners, batch_size);
  return nn::ScaleRows(summed, inverse_counts);
}

nn::Tensor MscnCostModel::Forward(const std::vector<featurize::MscnSets>& batch,
                                  bool training, Rng* rng) {
  nn::Tensor tables =
      PoolSet(batch, &featurize::MscnSets::tables,
              featurize::MscnFeaturizer::kTableDim, table_encoder_, training,
              rng);
  nn::Tensor joins =
      PoolSet(batch, &featurize::MscnSets::joins,
              featurize::MscnFeaturizer::kJoinDim, join_encoder_, training,
              rng);
  nn::Tensor predicates =
      PoolSet(batch, &featurize::MscnSets::predicates,
              featurize::MscnFeaturizer::kPredicateDim, predicate_encoder_,
              training, rng);
  return output_.Forward(nn::ConcatCols({tables, joins, predicates}), training,
                         rng);
}

nn::Tensor MscnCostModel::LossOnBatch(
    const std::vector<const QueryRecord*>& batch, bool training,
    Rng* rng) {
  ZDB_CHECK(!batch.empty());
  std::vector<featurize::MscnSets> featurized;
  std::vector<float> targets;
  featurized.reserve(batch.size());
  targets.reserve(batch.size());
  for (const QueryRecord* record : batch) {
    featurized.push_back(featurizer_.Featurize(record->query, *record->env));
    targets.push_back(static_cast<float>(target_norm_.Normalize(
        Millis(record->runtime_ms).ToLog())));
  }
  nn::Tensor predictions = Forward(featurized, training, rng);
  const size_t batch_size = targets.size();
  nn::Tensor target_tensor =
      nn::Tensor::FromData(batch_size, 1, std::move(targets));
  return nn::HuberLoss(predictions, target_tensor, 1.0f);
}

std::vector<Millis> MscnCostModel::PredictMs(
    const std::vector<const QueryRecord*>& records) {
  ZDB_CHECK(target_norm_.fitted());
  if (records.empty()) return {};
  std::vector<featurize::MscnSets> featurized;
  featurized.reserve(records.size());
  for (const QueryRecord* record : records) {
    featurized.push_back(featurizer_.Featurize(record->query, *record->env));
  }
  nn::Tensor predictions = Forward(featurized, /*training=*/false, nullptr);
  std::vector<Millis> out;
  out.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    out.push_back(Millis::FromLog(target_norm_.Denormalize(predictions.data()[i])));
  }
  return out;
}

}  // namespace zerodb::models
