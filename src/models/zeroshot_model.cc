#include "models/zeroshot_model.h"

#include "common/check.h"
#include "plan/physical.h"

namespace zerodb::models {

TreeModelConfig ZeroShotCostModel::MakeConfig(const Options& options) {
  TreeModelConfig config;
  config.feature_dim = featurize::ZeroShotFeaturizer::kFeatureDim;
  config.num_encoders = plan::kNumPhysicalOpTypes;
  config.hidden_dim = options.hidden_dim;
  config.dropout = options.dropout;
  config.init_seed = options.init_seed;
  return config;
}

ZeroShotCostModel::ZeroShotCostModel(const Options& options)
    : TreeMessagePassingModel(MakeConfig(options)),
      options_(options),
      featurizer_(options.cardinality_mode) {}

std::unique_ptr<NeuralCostModel> ZeroShotCostModel::CloneReplica() const {
  auto replica = std::make_unique<ZeroShotCostModel>(options_);
  replica->CopyTreeStateFrom(*this);
  return replica;
}

std::string ZeroShotCostModel::Name() const {
  return std::string("zero-shot (") +
         featurize::CardinalityModeName(featurizer_.mode()) + " card.)";
}

featurize::PlanGraph ZeroShotCostModel::FeaturizeRecord(
    const QueryRecord& record) const {
  ZDB_CHECK(record.env != nullptr);
  return featurizer_.Featurize(*record.plan.root, *record.env);
}

}  // namespace zerodb::models
