#ifndef ZERODB_MODELS_RECORD_H_
#define ZERODB_MODELS_RECORD_H_

// QueryRecord lives here, in models/, because it is the *interface* between
// data collection (train/, a higher layer) and the cost models that consume
// it: models/ defining its own input type keeps the module DAG acyclic
// (zerodb-analyzer rule `layering` — models must not include train/).
// train/dataset.h re-exports it under the train namespace, so
// collection-side code keeps its natural spelling.
#include <string>

#include "datagen/corpus.h"
#include "plan/physical.h"
#include "plan/query.h"

namespace zerodb::models {

/// One labeled training/evaluation example: a query, its optimized physical
/// plan (annotated with estimated AND true cardinalities), the measured
/// (simulated) runtime, and the optimizer's cost — everything any of the
/// four cost models needs.
struct QueryRecord {
  const datagen::DatabaseEnv* env = nullptr;  ///< owning corpus outlives records
  std::string db_name;
  plan::QuerySpec query;
  plan::PhysicalPlan plan;
  double runtime_ms = 0.0;
  double opt_cost = 0.0;
};

}  // namespace zerodb::models

#endif  // ZERODB_MODELS_RECORD_H_
