#ifndef ZERODB_MODELS_ZEROSHOT_MODEL_H_
#define ZERODB_MODELS_ZEROSHOT_MODEL_H_

#include <memory>
#include <string>

#include "featurize/zeroshot_featurizer.h"
#include "models/tree_model.h"

namespace zerodb::models {

/// The paper's zero-shot cost model: database-independent featurization
/// plus one encoder MLP per physical operator type, trained across many
/// databases, transferable to unseen ones.
class ZeroShotCostModel : public TreeMessagePassingModel {
 public:
  struct Options {
    featurize::CardinalityMode cardinality_mode =
        featurize::CardinalityMode::kEstimated;
    size_t hidden_dim = 64;
    float dropout = 0.0f;
    uint64_t init_seed = 1;
  };

  explicit ZeroShotCostModel(const Options& options);

  std::string Name() const override;

  std::unique_ptr<NeuralCostModel> CloneReplica() const override;

  featurize::CardinalityMode cardinality_mode() const {
    return featurizer_.mode();
  }

 protected:
  featurize::PlanGraph FeaturizeRecord(
      const QueryRecord& record) const override;
  size_t EncoderIdFor(size_t op_type) const override { return op_type; }

 private:
  static TreeModelConfig MakeConfig(const Options& options);

  Options options_;
  featurize::ZeroShotFeaturizer featurizer_;
};

}  // namespace zerodb::models

#endif  // ZERODB_MODELS_ZEROSHOT_MODEL_H_
