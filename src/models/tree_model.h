#ifndef ZERODB_MODELS_TREE_MODEL_H_
#define ZERODB_MODELS_TREE_MODEL_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "featurize/normalization.h"
#include "featurize/plan_graph.h"
#include "models/cost_predictor.h"
#include "nn/layers.h"

namespace zerodb::models {

/// Configuration shared by the tree-structured cost models.
struct TreeModelConfig {
  size_t feature_dim = 0;    ///< per-node feature width
  size_t num_encoders = 1;   ///< 1 = shared encoder (E2E), 9 = per-op (zero-shot)
  size_t hidden_dim = 64;
  size_t encoder_layers = 2;   ///< hidden layers in each node encoder MLP
  size_t combine_layers = 2;   ///< hidden layers in the combine MLP
  size_t readout_layers = 2;   ///< hidden layers in the readout MLP
  float dropout = 0.0f;
  uint64_t init_seed = 1;
  /// Training-path cache of normalized plan graphs, keyed by plan
  /// fingerprint + database name: plans recur every epoch, and featurizing
  /// them is the dominant per-batch rebuild cost. 0 disables. The cache is
  /// per-model-instance (each trainer replica fills its own), consulted only
  /// from the serial LossOnBatch path, and cleared whenever normalization
  /// changes — featurization is deterministic, so cached and fresh graphs
  /// are identical and the loss history does not depend on cache state.
  size_t graph_cache_capacity = 8192;
};

/// The paper's model architecture (Section 3.1): encode each plan node with
/// a (node-type-specific) MLP into a hidden state, then combine bottom-up —
/// children's hidden states are summed (DeepSets) and merged with the
/// parent's encoding through an MLP — until the root's hidden state is fed
/// into a readout MLP that predicts (normalized log) runtime.
///
/// Subclasses provide the featurizer; this class owns parameters, the
/// batched forward pass (nodes grouped by encoder type, levels processed
/// with gather/scatter), normalization, and prediction.
class TreeMessagePassingModel : public NeuralCostModel {
 public:
  explicit TreeMessagePassingModel(const TreeModelConfig& config);

  void Prepare(const std::vector<const QueryRecord*>& records) override;
  nn::Tensor LossOnBatch(const std::vector<const QueryRecord*>& batch,
                         bool training, Rng* rng) override;
  std::vector<Millis> PredictMs(
      const std::vector<const QueryRecord*>& records) override;
  /// The serving path: one featurize + one forward pass for all records,
  /// run under nn::InferenceModeGuard (no autodiff graph). PredictMs
  /// forwards here, so both entry points return identical values.
  std::vector<Millis> ForwardBatch(
      const std::vector<const QueryRecord*>& records) override;
  std::vector<nn::Tensor> Parameters() const override;

  /// Persists weights + normalization statistics to a binary file. Load
  /// must be called on a model constructed with the same config.
  Status SaveWeights(const std::string& path) const;
  Status LoadWeights(const std::string& path);

  const TreeModelConfig& config() const { return config_; }

 protected:
  /// Copies `other`'s parameter values and normalization state into this
  /// model (same config required). Subclass CloneReplica implementations
  /// construct a fresh model from their stored options and then call this —
  /// the replica gets identical values in independent storage.
  void CopyTreeStateFrom(const TreeMessagePassingModel& other);

  /// Featurizes one record's plan (implemented by subclasses).
  virtual featurize::PlanGraph FeaturizeRecord(
      const QueryRecord& record) const = 0;

  /// Maps a graph node's op_type to the encoder id in [0, num_encoders).
  virtual size_t EncoderIdFor(size_t op_type) const = 0;

 private:
  /// Batched forward pass over the graphs; returns (B, 1) normalized
  /// log-runtime predictions.
  nn::Tensor Forward(const std::vector<const featurize::PlanGraph*>& graphs,
                     bool training, Rng* rng);

  featurize::PlanGraph FeaturizeNormalized(
      const QueryRecord& record) const;

  /// Training-path featurization through the graph cache (see
  /// TreeModelConfig::graph_cache_capacity). The returned pointer is valid
  /// until the next Prepare/LoadWeights/CopyTreeStateFrom (cached graphs) or
  /// the next LossOnBatch (overflow graphs). Not thread-safe; only the
  /// serial LossOnBatch path uses it.
  const featurize::PlanGraph* FeaturizeNormalizedCached(
      const QueryRecord& record);

  /// Drops every cached graph; called whenever normalization state changes.
  void InvalidateGraphCache();

  TreeModelConfig config_;
  std::vector<nn::Mlp> encoders_;
  nn::Mlp combine_;
  nn::Mlp readout_;
  featurize::FeatureNorm feature_norm_;
  featurize::TargetNorm target_norm_;

  /// key = FingerprintCombine(FingerprintPlan(plan), db name). Values are
  /// stable across inserts (node-based map), so Forward can hold pointers.
  std::unordered_map<uint64_t, featurize::PlanGraph> graph_cache_;
  /// Graphs featurized when the cache is full or disabled; cleared per
  /// batch. Deque: growth must not move earlier elements mid-batch.
  std::deque<featurize::PlanGraph> overflow_graphs_;

  /// Reused per-batch scratch (capacities reach steady state after the
  /// first batch). The model is thread-compatible, not thread-safe, so one
  /// forward pass at a time owns these.
  struct ForwardScratch {
    std::vector<const featurize::PlanGraph*> batch_graphs;
    std::vector<uint32_t> encoder_of;   ///< per global node
    std::vector<uint32_t> level_of;     ///< per global node
    std::vector<const std::vector<float>*> features_of;
    std::vector<uint32_t> children_flat;   ///< CSR child ids, parent-major
    std::vector<uint32_t> child_offsets;   ///< size total_nodes + 1
    std::vector<uint32_t> positions;       ///< per-encoder gather scratch
    std::vector<float> features;           ///< per-encoder packed features
    std::vector<uint32_t> level_ids;
    std::vector<uint32_t> child_ids;
    std::vector<uint32_t> child_parents;
  };
  ForwardScratch scratch_;
};

}  // namespace zerodb::models

#endif  // ZERODB_MODELS_TREE_MODEL_H_
