#include "models/tree_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "featurize/parallel.h"
#include "nn/arena.h"
#include "nn/ops.h"
#include "nn/validate.h"
#include "nn/serialize.h"
#include "plan/fingerprint.h"

namespace zerodb::models {

namespace {

nn::MlpConfig MakeMlpConfig(size_t in, size_t hidden, size_t out,
                            size_t hidden_layers, float dropout) {
  nn::MlpConfig config;
  config.in_features = in;
  config.hidden_sizes.assign(hidden_layers, hidden);
  config.out_features = out;
  config.hidden_activation = nn::Activation::kRelu;
  config.dropout = dropout;
  return config;
}

// Copies scratch indices into a pooled buffer the op can consume by value.
// Under a trainer arena the buffer recycles on Reset; otherwise it is a
// plain heap vector, as before.
std::vector<uint32_t> PooledIndexCopy(const std::vector<uint32_t>& src) {
  std::vector<uint32_t> out = nn::AcquirePooledIndices(src.size());
  std::copy(src.begin(), src.end(), out.begin());
  return out;
}

}  // namespace

TreeMessagePassingModel::TreeMessagePassingModel(const TreeModelConfig& config)
    : config_(config) {
  ZDB_CHECK_GT(config.feature_dim, 0u);
  ZDB_CHECK_GT(config.num_encoders, 0u);
  Rng rng(config.init_seed);
  encoders_.reserve(config.num_encoders);
  for (size_t e = 0; e < config.num_encoders; ++e) {
    encoders_.emplace_back(
        MakeMlpConfig(config.feature_dim, config.hidden_dim, config.hidden_dim,
                      config.encoder_layers, config.dropout),
        &rng);
  }
  combine_ = nn::Mlp(
      MakeMlpConfig(2 * config.hidden_dim, config.hidden_dim,
                    config.hidden_dim, config.combine_layers, config.dropout),
      &rng);
  readout_ = nn::Mlp(MakeMlpConfig(config.hidden_dim, config.hidden_dim, 1,
                                   config.readout_layers, config.dropout),
                     &rng);
}

std::vector<nn::Tensor> TreeMessagePassingModel::Parameters() const {
  std::vector<nn::Tensor> params;
  for (const nn::Mlp& encoder : encoders_) {
    for (const nn::Tensor& p : encoder.Parameters()) params.push_back(p);
  }
  for (const nn::Tensor& p : combine_.Parameters()) params.push_back(p);
  for (const nn::Tensor& p : readout_.Parameters()) params.push_back(p);
  return params;
}

Status TreeMessagePassingModel::SaveWeights(const std::string& path) const {
  if (!feature_norm_.fitted() || !target_norm_.fitted()) {
    return Status::InvalidArgument("saving an untrained model");
  }
  std::vector<nn::Tensor> tensors = Parameters();
  tensors.push_back(nn::Tensor::FromData(1, feature_norm_.dim(),
                                         feature_norm_.mean()));
  tensors.push_back(
      nn::Tensor::FromData(1, feature_norm_.dim(), feature_norm_.std()));
  tensors.push_back(nn::Tensor::FromData(
      1, 2,
      {static_cast<float>(target_norm_.mean()),
       static_cast<float>(target_norm_.std())}));
  return nn::SaveParameters(tensors, path);
}

Status TreeMessagePassingModel::LoadWeights(const std::string& path) {
  std::vector<nn::Tensor> tensors = Parameters();
  nn::Tensor feature_mean = nn::Tensor::Zeros(1, config_.feature_dim);
  nn::Tensor feature_std = nn::Tensor::Zeros(1, config_.feature_dim);
  nn::Tensor target = nn::Tensor::Zeros(1, 2);
  tensors.push_back(feature_mean);
  tensors.push_back(feature_std);
  tensors.push_back(target);
  ZDB_RETURN_NOT_OK(nn::LoadParameters(tensors, path));
  feature_norm_.Set(feature_mean.data(), feature_std.data());
  target_norm_.Set(target.data()[0], target.data()[1]);
  InvalidateGraphCache();
  return Status::OK();
}

void TreeMessagePassingModel::CopyTreeStateFrom(
    const TreeMessagePassingModel& other) {
  std::vector<nn::Tensor> dst = Parameters();
  std::vector<nn::Tensor> src = other.Parameters();
  ZDB_CHECK_EQ(dst.size(), src.size()) << "replica architecture mismatch";
  for (size_t i = 0; i < dst.size(); ++i) {
    ZDB_CHECK_EQ(dst[i].size(), src[i].size());
    dst[i].mutable_data() = src[i].data();
  }
  feature_norm_ = other.feature_norm_;
  target_norm_ = other.target_norm_;
  InvalidateGraphCache();
}

void TreeMessagePassingModel::Prepare(
    const std::vector<const QueryRecord*>& records) {
  ZDB_CHECK(!records.empty());
  // Fit feature normalization over every node of every training plan, and
  // target normalization over log runtimes. Featurization is the expensive
  // part, and pure per-record — fan it out.
  std::vector<featurize::PlanGraph> graphs = featurize::FeaturizeAll(
      records.size(),
      [&](size_t i) { return FeaturizeRecord(*records[i]); });
  std::vector<const std::vector<float>*> rows;
  for (const featurize::PlanGraph& graph : graphs) {
    for (const featurize::PlanGraphNode& node : graph.nodes) {
      rows.push_back(&node.features);
    }
  }
  feature_norm_.Fit(rows);

  std::vector<LogMillis> log_runtimes;
  log_runtimes.reserve(records.size());
  for (const QueryRecord* record : records) {
    log_runtimes.push_back(Millis(record->runtime_ms).ToLog());
  }
  target_norm_.Fit(log_runtimes);
  InvalidateGraphCache();
}

featurize::PlanGraph TreeMessagePassingModel::FeaturizeNormalized(
    const QueryRecord& record) const {
  featurize::PlanGraph graph = FeaturizeRecord(record);
  for (featurize::PlanGraphNode& node : graph.nodes) {
    feature_norm_.Apply(&node.features);
  }
  return graph;
}

void TreeMessagePassingModel::InvalidateGraphCache() {
  graph_cache_.clear();
  overflow_graphs_.clear();
}

const featurize::PlanGraph* TreeMessagePassingModel::FeaturizeNormalizedCached(
    const QueryRecord& record) {
  if (config_.graph_cache_capacity > 0) {
    const uint64_t key = plan::FingerprintCombine(
        plan::FingerprintPlan(record.plan),
        plan::FingerprintString(record.db_name));
    auto it = graph_cache_.find(key);
    if (it != graph_cache_.end()) return &it->second;
    if (graph_cache_.size() < config_.graph_cache_capacity) {
      auto inserted = graph_cache_.emplace(key, FeaturizeNormalized(record));
      return &inserted.first->second;
    }
  }
  // Cache disabled or full: featurize into per-batch overflow storage.
  overflow_graphs_.push_back(FeaturizeNormalized(record));
  return &overflow_graphs_.back();
}

nn::Tensor TreeMessagePassingModel::Forward(
    const std::vector<const featurize::PlanGraph*>& graphs, bool training,
    Rng* rng) {
  ZDB_CHECK(!graphs.empty());
  const size_t hidden = config_.hidden_dim;

  // Flatten all nodes into one global table — parallel arrays plus a CSR
  // children list instead of per-node vectors, so the flattening costs zero
  // allocations once the scratch capacities warm up.
  ForwardScratch& s = scratch_;
  s.encoder_of.clear();
  s.level_of.clear();
  s.features_of.clear();
  s.children_flat.clear();
  s.child_offsets.clear();
  std::vector<uint32_t> root_ids = nn::AcquirePooledIndices(graphs.size());
  size_t max_level = 0;
  s.child_offsets.push_back(0);
  for (size_t g = 0; g < graphs.size(); ++g) {
    const featurize::PlanGraph& graph = *graphs[g];
    const uint32_t base = static_cast<uint32_t>(s.encoder_of.size());
    root_ids[g] = base + static_cast<uint32_t>(graph.root());
    for (const featurize::PlanGraphNode& node : graph.nodes) {
      s.encoder_of.push_back(static_cast<uint32_t>(EncoderIdFor(node.op_type)));
      s.level_of.push_back(static_cast<uint32_t>(node.level));
      s.features_of.push_back(&node.features);
      for (size_t child : node.children) {
        s.children_flat.push_back(base + static_cast<uint32_t>(child));
      }
      s.child_offsets.push_back(static_cast<uint32_t>(s.children_flat.size()));
      max_level = std::max(max_level, node.level);
    }
  }
  const size_t total_nodes = s.encoder_of.size();

  // Encode all nodes, grouped by encoder type, scattered back into a
  // (total_nodes, hidden) matrix.
  nn::Tensor encodings = nn::Tensor::Zeros(total_nodes, hidden);
  for (size_t e = 0; e < config_.num_encoders; ++e) {
    s.positions.clear();
    s.features.clear();
    for (size_t n = 0; n < total_nodes; ++n) {
      if (s.encoder_of[n] != e) continue;
      s.positions.push_back(static_cast<uint32_t>(n));
      s.features.insert(s.features.end(), s.features_of[n]->begin(),
                        s.features_of[n]->end());
    }
    if (s.positions.empty()) continue;
    std::vector<float> packed = nn::AcquirePooledFloats(s.features.size());
    std::copy(s.features.begin(), s.features.end(), packed.begin());
    nn::Tensor input = nn::Tensor::FromData(
        s.positions.size(), config_.feature_dim, std::move(packed));
    nn::Tensor encoded = encoders_[e].Forward(input, training, rng);
    encodings = nn::RowScatterAddTo(std::move(encodings), encoded,
                                    PooledIndexCopy(s.positions));
  }

  // Bottom-up message passing by level. `hidden_states` accumulates each
  // level's rows at their global positions.
  nn::Tensor hidden_states = nn::Tensor::Zeros(total_nodes, hidden);
  for (size_t level = 0; level <= max_level; ++level) {
    s.level_ids.clear();
    s.child_ids.clear();
    s.child_parents.clear();  // local index within level
    for (size_t n = 0; n < total_nodes; ++n) {
      if (s.level_of[n] != level) continue;
      const uint32_t local = static_cast<uint32_t>(s.level_ids.size());
      s.level_ids.push_back(static_cast<uint32_t>(n));
      for (uint32_t c = s.child_offsets[n]; c < s.child_offsets[n + 1]; ++c) {
        s.child_ids.push_back(s.children_flat[c]);
        s.child_parents.push_back(local);
      }
    }
    if (s.level_ids.empty()) continue;

    nn::Tensor level_encodings =
        nn::RowGather(encodings, PooledIndexCopy(s.level_ids));
    nn::Tensor level_hidden;
    if (level == 0) {
      // Leaves: the initial hidden state is the node encoding.
      level_hidden = level_encodings;
    } else {
      // DeepSets: sum the children's hidden states, then combine with the
      // parent encoding through the combine MLP.
      nn::Tensor child_sum;
      if (s.child_ids.empty()) {
        child_sum = nn::Tensor::Zeros(s.level_ids.size(), hidden);
      } else {
        child_sum = nn::RowScatterAdd(
            nn::RowGather(hidden_states, PooledIndexCopy(s.child_ids)),
            PooledIndexCopy(s.child_parents), s.level_ids.size());
      }
      level_hidden = combine_.Forward(
          nn::ConcatCols({level_encodings, child_sum}), training, rng);
    }
    hidden_states = nn::RowScatterAddTo(std::move(hidden_states), level_hidden,
                                        PooledIndexCopy(s.level_ids));
  }

  // Root readout.
  nn::Tensor roots = nn::RowGather(hidden_states, std::move(root_ids));
  nn::Tensor predictions = readout_.Forward(roots, training, rng);
  ZDB_DCHECK_OK(
      nn::ValidateShape(predictions, graphs.size(), 1, "tree model readout"));
  ZDB_DCHECK_OK(nn::ValidateFinite(predictions, "tree model readout"));
  return predictions;
}

nn::Tensor TreeMessagePassingModel::LossOnBatch(
    const std::vector<const QueryRecord*>& batch, bool training,
    Rng* rng) {
  ZDB_CHECK(!batch.empty());
  overflow_graphs_.clear();
  scratch_.batch_graphs.clear();
  std::vector<float> targets = nn::AcquirePooledFloats(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    scratch_.batch_graphs.push_back(FeaturizeNormalizedCached(*batch[i]));
    targets[i] = static_cast<float>(target_norm_.Normalize(
        Millis(batch[i]->runtime_ms).ToLog()));
  }
  nn::Tensor predictions = Forward(scratch_.batch_graphs, training, rng);
  nn::Tensor target_tensor =
      nn::Tensor::FromData(batch.size(), 1, std::move(targets));
  return nn::HuberLoss(predictions, target_tensor, 1.0f);
}

std::vector<Millis> TreeMessagePassingModel::PredictMs(
    const std::vector<const QueryRecord*>& records) {
  return ForwardBatch(records);
}

std::vector<Millis> TreeMessagePassingModel::ForwardBatch(
    const std::vector<const QueryRecord*>& records) {
  ZDB_CHECK(target_norm_.fitted()) << "ForwardBatch before Prepare/training";
  if (records.empty()) return {};
  std::vector<featurize::PlanGraph> graphs = featurize::FeaturizeAll(
      records.size(),
      [&](size_t i) { return FeaturizeNormalized(*records[i]); });
  std::vector<const featurize::PlanGraph*> graph_ptrs;
  graph_ptrs.reserve(graphs.size());
  for (const featurize::PlanGraph& graph : graphs) graph_ptrs.push_back(&graph);
  // Inference mode: the forward pass builds no autodiff graph (no parent
  // edges, no backward contexts), which is most of the per-op cost at small
  // batch sizes and lets intermediates free as soon as they are consumed.
  nn::InferenceModeGuard inference;
  nn::Tensor predictions = Forward(graph_ptrs, /*training=*/false, nullptr);
  std::vector<Millis> out;
  out.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    LogMillis log_ms = target_norm_.Denormalize(predictions.data()[i]);
    out.push_back(Millis::FromLog(log_ms));
  }
  return out;
}

}  // namespace zerodb::models
