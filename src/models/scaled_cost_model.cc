#include "models/scaled_cost_model.h"

#include <cmath>

#include "common/check.h"

namespace zerodb::models {

void ScaledOptCostModel::Fit(
    const std::vector<const QueryRecord*>& records) {
  ZDB_CHECK(!records.empty());
  std::vector<double> log_costs;
  std::vector<double> log_runtimes;
  log_costs.reserve(records.size());
  log_runtimes.reserve(records.size());
  for (const QueryRecord* record : records) {
    log_costs.push_back(std::log(std::max(record->opt_cost, 1e-6)));
    log_runtimes.push_back(std::log(std::max(record->runtime_ms, 1e-6)));
  }
  fit_ = FitLeastSquares(log_costs, log_runtimes);
  fitted_ = true;
}

std::vector<double> ScaledOptCostModel::PredictMs(
    const std::vector<const QueryRecord*>& records) {
  ZDB_CHECK(fitted_) << "PredictMs before Fit";
  std::vector<double> out;
  out.reserve(records.size());
  for (const QueryRecord* record : records) {
    double log_cost = std::log(std::max(record->opt_cost, 1e-6));
    out.push_back(std::exp(fit_.slope * log_cost + fit_.intercept));
  }
  return out;
}

}  // namespace zerodb::models
