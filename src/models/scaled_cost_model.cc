#include "models/scaled_cost_model.h"

#include <cmath>

#include "common/check.h"

namespace zerodb::models {

void ScaledOptCostModel::Fit(
    const std::vector<const QueryRecord*>& records) {
  ZDB_CHECK(!records.empty());
  std::vector<double> log_costs;
  std::vector<double> log_runtimes;
  log_costs.reserve(records.size());
  log_runtimes.reserve(records.size());
  for (const QueryRecord* record : records) {
    log_costs.push_back(std::log(std::max(record->opt_cost, 1e-6)));
    log_runtimes.push_back(Millis(record->runtime_ms).ToLog().value());
  }
  fit_ = FitLeastSquares(log_costs, log_runtimes);
  fitted_ = true;
}

std::vector<Millis> ScaledOptCostModel::PredictMs(
    const std::vector<const QueryRecord*>& records) {
  ZDB_CHECK(fitted_) << "PredictMs before Fit";
  std::vector<Millis> out;
  out.reserve(records.size());
  for (const QueryRecord* record : records) {
    // opt_cost is the optimizer's unitless internal metric, not a runtime:
    // its log stays a raw double, only the readout is Millis.
    double log_cost = std::log(std::max(record->opt_cost, 1e-6));
    out.push_back(
        Millis::FromLog(LogMillis(fit_.slope * log_cost + fit_.intercept)));
  }
  return out;
}

}  // namespace zerodb::models
