#ifndef ZERODB_MODELS_MSCN_MODEL_H_
#define ZERODB_MODELS_MSCN_MODEL_H_

#include <memory>
#include <string>

#include "featurize/mscn_featurizer.h"
#include "featurize/normalization.h"
#include "models/cost_predictor.h"
#include "nn/layers.h"

namespace zerodb::models {

/// The MSCN baseline [Kipf et al. 2019] applied to cost estimation as in
/// the paper: three per-element MLPs (tables / joins / predicates), mean
/// pooling per set, concat, output MLP. One-hot (database-dependent)
/// features and no plan structure — the paper reports it as markedly less
/// accurate, with high variance.
class MscnCostModel : public NeuralCostModel {
 public:
  struct Options {
    size_t hidden_dim = 64;
    float dropout = 0.0f;
    uint64_t init_seed = 3;
  };

  explicit MscnCostModel(const Options& options);

  std::string Name() const override { return "MSCN"; }

  void Prepare(const std::vector<const QueryRecord*>& records) override;
  nn::Tensor LossOnBatch(const std::vector<const QueryRecord*>& batch,
                         bool training, Rng* rng) override;
  std::vector<Millis> PredictMs(
      const std::vector<const QueryRecord*>& records) override;
  std::vector<nn::Tensor> Parameters() const override;

  std::unique_ptr<NeuralCostModel> CloneReplica() const override;

 private:
  nn::Tensor Forward(const std::vector<featurize::MscnSets>& batch,
                     bool training, Rng* rng);

  /// Encodes one set type across the batch and mean-pools per query.
  nn::Tensor PoolSet(const std::vector<featurize::MscnSets>& batch,
                     const std::vector<std::vector<float>> featurize::MscnSets::*member,
                     size_t element_dim, const nn::Mlp& encoder, bool training,
                     Rng* rng);

  Options options_;
  featurize::MscnFeaturizer featurizer_;
  nn::Mlp table_encoder_;
  nn::Mlp join_encoder_;
  nn::Mlp predicate_encoder_;
  nn::Mlp output_;
  featurize::TargetNorm target_norm_;
};

}  // namespace zerodb::models

#endif  // ZERODB_MODELS_MSCN_MODEL_H_
