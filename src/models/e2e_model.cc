#include "models/e2e_model.h"

#include "common/check.h"

namespace zerodb::models {

TreeModelConfig E2ECostModel::MakeConfig(const Options& options) {
  TreeModelConfig config;
  config.feature_dim = featurize::E2EFeaturizer::kFeatureDim;
  config.num_encoders = 1;
  config.hidden_dim = options.hidden_dim;
  config.dropout = options.dropout;
  config.init_seed = options.init_seed;
  return config;
}

E2ECostModel::E2ECostModel(const Options& options)
    : TreeMessagePassingModel(MakeConfig(options)),
      options_(options),
      featurizer_(featurize::CardinalityMode::kEstimated) {}

std::unique_ptr<NeuralCostModel> E2ECostModel::CloneReplica() const {
  auto replica = std::make_unique<E2ECostModel>(options_);
  replica->CopyTreeStateFrom(*this);
  return replica;
}

featurize::PlanGraph E2ECostModel::FeaturizeRecord(
    const QueryRecord& record) const {
  ZDB_CHECK(record.env != nullptr);
  return featurizer_.Featurize(*record.plan.root, *record.env);
}

}  // namespace zerodb::models
