#ifndef ZERODB_MODELS_COST_PREDICTOR_H_
#define ZERODB_MODELS_COST_PREDICTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "nn/tensor.h"
#include "models/record.h"

namespace zerodb::models {

/// Anything that can predict query runtimes. The experiment harness only
/// needs this.
class CostPredictor {
 public:
  virtual ~CostPredictor() = default;

  virtual std::string Name() const = 0;

  /// Predicted runtimes, one per record. Strongly typed Millis: readouts
  /// come out of log space through Millis::FromLog, so a raw log-space or
  /// normalized value cannot leak out of a model (common/units.h).
  virtual std::vector<Millis> PredictMs(
      const std::vector<const QueryRecord*>& records) = 0;
};

/// A gradient-trained cost model (the zero-shot model and the E2E / MSCN
/// baselines). The Trainer drives this interface.
class NeuralCostModel : public CostPredictor {
 public:
  /// Fits feature and target normalization on the training records. Must be
  /// called exactly once before training.
  virtual void Prepare(
      const std::vector<const QueryRecord*>& records) = 0;

  /// Forward + loss on a batch. `training` enables dropout (rng required).
  virtual nn::Tensor LossOnBatch(
      const std::vector<const QueryRecord*>& batch, bool training,
      Rng* rng) = 0;

  /// All trainable parameters.
  virtual std::vector<nn::Tensor> Parameters() const = 0;

  /// Batched serving-path inference: prices every record in one forward
  /// pass with autodiff graph capture disabled (nn::InferenceModeGuard), so
  /// a whole candidate set amortizes per-op bookkeeping that PredictMs at
  /// batch 1 pays in full. Semantically identical to PredictMs — same
  /// values within float tolerance — just packed. The default delegates to
  /// PredictMs for models without a dedicated batched path.
  virtual std::vector<Millis> ForwardBatch(
      const std::vector<const QueryRecord*>& records) {
    return PredictMs(records);
  }

  /// A same-architecture copy with its own parameter storage, holding the
  /// same parameter values and normalization state as this model. The
  /// parallel trainer gives each worker thread a replica so concurrent
  /// backward passes never touch shared gradient buffers; replicas are
  /// re-synced from the trained model's parameter values every step.
  /// Models that return nullptr (the default) are trained serially.
  virtual std::unique_ptr<NeuralCostModel> CloneReplica() const {
    return nullptr;
  }
};

}  // namespace zerodb::models

#endif  // ZERODB_MODELS_COST_PREDICTOR_H_
