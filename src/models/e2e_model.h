#ifndef ZERODB_MODELS_E2E_MODEL_H_
#define ZERODB_MODELS_E2E_MODEL_H_

#include <memory>
#include <string>

#include "featurize/e2e_featurizer.h"
#include "models/tree_model.h"

namespace zerodb::models {

/// The workload-driven E2E baseline [Sun & Li 2019]: the same tree
/// message-passing trunk but a single shared node encoder over
/// database-dependent one-hot features. Trained per database; cannot
/// transfer.
class E2ECostModel : public TreeMessagePassingModel {
 public:
  struct Options {
    size_t hidden_dim = 64;
    float dropout = 0.0f;
    uint64_t init_seed = 2;
  };

  explicit E2ECostModel(const Options& options);

  std::string Name() const override { return "E2E"; }

  std::unique_ptr<NeuralCostModel> CloneReplica() const override;

 protected:
  featurize::PlanGraph FeaturizeRecord(
      const QueryRecord& record) const override;
  size_t EncoderIdFor(size_t) const override { return 0; }

 private:
  static TreeModelConfig MakeConfig(const Options& options);

  Options options_;
  featurize::E2EFeaturizer featurizer_;
};

}  // namespace zerodb::models

#endif  // ZERODB_MODELS_E2E_MODEL_H_
