#ifndef ZERODB_MODELS_SCALED_COST_MODEL_H_
#define ZERODB_MODELS_SCALED_COST_MODEL_H_

#include <string>

#include "common/math_util.h"
#include "models/cost_predictor.h"

namespace zerodb::models {

/// The paper's "Scaled Optimizer Cost" baseline: a linear model mapping the
/// optimizer's internal cost metric to actual runtimes. Fit in log-log
/// space (runtimes span orders of magnitude), which is the charitable
/// variant of a linear rescaling.
class ScaledOptCostModel : public CostPredictor {
 public:
  ScaledOptCostModel() = default;

  std::string Name() const override { return "scaled optimizer cost"; }

  /// Fits log(runtime) ~= slope * log(cost) + intercept on the records.
  void Fit(const std::vector<const QueryRecord*>& records);

  std::vector<Millis> PredictMs(
      const std::vector<const QueryRecord*>& records) override;

  bool fitted() const { return fitted_; }
  const LinearFit& fit() const { return fit_; }

 private:
  bool fitted_ = false;
  LinearFit fit_;
};

}  // namespace zerodb::models

#endif  // ZERODB_MODELS_SCALED_COST_MODEL_H_
